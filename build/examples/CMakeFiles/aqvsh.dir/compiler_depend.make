# Empty compiler generated dependencies file for aqvsh.
# This may be replaced when dependencies are built.
