file(REMOVE_RECURSE
  "CMakeFiles/aqvsh.dir/aqvsh.cpp.o"
  "CMakeFiles/aqvsh.dir/aqvsh.cpp.o.d"
  "aqvsh"
  "aqvsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqvsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
