file(REMOVE_RECURSE
  "CMakeFiles/warehouse_maintenance.dir/warehouse_maintenance.cpp.o"
  "CMakeFiles/warehouse_maintenance.dir/warehouse_maintenance.cpp.o.d"
  "warehouse_maintenance"
  "warehouse_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
