# Empty compiler generated dependencies file for warehouse_maintenance.
# This may be replaced when dependencies are built.
