file(REMOVE_RECURSE
  "CMakeFiles/telephony_warehouse.dir/telephony_warehouse.cpp.o"
  "CMakeFiles/telephony_warehouse.dir/telephony_warehouse.cpp.o.d"
  "telephony_warehouse"
  "telephony_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telephony_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
