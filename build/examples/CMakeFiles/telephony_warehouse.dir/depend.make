# Empty dependencies file for telephony_warehouse.
# This may be replaced when dependencies are built.
