file(REMOVE_RECURSE
  "CMakeFiles/optimizer_tour.dir/optimizer_tour.cpp.o"
  "CMakeFiles/optimizer_tour.dir/optimizer_tour.cpp.o.d"
  "optimizer_tour"
  "optimizer_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
