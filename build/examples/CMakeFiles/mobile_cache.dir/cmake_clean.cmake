file(REMOVE_RECURSE
  "CMakeFiles/mobile_cache.dir/mobile_cache.cpp.o"
  "CMakeFiles/mobile_cache.dir/mobile_cache.cpp.o.d"
  "mobile_cache"
  "mobile_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
