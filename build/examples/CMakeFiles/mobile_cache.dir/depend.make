# Empty dependencies file for mobile_cache.
# This may be replaced when dependencies are built.
