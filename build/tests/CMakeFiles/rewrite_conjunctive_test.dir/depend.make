# Empty dependencies file for rewrite_conjunctive_test.
# This may be replaced when dependencies are built.
