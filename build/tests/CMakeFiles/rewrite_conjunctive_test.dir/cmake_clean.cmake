file(REMOVE_RECURSE
  "CMakeFiles/rewrite_conjunctive_test.dir/rewrite_conjunctive_test.cc.o"
  "CMakeFiles/rewrite_conjunctive_test.dir/rewrite_conjunctive_test.cc.o.d"
  "rewrite_conjunctive_test"
  "rewrite_conjunctive_test.pdb"
  "rewrite_conjunctive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_conjunctive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
