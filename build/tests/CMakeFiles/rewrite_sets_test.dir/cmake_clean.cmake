file(REMOVE_RECURSE
  "CMakeFiles/rewrite_sets_test.dir/rewrite_sets_test.cc.o"
  "CMakeFiles/rewrite_sets_test.dir/rewrite_sets_test.cc.o.d"
  "rewrite_sets_test"
  "rewrite_sets_test.pdb"
  "rewrite_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
