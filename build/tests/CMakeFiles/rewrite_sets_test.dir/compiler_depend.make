# Empty compiler generated dependencies file for rewrite_sets_test.
# This may be replaced when dependencies are built.
