file(REMOVE_RECURSE
  "CMakeFiles/rewrite_aggregate_test.dir/rewrite_aggregate_test.cc.o"
  "CMakeFiles/rewrite_aggregate_test.dir/rewrite_aggregate_test.cc.o.d"
  "rewrite_aggregate_test"
  "rewrite_aggregate_test.pdb"
  "rewrite_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
