# Empty dependencies file for rewrite_aggregate_test.
# This may be replaced when dependencies are built.
