file(REMOVE_RECURSE
  "CMakeFiles/telephony_test.dir/telephony_test.cc.o"
  "CMakeFiles/telephony_test.dir/telephony_test.cc.o.d"
  "telephony_test"
  "telephony_test.pdb"
  "telephony_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telephony_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
