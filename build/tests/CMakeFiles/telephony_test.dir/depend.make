# Empty dependencies file for telephony_test.
# This may be replaced when dependencies are built.
