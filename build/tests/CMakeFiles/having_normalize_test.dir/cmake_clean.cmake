file(REMOVE_RECURSE
  "CMakeFiles/having_normalize_test.dir/having_normalize_test.cc.o"
  "CMakeFiles/having_normalize_test.dir/having_normalize_test.cc.o.d"
  "having_normalize_test"
  "having_normalize_test.pdb"
  "having_normalize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/having_normalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
