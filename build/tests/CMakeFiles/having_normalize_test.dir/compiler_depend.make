# Empty compiler generated dependencies file for having_normalize_test.
# This may be replaced when dependencies are built.
