file(REMOVE_RECURSE
  "CMakeFiles/rewrite_having_test.dir/rewrite_having_test.cc.o"
  "CMakeFiles/rewrite_having_test.dir/rewrite_having_test.cc.o.d"
  "rewrite_having_test"
  "rewrite_having_test.pdb"
  "rewrite_having_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewrite_having_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
