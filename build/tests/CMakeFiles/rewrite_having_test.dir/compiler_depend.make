# Empty compiler generated dependencies file for rewrite_having_test.
# This may be replaced when dependencies are built.
