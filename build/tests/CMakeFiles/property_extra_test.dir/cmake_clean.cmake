file(REMOVE_RECURSE
  "CMakeFiles/property_extra_test.dir/property_extra_test.cc.o"
  "CMakeFiles/property_extra_test.dir/property_extra_test.cc.o.d"
  "property_extra_test"
  "property_extra_test.pdb"
  "property_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
