# Empty compiler generated dependencies file for property_extra_test.
# This may be replaced when dependencies are built.
