file(REMOVE_RECURSE
  "CMakeFiles/maintain_test.dir/maintain_test.cc.o"
  "CMakeFiles/maintain_test.dir/maintain_test.cc.o.d"
  "maintain_test"
  "maintain_test.pdb"
  "maintain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
