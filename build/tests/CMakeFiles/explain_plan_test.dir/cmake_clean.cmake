file(REMOVE_RECURSE
  "CMakeFiles/explain_plan_test.dir/explain_plan_test.cc.o"
  "CMakeFiles/explain_plan_test.dir/explain_plan_test.cc.o.d"
  "explain_plan_test"
  "explain_plan_test.pdb"
  "explain_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
