# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/closure_test[1]_include.cmake")
include("/root/repo/build/tests/residual_test[1]_include.cmake")
include("/root/repo/build/tests/having_normalize_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_conjunctive_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_having_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_sets_test[1]_include.cmake")
include("/root/repo/build/tests/multiview_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/telephony_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/maintain_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/flatten_test[1]_include.cmake")
include("/root/repo/build/tests/property_extra_test[1]_include.cmake")
include("/root/repo/build/tests/explain_plan_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
