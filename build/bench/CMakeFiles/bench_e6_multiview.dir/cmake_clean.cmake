file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_multiview.dir/bench_e6_multiview.cc.o"
  "CMakeFiles/bench_e6_multiview.dir/bench_e6_multiview.cc.o.d"
  "bench_e6_multiview"
  "bench_e6_multiview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_multiview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
