# Empty dependencies file for bench_e2_search.
# This may be replaced when dependencies are built.
