file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_coalesce.dir/bench_e3_coalesce.cc.o"
  "CMakeFiles/bench_e3_coalesce.dir/bench_e3_coalesce.cc.o.d"
  "bench_e3_coalesce"
  "bench_e3_coalesce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
