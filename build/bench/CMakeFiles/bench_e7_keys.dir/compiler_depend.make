# Empty compiler generated dependencies file for bench_e7_keys.
# This may be replaced when dependencies are built.
