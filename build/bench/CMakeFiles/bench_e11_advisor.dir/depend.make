# Empty dependencies file for bench_e11_advisor.
# This may be replaced when dependencies are built.
