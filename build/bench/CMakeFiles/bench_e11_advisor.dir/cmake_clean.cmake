file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_advisor.dir/bench_e11_advisor.cc.o"
  "CMakeFiles/bench_e11_advisor.dir/bench_e11_advisor.cc.o.d"
  "bench_e11_advisor"
  "bench_e11_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
