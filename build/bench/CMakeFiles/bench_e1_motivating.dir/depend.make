# Empty dependencies file for bench_e1_motivating.
# This may be replaced when dependencies are built.
