file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_motivating.dir/bench_e1_motivating.cc.o"
  "CMakeFiles/bench_e1_motivating.dir/bench_e1_motivating.cc.o.d"
  "bench_e1_motivating"
  "bench_e1_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
