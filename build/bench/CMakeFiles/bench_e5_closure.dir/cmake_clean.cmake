file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_closure.dir/bench_e5_closure.cc.o"
  "CMakeFiles/bench_e5_closure.dir/bench_e5_closure.cc.o.d"
  "bench_e5_closure"
  "bench_e5_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
