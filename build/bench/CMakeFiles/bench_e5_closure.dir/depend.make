# Empty dependencies file for bench_e5_closure.
# This may be replaced when dependencies are built.
