# Empty dependencies file for bench_e4_multiplicity.
# This may be replaced when dependencies are built.
