file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_multiplicity.dir/bench_e4_multiplicity.cc.o"
  "CMakeFiles/bench_e4_multiplicity.dir/bench_e4_multiplicity.cc.o.d"
  "bench_e4_multiplicity"
  "bench_e4_multiplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_multiplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
