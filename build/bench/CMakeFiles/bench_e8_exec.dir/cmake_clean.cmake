file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_exec.dir/bench_e8_exec.cc.o"
  "CMakeFiles/bench_e8_exec.dir/bench_e8_exec.cc.o.d"
  "bench_e8_exec"
  "bench_e8_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
