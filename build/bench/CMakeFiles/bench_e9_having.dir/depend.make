# Empty dependencies file for bench_e9_having.
# This may be replaced when dependencies are built.
