file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_having.dir/bench_e9_having.cc.o"
  "CMakeFiles/bench_e9_having.dir/bench_e9_having.cc.o.d"
  "bench_e9_having"
  "bench_e9_having.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_having.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
