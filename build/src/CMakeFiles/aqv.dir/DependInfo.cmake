
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/view_selection.cc" "src/CMakeFiles/aqv.dir/advisor/view_selection.cc.o" "gcc" "src/CMakeFiles/aqv.dir/advisor/view_selection.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/aqv.dir/base/status.cc.o" "gcc" "src/CMakeFiles/aqv.dir/base/status.cc.o.d"
  "/root/repo/src/base/strings.cc" "src/CMakeFiles/aqv.dir/base/strings.cc.o" "gcc" "src/CMakeFiles/aqv.dir/base/strings.cc.o.d"
  "/root/repo/src/base/value.cc" "src/CMakeFiles/aqv.dir/base/value.cc.o" "gcc" "src/CMakeFiles/aqv.dir/base/value.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/aqv.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/aqv.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/keys.cc" "src/CMakeFiles/aqv.dir/catalog/keys.cc.o" "gcc" "src/CMakeFiles/aqv.dir/catalog/keys.cc.o.d"
  "/root/repo/src/exec/csv.cc" "src/CMakeFiles/aqv.dir/exec/csv.cc.o" "gcc" "src/CMakeFiles/aqv.dir/exec/csv.cc.o.d"
  "/root/repo/src/exec/evaluator.cc" "src/CMakeFiles/aqv.dir/exec/evaluator.cc.o" "gcc" "src/CMakeFiles/aqv.dir/exec/evaluator.cc.o.d"
  "/root/repo/src/exec/explain_plan.cc" "src/CMakeFiles/aqv.dir/exec/explain_plan.cc.o" "gcc" "src/CMakeFiles/aqv.dir/exec/explain_plan.cc.o.d"
  "/root/repo/src/exec/expression.cc" "src/CMakeFiles/aqv.dir/exec/expression.cc.o" "gcc" "src/CMakeFiles/aqv.dir/exec/expression.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/aqv.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/aqv.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/planner.cc" "src/CMakeFiles/aqv.dir/exec/planner.cc.o" "gcc" "src/CMakeFiles/aqv.dir/exec/planner.cc.o.d"
  "/root/repo/src/exec/table.cc" "src/CMakeFiles/aqv.dir/exec/table.cc.o" "gcc" "src/CMakeFiles/aqv.dir/exec/table.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/CMakeFiles/aqv.dir/ir/builder.cc.o" "gcc" "src/CMakeFiles/aqv.dir/ir/builder.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/aqv.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/aqv.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/query.cc" "src/CMakeFiles/aqv.dir/ir/query.cc.o" "gcc" "src/CMakeFiles/aqv.dir/ir/query.cc.o.d"
  "/root/repo/src/ir/validate.cc" "src/CMakeFiles/aqv.dir/ir/validate.cc.o" "gcc" "src/CMakeFiles/aqv.dir/ir/validate.cc.o.d"
  "/root/repo/src/ir/views.cc" "src/CMakeFiles/aqv.dir/ir/views.cc.o" "gcc" "src/CMakeFiles/aqv.dir/ir/views.cc.o.d"
  "/root/repo/src/maintain/incremental.cc" "src/CMakeFiles/aqv.dir/maintain/incremental.cc.o" "gcc" "src/CMakeFiles/aqv.dir/maintain/incremental.cc.o.d"
  "/root/repo/src/parser/binder.cc" "src/CMakeFiles/aqv.dir/parser/binder.cc.o" "gcc" "src/CMakeFiles/aqv.dir/parser/binder.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/aqv.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/aqv.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/aqv.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/aqv.dir/parser/parser.cc.o.d"
  "/root/repo/src/reason/closure.cc" "src/CMakeFiles/aqv.dir/reason/closure.cc.o" "gcc" "src/CMakeFiles/aqv.dir/reason/closure.cc.o.d"
  "/root/repo/src/reason/having_normalize.cc" "src/CMakeFiles/aqv.dir/reason/having_normalize.cc.o" "gcc" "src/CMakeFiles/aqv.dir/reason/having_normalize.cc.o.d"
  "/root/repo/src/reason/residual.cc" "src/CMakeFiles/aqv.dir/reason/residual.cc.o" "gcc" "src/CMakeFiles/aqv.dir/reason/residual.cc.o.d"
  "/root/repo/src/rewrite/aggregate_rewriter.cc" "src/CMakeFiles/aqv.dir/rewrite/aggregate_rewriter.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/aggregate_rewriter.cc.o.d"
  "/root/repo/src/rewrite/conditions.cc" "src/CMakeFiles/aqv.dir/rewrite/conditions.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/conditions.cc.o.d"
  "/root/repo/src/rewrite/conjunctive_rewriter.cc" "src/CMakeFiles/aqv.dir/rewrite/conjunctive_rewriter.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/conjunctive_rewriter.cc.o.d"
  "/root/repo/src/rewrite/cost.cc" "src/CMakeFiles/aqv.dir/rewrite/cost.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/cost.cc.o.d"
  "/root/repo/src/rewrite/explain.cc" "src/CMakeFiles/aqv.dir/rewrite/explain.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/explain.cc.o.d"
  "/root/repo/src/rewrite/flatten.cc" "src/CMakeFiles/aqv.dir/rewrite/flatten.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/flatten.cc.o.d"
  "/root/repo/src/rewrite/mapping.cc" "src/CMakeFiles/aqv.dir/rewrite/mapping.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/mapping.cc.o.d"
  "/root/repo/src/rewrite/multiview.cc" "src/CMakeFiles/aqv.dir/rewrite/multiview.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/multiview.cc.o.d"
  "/root/repo/src/rewrite/optimizer.cc" "src/CMakeFiles/aqv.dir/rewrite/optimizer.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/optimizer.cc.o.d"
  "/root/repo/src/rewrite/rewriter.cc" "src/CMakeFiles/aqv.dir/rewrite/rewriter.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/rewriter.cc.o.d"
  "/root/repo/src/rewrite/set_rewriter.cc" "src/CMakeFiles/aqv.dir/rewrite/set_rewriter.cc.o" "gcc" "src/CMakeFiles/aqv.dir/rewrite/set_rewriter.cc.o.d"
  "/root/repo/src/workload/random_db.cc" "src/CMakeFiles/aqv.dir/workload/random_db.cc.o" "gcc" "src/CMakeFiles/aqv.dir/workload/random_db.cc.o.d"
  "/root/repo/src/workload/random_query.cc" "src/CMakeFiles/aqv.dir/workload/random_query.cc.o" "gcc" "src/CMakeFiles/aqv.dir/workload/random_query.cc.o.d"
  "/root/repo/src/workload/telephony.cc" "src/CMakeFiles/aqv.dir/workload/telephony.cc.o" "gcc" "src/CMakeFiles/aqv.dir/workload/telephony.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
