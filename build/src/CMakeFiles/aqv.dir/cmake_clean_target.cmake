file(REMOVE_RECURSE
  "libaqv.a"
)
