# Empty compiler generated dependencies file for aqv.
# This may be replaced when dependencies are built.
