// Experiment E22 — what do DELETE/UPDATE cost through the maintained write
// path, and does MVCC churn stay memory-bounded? (PR 10). A self-timed A/B
// harness in the E19 mould (no google-benchmark: the binary is the CI gate,
// so it owns its exit code and its JSON artifact). Three series:
//
//   1. delete_maintain — per-statement latency of single-row DELETEs against
//      a service whose dependent view folds deletes incrementally (SUM+COUNT
//      tracks group liveness) vs an identical service whose view cannot (a
//      MAX view with no COUNT output forces the full-recompute fallback).
//      This is the gated series (--min-maintain-speedup): incremental delete
//      maintenance must beat recompute once the table is large enough to
//      make recomputation hurt.
//
//   2. update_maintain — the same A/B for single-row UPDATEs (a delete+
//      insert delta through the identical path).
//
//   3. churn_memory — an insert/select/delete churn loop with no pinned
//      snapshot, sampling the MVCC ledger (Database::MvccStats) every
//      cycle. The always-on memory gate: retired versions (and their
//      columnar pivot caches) must die with the write that replaced them —
//      peak versions_alive stays small and final bytes_pinned is zero.
//
// Both latency arms run the same statements over identical seeded data, and
// the harness cross-checks multiset equality of the two base tables at the
// end — a wrong-result incremental fold aborts the bench.
//
// Flags:
//   --rows=N                   rows in the base table (default 200000)
//   --groups=N                 grouping-key cardinality (default 32)
//   --reps=N                   timed statements per series (default 40)
//   --churn=N                  churn cycles in series 3 (default 60)
//   --seed=N                   data seed (default 42)
//   --json=PATH                JSON artifact (default e22_dml.json)
//   --min-maintain-speedup=X   exit 1 if delete speedup < X
//                              (default: report only, never fail)
//
// e.g. build/bench/bench_e22_dml --min-maintain-speedup=2
//          --json=bench/e22_dml.json

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/table.h"
#include "service/query_service.h"

namespace aqv {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

const char* FlagValue(const char* arg, const char* name) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

// A service over T(A, B) — A in [0, groups), B unique per row — plus one
// materialized view over T: SUM+COUNT (delete-foldable) or MAX-only
// (deletes force the recompute fallback).
std::unique_ptr<QueryService> MakeArm(int rows, int groups, uint64_t seed,
                                      bool foldable) {
  auto service = std::make_unique<QueryService>();
  CheckOrDie(service->Execute("CREATE TABLE T(A, B)").status(), "create T");
  std::mt19937_64 rng(seed);
  std::string sql;
  const int kBatch = 1000;
  for (int i = 0; i < rows; ++i) {
    if (sql.empty()) sql = "INSERT INTO T VALUES ";
    else sql += ", ";
    sql += "(" + std::to_string(rng() % groups) + ", " + std::to_string(i) +
           ")";
    if ((i + 1) % kBatch == 0 || i + 1 == rows) {
      CheckOrDie(service->Execute(sql).status(), "populate T");
      sql.clear();
    }
  }
  const char* view =
      foldable ? "CREATE MATERIALIZED VIEW V AS SELECT A_1, SUM(B_1) AS S, "
                 "COUNT(B_1) AS N FROM T GROUPBY A_1"
               : "CREATE MATERIALIZED VIEW V AS SELECT A_1, MAX(B_1) AS M "
                 "FROM T GROUPBY A_1";
  CheckOrDie(service->Execute(view).status(), "create V");
  return service;
}

double TimedStatement(QueryService* service, const std::string& sql) {
  Clock::time_point t0 = Clock::now();
  CheckOrDie(service->Execute(sql).status(), sql.c_str());
  return MicrosSince(t0);
}

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  int rows = 200000;
  int groups = 32;
  int reps = 40;
  int churn = 60;
  uint64_t seed = 42;
  std::string json_path = "e22_dml.json";
  double min_maintain_speedup = -1.0;  // report only

  for (int i = 1; i < argc; ++i) {
    if (const char* v = aqv::FlagValue(argv[i], "--rows")) {
      rows = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--groups")) {
      groups = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--reps")) {
      reps = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--churn")) {
      churn = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = aqv::FlagValue(argv[i], "--json")) {
      json_path = v;
    } else if (const char* v =
                   aqv::FlagValue(argv[i], "--min-maintain-speedup")) {
      min_maintain_speedup = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (rows < 4 * reps || groups < 1 || reps < 1 || churn < 1) {
    std::fprintf(stderr,
                 "need --rows >= 4*reps, --groups>=1, --reps>=1, --churn>=1\n");
    return 2;
  }

  // ---- Series 1 + 2: incremental fold vs recompute fallback. ----
  // Both arms hold identical data; the only difference is whether the view
  // shape lets the maintainer fold deletes. DELETEs consume B = 0..reps-1,
  // UPDATEs move B = 2*reps..3*reps-1 out of the matchable range; the two
  // index windows never overlap.
  auto incremental = aqv::MakeArm(rows, groups, seed, /*foldable=*/true);
  auto recompute = aqv::MakeArm(rows, groups, seed, /*foldable=*/false);

  std::vector<double> del_inc, del_rec, upd_inc, upd_rec;
  for (int i = -1; i < reps; ++i) {  // i == -1: discarded warmup pair
    std::string del =
        "DELETE FROM T WHERE B = " + std::to_string(i < 0 ? reps : i);
    double inc = aqv::TimedStatement(incremental.get(), del);
    double rec = aqv::TimedStatement(recompute.get(), del);
    if (i >= 0) {
      del_inc.push_back(inc);
      del_rec.push_back(rec);
    }
  }
  for (int i = -1; i < reps; ++i) {
    std::string upd = "UPDATE T SET B = B + 1000000000 WHERE B = " +
                      std::to_string(2 * reps + (i < 0 ? reps : i));
    double inc = aqv::TimedStatement(incremental.get(), upd);
    double rec = aqv::TimedStatement(recompute.get(), upd);
    if (i >= 0) {
      upd_inc.push_back(inc);
      upd_rec.push_back(rec);
    }
  }

  // The arms ran identical DML over identical data: their base tables must
  // be the same multiset, or the incremental fold corrupted the write path.
  {
    aqv::ServiceSnapshotPtr a = incremental->PinSnapshot();
    aqv::ServiceSnapshotPtr b = recompute->PinSnapshot();
    const aqv::Table* ta = aqv::ValueOrDie(a->db.Get("T"), "arm A table");
    const aqv::Table* tb = aqv::ValueOrDie(b->db.Get("T"), "arm B table");
    if (!aqv::MultisetEqual(*ta, *tb)) {
      std::fprintf(stderr, "EQUIVALENCE VIOLATION: arms diverged:\n%s\n",
                   aqv::DescribeMultisetDifference(*ta, *tb).c_str());
      std::abort();
    }
  }
  aqv::ServiceStats inc_stats = incremental->Stats();
  aqv::ServiceStats rec_stats = recompute->Stats();

  double del_inc_med = aqv::Median(del_inc);
  double del_rec_med = aqv::Median(del_rec);
  double del_speedup = del_inc_med > 0 ? del_rec_med / del_inc_med : 0.0;
  double upd_inc_med = aqv::Median(upd_inc);
  double upd_rec_med = aqv::Median(upd_rec);
  double upd_speedup = upd_inc_med > 0 ? upd_rec_med / upd_inc_med : 0.0;

  // ---- Series 3: MVCC churn with no pinned snapshot. ----
  // Each cycle inserts a row, runs a SELECT (building the new version's
  // columnar pivot cache — the bytes that must die with it), then deletes
  // the row. The ledger is sampled every cycle.
  auto churn_service = aqv::MakeArm(rows / 10, groups, seed + 1,
                                    /*foldable=*/true);
  size_t peak_versions = 0;
  size_t peak_pinned = 0;
  for (int i = 0; i < churn; ++i) {
    std::string b = std::to_string(2000000000 + i);
    aqv::CheckOrDie(
        churn_service->Execute("INSERT INTO T VALUES (0, " + b + ")")
            .status(),
        "churn insert");
    aqv::CheckOrDie(churn_service
                        ->Select("SELECT A_1, SUM(B_1) AS S, COUNT(B_1) AS N "
                                 "FROM T GROUPBY A_1")
                        .status(),
                    "churn select");
    aqv::CheckOrDie(
        churn_service->Execute("DELETE FROM T WHERE B = " + b).status(),
        "churn delete");
    for (const aqv::Database::TableMvcc& m : churn_service->Stats().mvcc) {
      peak_versions = std::max(peak_versions, m.versions_alive);
      peak_pinned = std::max(peak_pinned, m.bytes_pinned);
    }
  }
  size_t final_pinned = 0;
  size_t final_versions = 0;
  for (const aqv::Database::TableMvcc& m : churn_service->Stats().mvcc) {
    final_pinned += m.bytes_pinned;
    final_versions = std::max(final_versions, m.versions_alive);
  }
  // Bounded means: nothing left pinned once the loop quiesces, and live
  // version counts never trend with the cycle count.
  bool memory_bounded = final_pinned == 0 && final_versions <= 2 &&
                        peak_versions <= 4;

  std::fprintf(
      stderr,
      "delete: incremental=%.0fus recompute=%.0fus speedup=%.1fx "
      "(maintained=%llu, recomputed=%llu)\n"
      "update: incremental=%.0fus recompute=%.0fus speedup=%.1fx\n"
      "churn:  peak_versions=%zu peak_pinned=%zuB final_pinned=%zuB "
      "bounded=%s\n",
      del_inc_med, del_rec_med, del_speedup,
      static_cast<unsigned long long>(inc_stats.views_maintained),
      static_cast<unsigned long long>(rec_stats.views_recomputed),
      upd_inc_med, upd_rec_med, upd_speedup, peak_versions, peak_pinned,
      final_pinned, memory_bounded ? "yes" : "NO");

  // The A/B premise must actually hold: the incremental arm folded, the
  // recompute arm fell back. Otherwise the speedup compares nothing.
  if (inc_stats.views_maintained == 0 || rec_stats.views_recomputed == 0) {
    std::fprintf(stderr,
                 "FAIL: arms did not exercise fold vs fallback "
                 "(maintained=%llu recomputed=%llu)\n",
                 static_cast<unsigned long long>(inc_stats.views_maintained),
                 static_cast<unsigned long long>(rec_stats.views_recomputed));
    return 1;
  }

  bool speedup_pass =
      min_maintain_speedup < 0 || del_speedup >= min_maintain_speedup;
  bool pass = speedup_pass && memory_bounded;
  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"experiment\": \"E22\",\n"
      "  \"workload\": {\"rows\": %d, \"groups\": %d, \"reps\": %d,\n"
      "                \"churn_cycles\": %d, \"seed\": %llu},\n"
      "  \"delete_maintain\": {\"incremental_median_micros\": %.0f,\n"
      "                       \"recompute_median_micros\": %.0f,\n"
      "                       \"speedup\": %.2f},\n"
      "  \"update_maintain\": {\"incremental_median_micros\": %.0f,\n"
      "                       \"recompute_median_micros\": %.0f,\n"
      "                       \"speedup\": %.2f},\n"
      "  \"churn_memory\": {\"peak_versions_alive\": %zu,\n"
      "                    \"peak_bytes_pinned\": %zu,\n"
      "                    \"final_bytes_pinned\": %zu,\n"
      "                    \"bounded\": %s},\n"
      "  \"equivalence_checked\": true,\n"
      "  \"min_maintain_speedup\": %.1f,\n"
      "  \"pass\": %s\n"
      "}\n",
      rows, groups, reps, churn, static_cast<unsigned long long>(seed),
      del_inc_med, del_rec_med, del_speedup, upd_inc_med, upd_rec_med,
      upd_speedup, peak_versions, peak_pinned, final_pinned,
      memory_bounded ? "true" : "false", min_maintain_speedup,
      pass ? "true" : "false");
  std::fputs(json, stdout);
  std::ofstream out(json_path, std::ios::trunc);
  if (out) {
    out << json;
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: %s\n",
                 !memory_bounded
                     ? "MVCC churn left memory pinned or versions growing"
                     : "delete maintenance speedup below gate");
    return 1;
  }
  return 0;
}
