// Experiment E13 — observability overhead: what span tracing and the
// slow-query log cost on the E12 service workload. The tentpole claim is
// that *disabled* tracing is free (one relaxed atomic load per span site),
// so serving throughput with the tracer off must stay within noise (<2%) of
// the seed's untraced service. Enabled tracing pays for clock reads,
// attribute strings and the ring-buffer mutex — reported here so users can
// budget it before flipping TRACE ON in production.
//
// Series (items = statements served, single service instance per mode):
//   E13/TraceOverhead/mode:0 — tracing disabled (the default serving path)
//   E13/TraceOverhead/mode:1 — tracing enabled, spans into the global ring
//   E13/TraceOverhead/mode:2 — tracing disabled + slow-query log armed with
//                              a 1us threshold (worst case: every SELECT is
//                              logged and fingerprinted)
//
// Headline: items_per_second(mode:0) vs the same series with the
// instrumentation compiled in; mode:1/mode:0 is the enabled-tracing cost.
// The trace_dropped counter shows ring churn at full load.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/trace.h"
#include "bench/bench_util.h"
#include "service/query_service.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

constexpr int kNumCalls = 20000;
constexpr uint64_t kWorkloadSeed = 42;

// The E12 pool: Example 1.1 plan-earnings queries plus yearly summaries,
// all rewritable against the two materialized views.
const std::vector<std::string>& QueryPool() {
  static const std::vector<std::string>* pool = [] {
    auto* p = new std::vector<std::string>();
    char buf[256];
    for (int year = 1994; year <= 1996; ++year) {
      for (double threshold : {200.0, 400.0, 800.0, 1e9}) {
        std::snprintf(buf, sizeof(buf),
                      "SELECT Plan_Id_2, Plan_Name_2, SUM(Charge_1) AS Total "
                      "FROM Calls, Calling_Plans "
                      "WHERE Plan_Id_1 = Plan_Id_2 AND Year_1 = %d "
                      "GROUPBY Plan_Id_2, Plan_Name_2 "
                      "HAVING SUM(Charge_1) < %.1f",
                      year, threshold);
        p->push_back(buf);
      }
      std::snprintf(buf, sizeof(buf),
                    "SELECT Plan_Id_1, SUM(Charge_1) AS Yearly FROM Calls "
                    "WHERE Year_1 = %d GROUPBY Plan_Id_1",
                    year);
      p->push_back(buf);
    }
    return p;
  }();
  return *pool;
}

enum Mode { kTracingOff = 0, kTracingOn = 1, kSlowQueryLog = 2 };

QueryService* GetService(int mode) {
  static QueryService* services[3] = {nullptr, nullptr, nullptr};
  QueryService*& slot = services[mode];
  if (slot != nullptr) return slot;

  TelephonyParams params;
  params.num_calls = kNumCalls;
  params.seed = kWorkloadSeed;
  TelephonyWorkload w = MakeTelephonyWorkload(params);

  ServiceOptions options;
  if (mode == kSlowQueryLog) options.slow_query_micros = 1;
  auto* service = new QueryService(options);
  CheckOrDie(service->Bootstrap(std::move(w.catalog), std::move(w.db),
                                std::move(w.views)),
             "bootstrap service");
  CheckOrDie(service->Execute("REFRESH V1").status(), "materialize V1");
  CheckOrDie(service
                 ->Execute("CREATE MATERIALIZED VIEW V2 AS "
                           "SELECT Plan_Id_1, Year_1, SUM(Charge_1) AS Yearly "
                           "FROM Calls GROUPBY Plan_Id_1, Year_1")
                 .status(),
             "materialize V2");
  slot = service;
  return slot;
}

void BM_E13_TraceOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  QueryService* service = GetService(mode);
  const std::vector<std::string>& pool = QueryPool();

  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  if (mode == kTracingOn) {
    tracer.Enable();
  } else {
    tracer.Disable();
  }

  size_t next = 0;
  for (auto _ : state) {
    const std::string& q = pool[next++ % pool.size()];
    Result<StatementResult> r = service->Execute(q);
    if (!r.ok()) {
      tracer.Disable();
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r->table);
  }
  state.SetItemsProcessed(state.iterations());
  if (mode == kTracingOn) {
    state.counters["trace_events"] =
        benchmark::Counter(static_cast<double>(tracer.Snapshot().size()));
    state.counters["trace_dropped"] =
        benchmark::Counter(static_cast<double>(tracer.dropped()));
  }
  if (mode == kSlowQueryLog) {
    state.counters["slow_queries"] = benchmark::Counter(
        static_cast<double>(service->Stats().slow_queries));
  }
  tracer.Disable();
  tracer.Clear();
}

BENCHMARK(BM_E13_TraceOverhead)
    ->ArgName("mode")
    ->Arg(kTracingOff)
    ->Arg(kTracingOn)
    ->Arg(kSlowQueryLog)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv
