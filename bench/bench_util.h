#ifndef AQV_BENCH_BENCH_UTIL_H_
#define AQV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>

#include "base/result.h"

namespace aqv {

/// Unwraps a Result in bench setup code, aborting on failure (benchmarks
/// have no gtest assertions).
template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup: %s: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return *std::move(result);
}

inline void CheckOrDie(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup: %s: %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

}  // namespace aqv

#endif  // AQV_BENCH_BENCH_UTIL_H_
