// Experiment E6 — the multi-view search space (Theorem 3.2): a width-k
// chain-join query where every occurrence has its own covering view. The
// iterative procedure reaches all 2^k - 1 non-trivial rewritings; this
// bench measures full enumeration and the single greedy pass, and asserts
// the Church–Rosser property by comparing the two opposite view orders.
//
// Series:
//   E6/EnumerateAll/<k>  — all distinct rewritings (counter `rewritings`)
//   E6/IterativePass/<k> — one greedy left-to-right pass
//   E6/ChurchRosser/<k>  — both orders + canonical-key comparison

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "ir/builder.h"
#include "rewrite/multiview.h"
#include "rewrite/rewriter.h"

namespace aqv {
namespace {

struct Scenario {
  Query query;
  ViewRegistry views;
  std::vector<std::string> view_names;
};

Scenario MakeScenario(int k) {
  Scenario s;
  QueryBuilder qb;
  for (int i = 0; i < k; ++i) {
    // Distinct base tables T0..Tk-1, chained on B_i = A_{i+1}.
    qb.From("T" + std::to_string(i),
            {"A" + std::to_string(i), "B" + std::to_string(i)});
  }
  qb.Select("A0").SelectAgg(AggFn::kCount, "B0", "n").GroupBy("A0");
  for (int i = 0; i + 1 < k; ++i) {
    qb.WhereCols("B" + std::to_string(i), CmpOp::kEq,
                 "A" + std::to_string(i + 1));
  }
  s.query = qb.BuildOrDie();
  for (int i = 0; i < k; ++i) {
    std::string name = "V" + std::to_string(i);
    CheckOrDie(
        s.views.Register(ViewDef{
            name, QueryBuilder()
                      .From("T" + std::to_string(i), {"X", "Y"})
                      .Select("X")
                      .Select("Y")
                      .BuildOrDie()}),
        "register view");
    s.view_names.push_back(name);
  }
  return s;
}

void BM_E6_EnumerateAll(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Scenario s = MakeScenario(k);
  Rewriter rewriter(&s.views);
  size_t count = 0;
  for (auto _ : state) {
    Result<std::vector<Query>> all =
        rewriter.EnumerateAllRewritings(s.query, s.view_names, 1 << 12);
    count = all.ok() ? all->size() : 0;
    benchmark::DoNotOptimize(all);
  }
  state.counters["k"] = k;
  state.counters["rewritings"] = static_cast<double>(count);
  state.counters["expected"] = static_cast<double>((1 << k) - 1);
}

void BM_E6_IterativePass(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Scenario s = MakeScenario(k);
  Rewriter rewriter(&s.views);
  size_t used_count = 0;
  for (auto _ : state) {
    std::vector<std::string> used;
    Result<Query> r = rewriter.RewriteIteratively(s.query, s.view_names, &used);
    used_count = used.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["k"] = k;
  state.counters["views_used"] = static_cast<double>(used_count);
}

void BM_E6_ChurchRosser(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  Scenario s = MakeScenario(k);
  Rewriter rewriter(&s.views);
  std::vector<std::string> reversed(s.view_names.rbegin(), s.view_names.rend());
  bool confluent = false;
  for (auto _ : state) {
    Result<Query> fwd = rewriter.RewriteIteratively(s.query, s.view_names,
                                                    nullptr);
    Result<Query> bwd = rewriter.RewriteIteratively(s.query, reversed, nullptr);
    confluent = fwd.ok() && bwd.ok() &&
                CanonicalQueryKey(*fwd) == CanonicalQueryKey(*bwd);
    benchmark::DoNotOptimize(confluent);
  }
  state.counters["k"] = k;
  state.counters["confluent"] = confluent;
}

BENCHMARK(BM_E6_EnumerateAll)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E6_IterativePass)->DenseRange(2, 6)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E6_ChurchRosser)->DenseRange(2, 6)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv
