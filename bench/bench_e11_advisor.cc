// Experiment E11 (extension) — the view-selection advisor (the paper's
// stated future work): cost of recommending views for a workload, and the
// quality of the recommendation, sweeping the workload size.
//
// Series:
//   E11/Recommend/<queries> — full advisor run (candidate generation,
//     materialization probing, benefit scoring, greedy selection).
//     Counters: selected views and the estimated workload cost reduction.

#include <vector>

#include <benchmark/benchmark.h>

#include "advisor/view_selection.h"
#include "bench/bench_util.h"
#include "ir/builder.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

std::vector<Query> MakeWorkload(int n) {
  std::vector<Query> workload;
  const char* kGroupings[] = {"Plan", "Month", "Year", "Cust", "Day"};
  for (int i = 0; i < n; ++i) {
    QueryBuilder b;
    b.From("Calls", {"Id", "Cust", "Plan", "Day", "Month", "Year", "Charge"});
    const char* g = kGroupings[i % 5];
    b.Select(g).GroupBy(g);
    switch (i % 3) {
      case 0:
        b.SelectAgg(AggFn::kSum, "Charge", "total");
        break;
      case 1:
        b.SelectAgg(AggFn::kAvg, "Charge", "avg_charge");
        break;
      case 2:
        b.SelectAgg(AggFn::kCount, "Id", "n");
        break;
    }
    if (i % 2 == 0) {
      b.WhereConst("Year", CmpOp::kEq, Value::Int64(1994 + i % 3));
    }
    workload.push_back(b.BuildOrDie());
  }
  return workload;
}

void BM_E11_Recommend(benchmark::State& state) {
  static TelephonyWorkload* w = [] {
    auto* t = new TelephonyWorkload();
    TelephonyParams params;
    params.num_calls = 50000;
    *t = MakeTelephonyWorkload(params);
    return t;
  }();
  int n = static_cast<int>(state.range(0));
  std::vector<Query> workload = MakeWorkload(n);
  AdvisorOptions options;
  options.space_budget_rows = 20000;
  ViewAdvisor advisor(&w->db, options);

  size_t selected = 0;
  double reduction = 0;
  for (auto _ : state) {
    AdvisorReport report =
        ValueOrDie(advisor.Recommend(workload), "advisor run");
    selected = report.selected.size();
    reduction = report.workload_cost_before > 0
                    ? 1.0 - report.workload_cost_after /
                                report.workload_cost_before
                    : 0;
    benchmark::DoNotOptimize(report);
  }
  state.counters["queries"] = n;
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["cost_reduction_pct"] = 100.0 * reduction;
}

BENCHMARK(BM_E11_Recommend)->Arg(1)->Arg(5)->Arg(15)->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv
