// Experiment E18 — the durable storage subsystem (PR 6). Two questions:
//
//   1. What does durability cost at the commit point? The WAL append +
//      fsync sits immediately before the in-memory PutAll publication,
//      so the per-commit overhead is the append (cheap) plus the fsync
//      (the physical floor of durable commit latency).
//
//        BM_E18_CommitLatency/storage:0  — in-memory service (no WAL)
//        BM_E18_CommitLatency/storage:1/fsync:0  — WAL append, no fsync
//        BM_E18_CommitLatency/storage:1/fsync:1  — full durable commit
//
//      items = committed INSERT statements, one row each, maintaining a
//      dependent SUM view (the realistic write path, not a raw append).
//
//   2. How does recovery time scale with the WAL length? Setup builds a
//      db with a checkpoint and then N un-checkpointed commits; each
//      iteration constructs a QueryService over those files, which runs
//      the full recovery path (meta-page pick, checkpoint load, WAL
//      replay, stale-view recompute). Recovery is read-only, so every
//      iteration replays the identical N records.
//
//        BM_E18_RecoveryTime/wal_commits:N    items = replayed commits
//
// Raw output: bench/e18_durability.json (gitignored with the other bench
// artifacts), e.g.
//
//   build/bench/bench_e18_durability --benchmark_format=json
//       --benchmark_out=bench/e18_durability.json

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "service/query_service.h"

namespace aqv {
namespace {

std::string BenchPath() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  return dir + "/aqv_bench_e18.db";
}

void RemoveDb(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

std::unique_ptr<QueryService> FreshService(bool durable, bool fsync) {
  ServiceOptions options;
  if (durable) {
    options.storage_path = BenchPath();
    options.storage_fsync_wal = fsync;
  }
  auto service = std::make_unique<QueryService>(options);
  CheckOrDie(service->storage_status(), "open storage");
  CheckOrDie(service->Execute("CREATE TABLE Calls(Id, Charge)").status(),
             "create table");
  CheckOrDie(service
                 ->Execute("CREATE MATERIALIZED VIEW Revenue AS "
                           "SELECT SUM(Charge_1) FROM Calls")
                 .status(),
             "create view");
  return service;
}

void BM_E18_CommitLatency(benchmark::State& state) {
  const bool durable = state.range(0) != 0;
  const bool fsync = state.range(1) != 0;
  RemoveDb(BenchPath());
  auto service = FreshService(durable, fsync);
  int64_t id = 0;
  for (auto _ : state) {
    std::string stmt = "INSERT INTO Calls VALUES (" + std::to_string(id) +
                       ", " + std::to_string(id % 97) + ")";
    ++id;
    auto result = service->Execute(stmt);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  if (durable) {
    ServiceStats stats = service->Stats();
    state.counters["wal_bytes_per_commit"] = benchmark::Counter(
        static_cast<double>(stats.storage_wal_bytes) /
        static_cast<double>(stats.storage_wal_records > 0
                                ? stats.storage_wal_records
                                : 1));
    state.counters["wal_fsyncs"] =
        static_cast<double>(stats.storage_wal_fsyncs);
  }
  service.reset();
  RemoveDb(BenchPath());
}
BENCHMARK(BM_E18_CommitLatency)
    ->ArgNames({"storage", "fsync"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_E18_RecoveryTime(benchmark::State& state) {
  const int64_t wal_commits = state.range(0);
  RemoveDb(BenchPath());
  {
    // fsync off while building the fixture: we only need the bytes on
    // disk for replay, and the build is not what is being measured.
    auto service = FreshService(/*durable=*/true, /*fsync=*/false);
    CheckOrDie(service->Execute("CHECKPOINT").status(), "checkpoint");
    for (int64_t i = 0; i < wal_commits; ++i) {
      std::string stmt = "INSERT INTO Calls VALUES (" + std::to_string(i) +
                         ", " + std::to_string(i % 97) + ")";
      CheckOrDie(service->Execute(stmt).status(), "fixture insert");
    }
  }

  ServiceOptions options;
  options.storage_path = BenchPath();
  uint64_t replayed = 0;
  int64_t recovery_ms = 0;
  for (auto _ : state) {
    QueryService service(options);
    CheckOrDie(service.storage_status(), "recover");
    ServiceStats stats = service.Stats();
    replayed = stats.storage_wal_replayed;
    recovery_ms = stats.storage_recovery_ms;
    benchmark::DoNotOptimize(replayed);
  }
  if (replayed != static_cast<uint64_t>(wal_commits)) {
    state.SkipWithError("replayed commit count mismatch");
  }
  state.SetItemsProcessed(state.iterations() * wal_commits);
  state.counters["recovery_ms"] = static_cast<double>(recovery_ms);
  RemoveDb(BenchPath());
}
BENCHMARK(BM_E18_RecoveryTime)
    ->ArgName("wal_commits")
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv
