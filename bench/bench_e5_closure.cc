// Experiment E5 — the reasoning substrate's cost (footnote 2 of the paper:
// "the closure ... has size polynomial in the size of Conds(Q)"). Measures
// closure construction, entailment checks and residual computation as the
// number of atoms grows, over three condition shapes: an order chain
// (A1 < A2 < ... < An), an equality chain, and random conditions.
//
// Series:
//   E5/BuildChain/<n>, E5/BuildEqualities/<n>, E5/BuildRandom/<n>
//   E5/Implies/<n>   — one entailment query against a built closure
//   E5/Residual/<n>  — full residual computation (condition C3)

#include <random>
#include <set>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "reason/closure.h"
#include "reason/residual.h"

namespace aqv {
namespace {

Operand Col(int i) { return Operand::Column("A" + std::to_string(i)); }

std::vector<Predicate> OrderChain(int n) {
  std::vector<Predicate> conds;
  for (int i = 0; i + 1 < n; ++i) {
    conds.push_back(Predicate{Col(i), CmpOp::kLt, Col(i + 1)});
  }
  return conds;
}

std::vector<Predicate> EqualityChain(int n) {
  std::vector<Predicate> conds;
  for (int i = 0; i + 1 < n; ++i) {
    conds.push_back(Predicate{Col(i), CmpOp::kEq, Col(i + 1)});
  }
  return conds;
}

std::vector<Predicate> RandomConds(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Predicate> conds;
  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe};
  int cols = n;  // sparse: few repeated columns, so merges stay rare
  for (int i = 0; i < n; ++i) {
    int a = static_cast<int>(rng() % cols), b = static_cast<int>(rng() % cols);
    if (a == b) b = (b + 1) % cols;
    conds.push_back(Predicate{Col(a), ops[rng() % 4], Col(b)});
  }
  return conds;
}

template <std::vector<Predicate> (*MakeConds)(int)>
void BM_E5_Build(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Predicate> conds = MakeConds(n);
  bool sat = true;
  for (auto _ : state) {
    Result<ConstraintClosure> c = ConstraintClosure::Build(conds);
    sat = c.ok() && c->satisfiable();
    benchmark::DoNotOptimize(c);
  }
  state.counters["atoms"] = n;
  state.counters["satisfiable"] = sat;
}

void BM_E5_BuildRandom(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Predicate> conds = RandomConds(n, 42);
  for (auto _ : state) {
    Result<ConstraintClosure> c = ConstraintClosure::Build(conds);
    benchmark::DoNotOptimize(c);
  }
  state.counters["atoms"] = n;
}

void BM_E5_Implies(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ConstraintClosure closure =
      ValueOrDie(ConstraintClosure::Build(OrderChain(n)), "build chain");
  Predicate query{Col(0), CmpOp::kLt, Col(n - 1)};
  bool entailed = false;
  for (auto _ : state) {
    entailed = closure.Implies(query);
    benchmark::DoNotOptimize(entailed);
  }
  state.counters["atoms"] = n;
  state.counters["entailed"] = entailed;
}

void BM_E5_Residual(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  // Query conditions: equality chain + constant pin; view enforces half.
  std::vector<Predicate> query = EqualityChain(n);
  query.push_back(Predicate{Col(0), CmpOp::kEq,
                            Operand::Constant(Value::Int64(7))});
  std::vector<Predicate> view(query.begin(), query.begin() + n / 2);
  std::set<std::string> allowed;
  for (int i = 0; i < n; ++i) allowed.insert("A" + std::to_string(i));
  for (auto _ : state) {
    Result<std::vector<Predicate>> r = ComputeResidual(query, view, allowed);
    benchmark::DoNotOptimize(r);
  }
  state.counters["atoms"] = n;
}

BENCHMARK_TEMPLATE(BM_E5_Build, OrderChain)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond)
    ->Name("BM_E5_BuildChain");
BENCHMARK_TEMPLATE(BM_E5_Build, EqualityChain)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond)
    ->Name("BM_E5_BuildEqualities");
BENCHMARK(BM_E5_BuildRandom)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E5_Implies)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_E5_Residual)
    ->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv
