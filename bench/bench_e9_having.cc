// Experiment E9 — the Section 3.3 pre-processing (HAVING-to-WHERE
// move-around) as an ablation: a family of query/view pairs is usable only
// after normalization. Measures the detection rate with the pass on/off and
// the latency it adds, plus the end-to-end payoff of the rewriting it
// unlocks.
//
// Series:
//   E9/DetectNormalized    — usability checks with the pass on
//                            (counter `usable` = pairs detected usable)
//   E9/DetectRaw           — pass off (`usable` drops)
//   E9/NormalizeLatency    — the pre-processing pass alone
//   E9/BaseQuery, E9/RewrittenQuery — end-to-end evaluation of one pair

#include <random>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/evaluator.h"
#include "ir/builder.h"
#include "reason/having_normalize.h"
#include "rewrite/rewriter.h"

namespace aqv {
namespace {

// Pair i: Q has HAVING A1 >= i (a grouping-column condition) and the view
// pre-filters A2 >= i in its WHERE clause. Usable iff the condition moves.
Query PairQuery(int i) {
  return QueryBuilder()
      .From("R1", {"A1", "B1", "C1", "D1"})
      .Select("A1")
      .SelectAgg(AggFn::kSum, "B1", "s")
      .GroupBy("A1")
      .HavingCol("A1", CmpOp::kGe, Value::Int64(i))
      .BuildOrDie();
}

ViewDef PairView(int i) {
  return ViewDef{"V" + std::to_string(i),
                 QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .WhereConst("A2", CmpOp::kGe, Value::Int64(i))
                     .BuildOrDie()};
}

constexpr int kPairs = 16;

void BM_E9_DetectNormalized(benchmark::State& state) {
  ViewRegistry views;
  for (int i = 0; i < kPairs; ++i) CheckOrDie(views.Register(PairView(i)), "v");
  RewriteOptions options;
  options.normalize_having = true;
  Rewriter rewriter(&views, nullptr, options);
  int usable = 0;
  for (auto _ : state) {
    usable = 0;
    for (int i = 0; i < kPairs; ++i) {
      Result<Query> r =
          rewriter.RewriteUsingView(PairQuery(i), "V" + std::to_string(i));
      usable += r.ok();
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["usable"] = usable;
  state.counters["pairs"] = kPairs;
}

void BM_E9_DetectRaw(benchmark::State& state) {
  ViewRegistry views;
  for (int i = 0; i < kPairs; ++i) CheckOrDie(views.Register(PairView(i)), "v");
  RewriteOptions options;
  options.normalize_having = false;
  Rewriter rewriter(&views, nullptr, options);
  int usable = 0;
  for (auto _ : state) {
    usable = 0;
    for (int i = 0; i < kPairs; ++i) {
      Result<Query> r =
          rewriter.RewriteUsingView(PairQuery(i), "V" + std::to_string(i));
      usable += r.ok();
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["usable"] = usable;
  state.counters["pairs"] = kPairs;
}

void BM_E9_NormalizeLatency(benchmark::State& state) {
  Query q = PairQuery(3);
  for (auto _ : state) {
    Query copy = q;
    int moved = NormalizeHaving(&copy);
    benchmark::DoNotOptimize(moved);
  }
}

struct EndToEnd {
  Database db;
  ViewRegistry views;
  Query query;
  Query rewritten;
};

EndToEnd* GetEndToEnd() {
  static EndToEnd* s = [] {
    auto* e = new EndToEnd();
    std::mt19937_64 rng(5);
    std::uniform_int_distribution<int64_t> dist(0, 99);
    Table r1({"A", "B", "C", "D"});
    for (int i = 0; i < 200000; ++i) {
      r1.AddRowOrDie({Value::Int64(dist(rng)), Value::Int64(dist(rng)),
                      Value::Int64(dist(rng)), Value::Int64(dist(rng))});
    }
    e->db.Put("R1", std::move(r1));
    e->query = PairQuery(50);
    CheckOrDie(e->views.Register(PairView(50)), "v50");
    Rewriter rewriter(&e->views);
    e->rewritten = ValueOrDie(rewriter.RewriteUsingView(e->query, "V50"),
                              "rewrite E9 pair");
    Evaluator eval(&e->db, &e->views);
    e->db.Put("V50", ValueOrDie(eval.MaterializeView("V50"), "materialize"));
    return e;
  }();
  return s;
}

void BM_E9_BaseQuery(benchmark::State& state) {
  EndToEnd* e = GetEndToEnd();
  for (auto _ : state) {
    Evaluator eval(&e->db, &e->views);
    Table result = ValueOrDie(eval.Execute(e->query), "run Q");
    benchmark::DoNotOptimize(result);
  }
}

void BM_E9_RewrittenQuery(benchmark::State& state) {
  EndToEnd* e = GetEndToEnd();
  for (auto _ : state) {
    Evaluator eval(&e->db, &e->views);
    Table result = ValueOrDie(eval.Execute(e->rewritten), "run Q'");
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_E9_DetectNormalized)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E9_DetectRaw)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E9_NormalizeLatency)->Unit(benchmark::kNanosecond);
BENCHMARK(BM_E9_BaseQuery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E9_RewrittenQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv
