// Experiment E19 — what does observability cost, and does attribution add
// up? (PR 7). Two questions, one self-timed A/B harness (no
// google-benchmark: the binary is also the CI gate, so it owns its exit
// code and its JSON artifact):
//
//   1. Sampler overhead. The telemetry recorder's background thread
//      snapshots every registered metric each interval. Rounds of the E12
//      telephony SELECT pool run against ONE warm service, alternating
//      sampler-off / sampler-on (Stop()/Start() on the service's own
//      recorder), so cache state, data, and allocator heat are identical
//      across arms. overhead_pct compares the two median throughputs; the
//      claim (EXPERIMENTS.md E19) is < 2% at a 5 ms interval — far tighter
//      than the 250 ms production default in aqvsh.
//
//   2. Attribution accuracy. Per-statement cost attribution (QueryStats)
//      is always on; the check is that the disjoint phase times it reports
//      cover the measured statement wall clock. EXPLAIN ANALYZE over a
//      full-scan aggregation is parsed for "wall=" / "phases=" and the
//      coverage ratio is reported (min / mean over the samples).
//
// Flags:
//   --rounds=N             A/B round pairs after the warmup pair (default 5)
//   --statements=N         pool statements per round (default 2000)
//   --interval=MICROS      sampler interval for the on-arm (default 5000)
//   --calls=N              telephony warehouse size (default 20000)
//   --seed=N               workload seed (default 42)
//   --analyze_samples=N    EXPLAIN ANALYZE accuracy samples (default 20)
//   --json=PATH            write the JSON artifact here (default
//                          e19_observability.json in the cwd)
//   --max-overhead-pct=X   exit 1 if sampler overhead exceeds X percent
//                          (default: report only, never fail)
//
// e.g. build/bench/bench_e19_observability --max-overhead-pct=10
//          --json=bench/e19_observability.json

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "service/query_service.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The E12 statement pool: distinct canonical fingerprints over the
// telephony warehouse, all rewritable against the V1/V2 summaries.
std::vector<std::string> QueryPool() {
  std::vector<std::string> pool;
  char buf[256];
  for (int year = 1994; year <= 1996; ++year) {
    for (double threshold : {200.0, 400.0, 800.0, 1e9}) {
      std::snprintf(buf, sizeof(buf),
                    "SELECT Plan_Id_2, Plan_Name_2, SUM(Charge_1) AS Total "
                    "FROM Calls, Calling_Plans "
                    "WHERE Plan_Id_1 = Plan_Id_2 AND Year_1 = %d "
                    "GROUPBY Plan_Id_2, Plan_Name_2 "
                    "HAVING SUM(Charge_1) < %.1f",
                    year, threshold);
      pool.push_back(buf);
    }
    std::snprintf(buf, sizeof(buf),
                  "SELECT Plan_Id_1, SUM(Charge_1) AS Yearly FROM Calls "
                  "WHERE Year_1 = %d GROUPBY Plan_Id_1",
                  year);
    pool.push_back(buf);
  }
  return pool;
}

// First unsigned integer after `token`, or 0 if absent.
uint64_t NumberAfter(const std::string& text, const char* token) {
  size_t pos = text.find(token);
  if (pos == std::string::npos) return 0;
  return std::strtoull(text.c_str() + pos + std::strlen(token), nullptr, 10);
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

std::string JsonList(const std::vector<double>& v) {
  std::string out = "[";
  char buf[32];
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.1f", v[i]);
    out += buf;
  }
  return out + "]";
}

const char* FlagValue(const char* arg, const char* name) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  using aqv::Clock;
  int rounds = 5;
  int statements = 2000;
  uint64_t interval_micros = 5000;
  int num_calls = 20000;
  uint64_t seed = 42;
  int analyze_samples = 20;
  std::string json_path = "e19_observability.json";
  double max_overhead_pct = -1.0;  // report only

  for (int i = 1; i < argc; ++i) {
    if (const char* v = aqv::FlagValue(argv[i], "--rounds")) {
      rounds = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--statements")) {
      statements = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--interval")) {
      interval_micros = std::strtoull(v, nullptr, 10);
    } else if (const char* v = aqv::FlagValue(argv[i], "--calls")) {
      num_calls = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = aqv::FlagValue(argv[i], "--analyze_samples")) {
      analyze_samples = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--json")) {
      json_path = v;
    } else if (const char* v = aqv::FlagValue(argv[i], "--max-overhead-pct")) {
      max_overhead_pct = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (rounds < 1 || statements < 1 || interval_micros == 0) {
    std::fprintf(stderr, "need --rounds>=1, --statements>=1, --interval>0\n");
    return 2;
  }

  // One warm service for both arms: the sampler is the only difference.
  aqv::TelephonyParams params;
  params.num_calls = num_calls;
  params.seed = seed;
  aqv::TelephonyWorkload w = aqv::MakeTelephonyWorkload(params);
  aqv::ServiceOptions options;
  options.enable_plan_cache = true;
  options.telemetry_interval_micros = interval_micros;
  options.telemetry_history_capacity = 1024;
  aqv::QueryService service(options);
  service.telemetry().Stop();  // arms toggle it explicitly below
  aqv::CheckOrDie(service.Bootstrap(std::move(w.catalog), std::move(w.db),
                                    std::move(w.views)),
                  "bootstrap service");
  aqv::CheckOrDie(service.Execute("REFRESH V1").status(), "materialize V1");
  aqv::CheckOrDie(service
                      .Execute("CREATE MATERIALIZED VIEW V2 AS "
                               "SELECT Plan_Id_1, Year_1, SUM(Charge_1) AS "
                               "Yearly FROM Calls GROUPBY Plan_Id_1, Year_1")
                      .status(),
                  "materialize V2");
  const std::vector<std::string> pool = aqv::QueryPool();

  // Alternating off/on rounds; the first pair is warmup (plan-cache misses
  // and allocator growth land there) and is discarded.
  auto run_round = [&](size_t phase_offset) {
    Clock::time_point start = Clock::now();
    for (int i = 0; i < statements; ++i) {
      const std::string& q = pool[(phase_offset + i) % pool.size()];
      aqv::Result<aqv::StatementResult> r = service.Execute(q);
      aqv::CheckOrDie(r.status(), "pool statement");
    }
    double secs = aqv::SecondsSince(start);
    return secs > 0 ? statements / secs : 0.0;
  };
  std::vector<double> off_throughput;
  std::vector<double> on_throughput;
  for (int pair = 0; pair < rounds + 1; ++pair) {
    service.telemetry().Stop();
    double off = run_round(pair);
    service.telemetry().Start();
    double on = run_round(pair);
    if (pair == 0) continue;  // warmup pair
    off_throughput.push_back(off);
    on_throughput.push_back(on);
    std::fprintf(stderr, "round %d: off=%.0f stmts/s on=%.0f stmts/s\n",
                 pair, off, on);
  }
  service.telemetry().Stop();
  double off_median = aqv::Median(off_throughput);
  double on_median = aqv::Median(on_throughput);
  double overhead_pct =
      off_median > 0 ? 100.0 * (off_median - on_median) / off_median : 0.0;
  uint64_t windows = service.telemetry().windows_sampled();
  uint64_t dropped = service.telemetry().windows_dropped();

  // Attribution accuracy: phase coverage of the measured wall clock on a
  // full-scan aggregation (exec-dominated, so untimed dispatch is noise).
  double coverage_sum = 0.0;
  double coverage_min = 100.0;
  int coverage_n = 0;
  for (int i = 0; i < analyze_samples; ++i) {
    // Grouped by Cust_Id, which no summary view covers: the chosen plan
    // must scan all of Calls, keeping exec well above the render glue.
    aqv::Result<aqv::StatementResult> r = service.Execute(
        "EXPLAIN ANALYZE SELECT Cust_Id_1, SUM(Charge_1) AS Total "
        "FROM Calls GROUPBY Cust_Id_1");
    aqv::CheckOrDie(r.status(), "explain analyze");
    size_t at = r->message.find("attribution:");
    if (at == std::string::npos) continue;
    std::string tail = r->message.substr(at);
    uint64_t wall = aqv::NumberAfter(tail, "wall=");
    uint64_t phases = aqv::NumberAfter(tail, "phases=");
    if (wall == 0) continue;
    double pct = 100.0 * static_cast<double>(phases) / wall;
    coverage_sum += pct;
    coverage_min = std::min(coverage_min, pct);
    ++coverage_n;
  }
  double coverage_mean = coverage_n > 0 ? coverage_sum / coverage_n : 0.0;

  bool pass = max_overhead_pct < 0 || overhead_pct <= max_overhead_pct;
  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"experiment\": \"E19\",\n"
      "  \"workload\": {\"calls\": %d, \"seed\": %llu, \"pool\": %zu,\n"
      "                \"rounds\": %d, \"statements_per_round\": %d},\n"
      "  \"sampler\": {\"interval_micros\": %llu, \"windows_sampled\": %llu,\n"
      "               \"windows_dropped\": %llu},\n"
      "  \"throughput_stmts_per_sec\": {\n"
      "    \"sampler_off\": %s,\n"
      "    \"sampler_on\": %s,\n"
      "    \"off_median\": %.1f,\n"
      "    \"on_median\": %.1f\n"
      "  },\n"
      "  \"sampler_overhead_pct\": %.2f,\n"
      "  \"attribution\": {\"samples\": %d,\n"
      "                   \"phase_coverage_mean_pct\": %.1f,\n"
      "                   \"phase_coverage_min_pct\": %.1f},\n"
      "  \"max_overhead_pct\": %.1f,\n"
      "  \"pass\": %s\n"
      "}\n",
      num_calls, static_cast<unsigned long long>(seed), pool.size(), rounds,
      statements, static_cast<unsigned long long>(interval_micros),
      static_cast<unsigned long long>(windows),
      static_cast<unsigned long long>(dropped),
      aqv::JsonList(off_throughput).c_str(),
      aqv::JsonList(on_throughput).c_str(), off_median, on_median,
      overhead_pct, coverage_n, coverage_mean,
      coverage_n > 0 ? coverage_min : 0.0, max_overhead_pct,
      pass ? "true" : "false");
  std::fputs(json, stdout);
  std::ofstream out(json_path, std::ios::trunc);
  if (out) {
    out << json;
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: sampler overhead %.2f%% exceeds --max-overhead-pct "
                 "%.1f%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}
