// Experiment E7 — Section 5: key information turns an otherwise-unusable
// cached view into an answer source. Example 5.1's query is answerable from
// the self-join view V1 only under a many-to-1 mapping, which multiset
// semantics forbids unless keys prove both results are sets. The bench
// measures (a) detection cost with and without key reasoning, and (b) the
// evaluation payoff of answering from the cached view versus the base
// table, sweeping the base table size.
//
// Series:
//   E7/DetectWithKeys/<n>    — rewrite search with key reasoning on
//   E7/DetectWithoutKeys/<n> — same, keys off (always refuses; counter
//                              `usable` is 0)
//   E7/BaseQuery/<n>         — Q over R1
//   E7/RewrittenQuery/<n>    — Q' over the cached V1

#include <map>
#include <random>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/evaluator.h"
#include "ir/builder.h"
#include "rewrite/rewriter.h"

namespace aqv {
namespace {

struct Scenario {
  Catalog catalog;
  Database db;
  ViewRegistry views;
  Query query;
  Query rewritten;
  size_t view_rows = 0;
};

Scenario* GetScenario(int n) {
  static std::map<int, Scenario*>* cache = new std::map<int, Scenario*>();
  auto it = cache->find(n);
  if (it != cache->end()) return it->second;

  auto* s = new Scenario();
  TableDef r1("R1", {"A", "B", "C"});
  CheckOrDie(r1.AddKeyByName({"A"}), "key");
  CheckOrDie(s->catalog.AddTable(r1), "add table");

  std::mt19937_64 rng(7 + n);
  // The B/C domain scales with n so the self-join view stays O(n) rows.
  std::uniform_int_distribution<int64_t> dist(0, n - 1);
  Table data({"A", "B", "C"});
  for (int i = 0; i < n; ++i) {
    data.AddRowOrDie(
        {Value::Int64(i), Value::Int64(dist(rng)), Value::Int64(dist(rng))});
  }
  s->db.Put("R1", std::move(data));

  s->query = QueryBuilder()
                 .From("R1", {"A1", "B1", "C1"})
                 .Select("A1")
                 .WhereCols("B1", CmpOp::kEq, "C1")
                 .BuildOrDie();
  CheckOrDie(
      s->views.Register(ViewDef{
          "V1", QueryBuilder()
                    .From("R1", {"A2", "B2", "C2"})
                    .From("R1", {"A3", "B3", "C3"})
                    .Select("A2")
                    .Select("A3")
                    .WhereCols("B2", CmpOp::kEq, "C3")
                    .BuildOrDie()}),
      "register V1");

  RewriteOptions options;
  options.use_key_information = true;
  Rewriter rewriter(&s->views, &s->catalog, options);
  s->rewritten =
      ValueOrDie(rewriter.RewriteUsingView(s->query, "V1"), "rewrite 5.1");

  Evaluator eval(&s->db, &s->views);
  Table v1 = ValueOrDie(eval.MaterializeView("V1"), "materialize V1");
  s->view_rows = v1.num_rows();
  s->db.Put("V1", std::move(v1));

  (*cache)[n] = s;
  return s;
}

void BM_E7_DetectWithKeys(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  RewriteOptions options;
  options.use_key_information = true;
  Rewriter rewriter(&s->views, &s->catalog, options);
  int usable = 0;
  for (auto _ : state) {
    Result<std::vector<Rewriting>> r =
        rewriter.RewritingsUsingView(s->query, "V1");
    usable = r.ok() ? static_cast<int>(r->size()) : 0;
    benchmark::DoNotOptimize(r);
  }
  state.counters["usable"] = usable;
}

void BM_E7_DetectWithoutKeys(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  Rewriter rewriter(&s->views);
  int usable = 0;
  for (auto _ : state) {
    Result<std::vector<Rewriting>> r =
        rewriter.RewritingsUsingView(s->query, "V1");
    usable = r.ok() ? static_cast<int>(r->size()) : 0;
    benchmark::DoNotOptimize(r);
  }
  state.counters["usable"] = usable;
}

void BM_E7_BaseQuery(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Evaluator eval(&s->db, &s->views);
    Table result = ValueOrDie(eval.Execute(s->query), "run Q");
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}

void BM_E7_RewrittenQuery(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Evaluator eval(&s->db, &s->views);
    Table result = ValueOrDie(eval.Execute(s->rewritten), "run Q'");
    benchmark::DoNotOptimize(result);
  }
  state.counters["view_rows"] = static_cast<double>(s->view_rows);
}

BENCHMARK(BM_E7_DetectWithKeys)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E7_DetectWithoutKeys)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E7_BaseQuery)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E7_RewrittenQuery)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv
