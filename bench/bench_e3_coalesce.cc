// Experiment E3 — coalescing subgroups (Example 4.1): the query groups
// coarsely (by A); the materialized view groups finely (by A, C) and keeps
// COUNTs. The rewriting sums the per-subgroup counts, so its cost tracks
// the number of (A, C) subgroups, not the base cardinality. Sweeping the
// fan-in F (subgroups per group) at fixed base size shows the shape: the
// rewritten query's advantage is the base-rows / subgroup-rows ratio.
//
// Series:
//   E3/BaseQuery/<fanin>      — Example 4.1's Q over R1 ⋈ R2
//   E3/RewrittenQuery/<fanin> — Q' over materialized V1

#include <map>
#include <random>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/evaluator.h"
#include "ir/builder.h"
#include "rewrite/rewriter.h"

namespace aqv {
namespace {

constexpr int kBaseRows = 200000;
constexpr int kGroups = 64;

struct Scenario {
  Database db;
  ViewRegistry views;
  Query query;
  Query rewritten;
  size_t view_rows = 0;
};

Scenario* GetScenario(int fanin) {
  static std::map<int, Scenario*>* cache = new std::map<int, Scenario*>();
  auto it = cache->find(fanin);
  if (it != cache->end()) return it->second;

  auto* s = new Scenario();
  std::mt19937_64 rng(2024 + fanin);
  std::uniform_int_distribution<int64_t> group_dist(0, kGroups - 1);
  std::uniform_int_distribution<int64_t> sub_dist(0, fanin - 1);
  std::uniform_int_distribution<int64_t> val_dist(0, 99);

  // R1(A, B, C, D): A = coarse group, C = subgroup id, B = D (so Example
  // 4.1's WHERE B = D holds for every row — selectivity is not the point
  // here).
  Table r1({"A", "B", "C", "D"});
  for (int i = 0; i < kBaseRows; ++i) {
    int64_t v = val_dist(rng);
    r1.AddRowOrDie({Value::Int64(group_dist(rng)), Value::Int64(v),
                    Value::Int64(sub_dist(rng)), Value::Int64(v)});
  }
  s->db.Put("R1", std::move(r1));
  // R2(E, F): one row per subgroup id, so the C = F join neither multiplies
  // nor drops base rows and the measured cost isolates the aggregation.
  Table r2({"E", "F"});
  for (int i = 0; i < fanin; ++i) {
    r2.AddRowOrDie({Value::Int64(i), Value::Int64(i)});
  }
  s->db.Put("R2", std::move(r2));

  // Example 4.1's V1.
  CheckOrDie(
      s->views.Register(ViewDef{
          "V1", QueryBuilder()
                    .From("R1", {"A2", "B2", "C2", "D2"})
                    .Select("A2")
                    .Select("C2")
                    .SelectAgg(AggFn::kCount, "D2", "cnt")
                    .WhereCols("B2", CmpOp::kEq, "D2")
                    .GroupBy("A2")
                    .GroupBy("C2")
                    .BuildOrDie()}),
      "register V1");

  s->query = QueryBuilder()
                 .From("R1", {"A1", "B1", "C1", "D1"})
                 .From("R2", {"E1", "F1"})
                 .Select("A1")
                 .Select("E1")
                 .SelectAgg(AggFn::kCount, "B1", "n")
                 .WhereCols("C1", CmpOp::kEq, "F1")
                 .WhereCols("B1", CmpOp::kEq, "D1")
                 .GroupBy("A1")
                 .GroupBy("E1")
                 .BuildOrDie();

  Evaluator eval(&s->db, &s->views);
  Table v1 = ValueOrDie(eval.MaterializeView("V1"), "materialize V1");
  s->view_rows = v1.num_rows();
  s->db.Put("V1", std::move(v1));

  Rewriter rewriter(&s->views);
  s->rewritten = ValueOrDie(rewriter.RewriteUsingView(s->query, "V1"),
                            "rewrite Example 4.1");
  (*cache)[fanin] = s;
  return s;
}

void BM_E3_BaseQuery(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Evaluator eval(&s->db, &s->views);
    Table result = ValueOrDie(eval.Execute(s->query), "run Q");
    benchmark::DoNotOptimize(result);
  }
  state.counters["fanin"] = static_cast<double>(state.range(0));
  state.counters["base_rows"] = kBaseRows;
}

void BM_E3_RewrittenQuery(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Evaluator eval(&s->db, &s->views);
    Table result = ValueOrDie(eval.Execute(s->rewritten), "run Q'");
    benchmark::DoNotOptimize(result);
  }
  state.counters["fanin"] = static_cast<double>(state.range(0));
  state.counters["view_rows"] = static_cast<double>(s->view_rows);
}

BENCHMARK(BM_E3_BaseQuery)->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E3_RewrittenQuery)->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv
