// Experiment E20 — what does vectorized columnar execution buy, and is it
// exactly equivalent? (PR 8). A self-timed A/B harness in the E19 mould (no
// google-benchmark: the binary is the CI gate, so it owns its exit code and
// its JSON artifact). Three series, each alternating row-engine and
// vectorized arms over identical data, medians reported:
//
//   1. scan_filter — the E8 Filter shape (50%-selective predicate over an
//      INT64 column): FilterRows materializing survivors vs CompiledFilter
//      producing a selection vector over the cached columnar image. This is
//      the gated series (--min-scan-speedup).
//
//   2. aggregate — the E8 HashAggregate shape (SUM + COUNT grouped by a
//      low-cardinality key): GroupAggregate vs VectorizedAggregation.
//
//   3. query_e2e — a full single-table filtered GROUP BY through the
//      Evaluator with EvalOptions::vectorized off vs on: the user-visible
//      payoff including plan glue and output materialization.
//
// Every iteration of every series is also an equivalence check: the two
// arms' results are compared as multisets (exactly — the vectorized
// aggregates accumulate in row order, so even SUM over DOUBLE must agree
// bit-for-bit), and any divergence aborts the bench. The row-vs-batch
// differential oracle in tests/ is the randomized version of this check.
//
// Flags:
//   --rows=N               rows in the scanned table (default 1000000)
//   --groups=N             grouping-key cardinality (default 64)
//   --reps=N               A/B repetitions after warmup (default 5)
//   --seed=N               data seed (default 42)
//   --json=PATH            JSON artifact (default e20_vectorized.json)
//   --min-scan-speedup=X   exit 1 if scan_filter speedup < X
//                          (default: report only, never fail)
//   --min-agg-speedup=X    exit 1 if aggregate speedup < X (default: off)
//
// e.g. build/bench/bench_e20_vectorized --min-scan-speedup=3
//          --json=bench/e20_vectorized.json

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/column_batch.h"
#include "exec/evaluator.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "exec/table.h"
#include "exec/vectorized.h"
#include "ir/builder.h"

namespace aqv {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

std::string JsonList(const std::vector<double>& v) {
  std::string out = "[";
  char buf[32];
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.0f", v[i]);
    out += buf;
  }
  return out + "]";
}

const char* FlagValue(const char* arg, const char* name) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

void DieIfNotEqual(const Table& vec, const Table& row, const char* series) {
  if (!MultisetEqual(vec, row)) {
    std::fprintf(stderr,
                 "EQUIVALENCE VIOLATION in %s:\n%s\n(run the differential "
                 "oracle: ctest -R vectorized_differential)\n",
                 series, DescribeMultisetDifference(vec, row).c_str());
    std::abort();
  }
}

Table ToTable(const std::vector<Row>& rows, int arity) {
  std::vector<std::string> cols;
  for (int i = 0; i < arity; ++i) cols.push_back("c" + std::to_string(i));
  Table t(std::move(cols));
  for (const Row& r : rows) t.AddRowOrDie(r);
  return t;
}

/// One A/B series: alternating row/vec repetitions (reps pairs after one
/// discarded warmup pair), medians and the speedup row/vec.
struct Series {
  std::vector<double> row_micros;
  std::vector<double> vec_micros;
  double row_median = 0.0;
  double vec_median = 0.0;
  double speedup = 0.0;

  template <typename RowFn, typename VecFn>
  void Run(int reps, RowFn row_arm, VecFn vec_arm) {
    for (int r = 0; r < reps + 1; ++r) {
      Clock::time_point t0 = Clock::now();
      row_arm();
      double rm = MicrosSince(t0);
      t0 = Clock::now();
      vec_arm();
      double vm = MicrosSince(t0);
      if (r == 0) continue;  // warmup pair
      row_micros.push_back(rm);
      vec_micros.push_back(vm);
    }
    row_median = Median(row_micros);
    vec_median = Median(vec_micros);
    speedup = vec_median > 0 ? row_median / vec_median : 0.0;
  }
};

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  using aqv::Clock;
  int rows = 1000000;
  int groups = 64;
  int reps = 5;
  uint64_t seed = 42;
  std::string json_path = "e20_vectorized.json";
  double min_scan_speedup = -1.0;  // report only
  double min_agg_speedup = -1.0;

  for (int i = 1; i < argc; ++i) {
    if (const char* v = aqv::FlagValue(argv[i], "--rows")) {
      rows = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--groups")) {
      groups = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--reps")) {
      reps = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--seed")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = aqv::FlagValue(argv[i], "--json")) {
      json_path = v;
    } else if (const char* v = aqv::FlagValue(argv[i], "--min-scan-speedup")) {
      min_scan_speedup = std::atof(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--min-agg-speedup")) {
      min_agg_speedup = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (rows < 1 || groups < 1 || reps < 1) {
    std::fprintf(stderr, "need --rows>=1, --groups>=1, --reps>=1\n");
    return 2;
  }

  // The table: A = grouping key, B = INT64 payload, C = DOUBLE payload.
  // Stored once; the vectorized arms read the cached columnar image exactly
  // as the evaluator would.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> key(0, groups - 1);
  std::uniform_int_distribution<int64_t> payload(0, 1 << 20);
  aqv::Table table({"A", "B", "C"});
  {
    std::vector<aqv::Row> data;
    data.reserve(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i) {
      data.push_back(aqv::Row{
          aqv::Value::Int64(key(rng)), aqv::Value::Int64(payload(rng)),
          aqv::Value::Double(static_cast<double>(payload(rng)) / 1024.0)});
    }
    aqv::CheckOrDie(table.AddRows(std::move(data)), "populate table");
  }
  const std::vector<aqv::Row>& data = table.rows();
  const aqv::ColumnarTable& ct = table.columnar();

  const aqv::ColumnIndexMap layout{{"A", 0}, {"B", 1}, {"C", 2}};
  // ~50% selectivity on the grouping key.
  const std::vector<aqv::Predicate> preds{
      {aqv::Operand::Column("A"), aqv::CmpOp::kLt,
       aqv::Operand::Constant(aqv::Value::Int64(groups / 2))}};
  aqv::CompiledFilter filter;
  if (!aqv::CompiledFilter::Compile(preds, layout, ct, &filter)) {
    std::fprintf(stderr, "filter unexpectedly not vectorizable\n");
    return 2;
  }
  const std::vector<int> group_cols{0};
  const std::vector<aqv::AggSpec> aggs{{aqv::AggFn::kSum, 1, -1},
                                       {aqv::AggFn::kCount, 1, -1},
                                       {aqv::AggFn::kSum, 2, -1}};
  aqv::VectorizedAggregation agg;
  if (!aqv::VectorizedAggregation::Compile(ct, group_cols, aggs, &agg)) {
    std::fprintf(stderr, "aggregation unexpectedly not vectorizable\n");
    return 2;
  }

  // 1. scan_filter: materialized survivors vs selection vector.
  aqv::Series scan;
  {
    std::vector<aqv::Row> row_out;
    aqv::SelVector vec_out;
    scan.Run(
        reps,
        [&] { row_out = aqv::FilterRows(data, preds, layout); },
        [&] { vec_out = filter.Run(ct, nullptr); });
    if (row_out.size() != vec_out.size()) {
      std::fprintf(stderr,
                   "EQUIVALENCE VIOLATION in scan_filter: row engine kept "
                   "%zu rows, vectorized kept %zu\n",
                   row_out.size(), vec_out.size());
      return 1;
    }
    aqv::DieIfNotEqual(aqv::ToTable(aqv::GatherRows(ct, vec_out), 3),
                       aqv::ToTable(row_out, 3), "scan_filter");
  }

  // 2. aggregate: row-at-a-time grouping vs typed accumulation loops.
  aqv::Series aggregate;
  {
    std::vector<aqv::Row> row_out;
    std::vector<aqv::Row> vec_out;
    aggregate.Run(
        reps,
        [&] { row_out = aqv::GroupAggregate(data, group_cols, aggs); },
        [&] { vec_out = agg.Run(ct, nullptr, nullptr); });
    int arity = 1 + static_cast<int>(aggs.size());
    aqv::DieIfNotEqual(aqv::ToTable(vec_out, arity),
                       aqv::ToTable(row_out, arity), "aggregate");
  }

  // 3. query_e2e: the whole statement through the Evaluator.
  aqv::Database db;
  db.Put("T", std::move(table));
  aqv::Query query = aqv::QueryBuilder()
                         .From("T", {"A1", "B1", "C1"})
                         .Select("A1")
                         .SelectAgg(aqv::AggFn::kSum, "B1", "SB")
                         .SelectAgg(aqv::AggFn::kSum, "C1", "SC")
                         .SelectAgg(aqv::AggFn::kCount, "B1", "N")
                         .WhereConst("A1", aqv::CmpOp::kLt,
                                     aqv::Value::Int64(groups / 2))
                         .GroupBy("A1")
                         .BuildOrDie();
  aqv::EvalOptions row_options;
  row_options.vectorized = false;
  aqv::Series e2e;
  {
    aqv::Table row_out;
    aqv::Table vec_out;
    size_t vectorized_ops = 0;
    e2e.Run(
        reps,
        [&] {
          aqv::Evaluator eval(&db, nullptr, row_options);
          row_out = aqv::ValueOrDie(eval.Execute(query), "row e2e");
        },
        [&] {
          aqv::Evaluator eval(&db);
          vec_out = aqv::ValueOrDie(eval.Execute(query), "vec e2e");
          vectorized_ops = eval.stats().vectorized_ops;
        });
    if (vectorized_ops == 0) {
      std::fprintf(stderr, "query_e2e did not engage the vectorized path\n");
      return 1;
    }
    aqv::DieIfNotEqual(vec_out, row_out, "query_e2e");
  }

  std::fprintf(stderr,
               "scan_filter: row=%.0fus vec=%.0fus speedup=%.1fx\n"
               "aggregate:   row=%.0fus vec=%.0fus speedup=%.1fx\n"
               "query_e2e:   row=%.0fus vec=%.0fus speedup=%.1fx\n",
               scan.row_median, scan.vec_median, scan.speedup,
               aggregate.row_median, aggregate.vec_median, aggregate.speedup,
               e2e.row_median, e2e.vec_median, e2e.speedup);

  bool pass = (min_scan_speedup < 0 || scan.speedup >= min_scan_speedup) &&
              (min_agg_speedup < 0 || aggregate.speedup >= min_agg_speedup);
  char json[4096];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"experiment\": \"E20\",\n"
      "  \"workload\": {\"rows\": %d, \"groups\": %d, \"reps\": %d,\n"
      "                \"seed\": %llu, \"selectivity_pct\": 50},\n"
      "  \"scan_filter\": {\"row_micros\": %s,\n"
      "                   \"vec_micros\": %s,\n"
      "                   \"row_median_micros\": %.0f,\n"
      "                   \"vec_median_micros\": %.0f,\n"
      "                   \"speedup\": %.2f},\n"
      "  \"aggregate\": {\"row_median_micros\": %.0f,\n"
      "                 \"vec_median_micros\": %.0f,\n"
      "                 \"speedup\": %.2f},\n"
      "  \"query_e2e\": {\"row_median_micros\": %.0f,\n"
      "                 \"vec_median_micros\": %.0f,\n"
      "                 \"speedup\": %.2f},\n"
      "  \"equivalence_checked\": true,\n"
      "  \"min_scan_speedup\": %.1f,\n"
      "  \"pass\": %s\n"
      "}\n",
      rows, groups, reps, static_cast<unsigned long long>(seed),
      aqv::JsonList(scan.row_micros).c_str(),
      aqv::JsonList(scan.vec_micros).c_str(), scan.row_median,
      scan.vec_median, scan.speedup, aggregate.row_median,
      aggregate.vec_median, aggregate.speedup, e2e.row_median, e2e.vec_median,
      e2e.speedup, min_scan_speedup, pass ? "true" : "false");
  std::fputs(json, stdout);
  std::ofstream out(json_path, std::ios::trunc);
  if (out) {
    out << json;
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: speedup below gate (scan %.2fx vs %.1fx required)\n",
                 scan.speedup, min_scan_speedup);
    return 1;
  }
  return 0;
}
