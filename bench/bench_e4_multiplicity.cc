// Experiment E4 — recovery of lost multiplicities (Example 4.2): the query
// SUMs a column of R2 while grouping R1; the view collapsed R1's duplicates
// but kept a COUNT column, which the rewriting uses to re-weight the sum
// (SUM(E * N)). Sweeping the duplication factor d shows the shape: the base
// query's cost grows with d while the rewritten query's stays flat (the
// view's size is independent of d).
//
// Series:
//   E4/BaseQuery/<dup>      — Example 4.2's Q over R1 ⋈ R2
//   E4/RewrittenQuery/<dup> — Q' over materialized V2 (SUM + COUNT)

#include <map>
#include <random>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/evaluator.h"
#include "ir/builder.h"
#include "rewrite/rewriter.h"

namespace aqv {
namespace {

constexpr int kDistinctPairs = 1000;  // distinct (A, B) pairs in R1
constexpr int kGroups = 50;
constexpr int kR2Rows = 16;

struct Scenario {
  Database db;
  ViewRegistry views;
  Query query;
  Query rewritten;
  size_t base_rows = 0;
  size_t view_rows = 0;
};

Scenario* GetScenario(int dup) {
  static std::map<int, Scenario*>* cache = new std::map<int, Scenario*>();
  auto it = cache->find(dup);
  if (it != cache->end()) return it->second;

  auto* s = new Scenario();
  std::mt19937_64 rng(99 + dup);
  std::uniform_int_distribution<int64_t> val_dist(0, 9);

  // R1(A, B, C, D): kDistinctPairs distinct (A, B) pairs, each duplicated
  // `dup` times (the multiplicity the view loses).
  Table r1({"A", "B", "C", "D"});
  for (int p = 0; p < kDistinctPairs; ++p) {
    int64_t a = p % kGroups, b = p / kGroups;
    int64_t c = val_dist(rng), d = val_dist(rng);
    for (int k = 0; k < dup; ++k) {
      r1.AddRowOrDie({Value::Int64(a), Value::Int64(b), Value::Int64(c),
                      Value::Int64(d)});
    }
  }
  s->base_rows = r1.num_rows();
  s->db.Put("R1", std::move(r1));

  Table r2({"E", "F"});
  for (int i = 0; i < kR2Rows; ++i) {
    r2.AddRowOrDie({Value::Int64(val_dist(rng)), Value::Int64(val_dist(rng))});
  }
  s->db.Put("R2", std::move(r2));

  // Example 4.2's V2: SUM(C) plus the COUNT that rescues the rewriting.
  CheckOrDie(
      s->views.Register(ViewDef{
          "V2", QueryBuilder()
                    .From("R1", {"A3", "B3", "C3", "D3"})
                    .Select("A3")
                    .Select("B3")
                    .SelectAgg(AggFn::kSum, "C3", "s")
                    .SelectAgg(AggFn::kCount, "C3", "cnt")
                    .GroupBy("A3")
                    .GroupBy("B3")
                    .BuildOrDie()}),
      "register V2");

  s->query = QueryBuilder()
                 .From("R1", {"A1", "B1", "C1", "D1"})
                 .From("R2", {"E1", "F1"})
                 .Select("A1")
                 .SelectAgg(AggFn::kSum, "E1", "s")
                 .GroupBy("A1")
                 .BuildOrDie();

  Evaluator eval(&s->db, &s->views);
  Table v2 = ValueOrDie(eval.MaterializeView("V2"), "materialize V2");
  s->view_rows = v2.num_rows();
  s->db.Put("V2", std::move(v2));

  Rewriter rewriter(&s->views);
  s->rewritten = ValueOrDie(rewriter.RewriteUsingView(s->query, "V2"),
                            "rewrite Example 4.2");
  (*cache)[dup] = s;
  return s;
}

void BM_E4_BaseQuery(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Evaluator eval(&s->db, &s->views);
    Table result = ValueOrDie(eval.Execute(s->query), "run Q");
    benchmark::DoNotOptimize(result);
  }
  state.counters["dup"] = static_cast<double>(state.range(0));
  state.counters["base_rows"] = static_cast<double>(s->base_rows);
}

void BM_E4_RewrittenQuery(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Evaluator eval(&s->db, &s->views);
    Table result = ValueOrDie(eval.Execute(s->rewritten), "run Q'");
    benchmark::DoNotOptimize(result);
  }
  state.counters["dup"] = static_cast<double>(state.range(0));
  state.counters["view_rows"] = static_cast<double>(s->view_rows);
}

BENCHMARK(BM_E4_BaseQuery)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E4_RewrittenQuery)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv
