// Experiment E10 (extension) — keeping the summary view fresh: the
// warehousing scenario only pays off if maintaining V1 under new call
// batches is much cheaper than recomputing it. Measures incremental
// maintenance versus full recomputation of the telephony summary view,
// sweeping the batch size, plus the end-to-end "refresh + query" cycle.
//
// Series:
//   E10/IncrementalApply/<batch> — fold a batch of new calls into V1
//   E10/FullRecompute/<batch>    — recompute V1 from scratch instead
//
// Shape expectation: incremental cost tracks the batch size; recompute cost
// tracks |Calls|, so the gap is roughly |Calls| / batch.

#include <map>
#include <random>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/evaluator.h"
#include "maintain/incremental.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

constexpr int kCalls = 100000;

struct Scenario {
  TelephonyWorkload workload;
  Table v1;
  IncrementalMaintainer* maintainer;
};

Scenario* GetScenario() {
  static Scenario* s = [] {
    auto* sc = new Scenario();
    TelephonyParams params;
    params.num_calls = kCalls;
    sc->workload = MakeTelephonyWorkload(params);
    Evaluator eval(&sc->workload.db, &sc->workload.views);
    sc->v1 = ValueOrDie(eval.MaterializeView("V1"), "materialize V1");
    const ViewDef* def = ValueOrDie(sc->workload.views.Get("V1"), "get V1");
    sc->maintainer = new IncrementalMaintainer(
        ValueOrDie(IncrementalMaintainer::Create(*def), "create maintainer"));
    return sc;
  }();
  return s;
}

Delta MakeBatch(int batch, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> plan(0, 19);
  std::uniform_int_distribution<int> cust(0, 999);
  std::uniform_int_distribution<int> month(1, 12);
  std::uniform_real_distribution<double> charge(0.05, 10.0);
  Delta d;
  for (int i = 0; i < batch; ++i) {
    d.inserts["Calls"].push_back(
        {Value::Int64(kCalls + i), Value::Int64(cust(rng)),
         Value::Int64(plan(rng)), Value::Int64(14), Value::Int64(month(rng)),
         Value::Int64(1996), Value::Double(charge(rng))});
  }
  return d;
}

void BM_E10_IncrementalApply(benchmark::State& state) {
  Scenario* s = GetScenario();
  int batch = static_cast<int>(state.range(0));
  Delta delta = MakeBatch(batch, 11);
  for (auto _ : state) {
    Table copy = s->v1;  // maintain a scratch copy each iteration
    CheckOrDie(s->maintainer->Apply(delta, s->workload.db, &copy),
               "incremental apply");
    benchmark::DoNotOptimize(copy);
  }
  state.counters["batch"] = batch;
  state.counters["view_rows"] = static_cast<double>(s->v1.num_rows());
}

void BM_E10_FullRecompute(benchmark::State& state) {
  Scenario* s = GetScenario();
  int batch = static_cast<int>(state.range(0));
  // The recompute path sees the post-batch base tables.
  Database after = s->workload.db;
  CheckOrDie(ApplyDeltaToBase(MakeBatch(batch, 11), &after), "apply to base");
  for (auto _ : state) {
    Evaluator eval(&after, &s->workload.views);
    eval.ClearViewCache();
    Table v1 = ValueOrDie(eval.MaterializeView("V1"), "recompute");
    benchmark::DoNotOptimize(v1);
  }
  state.counters["batch"] = batch;
  state.counters["base_rows"] = kCalls + batch;
}

BENCHMARK(BM_E10_IncrementalApply)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E10_FullRecompute)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv
