// Experiment E12 — the concurrent query service: amortizing the rewrite
// decision across heavy repeated traffic (the optimizer-integration setting
// of Cohen–Nutt). A multi-threaded load generator drives QueryService with
// a fixed pool of telephony aggregation queries and sweeps
//
//   cache=0/1  — rewrite-plan cache off (every SELECT re-optimizes: parse,
//                flatten, enumerate rewritings, cost) vs on (plan served
//                from the LRU after the first miss);
//   threads    — 1, 2, 4, 8 workers through the reader/writer latch.
//
// Series reported (items = statements served):
//   E12/Service/cache:0/threads:N  — cold planning path
//   E12/Service/cache:1/threads:N  — warm cache path
// plus `cache_hit_rate` from the service's own metrics. The headline
// numbers: items_per_second(cache:1) / items_per_second(cache:0) at equal
// threads is the cache speedup (claimed >= 2x), and items_per_second rising
// with threads at cache:1 is the latch scaling claim.
//
// Reproducible by construction: the workload seed is pinned (and overridable
// on the command line), so two runs generate identical databases and plans.
//
// Experiment E14 — striped latching under a write-heavy mix (PR 3). The
// BM_E12_ServiceWriteMix series adds writer traffic: each worker flips a
// deterministic per-thread coin and either runs a pool SELECT or REFRESHes
// its *private* materialized view (constant-cost write: the view reads one
// small private table, so the work does not grow over the run). The sweep
// crosses
//
//   write_pct  — percent of statements that are writes (0, 20, 50);
//   stripes    — ServiceOptions::latch_stripes; stripes:1 *is* the global
//                reader/writer latch the stripes replaced (every name maps
//                to one stripe), so stripes:1 vs stripes:16 at equal
//                write_pct/threads is the before/after of the PR.
//
// Experiment E16 — robustness under chaos (PR 4). With --chaos the whole
// sweep runs with probabilistic failpoints armed across the wired sites
// (parse, plan cache, execution, COW copy); injected faults surface as
// clean kUnavailable errors, which the workers count (`chaos_error_rate`)
// instead of aborting the series. The headline claim is twofold: the
// service keeps serving under sustained faults — slower, since failed
// rewritten plans retry on the unrewritten query, but it never wedges or
// crashes — and, from BM_E16_DisabledFailpointCheck, which times an
// unarmed AQV_FAILPOINT site directly, the disabled check costs about a
// nanosecond, i.e. well under 2% of any statement's service time.
//
// Experiment E17 — the transactional write path (PR 5). Two series:
//
//   BM_E17_InsertThroughput/batch_rows:B  — insert a fixed number of rows
//       into a fresh service holding a maintainable materialized view,
//       B tuples per INSERT statement. batch_rows:1 is the single-row
//       write path (one COW copy + one maintenance pass per row);
//       batch_rows:10000 is one statement. items = rows, so
//       items_per_second(batch) / items_per_second(single) is the batching
//       speedup (claimed >= 10x).
//   BM_E17_MaintainVsRecompute/base_rows:N/recompute:R — one 100-row INSERT
//       against a base table of N rows whose dependent view is either
//       incrementally maintainable (R=0, SUM/COUNT) or outside the
//       maintainer's dialect (R=1, AVG forces a full recompute). The gap
//       widening with N is the maintenance-vs-recompute crossover.
//
// This bench has its own main with workload flags on top of the standard
// google-benchmark ones:
//
//   --threads=1,2,4,8     worker counts to sweep (comma-separated)
//   --duration=SECONDS    min measuring time per series (benchmark MinTime)
//   --seed=N              telephony workload seed (default 42)
//   --cache_capacity=N    plan-cache capacity for the cache:1 service
//   --write_pct=0,20,50   write percentages for the write-mix sweep
//   --stripes=1,16        latch stripe counts for the write-mix sweep
//   --batch_rows=1,100,10000  tuples-per-statement sweep for E17
//   --chaos               arm failpoints for the whole sweep (E16)
//
// e.g. bench_e12_service --threads=4 --duration=2 --seed=7
//        --benchmark_format=json

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/failpoint.h"
#include "bench/bench_util.h"
#include "service/query_service.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

constexpr int kNumCalls = 20000;

// Flag-controlled workload knobs (set in main before any benchmark runs;
// GetService builds lazily, so the flags are honored).
uint64_t g_workload_seed = 42;
size_t g_cache_capacity = 256;
std::vector<int> g_write_pcts = {0, 20, 50};
std::vector<int> g_stripe_counts = {1, 16};
// Number of per-thread private write targets (set to max worker count).
int g_mix_slots = 8;
// E17: tuples-per-INSERT-statement sweep; total rows per iteration is the
// largest entry, so the series are directly comparable (items = rows).
std::vector<int> g_batch_rows = {1, 100, 10000};
// E16: run the sweep with failpoints armed (see ArmChaos in main).
bool g_chaos = false;

// Under --chaos injected faults are expected: a kUnavailable result counts
// toward `*errors` and the iteration goes on. Anything else (or any error
// in a fault-free run) still aborts the series. Returns true to continue.
bool TolerateChaos(benchmark::State& state, const Status& s,
                   uint64_t* errors) {
  if (g_chaos && s.code() == StatusCode::kUnavailable) {
    ++*errors;
    return true;
  }
  state.SkipWithError(s.ToString().c_str());
  return false;
}

void ReportChaosErrors(benchmark::State& state, uint64_t errors) {
  if (!g_chaos) return;
  state.counters["chaos_error_rate"] = benchmark::Counter(
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(errors) / state.iterations(),
      benchmark::Counter::kAvgThreads);
}

// The Example 1.1 query in shell syntax (occurrence 1 = Calls,
// occurrence 2 = Calling_Plans), parameterized to make plans distinct.
std::string PlanEarningsQuery(int year, double threshold) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "SELECT Plan_Id_2, Plan_Name_2, SUM(Charge_1) AS Total "
                "FROM Calls, Calling_Plans "
                "WHERE Plan_Id_1 = Plan_Id_2 AND Year_1 = %d "
                "GROUPBY Plan_Id_2, Plan_Name_2 HAVING SUM(Charge_1) < %.1f",
                year, threshold);
  return buf;
}

std::string YearlyEarningsQuery(int year) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "SELECT Plan_Id_1, SUM(Charge_1) AS Yearly FROM Calls "
                "WHERE Year_1 = %d GROUPBY Plan_Id_1",
                year);
  return buf;
}

// A fixed pool of distinct statements: distinct canonical fingerprints, so
// the cache holds one plan per pool entry (all within capacity).
const std::vector<std::string>& QueryPool() {
  static const std::vector<std::string>* pool = [] {
    auto* p = new std::vector<std::string>();
    for (int year = 1994; year <= 1996; ++year) {
      for (double threshold : {200.0, 400.0, 800.0, 1e9}) {
        p->push_back(PlanEarningsQuery(year, threshold));
      }
      p->push_back(YearlyEarningsQuery(year));
    }
    return p;
  }();
  return *pool;
}

// One service per cache mode, shared across thread counts: a long-lived
// server process handling repeated traffic, exactly the amortization
// setting the cache targets.
QueryService* GetService(bool cache_enabled) {
  static QueryService* services[2] = {nullptr, nullptr};
  QueryService*& slot = services[cache_enabled ? 1 : 0];
  if (slot != nullptr) return slot;

  TelephonyParams params;
  params.num_calls = kNumCalls;
  params.seed = g_workload_seed;
  TelephonyWorkload w = MakeTelephonyWorkload(params);

  ServiceOptions options;
  options.enable_plan_cache = cache_enabled;
  options.plan_cache_capacity = g_cache_capacity;
  auto* service = new QueryService(options);
  CheckOrDie(
      service->Bootstrap(std::move(w.catalog), std::move(w.db),
                         std::move(w.views)),
      "bootstrap service");
  CheckOrDie(service->Execute("REFRESH V1").status(), "materialize V1");
  // A second summary (yearly earnings straight off Calls): more candidate
  // rewritings per optimization — the realistic multi-view warehouse — and
  // the rewrite target for the YearlyEarnings pool entries.
  CheckOrDie(service
                 ->Execute("CREATE MATERIALIZED VIEW V2 AS "
                           "SELECT Plan_Id_1, Year_1, SUM(Charge_1) AS Yearly "
                           "FROM Calls GROUPBY Plan_Id_1, Year_1")
                 .status(),
             "materialize V2");
  slot = service;
  return slot;
}

// One service per stripe count for the E14 write-mix sweep. On top of the
// telephony warehouse, each worker slot t gets a small private table PT<t>
// and a materialized view PV<t> over it: REFRESH PV<t> is then a
// constant-cost write whose footprint (PV<t> exclusive, PT<t> shared) is
// disjoint from the pool SELECTs' footprints (Calls/Calling_Plans/V1/V2),
// modulo stripe-hash collisions. With stripes=1 every footprint lands on
// the single stripe — the pre-PR global latch — so writers serialize the
// whole service; with 16 stripes they only serialize against themselves.
QueryService* GetMixService(size_t stripes) {
  static std::mutex mu;
  static auto* services = new std::map<size_t, QueryService*>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = services->find(stripes);
  if (it != services->end()) return it->second;

  TelephonyParams params;
  params.num_calls = kNumCalls;
  params.seed = g_workload_seed;
  TelephonyWorkload w = MakeTelephonyWorkload(params);

  ServiceOptions options;
  options.enable_plan_cache = true;
  options.plan_cache_capacity = g_cache_capacity;
  options.latch_stripes = stripes;
  auto* service = new QueryService(options);
  CheckOrDie(
      service->Bootstrap(std::move(w.catalog), std::move(w.db),
                         std::move(w.views)),
      "bootstrap mix service");
  CheckOrDie(service->Execute("REFRESH V1").status(), "materialize V1");
  CheckOrDie(service
                 ->Execute("CREATE MATERIALIZED VIEW V2 AS "
                           "SELECT Plan_Id_1, Year_1, SUM(Charge_1) AS Yearly "
                           "FROM Calls GROUPBY Plan_Id_1, Year_1")
                 .status(),
             "materialize V2");
  for (int t = 0; t < g_mix_slots; ++t) {
    std::string pt = "PT" + std::to_string(t);
    std::string pv = "PV" + std::to_string(t);
    CheckOrDie(service->Execute("CREATE TABLE " + pt + "(K, V)").status(),
               "create private table");
    for (int row = 0; row < 8; ++row) {
      CheckOrDie(service
                     ->Execute("INSERT INTO " + pt + " VALUES (" +
                               std::to_string(row % 4) + ", " +
                               std::to_string(row) + ")")
                     .status(),
                 "seed private table");
    }
    CheckOrDie(service
                   ->Execute("CREATE MATERIALIZED VIEW " + pv +
                             " AS SELECT K_1, SUM(V_1) AS S FROM " + pt +
                             " GROUPBY K_1")
                   .status(),
               "create private view");
  }
  (*services)[stripes] = service;
  return service;
}

// E14: mixed read/write traffic. Each iteration flips a deterministic
// per-thread coin: with probability write_pct it REFRESHes the thread's
// private view (a write — exclusive stripe on PV<t>), otherwise it runs
// the next pool SELECT (shared stripes). items = statements served.
void BM_E12_ServiceWriteMix(benchmark::State& state) {
  const int write_pct = static_cast<int>(state.range(0));
  const size_t stripes = static_cast<size_t>(state.range(1));
  QueryService* service = GetMixService(stripes);
  const std::vector<std::string>& pool = QueryPool();

  const int slot = state.thread_index() % g_mix_slots;
  const std::string refresh = "REFRESH PV" + std::to_string(slot);
  size_t next = static_cast<size_t>(state.thread_index()) * 3;
  // Per-thread LCG: deterministic mix, no shared RNG state.
  uint64_t lcg = 0x9e3779b97f4a7c15ULL * (state.thread_index() + 1);
  uint64_t writes = 0;
  uint64_t chaos_errors = 0;
  for (auto _ : state) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const bool is_write = static_cast<int>((lcg >> 33) % 100) < write_pct;
    const std::string& q = is_write ? refresh : pool[next++ % pool.size()];
    Result<StatementResult> r = service->Execute(q);
    if (!r.ok()) {
      if (!TolerateChaos(state, r.status(), &chaos_errors)) return;
      continue;
    }
    if (is_write) ++writes;
    benchmark::DoNotOptimize(r->message);
  }
  state.SetItemsProcessed(state.iterations());
  ReportChaosErrors(state, chaos_errors);
  state.counters["write_frac"] = benchmark::Counter(
      state.iterations() == 0
          ? 0.0
          : static_cast<double>(writes) / state.iterations(),
      benchmark::Counter::kAvgThreads);
}

void BM_E12_Service(benchmark::State& state) {
  const bool cache_enabled = state.range(0) != 0;
  QueryService* service = GetService(cache_enabled);
  const std::vector<std::string>& pool = QueryPool();

  // Stagger threads across the pool so they contend on different entries.
  size_t next = static_cast<size_t>(state.thread_index()) * 3;
  uint64_t chaos_errors = 0;
  for (auto _ : state) {
    const std::string& q = pool[next++ % pool.size()];
    Result<StatementResult> r = service->Execute(q);
    if (!r.ok()) {
      if (!TolerateChaos(state, r.status(), &chaos_errors)) return;
      continue;
    }
    benchmark::DoNotOptimize(r->table);
  }
  state.SetItemsProcessed(state.iterations());
  ReportChaosErrors(state, chaos_errors);

  ServiceStats stats = service->Stats();
  uint64_t lookups = stats.plan_cache_hits + stats.plan_cache_misses;
  state.counters["cache_hit_rate"] = benchmark::Counter(
      lookups == 0 ? 0.0
                   : static_cast<double>(stats.plan_cache_hits) / lookups,
      benchmark::Counter::kAvgThreads);
  state.counters["optimize_p50_us"] =
      benchmark::Counter(stats.optimize_p50_micros,
                         benchmark::Counter::kAvgThreads);
  state.counters["exec_p50_us"] = benchmark::Counter(
      stats.exec_p50_micros, benchmark::Counter::kAvgThreads);
}

// Closed-loop load generator: each worker models one client connection that
// waits kThinkMicros between statements (network round-trip + client work),
// the standard YCSB-style closed system. Aggregate throughput rising with
// workers demonstrates the service sustains concurrent in-flight requests:
// worker count is the concurrency knob a serving deployment actually turns,
// and on multi-core hardware the reader path additionally scales past one
// core's worth of service time through the shared latch.
void BM_E12_ServiceClosedLoop(benchmark::State& state) {
  constexpr int kThinkMicros = 200;
  QueryService* service = GetService(/*cache_enabled=*/true);
  const std::vector<std::string>& pool = QueryPool();

  size_t next = static_cast<size_t>(state.thread_index()) * 3;
  uint64_t chaos_errors = 0;
  for (auto _ : state) {
    std::this_thread::sleep_for(std::chrono::microseconds(kThinkMicros));
    const std::string& q = pool[next++ % pool.size()];
    Result<StatementResult> r = service->Execute(q);
    if (!r.ok()) {
      if (!TolerateChaos(state, r.status(), &chaos_errors)) return;
      continue;
    }
    benchmark::DoNotOptimize(r->table);
  }
  state.SetItemsProcessed(state.iterations());
  ReportChaosErrors(state, chaos_errors);
}

// Planning-path microscope: the exact cost a warm hit saves per statement
// (single-threaded, no execution variance): optimizer entry vs cache hit.
void BM_E12_ColdPlanVsWarmPlan(benchmark::State& state) {
  const bool cache_enabled = state.range(0) != 0;
  QueryService* service = GetService(cache_enabled);
  const std::string q = PlanEarningsQuery(1995, 1e9);
  uint64_t chaos_errors = 0;
  for (auto _ : state) {
    Result<StatementResult> r = service->Execute("EXPLAIN " + q);
    if (!r.ok()) {
      if (!TolerateChaos(state, r.status(), &chaos_errors)) return;
      continue;
    }
    benchmark::DoNotOptimize(r->message);
  }
  state.SetItemsProcessed(state.iterations());
  ReportChaosErrors(state, chaos_errors);
}

// E17: batched-insert throughput through the maintained write path. Each
// iteration builds a FRESH service (paused timing) with a maintainable
// SUM/COUNT view over the target table, then inserts the same total row
// count as batch_rows-tuple statements. Single-row pays one COW publication
// and one maintenance pass per row — O(table) copies each time — while a
// batch pays them once per statement.
void BM_E17_InsertThroughput(benchmark::State& state) {
  const int batch_rows = static_cast<int>(state.range(0));
  const int total_rows =
      *std::max_element(g_batch_rows.begin(), g_batch_rows.end());
  uint64_t chaos_errors = 0;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    CheckOrDie(service.Execute("CREATE TABLE E17(A, B)").status(),
               "create E17");
    CheckOrDie(service
                   .Execute("CREATE MATERIALIZED VIEW E17V AS SELECT A_1, "
                            "SUM(B_1) AS S, COUNT(B_1) AS N FROM E17 "
                            "GROUPBY A_1")
                   .status(),
               "create E17V");
    // Pre-render the statements: timing covers the service, not snprintf.
    std::vector<std::string> stmts;
    for (int done = 0; done < total_rows;) {
      int n = std::min(batch_rows, total_rows - done);
      std::string sql = "INSERT INTO E17 VALUES ";
      for (int r = 0; r < n; ++r) {
        if (r > 0) sql += ", ";
        sql += "(" + std::to_string((done + r) % 16) + ", " +
               std::to_string(done + r) + ")";
      }
      done += n;
      stmts.push_back(std::move(sql));
    }
    state.ResumeTiming();
    for (const std::string& sql : stmts) {
      Result<StatementResult> r = service.Execute(sql);
      if (!r.ok()) {
        if (!TolerateChaos(state, r.status(), &chaos_errors)) return;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * total_rows);
  ReportChaosErrors(state, chaos_errors);
}

// E17: incremental maintenance vs forced full recompute, as the base table
// grows. Maintenance work scales with the delta; recompute scales with the
// base, so the per-statement gap is the crossover argument for the
// maintainer's dialect. Fixed iteration count: each iteration grows the
// table by only 100 rows, so the base size stays ~N for the whole series.
void BM_E17_MaintainVsRecompute(benchmark::State& state) {
  const int base_rows = static_cast<int>(state.range(0));
  const bool recompute = state.range(1) != 0;
  constexpr int kDeltaRows = 100;

  QueryService service;
  CheckOrDie(service.Execute("CREATE TABLE M(A, B)").status(), "create M");
  {
    // Seed the base in big batches (not timed).
    for (int done = 0; done < base_rows;) {
      int n = std::min(1000, base_rows - done);
      std::string sql = "INSERT INTO M VALUES ";
      for (int r = 0; r < n; ++r) {
        if (r > 0) sql += ", ";
        sql += "(" + std::to_string((done + r) % 16) + ", " +
               std::to_string(done + r) + ")";
      }
      done += n;
      CheckOrDie(service.Execute(sql).status(), "seed M");
    }
  }
  // SUM/COUNT is inside the incremental dialect; AVG forces the write path
  // onto the full-recompute fallback.
  CheckOrDie(service
                 .Execute(recompute
                              ? "CREATE MATERIALIZED VIEW MV AS SELECT A_1, "
                                "AVG(B_1) AS X FROM M GROUPBY A_1"
                              : "CREATE MATERIALIZED VIEW MV AS SELECT A_1, "
                                "SUM(B_1) AS X, COUNT(B_1) AS N FROM M "
                                "GROUPBY A_1")
                 .status(),
             "create MV");

  std::string delta = "INSERT INTO M VALUES ";
  for (int r = 0; r < kDeltaRows; ++r) {
    if (r > 0) delta += ", ";
    delta += "(" + std::to_string(r % 16) + ", " + std::to_string(r) + ")";
  }
  uint64_t chaos_errors = 0;
  for (auto _ : state) {
    Result<StatementResult> r = service.Execute(delta);
    if (!r.ok()) {
      if (!TolerateChaos(state, r.status(), &chaos_errors)) return;
    }
  }
  state.SetItemsProcessed(state.iterations() * kDeltaRows);
  ReportChaosErrors(state, chaos_errors);
  ServiceStats stats = service.Stats();
  state.counters["maintain_p50_us"] = benchmark::Counter(
      stats.maintain_p50_micros, benchmark::Counter::kAvgThreads);
  state.counters["views_recomputed"] = benchmark::Counter(
      static_cast<double>(stats.views_recomputed),
      benchmark::Counter::kAvgThreads);
}

// E16: the cost of one *disabled* failpoint site — the price every wired
// call path pays in a production (no-chaos) process. The helper is a real
// Status-returning function so the measured code is exactly what a wired
// site compiles to. In a fault-free run nothing is armed and this times
// the one-relaxed-load fast path; under --chaos the registry has other
// sites armed, so it times the armed-elsewhere map probe instead.
Status DisabledFailpointSite() {
  AQV_FAILPOINT("bench.e16.never_armed");
  return Status::OK();
}

void BM_E16_DisabledFailpointCheck(benchmark::State& state) {
  for (auto _ : state) {
    Status s = DisabledFailpointSite();
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}

// E16: arm the chaos schedule across the wired sites. Error rates are kept
// low enough that cached plans survive most of the time (the point is
// sustained throughput under faults, not a wall of errors); the COW-copy
// site only fires on the write-mix series. Reseeded from the workload seed
// so a chaos sweep replays exactly.
void ArmChaos() {
  FailpointRegistry& reg = FailpointRegistry::Global();
  CheckOrDie(reg.Set("parse", "delay(20,10)"), "arm parse");
  CheckOrDie(reg.Set("plan_cache.lookup", "error(5)"), "arm lookup");
  CheckOrDie(reg.Set("plan_cache.insert", "error(5)"), "arm insert");
  CheckOrDie(reg.Set("exec.operator", "error(2)"), "arm exec");
  CheckOrDie(reg.Set("table.cow_copy", "error(5)"), "arm cow");
  CheckOrDie(reg.Set("maintain.apply", "error(5)"), "arm maintain");
  reg.Reseed(g_workload_seed);
}

// ---- Flag parsing + registration (custom main). ----

// Consumes "--name=value" from a bench flag; returns nullptr if it is not
// this flag (so unmatched argv entries fall through to google-benchmark).
const char* FlagValue(const char* arg, const char* name) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

// Comma-separated non-negative integer list, e.g. "1,2,4,8".
std::vector<int> ParseIntList(const char* flag, const char* value) {
  std::vector<int> out;
  const char* p = value;
  while (*p != '\0') {
    char* end = nullptr;
    long t = std::strtol(p, &end, 10);
    if (end == p || t < 0) {
      std::fprintf(stderr, "bad %s list: %s\n", flag, value);
      std::exit(1);
    }
    out.push_back(static_cast<int>(t));
    p = (*end == ',') ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "empty %s list\n", flag);
    std::exit(1);
  }
  return out;
}

void RegisterAll(const std::vector<int>& threads, double duration_seconds) {
  auto configure = [&](benchmark::internal::Benchmark* b) {
    for (int t : threads) b->Threads(t);
    if (duration_seconds > 0) b->MinTime(duration_seconds);
    b->UseRealTime()->Unit(benchmark::kMicrosecond);
  };
  configure(benchmark::RegisterBenchmark("BM_E12_Service", BM_E12_Service)
                ->ArgName("cache")
                ->Arg(0)
                ->Arg(1));
  configure(benchmark::RegisterBenchmark("BM_E12_ServiceClosedLoop",
                                         BM_E12_ServiceClosedLoop));
  auto* plan = benchmark::RegisterBenchmark("BM_E12_ColdPlanVsWarmPlan",
                                            BM_E12_ColdPlanVsWarmPlan)
                   ->ArgName("cache")
                   ->Arg(0)
                   ->Arg(1)
                   ->Unit(benchmark::kMicrosecond);
  if (duration_seconds > 0) plan->MinTime(duration_seconds);

  auto* mix = benchmark::RegisterBenchmark("BM_E12_ServiceWriteMix",
                                           BM_E12_ServiceWriteMix)
                  ->ArgNames({"write_pct", "stripes"});
  for (int s : g_stripe_counts) {
    for (int w : g_write_pcts) mix->Args({w, s});
  }
  configure(mix);

  auto* insert = benchmark::RegisterBenchmark("BM_E17_InsertThroughput",
                                              BM_E17_InsertThroughput)
                     ->ArgName("batch_rows")
                     ->Unit(benchmark::kMillisecond)
                     ->UseRealTime();
  for (int b : g_batch_rows) insert->Arg(b);

  auto* crossover = benchmark::RegisterBenchmark("BM_E17_MaintainVsRecompute",
                                                 BM_E17_MaintainVsRecompute)
                        ->ArgNames({"base_rows", "recompute"})
                        ->Unit(benchmark::kMicrosecond)
                        ->UseRealTime()
                        ->Iterations(50);
  for (int base : {1000, 8000, 64000}) {
    crossover->Args({base, 0})->Args({base, 1});
  }

  benchmark::RegisterBenchmark("BM_E16_DisabledFailpointCheck",
                               BM_E16_DisabledFailpointCheck)
      ->Unit(benchmark::kNanosecond);
}

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  std::vector<int> threads = {1, 2, 4, 8};
  double duration_seconds = 0;

  // Pull out our workload flags; everything else stays for benchmark's own
  // parser (--benchmark_format=json etc.).
  std::vector<char*> remaining;
  remaining.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (const char* v = aqv::FlagValue(argv[i], "--threads")) {
      threads = aqv::ParseIntList("--threads", v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--duration")) {
      duration_seconds = std::atof(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--seed")) {
      aqv::g_workload_seed = static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = aqv::FlagValue(argv[i], "--cache_capacity")) {
      aqv::g_cache_capacity = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = aqv::FlagValue(argv[i], "--write_pct")) {
      aqv::g_write_pcts = aqv::ParseIntList("--write_pct", v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--stripes")) {
      aqv::g_stripe_counts = aqv::ParseIntList("--stripes", v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--batch_rows")) {
      aqv::g_batch_rows = aqv::ParseIntList("--batch_rows", v);
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      aqv::g_chaos = true;
    } else {
      remaining.push_back(argv[i]);
    }
  }
  int remaining_argc = static_cast<int>(remaining.size());
  for (int t : threads) {
    if (t > aqv::g_mix_slots) aqv::g_mix_slots = t;
  }

  aqv::RegisterAll(threads, duration_seconds);
  if (aqv::g_chaos) {
    // Bootstrap every service before any failpoint is armed — setup DDL
    // must not face injected faults (CheckOrDie would abort) — then arm
    // the chaos schedule for the whole measured sweep.
    aqv::GetService(false);
    aqv::GetService(true);
    for (int s : aqv::g_stripe_counts) {
      aqv::GetMixService(static_cast<size_t>(s));
    }
    aqv::ArmChaos();
  }
  benchmark::Initialize(&remaining_argc, remaining.data());
  if (benchmark::ReportUnrecognizedArguments(remaining_argc,
                                             remaining.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
