// Experiment E1 — the motivating claim of Example 1.1: answering the
// "plans that earned less than X in 1995" query from the materialized
// monthly summary view V1 is orders of magnitude faster than evaluating it
// over the Calls table, and the gap widens with call volume.
//
// Series reported (one row per |Calls|):
//   E1/BaseQuery/<calls>      — Q over Calls ⋈ Calling_Plans
//   E1/RewrittenQuery/<calls> — Q' over materialized V1
// The `view_rows` counter shows the summary's size; `speedup` is derived
// offline as base_time / rewritten_time at equal argument.

#include <map>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/evaluator.h"
#include "rewrite/rewriter.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

struct Scenario {
  TelephonyWorkload workload;
  Query rewritten;
  size_t view_rows = 0;
};

// Workload construction is expensive; cache per call volume.
Scenario* GetScenario(int num_calls) {
  static std::map<int, Scenario*>* cache = new std::map<int, Scenario*>();
  auto it = cache->find(num_calls);
  if (it != cache->end()) return it->second;

  auto* s = new Scenario();
  TelephonyParams params;
  params.num_calls = num_calls;
  // Threshold scaled so the HAVING clause stays selective (~half the plans).
  params.earnings_threshold =
      0.5 * params.max_charge * num_calls / (params.num_plans * params.num_years);
  s->workload = MakeTelephonyWorkload(params);

  // Materialize the summary view, as a warehouse would maintain it.
  Evaluator eval(&s->workload.db, &s->workload.views);
  Table v1 = ValueOrDie(eval.MaterializeView("V1"), "materialize V1");
  s->view_rows = v1.num_rows();
  s->workload.db.Put("V1", std::move(v1));

  Rewriter rewriter(&s->workload.views);
  s->rewritten = ValueOrDie(
      rewriter.RewriteUsingView(s->workload.query, "V1"), "rewrite Q");
  (*cache)[num_calls] = s;
  return s;
}

void BM_E1_BaseQuery(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  size_t result_rows = 0;
  for (auto _ : state) {
    Evaluator eval(&s->workload.db, &s->workload.views);
    Table result = ValueOrDie(eval.Execute(s->workload.query), "run Q");
    result_rows = result.num_rows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["calls"] = static_cast<double>(state.range(0));
  state.counters["result_rows"] = static_cast<double>(result_rows);
}

void BM_E1_RewrittenQuery(benchmark::State& state) {
  Scenario* s = GetScenario(static_cast<int>(state.range(0)));
  size_t result_rows = 0;
  for (auto _ : state) {
    Evaluator eval(&s->workload.db, &s->workload.views);
    Table result = ValueOrDie(eval.Execute(s->rewritten), "run Q'");
    result_rows = result.num_rows();
    benchmark::DoNotOptimize(result);
  }
  state.counters["calls"] = static_cast<double>(state.range(0));
  state.counters["view_rows"] = static_cast<double>(s->view_rows);
  state.counters["result_rows"] = static_cast<double>(result_rows);
}

BENCHMARK(BM_E1_BaseQuery)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(400000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E1_RewrittenQuery)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(400000)
    ->Unit(benchmark::kMillisecond);

// Planning overhead: finding the rewriting itself (runs at optimizer time).
void BM_E1_RewriteLatency(benchmark::State& state) {
  Scenario* s = GetScenario(10000);
  Rewriter rewriter(&s->workload.views);
  for (auto _ : state) {
    Result<Query> r = rewriter.RewriteUsingView(s->workload.query, "V1");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_E1_RewriteLatency)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv
