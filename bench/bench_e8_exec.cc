// Experiment E8 — execution-substrate sanity: throughput of the physical
// operators the other experiments' numbers rest on, plus the payoff of the
// greedy hash-join plan over the reference Cartesian plan.
//
// Series:
//   E8/HashJoin/<n>         — equi-join of two n-row tables
//   E8/HashAggregate/<n>    — SUM+COUNT grouping of n rows
//   E8/PlanHashJoin/<n>     — full query, greedy hash-join plan
//   E8/PlanCartesian/<n>    — same query, reference Cartesian plan
//   E8/Filter/<n>           — predicate filter over n rows

#include <random>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/evaluator.h"
#include "exec/operators.h"
#include "ir/builder.h"

namespace aqv {
namespace {

std::vector<Row> RandomRows(int n, int width, int domain, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, domain - 1);
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    Row row;
    row.reserve(width);
    for (int j = 0; j < width; ++j) row.push_back(Value::Int64(dist(rng)));
    rows.push_back(std::move(row));
  }
  return rows;
}

void BM_E8_HashJoin(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Row> left = RandomRows(n, 2, n, 1);
  std::vector<Row> right = RandomRows(n, 2, n, 2);
  size_t out = 0;
  for (auto _ : state) {
    std::vector<Row> joined = HashJoin(left, right, {{0, 0}});
    out = joined.size();
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
  state.counters["output_rows"] = static_cast<double>(out);
}

void BM_E8_HashAggregate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Row> rows = RandomRows(n, 3, n / 16 + 1, 3);
  for (auto _ : state) {
    std::vector<Row> grouped = GroupAggregate(
        rows, {0},
        {AggSpec{AggFn::kSum, 1, -1}, AggSpec{AggFn::kCount, 2, -1}});
    benchmark::DoNotOptimize(grouped);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_E8_Filter(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Row> rows = RandomRows(n, 2, 100, 4);
  ColumnIndexMap layout = {{"A", 0}, {"B", 1}};
  std::vector<Predicate> preds = {
      Predicate{Operand::Column("A"), CmpOp::kLt,
                Operand::Constant(Value::Int64(50))}};
  for (auto _ : state) {
    std::vector<Row> kept = FilterRows(rows, preds, layout);
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

Database JoinDb(int n) {
  Database db;
  Table r({"A", "B"});
  Table s({"C", "D"});
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<int64_t> dist(0, n - 1);
  for (int i = 0; i < n; ++i) {
    r.AddRowOrDie({Value::Int64(dist(rng)), Value::Int64(dist(rng))});
    s.AddRowOrDie({Value::Int64(dist(rng)), Value::Int64(dist(rng))});
  }
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  return db;
}

Query JoinQuery() {
  return QueryBuilder()
      .From("R", {"A1", "B1"})
      .From("S", {"C1", "D1"})
      .Select("A1")
      .SelectAgg(AggFn::kCount, "D1", "n")
      .WhereCols("B1", CmpOp::kEq, "C1")
      .GroupBy("A1")
      .BuildOrDie();
}

void BM_E8_PlanHashJoin(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = JoinDb(n);
  Query q = JoinQuery();
  for (auto _ : state) {
    Evaluator eval(&db, nullptr, EvalOptions{true});
    Table result = ValueOrDie(eval.Execute(q), "hash plan");
    benchmark::DoNotOptimize(result);
  }
}

void BM_E8_PlanCartesian(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = JoinDb(n);
  Query q = JoinQuery();
  for (auto _ : state) {
    Evaluator eval(&db, nullptr, EvalOptions{false});
    Table result = ValueOrDie(eval.Execute(q), "cartesian plan");
    benchmark::DoNotOptimize(result);
  }
}

BENCHMARK(BM_E8_HashJoin)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E8_HashAggregate)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E8_Filter)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E8_PlanHashJoin)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_E8_PlanCartesian)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aqv
