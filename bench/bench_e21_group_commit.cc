// Experiment E21 — do group commit and staged replay deliver? (PR 9).
// Two self-timed A/B measurements over the storage engine, one binary that
// is also the CI gate (E19 pattern: no google-benchmark, it owns its exit
// code and its JSON artifact):
//
//   1. Group-commit throughput. N writer threads run closed-loop
//      LogCommit calls against one engine with fsync_wal on, group commit
//      off vs on (fresh database file per arm so WAL size and allocator
//      heat match). Off is the PR 6 baseline: each commit pays its own
//      fsync serialized under the engine mutex. On coalesces every record
//      appended while the leader's fsync is in flight under ONE fsync.
//      The gate claims >= --min-commit-speedup at --threads writers.
//
//   2. Staged replay. For each WAL length K in {64, 256, 1024, 4096}, one
//      database file is built (checkpoint, then K single-row commits) and
//      recovered under both replay strategies — recovery is read-only, so
//      the same file serves both arms. Per-record replay republishes a
//      whole COW epoch per commit (E18 measured it superlinear, ~395 ms at
//      4k commits); staged replay folds the tail into one staging image
//      and publishes one epoch. The gate claims >= --min-replay-speedup at
//      the largest K.
//
// Flags:
//   --threads=N              part-1 writers (default 8)
//   --commits=N              part-1 commits per thread per round (default 250)
//   --rounds=N               part-1 A/B round pairs after warmup (default 3)
//   --replay-reps=N          part-2 recoveries per arm, best-of (default 3)
//   --json=PATH              JSON artifact (default e21_group_commit.json)
//   --min-commit-speedup=X   exit 1 if group-commit speedup < X (default 2.0;
//                            0 disables the gate)
//   --min-replay-speedup=X   exit 1 if staged-replay speedup at the largest
//                            WAL < X (default 5.0; 0 disables the gate)
//
// e.g. build/bench/bench_e21_group_commit --json=bench/e21_group_commit.json

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "exec/table.h"
#include "maintain/incremental.h"
#include "storage/storage_engine.h"

namespace aqv {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string FreshPath(const std::string& stem) {
  const char* tmp = std::getenv("TMPDIR");
  std::string path =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/aqv_e21_" + stem;
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

void RemoveDb(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

Delta OneRowDelta(const std::string& table, int64_t a, int64_t b) {
  Delta delta;
  delta.inserts[table].push_back({Value::Int64(a), Value::Int64(b)});
  return delta;
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

std::string JsonList(const std::vector<double>& v, const char* fmt) {
  std::string out = "[";
  char buf[64];
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), fmt, v[i]);
    out += buf;
  }
  return out + "]";
}

// bench_util's ValueOrDie copies the result value, which a unique_ptr
// forbids; move out through the rvalue `value()` overload instead.
std::unique_ptr<StorageEngine> OpenOrDie(const StorageOptions& opts,
                                         MetricsRegistry* metrics) {
  Result<std::unique_ptr<StorageEngine>> result =
      StorageEngine::Open(opts, metrics);
  CheckOrDie(result.status(), "open storage engine");
  return std::move(result).value();
}

const char* FlagValue(const char* arg, const char* name) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    return arg + len + 1;
  }
  return nullptr;
}

// Part 1: closed-loop commits/s for one arm on a fresh database. Each of
// the `threads` writers commits into its own table, so the writes commute
// and the WAL (not table contention) is the shared resource.
double CommitThroughput(bool group_commit, int threads, int commits,
                        uint64_t* fsyncs_out) {
  StorageOptions opts;
  opts.path = FreshPath(group_commit ? "commit_on.db" : "commit_off.db");
  opts.fsync_wal = true;
  opts.group_commit = group_commit;

  Catalog catalog;
  Database db;
  for (int t = 0; t < threads; ++t) {
    std::string name = "T" + std::to_string(t);
    CheckOrDie(catalog.AddTable(TableDef(name, {"A", "B"})), "add table");
    db.Put(name, Table({"A", "B"}));
  }
  MetricsRegistry metrics;
  auto engine = OpenOrDie(opts, &metrics);
  CheckOrDie(engine->Checkpoint(catalog, ViewRegistry{}, db, {}),
             "seed checkpoint");

  Clock::time_point start = Clock::now();
  std::vector<std::thread> writers;
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&engine, t, commits] {
      std::string name = "T" + std::to_string(t);
      for (int i = 0; i < commits; ++i) {
        CheckOrDie(engine->LogCommit(OneRowDelta(name, i, t)), "log commit");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  double secs = SecondsSince(start);
  if (fsyncs_out != nullptr) {
    *fsyncs_out = metrics.GetCounter("storage.wal_fsyncs").value();
  }
  engine.reset();
  RemoveDb(opts.path);
  return secs > 0 ? (static_cast<double>(threads) * commits) / secs : 0.0;
}

// Part 2: best-of-`reps` wall time for one recovery of `path` under the
// given replay strategy. Recovery is read-only, so arms share the file.
double RecoveryMillis(const std::string& path, bool staged, int reps) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    StorageOptions opts;
    opts.path = path;
    opts.staged_replay = staged;
    Clock::time_point start = Clock::now();
    auto engine = OpenOrDie(opts, nullptr);
    best = std::min(best, SecondsSince(start) * 1000.0);
    engine.reset();
  }
  return best;
}

}  // namespace
}  // namespace aqv

int main(int argc, char** argv) {
  int threads = 8;
  int commits = 250;
  int rounds = 3;
  int replay_reps = 3;
  std::string json_path = "e21_group_commit.json";
  double min_commit_speedup = 2.0;
  double min_replay_speedup = 5.0;

  for (int i = 1; i < argc; ++i) {
    if (const char* v = aqv::FlagValue(argv[i], "--threads")) {
      threads = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--commits")) {
      commits = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--rounds")) {
      rounds = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--replay-reps")) {
      replay_reps = std::atoi(v);
    } else if (const char* v = aqv::FlagValue(argv[i], "--json")) {
      json_path = v;
    } else if (const char* v =
                   aqv::FlagValue(argv[i], "--min-commit-speedup")) {
      min_commit_speedup = std::atof(v);
    } else if (const char* v =
                   aqv::FlagValue(argv[i], "--min-replay-speedup")) {
      min_replay_speedup = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (threads < 1 || commits < 1 || rounds < 1 || replay_reps < 1) {
    std::fprintf(stderr, "need positive --threads/--commits/--rounds/"
                         "--replay-reps\n");
    return 2;
  }

  // Part 1 — group-commit throughput. Alternating off/on rounds; the first
  // pair is warmup (file creation, allocator growth) and is discarded.
  std::vector<double> off_tput;
  std::vector<double> on_tput;
  uint64_t off_fsyncs = 0;
  uint64_t on_fsyncs = 0;
  for (int pair = 0; pair < rounds + 1; ++pair) {
    double off = aqv::CommitThroughput(false, threads, commits, &off_fsyncs);
    double on = aqv::CommitThroughput(true, threads, commits, &on_fsyncs);
    if (pair == 0) continue;
    off_tput.push_back(off);
    on_tput.push_back(on);
    std::fprintf(stderr,
                 "commit round %d: off=%.0f commits/s on=%.0f commits/s\n",
                 pair, off, on);
  }
  double off_median = aqv::Median(off_tput);
  double on_median = aqv::Median(on_tput);
  double commit_speedup = off_median > 0 ? on_median / off_median : 0.0;
  uint64_t total = static_cast<uint64_t>(threads) * commits;
  double on_batch =
      on_fsyncs > 0 ? static_cast<double>(total) / on_fsyncs : 0.0;

  // Part 2 — staged replay across WAL lengths.
  const std::vector<int> wal_commits = {64, 256, 1024, 4096};
  std::vector<double> replay_off_ms;
  std::vector<double> replay_on_ms;
  std::vector<double> replay_speedup;
  for (int k : wal_commits) {
    std::string path = aqv::FreshPath("replay_" + std::to_string(k) + ".db");
    {
      aqv::StorageOptions opts;
      opts.path = path;
      opts.fsync_wal = false;  // build speed; replay cost is what matters
      aqv::Catalog catalog;
      aqv::CheckOrDie(catalog.AddTable(aqv::TableDef("R", {"A", "B"})),
                      "add table");
      aqv::Database db;
      db.Put("R", aqv::Table({"A", "B"}));
      auto engine = aqv::OpenOrDie(opts, nullptr);
      aqv::CheckOrDie(
          engine->Checkpoint(catalog, aqv::ViewRegistry{}, db, {}),
          "seed checkpoint");
      for (int i = 0; i < k; ++i) {
        aqv::CheckOrDie(engine->LogCommit(aqv::OneRowDelta("R", i, i)),
                        "build commit");
      }
    }
    double off_ms = aqv::RecoveryMillis(path, false, replay_reps);
    double on_ms = aqv::RecoveryMillis(path, true, replay_reps);
    aqv::RemoveDb(path);
    replay_off_ms.push_back(off_ms);
    replay_on_ms.push_back(on_ms);
    replay_speedup.push_back(on_ms > 0 ? off_ms / on_ms : 0.0);
    std::fprintf(stderr,
                 "replay %4d commits: per-record=%.1f ms staged=%.1f ms "
                 "(%.1fx)\n",
                 k, off_ms, on_ms, replay_speedup.back());
  }
  double gate_replay_speedup = replay_speedup.back();

  bool commit_pass =
      min_commit_speedup <= 0 || commit_speedup >= min_commit_speedup;
  bool replay_pass =
      min_replay_speedup <= 0 || gate_replay_speedup >= min_replay_speedup;
  bool pass = commit_pass && replay_pass;

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"experiment\": \"E21\",\n"
      "  \"group_commit\": {\n"
      "    \"threads\": %d, \"commits_per_thread\": %d, \"rounds\": %d,\n"
      "    \"off_commits_per_sec\": %s,\n"
      "    \"on_commits_per_sec\": %s,\n"
      "    \"off_median\": %.1f,\n"
      "    \"on_median\": %.1f,\n"
      "    \"speedup\": %.2f,\n"
      "    \"on_mean_records_per_fsync\": %.1f,\n"
      "    \"min_commit_speedup\": %.1f\n"
      "  },\n"
      "  \"staged_replay\": {\n"
      "    \"wal_commits\": [64, 256, 1024, 4096],\n"
      "    \"per_record_ms\": %s,\n"
      "    \"staged_ms\": %s,\n"
      "    \"speedup\": %s,\n"
      "    \"min_replay_speedup\": %.1f\n"
      "  },\n"
      "  \"pass\": %s\n"
      "}\n",
      threads, commits, rounds, aqv::JsonList(off_tput, "%.0f").c_str(),
      aqv::JsonList(on_tput, "%.0f").c_str(), off_median, on_median,
      commit_speedup, on_batch, min_commit_speedup,
      aqv::JsonList(replay_off_ms, "%.2f").c_str(),
      aqv::JsonList(replay_on_ms, "%.2f").c_str(),
      aqv::JsonList(replay_speedup, "%.2f").c_str(), min_replay_speedup,
      pass ? "true" : "false");
  std::fputs(json, stdout);
  std::ofstream out(json_path, std::ios::trunc);
  if (out) {
    out << json;
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  if (!commit_pass) {
    std::fprintf(stderr,
                 "FAIL: group-commit speedup %.2fx below "
                 "--min-commit-speedup %.1fx\n",
                 commit_speedup, min_commit_speedup);
  }
  if (!replay_pass) {
    std::fprintf(stderr,
                 "FAIL: staged-replay speedup %.2fx at %d commits below "
                 "--min-replay-speedup %.1fx\n",
                 gate_replay_speedup, wal_commits.back(), min_replay_speedup);
  }
  return pass ? 0 : 1;
}
