// Experiment E2 — rewrite-search cost at optimizer time: how long does it
// take to test a query against a library of candidate views, and how does
// mapping enumeration scale with query join width?
//
// Series:
//   E2/ViewLibrary/<n>  — test one query against n candidate views (a mix
//                         of usable and unusable definitions)
//   E2/JoinWidth/<k>    — self-join query of width k against a single-table
//                         view (k candidate mappings)

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "ir/builder.h"
#include "rewrite/rewriter.h"

namespace aqv {
namespace {

Query LibraryQuery() {
  return QueryBuilder()
      .From("R1", {"A1", "B1", "C1", "D1"})
      .From("R2", {"E1", "F1"})
      .Select("A1")
      .SelectAgg(AggFn::kSum, "B1", "s")
      .WhereCols("C1", CmpOp::kEq, "E1")
      .WhereConst("D1", CmpOp::kEq, Value::Int64(3))
      .GroupBy("A1")
      .BuildOrDie();
}

// A library of n views: every fourth view is usable; the others fail C2,
// C3-first-half or C3-second-half respectively.
ViewRegistry MakeLibrary(int n) {
  ViewRegistry views;
  for (int i = 0; i < n; ++i) {
    QueryBuilder b;
    b.From("R1", {"A2", "B2", "C2", "D2"});
    switch (i % 4) {
      case 0:  // usable: selects everything the query needs
        b.Select("A2").Select("B2").Select("C2").Select("D2");
        break;
      case 1:  // C2 failure: grouping column projected out
        b.Select("B2").Select("C2").Select("D2");
        break;
      case 2:  // C3 failure: stronger than the query
        b.Select("A2").Select("B2").Select("C2").Select("D2");
        b.WhereConst("B2", CmpOp::kEq, Value::Int64(7 + i));
        break;
      case 3:  // C3 failure: needed residual column hidden
        b.Select("A2").Select("B2").Select("C2");
        break;
    }
    CheckOrDie(views.Register(ViewDef{"V" + std::to_string(i), b.BuildOrDie()}),
               "register view");
  }
  return views;
}

void BM_E2_ViewLibrary(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  ViewRegistry views = MakeLibrary(n);
  Query q = LibraryQuery();
  Rewriter rewriter(&views);
  int usable = 0;
  for (auto _ : state) {
    usable = 0;
    for (int i = 0; i < n; ++i) {
      Result<std::vector<Rewriting>> r =
          rewriter.RewritingsUsingView(q, "V" + std::to_string(i));
      if (r.ok() && !r->empty()) ++usable;
      benchmark::DoNotOptimize(r);
    }
  }
  state.counters["views"] = n;
  state.counters["usable"] = usable;
  state.counters["views_per_sec"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_E2_ViewLibrary)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_E2_JoinWidth(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  QueryBuilder qb;
  for (int i = 0; i < k; ++i) {
    qb.From("R1", {"A" + std::to_string(i), "B" + std::to_string(i),
                   "C" + std::to_string(i), "D" + std::to_string(i)});
  }
  qb.Select("A0");
  for (int i = 1; i < k; ++i) {
    qb.WhereCols("B" + std::to_string(i - 1), CmpOp::kEq,
                 "A" + std::to_string(i));
  }
  Query q = qb.BuildOrDie();
  ViewRegistry views;
  CheckOrDie(views.Register(ViewDef{"V", QueryBuilder()
                                             .From("R1", {"X", "Y", "Z", "W"})
                                             .Select("X")
                                             .Select("Y")
                                             .Select("Z")
                                             .Select("W")
                                             .BuildOrDie()}),
             "register view");
  Rewriter rewriter(&views);
  size_t rewritings = 0;
  for (auto _ : state) {
    Result<std::vector<Rewriting>> r = rewriter.RewritingsUsingView(q, "V");
    rewritings = r.ok() ? r->size() : 0;
    benchmark::DoNotOptimize(r);
  }
  state.counters["join_width"] = k;
  state.counters["rewritings"] = static_cast<double>(rewritings);
}
BENCHMARK(BM_E2_JoinWidth)->DenseRange(1, 6)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace aqv
