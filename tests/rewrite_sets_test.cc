#include <random>
#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "rewrite/rewriter.h"
#include "rewrite/set_rewriter.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

// R1(A,B,C) with key A, as in Example 5.1.
Catalog KeyedCatalog() {
  Catalog c;
  TableDef r1("R1", {"A", "B", "C"});
  EXPECT_TRUE(r1.AddKeyByName({"A"}).ok());
  EXPECT_TRUE(c.AddTable(r1).ok());
  TableDef r2("R2", {"D", "E"});
  EXPECT_TRUE(c.AddTable(r2).ok());  // no key: a multiset table
  return c;
}

// A keyed instance of R1 (distinct A values) and an unkeyed R2.
Database KeyedDatabase(uint64_t seed, int rows, int domain) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, domain - 1);
  Database db;
  Table r1({"A", "B", "C"});
  for (int i = 0; i < rows; ++i) {
    r1.AddRowOrDie({Value::Int64(i), Value::Int64(dist(rng)),
                    Value::Int64(dist(rng))});
  }
  db.Put("R1", std::move(r1));
  Table r2({"D", "E"});
  for (int i = 0; i < rows; ++i) {
    r2.AddRowOrDie({Value::Int64(dist(rng)), Value::Int64(dist(rng))});
  }
  db.Put("R2", std::move(r2));
  return db;
}

TEST(SetAnalysisTest, DistinctIsAlwaysSet) {
  Catalog c = KeyedCatalog();
  Query q = QueryBuilder()
                .From("R2", {"D1", "E1"})
                .Distinct()
                .Select("D1")
                .BuildOrDie();
  EXPECT_TRUE(IsSetQuery(q, c, nullptr));
}

TEST(SetAnalysisTest, KeyedProjectionIsSet) {
  Catalog c = KeyedCatalog();
  // Prop 5.1: selecting the key keeps the result a set.
  Query with_key = QueryBuilder()
                       .From("R1", {"A1", "B1", "C1"})
                       .Select("A1")
                       .Select("B1")
                       .BuildOrDie();
  EXPECT_TRUE(IsSetQuery(with_key, c, nullptr));
  // Dropping the key loses set-ness.
  Query without_key = QueryBuilder()
                          .From("R1", {"A1", "B1", "C1"})
                          .Select("B1")
                          .BuildOrDie();
  EXPECT_FALSE(IsSetQuery(without_key, c, nullptr));
}

TEST(SetAnalysisTest, UnkeyedTableIsNotSet) {
  Catalog c = KeyedCatalog();
  Query q = QueryBuilder()
                .From("R2", {"D1", "E1"})
                .Select("D1")
                .Select("E1")
                .BuildOrDie();
  EXPECT_FALSE(IsSetQuery(q, c, nullptr));  // Prop 5.2
}

TEST(SetAnalysisTest, JoinNeedsBothKeys) {
  Catalog c = KeyedCatalog();
  // Self-join of R1: both occurrence keys must be selected.
  Query both = QueryBuilder()
                   .From("R1", {"A1", "B1", "C1"})
                   .From("R1", {"A2", "B2", "C2"})
                   .Select("A1")
                   .Select("A2")
                   .BuildOrDie();
  EXPECT_TRUE(IsSetQuery(both, c, nullptr));
  Query one = QueryBuilder()
                  .From("R1", {"A1", "B1", "C1"})
                  .From("R1", {"A2", "B2", "C2"})
                  .Select("A1")
                  .BuildOrDie();
  EXPECT_FALSE(IsSetQuery(one, c, nullptr));
}

TEST(SetAnalysisTest, ForeignKeyJoinReducesKey) {
  // Section 5.1's foreign-key-join rule: joining on the second table's key
  // lets the first table's key alone key the result.
  Catalog c = KeyedCatalog();
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1"})
                .From("R1", {"A2", "B2", "C2"})
                .Select("A1")
                .WhereCols("B1", CmpOp::kEq, "A2")  // B1 references key A
                .BuildOrDie();
  EXPECT_TRUE(IsSetQuery(q, c, nullptr));
}

TEST(SetAnalysisTest, ConstantPinsColumn) {
  Catalog c = KeyedCatalog();
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1"})
                .Select("B1")
                .WhereConst("A1", CmpOp::kEq, Value::Int64(7))
                .BuildOrDie();
  // A1 pinned by a constant: the selected closure covers the key.
  EXPECT_TRUE(IsSetQuery(q, c, nullptr));
}

TEST(SetAnalysisTest, GroupedQueryWithAllGroupsSelectedIsSet) {
  Catalog c = KeyedCatalog();
  Query q = QueryBuilder()
                .From("R2", {"D1", "E1"})
                .Select("D1")
                .SelectAgg(AggFn::kSum, "E1", "s")
                .GroupBy("D1")
                .BuildOrDie();
  EXPECT_TRUE(IsSetQuery(q, c, nullptr));
}

TEST(SetRewriteTest, Example51ManyToOneMapping) {
  // Example 5.1: Q: SELECT A1 FROM R1(A1,B1,C1) WHERE B1 = C1;
  // V1: SELECT A2, A3 FROM R1(A2,B2,C2), R1(A3,B3,C3) WHERE B2 = C3.
  Catalog catalog = KeyedCatalog();
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1"})
                .Select("A1")
                .WhereCols("B1", CmpOp::kEq, "C1")
                .BuildOrDie();
  ViewDef v{"V1", QueryBuilder()
                      .From("R1", {"A2", "B2", "C2"})
                      .From("R1", {"A3", "B3", "C3"})
                      .Select("A2")
                      .Select("A3")
                      .WhereCols("B2", CmpOp::kEq, "C3")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));

  // Without key information the view is not usable (the paper's closing
  // observation in Example 5.1).
  Rewriter no_keys(&views);
  EXPECT_EQ(no_keys.RewriteUsingView(q, "V1").status().code(),
            StatusCode::kUnusable);

  // With keys, the many-to-1 mapping yields the paper's rewriting.
  RewriteOptions options;
  options.use_key_information = true;
  Rewriter rewriter(&views, &catalog, options);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V1"));
  ASSERT_EQ(rewritten.from.size(), 1u);
  EXPECT_EQ(rewritten.from[0].table, "V1");
  EXPECT_TRUE(rewritten.distinct);
  ASSERT_EQ(rewritten.where.size(), 1u);
  EXPECT_EQ(rewritten.where[0].op, CmpOp::kEq);

  // Semantics over keyed data.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = KeyedDatabase(seed, 30, 6);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(SetRewriteTest, ManyToOneRefusedWhenViewNotSet) {
  // Same shapes, but the view projects out both keys, so its result is not
  // provably a set; many-to-1 mappings stay forbidden.
  Catalog catalog = KeyedCatalog();
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1"})
                .Select("B1")
                .Distinct()
                .WhereCols("B1", CmpOp::kEq, "C1")
                .BuildOrDie();
  ViewDef v{"V2", QueryBuilder()
                      .From("R1", {"A2", "B2", "C2"})
                      .From("R1", {"A3", "B3", "C3"})
                      .Select("B2")
                      .Select("B3")
                      .WhereCols("B2", CmpOp::kEq, "C3")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  RewriteOptions options;
  options.use_key_information = true;
  Rewriter rewriter(&views, &catalog, options);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V2").status().code(),
            StatusCode::kUnusable);
}

TEST(SetRewriteTest, OneToOneStillPreferredWhenAvailable) {
  // When a 1-1 mapping exists it is returned first, without DISTINCT.
  Catalog catalog = KeyedCatalog();
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1"})
                .Select("A1")
                .BuildOrDie();
  ViewDef v{"V3", QueryBuilder()
                      .From("R1", {"A2", "B2", "C2"})
                      .Select("A2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  RewriteOptions options;
  options.use_key_information = true;
  Rewriter rewriter(&views, &catalog, options);
  ASSERT_OK_AND_ASSIGN(std::vector<Rewriting> rewritings,
                       rewriter.RewritingsUsingView(q, "V3"));
  ASSERT_FALSE(rewritings.empty());
  EXPECT_TRUE(rewritings[0].mapping.IsOneToOne());
  EXPECT_FALSE(rewritings[0].query.distinct);
}

}  // namespace
}  // namespace aqv
