// Coverage for the workload generators themselves plus a few cross-module
// gaps: view-definition round trips, rewriting-enumeration caps, and cost
// model monotonicity.

#include <set>

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/validate.h"
#include "parser/parser.h"
#include "rewrite/cost.h"
#include "rewrite/multiview.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "workload/random_db.h"
#include "workload/random_query.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

TEST(RandomWorkloadTest, PairsAreAlwaysValid) {
  RandomWorkloadGen gen(123);
  RandomPairConfig config;
  for (int i = 0; i < 50; ++i) {
    config.query_aggregation = i % 2;
    config.view_aggregation = i % 3 == 0;
    config.allow_having = i % 4 == 0;
    QueryViewPair pair = gen.NextPair(config);
    EXPECT_OK(ValidateQuery(pair.query));
    EXPECT_OK(ValidateQuery(pair.view.query));
    EXPECT_FALSE(pair.view.name.empty());
  }
}

TEST(RandomWorkloadTest, DeterministicUnderSeed) {
  RandomPairConfig config;
  RandomWorkloadGen a(99), b(99);
  for (int i = 0; i < 10; ++i) {
    QueryViewPair pa = a.NextPair(config);
    QueryViewPair pb = b.NextPair(config);
    EXPECT_TRUE(pa.query == pb.query);
    EXPECT_TRUE(pa.view.query == pb.view.query);
  }
}

TEST(RandomWorkloadTest, DatabasesMatchSchemaAndDomain) {
  RandomWorkloadGen gen(7);
  Database db = gen.NextDatabase(20, 4);
  for (const std::string& name : gen.catalog().TableNames()) {
    ASSERT_OK_AND_ASSIGN(const Table* t, db.Get(name));
    EXPECT_EQ(t->num_rows(), 20u);
    for (const Row& row : t->rows()) {
      for (const Value& v : row) {
        ASSERT_EQ(v.type(), ValueType::kInt64);
        EXPECT_GE(v.int64(), 0);
        EXPECT_LT(v.int64(), 4);
      }
    }
  }
}

TEST(RandomWorkloadTest, ViewAggregationConfigProducesGroupedViews) {
  RandomWorkloadGen gen(31);
  RandomPairConfig config;
  config.view_aggregation = true;
  int grouped = 0;
  for (int i = 0; i < 20; ++i) {
    grouped += gen.NextPair(config).view.query.IsAggregation();
  }
  EXPECT_EQ(grouped, 20);
}

TEST(TelephonyWorkloadTest, DeterministicUnderSeed) {
  TelephonyParams params;
  params.num_calls = 500;
  TelephonyWorkload a = MakeTelephonyWorkload(params);
  TelephonyWorkload b = MakeTelephonyWorkload(params);
  ASSERT_OK_AND_ASSIGN(const Table* ca, a.db.Get("Calls"));
  ASSERT_OK_AND_ASSIGN(const Table* cb, b.db.Get("Calls"));
  EXPECT_TRUE(MultisetEqual(*ca, *cb));
}

TEST(TelephonyWorkloadTest, KeysDeclared) {
  TelephonyParams params;
  params.num_calls = 10;
  TelephonyWorkload w = MakeTelephonyWorkload(params);
  for (const char* table : {"Customer", "Calling_Plans", "Calls"}) {
    ASSERT_OK_AND_ASSIGN(const TableDef* def, w.catalog.GetTable(table));
    EXPECT_TRUE(def->IsSet()) << table;
  }
}

TEST(ViewRoundTripTest, CreateViewSqlRoundTrips) {
  TelephonyParams params;
  params.num_calls = 10;
  TelephonyWorkload w = MakeTelephonyWorkload(params);
  ASSERT_OK_AND_ASSIGN(const ViewDef* v1, w.views.Get("V1"));
  std::string sql = ToSql(*v1);
  ASSERT_OK_AND_ASSIGN(ViewDef reparsed, ParseView(sql));
  EXPECT_EQ(reparsed.name, v1->name);
  EXPECT_TRUE(reparsed.query == v1->query) << sql;
}

TEST(EnumerationCapTest, MaxResultsRespected) {
  // Width-4 chain query with per-table views reaches 15 rewritings; a cap
  // of 6 stops early.
  QueryBuilder qb;
  ViewRegistry views;
  std::vector<std::string> names;
  for (int i = 0; i < 4; ++i) {
    std::string t = "T" + std::to_string(i);
    qb.From(t, {"A" + std::to_string(i), "B" + std::to_string(i)});
    std::string name = "V" + std::to_string(i);
    ASSERT_OK(views.Register(ViewDef{
        name,
        QueryBuilder().From(t, {"X", "Y"}).Select("X").Select("Y").BuildOrDie()}));
    names.push_back(name);
  }
  qb.Select("A0");
  Query q = qb.BuildOrDie();
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> all,
                       rewriter.EnumerateAllRewritings(q, names));
  EXPECT_EQ(all.size(), 15u);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> capped,
                       rewriter.EnumerateAllRewritings(q, names, 6));
  EXPECT_EQ(capped.size(), 6u);
  // All enumerated rewritings are pairwise distinct.
  std::set<std::string> keys;
  for (const Query& r : all) keys.insert(CanonicalQueryKey(r));
  EXPECT_EQ(keys.size(), all.size());
}

TEST(CostModelTest, MonotoneInInputSize) {
  CostModel model;
  Query q = QueryBuilder().From("T", {"A1"}).Select("A1").BuildOrDie();
  double prev = 0;
  for (int rows : {10, 100, 1000}) {
    Database db;
    Table t({"a"});
    for (int i = 0; i < rows; ++i) t.AddRowOrDie({Value::Int64(i)});
    db.Put("T", std::move(t));
    double cost = model.Estimate(q, db);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(CostModelTest, FiltersReduceEstimatedCost) {
  Database db;
  Table t({"a", "b"});
  for (int i = 0; i < 1000; ++i) {
    t.AddRowOrDie({Value::Int64(i), Value::Int64(i)});
  }
  db.Put("T", std::move(t));
  Table s({"c"});
  for (int i = 0; i < 1000; ++i) s.AddRowOrDie({Value::Int64(i)});
  db.Put("S", std::move(s));

  CostModel model;
  Query unfiltered = QueryBuilder()
                         .From("T", {"A1", "B1"})
                         .From("S", {"C1"})
                         .Select("A1")
                         .WhereCols("B1", CmpOp::kEq, "C1")
                         .BuildOrDie();
  Query filtered = QueryBuilder()
                       .From("T", {"A1", "B1"})
                       .From("S", {"C1"})
                       .Select("A1")
                       .WhereCols("B1", CmpOp::kEq, "C1")
                       .WhereConst("A1", CmpOp::kLt, Value::Int64(10))
                       .BuildOrDie();
  EXPECT_LT(model.Estimate(filtered, db), model.Estimate(unfiltered, db));
}

}  // namespace
}  // namespace aqv
