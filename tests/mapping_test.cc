#include <gtest/gtest.h>

#include "ir/builder.h"
#include "rewrite/mapping.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

Query TwoTableQuery() {
  return QueryBuilder()
      .From("R1", {"A1", "B1"})
      .From("R2", {"C1", "D1"})
      .Select("A1")
      .BuildOrDie();
}

Query TwoTableView() {
  return QueryBuilder()
      .From("R1", {"A2", "B2"})
      .From("R2", {"C2", "D2"})
      .Select("C2")
      .Select("D2")
      .WhereCols("A2", CmpOp::kEq, "C2")
      .BuildOrDie();
}

TEST(MappingTest, Example31Mapping) {
  Query q = TwoTableQuery();
  Query v = TwoTableView();
  std::vector<ColumnMapping> mappings = EnumerateColumnMappings(v, q, true);
  ASSERT_EQ(mappings.size(), 1u);
  const ColumnMapping& m = mappings[0];
  EXPECT_TRUE(m.IsOneToOne());
  EXPECT_EQ(m.MapColumn("A2"), "A1");
  EXPECT_EQ(m.MapColumn("B2"), "B1");
  EXPECT_EQ(m.MapColumn("C2"), "C1");
  EXPECT_EQ(m.MapColumn("D2"), "D1");
  EXPECT_EQ(m.MappedQueryColumns(),
            (std::set<std::string>{"A1", "B1", "C1", "D1"}));
}

TEST(MappingTest, MapPredicate) {
  Query q = TwoTableQuery();
  Query v = TwoTableView();
  ColumnMapping m = EnumerateColumnMappings(v, q, true)[0];
  Predicate p{Operand::Column("A2"), CmpOp::kEq, Operand::Column("C2")};
  EXPECT_EQ(m.MapPredicate(p).ToString(), "A1 = C1");
  Predicate agg{Operand::Aggregate(AggFn::kSum, "B2", "D2"), CmpOp::kLt,
                Operand::Constant(Value::Int64(5))};
  EXPECT_EQ(m.MapPredicate(agg).ToString(), "SUM(B1 * D1) < 5");
}

TEST(MappingTest, NoMappingWhenTableMissing) {
  Query q = TwoTableQuery();
  Query v = QueryBuilder().From("R9", {"X"}).Select("X").BuildOrDie();
  EXPECT_TRUE(EnumerateColumnMappings(v, q, true).empty());
}

TEST(MappingTest, ArityMismatchExcludesCandidate) {
  Query q = TwoTableQuery();
  Query v = QueryBuilder().From("R1", {"X", "Y", "Z"}).Select("X").BuildOrDie();
  EXPECT_TRUE(EnumerateColumnMappings(v, q, true).empty());
}

TEST(MappingTest, SelfJoinEnumeratesPermutations) {
  Query q = QueryBuilder()
                .From("R", {"A1", "B1"})
                .From("R", {"A2", "B2"})
                .Select("A1")
                .BuildOrDie();
  Query v = QueryBuilder()
                .From("R", {"X1", "Y1"})
                .From("R", {"X2", "Y2"})
                .Select("X1")
                .BuildOrDie();
  std::vector<ColumnMapping> one_to_one = EnumerateColumnMappings(v, q, true);
  EXPECT_EQ(one_to_one.size(), 2u);  // the two bijections
  std::vector<ColumnMapping> many = EnumerateColumnMappings(v, q, false);
  EXPECT_EQ(many.size(), 4u);  // all assignments
  int injective = 0;
  for (const ColumnMapping& m : many) injective += m.IsOneToOne();
  EXPECT_EQ(injective, 2);
}

TEST(MappingTest, LimitCapsEnumeration) {
  Query q = QueryBuilder()
                .From("R", {"A1"})
                .From("R", {"A2"})
                .From("R", {"A3"})
                .Select("A1")
                .BuildOrDie();
  Query v = QueryBuilder()
                .From("R", {"X1"})
                .From("R", {"X2"})
                .From("R", {"X3"})
                .Select("X1")
                .BuildOrDie();
  EXPECT_EQ(EnumerateColumnMappings(v, q, true).size(), 6u);  // 3!
  EXPECT_EQ(EnumerateColumnMappings(v, q, true, 4).size(), 4u);
  EXPECT_EQ(EnumerateColumnMappings(v, q, false).size(), 27u);  // 3^3
}

TEST(MappingTest, MappedQueryTables) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .From("R2", {"C1", "D1"})
                .From("R2", {"C2", "D2"})
                .Select("A1")
                .BuildOrDie();
  Query v = QueryBuilder().From("R2", {"X", "Y"}).Select("X").BuildOrDie();
  std::vector<ColumnMapping> mappings = EnumerateColumnMappings(v, q, true);
  ASSERT_EQ(mappings.size(), 2u);
  std::set<int> targets;
  for (const ColumnMapping& m : mappings) {
    for (int t : m.MappedQueryTables()) targets.insert(t);
  }
  EXPECT_EQ(targets, (std::set<int>{1, 2}));
}

}  // namespace
}  // namespace aqv
