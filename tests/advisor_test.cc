#include <gtest/gtest.h>

#include "advisor/view_selection.h"
#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "tests/test_util.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

TEST(SummarySkeletonTest, DropsConstantsPromotesColumns) {
  // WHERE Year = 1995 is dropped; Year becomes a grouping column, so the
  // skeleton serves queries about any year.
  Query q = QueryBuilder()
                .From("Calls", {"Id", "Plan", "Year", "Charge"})
                .Select("Plan")
                .SelectAgg(AggFn::kSum, "Charge", "total")
                .WhereConst("Year", CmpOp::kEq, Value::Int64(1995))
                .GroupBy("Plan")
                .BuildOrDie();
  ASSERT_OK_AND_ASSIGN(ViewDef v, ViewAdvisor::SummarySkeleton(q, "SK"));
  EXPECT_EQ(v.query.group_by.size(), 2u);  // Plan + Year
  EXPECT_TRUE(v.query.where.empty());
  // SUM(Charge) kept, plus an automatic COUNT.
  int sums = 0, counts = 0;
  for (const SelectItem& s : v.query.select) {
    if (s.kind != SelectItem::Kind::kAggregate) continue;
    sums += s.agg == AggFn::kSum;
    counts += s.agg == AggFn::kCount;
  }
  EXPECT_EQ(sums, 1);
  EXPECT_EQ(counts, 1);
}

TEST(SummarySkeletonTest, KeepsJoinConditions) {
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .From("S", {"C", "D"})
                .Select("A")
                .SelectAgg(AggFn::kMax, "D", "m")
                .WhereCols("B", CmpOp::kEq, "C")
                .GroupBy("A")
                .BuildOrDie();
  ASSERT_OK_AND_ASSIGN(ViewDef v, ViewAdvisor::SummarySkeleton(q, "SK"));
  ASSERT_EQ(v.query.where.size(), 1u);
  EXPECT_EQ(v.query.where[0].op, CmpOp::kEq);
}

TEST(SummarySkeletonTest, AvgDecomposesToSumAndCount) {
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kAvg, "B", "avg_b")
                .GroupBy("A")
                .BuildOrDie();
  ASSERT_OK_AND_ASSIGN(ViewDef v, ViewAdvisor::SummarySkeleton(q, "SK"));
  bool has_avg = false;
  for (const SelectItem& s : v.query.select) {
    has_avg |= s.kind == SelectItem::Kind::kAggregate && s.agg == AggFn::kAvg;
  }
  EXPECT_FALSE(has_avg);  // stored as SUM + COUNT instead
}

TEST(SummarySkeletonTest, ConjunctiveQueryRefused) {
  Query q = QueryBuilder().From("R", {"A", "B"}).Select("A").BuildOrDie();
  EXPECT_EQ(ViewAdvisor::SummarySkeleton(q, "SK").status().code(),
            StatusCode::kUnusable);
}

TEST(AdvisorTest, RecommendsSummaryForTelephonyWorkload) {
  TelephonyParams params;
  params.num_calls = 20000;
  TelephonyWorkload w = MakeTelephonyWorkload(params);

  // A workload of the paper's query for three different years: one shared
  // skeleton should serve them all.
  std::vector<Query> workload;
  for (int year : {1994, 1995, 1996}) {
    Query q = w.query;
    for (Predicate& p : q.where) {
      if (p.rhs.is_constant()) p.rhs = Operand::Constant(Value::Int64(year));
    }
    workload.push_back(std::move(q));
  }

  ViewAdvisor advisor(&w.db);
  ASSERT_OK_AND_ASSIGN(AdvisorReport report, advisor.Recommend(workload));
  ASSERT_EQ(report.selected.size(), 1u);  // deduplicated across years
  EXPECT_EQ(report.selected[0].helps.size(), 3u);
  EXPECT_LT(report.selected[0].materialized_rows, 2000u);
  EXPECT_LT(report.workload_cost_after, report.workload_cost_before / 10);

  // The recommended view really answers the workload correctly.
  ViewRegistry registry;
  ASSERT_OK(registry.Register(report.selected[0].def));
  Rewriter rewriter(&registry);
  for (const Query& q : workload) {
    ASSERT_OK_AND_ASSIGN(Query rewritten,
                         rewriter.RewriteUsingView(q, report.selected[0].def.name));
    ExpectQueriesApproxEquivalentOn(q, rewritten, w.db, &registry);
  }
}

TEST(AdvisorTest, BudgetForcesRejection) {
  TelephonyParams params;
  params.num_calls = 5000;
  TelephonyWorkload w = MakeTelephonyWorkload(params);
  std::vector<Query> workload = {w.query};

  AdvisorOptions options;
  options.space_budget_rows = 1;  // nothing fits
  ViewAdvisor advisor(&w.db, options);
  ASSERT_OK_AND_ASSIGN(AdvisorReport report, advisor.Recommend(workload));
  EXPECT_TRUE(report.selected.empty());
  EXPECT_FALSE(report.rejected.empty());
  EXPECT_DOUBLE_EQ(report.workload_cost_after, report.workload_cost_before);
}

TEST(AdvisorTest, OversizedCandidateFilteredOut) {
  // A query grouping by a unique-ish column yields a summary nearly as big
  // as the base table; the footprint filter drops it.
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  Database db;
  Table r({"A", "B"});
  for (int i = 0; i < 1000; ++i) {
    r.AddRowOrDie({Value::Int64(i), Value::Int64(i % 7)});
  }
  db.Put("R", std::move(r));
  Query q = QueryBuilder()
                .From("R", {"A1", "B1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")  // one group per row
                .BuildOrDie();
  ViewAdvisor advisor(&db);
  ASSERT_OK_AND_ASSIGN(AdvisorReport report, advisor.Recommend({q}));
  EXPECT_TRUE(report.selected.empty());
}

TEST(AdvisorTest, EmptyWorkload) {
  Database db;
  ViewAdvisor advisor(&db);
  ASSERT_OK_AND_ASSIGN(AdvisorReport report, advisor.Recommend({}));
  EXPECT_TRUE(report.selected.empty());
  EXPECT_DOUBLE_EQ(report.workload_cost_before, 0);
}

}  // namespace
}  // namespace aqv
