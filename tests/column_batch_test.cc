// Batch-layer property and edge-case tests (PR 8). The columnar image must
// round-trip rows exactly at every null-bitmap word and batch boundary, the
// string dictionary must survive growth well past its initial bucket count,
// and the compiled vectorized operators must agree with their row-engine
// counterparts on inputs engineered to straddle batch boundaries (group
// splits, extremum ties). The last tests are the mid-operator governance
// regression: a deadline or row budget must cancel INSIDE a 1M-row
// vectorized scan, at batch granularity, not after the operator finishes.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/exec_context.h"
#include "exec/column_batch.h"
#include "exec/evaluator.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "exec/table.h"
#include "exec/vectorized.h"
#include "ir/query.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

Table ToTable(const std::vector<Row>& rows, int arity) {
  std::vector<std::string> cols;
  for (int i = 0; i < arity; ++i) cols.push_back("c" + std::to_string(i));
  Table t(std::move(cols));
  for (const Row& r : rows) t.AddRowOrDie(r);
  return t;
}

/// Exact multiset comparison of two operator outputs, through the same
/// total order MultisetEqual uses (it distinguishes INT64 from DOUBLE on
/// numeric ties, so a vectorized aggregate that changes a value's type
/// fails here even when the numbers agree).
void ExpectSameRows(const std::vector<Row>& got, const std::vector<Row>& want,
                    int arity) {
  Table g = ToTable(got, arity);
  Table w = ToTable(want, arity);
  EXPECT_TRUE(MultisetEqual(g, w)) << DescribeMultisetDifference(g, w)
                                   << "\nvectorized:\n" << g.ToString()
                                   << "row engine:\n" << w.ToString();
}

// Sizes that exercise every boundary of the 64-bit null words and of the
// 1024-row processing batch: exact multiples and their neighbours.
const size_t kBoundarySizes[] = {0,    1,    63,   64,   65,   1023,
                                 1024, 1025, 2047, 2048, 2049};

// ---------------------------------------------------------------------------
// Round-trip at bitmap/batch boundaries.

TEST(ColumnBatchTest, RoundTripsRowsAtEveryBoundarySize) {
  for (size_t n : kBoundarySizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<Row> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Row r;
      r.push_back(i % 7 == 0 ? Value::Null()
                             : Value::Int64(static_cast<int64_t>(i)));
      r.push_back(i % 11 == 3 ? Value::Null() : Value::Double(0.5 * i));
      r.push_back(i % 5 == 2 ? Value::Null()
                             : Value::String("s" + std::to_string(i % 97)));
      rows.push_back(std::move(r));
    }
    ColumnarTable ct = ColumnarTable::FromRows(rows, 3);
    ASSERT_EQ(ct.num_rows(), n);
    ASSERT_EQ(ct.num_columns(), 3);
    for (size_t i = 0; i < n; ++i) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(ct.col(c).IsNull(i), rows[i][c].is_null())
            << "row " << i << " col " << c;
        EXPECT_EQ(ct.ValueAt(c, i), rows[i][c]) << "row " << i << " col " << c;
      }
      Row rebuilt;
      ct.AppendRowTo(i, &rebuilt);
      EXPECT_EQ(CompareRows(rebuilt, rows[i]), 0) << "row " << i;
    }
  }
}

// NULLs planted exactly at the word/batch boundary rows: the filter must
// treat them as failing the predicate (SQL comparison semantics), with no
// off-by-one in the bitmap probe at row 1023 vs 1024 vs 1025.
TEST(ColumnBatchTest, FilterMatchesRowEngineWithNullsAtBoundaries) {
  ColumnIndexMap layout{{"A", 0}, {"B", 1}};
  std::vector<Predicate> preds{
      {Operand::Column("A"), CmpOp::kGe, Operand::Constant(Value::Int64(0))}};
  for (size_t n : kBoundarySizes) {
    if (n == 0) continue;
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<Row> rows;
    for (size_t i = 0; i < n; ++i) {
      // NULL at every boundary row and its neighbours.
      bool null_here = false;
      for (size_t b : {size_t{63}, size_t{64}, size_t{1023}, size_t{1024},
                       size_t{2047}, size_t{2048}}) {
        if (i + 1 == b || i == b || i == b + 1) null_here = true;
      }
      rows.push_back(Row{null_here ? Value::Null()
                                   : Value::Int64(static_cast<int64_t>(i)),
                         Value::Int64(static_cast<int64_t>(i))});
    }
    ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
    CompiledFilter filter;
    ASSERT_TRUE(CompiledFilter::Compile(preds, layout, ct, &filter));
    std::vector<Row> got = GatherRows(ct, filter.Run(ct, nullptr));
    std::vector<Row> want = FilterRows(rows, preds, layout);
    ExpectSameRows(got, want, 2);
  }
}

// ---------------------------------------------------------------------------
// String dictionary growth.

TEST(ColumnBatchTest, DictionarySurvivesGrowthPastRehash) {
  // ~10k distinct strings force the code-assignment hash map through many
  // rehashes; repeats must keep their first-assigned code.
  constexpr int kDistinct = 10000;
  std::vector<Row> rows;
  for (int i = 0; i < 3 * kDistinct; ++i) {
    rows.push_back(Row{Value::String("k" + std::to_string(i % kDistinct)),
                       Value::Int64(i)});
  }
  ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
  ASSERT_EQ(ct.col(0).type, ColumnType::kString);
  EXPECT_EQ(ct.col(0).dict.size(), static_cast<size_t>(kDistinct));
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_EQ(ct.ValueAt(0, i), rows[i][0]) << "row " << i;
  }
  // Equal strings share one code (first-occurrence assignment).
  EXPECT_EQ(ct.col(0).codes[0], ct.col(0).codes[kDistinct]);

  // A constant comparison over the large dictionary reduces to a per-code
  // mask; it must agree with the row engine.
  ColumnIndexMap layout{{"S", 0}, {"N", 1}};
  std::vector<Predicate> preds{{Operand::Column("S"), CmpOp::kEq,
                                Operand::Constant(Value::String("k5000"))}};
  CompiledFilter filter;
  ASSERT_TRUE(CompiledFilter::Compile(preds, layout, ct, &filter));
  std::vector<Row> got = GatherRows(ct, filter.Run(ct, nullptr));
  std::vector<Row> want = FilterRows(rows, preds, layout);
  ASSERT_EQ(want.size(), 3u);
  ExpectSameRows(got, want, 2);
}

// ---------------------------------------------------------------------------
// Aggregation across batch boundaries.

TEST(ColumnBatchTest, GroupsSplitAcrossBatchBoundariesMatchRowEngine) {
  // Interleaved group keys: every group's rows straddle several batch
  // boundaries. NULL-heavy aggregate inputs exercise the skip paths.
  std::vector<Row> rows;
  for (int i = 0; i < 5000; ++i) {
    rows.push_back(Row{Value::Int64(i % 7),
                       i % 13 == 0 ? Value::Null() : Value::Int64(i),
                       i % 3 == 0 ? Value::Null() : Value::Double(0.25 * i)});
  }
  std::vector<int> group_cols{0};
  std::vector<AggSpec> aggs{{AggFn::kSum, 1},   {AggFn::kCount, 1},
                            {AggFn::kMin, 1},   {AggFn::kMax, 1},
                            {AggFn::kAvg, 2},   {AggFn::kSum, 2},
                            {AggFn::kMin, 2}};
  ColumnarTable ct = ColumnarTable::FromRows(rows, 3);
  VectorizedAggregation agg;
  ASSERT_TRUE(VectorizedAggregation::Compile(ct, group_cols, aggs, &agg));
  std::vector<Row> got = agg.Run(ct, nullptr, nullptr);
  std::vector<Row> want = GroupAggregate(rows, group_cols, aggs);
  ASSERT_EQ(want.size(), 7u);
  // MultisetEqual's total order is exact on doubles, so this asserts
  // bit-identical SUM/AVG, not approximate agreement.
  ExpectSameRows(got, want, 1 + static_cast<int>(aggs.size()));

  // The same aggregation under a selection (every third row) must match the
  // row engine over the same filtered input.
  ColumnIndexMap layout{{"G", 0}, {"X", 1}, {"Y", 2}};
  std::vector<Predicate> preds{
      {Operand::Column("X"), CmpOp::kGt, Operand::Constant(Value::Int64(100))}};
  CompiledFilter filter;
  ASSERT_TRUE(CompiledFilter::Compile(preds, layout, ct, &filter));
  SelVector sel = filter.Run(ct, nullptr);
  std::vector<Row> got_sel = agg.Run(ct, &sel, nullptr);
  std::vector<Row> want_sel =
      GroupAggregate(FilterRows(rows, preds, layout), group_cols, aggs);
  ExpectSameRows(got_sel, want_sel, 1 + static_cast<int>(aggs.size()));
}

TEST(ColumnBatchTest, ExtremumTiesStraddlingBatchesKeepFirstEncountered) {
  // (a) DOUBLE zero signs: -0.0 and +0.0 tie under SQL comparison, so the
  // running extremum keeps whichever it saw first. Plant +0.0 in batch 0 and
  // -0.0 in batch 2: both engines must report the row-order winner (+0.0).
  {
    std::vector<Row> rows;
    for (int i = 0; i < 3000; ++i) {
      double v = (i == 10) ? 0.0 : (i == 2500) ? -0.0 : 1.0 + i;
      rows.push_back(Row{Value::Int64(0), Value::Double(v)});
    }
    std::vector<AggSpec> aggs{{AggFn::kMin, 1}};
    ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
    VectorizedAggregation agg;
    ASSERT_TRUE(VectorizedAggregation::Compile(ct, {0}, aggs, &agg));
    std::vector<Row> got = agg.Run(ct, nullptr, nullptr);
    std::vector<Row> want = GroupAggregate(rows, {0}, aggs);
    ASSERT_EQ(got.size(), 1u);
    ASSERT_EQ(want.size(), 1u);
    ASSERT_EQ(got[0][1].type(), ValueType::kDouble);
    EXPECT_EQ(std::signbit(got[0][1].dbl()), std::signbit(want[0][1].dbl()));
    EXPECT_FALSE(std::signbit(got[0][1].dbl())) << "+0.0 came first";
  }
  // (b) INT64 values that collide as doubles: the row engine compares
  // extrema through double conversion, so 2^62 and 2^62+1 tie and the first
  // one wins. The vectorized engine must reproduce that, not "fix" it.
  {
    constexpr int64_t kBig = int64_t{1} << 62;
    std::vector<Row> rows;
    for (int i = 0; i < 3000; ++i) {
      int64_t v = (i == 100) ? kBig + 1 : (i == 2500) ? kBig : kBig + 2;
      rows.push_back(Row{Value::Int64(0), Value::Int64(v)});
    }
    std::vector<AggSpec> aggs{{AggFn::kMin, 1}, {AggFn::kMax, 1}};
    ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
    VectorizedAggregation agg;
    ASSERT_TRUE(VectorizedAggregation::Compile(ct, {0}, aggs, &agg));
    std::vector<Row> got = agg.Run(ct, nullptr, nullptr);
    std::vector<Row> want = GroupAggregate(rows, {0}, aggs);
    ExpectSameRows(got, want, 3);
  }
}

// ---------------------------------------------------------------------------
// Degenerate shapes.

TEST(ColumnBatchTest, EmptySingleRowAndAllNullInputs) {
  std::vector<AggSpec> aggs{
      {AggFn::kSum, 1}, {AggFn::kCount, 1}, {AggFn::kAvg, 1}, {AggFn::kMin, 1}};

  // Empty input, global group: one output row (COUNT 0, the rest NULL).
  {
    std::vector<Row> rows;
    ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
    VectorizedAggregation agg;
    ASSERT_TRUE(VectorizedAggregation::Compile(ct, {}, aggs, &agg));
    std::vector<Row> got = agg.Run(ct, nullptr, nullptr);
    std::vector<Row> want = GroupAggregate(rows, {}, aggs);
    ASSERT_EQ(want.size(), 1u);
    ExpectSameRows(got, want, static_cast<int>(aggs.size()));
  }
  // Empty input, grouped: no output rows.
  {
    std::vector<Row> rows;
    ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
    VectorizedAggregation agg;
    ASSERT_TRUE(VectorizedAggregation::Compile(ct, {0}, aggs, &agg));
    EXPECT_TRUE(agg.Run(ct, nullptr, nullptr).empty());
  }
  // Single-row table.
  {
    std::vector<Row> rows{Row{Value::Int64(1), Value::Double(2.5)}};
    ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
    VectorizedAggregation agg;
    ASSERT_TRUE(VectorizedAggregation::Compile(ct, {0}, aggs, &agg));
    ExpectSameRows(agg.Run(ct, nullptr, nullptr),
                   GroupAggregate(rows, {0}, aggs),
                   1 + static_cast<int>(aggs.size()));
  }
  // All-NULL aggregate input and an all-NULL grouping column (one NULL-keyed
  // group). An all-null column stays typed, so the compiled path engages.
  {
    std::vector<Row> rows;
    for (int i = 0; i < 2000; ++i) {
      rows.push_back(Row{Value::Null(), Value::Null()});
    }
    ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
    ASSERT_TRUE(ct.ColumnVectorizable(0));
    VectorizedAggregation agg;
    ASSERT_TRUE(VectorizedAggregation::Compile(ct, {0}, aggs, &agg));
    std::vector<Row> got = agg.Run(ct, nullptr, nullptr);
    std::vector<Row> want = GroupAggregate(rows, {0}, aggs);
    ASSERT_EQ(want.size(), 1u);
    ExpectSameRows(got, want, 1 + static_cast<int>(aggs.size()));
  }
}

TEST(ColumnBatchTest, MixedTypeColumnDegradesAndFallsBack) {
  // INT64 then STRING in one column: the column degrades to kMixed, keeps
  // exact values, and every compiled operator refuses it.
  std::vector<Row> rows{Row{Value::Int64(1), Value::Int64(10)},
                        Row{Value::String("x"), Value::Int64(20)},
                        Row{Value::Double(1.5), Value::Int64(30)}};
  ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
  ASSERT_EQ(ct.col(0).type, ColumnType::kMixed);
  EXPECT_FALSE(ct.ColumnVectorizable(0));
  EXPECT_TRUE(ct.ColumnVectorizable(1));
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(ct.ValueAt(0, i), rows[i][0]);
  }

  ColumnIndexMap layout{{"A", 0}, {"B", 1}};
  CompiledFilter filter;
  EXPECT_FALSE(CompiledFilter::Compile(
      {{Operand::Column("A"), CmpOp::kEq, Operand::Constant(Value::Int64(1))}},
      layout, ct, &filter));
  VectorizedAggregation agg;
  EXPECT_FALSE(
      VectorizedAggregation::Compile(ct, {0}, {{AggFn::kCount, 1}}, &agg));
  EXPECT_FALSE(
      VectorizedAggregation::Compile(ct, {1}, {{AggFn::kMin, 0}}, &agg));

  // The drop-in row-path wrapper reports the fallback and still answers
  // exactly like GroupAggregate.
  std::vector<Row> big;
  for (int i = 0; i < 3000; ++i) {
    big.push_back(rows[static_cast<size_t>(i) % rows.size()]);
  }
  bool used_vectorized = true;
  std::vector<Row> got = VectorizedGroupAggregateRows(
      big, {0}, {{AggFn::kCount, 1}}, nullptr, &used_vectorized);
  EXPECT_FALSE(used_vectorized);
  ExpectSameRows(got, GroupAggregate(big, {0}, {{AggFn::kCount, 1}}), 2);
}

TEST(ColumnBatchTest, MoreThanMaxGroupColsFallsBack) {
  std::vector<Row> rows;
  for (int i = 0; i < 3000; ++i) {
    Row r;
    for (int c = 0; c < 6; ++c) r.push_back(Value::Int64((i + c) % 3));
    rows.push_back(std::move(r));
  }
  ColumnarTable ct = ColumnarTable::FromRows(rows, 6);
  std::vector<int> five{0, 1, 2, 3, 4};
  VectorizedAggregation agg;
  // kMaxGroupCols grouping columns compile; one more refuses.
  std::vector<int> four(five.begin(),
                        five.begin() + VectorizedAggregation::kMaxGroupCols);
  ASSERT_TRUE(
      VectorizedAggregation::Compile(ct, four, {{AggFn::kCount, 5}}, &agg));
  ExpectSameRows(agg.Run(ct, nullptr, nullptr),
                 GroupAggregate(rows, four, {{AggFn::kCount, 5}}),
                 static_cast<int>(four.size()) + 1);
  EXPECT_FALSE(
      VectorizedAggregation::Compile(ct, five, {{AggFn::kCount, 5}}, &agg));

  bool used_vectorized = true;
  std::vector<Row> got = VectorizedGroupAggregateRows(
      rows, five, {{AggFn::kCount, 5}}, nullptr, &used_vectorized);
  EXPECT_FALSE(used_vectorized);
  ExpectSameRows(got, GroupAggregate(rows, five, {{AggFn::kCount, 5}}), 6);
}

// ---------------------------------------------------------------------------
// Mid-operator governance (the PR 8 gap fix): limits fire at batch
// granularity INSIDE a vectorized operator, never after it.

TEST(ColumnBatchTest, ExpiredDeadlineCancelsScanAfterOneBatch) {
  constexpr size_t kRows = 1000000;
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(Row{Value::Int64(static_cast<int64_t>(i % 100)),
                       Value::Int64(static_cast<int64_t>(i))});
  }
  ColumnarTable ct = ColumnarTable::FromRows(rows, 2);
  ColumnIndexMap layout{{"A", 0}, {"B", 1}};
  std::vector<Predicate> preds{
      {Operand::Column("B"), CmpOp::kGe, Operand::Constant(Value::Int64(0))}};
  CompiledFilter filter;
  ASSERT_TRUE(CompiledFilter::Compile(preds, layout, ct, &filter));

  // The scan charges per batch and re-checks the deadline on the same
  // stride, so an already-expired deadline stops it after exactly one batch
  // of the million rows.
  {
    ExecContext ctx;
    ctx.set_deadline_after_micros(0);
    SelVector sel = filter.Run(ct, &ctx);
    EXPECT_FALSE(ctx.ok());
    EXPECT_EQ(ctx.status().code(), StatusCode::kDeadlineExceeded)
        << ctx.status().ToString();
    EXPECT_EQ(ctx.rows_charged(), kBatchRows);
    EXPECT_LE(sel.size(), kBatchRows);
  }
  // Same for the aggregation loop.
  {
    ExecContext ctx;
    ctx.set_deadline_after_micros(0);
    VectorizedAggregation agg;
    ASSERT_TRUE(
        VectorizedAggregation::Compile(ct, {0}, {{AggFn::kSum, 1}}, &agg));
    agg.Run(ct, nullptr, &ctx);
    EXPECT_EQ(ctx.status().code(), StatusCode::kDeadlineExceeded)
        << ctx.status().ToString();
    EXPECT_EQ(ctx.rows_charged(), kBatchRows);
  }
}

TEST(ColumnBatchTest, GovernanceCancelsInsideMillionRowScanEndToEnd) {
  constexpr size_t kRows = 1000000;
  Table t({"A", "B"});
  {
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      rows.push_back(Row{Value::Int64(static_cast<int64_t>(i % 100)),
                         Value::Int64(static_cast<int64_t>(i))});
    }
    ASSERT_OK(t.AddRows(std::move(rows)));
  }
  Database db;
  db.Put("T", std::move(t));

  Query q;
  q.from = {TableRef{"T", {"A", "B"}}};
  q.select = {SelectItem::MakeColumn("A", "A"),
              SelectItem::MakeAggregate(AggFn::kSum, "B", "SB")};
  q.group_by = {"A"};

  // Sanity: unlimited, the vectorized path engages and matches the row
  // engine.
  {
    Evaluator vec_eval(&db);
    ASSERT_OK_AND_ASSIGN(Table vec_out, vec_eval.Execute(q));
    EXPECT_GE(vec_eval.stats().vectorized_ops, 2u);
    EvalOptions row_options;
    row_options.vectorized = false;
    Evaluator row_eval(&db, nullptr, row_options);
    ASSERT_OK_AND_ASSIGN(Table row_out, row_eval.Execute(q));
    EXPECT_EQ(row_eval.stats().vectorized_ops, 0u);
    EXPECT_TRUE(MultisetEqual(vec_out, row_out))
        << DescribeMultisetDifference(vec_out, row_out);
  }

  // Row budget far below the table size: the vectorized scan must stop a
  // batch past the budget — not scan the full million rows and fail after.
  {
    ExecContext ctx;
    ctx.set_row_budget(10000);
    Evaluator eval(&db);
    eval.set_context(&ctx);
    Result<Table> r = eval.Execute(q);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << r.status().ToString();
    EXPECT_LE(ctx.rows_charged(), 10000 + kBatchRows);
  }

  // Expired deadline: DeadlineExceeded with (far) less than one full scan
  // charged.
  {
    ExecContext ctx;
    ctx.set_deadline_after_micros(0);
    Evaluator eval(&db);
    eval.set_context(&ctx);
    Result<Table> r = eval.Execute(q);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status().ToString();
    EXPECT_LE(ctx.rows_charged(), 2 * kBatchRows);
  }
}

}  // namespace
}  // namespace aqv
