#include <algorithm>

#include <gtest/gtest.h>

#include "exec/expression.h"
#include "exec/operators.h"
#include "exec/planner.h"
#include "exec/table.h"
#include "ir/builder.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

Row R(std::initializer_list<int64_t> vals) {
  Row row;
  for (int64_t v : vals) row.push_back(Value::Int64(v));
  return row;
}

TEST(TableTest, AddRowChecksArity) {
  Table t({"A", "B"});
  EXPECT_OK(t.AddRow(R({1, 2})));
  EXPECT_FALSE(t.AddRow(R({1})).ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.ColumnIndex("B"), 1);
  EXPECT_EQ(t.ColumnIndex("Z"), -1);
}

TEST(TableTest, MultisetEqualHonorsMultiplicity) {
  Table a({"A"}), b({"A"}), c({"A"});
  a.AddRowOrDie(R({1}));
  a.AddRowOrDie(R({1}));
  a.AddRowOrDie(R({2}));
  b.AddRowOrDie(R({2}));
  b.AddRowOrDie(R({1}));
  b.AddRowOrDie(R({1}));
  c.AddRowOrDie(R({1}));
  c.AddRowOrDie(R({2}));
  c.AddRowOrDie(R({2}));
  EXPECT_TRUE(MultisetEqual(a, b));
  EXPECT_FALSE(MultisetEqual(a, c));
  EXPECT_EQ(DescribeMultisetDifference(a, b), "");
  EXPECT_NE(DescribeMultisetDifference(a, c), "");
}

TEST(TableTest, MultisetEqualChecksArity) {
  Table a({"A"}), b({"A", "B"});
  EXPECT_FALSE(MultisetEqual(a, b));
}

TEST(DatabaseTest, PutGet) {
  Database db;
  db.Put("T", Table({"A"}));
  EXPECT_TRUE(db.Has("T"));
  ASSERT_OK_AND_ASSIGN(const Table* t, db.Get("T"));
  EXPECT_EQ(t->num_columns(), 1);
  EXPECT_EQ(db.Get("U").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, PutAllPublishesEveryEntryAtOneEpoch) {
  Database db;
  db.Put("T", Table({"A"}));
  db.Put("V", Table({"S"}));
  const uint64_t before = db.epoch();

  Table t({"A"});
  t.AddRowOrDie(R({1}));
  Table v({"S"});
  v.AddRowOrDie(R({1}));
  db.PutAll({{"T", std::make_shared<const Table>(std::move(t))},
             {"V", std::make_shared<const Table>(std::move(v))}});

  // One epoch bump for the whole batch, shared by every entry: a snapshot
  // can never see T advanced without V.
  EXPECT_EQ(db.epoch(), before + 1);
  EXPECT_EQ(db.VersionOf("T"), before + 1);
  EXPECT_EQ(db.VersionOf("V"), before + 1);
  ASSERT_OK_AND_ASSIGN(const Table* stored, db.Get("T"));
  EXPECT_EQ(stored->num_rows(), 1u);

  // Empty batch: no epoch bump.
  db.PutAll({});
  EXPECT_EQ(db.epoch(), before + 1);
}

TEST(ExpressionTest, EvalCmpSemantics) {
  EXPECT_TRUE(EvalCmp(Value::Int64(1), CmpOp::kLt, Value::Double(1.5)));
  EXPECT_TRUE(EvalCmp(Value::Int64(2), CmpOp::kEq, Value::Double(2.0)));
  EXPECT_TRUE(EvalCmp(Value::String("a"), CmpOp::kLt, Value::String("b")));
  // NULL never compares true.
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    EXPECT_FALSE(EvalCmp(Value::Null(), op, Value::Int64(1)));
  }
  // Cross-family: only <> is true.
  EXPECT_TRUE(EvalCmp(Value::Int64(1), CmpOp::kNe, Value::String("1")));
  EXPECT_FALSE(EvalCmp(Value::Int64(1), CmpOp::kEq, Value::String("1")));
  EXPECT_FALSE(EvalCmp(Value::Int64(1), CmpOp::kLt, Value::String("1")));
}

TEST(ExpressionTest, EvalScalarPredicate) {
  ColumnIndexMap layout = {{"A", 0}, {"B", 1}};
  Row row = R({3, 5});
  EXPECT_TRUE(EvalScalarPredicate(
      Predicate{Operand::Column("A"), CmpOp::kLt, Operand::Column("B")}, row,
      layout));
  EXPECT_FALSE(EvalScalarPredicate(
      Predicate{Operand::Column("A"), CmpOp::kEq,
                Operand::Constant(Value::Int64(4))},
      row, layout));
  // Unresolvable column acts as NULL.
  EXPECT_FALSE(EvalScalarPredicate(
      Predicate{Operand::Column("Z"), CmpOp::kEq, Operand::Column("A")}, row,
      layout));
}

TEST(AggregatorTest, AllFunctions) {
  struct Case {
    AggFn fn;
    Value expected;
  };
  std::vector<Value> inputs = {Value::Int64(3), Value::Null(), Value::Int64(1),
                               Value::Int64(4)};
  std::vector<Case> cases = {{AggFn::kMin, Value::Int64(1)},
                             {AggFn::kMax, Value::Int64(4)},
                             {AggFn::kSum, Value::Int64(8)},
                             {AggFn::kCount, Value::Int64(3)},  // NULL skipped
                             {AggFn::kAvg, Value::Double(8.0 / 3)}};
  for (const Case& c : cases) {
    Aggregator agg(c.fn);
    for (const Value& v : inputs) agg.Add(v);
    EXPECT_EQ(agg.Finish(), c.expected) << AggFnToString(c.fn);
  }
}

TEST(AggregatorTest, EmptyInputs) {
  EXPECT_TRUE(Aggregator(AggFn::kMin).Finish().is_null());
  EXPECT_TRUE(Aggregator(AggFn::kSum).Finish().is_null());
  EXPECT_TRUE(Aggregator(AggFn::kAvg).Finish().is_null());
  EXPECT_EQ(Aggregator(AggFn::kCount).Finish(), Value::Int64(0));
}

TEST(AggregatorTest, MixedNumericSumBecomesDouble) {
  Aggregator agg(AggFn::kSum);
  agg.Add(Value::Int64(1));
  agg.Add(Value::Double(2.5));
  EXPECT_EQ(agg.Finish(), Value::Double(3.5));
}

TEST(OperatorsTest, NumericProduct) {
  EXPECT_EQ(NumericProduct(Value::Int64(3), Value::Int64(4)), Value::Int64(12));
  EXPECT_EQ(NumericProduct(Value::Int64(2), Value::Double(0.5)),
            Value::Double(1.0));
  EXPECT_TRUE(NumericProduct(Value::Null(), Value::Int64(1)).is_null());
  EXPECT_TRUE(NumericProduct(Value::String("x"), Value::Int64(1)).is_null());
}

TEST(OperatorsTest, FilterRows) {
  std::vector<Row> rows = {R({1, 2}), R({2, 2}), R({3, 1})};
  ColumnIndexMap layout = {{"A", 0}, {"B", 1}};
  std::vector<Row> out = FilterRows(
      rows, {Predicate{Operand::Column("A"), CmpOp::kLe, Operand::Column("B")}},
      layout);
  EXPECT_EQ(out.size(), 2u);
}

TEST(OperatorsTest, HashJoinMatchesNestedLoop) {
  std::vector<Row> left = {R({1, 10}), R({2, 20}), R({2, 21}), R({3, 30})};
  std::vector<Row> right = {R({2, 7}), R({2, 8}), R({4, 9})};
  std::vector<Row> joined = HashJoin(left, right, {{0, 0}});
  // 2 left rows with key 2 x 2 right rows = 4 results.
  EXPECT_EQ(joined.size(), 4u);
  for (const Row& row : joined) {
    EXPECT_EQ(row.size(), 4u);
    EXPECT_TRUE(row[0].SqlEquals(row[2]));
  }
}

TEST(OperatorsTest, HashJoinSkipsNullKeys) {
  std::vector<Row> left = {{Value::Null(), Value::Int64(1)}};
  std::vector<Row> right = {{Value::Null(), Value::Int64(2)}};
  EXPECT_TRUE(HashJoin(left, right, {{0, 0}}).empty());
}

TEST(OperatorsTest, HashJoinCrossTypeNumericKeys) {
  std::vector<Row> left = {{Value::Int64(2)}};
  std::vector<Row> right = {{Value::Double(2.0)}};
  EXPECT_EQ(HashJoin(left, right, {{0, 0}}).size(), 1u);
}

TEST(OperatorsTest, CartesianProduct) {
  std::vector<Row> left = {R({1}), R({2})};
  std::vector<Row> right = {R({3}), R({4}), R({5})};
  std::vector<Row> out = CartesianProduct(left, right);
  EXPECT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], R({1, 3}));
  EXPECT_EQ(out[5], R({2, 5}));
}

TEST(OperatorsTest, GroupAggregate) {
  std::vector<Row> rows = {R({1, 10}), R({1, 20}), R({2, 5})};
  std::vector<Row> out =
      GroupAggregate(rows, {0}, {AggSpec{AggFn::kSum, 1, -1},
                                 AggSpec{AggFn::kCount, 1, -1}});
  ASSERT_EQ(out.size(), 2u);
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  EXPECT_EQ(out[0], R({1, 30, 2}));
  EXPECT_EQ(out[1], R({2, 5, 1}));
}

TEST(OperatorsTest, GroupAggregateScaled) {
  // SUM(B * N): (10*2) + (20*3) = 80.
  std::vector<Row> rows = {R({1, 10, 2}), R({1, 20, 3})};
  std::vector<Row> out =
      GroupAggregate(rows, {0}, {AggSpec{AggFn::kSum, 1, 2}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], R({1, 80}));
}

TEST(OperatorsTest, GlobalGroupOnEmptyInput) {
  std::vector<Row> out = GroupAggregate({}, {}, {AggSpec{AggFn::kCount, 0, -1},
                                                 AggSpec{AggFn::kSum, 0, -1}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], Value::Int64(0));
  EXPECT_TRUE(out[0][1].is_null());
}

TEST(OperatorsTest, GroupedEmptyInputYieldsNoGroups) {
  EXPECT_TRUE(GroupAggregate({}, {0}, {AggSpec{AggFn::kCount, 0, -1}}).empty());
}

TEST(OperatorsTest, DistinctAndProject) {
  std::vector<Row> rows = {R({1, 2}), R({1, 2}), R({1, 3})};
  EXPECT_EQ(DistinctRows(rows).size(), 2u);
  std::vector<Row> projected = ProjectRows(rows, {1});
  EXPECT_EQ(projected[2], R({3}));
}

TEST(PlannerTest, ClassifyPredicates) {
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .From("S", {"C", "D"})
                .Select("A")
                .WhereCols("A", CmpOp::kEq, "C")   // equi-join
                .WhereConst("B", CmpOp::kLt, Value::Int64(5))  // single table
                .WhereCols("B", CmpOp::kLt, "D")   // multi-table non-equi
                .BuildOrDie();
  PredicateClassification cls = ClassifyPredicates(q);
  EXPECT_EQ(cls.equi_joins.size(), 1u);
  EXPECT_EQ(cls.single_table[0].size(), 1u);
  EXPECT_TRUE(cls.single_table[1].empty());
  EXPECT_EQ(cls.multi_table.size(), 1u);
}

TEST(PlannerTest, GreedyJoinOrderPrefersConnectedSmall) {
  // Sizes: T0=100, T1=5, T2=50; edge T0-T2 only.
  std::vector<PredicateClassification::JoinEdge> edges = {
      {0, 2, "x", "y"}};
  std::vector<int> order = GreedyJoinOrder({100, 5, 50}, edges);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);  // smallest first
  // Then nothing is connected to T1; smallest (T2) next, then T0 via edge.
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 0);
}

}  // namespace
}  // namespace aqv
