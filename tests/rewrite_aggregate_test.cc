#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "workload/random_db.h"

namespace aqv {
namespace {

Catalog PaperCatalog() {
  Catalog c;
  EXPECT_TRUE(c.AddTable(TableDef("R1", {"A", "B", "C", "D"})).ok());
  EXPECT_TRUE(c.AddTable(TableDef("R2", {"E", "F"})).ok());
  return c;
}

void ExpectEquivalentOnRandomData(const Query& q, const Query& rewritten,
                                  const ViewRegistry& views, int rounds = 5,
                                  int rows = 30, int domain = 4) {
  Catalog catalog = PaperCatalog();
  for (int seed = 0; seed < rounds; ++seed) {
    Database db = MakeRandomDatabase(catalog, rows, domain, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

// ---------------------------------------------------------------------------
// Example 4.1 (coalescing subgroups): COUNT over coarser groups becomes a
// SUM of the view's finer-grained COUNTs.
// ---------------------------------------------------------------------------

Query Example41Query() {
  return QueryBuilder()
      .From("R1", {"A1", "B1", "C1", "D1"})
      .From("R2", {"E1", "F1"})
      .Select("A1")
      .Select("E1")
      .SelectAgg(AggFn::kCount, "B1", "n")
      .WhereCols("C1", CmpOp::kEq, "F1")
      .WhereCols("B1", CmpOp::kEq, "D1")
      .GroupBy("A1")
      .GroupBy("E1")
      .BuildOrDie();
}

ViewDef Example41View() {
  return ViewDef{"V1", QueryBuilder()
                           .From("R1", {"A2", "B2", "C2", "D2"})
                           .Select("A2")
                           .Select("C2")
                           .SelectAgg(AggFn::kCount, "D2", "cnt")
                           .WhereCols("B2", CmpOp::kEq, "D2")
                           .GroupBy("A2")
                           .GroupBy("C2")
                           .BuildOrDie()};
}

TEST(AggregateRewriteTest, Example41CoalescingSubgroups) {
  Query q = Example41Query();
  ViewRegistry views;
  ASSERT_OK(views.Register(Example41View()));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V1"));

  // Q': SELECT A1, E1, SUM(N1) FROM V1(A1, C1, N1), R2(E1, F1)
  //     WHERE C1 = F1 GROUPBY A1, E1.
  ASSERT_EQ(rewritten.from.size(), 2u);
  EXPECT_EQ(rewritten.from[0].table, "R2");
  EXPECT_EQ(rewritten.from[1].table, "V1");
  ASSERT_EQ(rewritten.select.size(), 3u);
  EXPECT_EQ(rewritten.select[2].agg, AggFn::kSum);
  ASSERT_EQ(rewritten.where.size(), 1u);
  EXPECT_EQ(rewritten.where[0].ToString(), "C1 = F1");
  EXPECT_EQ(rewritten.group_by, (std::vector<std::string>{"A1", "E1"}));
  // The SUM's argument is the view's COUNT output.
  EXPECT_EQ(rewritten.select[2].arg.column, rewritten.from[1].columns[2]);

  ExpectEquivalentOnRandomData(q, rewritten, views);
}

// ---------------------------------------------------------------------------
// Example 4.2 (recovery of lost multiplicities): V1 (no COUNT) is unusable;
// V2 (with COUNT) is usable via multiplicity weighting.
// ---------------------------------------------------------------------------

Query Example42Query() {
  return QueryBuilder()
      .From("R1", {"A1", "B1", "C1", "D1"})
      .From("R2", {"E1", "F1"})
      .Select("A1")
      .SelectAgg(AggFn::kSum, "E1", "s")
      .GroupBy("A1")
      .BuildOrDie();
}

TEST(AggregateRewriteTest, Example42ViewWithoutCountIsUnusable) {
  Query q = Example42Query();
  ViewDef v1{"V1", QueryBuilder()
                       .From("R1", {"A2", "B2", "C2", "D2"})
                       .Select("A2")
                       .Select("B2")
                       .SelectAgg(AggFn::kSum, "C2", "s")
                       .GroupBy("A2")
                       .GroupBy("B2")
                       .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v1));
  Rewriter rewriter(&views);
  Result<Query> r = rewriter.RewriteUsingView(q, "V1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnusable);
}

TEST(AggregateRewriteTest, Example42CountColumnRecoversMultiplicities) {
  Query q = Example42Query();
  ViewDef v2{"V2", QueryBuilder()
                       .From("R1", {"A3", "B3", "C3", "D3"})
                       .Select("A3")
                       .Select("B3")
                       .SelectAgg(AggFn::kSum, "C3", "s")
                       .SelectAgg(AggFn::kCount, "C3", "cnt")
                       .GroupBy("A3")
                       .GroupBy("B3")
                       .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v2));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V2"));

  // SUM(E1) is re-weighted by the view's COUNT column: SUM(E1 * N).
  ASSERT_EQ(rewritten.select.size(), 2u);
  EXPECT_EQ(rewritten.select[1].agg, AggFn::kSum);
  EXPECT_EQ(rewritten.select[1].arg.column, "E1");
  EXPECT_FALSE(rewritten.select[1].arg.multiplier.empty());

  ExpectEquivalentOnRandomData(q, rewritten, views);
}

// ---------------------------------------------------------------------------
// Example 4.3 = Example 4.1 checked via conditions; covered above.
// Example 4.4: a query condition on an aggregated view column blocks use.
// ---------------------------------------------------------------------------

TEST(AggregateRewriteTest, Example44ConstrainedAggColumnIsUnusable) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .From("R2", {"E1", "F1"})
                .Select("A1")
                .Select("E1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .WhereCols("B1", CmpOp::kEq, "F1")
                .GroupBy("A1")
                .GroupBy("E1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .From("R2", {"E2", "F2"})
                     .Select("A2")
                     .Select("E2")
                     .Select("F2")
                     .SelectAgg(AggFn::kSum, "B2", "s")
                     .GroupBy("A2")
                     .GroupBy("E2")
                     .GroupBy("F2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  Result<Query> r = rewriter.RewriteUsingView(q, "V");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnusable);
}

TEST(AggregateRewriteTest, Example44WithoutWhereIsUsable) {
  // The same pair minus the blocking WHERE clause is usable.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .From("R2", {"E1", "F1"})
                .Select("A1")
                .Select("E1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .GroupBy("E1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .From("R2", {"E2", "F2"})
                     .Select("A2")
                     .Select("E2")
                     .Select("F2")
                     .SelectAgg(AggFn::kSum, "B2", "s")
                     .GroupBy("A2")
                     .GroupBy("E2")
                     .GroupBy("F2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

// ---------------------------------------------------------------------------
// Example 4.5: an aggregation view cannot answer a conjunctive query.
// ---------------------------------------------------------------------------

TEST(AggregateRewriteTest, Example45ConjunctiveQueryRefused) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .Select("B1")
                .BuildOrDie();
  ViewDef v{"V1", QueryBuilder()
                      .From("R1", {"A2", "B2", "C2", "D2"})
                      .Select("A2")
                      .Select("B2")
                      .SelectAgg(AggFn::kCount, "C2", "cnt")
                      .GroupBy("A2")
                      .GroupBy("B2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  Result<Query> r = rewriter.RewriteUsingView(q, "V1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnusable);
}

// ---------------------------------------------------------------------------
// Further Section 4 behaviours.
// ---------------------------------------------------------------------------

TEST(AggregateRewriteTest, SumOfSumsCoalesces) {
  // Query sums a column the view already summed at finer granularity.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "D1", "s")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .SelectAgg(AggFn::kSum, "D2", "s")
                     .GroupBy("A2")
                     .GroupBy("B2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  EXPECT_EQ(rewritten.select[1].agg, AggFn::kSum);
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(AggregateRewriteTest, MinOfMinsAndMaxOfMaxes) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kMin, "C1", "lo")
                .SelectAgg(AggFn::kMax, "D1", "hi")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .SelectAgg(AggFn::kMin, "C2", "lo")
                     .SelectAgg(AggFn::kMax, "D2", "hi")
                     .GroupBy("A2")
                     .GroupBy("B2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(AggregateRewriteTest, MinOfWrongExtremumIsUnusable) {
  // The view kept MAX(C) but the query wants MIN(C), and C is aggregated
  // away — unusable.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kMin, "C1", "lo")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .SelectAgg(AggFn::kMax, "C2", "hi")
                     .GroupBy("A2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V").status().code(),
            StatusCode::kUnusable);
}

TEST(AggregateRewriteTest, MinOverGroupingColumnOfView) {
  // MIN over a column the view grouped by: the plain output suffices.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kMin, "B1", "lo")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .SelectAgg(AggFn::kCount, "C2", "cnt")
                     .GroupBy("A2")
                     .GroupBy("B2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(AggregateRewriteTest, SumOverGroupingColumnNeedsCount) {
  // SUM over a view grouping column: needs the COUNT column for weighting.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef with_count{"Vc", QueryBuilder()
                               .From("R1", {"A2", "B2", "C2", "D2"})
                               .Select("A2")
                               .Select("B2")
                               .SelectAgg(AggFn::kCount, "C2", "cnt")
                               .GroupBy("A2")
                               .GroupBy("B2")
                               .BuildOrDie()};
  ViewDef without_count{"Vn", QueryBuilder()
                                  .From("R1", {"A3", "B3", "C3", "D3"})
                                  .Select("A3")
                                  .Select("B3")
                                  .SelectAgg(AggFn::kMax, "C3", "hi")
                                  .GroupBy("A3")
                                  .GroupBy("B3")
                                  .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(with_count));
  ASSERT_OK(views.Register(without_count));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "Vc"));
  EXPECT_FALSE(rewritten.select[1].arg.multiplier.empty());
  ExpectEquivalentOnRandomData(q, rewritten, views);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "Vn").status().code(),
            StatusCode::kUnusable);
}

TEST(AggregateRewriteTest, CountBecomesSumOfCounts) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kCount, "D1", "n")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .SelectAgg(AggFn::kCount, "D2", "cnt")
                     .GroupBy("A2")
                     .GroupBy("B2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  EXPECT_EQ(rewritten.select[1].agg, AggFn::kSum);
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(AggregateRewriteTest, AvgRecoveredAsRatio) {
  // Section 4.4: AVG(D) through a view with SUM and COUNT becomes
  // SUM(s)/SUM(n).
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kAvg, "D1", "avg_d")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .SelectAgg(AggFn::kSum, "D2", "s")
                     .SelectAgg(AggFn::kCount, "D2", "cnt")
                     .GroupBy("A2")
                     .GroupBy("B2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  EXPECT_EQ(rewritten.select[1].kind, SelectItem::Kind::kRatio);
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(AggregateRewriteTest, SumRecoveredFromAvgTimesCount) {
  // Section 4.4 the other way: the view kept AVG and COUNT; SUM = AVG*COUNT.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "D1", "s")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .SelectAgg(AggFn::kAvg, "D2", "a")
                     .SelectAgg(AggFn::kCount, "D2", "cnt")
                     .GroupBy("A2")
                     .GroupBy("B2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  EXPECT_EQ(rewritten.select[1].agg, AggFn::kSum);
  EXPECT_FALSE(rewritten.select[1].arg.multiplier.empty());
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(AggregateRewriteTest, ResidualOnViewGroupingColumnAllowed) {
  // Extra query conditions on a view *grouping* column are fine (contrast
  // with Example 4.4, where the condition touched an aggregated column).
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kCount, "B1", "n")
                .WhereConst("B1", CmpOp::kEq, Value::Int64(2))
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .SelectAgg(AggFn::kCount, "C2", "cnt")
                     .GroupBy("A2")
                     .GroupBy("B2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ASSERT_EQ(rewritten.where.size(), 1u);
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(AggregateRewriteTest, GlobalAggregateFromGroupedView) {
  // A global COUNT over R1 from a grouped view with a COUNT column.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .SelectAgg(AggFn::kCount, "A1", "n")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .SelectAgg(AggFn::kCount, "B2", "cnt")
                     .GroupBy("A2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

}  // namespace
}  // namespace aqv
