#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "workload/random_db.h"

namespace aqv {
namespace {

// Example 3.1's query Q over R1(A,B), R2(C,D).
Query Example31Query() {
  return QueryBuilder()
      .From("R1", {"A1", "B1"})
      .From("R2", {"C1", "D1"})
      .Select("A1")
      .SelectAgg(AggFn::kSum, "B1", "s")
      .WhereCols("A1", CmpOp::kEq, "C1")
      .WhereConst("B1", CmpOp::kEq, Value::Int64(6))
      .WhereConst("D1", CmpOp::kEq, Value::Int64(6))
      .GroupBy("A1")
      .BuildOrDie();
}

// Example 3.1's view V1.
ViewDef Example31View() {
  return ViewDef{"V1", QueryBuilder()
                           .From("R1", {"A2", "B2"})
                           .From("R2", {"C2", "D2"})
                           .Select("C2")
                           .Select("D2")
                           .WhereCols("A2", CmpOp::kEq, "C2")
                           .WhereCols("B2", CmpOp::kEq, "D2")
                           .BuildOrDie()};
}

Catalog TwoTableCatalog() {
  Catalog c;
  EXPECT_TRUE(c.AddTable(TableDef("R1", {"A", "B"})).ok());
  EXPECT_TRUE(c.AddTable(TableDef("R2", {"C", "D"})).ok());
  return c;
}

TEST(ConjunctiveRewriteTest, Example31ProducesPaperRewriting) {
  Query q = Example31Query();
  ViewDef v = Example31View();
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V1"));

  // Q': SELECT C1, SUM(D1) FROM V1(C1, D1) WHERE D1 = 6 GROUPBY C1.
  ASSERT_EQ(rewritten.from.size(), 1u);
  EXPECT_EQ(rewritten.from[0].table, "V1");
  EXPECT_EQ(rewritten.from[0].columns, (std::vector<std::string>{"C1", "D1"}));
  ASSERT_EQ(rewritten.select.size(), 2u);
  EXPECT_EQ(rewritten.select[0].column, "C1");
  EXPECT_EQ(rewritten.select[1].arg.column, "D1");
  EXPECT_EQ(rewritten.group_by, (std::vector<std::string>{"C1"}));
  ASSERT_EQ(rewritten.where.size(), 1u);
  EXPECT_EQ(rewritten.where[0].ToString(), "D1 = 6");

  // Multiset-equivalence over random data (Theorem 3.1 soundness).
  Catalog catalog = TwoTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 40, 8, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(ConjunctiveRewriteTest, ConditionC2FailureWhenColumnProjectedOut) {
  // The view projects out everything the query needs to group on.
  Query q = Example31Query();
  ViewDef v{"V2", QueryBuilder()
                      .From("R1", {"A2", "B2"})
                      .From("R2", {"C2", "D2"})
                      .Select("D2")
                      .WhereCols("A2", CmpOp::kEq, "C2")
                      .WhereCols("B2", CmpOp::kEq, "D2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  Result<Query> r = rewriter.RewriteUsingView(q, "V2");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnusable);
}

TEST(ConjunctiveRewriteTest, ConditionC3FailureWhenViewStronger) {
  // The view enforces B2 = 7, which the query does not entail.
  Query q = Example31Query();
  ViewDef v{"V3", QueryBuilder()
                      .From("R1", {"A2", "B2"})
                      .From("R2", {"C2", "D2"})
                      .Select("C2")
                      .Select("D2")
                      .WhereConst("B2", CmpOp::kEq, Value::Int64(7))
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V3").status().code(),
            StatusCode::kUnusable);
}

TEST(ConjunctiveRewriteTest, ConditionC3FailureWhenResidualNeedsHiddenColumn) {
  // The view is weaker than the query (no B2 = D2), and B is projected out,
  // so the missing condition cannot be re-enforced.
  Query q = Example31Query();
  ViewDef v{"V4", QueryBuilder()
                      .From("R1", {"A2", "B2"})
                      .From("R2", {"C2", "D2"})
                      .Select("C2")
                      .Select("D2")
                      .WhereCols("A2", CmpOp::kEq, "C2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  // B1 = 6 must be enforced; B1 is hidden. However D1 is selected and the
  // query entails B1 = 6 only — not expressible. Unusable.
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V4").status().code(),
            StatusCode::kUnusable);
}

TEST(ConjunctiveRewriteTest, WeakerViewUsableWhenResidualExpressible) {
  // Like V4, but the view also selects B2, so B1 = 6 lands in the residual.
  Query q = Example31Query();
  ViewDef v{"V5", QueryBuilder()
                      .From("R1", {"A2", "B2"})
                      .From("R2", {"C2", "D2"})
                      .Select("B2")
                      .Select("C2")
                      .Select("D2")
                      .WhereCols("A2", CmpOp::kEq, "C2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V5"));
  EXPECT_EQ(rewritten.from.size(), 1u);
  Catalog catalog = TwoTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 40, 8, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(ConjunctiveRewriteTest, PartialReplacementKeepsOtherTables) {
  // View covers only R1; R2 stays in the rewritten FROM clause.
  Query q = Example31Query();
  ViewDef v{"V6", QueryBuilder()
                      .From("R1", {"A2", "B2"})
                      .Select("A2")
                      .Select("B2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V6"));
  ASSERT_EQ(rewritten.from.size(), 2u);
  EXPECT_EQ(rewritten.from[0].table, "R2");
  EXPECT_EQ(rewritten.from[1].table, "V6");
  Catalog catalog = TwoTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 40, 8, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(ConjunctiveRewriteTest, CountUsesAnyViewColumn) {
  // COUNT(B1) with B1 projected out still works (step S4).
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .SelectAgg(AggFn::kCount, "B1", "n")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V7", QueryBuilder()
                      .From("R1", {"A2", "B2"})
                      .Select("A2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V7"));
  EXPECT_EQ(rewritten.select[1].arg.column, "A1");
  Catalog catalog = TwoTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 30, 5, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(ConjunctiveRewriteTest, SumRequiresTheColumn) {
  // SUM(B1) with B1 projected out is unusable (condition C4 part 1).
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V8", QueryBuilder()
                      .From("R1", {"A2", "B2"})
                      .Select("A2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V8").status().code(),
            StatusCode::kUnusable);
}

TEST(ConjunctiveRewriteTest, EquivalentColumnSubstitutes) {
  // Condition C2's "Conds(Q) implies A = φ(B_A)": the view selects D2 only,
  // but the query equates B1 with D1, so D substitutes for B.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .From("R2", {"C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .WhereCols("B1", CmpOp::kEq, "D1")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V9", QueryBuilder()
                      .From("R1", {"A2", "B2"})
                      .From("R2", {"C2", "D2"})
                      .Select("A2")
                      .Select("D2")
                      .WhereCols("B2", CmpOp::kEq, "D2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V9"));
  EXPECT_EQ(rewritten.select[1].arg.column, "D1");
  Catalog catalog = TwoTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 40, 6, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(ConjunctiveRewriteTest, ConjunctiveQueryConjunctiveView) {
  // The Section 3 conditions also cover plain conjunctive queries.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .From("R2", {"C1", "D1"})
                .Select("A1")
                .Select("D1")
                .WhereCols("A1", CmpOp::kEq, "C1")
                .BuildOrDie();
  ViewDef v{"V10", QueryBuilder()
                       .From("R1", {"A2", "B2"})
                       .From("R2", {"C2", "D2"})
                       .Select("A2")
                       .Select("D2")
                       .WhereCols("A2", CmpOp::kEq, "C2")
                       .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V10"));
  EXPECT_TRUE(rewritten.IsConjunctive());
  Catalog catalog = TwoTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 40, 6, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(ConjunctiveRewriteTest, InequalityPredicatesStillSufficient) {
  // Theorem 3.1: with inequality predicates the conditions stay sufficient.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .SelectAgg(AggFn::kMin, "B1", "m")
                .WhereConst("B1", CmpOp::kLt, Value::Int64(5))
                .WhereConst("A1", CmpOp::kGe, Value::Int64(2))
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V11", QueryBuilder()
                       .From("R1", {"A2", "B2"})
                       .Select("A2")
                       .Select("B2")
                       .WhereConst("B2", CmpOp::kLt, Value::Int64(5))
                       .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V11"));
  Catalog catalog = TwoTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 40, 8, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(ConjunctiveRewriteTest, SelfJoinViewNeedsOneToOne) {
  // Under multiset semantics a many-to-1 mapping is rejected (condition C1):
  // with no keys declared, a self-join view is only usable via bijections.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .BuildOrDie();
  ViewDef v{"V12", QueryBuilder()
                       .From("R1", {"A2", "B2"})
                       .From("R1", {"A3", "B3"})
                       .Select("A2")
                       .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  // The view has two R1 occurrences but the query has one: no 1-1 mapping.
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V12").status().code(),
            StatusCode::kUnusable);
}

TEST(ConjunctiveRewriteTest, MultipleMappingsEnumerated) {
  // A self-join query and a single-table view: the view can replace either
  // occurrence.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .From("R1", {"A2", "B2"})
                .Select("A1")
                .Select("A2")
                .BuildOrDie();
  ViewDef v{"V13", QueryBuilder()
                       .From("R1", {"X", "Y"})
                       .Select("X")
                       .Select("Y")
                       .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(std::vector<Rewriting> rewritings,
                       rewriter.RewritingsUsingView(q, "V13"));
  EXPECT_EQ(rewritings.size(), 2u);
  Catalog catalog = TwoTableCatalog();
  Database db = MakeRandomDatabase(catalog, 30, 5, 1);
  for (const Rewriting& r : rewritings) {
    ExpectQueriesEquivalentOn(q, r.query, db, &views);
  }
}

}  // namespace
}  // namespace aqv
