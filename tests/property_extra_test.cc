#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "exec/operators.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "parser/parser.h"
#include "rewrite/flatten.h"
#include "rewrite/optimizer.h"
#include "rewrite/rewriter.h"
#include "rewrite/set_rewriter.h"
#include "tests/test_util.h"
#include "workload/random_query.h"

namespace aqv {
namespace {

// ---------------------------------------------------------------------------
// Printer/parser round-trip: ToSql(q) re-parses to exactly q, for every
// query and view shape the generator can produce.
// ---------------------------------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, GeneratedQueriesRoundTrip) {
  uint64_t seed = TestSeed(600 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  for (int i = 0; i < 30; ++i) {
    RandomPairConfig config;
    config.query_aggregation = (i % 2) == 0;
    config.view_aggregation = (i % 3) == 0;
    config.allow_having = (i % 4) == 0;
    config.equality_only = (i % 5) != 0;
    QueryViewPair pair = gen.NextPair(config);
    for (const Query* q : {&pair.query, &pair.view.query}) {
      std::string sql = ToSql(*q);
      Result<Query> reparsed = ParseQuery(sql);
      ASSERT_TRUE(reparsed.ok()) << sql << "\n" << reparsed.status();
      EXPECT_TRUE(*reparsed == *q) << "round trip changed:\n  " << sql
                                   << "\n  " << ToSql(*reparsed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundTripTest, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Section 5 soundness sweep: random keyed self-join views answered via
// many-to-1 mappings must be set-equivalent to the original query.
// ---------------------------------------------------------------------------

Catalog KeyedCatalog() {
  Catalog c;
  TableDef r("K", {"A", "B", "C"});
  EXPECT_TRUE(r.AddKeyByName({"A"}).ok());
  EXPECT_TRUE(c.AddTable(r).ok());
  return c;
}

// Keyed random instance: A is unique, B/C random over a small domain.
Database KeyedDatabase(int rows, int domain, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, domain - 1);
  Database db;
  Table t({"A", "B", "C"});
  for (int i = 0; i < rows; ++i) {
    t.AddRowOrDie(
        {Value::Int64(i), Value::Int64(dist(rng)), Value::Int64(dist(rng))});
  }
  db.Put("K", std::move(t));
  return db;
}

class SetSemanticsSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SetSemanticsSweepTest, ManyToOneRewritingsAreSetEquivalent) {
  uint64_t seed = TestSeed(800 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  std::mt19937_64 rng(seed);
  Catalog catalog = KeyedCatalog();
  const char* cols[] = {"B", "C"};
  int usable = 0;
  for (int i = 0; i < 20; ++i) {
    // Query: SELECT A1 [, B1] FROM K(A1,B1,C1) [WHERE x op y].
    QueryBuilder qb;
    qb.From("K", {"A1", "B1", "C1"}).Select("A1");
    if (rng() % 2) qb.Select("B1");
    if (rng() % 2) {
      qb.WhereCols(std::string(cols[rng() % 2]) + "1", CmpOp::kEq,
                   std::string(cols[rng() % 2]) + "1");
    }
    Query q = qb.BuildOrDie();

    // View: a self-join projecting keys (and maybe B columns).
    QueryBuilder vb;
    vb.From("K", {"A2", "B2", "C2"}).From("K", {"A3", "B3", "C3"});
    vb.Select("A2").Select("A3").Select("B2");
    if (rng() % 2) {
      vb.WhereCols(std::string(cols[rng() % 2]) + "2", CmpOp::kEq,
                   std::string(cols[rng() % 2]) + "3");
    }
    ViewDef v{"V", vb.BuildOrDie()};

    ViewRegistry views;
    ASSERT_OK(views.Register(v));
    RewriteOptions options;
    options.use_key_information = true;
    Rewriter rewriter(&views, &catalog, options);
    ASSERT_OK_AND_ASSIGN(std::vector<Rewriting> rewritings,
                         rewriter.RewritingsUsingView(q, "V"));
    if (rewritings.empty()) continue;
    ++usable;

    Database db = KeyedDatabase(25, 5, 900 + GetParam() * 100 + i);
    for (const Rewriting& r : rewritings) {
      // Under Section 5 both results are sets; compare them as sets.
      Evaluator ea(&db, &views), eb(&db, &views);
      ASSERT_OK_AND_ASSIGN(Table left, ea.Execute(q));
      ASSERT_OK_AND_ASSIGN(Table right, eb.Execute(r.query));
      std::vector<Row> ls = DistinctRows(left.rows());
      std::vector<Row> rs = DistinctRows(right.rows());
      Table lt(left.columns()), rt(right.columns());
      for (Row& row : ls) lt.AddRowOrDie(std::move(row));
      for (Row& row : rs) rt.AddRowOrDie(std::move(row));
      EXPECT_TRUE(MultisetEqual(lt, rt))
          << "Q:  " << ToSql(q) << "\nQ': " << ToSql(r.query) << "\n"
          << DescribeMultisetDifference(lt, rt);
    }
  }
  if (GetParam() == 0) {
    EXPECT_GT(usable, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SetSemanticsSweepTest, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Flatten oracle sweep: random virtual-view queries evaluate identically
// before and after the Section 7 merge.
// ---------------------------------------------------------------------------

class FlattenSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(FlattenSweepTest, FlattenPreservesSemantics) {
  uint64_t seed = TestSeed(1700 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config;
  config.query_aggregation = false;
  config.view_aggregation = false;
  config.equality_only = false;
  int flattened_total = 0;
  for (int i = 0; i < 15; ++i) {
    QueryViewPair pair = gen.NextPair(config);
    ViewRegistry views;
    ASSERT_OK(views.Register(pair.view));

    // A fresh outer query over the view's outputs.
    std::vector<std::string> outs;
    for (size_t p = 0; p < pair.view.query.select.size(); ++p) {
      outs.push_back("o" + std::to_string(p));
    }
    Query outer;
    outer.from.push_back(TableRef{pair.view.name, outs});
    outer.select.push_back(SelectItem::MakeColumn(outs[0]));
    if (outs.size() > 1) {
      outer.select.push_back(
          SelectItem::MakeAggregate(AggFn::kCount, outs[1], "n"));
      outer.group_by.push_back(outs[0]);
    }

    int flattened = 0;
    ASSERT_OK_AND_ASSIGN(Query flat,
                         FlattenViews(outer, views, nullptr, &flattened));
    flattened_total += flattened;
    Database db = gen.NextDatabase(12, 3);
    ExpectQueriesEquivalentOn(outer, flat, db, &views);
  }
  EXPECT_GT(flattened_total, 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlattenSweepTest, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Optimizer never changes answers: for random pairs with the view
// materialized, Optimizer::Run == direct evaluation.
// ---------------------------------------------------------------------------

class OptimizerSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerSweepTest, RunMatchesDirectEvaluation) {
  uint64_t seed = TestSeed(2600 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config;
  config.query_aggregation = true;
  config.view_aggregation = (GetParam() % 2) == 1;
  for (int i = 0; i < 15; ++i) {
    QueryViewPair pair = gen.NextPair(config);
    ViewRegistry views;
    ASSERT_OK(views.Register(pair.view));
    Database db = gen.NextDatabase(15, 3);
    {
      Evaluator eval(&db, &views);
      Result<Table> contents = eval.MaterializeView(pair.view.name);
      ASSERT_TRUE(contents.ok());
      db.Put(pair.view.name, *std::move(contents));
    }
    Optimizer optimizer(&db, &views, &gen.catalog());
    Result<Table> optimized = optimizer.Run(pair.query);
    ASSERT_TRUE(optimized.ok()) << optimized.status();
    Evaluator eval(&db, &views);
    ASSERT_OK_AND_ASSIGN(Table direct, eval.Execute(pair.query));
    EXPECT_TRUE(MultisetEqual(*optimized, direct))
        << "Q: " << ToSql(pair.query) << "\nV: " << ToSql(pair.view);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimizerSweepTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace aqv
