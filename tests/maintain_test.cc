#include <random>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "maintain/incremental.h"
#include "tests/test_util.h"
#include "workload/random_db.h"

namespace aqv {
namespace {

Row R(std::initializer_list<int64_t> vals) {
  Row row;
  for (int64_t v : vals) row.push_back(Value::Int64(v));
  return row;
}

// Recompute-vs-maintain oracle: applies `delta` both ways and compares.
void ExpectMaintainMatchesRecompute(const ViewDef& view, Database db,
                                    const Delta& delta) {
  ViewRegistry views;
  ASSERT_OK(views.Register(view));
  Evaluator eval_before(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table materialized,
                       eval_before.MaterializeView(view.name));

  ASSERT_OK_AND_ASSIGN(IncrementalMaintainer maintainer,
                       IncrementalMaintainer::Create(view));
  ASSERT_OK(maintainer.Apply(delta, db, &materialized));

  ASSERT_OK(ApplyDeltaToBase(delta, &db));
  Evaluator eval_after(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table recomputed, eval_after.MaterializeView(view.name));

  EXPECT_TRUE(MultisetEqual(materialized, recomputed))
      << "maintained:\n" << materialized.ToString() << "recomputed:\n"
      << recomputed.ToString();
}

Database TwoTableDb() {
  Database db;
  Table r({"A", "B"});
  r.AddRowOrDie(R({1, 10}));
  r.AddRowOrDie(R({1, 20}));
  r.AddRowOrDie(R({2, 30}));
  db.Put("R", std::move(r));
  Table s({"C", "D"});
  s.AddRowOrDie(R({1, 5}));
  s.AddRowOrDie(R({2, 6}));
  db.Put("S", std::move(s));
  return db;
}

ViewDef SumCountView() {
  return ViewDef{"V", QueryBuilder()
                          .From("R", {"A1", "B1"})
                          .Select("A1")
                          .SelectAgg(AggFn::kSum, "B1", "s")
                          .SelectAgg(AggFn::kCount, "B1", "n")
                          .GroupBy("A1")
                          .BuildOrDie()};
}

TEST(MaintainTest, InsertIntoExistingGroup) {
  Delta d;
  d.inserts["R"] = {R({1, 7})};
  ExpectMaintainMatchesRecompute(SumCountView(), TwoTableDb(), d);
}

TEST(MaintainTest, InsertCreatesNewGroup) {
  Delta d;
  d.inserts["R"] = {R({9, 1}), R({9, 2})};
  ExpectMaintainMatchesRecompute(SumCountView(), TwoTableDb(), d);
}

TEST(MaintainTest, DeleteShrinksGroup) {
  Delta d;
  d.deletes["R"] = {R({1, 10})};
  ExpectMaintainMatchesRecompute(SumCountView(), TwoTableDb(), d);
}

TEST(MaintainTest, DeleteKillsGroup) {
  Delta d;
  d.deletes["R"] = {R({2, 30})};
  ExpectMaintainMatchesRecompute(SumCountView(), TwoTableDb(), d);
}

TEST(MaintainTest, MixedBatch) {
  Delta d;
  d.inserts["R"] = {R({2, 1}), R({3, 4})};
  d.deletes["R"] = {R({1, 20})};
  ExpectMaintainMatchesRecompute(SumCountView(), TwoTableDb(), d);
}

TEST(MaintainTest, ConjunctiveViewAppendsAndRemoves) {
  ViewDef v{"V", QueryBuilder()
                     .From("R", {"A1", "B1"})
                     .Select("A1")
                     .Select("B1")
                     .WhereConst("B1", CmpOp::kGe, Value::Int64(15))
                     .BuildOrDie()};
  Delta d;
  d.inserts["R"] = {R({5, 50}), R({5, 3})};  // the second fails the filter
  d.deletes["R"] = {R({1, 20})};
  ExpectMaintainMatchesRecompute(v, TwoTableDb(), d);
}

TEST(MaintainTest, JoinViewTelescopesBothTables) {
  ViewDef v{"V", QueryBuilder()
                     .From("R", {"A1", "B1"})
                     .From("S", {"C1", "D1"})
                     .Select("A1")
                     .SelectAgg(AggFn::kSum, "D1", "s")
                     .SelectAgg(AggFn::kCount, "D1", "n")
                     .WhereCols("A1", CmpOp::kEq, "C1")
                     .GroupBy("A1")
                     .BuildOrDie()};
  Delta d;
  d.inserts["R"] = {R({1, 99})};
  d.inserts["S"] = {R({1, 8}), R({2, 9})};
  d.deletes["S"] = {R({2, 6})};
  ExpectMaintainMatchesRecompute(v, TwoTableDb(), d);
}

TEST(MaintainTest, MinMaxAbsorbInserts) {
  ViewDef v{"V", QueryBuilder()
                     .From("R", {"A1", "B1"})
                     .Select("A1")
                     .SelectAgg(AggFn::kMin, "B1", "lo")
                     .SelectAgg(AggFn::kMax, "B1", "hi")
                     .SelectAgg(AggFn::kCount, "B1", "n")
                     .GroupBy("A1")
                     .BuildOrDie()};
  Delta d;
  d.inserts["R"] = {R({1, 5}), R({1, 100}), R({4, 7})};
  ExpectMaintainMatchesRecompute(v, TwoTableDb(), d);
}

TEST(MaintainTest, DeleteOfNonExtremumIsFine) {
  ViewDef v{"V", QueryBuilder()
                     .From("R", {"A1", "B1"})
                     .Select("A1")
                     .SelectAgg(AggFn::kMax, "B1", "hi")
                     .SelectAgg(AggFn::kCount, "B1", "n")
                     .GroupBy("A1")
                     .BuildOrDie()};
  Delta d;
  d.deletes["R"] = {R({1, 10})};  // max of group 1 is 20
  ExpectMaintainMatchesRecompute(v, TwoTableDb(), d);
}

TEST(MaintainTest, DeleteOfExtremumRefused) {
  ViewDef v{"V", QueryBuilder()
                     .From("R", {"A1", "B1"})
                     .Select("A1")
                     .SelectAgg(AggFn::kMax, "B1", "hi")
                     .SelectAgg(AggFn::kCount, "B1", "n")
                     .GroupBy("A1")
                     .BuildOrDie()};
  Database db = TwoTableDb();
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table materialized, eval.MaterializeView("V"));
  Table untouched = materialized;

  ASSERT_OK_AND_ASSIGN(IncrementalMaintainer maintainer,
                       IncrementalMaintainer::Create(v));
  Delta d;
  d.deletes["R"] = {R({1, 20})};  // 20 is group 1's max
  Status s = maintainer.Apply(d, db, &materialized);
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
  // The refusal left the materialization untouched.
  EXPECT_TRUE(MultisetEqual(materialized, untouched));
}

TEST(MaintainTest, ExtremumDeleteCoveredByBatchInsertMaintains) {
  // A delete ties the group extremum, but the SAME batch inserts a covering
  // value (>= for MAX): every surviving old value is bounded by the old
  // extremum, so the covering insert is the new extremum — no recompute.
  ViewDef vmax{"V", QueryBuilder()
                        .From("R", {"A1", "B1"})
                        .Select("A1")
                        .SelectAgg(AggFn::kMax, "B1", "hi")
                        .SelectAgg(AggFn::kCount, "B1", "n")
                        .GroupBy("A1")
                        .BuildOrDie()};
  Delta d;
  d.deletes["R"] = {R({1, 20})};  // 20 is group 1's max
  d.inserts["R"] = {R({1, 25})};  // 25 covers it
  ExpectMaintainMatchesRecompute(vmax, TwoTableDb(), d);

  // Equal value covers too: the inserted copy replaces the deleted one.
  Delta tie;
  tie.deletes["R"] = {R({1, 20})};
  tie.inserts["R"] = {R({1, 20})};
  ExpectMaintainMatchesRecompute(vmax, TwoTableDb(), tie);

  // MIN mirror: delete the minimum, insert something smaller.
  ViewDef vmin{"V", QueryBuilder()
                        .From("R", {"A1", "B1"})
                        .Select("A1")
                        .SelectAgg(AggFn::kMin, "B1", "lo")
                        .SelectAgg(AggFn::kCount, "B1", "n")
                        .GroupBy("A1")
                        .BuildOrDie()};
  Delta dmin;
  dmin.deletes["R"] = {R({1, 10})};  // 10 is group 1's min
  dmin.inserts["R"] = {R({1, 3})};
  ExpectMaintainMatchesRecompute(vmin, TwoTableDb(), dmin);
}

TEST(MaintainTest, ExtremumDeleteWithNonCoveringInsertStillRefused) {
  ViewDef v{"V", QueryBuilder()
                     .From("R", {"A1", "B1"})
                     .Select("A1")
                     .SelectAgg(AggFn::kMax, "B1", "hi")
                     .SelectAgg(AggFn::kCount, "B1", "n")
                     .GroupBy("A1")
                     .BuildOrDie()};
  Database db = TwoTableDb();
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table materialized, eval.MaterializeView("V"));
  ASSERT_OK_AND_ASSIGN(IncrementalMaintainer maintainer,
                       IncrementalMaintainer::Create(v));
  // The insert (15) is below the deleted max (20): the new extremum is not
  // derivable from the summary, so the maintainer must still refuse.
  Delta d;
  d.deletes["R"] = {R({1, 20})};
  d.inserts["R"] = {R({1, 15})};
  EXPECT_EQ(maintainer.Apply(d, db, &materialized).code(),
            StatusCode::kUnsupported);
  // A covering insert into a DIFFERENT group does not rescue the delete.
  Delta other_group;
  other_group.deletes["R"] = {R({1, 20})};
  other_group.inserts["R"] = {R({2, 99})};
  EXPECT_EQ(maintainer.Apply(other_group, db, &materialized).code(),
            StatusCode::kUnsupported);
}

TEST(MaintainTest, ApplyToCopyLeavesInputUntouched) {
  ViewDef v = SumCountView();
  Database db = TwoTableDb();
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table materialized, eval.MaterializeView("V"));
  Table original = materialized;
  ASSERT_OK_AND_ASSIGN(IncrementalMaintainer maintainer,
                       IncrementalMaintainer::Create(v));
  Delta d;
  d.inserts["R"] = {R({1, 7}), R({9, 1})};
  ASSERT_OK_AND_ASSIGN(Table maintained,
                       maintainer.ApplyToCopy(d, db, materialized));
  // The input is untouched; the returned copy matches a recompute.
  EXPECT_TRUE(MultisetEqual(materialized, original));
  ASSERT_OK(ApplyDeltaToBase(d, &db));
  Evaluator after(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table recomputed, after.MaterializeView("V"));
  EXPECT_TRUE(MultisetEqual(maintained, recomputed))
      << "maintained:\n" << maintained.ToString() << "recomputed:\n"
      << recomputed.ToString();
}

TEST(MaintainTest, DeletesWithoutCountRefused) {
  ViewDef v{"V", QueryBuilder()
                     .From("R", {"A1", "B1"})
                     .Select("A1")
                     .SelectAgg(AggFn::kSum, "B1", "s")
                     .GroupBy("A1")
                     .BuildOrDie()};
  Database db = TwoTableDb();
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table materialized, eval.MaterializeView("V"));
  ASSERT_OK_AND_ASSIGN(IncrementalMaintainer maintainer,
                       IncrementalMaintainer::Create(v));
  Delta d;
  d.deletes["R"] = {R({1, 10})};
  EXPECT_EQ(maintainer.Apply(d, db, &materialized).code(),
            StatusCode::kUnsupported);
  // Inserts-only still works without a COUNT output.
  Delta ins;
  ins.inserts["R"] = {R({1, 2})};
  EXPECT_OK(maintainer.Apply(ins, db, &materialized));
}

TEST(MaintainTest, UnsupportedShapesRejectedAtCreate) {
  // HAVING.
  Query having = QueryBuilder()
                     .From("R", {"A1", "B1"})
                     .Select("A1")
                     .SelectAgg(AggFn::kSum, "B1", "s")
                     .GroupBy("A1")
                     .HavingAgg(AggFn::kSum, "B1", CmpOp::kGt, Value::Int64(1))
                     .BuildOrDie();
  EXPECT_EQ(IncrementalMaintainer::Create(ViewDef{"V1", having}).status().code(),
            StatusCode::kUnsupported);
  // AVG output.
  Query avg = QueryBuilder()
                  .From("R", {"A1", "B1"})
                  .Select("A1")
                  .SelectAgg(AggFn::kAvg, "B1", "a")
                  .GroupBy("A1")
                  .BuildOrDie();
  EXPECT_EQ(IncrementalMaintainer::Create(ViewDef{"V2", avg}).status().code(),
            StatusCode::kUnsupported);
  // DISTINCT.
  Query distinct =
      QueryBuilder().From("R", {"A1", "B1"}).Distinct().Select("A1").BuildOrDie();
  EXPECT_EQ(
      IncrementalMaintainer::Create(ViewDef{"V3", distinct}).status().code(),
      StatusCode::kUnsupported);
}

TEST(MaintainTest, ApplyDeltaToBaseValidates) {
  Database db = TwoTableDb();
  Delta bad;
  bad.deletes["R"] = {R({77, 77})};
  EXPECT_FALSE(ApplyDeltaToBase(bad, &db).ok());
  Delta unknown;
  unknown.inserts["Nope"] = {R({1})};
  EXPECT_EQ(ApplyDeltaToBase(unknown, &db).code(), StatusCode::kNotFound);
}

// Randomized oracle sweep: random base data, random insert/delete batches,
// maintained contents must equal recomputation after every batch.
class MaintainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaintainPropertyTest, MatchesRecomputeAcrossBatches) {
  std::mt19937_64 rng(GetParam());
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  ASSERT_OK(catalog.AddTable(TableDef("S", {"C", "D"})));
  Database db = MakeRandomDatabase(catalog, 40, 5, GetParam());

  ViewDef v{"V", QueryBuilder()
                     .From("R", {"A1", "B1"})
                     .From("S", {"C1", "D1"})
                     .Select("A1")
                     .SelectAgg(AggFn::kSum, "D1", "s")
                     .SelectAgg(AggFn::kCount, "D1", "n")
                     .WhereCols("B1", CmpOp::kEq, "C1")
                     .GroupBy("A1")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table materialized, eval.MaterializeView("V"));
  ASSERT_OK_AND_ASSIGN(IncrementalMaintainer maintainer,
                       IncrementalMaintainer::Create(v));

  std::uniform_int_distribution<int64_t> val(0, 4);
  for (int batch = 0; batch < 5; ++batch) {
    Delta d;
    for (const char* table : {"R", "S"}) {
      int n_ins = static_cast<int>(rng() % 4);
      for (int i = 0; i < n_ins; ++i) {
        d.inserts[table].push_back({Value::Int64(val(rng)),
                                    Value::Int64(val(rng))});
      }
      // Delete up to 2 random existing rows.
      const Table* t = *db.Get(table);
      int n_del = static_cast<int>(rng() % 3);
      for (int i = 0; i < n_del && !t->rows().empty(); ++i) {
        d.deletes[table].push_back(t->rows()[rng() % t->rows().size()]);
      }
      // Avoid deleting the same physical row twice in one batch.
      if (d.deletes[table].size() == 2 &&
          RowEq{}(d.deletes[table][0], d.deletes[table][1])) {
        d.deletes[table].pop_back();
      }
    }
    ASSERT_OK(maintainer.Apply(d, db, &materialized));
    ASSERT_OK(ApplyDeltaToBase(d, &db));
    Evaluator check(&db, &views);
    ASSERT_OK_AND_ASSIGN(Table recomputed, check.MaterializeView("V"));
    ASSERT_TRUE(MultisetEqual(materialized, recomputed))
        << "batch " << batch << "\nmaintained:\n" << materialized.ToString()
        << "recomputed:\n" << recomputed.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaintainPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace aqv
