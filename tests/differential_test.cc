// Randomized differential harness (PR 3): the same query executed two ways
// must produce the same bag of rows.
//
//   (a) rewritten vs. unrewritten — the optimizer's chosen plan (which may
//       substitute a materialized view) against direct evaluation of the
//       original query, over R random databases x Q random query/view pairs;
//   (b) service cached-plan vs. fresh-optimize — the same SELECT through a
//       plan-caching QueryService (second execution is a cache hit) and
//       through a cache-disabled service;
//   (c) chaos (PR 4) — the same sweep with probabilistic failpoints armed
//       across every wired site: each statement must either return exactly
//       the reference rows or fail with a clean Status, never crash or
//       silently return wrong rows. The fault schedule replays from the
//       same seed as the workload.
//
// Every assertion failure prints a self-contained repro: the seed (replay
// with AQV_TEST_SEED=<n>) plus the exact SQL of the query and view.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "exec/evaluator.h"
#include "ir/printer.h"
#include "rewrite/optimizer.h"
#include "service/query_service.h"
#include "tests/test_util.h"
#include "workload/random_query.h"

namespace aqv {
namespace {

constexpr int kPairsPerSweep = 20;   // Q: query/view pairs per sweep
constexpr int kDatabasesPerPair = 3; // R: random databases per pair

RandomPairConfig ConfigForParam(int param) {
  RandomPairConfig config;
  config.query_aggregation = (param % 2) == 0;
  config.view_aggregation = (param % 3) == 0;
  config.equality_only = (param % 4) != 3;
  return config;
}

/// Materializes `view` into `db` so the optimizer can substitute it.
void MaterializeInto(Database* db, const ViewRegistry& views,
                     const std::string& name) {
  Evaluator eval(db, &views);
  Result<Table> contents = eval.MaterializeView(name);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  db->Put(name, *std::move(contents));
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

// (a) The optimizer's chosen plan answers exactly like the original query,
// whatever rewriting it picked.
TEST_P(DifferentialTest, RewrittenMatchesUnrewritten) {
  uint64_t seed = TestSeed(12000 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config = ConfigForParam(GetParam());
  int rewritten = 0;
  for (int q = 0; q < kPairsPerSweep; ++q) {
    QueryViewPair pair = gen.NextPair(config);
    ViewRegistry views;
    ASSERT_OK(views.Register(pair.view));
    SCOPED_TRACE("repro:\n  Q: " + ToSql(pair.query) +
                 "\n  V: CREATE MATERIALIZED VIEW " + pair.view.name + " AS " +
                 ToSql(pair.view.query));
    for (int d = 0; d < kDatabasesPerPair; ++d) {
      Database db = gen.NextDatabase(12, 3);
      MaterializeInto(&db, views, pair.view.name);
      Optimizer optimizer(&db, &views, &gen.catalog());
      Result<OptimizeResult> plan = optimizer.Optimize(pair.query);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      if (plan->used_materialized_view) ++rewritten;
      SCOPED_TRACE("chosen plan: " + ToSql(plan->chosen));
      Evaluator chosen_eval(&db, &views);
      ASSERT_OK_AND_ASSIGN(Table chosen, chosen_eval.Execute(plan->chosen));
      Evaluator direct_eval(&db, &views);
      ASSERT_OK_AND_ASSIGN(Table direct, direct_eval.Execute(pair.query));
      EXPECT_TRUE(MultisetEqual(chosen, direct))
          << DescribeMultisetDifference(chosen, direct);
    }
  }
  // The sweep must exercise actual rewritings, not just identity plans.
  if (GetParam() == 0) {
    EXPECT_GT(rewritten, 0);
  }
}

// (b) A SELECT through the service answers identically on a plan-cache miss,
// a plan-cache hit, and a cache-disabled fresh optimize.
TEST_P(DifferentialTest, CachedPlanMatchesFreshOptimize) {
  uint64_t seed = TestSeed(13000 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config = ConfigForParam(GetParam());

  // One shared registry: pair numbering keeps generated view names unique.
  ViewRegistry views;
  std::vector<QueryViewPair> pairs;
  for (int q = 0; q < kPairsPerSweep; ++q) {
    QueryViewPair pair = gen.NextPair(config);
    ASSERT_OK(views.Register(pair.view));
    pairs.push_back(std::move(pair));
  }

  for (int d = 0; d < kDatabasesPerPair; ++d) {
    Database db = gen.NextDatabase(12, 3);
    for (const QueryViewPair& pair : pairs) {
      MaterializeInto(&db, views, pair.view.name);
    }

    QueryService cached_service;
    ASSERT_OK(cached_service.Bootstrap(gen.catalog(), db.Snapshot(), views));
    ServiceOptions fresh_options;
    fresh_options.enable_plan_cache = false;
    QueryService fresh_service(fresh_options);
    ASSERT_OK(fresh_service.Bootstrap(gen.catalog(), db.Snapshot(), views));

    for (const QueryViewPair& pair : pairs) {
      std::string sql = ToSql(pair.query);
      SCOPED_TRACE("repro:\n  Q: " + sql + "\n  V: CREATE MATERIALIZED VIEW " +
                   pair.view.name + " AS " + ToSql(pair.view.query));
      ASSERT_OK_AND_ASSIGN(Table miss, cached_service.Select(sql));
      ASSERT_OK_AND_ASSIGN(Table hit, cached_service.Select(sql));
      ASSERT_OK_AND_ASSIGN(Table fresh, fresh_service.Select(sql));
      EXPECT_TRUE(MultisetEqual(miss, hit))
          << "cache hit diverged from the miss that populated it:\n  "
          << DescribeMultisetDifference(miss, hit);
      EXPECT_TRUE(MultisetEqual(miss, fresh))
          << "cached service diverged from fresh optimize:\n  "
          << DescribeMultisetDifference(miss, fresh);
    }
    // The comparison must actually exercise the cache-hit path.
    EXPECT_GT(cached_service.Stats().plan_cache_hits, 0u);
    EXPECT_EQ(fresh_service.Stats().plan_cache_hits, 0u);
  }
}

// (a) + snapshots: a SELECT on a pinned snapshot equals the same SELECT on
// the live service when nothing writes in between.
TEST_P(DifferentialTest, SnapshotReadMatchesLiveRead) {
  uint64_t seed = TestSeed(14000 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config = ConfigForParam(GetParam());
  QueryViewPair pair = gen.NextPair(config);
  ViewRegistry views;
  ASSERT_OK(views.Register(pair.view));
  Database db = gen.NextDatabase(12, 3);
  MaterializeInto(&db, views, pair.view.name);

  QueryService service;
  ASSERT_OK(service.Bootstrap(gen.catalog(), std::move(db), views));
  ServiceSnapshotPtr snap = service.PinSnapshot();
  std::string sql = ToSql(pair.query);
  SCOPED_TRACE("repro:\n  Q: " + sql);
  ASSERT_OK_AND_ASSIGN(Table live, service.Select(sql));
  ASSERT_OK_AND_ASSIGN(Table pinned, service.Select(sql, *snap));
  EXPECT_TRUE(MultisetEqual(live, pinned))
      << DescribeMultisetDifference(live, pinned);
}

// (c) Chaos: with faults injected at every wired site, each statement is
// "right rows or clean error". The fault schedule is seeded alongside the
// workload, so a failure replays exactly with AQV_TEST_SEED=<printed seed>.
TEST_P(DifferentialTest, ChaosInjectionYieldsCorrectRowsOrCleanErrors) {
  uint64_t seed = TestSeed(15000 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config = ConfigForParam(GetParam());

  ViewRegistry views;
  std::vector<QueryViewPair> pairs;
  for (int q = 0; q < kPairsPerSweep; ++q) {
    QueryViewPair pair = gen.NextPair(config);
    ASSERT_OK(views.Register(pair.view));
    pairs.push_back(std::move(pair));
  }
  Database db = gen.NextDatabase(12, 3);
  for (const QueryViewPair& pair : pairs) {
    MaterializeInto(&db, views, pair.view.name);
  }

  // Reference answers, computed before any fault is armed.
  std::vector<Table> expected;
  for (const QueryViewPair& pair : pairs) {
    Evaluator eval(&db, &views);
    Result<Table> t = eval.Execute(pair.query);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    expected.push_back(*std::move(t));
  }

  QueryService service;
  ASSERT_OK(service.Bootstrap(gen.catalog(), std::move(db), views));

  // The registry is process-global: disarm even if an ASSERT bails out
  // mid-test, so leaked chaos never poisons the other sweeps.
  struct DisarmOnExit {
    ~DisarmOnExit() { FailpointRegistry::Global().ClearAll(); }
  } disarm;
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_OK(reg.Set("parse", "error(3)"));
  ASSERT_OK(reg.Set("rewrite.enumerate", "error(15)"));
  ASSERT_OK(reg.Set("optimizer.optimize", "error(10)"));
  ASSERT_OK(reg.Set("plan_cache.lookup", "error(20)"));
  ASSERT_OK(reg.Set("plan_cache.insert", "error(20)"));
  ASSERT_OK(reg.Set("exec.operator", "error(10)"));
  reg.Reseed(seed);

  int succeeded = 0;
  int failed = 0;
  int degraded = 0;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      std::string sql = ToSql(pairs[i].query);
      SCOPED_TRACE("round " + std::to_string(round) + " repro:\n  Q: " + sql);
      Result<StatementResult> r = service.Execute(sql);
      if (!r.ok()) {
        // Injected faults surface as kUnavailable ("injected failpoint ..."
        // or, through the degraded retry, the original injection) — never
        // as a crash or a mangled internal error.
        EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
            << r.status().ToString();
        ++failed;
        continue;
      }
      ++succeeded;
      degraded += r->degraded;
      ASSERT_TRUE(r->table.has_value());
      EXPECT_TRUE(MultisetEqual(*r->table, expected[i]))
          << "chaos run returned wrong rows:\n  "
          << DescribeMultisetDifference(*r->table, expected[i]);
    }
  }
  // The sweep must exercise both outcomes (the schedule is deterministic
  // per seed; these hold for every TestSeed default).
  EXPECT_GT(succeeded, 0);
  EXPECT_GT(failed + degraded, 0);
}

// (d) Writes without REFRESH (PR 5, DML arms PR 10): random INSERTs —
// single-row statements, multi-row statements, and BEGIN WRITE..COMMIT
// batches — plus seeded DELETEs, UPDATEs, and mixed insert+delete batches
// flow through the maintained write path. After every write, each SELECT through the service
// (which may be rewritten onto a materialized view) must match direct
// evaluation of the original query over a mirror database that applies the
// same rows by hand. No REFRESH is ever issued: freshness comes entirely
// from write-path maintenance. Additionally, every pinned snapshot must
// satisfy the publication invariant: a view's version is never older than
// any base table it was maintained from.
TEST_P(DifferentialTest, WritesStayFreshWithoutRefresh) {
  uint64_t seed = TestSeed(17000 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config = ConfigForParam(GetParam());

  ViewRegistry views;
  std::vector<QueryViewPair> pairs;
  for (int q = 0; q < 8; ++q) {
    QueryViewPair pair = gen.NextPair(config);
    ASSERT_OK(views.Register(pair.view));
    pairs.push_back(std::move(pair));
  }
  Database db = gen.NextDatabase(12, 3);
  for (const QueryViewPair& pair : pairs) {
    MaterializeInto(&db, views, pair.view.name);
  }

  QueryService service;
  ASSERT_OK(service.Bootstrap(gen.catalog(), db.Snapshot(), views));
  // The witness: committed rows applied by hand, no views consulted.
  Database mirror = db.Snapshot();

  const struct {
    const char* table;
    int arity;
    const char* col0;  // WHERE column for DML rounds
    const char* col1;  // SET target for UPDATE rounds
  } kTables[] = {{"R1", 4, "A", "B"}, {"R2", 2, "E", "F"},
                 {"R3", 2, "G", "H"}};
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 17);
  auto random_tuple = [&](int arity) {
    std::vector<int64_t> tuple;
    for (int c = 0; c < arity; ++c) {
      tuple.push_back(static_cast<int64_t>(rng() % 3));
    }
    return tuple;
  };
  auto tuple_sql = [](const std::vector<int64_t>& tuple) {
    std::string sql = "(";
    for (size_t c = 0; c < tuple.size(); ++c) {
      if (c > 0) sql += ", ";
      sql += std::to_string(tuple[c]);
    }
    return sql + ")";
  };
  auto mirror_insert = [&](const char* table,
                           const std::vector<std::vector<int64_t>>& tuples) {
    Table copy = *mirror.GetShared(table);
    for (const std::vector<int64_t>& tuple : tuples) {
      Row row;
      for (int64_t v : tuple) row.push_back(Value::Int64(v));
      copy.AddRowOrDie(std::move(row));
    }
    mirror.Put(table, std::move(copy));
  };
  // One INSERT statement of `rows` tuples, applied to service AND mirror.
  auto write = [&](const char* table, int arity, int rows) {
    std::vector<std::vector<int64_t>> tuples;
    std::string sql = "INSERT INTO " + std::string(table) + " VALUES ";
    for (int r = 0; r < rows; ++r) {
      tuples.push_back(random_tuple(arity));
      if (r > 0) sql += ", ";
      sql += tuple_sql(tuples.back());
    }
    SCOPED_TRACE("write: " + sql);
    ASSERT_OK(service.Execute(sql).status());
    mirror_insert(table, tuples);
  };

  // Rows matching `col == v` are removed from the mirror by hand; same
  // multiset semantics as the service's DELETE (every occurrence goes).
  auto mirror_delete = [&](const char* table, const char* col, int64_t v) {
    Table copy = *mirror.GetShared(table);
    int c = copy.ColumnIndex(col);
    ASSERT_GE(c, 0);
    std::vector<Row>* rows = copy.mutable_rows();
    rows->erase(std::remove_if(rows->begin(), rows->end(),
                               [&](const Row& row) {
                                 return row[c] == Value::Int64(v);
                               }),
                rows->end());
    mirror.Put(table, std::move(copy));
  };
  // `SET set_col = set_col + 1 WHERE where_col = v` applied by hand.
  auto mirror_update = [&](const char* table, const char* where_col,
                           int64_t v, const char* set_col) {
    Table copy = *mirror.GetShared(table);
    int wc = copy.ColumnIndex(where_col);
    int sc = copy.ColumnIndex(set_col);
    ASSERT_GE(wc, 0);
    ASSERT_GE(sc, 0);
    for (Row& row : *copy.mutable_rows()) {
      if (row[wc] == Value::Int64(v)) {
        row[sc] = Value::Int64(row[sc].int64() + 1);
      }
    }
    mirror.Put(table, std::move(copy));
  };

  // Rounds 0..5 insert (single-row, multi-row, batch); rounds 6..11 mix in
  // DELETE, UPDATE, and a batch that inserts into one table and deletes
  // from another — all with the mirror maintained by hand.
  for (int round = 0; round < 12; ++round) {
    const auto& target = kTables[rng() % 3];
    int shape = round < 6 ? round % 3 : 3 + round % 3;
    switch (shape) {
      case 0:
        write(target.table, target.arity, 1);
        break;
      case 1:
        write(target.table, target.arity, 3);
        break;
      case 3: {
        // DELETE through the maintained write path. Values live in {0,1,2},
        // so the predicate usually matches several rows.
        int64_t v = static_cast<int64_t>(rng() % 3);
        std::string sql = "DELETE FROM " + std::string(target.table) +
                          " WHERE " + target.col0 + " = " + std::to_string(v);
        SCOPED_TRACE("write: " + sql);
        ASSERT_OK(service.Execute(sql).status());
        mirror_delete(target.table, target.col0, v);
        break;
      }
      case 4: {
        // UPDATE = delete+insert delta through the same path.
        int64_t v = static_cast<int64_t>(rng() % 3);
        std::string sql = "UPDATE " + std::string(target.table) + " SET " +
                          target.col1 + " = " + target.col1 + " + 1 WHERE " +
                          target.col0 + " = " + std::to_string(v);
        SCOPED_TRACE("write: " + sql);
        ASSERT_OK(service.Execute(sql).status());
        mirror_update(target.table, target.col0, v, target.col1);
        break;
      }
      case 5: {
        // Mixed batch: an INSERT and a DELETE (possibly on different
        // tables) commit as ONE delta. The batched DELETE evaluates
        // against committed state, which is exactly what the mirror holds.
        const auto& victim = kTables[rng() % 3];
        std::vector<std::vector<int64_t>> new_rows = {
            random_tuple(target.arity)};
        int64_t v = static_cast<int64_t>(rng() % 3);
        ASSERT_OK(service.Execute("BEGIN WRITE").status());
        ASSERT_OK(service
                      .Execute("INSERT INTO " + std::string(target.table) +
                               " VALUES " + tuple_sql(new_rows[0]))
                      .status());
        ASSERT_OK(service
                      .Execute("DELETE FROM " + std::string(victim.table) +
                               " WHERE " + victim.col0 + " = " +
                               std::to_string(v))
                      .status());
        ASSERT_OK(service.Execute("COMMIT").status());
        // Mirror the delete from pre-batch state first, then the insert:
        // same multiset outcome as the service's inserts-then-deletes order
        // because the staged deletes matched committed rows only.
        mirror_delete(victim.table, victim.col0, v);
        mirror_insert(target.table, new_rows);
        break;
      }
      case 2: {
        // A multi-statement batch, possibly spanning two tables; the mirror
        // applies the rows only once COMMIT succeeds.
        const auto& second = kTables[rng() % 3];
        std::vector<std::vector<int64_t>> first_rows = {
            random_tuple(target.arity), random_tuple(target.arity)};
        std::vector<std::vector<int64_t>> second_rows = {
            random_tuple(second.arity)};
        ASSERT_OK(service.Execute("BEGIN WRITE").status());
        ASSERT_OK(service
                      .Execute("INSERT INTO " + std::string(target.table) +
                               " VALUES " + tuple_sql(first_rows[0]) + ", " +
                               tuple_sql(first_rows[1]))
                      .status());
        ASSERT_OK(service
                      .Execute("INSERT INTO " + std::string(second.table) +
                               " VALUES " + tuple_sql(second_rows[0]))
                      .status());
        ASSERT_OK(service.Execute("COMMIT").status());
        mirror_insert(target.table, first_rows);
        mirror_insert(second.table, second_rows);
        break;
      }
    }

    // Rewritten reads must see the write — with no REFRESH in between.
    for (size_t i = 0; i < pairs.size(); ++i) {
      std::string sql = ToSql(pairs[i].query);
      SCOPED_TRACE("round " + std::to_string(round) + " repro:\n  Q: " + sql +
                   "\n  V: CREATE MATERIALIZED VIEW " + pairs[i].view.name +
                   " AS " + ToSql(pairs[i].view.query));
      ASSERT_OK_AND_ASSIGN(Table got, service.Select(sql));
      Evaluator direct(&mirror, &views);
      ASSERT_OK_AND_ASSIGN(Table want, direct.Execute(pairs[i].query));
      EXPECT_TRUE(MultisetAlmostEqual(got, want))
          << "service read diverged from hand-maintained mirror:\n  "
          << DescribeMultisetDifference(got, want);
    }

    // Publication invariant: in any pinned snapshot, no base table is newer
    // than a view whose definition reads it.
    ServiceSnapshotPtr snap = service.PinSnapshot();
    for (const QueryViewPair& pair : pairs) {
      uint64_t view_version = snap->db.VersionOf(pair.view.name);
      for (const TableRef& ref : pair.view.query.from) {
        EXPECT_LE(snap->db.VersionOf(ref.table), view_version)
            << pair.view.name << " is stale relative to " << ref.table;
      }
    }
  }
  // The sweep must exercise write-path maintenance, not no-op writes.
  ServiceStats stats = service.Stats();
  EXPECT_GE(stats.views_maintained + stats.views_recomputed, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace aqv
