// Tests for the base/trace span tracer: ring-buffer bounds, span nesting,
// the disabled fast path, Chrome trace_event JSON, concurrent recording,
// and the rewrite-attempt instrumentation's reject-condition attributes.

#include "base/trace.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

const TraceEvent* FindEvent(const std::vector<TraceEvent>& events,
                            const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string AttrOrEmpty(const TraceEvent& e, const std::string& key) {
  for (const auto& [k, v] : e.attributes) {
    if (k == key) return v;
  }
  return "";
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer(16);
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span("work", tracer);
    EXPECT_FALSE(span.active());
    span.AddAttr("ignored", "value");  // no-op on an inert span
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TraceTest, RecordsNestedSpansWithParentIds) {
  Tracer tracer(16);
  tracer.Enable();
  {
    TraceSpan outer("outer", tracer);
    ASSERT_TRUE(outer.active());
    outer.AddAttr("k", "v");
    {
      TraceSpan inner("inner", tracer);
      ASSERT_TRUE(inner.active());
    }
  }
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);  // inner ends (and records) first
  const TraceEvent* outer = FindEvent(events, "outer");
  const TraceEvent* inner = FindEvent(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_NE(inner->span_id, outer->span_id);
  EXPECT_EQ(inner->thread_id, outer->thread_id);
  EXPECT_GE(outer->duration_micros, inner->duration_micros);
  EXPECT_EQ(AttrOrEmpty(*outer, "k"), "v");
}

TEST(TraceTest, EndIsIdempotent) {
  Tracer tracer(16);
  tracer.Enable();
  TraceSpan span("once", tracer);
  span.End();
  span.End();
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(TraceTest, SiblingSpansShareTheRestoredParent) {
  Tracer tracer(16);
  tracer.Enable();
  {
    TraceSpan parent("parent", tracer);
    { TraceSpan a("a", tracer); }
    { TraceSpan b("b", tracer); }
  }
  std::vector<TraceEvent> events = tracer.Snapshot();
  const TraceEvent* parent = FindEvent(events, "parent");
  const TraceEvent* a = FindEvent(events, "a");
  const TraceEvent* b = FindEvent(events, "b");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->parent_id, parent->span_id);
  EXPECT_EQ(b->parent_id, parent->span_id);
}

TEST(TraceTest, RingBufferOverwritesOldestAndCountsDropped) {
  Tracer tracer(4);
  tracer.Enable();
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("span" + std::to_string(i), tracer);
  }
  std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Oldest first: the survivors are the last four recorded.
  EXPECT_EQ(events[0].name, "span6");
  EXPECT_EQ(events[3].name, "span9");
}

TEST(TraceTest, ClearResetsBufferAndDroppedCount) {
  Tracer tracer(2);
  tracer.Enable();
  for (int i = 0; i < 5; ++i) TraceSpan span("s", tracer);
  ASSERT_EQ(tracer.dropped(), 3u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  { TraceSpan span("after", tracer); }
  EXPECT_EQ(tracer.Snapshot().size(), 1u);
}

TEST(TraceTest, ChromeTraceJsonShape) {
  Tracer tracer(16);
  tracer.Enable();
  {
    TraceSpan span("quoted\"name", tracer);
    span.AddAttr("path", "a\\b");
    span.AddAttr("n", 42);
  }
  std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"aqv\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"quoted\\\"name\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"a\\\\b\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":\"42\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

TEST(TraceTest, EmptyTracerProducesValidEmptyJson) {
  Tracer tracer(4);
  std::string json = tracer.ChromeTraceJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("]}"), std::string::npos);
  EXPECT_EQ(json.find("\"ph\""), std::string::npos);  // no events
}

TEST(TraceTest, ConcurrentRecordingStaysBounded) {
  Tracer tracer(64);
  tracer.Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("t" + std::to_string(t), tracer);
        if (span.active()) span.AddAttr("i", i);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<TraceEvent> events = tracer.Snapshot();
  EXPECT_EQ(events.size(), 64u);
  EXPECT_EQ(tracer.dropped(),
            static_cast<uint64_t>(kThreads * kSpansPerThread - 64));
}

TEST(TraceTest, RejectConditionTokenParsesConditionNames) {
  EXPECT_EQ(RejectConditionToken(Status::OK()), "");
  EXPECT_EQ(RejectConditionToken(Status::InvalidArgument("condition C1")), "");
  EXPECT_EQ(RejectConditionToken(Status::Unusable("condition C1: not 1-1")),
            "C1");
  EXPECT_EQ(RejectConditionToken(
                Status::Unusable("cannot replace 'B' (conditions C2/C4)")),
            "C2");
  EXPECT_EQ(RejectConditionToken(
                Status::Unusable("condition C4' 1(a): SUM needs SUM")),
            "C4'");
  EXPECT_EQ(RejectConditionToken(
                Status::Unusable("grouped view, conjunctive query (Section 4.5)")),
            "S4.5");
  EXPECT_EQ(RejectConditionToken(Status::Unusable("no token here")), "other");
}

// The tentpole acceptance check: a traced rewrite attempt against a view
// that fails condition C2 (the view projects out a column the query needs)
// carries the rejecting condition as a span attribute.
TEST(TraceTest, RewriteAttemptSpanCarriesRejectCondition) {
  // Example 3.1's query; the view projects out everything but D2, so strict
  // replacement of the query's grouping column fails (conditions C2/C4).
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .From("R2", {"C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .WhereCols("A1", CmpOp::kEq, "C1")
                .WhereConst("B1", CmpOp::kEq, Value::Int64(6))
                .WhereConst("D1", CmpOp::kEq, Value::Int64(6))
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V2", QueryBuilder()
                      .From("R1", {"A2", "B2"})
                      .From("R2", {"C2", "D2"})
                      .Select("D2")
                      .WhereCols("A2", CmpOp::kEq, "C2")
                      .WhereCols("B2", CmpOp::kEq, "D2")
                      .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);

  // The rewriter instruments through the global tracer.
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  Result<std::vector<Rewriting>> r = rewriter.RewritingsUsingView(q, "V2");
  tracer.Disable();
  ASSERT_OK(r.status());
  EXPECT_TRUE(r->empty());

  std::vector<TraceEvent> events = tracer.Snapshot();
  const TraceEvent* view_span = FindEvent(events, "rewrite.view");
  ASSERT_NE(view_span, nullptr);
  EXPECT_EQ(AttrOrEmpty(*view_span, "view"), "V2");
  EXPECT_EQ(AttrOrEmpty(*view_span, "accepted"), "0");

  bool saw_c2_reject = false;
  for (const TraceEvent& e : events) {
    if (e.name != "rewrite.attempt") continue;
    EXPECT_EQ(AttrOrEmpty(e, "view"), "V2");
    EXPECT_EQ(AttrOrEmpty(e, "accepted"), "");  // every mapping fails
    std::string reject = AttrOrEmpty(e, "reject");
    EXPECT_FALSE(reject.empty());
    if (reject == "C2") saw_c2_reject = true;
  }
  EXPECT_TRUE(saw_c2_reject);
  tracer.Clear();
}

}  // namespace
}  // namespace aqv
