#include <algorithm>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "rewrite/multiview.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "workload/random_db.h"

namespace aqv {
namespace {

Catalog ThreeTableCatalog() {
  Catalog c;
  EXPECT_TRUE(c.AddTable(TableDef("R1", {"A", "B"})).ok());
  EXPECT_TRUE(c.AddTable(TableDef("R2", {"C", "D"})).ok());
  EXPECT_TRUE(c.AddTable(TableDef("R3", {"E", "F"})).ok());
  return c;
}

// Q joins three tables; V1 covers R1, V2 covers R2.
Query ThreeTableQuery() {
  return QueryBuilder()
      .From("R1", {"A1", "B1"})
      .From("R2", {"C1", "D1"})
      .From("R3", {"E1", "F1"})
      .Select("A1")
      .SelectAgg(AggFn::kSum, "F1", "s")
      .WhereCols("B1", CmpOp::kEq, "C1")
      .WhereCols("D1", CmpOp::kEq, "E1")
      .GroupBy("A1")
      .BuildOrDie();
}

ViewRegistry TwoViews() {
  ViewRegistry views;
  EXPECT_TRUE(views
                  .Register(ViewDef{"V1", QueryBuilder()
                                              .From("R1", {"A2", "B2"})
                                              .Select("A2")
                                              .Select("B2")
                                              .BuildOrDie()})
                  .ok());
  EXPECT_TRUE(views
                  .Register(ViewDef{"V2", QueryBuilder()
                                              .From("R2", {"C2", "D2"})
                                              .Select("C2")
                                              .Select("D2")
                                              .BuildOrDie()})
                  .ok());
  return views;
}

TEST(MultiViewTest, IterativeApplicationFoldsBothViews) {
  Query q = ThreeTableQuery();
  ViewRegistry views = TwoViews();
  Rewriter rewriter(&views);
  std::vector<std::string> used;
  ASSERT_OK_AND_ASSIGN(Query rewritten,
                       rewriter.RewriteIteratively(q, {"V1", "V2"}, &used));
  EXPECT_EQ(used, (std::vector<std::string>{"V1", "V2"}));
  std::vector<std::string> tables;
  for (const TableRef& t : rewritten.from) tables.push_back(t.table);
  std::sort(tables.begin(), tables.end());
  EXPECT_EQ(tables, (std::vector<std::string>{"R3", "V1", "V2"}));

  // Theorem 3.2 part 1 (soundness of the iterative procedure).
  Catalog catalog = ThreeTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 30, 4, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(MultiViewTest, ChurchRosserOrderIndependence) {
  // Theorem 3.2 part 2: the result is the same in any view order.
  Query q = ThreeTableQuery();
  ViewRegistry views = TwoViews();
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query forward,
                       rewriter.RewriteIteratively(q, {"V1", "V2"}, nullptr));
  ASSERT_OK_AND_ASSIGN(Query backward,
                       rewriter.RewriteIteratively(q, {"V2", "V1"}, nullptr));
  EXPECT_EQ(CanonicalQueryKey(forward), CanonicalQueryKey(backward));
}

TEST(MultiViewTest, UnusableViewsAreSkipped) {
  Query q = ThreeTableQuery();
  ViewRegistry views = TwoViews();
  ASSERT_OK(views.Register(ViewDef{"V_bad", QueryBuilder()
                                                .From("R3", {"E2", "F2"})
                                                .Select("E2")
                                                .WhereConst("F2", CmpOp::kEq,
                                                            Value::Int64(0))
                                                .BuildOrDie()}));
  Rewriter rewriter(&views);
  std::vector<std::string> used;
  ASSERT_OK_AND_ASSIGN(
      Query rewritten,
      rewriter.RewriteIteratively(q, {"V_bad", "V1", "V2"}, &used));
  EXPECT_EQ(used, (std::vector<std::string>{"V1", "V2"}));
  (void)rewritten;
}

TEST(MultiViewTest, EnumerateAllRewritingsCoversSearchSpace) {
  Query q = ThreeTableQuery();
  ViewRegistry views = TwoViews();
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(std::vector<Query> all,
                       rewriter.EnumerateAllRewritings(q, {"V1", "V2"}));
  // Reachable states: {V1}, {V2}, {V1,V2} — 3 distinct rewritings.
  EXPECT_EQ(all.size(), 3u);
  Catalog catalog = ThreeTableCatalog();
  Database db = MakeRandomDatabase(catalog, 25, 4, 11);
  for (const Query& r : all) {
    ExpectQueriesEquivalentOn(q, r, db, &views);
  }
}

TEST(MultiViewTest, SameViewUsedTwice) {
  // A self-join query folds the same view into both occurrences.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .From("R1", {"A2", "B2"})
                .Select("A1")
                .Select("A2")
                .BuildOrDie();
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{"V1", QueryBuilder()
                                             .From("R1", {"X", "Y"})
                                             .Select("X")
                                             .Select("Y")
                                             .BuildOrDie()}));
  Rewriter rewriter(&views);
  std::vector<std::string> used;
  ASSERT_OK_AND_ASSIGN(Query once,
                       rewriter.RewriteIteratively(q, {"V1", "V1"}, &used));
  EXPECT_EQ(used.size(), 2u);
  int view_occurrences = 0;
  for (const TableRef& t : once.from) view_occurrences += t.table == "V1";
  EXPECT_EQ(view_occurrences, 2);
  Catalog catalog = ThreeTableCatalog();
  Database db = MakeRandomDatabase(catalog, 20, 4, 3);
  ExpectQueriesEquivalentOn(q, once, db, &views);
}


TEST(MultiViewTest, AggregateViewThenConjunctiveView) {
  // Folding an aggregation view introduces a scaled argument SUM(F1 * N);
  // a later conjunctive fold over the other table must carry the scaled
  // argument through (both its column and its multiplier).
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .From("R2", {"C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "D1", "s")
                .WhereCols("A1", CmpOp::kEq, "C1")
                .GroupBy("A1")
                .BuildOrDie();
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{"VAGG", QueryBuilder()
                                               .From("R1", {"A2", "B2"})
                                               .Select("A2")
                                               .SelectAgg(AggFn::kCount, "B2", "cnt")
                                               .GroupBy("A2")
                                               .BuildOrDie()}));
  ASSERT_OK(views.Register(ViewDef{"VR2", QueryBuilder()
                                              .From("R2", {"C2", "D2"})
                                              .Select("C2")
                                              .Select("D2")
                                              .BuildOrDie()}));
  Rewriter rewriter(&views);
  std::vector<std::string> used;
  ASSERT_OK_AND_ASSIGN(Query rewritten,
                       rewriter.RewriteIteratively(q, {"VAGG", "VR2"}, &used));
  ASSERT_EQ(used.size(), 2u);
  // The SUM kept its multiplicity weighting through both folds.
  EXPECT_FALSE(rewritten.select[1].arg.multiplier.empty());

  Catalog catalog = ThreeTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 30, 4, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(MultiViewTest, CanonicalKeyNormalizesIrrelevantOrder) {
  Query a = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .From("R2", {"C1", "D1"})
                .Select("A1")
                .WhereCols("A1", CmpOp::kEq, "C1")
                .WhereConst("D1", CmpOp::kLt, Value::Int64(3))
                .BuildOrDie();
  Query b = QueryBuilder()
                .From("R2", {"C1", "D1"})
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .WhereConst("D1", CmpOp::kLt, Value::Int64(3))
                .WhereCols("C1", CmpOp::kEq, "A1")
                .BuildOrDie();
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
  // Flipped inequalities normalize too.
  Query c = a;
  c.where[1] = Predicate{Operand::Constant(Value::Int64(3)), CmpOp::kGt,
                         Operand::Column("D1")};
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(c));
  // SELECT order is significant.
  Query d = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("B1")
                .Select("A1")
                .BuildOrDie();
  Query e = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .Select("B1")
                .BuildOrDie();
  EXPECT_NE(CanonicalQueryKey(d), CanonicalQueryKey(e));
}

}  // namespace
}  // namespace aqv
