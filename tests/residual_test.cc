#include <gtest/gtest.h>

#include "reason/closure.h"
#include "reason/residual.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

Operand Col(const std::string& c) { return Operand::Column(c); }
Operand Int(int64_t v) { return Operand::Constant(Value::Int64(v)); }
Predicate P(Operand a, CmpOp op, Operand b) {
  return Predicate{std::move(a), op, std::move(b)};
}

// Checks the defining property of condition C3: query ≡ view ∧ residual.
void ExpectResidualCorrect(const std::vector<Predicate>& query,
                           const std::vector<Predicate>& view,
                           const std::vector<Predicate>& residual,
                           const std::set<std::string>& allowed) {
  std::vector<Predicate> combined = view;
  combined.insert(combined.end(), residual.begin(), residual.end());
  EXPECT_TRUE(Equivalent(query, combined));
  for (const Predicate& p : residual) {
    for (const std::string& c : p.ReferencedColumns()) {
      EXPECT_TRUE(allowed.count(c) > 0) << "residual uses forbidden " << c;
    }
  }
}

TEST(ResidualTest, Example31) {
  // Conds(Q) = {A1 = C1, B1 = 6, D1 = 6}; φ(Conds(V)) = {A1 = C1, B1 = D1};
  // allowed = φ(Sel(V)) = {C1, D1}. Expected residual ≡ {D1 = 6}.
  std::vector<Predicate> query = {P(Col("A1"), CmpOp::kEq, Col("C1")),
                                  P(Col("B1"), CmpOp::kEq, Int(6)),
                                  P(Col("D1"), CmpOp::kEq, Int(6))};
  std::vector<Predicate> view = {P(Col("A1"), CmpOp::kEq, Col("C1")),
                                 P(Col("B1"), CmpOp::kEq, Col("D1"))};
  std::set<std::string> allowed = {"C1", "D1"};
  ASSERT_OK_AND_ASSIGN(std::vector<Predicate> residual,
                       ComputeResidual(query, view, allowed));
  ExpectResidualCorrect(query, view, residual, allowed);
  ASSERT_OK_AND_ASSIGN(ConstraintClosure rc, ConstraintClosure::Build(residual));
  EXPECT_TRUE(rc.Implies(P(Col("D1"), CmpOp::kEq, Int(6))));
}

TEST(ResidualTest, ViewStrongerThanQueryIsUnusable) {
  // The view enforces B = 1; the query does not.
  std::vector<Predicate> query = {P(Col("A"), CmpOp::kEq, Int(2))};
  std::vector<Predicate> view = {P(Col("B"), CmpOp::kEq, Int(1))};
  Result<std::vector<Predicate>> r = ComputeResidual(query, view, {"A", "B"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnusable);
}

TEST(ResidualTest, QueryConstraintOnProjectedOutColumnIsUnusable) {
  // The query constrains B, but B is not among the allowed columns (the
  // view projected it out).
  std::vector<Predicate> query = {P(Col("B"), CmpOp::kEq, Int(1))};
  std::vector<Predicate> view = {};
  Result<std::vector<Predicate>> r = ComputeResidual(query, view, {"A"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnusable);
}

TEST(ResidualTest, EqualityChainRescuesProjectedColumn) {
  // Query constrains B = 1 and A = B; with A allowed, residual A = 1 works
  // because the view enforces A = B.
  std::vector<Predicate> query = {P(Col("B"), CmpOp::kEq, Int(1)),
                                  P(Col("A"), CmpOp::kEq, Col("B"))};
  std::vector<Predicate> view = {P(Col("A"), CmpOp::kEq, Col("B"))};
  std::set<std::string> allowed = {"A"};
  ASSERT_OK_AND_ASSIGN(std::vector<Predicate> residual,
                       ComputeResidual(query, view, allowed));
  ExpectResidualCorrect(query, view, residual, allowed);
}

TEST(ResidualTest, EmptyResidualWhenViewMatchesExactly) {
  std::vector<Predicate> conds = {P(Col("A"), CmpOp::kEq, Col("B")),
                                  P(Col("B"), CmpOp::kLt, Int(10))};
  ASSERT_OK_AND_ASSIGN(std::vector<Predicate> residual,
                       ComputeResidual(conds, conds, {}));
  EXPECT_TRUE(residual.empty());
}

TEST(ResidualTest, InequalityResidual) {
  std::vector<Predicate> query = {P(Col("A"), CmpOp::kLt, Int(10)),
                                  P(Col("B"), CmpOp::kGe, Int(3))};
  std::vector<Predicate> view = {P(Col("A"), CmpOp::kLt, Int(10))};
  std::set<std::string> allowed = {"A", "B"};
  ASSERT_OK_AND_ASSIGN(std::vector<Predicate> residual,
                       ComputeResidual(query, view, allowed));
  ExpectResidualCorrect(query, view, residual, allowed);
}

TEST(ResidualTest, UnsatisfiableQueryYieldsFalseResidual) {
  std::vector<Predicate> query = {P(Col("A"), CmpOp::kLt, Col("A"))};
  ASSERT_OK_AND_ASSIGN(std::vector<Predicate> residual,
                       ComputeResidual(query, {}, {}));
  EXPECT_FALSE(Satisfiable(residual));
}

TEST(ResidualTest, MinimizationDropsRedundantAtoms) {
  std::vector<Predicate> conds = {P(Col("A"), CmpOp::kEq, Col("B")),
                                  P(Col("B"), CmpOp::kEq, Col("C")),
                                  P(Col("A"), CmpOp::kEq, Col("C"))};
  std::vector<Predicate> minimized = MinimizeConditions(conds, {});
  EXPECT_EQ(minimized.size(), 2u);
  EXPECT_TRUE(Equivalent(conds, minimized));
}

TEST(ResidualTest, MinimizationAgainstBase) {
  std::vector<Predicate> base = {P(Col("A"), CmpOp::kEq, Col("B"))};
  std::vector<Predicate> conds = {P(Col("A"), CmpOp::kEq, Col("B")),
                                  P(Col("B"), CmpOp::kLt, Int(5))};
  std::vector<Predicate> minimized = MinimizeConditions(conds, base);
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized[0].op, CmpOp::kLt);
}

}  // namespace
}  // namespace aqv
