// Robustness: malformed inputs must produce Status errors, never crashes;
// cyclic view definitions are cut off; the parser survives fuzzed inputs;
// the governed service (PR 4) holds the same "clean Status, no crash"
// contract for fuzzed statements and fuzzed failpoint specs.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "exec/evaluator.h"
#include "ir/builder.h"
#include "parser/parser.h"
#include "rewrite/rewriter.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

TEST(RobustnessTest, ParserSurvivesTruncations) {
  const std::string full =
      "SELECT A1, SUM(B1 * C1) AS s, SUM(B1) / SUM(C1) AS r "
      "FROM R1(A1, B1, C1), R2(D1, E1) WHERE A1 = D1 AND B1 <> 'x' "
      "GROUPBY A1 HAVING SUM(B1) >= 2.5";
  // Every prefix must either parse or fail cleanly.
  for (size_t len = 0; len <= full.size(); ++len) {
    Result<Query> r = ParseQuery(full.substr(0, len));
    if (len == full.size()) {
      EXPECT_TRUE(r.ok()) << r.status();
    }
  }
}

TEST(RobustnessTest, ParserSurvivesMutations) {
  const std::string base =
      "SELECT A1, COUNT(B1) AS n FROM R1(A1, B1) WHERE A1 < 5 GROUPBY A1";
  const char kNoise[] = "()=<>,.*/'\"xyz019 ";
  std::mt19937_64 rng(4242);
  int parsed = 0;
  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng() % mutated.size();
      mutated[pos] = kNoise[rng() % (sizeof(kNoise) - 1)];
    }
    Result<Query> r = ParseQuery(mutated);  // must not crash
    parsed += r.ok();
  }
  // Some mutations still parse (e.g. digit swaps); most fail cleanly.
  EXPECT_GT(parsed, 0);
  EXPECT_LT(parsed, 500);
}

TEST(RobustnessTest, CyclicViewDefinitionsCutOff) {
  // V_a is defined over V_b and vice versa; materialization must terminate
  // with an error rather than recursing forever. (Registration itself
  // cannot catch it: each definition is valid in isolation.)
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V_a", QueryBuilder().From("V_b", {"X1"}).Select("X1").BuildOrDie()}));
  ASSERT_OK(views.Register(ViewDef{
      "V_b", QueryBuilder().From("V_a", {"Y1"}).Select("Y1").BuildOrDie()}));
  Database db;
  Evaluator eval(&db, &views);
  Result<Table> r = eval.MaterializeView("V_a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustnessTest, SelfReferentialViewCutOff) {
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V", QueryBuilder().From("V", {"X1"}).Select("X1").BuildOrDie()}));
  Database db;
  Evaluator eval(&db, &views);
  EXPECT_FALSE(eval.MaterializeView("V").ok());
}

TEST(RobustnessTest, DeepButAcyclicViewChainWorks) {
  // A chain of 10 stacked views is within the depth limit.
  ViewRegistry views;
  Database db;
  Table t({"a"});
  t.AddRowOrDie({Value::Int64(1)});
  db.Put("T", std::move(t));
  std::string below = "T";
  for (int i = 0; i < 10; ++i) {
    std::string name = "L" + std::to_string(i);
    ASSERT_OK(views.Register(ViewDef{
        name, QueryBuilder().From(below, {"X1"}).Select("X1").BuildOrDie()}));
    below = name;
  }
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table result, eval.MaterializeView("L9"));
  EXPECT_EQ(result.num_rows(), 1u);
}

TEST(RobustnessTest, RewriterRejectsMalformedInputs) {
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V", QueryBuilder().From("T", {"X1"}).Select("X1").BuildOrDie()}));
  Rewriter rewriter(&views);
  Query bad;  // empty query
  EXPECT_FALSE(rewriter.RewritingsUsingView(bad, "V").ok());
  Query q = QueryBuilder().From("T", {"A1"}).Select("A1").BuildOrDie();
  EXPECT_EQ(rewriter.RewritingsUsingView(q, "NoSuchView").status().code(),
            StatusCode::kNotFound);
}

TEST(RobustnessTest, EvaluatorDetectsArityDrift) {
  // A view whose stored materialization has the wrong arity is rejected
  // rather than read out of bounds.
  Database db;
  Table wrong({"only_one"});
  wrong.AddRowOrDie({Value::Int64(1)});
  db.Put("V", std::move(wrong));
  Query q = QueryBuilder().From("V", {"A1", "B1"}).Select("A1").BuildOrDie();
  Evaluator eval(&db, nullptr);
  EXPECT_EQ(eval.Execute(q).status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustnessTest, FailpointSpecParserSurvivesFuzz) {
  // Mutated failpoint specs either parse or fail with InvalidArgument; a
  // bad spec never arms the site (a local registry keeps the fuzz away
  // from the process-global one).
  const std::string kBases[] = {"off", "error", "error(25)", "error(100,3)",
                                "delay(500)", "delay(500,50,2)"};
  const char kNoise[] = "(),0123456789errodlayf %-";
  std::mt19937_64 rng(TestSeed(4243));
  int accepted = 0;
  for (int i = 0; i < 500; ++i) {
    FailpointRegistry reg;
    std::string spec = kBases[rng() % (sizeof(kBases) / sizeof(kBases[0]))];
    int edits = 1 + static_cast<int>(rng() % 3);
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng() % spec.size();
      spec[pos] = kNoise[rng() % (sizeof(kNoise) - 1)];
    }
    Status s = reg.Set("site", spec);  // must not crash
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << spec;
      EXPECT_FALSE(reg.any_armed()) << spec;
    }
  }
  // Some mutations still parse (digit swaps inside numbers); most fail.
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 500);
}

TEST(RobustnessTest, GovernedServiceSurvivesFuzzedStatements) {
  // Fuzzed statements through a service running with every governance
  // limit tightened (statement cap, row budget, short deadline) must all
  // return a clean Status; the service must still answer correctly after.
  ServiceOptions options;
  options.max_statement_bytes = 96;
  options.statement_row_budget = 64;
  options.statement_deadline_micros = 1000000;
  QueryService service(options);
  Result<StatementResult> create = service.Execute("CREATE TABLE R(A, B)");
  ASSERT_TRUE(create.ok()) << create.status().ToString();
  Result<StatementResult> insert =
      service.Execute("INSERT INTO R VALUES (1, 2), (3, 4)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();

  const std::string base = "SELECT A_1, COUNT(B_1) AS n FROM R GROUPBY A_1";
  const char kNoise[] = "()=<>,.*/'\"xyz019 ;%";
  std::mt19937_64 rng(TestSeed(4244));
  int succeeded = 0;
  for (int i = 0; i < 300; ++i) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng() % 5);
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng() % mutated.size();
      mutated[pos] = kNoise[rng() % (sizeof(kNoise) - 1)];
    }
    // Occasionally blow past the statement cap too.
    if (i % 17 == 0) mutated += std::string(128, ' ');
    Result<StatementResult> r = service.Execute(mutated);  // must not crash
    succeeded += r.ok();
  }
  EXPECT_LT(succeeded, 300);

  Result<StatementResult> ok = service.Execute(base);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_TRUE(ok->table.has_value());
  EXPECT_EQ(ok->table->num_rows(), 2u);
}

}  // namespace
}  // namespace aqv
