// Robustness: malformed inputs must produce Status errors, never crashes;
// cyclic view definitions are cut off; the parser survives fuzzed inputs.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "parser/parser.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

TEST(RobustnessTest, ParserSurvivesTruncations) {
  const std::string full =
      "SELECT A1, SUM(B1 * C1) AS s, SUM(B1) / SUM(C1) AS r "
      "FROM R1(A1, B1, C1), R2(D1, E1) WHERE A1 = D1 AND B1 <> 'x' "
      "GROUPBY A1 HAVING SUM(B1) >= 2.5";
  // Every prefix must either parse or fail cleanly.
  for (size_t len = 0; len <= full.size(); ++len) {
    Result<Query> r = ParseQuery(full.substr(0, len));
    if (len == full.size()) {
      EXPECT_TRUE(r.ok()) << r.status();
    }
  }
}

TEST(RobustnessTest, ParserSurvivesMutations) {
  const std::string base =
      "SELECT A1, COUNT(B1) AS n FROM R1(A1, B1) WHERE A1 < 5 GROUPBY A1";
  const char kNoise[] = "()=<>,.*/'\"xyz019 ";
  std::mt19937_64 rng(4242);
  int parsed = 0;
  for (int i = 0; i < 500; ++i) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng() % mutated.size();
      mutated[pos] = kNoise[rng() % (sizeof(kNoise) - 1)];
    }
    Result<Query> r = ParseQuery(mutated);  // must not crash
    parsed += r.ok();
  }
  // Some mutations still parse (e.g. digit swaps); most fail cleanly.
  EXPECT_GT(parsed, 0);
  EXPECT_LT(parsed, 500);
}

TEST(RobustnessTest, CyclicViewDefinitionsCutOff) {
  // V_a is defined over V_b and vice versa; materialization must terminate
  // with an error rather than recursing forever. (Registration itself
  // cannot catch it: each definition is valid in isolation.)
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V_a", QueryBuilder().From("V_b", {"X1"}).Select("X1").BuildOrDie()}));
  ASSERT_OK(views.Register(ViewDef{
      "V_b", QueryBuilder().From("V_a", {"Y1"}).Select("Y1").BuildOrDie()}));
  Database db;
  Evaluator eval(&db, &views);
  Result<Table> r = eval.MaterializeView("V_a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustnessTest, SelfReferentialViewCutOff) {
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V", QueryBuilder().From("V", {"X1"}).Select("X1").BuildOrDie()}));
  Database db;
  Evaluator eval(&db, &views);
  EXPECT_FALSE(eval.MaterializeView("V").ok());
}

TEST(RobustnessTest, DeepButAcyclicViewChainWorks) {
  // A chain of 10 stacked views is within the depth limit.
  ViewRegistry views;
  Database db;
  Table t({"a"});
  t.AddRowOrDie({Value::Int64(1)});
  db.Put("T", std::move(t));
  std::string below = "T";
  for (int i = 0; i < 10; ++i) {
    std::string name = "L" + std::to_string(i);
    ASSERT_OK(views.Register(ViewDef{
        name, QueryBuilder().From(below, {"X1"}).Select("X1").BuildOrDie()}));
    below = name;
  }
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table result, eval.MaterializeView("L9"));
  EXPECT_EQ(result.num_rows(), 1u);
}

TEST(RobustnessTest, RewriterRejectsMalformedInputs) {
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V", QueryBuilder().From("T", {"X1"}).Select("X1").BuildOrDie()}));
  Rewriter rewriter(&views);
  Query bad;  // empty query
  EXPECT_FALSE(rewriter.RewritingsUsingView(bad, "V").ok());
  Query q = QueryBuilder().From("T", {"A1"}).Select("A1").BuildOrDie();
  EXPECT_EQ(rewriter.RewritingsUsingView(q, "NoSuchView").status().code(),
            StatusCode::kNotFound);
}

TEST(RobustnessTest, EvaluatorDetectsArityDrift) {
  // A view whose stored materialization has the wrong arity is rejected
  // rather than read out of bounds.
  Database db;
  Table wrong({"only_one"});
  wrong.AddRowOrDie({Value::Int64(1)});
  db.Put("V", std::move(wrong));
  Query q = QueryBuilder().From("V", {"A1", "B1"}).Select("A1").BuildOrDie();
  Evaluator eval(&db, nullptr);
  EXPECT_EQ(eval.Execute(q).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace aqv
