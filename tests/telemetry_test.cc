// Tests for base/telemetry: delta-encoded window sampling over a
// MetricsRegistry, the bounded ring with drop accounting, the background
// sampler thread (start/stop lifecycle, monotone windows), and the JSON
// history export.

#include "base/telemetry.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/metrics.h"

namespace aqv {
namespace {

TelemetryOptions ManualOptions(size_t capacity = 16) {
  TelemetryOptions opts;
  opts.interval_micros = 0;  // no background thread; SampleNow() drives
  opts.capacity = capacity;
  return opts;
}

TEST(TelemetryRecorderTest, WindowsAreDeltaEncoded) {
  MetricsRegistry registry;
  Counter& reqs = registry.GetCounter("svc.requests");
  Counter& idle = registry.GetCounter("svc.idle");
  Gauge& depth = registry.GetGauge("svc.depth");
  LatencyHistogram& lat = registry.GetHistogram("svc.latency");
  reqs.Increment(5);  // pre-recorder activity must not leak into window 0

  TelemetryRecorder recorder(&registry, ManualOptions());
  reqs.Increment(3);
  depth.Set(7);
  lat.Record(100);
  lat.Record(50);
  TelemetryWindowPtr w0 = recorder.SampleNow();

  EXPECT_EQ(w0->seq, 0u);
  EXPECT_EQ(w0->CounterDelta("svc.requests"), 3u);  // not 8: baseline primed
  EXPECT_EQ(w0->CounterDelta("svc.idle"), 0u);      // zero deltas dropped
  EXPECT_EQ(w0->GaugeValue("svc.depth"), 7);
  const TelemetryWindow::Hist* h = w0->Histogram("svc.latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->delta_count, 2u);
  EXPECT_EQ(h->delta_sum_micros, 150u);
  EXPECT_EQ(h->max_micros, 100u);

  // A quiet second window: the counter that moved before is absent now.
  depth.Set(2);
  TelemetryWindowPtr w1 = recorder.SampleNow();
  EXPECT_EQ(w1->seq, 1u);
  EXPECT_EQ(w1->CounterDelta("svc.requests"), 0u);
  EXPECT_EQ(w1->Histogram("svc.latency"), nullptr);
  EXPECT_EQ(w1->GaugeValue("svc.depth"), 2);
  EXPECT_GE(w1->start_micros, w0->end_micros);
}

TEST(TelemetryRecorderTest, RingEvictsOldestAndCountsDrops) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("ticks");
  TelemetryRecorder recorder(&registry, ManualOptions(/*capacity=*/4));
  for (int i = 0; i < 10; ++i) {
    c.Increment();
    recorder.SampleNow();
  }
  EXPECT_EQ(recorder.windows_sampled(), 10u);
  EXPECT_EQ(recorder.windows_dropped(), 6u);

  std::vector<TelemetryWindowPtr> history = recorder.History();
  ASSERT_EQ(history.size(), 4u);
  // Oldest first, consecutive, ending at the newest window.
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i]->seq, 6u + i);
  }
  // History(n) trims from the old end.
  std::vector<TelemetryWindowPtr> last2 = recorder.History(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0]->seq, 8u);
  EXPECT_EQ(last2[1]->seq, 9u);

  // A held window stays valid after eviction.
  TelemetryWindowPtr pinned = history[0];
  for (int i = 0; i < 8; ++i) recorder.SampleNow();
  EXPECT_EQ(pinned->seq, 6u);
  EXPECT_EQ(pinned->CounterDelta("ticks"), 1u);
}

TEST(TelemetryRecorderTest, BackgroundSamplerCutsMonotoneWindows) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("work");
  TelemetryOptions opts;
  opts.interval_micros = 2000;  // 2 ms ticks
  opts.capacity = 64;
  TelemetryRecorder recorder(&registry, opts);
  recorder.Start();
  EXPECT_TRUE(recorder.running());

  // Drive some metric traffic while waiting for at least 5 windows.
  for (int spin = 0; spin < 500 && recorder.windows_sampled() < 5; ++spin) {
    c.Increment();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  recorder.Stop();
  EXPECT_FALSE(recorder.running());

  std::vector<TelemetryWindowPtr> history = recorder.History();
  ASSERT_GE(history.size(), 5u);
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_EQ(history[i]->seq, history[i - 1]->seq + 1);
    EXPECT_EQ(history[i]->start_micros, history[i - 1]->end_micros)
        << "windows must tile the timeline";
    EXPECT_GT(history[i]->end_micros, history[i]->start_micros);
    EXPECT_GE(history[i]->unix_millis, history[i - 1]->unix_millis);
  }
  // Deltas across all windows account for every increment that landed
  // before the final window closed (no double counting, no loss).
  uint64_t total = 0;
  for (const auto& w : history) total += w->CounterDelta("work");
  EXPECT_LE(total, c.value());

  // Stop is idempotent and Start works again after it.
  recorder.Stop();
  recorder.Start();
  EXPECT_TRUE(recorder.running());
  recorder.Stop();
}

TEST(TelemetryRecorderTest, StartIsNoOpWhenIntervalZero) {
  MetricsRegistry registry;
  TelemetryRecorder recorder(&registry, ManualOptions());
  recorder.Start();
  EXPECT_FALSE(recorder.running());  // no thread without an interval
  recorder.SampleNow();              // on-demand sampling still works
  EXPECT_EQ(recorder.windows_sampled(), 1u);
}

TEST(TelemetryRecorderTest, HistoryJsonEscapesNamesAndNestsDeltas) {
  MetricsRegistry registry;
  TelemetryRecorder recorder(&registry, ManualOptions());
  // A labeled metric name carries quotes and backslashes into the JSON key.
  registry.GetCounter(PromLabeledName("errs", "code", "q\"b\\s")).Increment(2);
  registry.GetGauge("depth").Set(-3);
  registry.GetHistogram("lat").Record(10);
  recorder.SampleNow();
  std::string json = recorder.HistoryJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"seq\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"unix_millis\":"), std::string::npos);
  EXPECT_NE(json.find("\"duration_micros\":"), std::string::npos);
  // The stored name is errs{code="q\"b\\s"}; JSON-escaping doubles every
  // backslash and escapes the quotes.
  EXPECT_NE(json.find("\"errs{code=\\\"q\\\\\\\"b\\\\\\\\s\\\"}\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"depth\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"lat\":{\"count\":1,\"sum_micros\":10"),
            std::string::npos);

  // An empty history is a well-formed empty array.
  MetricsRegistry empty_registry;
  TelemetryRecorder empty(&empty_registry, ManualOptions());
  EXPECT_EQ(empty.HistoryJson(), "[]");
}

TEST(TelemetryRecorderTest, ConcurrentSamplersAndReadersAreSafe) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("spin");
  TelemetryRecorder recorder(&registry, ManualOptions(/*capacity=*/8));
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        c.Increment();
        recorder.SampleNow();
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      std::vector<TelemetryWindowPtr> h = recorder.History();
      for (const auto& w : h) {
        ASSERT_NE(w, nullptr);
        (void)w->CounterDelta("spin");
      }
    }
  });
  for (auto& th : threads) th.join();
  EXPECT_EQ(recorder.windows_sampled(), 400u);
  // Every increment is attributed to exactly one window overall; with the
  // ring evicting we can only check the invariant on sampled counts.
  EXPECT_EQ(recorder.windows_dropped(), 400u - 8u);
}

}  // namespace
}  // namespace aqv
