#include <cstdio>

#include <gtest/gtest.h>

#include "exec/csv.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

Table SampleTable() {
  Table t({"id", "name", "score"});
  t.AddRowOrDie({Value::Int64(1), Value::String("ana"), Value::Double(2.5)});
  t.AddRowOrDie({Value::Int64(2), Value::String("bo\"b"), Value::Null()});
  t.AddRowOrDie({Value::Int64(3), Value::String("line,comma"), Value::Int64(7)});
  return t;
}

TEST(CsvTest, RendersHeaderAndRows) {
  std::string csv = ToCsv(SampleTable());
  EXPECT_NE(csv.find("id,name,score\n"), std::string::npos);
  EXPECT_NE(csv.find("1,\"ana\",2.5\n"), std::string::npos);
  EXPECT_NE(csv.find("\"bo\"\"b\""), std::string::npos);   // doubled quote
  EXPECT_NE(csv.find("\"line,comma\""), std::string::npos);  // comma kept
}

TEST(CsvTest, RoundTripsExactly) {
  Table original = SampleTable();
  ASSERT_OK_AND_ASSIGN(Table parsed, FromCsv(ToCsv(original)));
  EXPECT_EQ(parsed.columns(), original.columns());
  EXPECT_TRUE(MultisetEqual(parsed, original))
      << DescribeMultisetDifference(parsed, original);
}

TEST(CsvTest, FieldTyping) {
  ASSERT_OK_AND_ASSIGN(Table t, FromCsv("a,b,c,d\n42,3.5,\"42\",\n"));
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0], Value::Int64(42));
  EXPECT_EQ(t.rows()[0][1], Value::Double(3.5));
  EXPECT_EQ(t.rows()[0][2], Value::String("42"));  // quoted stays a string
  EXPECT_TRUE(t.rows()[0][3].is_null());            // empty field is NULL
}

TEST(CsvTest, UnquotedTextBecomesString) {
  ASSERT_OK_AND_ASSIGN(Table t, FromCsv("x\nhello\n12abc\n"));
  EXPECT_EQ(t.rows()[0][0], Value::String("hello"));
  EXPECT_EQ(t.rows()[1][0], Value::String("12abc"));
}

TEST(CsvTest, SkipsBlankLinesAndHandlesCrLf) {
  ASSERT_OK_AND_ASSIGN(Table t, FromCsv("a,b\r\n1,2\r\n\r\n3,4\r\n"));
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(FromCsv("").ok());
  EXPECT_FALSE(FromCsv("a,b\n1\n").ok());          // arity mismatch
  EXPECT_FALSE(FromCsv("a\n\"unterminated\n").ok());
  EXPECT_EQ(ReadCsvFile("/nonexistent/path.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(CsvTest, FileRoundTrip) {
  Table original = SampleTable();
  std::string path = ::testing::TempDir() + "/aqv_csv_test.csv";
  ASSERT_OK(WriteCsvFile(original, path));
  ASSERT_OK_AND_ASSIGN(Table parsed, ReadCsvFile(path));
  EXPECT_TRUE(MultisetEqual(parsed, original));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aqv
