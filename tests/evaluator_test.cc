#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "tests/test_util.h"
#include "workload/random_db.h"
#include "workload/random_query.h"

namespace aqv {
namespace {

Row R(std::initializer_list<int64_t> vals) {
  Row row;
  for (int64_t v : vals) row.push_back(Value::Int64(v));
  return row;
}

Database SmallDb() {
  Database db;
  Table r1({"a", "b"});
  r1.AddRowOrDie(R({1, 10}));
  r1.AddRowOrDie(R({1, 20}));
  r1.AddRowOrDie(R({2, 30}));
  r1.AddRowOrDie(R({2, 30}));  // duplicate row: multiset semantics
  db.Put("R1", std::move(r1));
  Table r2({"c", "d"});
  r2.AddRowOrDie(R({1, 100}));
  r2.AddRowOrDie(R({2, 200}));
  r2.AddRowOrDie(R({3, 300}));
  db.Put("R2", std::move(r2));
  return db;
}

TEST(EvaluatorTest, ConjunctiveProjectionKeepsDuplicates) {
  Database db = SmallDb();
  Query q = QueryBuilder().From("R1", {"A", "B"}).Select("A").BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  EXPECT_EQ(result.num_rows(), 4u);
  EXPECT_EQ(result.columns(), (std::vector<std::string>{"A"}));
}

TEST(EvaluatorTest, DistinctRemovesDuplicates) {
  Database db = SmallDb();
  Query q =
      QueryBuilder().From("R1", {"A", "B"}).Distinct().Select("A").BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  EXPECT_EQ(result.num_rows(), 2u);
}

TEST(EvaluatorTest, JoinWithFilter) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R1", {"A", "B"})
                .From("R2", {"C", "D"})
                .Select("B")
                .Select("D")
                .WhereCols("A", CmpOp::kEq, "C")
                .WhereConst("B", CmpOp::kGe, Value::Int64(20))
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  // Matching rows: (1,20)x(1,100), (2,30)x(2,200) twice.
  EXPECT_EQ(result.num_rows(), 3u);
}

TEST(EvaluatorTest, HashAndReferencePlansAgree) {
  RandomWorkloadGen gen(7);
  RandomPairConfig config;
  config.query_aggregation = false;
  config.equality_only = false;
  for (int i = 0; i < 25; ++i) {
    QueryViewPair pair = gen.NextPair(config);
    Database db = gen.NextDatabase(12, 3);
    Evaluator hash_eval(&db, nullptr, EvalOptions{true});
    Evaluator ref_eval(&db, nullptr, EvalOptions{false});
    ASSERT_OK_AND_ASSIGN(Table a, hash_eval.Execute(pair.query));
    ASSERT_OK_AND_ASSIGN(Table b, ref_eval.Execute(pair.query));
    EXPECT_TRUE(MultisetEqual(a, b))
        << ToSql(pair.query) << "\n" << DescribeMultisetDifference(a, b);
  }
}

TEST(EvaluatorTest, GroupAggregateQuery) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R1", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kSum, "B", "total")
                .SelectAgg(AggFn::kCount, "B", "cnt")
                .GroupBy("A")
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  ASSERT_EQ(result.num_rows(), 2u);
  Table expected({"A", "total", "cnt"});
  expected.AddRowOrDie(R({1, 30, 2}));
  expected.AddRowOrDie(R({2, 60, 2}));
  EXPECT_TRUE(MultisetEqual(result, expected))
      << DescribeMultisetDifference(result, expected);
}

TEST(EvaluatorTest, HavingFiltersGroups) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R1", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kSum, "B", "total")
                .GroupBy("A")
                .HavingAgg(AggFn::kSum, "B", CmpOp::kGt, Value::Int64(40))
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0], Value::Int64(2));
}

TEST(EvaluatorTest, HavingOnAggregateNotInSelect) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R1", {"A", "B"})
                .Select("A")
                .GroupBy("A")
                .HavingAgg(AggFn::kCount, "B", CmpOp::kEq, Value::Int64(2))
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  EXPECT_EQ(result.num_rows(), 2u);
}

TEST(EvaluatorTest, RatioSelectItem) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R1", {"A", "B"})
                .Select("A")
                .GroupBy("A")
                .BuildOrDie();
  q.select.push_back(
      SelectItem::MakeRatio(AggArg{"B", ""}, AggArg{"B", ""}, "one"));
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  for (const Row& row : result.rows()) {
    EXPECT_EQ(row[1], Value::Double(1.0));
  }
}

TEST(EvaluatorTest, GlobalAggregate) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R1", {"A", "B"})
                .SelectAgg(AggFn::kCount, "A", "n")
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0], Value::Int64(4));
}

TEST(EvaluatorTest, ViewMaterializationOnDemand) {
  Database db = SmallDb();
  ViewRegistry views;
  ASSERT_OK(views.Register(
      ViewDef{"V", QueryBuilder()
                       .From("R1", {"x", "y"})
                       .Select("x")
                       .SelectAgg(AggFn::kSum, "y", "s")
                       .GroupBy("x")
                       .BuildOrDie()}));
  Query q = QueryBuilder()
                .From("V", {"A", "S"})
                .Select("A")
                .Select("S")
                .WhereConst("S", CmpOp::kGt, Value::Int64(40))
                .BuildOrDie();
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][1], Value::Int64(60));
  EXPECT_EQ(eval.stats().views_materialized, 1u);
  // Second use hits the cache.
  ASSERT_OK_AND_ASSIGN(Table again, eval.Execute(q));
  EXPECT_EQ(eval.stats().views_materialized, 1u);
}

TEST(EvaluatorTest, StoredViewContentsWin) {
  // A materialized view stored in the Database is served as-is.
  Database db = SmallDb();
  Table stored({"A", "S"});
  stored.AddRowOrDie(R({9, 9}));
  db.Put("V", std::move(stored));
  ViewRegistry views;
  ASSERT_OK(views.Register(
      ViewDef{"V", QueryBuilder().From("R1", {"x", "y"}).Select("x").Select("y").BuildOrDie()}));
  Query q = QueryBuilder().From("V", {"A", "S"}).Select("A").BuildOrDie();
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][0], Value::Int64(9));
}

TEST(EvaluatorTest, ErrorsOnUnknownTableAndArityMismatch) {
  Database db = SmallDb();
  Evaluator eval(&db);
  Query q1 = QueryBuilder().From("Nope", {"A"}).Select("A").BuildOrDie();
  EXPECT_EQ(eval.Execute(q1).status().code(), StatusCode::kNotFound);
  Query q2 = QueryBuilder().From("R1", {"A"}).Select("A").BuildOrDie();
  EXPECT_EQ(eval.Execute(q2).status().code(), StatusCode::kInvalidArgument);
}

TEST(EvaluatorTest, CartesianWhenNoJoinPredicate) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R1", {"A", "B"})
                .From("R2", {"C", "D"})
                .Select("A")
                .Select("C")
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  EXPECT_EQ(result.num_rows(), 12u);
}

TEST(EvaluatorTest, AggregationOverJoin) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R1", {"A", "B"})
                .From("R2", {"C", "D"})
                .Select("A")
                .SelectAgg(AggFn::kMax, "D", "m")
                .WhereCols("A", CmpOp::kEq, "C")
                .GroupBy("A")
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  Table expected({"A", "m"});
  expected.AddRowOrDie(R({1, 100}));
  expected.AddRowOrDie(R({2, 200}));
  EXPECT_TRUE(MultisetEqual(result, expected));
}

}  // namespace
}  // namespace aqv
