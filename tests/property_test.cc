#include <algorithm>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/printer.h"
#include "rewrite/multiview.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "workload/random_query.h"

namespace aqv {
namespace {

// Core soundness property (Theorems 3.1, 4.1): whenever the rewriter emits
// Q', Q and Q' evaluate to the same multiset on random databases.
void RunSoundnessSweep(const RandomPairConfig& config, uint64_t seed,
                       int pairs, int dbs_per_pair, int* usable_count) {
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  for (int i = 0; i < pairs; ++i) {
    QueryViewPair pair = gen.NextPair(config);
    ViewRegistry views;
    ASSERT_OK(views.Register(pair.view));
    Rewriter rewriter(&views);
    Result<std::vector<Rewriting>> rewritings =
        rewriter.RewritingsUsingView(pair.query, pair.view.name);
    ASSERT_TRUE(rewritings.ok())
        << rewritings.status() << "\nQ: " << ToSql(pair.query)
        << "\nV: " << ToSql(pair.view);
    if (rewritings->empty()) continue;
    ++*usable_count;
    for (int d = 0; d < dbs_per_pair; ++d) {
      Database db = gen.NextDatabase(15, 3);
      for (const Rewriting& r : *rewritings) {
        SCOPED_TRACE("Q:  " + ToSql(pair.query) + "\nV:  " + ToSql(pair.view) +
                     "\nQ': " + ToSql(r.query));
        ExpectQueriesEquivalentOn(pair.query, r.query, db, &views);
      }
    }
  }
}

class SoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SoundnessTest, AggregationQueryConjunctiveView) {
  RandomPairConfig config;
  config.query_aggregation = true;
  config.view_aggregation = false;
  int usable = 0;
  RunSoundnessSweep(config, TestSeed(1000 + GetParam()), 40, 2, &usable);
  // The generator is biased towards usable pairs; make sure the sweep is
  // not vacuous.
  if (GetParam() == 0) {
    EXPECT_GT(usable, 0);
  }
}

TEST_P(SoundnessTest, ConjunctiveQueryConjunctiveView) {
  RandomPairConfig config;
  config.query_aggregation = false;
  config.view_aggregation = false;
  int usable = 0;
  RunSoundnessSweep(config, TestSeed(2000 + GetParam()), 40, 2, &usable);
  if (GetParam() == 0) {
    EXPECT_GT(usable, 0);
  }
}

TEST_P(SoundnessTest, AggregationQueryAggregationView) {
  RandomPairConfig config;
  config.query_aggregation = true;
  config.view_aggregation = true;
  int usable = 0;
  RunSoundnessSweep(config, TestSeed(3000 + GetParam()), 40, 2, &usable);
  if (GetParam() == 0) {
    EXPECT_GT(usable, 0);
  }
}

TEST_P(SoundnessTest, WithInequalities) {
  RandomPairConfig config;
  config.query_aggregation = true;
  config.view_aggregation = false;
  config.equality_only = false;
  int usable = 0;
  RunSoundnessSweep(config, TestSeed(4000 + GetParam()), 40, 2, &usable);
  (void)usable;
}

TEST_P(SoundnessTest, WithHaving) {
  RandomPairConfig config;
  config.query_aggregation = true;
  config.view_aggregation = false;
  config.allow_having = true;
  int usable = 0;
  RunSoundnessSweep(config, TestSeed(5000 + GetParam()), 40, 2, &usable);
  (void)usable;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SoundnessTest, ::testing::Range(0, 5));

// Theorem 3.2, Church–Rosser: with two views derived from the same query,
// the two application orders reach the same final rewriting.
TEST(ChurchRosserPropertyTest, BothOrdersAgree) {
  RandomPairConfig config;
  config.query_aggregation = true;
  config.view_aggregation = false;
  int checked = 0;
  uint64_t base = TestSeed(700);
  for (int i = 0; i < 60 && checked < 10; ++i) {
    SCOPED_TRACE(SeedTrace(base + i));
    RandomWorkloadGen gen(base + i);
    QueryViewPair p1 = gen.NextPair(config);
    ViewDef v2 = gen.NextPair(config).view;  // independent second view
    v2.name = "W";
    ViewRegistry views;
    ASSERT_OK(views.Register(p1.view));
    if (!views.Register(v2).ok()) continue;
    Rewriter rewriter(&views);
    std::vector<std::string> used_fwd, used_bwd;
    Result<Query> fwd = rewriter.RewriteIteratively(
        p1.query, {p1.view.name, "W"}, &used_fwd);
    Result<Query> bwd = rewriter.RewriteIteratively(
        p1.query, {"W", p1.view.name}, &used_bwd);
    ASSERT_TRUE(fwd.ok());
    ASSERT_TRUE(bwd.ok());
    // Order-independence is only claimed when both orders incorporate the
    // same set of views.
    std::sort(used_fwd.begin(), used_fwd.end());
    std::sort(used_bwd.begin(), used_bwd.end());
    if (used_fwd != used_bwd || used_fwd.empty()) continue;
    ++checked;
    EXPECT_EQ(CanonicalQueryKey(*fwd), CanonicalQueryKey(*bwd))
        << "Q: " << ToSql(p1.query) << "\nfwd: " << ToSql(*fwd)
        << "\nbwd: " << ToSql(*bwd);
  }
  EXPECT_GT(checked, 0);
}

// Completeness flavor (Theorem 3.1, equality-only): a refusal must be
// semantically justified. For pairs where the rewriter refuses every
// mapping, we search small databases for a counterexample witnessing that
// *this view's contents plus the query's retained information* cannot
// determine the answer: two databases that agree on the view output but
// disagree on the query output. Finding one confirms the refusal. (We skip
// pairs where no witness is found within the budget — absence of a witness
// is not evidence of incompleteness.)
TEST(CompletenessSpotCheck, RefusedFullCoverViewsHaveWitnesses) {
  RandomPairConfig config;
  config.query_aggregation = false;
  config.view_aggregation = false;
  config.max_query_tables = 1;
  config.max_predicates = 2;
  int refused = 0, witnessed = 0;
  uint64_t base = TestSeed(9000);
  for (int i = 0; i < 80; ++i) {
    SCOPED_TRACE(SeedTrace(base + i));
    RandomWorkloadGen gen(base + i);
    QueryViewPair pair = gen.NextPair(config);
    ViewRegistry views;
    ASSERT_OK(views.Register(pair.view));
    Rewriter rewriter(&views);
    ASSERT_OK_AND_ASSIGN(std::vector<Rewriting> rewritings,
                         rewriter.RewritingsUsingView(pair.query, pair.view.name));
    if (!rewritings.empty()) continue;
    ++refused;
    // Search for two databases with equal view output but different query
    // output.
    Table first_view_out, first_query_out;
    bool have_first = false;
    for (int d = 0; d < 30; ++d) {
      Database db = gen.NextDatabase(6, 2);
      Evaluator eval(&db, &views);
      Result<Table> vout = eval.Execute(pair.view.query);
      Result<Table> qout = eval.Execute(pair.query);
      ASSERT_TRUE(vout.ok() && qout.ok());
      if (!have_first) {
        first_view_out = *vout;
        first_query_out = *qout;
        have_first = true;
        continue;
      }
      if (MultisetEqual(first_view_out, *vout) &&
          !MultisetEqual(first_query_out, *qout)) {
        ++witnessed;
        break;
      }
    }
  }
  // The sweep must exercise the refusal path, and at least some refusals
  // should come with a concrete witness.
  EXPECT_GT(refused, 0);
  EXPECT_GT(witnessed, 0);
}

}  // namespace
}  // namespace aqv
