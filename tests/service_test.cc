// Tests for src/service: statement dispatch, rewrite-plan cache correctness
// (hits serve the same rows as cold plans; INSERT/REFRESH/DDL invalidate),
// and multi-threaded execution matching single-threaded results. The
// concurrency tests are the TSan target for the latch discipline:
//
//   cmake -B build-tsan -S . -DAQV_SANITIZE=thread
//   cmake --build build-tsan -j && ctest --test-dir build-tsan -R Service

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/trace.h"
#include "exec/table.h"
#include "ir/fingerprint.h"
#include "parser/parser.h"
#include "service/query_service.h"
#include "tests/test_util.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

// The Example 1.1 query in shell syntax against the telephony catalog
// (occurrence 1 = Calls, occurrence 2 = Calling_Plans).
std::string TelephonyQuery(int year, double threshold) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "SELECT Plan_Id_2, Plan_Name_2, SUM(Charge_1) AS Total "
                "FROM Calls, Calling_Plans "
                "WHERE Plan_Id_1 = Plan_Id_2 AND Year_1 = %d "
                "GROUPBY Plan_Id_2, Plan_Name_2 HAVING SUM(Charge_1) < %.1f",
                year, threshold);
  return buf;
}

std::unique_ptr<QueryService> MakeTelephonyService(
    ServiceOptions options = ServiceOptions{}, int num_calls = 2000) {
  TelephonyParams params;
  params.num_calls = num_calls;
  TelephonyWorkload w = MakeTelephonyWorkload(params);
  auto service = std::make_unique<QueryService>(options);
  EXPECT_OK(service->Bootstrap(std::move(w.catalog), std::move(w.db),
                               std::move(w.views)));
  Result<StatementResult> refreshed = service->Execute("REFRESH V1");
  EXPECT_OK(refreshed.status());
  return service;
}

StatementResult ExecuteOrDie(QueryService& service, const std::string& stmt) {
  Result<StatementResult> r = service.Execute(stmt);
  EXPECT_TRUE(r.ok()) << "statement: " << stmt
                      << "\nstatus: " << r.status().ToString();
  return r.ok() ? *std::move(r) : StatementResult{};
}

TEST(ServiceStatementTest, DialectRoundTrip) {
  QueryService service;
  EXPECT_OK(service.Execute("CREATE TABLE R(A, B) KEY(A)").status());
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1, 10), (2, 20)").status());

  StatementResult rows = ExecuteOrDie(service, "SELECT A_1, B_1 FROM R");
  ASSERT_TRUE(rows.table.has_value());
  EXPECT_EQ(rows.table->num_rows(), 2u);

  EXPECT_NE(ExecuteOrDie(service, "TABLES").message.find("R(A, B)"),
            std::string::npos);
  EXPECT_NE(ExecuteOrDie(service, "STATS").message.find("plan cache"),
            std::string::npos);
  EXPECT_FALSE(service.Execute("FROB R").ok());

  // Comments and blank lines are accepted and do nothing.
  EXPECT_OK(service.Execute("# a comment").status());
  EXPECT_OK(service.Execute("   ").status());
}

TEST(ServicePlanCacheTest, HitReturnsSameRowsAsColdPlan) {
  std::unique_ptr<QueryService> service = MakeTelephonyService();
  std::string q = TelephonyQuery(1995, 1e9);

  StatementResult cold = ExecuteOrDie(*service, q);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(cold.used_materialized_view);
  ASSERT_TRUE(cold.table.has_value());

  StatementResult warm = ExecuteOrDie(*service, q);
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_TRUE(warm.table.has_value());
  EXPECT_TRUE(MultisetEqual(*cold.table, *warm.table))
      << DescribeMultisetDifference(*cold.table, *warm.table);

  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.queries_served, 2u);
  EXPECT_GE(stats.rewrites_applied, 2u);
}

TEST(ServicePlanCacheTest, CanonicalFingerprintNormalizesConjunctOrder) {
  std::unique_ptr<QueryService> service = MakeTelephonyService();
  StatementResult first = ExecuteOrDie(
      *service,
      "SELECT Plan_Id_2, SUM(Charge_1) AS Total FROM Calls, Calling_Plans "
      "WHERE Plan_Id_1 = Plan_Id_2 AND Year_1 = 1995 GROUPBY Plan_Id_2");
  EXPECT_FALSE(first.cache_hit);
  // Same query: conjuncts reordered, both predicates mirrored.
  StatementResult second = ExecuteOrDie(
      *service,
      "SELECT Plan_Id_2, SUM(Charge_1) AS Total FROM Calls, Calling_Plans "
      "WHERE 1995 = Year_1 AND Plan_Id_2 = Plan_Id_1 GROUPBY Plan_Id_2");
  EXPECT_TRUE(second.cache_hit);
  ASSERT_TRUE(first.table.has_value() && second.table.has_value());
  EXPECT_TRUE(MultisetEqual(*first.table, *second.table));
}

TEST(ServicePlanCacheTest, FingerprintDistinguishesDifferentQueries) {
  ASSERT_OK_AND_ASSIGN(Query a,
                       ParseQuery("SELECT A1 FROM R1(A1, B1) WHERE B1 = 1"));
  ASSERT_OK_AND_ASSIGN(Query b,
                       ParseQuery("SELECT A1 FROM R1(A1, B1) WHERE B1 = 2"));
  ASSERT_OK_AND_ASSIGN(
      Query a_mirrored, ParseQuery("SELECT A1 FROM R1(A1, B1) WHERE 1 = B1"));
  EXPECT_NE(CanonicalCacheKey(a), CanonicalCacheKey(b));
  EXPECT_EQ(CanonicalCacheKey(a), CanonicalCacheKey(a_mirrored));
  EXPECT_EQ(QueryFingerprint(a), QueryFingerprint(a_mirrored));
}

TEST(ServicePlanCacheTest, InsertInvalidatesOnlyAffectedEntries) {
  QueryService service;
  EXPECT_OK(service.Execute("CREATE TABLE R(A, B)").status());
  EXPECT_OK(service.Execute("CREATE TABLE S(C, D)").status());
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1, 10), (1, 20)").status());
  EXPECT_OK(service.Execute("INSERT INTO S VALUES (7, 70)").status());

  std::string qr = "SELECT A_1, SUM(B_1) AS T FROM R GROUPBY A_1";
  std::string qs = "SELECT C_1, SUM(D_1) AS T FROM S GROUPBY C_1";
  ExecuteOrDie(service, qr);
  ExecuteOrDie(service, qs);
  EXPECT_TRUE(ExecuteOrDie(service, qr).cache_hit);
  EXPECT_TRUE(ExecuteOrDie(service, qs).cache_hit);

  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1, 30)").status());

  // R's entry was dropped and the fresh execution sees the new row ...
  StatementResult after = ExecuteOrDie(service, qr);
  EXPECT_FALSE(after.cache_hit);
  ASSERT_TRUE(after.table.has_value());
  ASSERT_EQ(after.table->num_rows(), 1u);
  EXPECT_EQ(after.table->rows()[0][1], Value::Int64(60));
  // ... while S's entry survived the unrelated INSERT.
  EXPECT_TRUE(ExecuteOrDie(service, qs).cache_hit);
  EXPECT_GE(service.Stats().plan_cache_invalidated, 1u);
}

TEST(ServicePlanCacheTest, RefreshInvalidatesViewDependents) {
  std::unique_ptr<QueryService> service = MakeTelephonyService();
  std::string q = TelephonyQuery(1995, 1e9);

  StatementResult cold = ExecuteOrDie(*service, q);
  EXPECT_TRUE(cold.used_materialized_view);
  EXPECT_TRUE(ExecuteOrDie(*service, q).cache_hit);

  // An INSERT into the base table drops the entry (its dependency set
  // contains Calls via both the original and the view's definition).
  EXPECT_OK(service
                ->Execute("INSERT INTO Calls VALUES "
                          "(990001, 5, 3, 14, 6, 1995, 4.5)")
                .status());
  StatementResult after_insert = ExecuteOrDie(*service, q);
  EXPECT_FALSE(after_insert.cache_hit);

  // Re-prime, then REFRESH V1: the view's stored contents changed, so the
  // dependent entry is dropped again and the served rows pick up the new
  // call through the refreshed summary.
  EXPECT_TRUE(ExecuteOrDie(*service, q).cache_hit);
  EXPECT_OK(service->Execute("REFRESH V1").status());
  StatementResult after_refresh = ExecuteOrDie(*service, q);
  EXPECT_FALSE(after_refresh.cache_hit);
  EXPECT_TRUE(after_refresh.used_materialized_view);

  // Ground truth: a cache-less service fed the same statements.
  ServiceOptions no_cache;
  no_cache.enable_plan_cache = false;
  std::unique_ptr<QueryService> witness = MakeTelephonyService(no_cache);
  EXPECT_OK(witness
                ->Execute("INSERT INTO Calls VALUES "
                          "(990001, 5, 3, 14, 6, 1995, 4.5)")
                .status());
  EXPECT_OK(witness->Execute("REFRESH V1").status());
  StatementResult expected = ExecuteOrDie(*witness, q);
  ASSERT_TRUE(expected.table.has_value() && after_refresh.table.has_value());
  EXPECT_TRUE(MultisetAlmostEqual(*expected.table, *after_refresh.table))
      << DescribeMultisetDifference(*expected.table, *after_refresh.table);
  EXPECT_EQ(witness->Stats().plan_cache_hits, 0u);
}

TEST(ServicePlanCacheTest, DdlClearsWholeCache) {
  QueryService service;
  EXPECT_OK(service.Execute("CREATE TABLE R(A, B)").status());
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1, 2), (3, 4)").status());
  std::string q = "SELECT A_1 FROM R WHERE B_1 > 1";
  ExecuteOrDie(service, q);
  EXPECT_TRUE(ExecuteOrDie(service, q).cache_hit);

  EXPECT_OK(service.Execute("CREATE TABLE Unrelated(X)").status());
  EXPECT_FALSE(ExecuteOrDie(service, q).cache_hit);
  EXPECT_EQ(service.Stats().plan_cache_size, 1u);
}

TEST(ServicePlanCacheTest, CreateMaterializedViewFlipsPlanToRewrite) {
  QueryService service;
  EXPECT_OK(service.Execute("CREATE TABLE Sales(Shop, Amount)").status());
  // Integer amounts: SUM re-association is exact, so results must be equal.
  EXPECT_OK(service
                .Execute("INSERT INTO Sales VALUES (1, 10), (1, 11), (2, 20), "
                         "(2, 21), (3, 30)")
                .status());
  std::string q =
      "SELECT Shop_1, SUM(Amount_1) AS T FROM Sales GROUPBY Shop_1";
  StatementResult base = ExecuteOrDie(service, q);
  EXPECT_FALSE(base.used_materialized_view);
  EXPECT_TRUE(ExecuteOrDie(service, q).cache_hit);

  EXPECT_OK(service
                .Execute("CREATE MATERIALIZED VIEW Totals AS SELECT Shop_1, "
                         "SUM(Amount_1) AS T FROM Sales GROUPBY Shop_1")
                .status());
  StatementResult rewritten = ExecuteOrDie(service, q);
  EXPECT_FALSE(rewritten.cache_hit);  // DDL cleared the cache
  EXPECT_TRUE(rewritten.used_materialized_view);
  ASSERT_TRUE(base.table.has_value() && rewritten.table.has_value());
  EXPECT_TRUE(MultisetEqual(*base.table, *rewritten.table))
      << DescribeMultisetDifference(*base.table, *rewritten.table);
}

TEST(ServicePlanCacheTest, LruEvictsLeastRecentlyUsed) {
  ServiceOptions options;
  options.plan_cache_capacity = 2;
  QueryService service(options);
  EXPECT_OK(service.Execute("CREATE TABLE R(A, B)").status());
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1, 2)").status());

  std::string q1 = "SELECT A_1 FROM R WHERE B_1 = 1";
  std::string q2 = "SELECT A_1 FROM R WHERE B_1 = 2";
  std::string q3 = "SELECT A_1 FROM R WHERE B_1 = 3";
  ExecuteOrDie(service, q1);
  ExecuteOrDie(service, q2);
  ExecuteOrDie(service, q1);  // q1 now MRU
  ExecuteOrDie(service, q3);  // evicts q2
  EXPECT_EQ(service.Stats().plan_cache_size, 2u);
  EXPECT_TRUE(ExecuteOrDie(service, q1).cache_hit);
  EXPECT_FALSE(ExecuteOrDie(service, q2).cache_hit);
}

// N threads x M mixed statements. Shared read-only telephony SELECTs are
// checked against single-threaded ground truth; each thread additionally
// runs a private CREATE/INSERT/SELECT sequence (concurrent DDL + writes)
// whose results are exactly predictable. Failures are collected and
// asserted on the main thread.
TEST(ServiceConcurrencyTest, MixedStatementsMatchSingleThreadedExecution) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 12;

  std::unique_ptr<QueryService> service = MakeTelephonyService();
  std::vector<std::string> pool = {
      TelephonyQuery(1994, 1e9), TelephonyQuery(1995, 1e9),
      TelephonyQuery(1996, 1e9), TelephonyQuery(1995, 500.0),
      "SELECT Plan_Id_1, SUM(Charge_1) AS T FROM Calls GROUPBY Plan_Id_1",
  };

  // Ground truth, single-threaded, before any concurrency.
  std::vector<Table> expected;
  for (const std::string& q : pool) {
    StatementResult r = ExecuteOrDie(*service, q);
    ASSERT_TRUE(r.table.has_value()) << q;
    expected.push_back(*std::move(r.table));
  }

  std::atomic<int> failures{0};
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto fail = [&](const std::string& msg) {
        errors[t] += msg + "\n";
        failures.fetch_add(1);
      };
      // Private-table mixed statements (DDL + INSERT under contention).
      std::string mine = "P" + std::to_string(t);
      if (!service->Execute("CREATE TABLE " + mine + "(A, B)").ok()) {
        fail("create " + mine);
      }
      int64_t sum = 0;
      for (int round = 0; round < kRounds; ++round) {
        int64_t v = t * 1000 + round;
        sum += v;
        if (!service
                 ->Execute("INSERT INTO " + mine + " VALUES (1, " +
                           std::to_string(v) + ")")
                 .ok()) {
          fail("insert " + mine);
        }
        // Shared read: must match the single-threaded ground truth.
        const std::string& q = pool[(t + round) % pool.size()];
        Result<StatementResult> shared = service->Execute(q);
        if (!shared.ok() || !shared->table.has_value()) {
          fail("shared select failed: " + q);
        } else if (!MultisetAlmostEqual(expected[(t + round) % pool.size()],
                                        *shared->table)) {
          fail("shared select diverged: " + q);
        }
        // Private read: exactly predictable despite concurrent writers.
        Result<StatementResult> own = service->Execute(
            "SELECT A_1, SUM(B_1) AS T FROM " + mine + " GROUPBY A_1");
        if (!own.ok() || !own->table.has_value() ||
            own->table->num_rows() != 1 ||
            !(own->table->rows()[0][1] == Value::Int64(sum))) {
          fail("private select diverged on " + mine);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0) << [&] {
    std::string all;
    for (const std::string& e : errors) all += e;
    return all;
  }();

  // Every statement was accounted for and the latch let readers overlap.
  ServiceStats stats = service->Stats();
  EXPECT_GE(stats.queries_served,
            static_cast<uint64_t>(pool.size() + 2 * kThreads * kRounds));
  EXPECT_GT(stats.plan_cache_hits, 0u);
}

TEST(ServiceObservabilityTest, ExplainAnalyzeShowsActualRowsAndTimings) {
  std::unique_ptr<QueryService> service = MakeTelephonyService();
  StatementResult r =
      ExecuteOrDie(*service, "EXPLAIN ANALYZE " + TelephonyQuery(1995, 1e9));
  EXPECT_FALSE(r.table.has_value());  // analyze reports, it does not return rows
  // Cost estimates and the executed operator tree with actuals, side by side.
  EXPECT_NE(r.message.find("cost:"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("rewriting(s) considered"), std::string::npos);
  EXPECT_NE(r.message.find("(actual rows="), std::string::npos) << r.message;
  EXPECT_NE(r.message.find(" us)"), std::string::npos);
  EXPECT_NE(r.message.find(" rows]"), std::string::npos);  // stored-cardinality estimate
  EXPECT_NE(r.message.find("HashAggregate("), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("Having("), std::string::npos);
  EXPECT_NE(r.message.find("total: "), std::string::npos);
  EXPECT_NE(r.message.find("result: "), std::string::npos);
  // The analyzed SELECT executed for real.
  EXPECT_EQ(service->Stats().queries_served, 1u);
}

TEST(ServiceObservabilityTest, ExplainAnalyzeMatchesPlainSelectRows) {
  QueryService service;
  EXPECT_OK(service.Execute("CREATE TABLE R(A, B)").status());
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1, 2), (1, 4), (2, 8)")
                .status());
  std::string q = "SELECT A_1, SUM(B_1) AS T FROM R GROUPBY A_1";
  StatementResult rows = ExecuteOrDie(service, q);
  ASSERT_TRUE(rows.table.has_value());
  StatementResult analyzed = ExecuteOrDie(service, "EXPLAIN ANALYZE " + q);
  EXPECT_NE(analyzed.message.find("result: " +
                                  std::to_string(rows.table->num_rows()) +
                                  " row(s)"),
            std::string::npos)
      << analyzed.message;
}

TEST(ServiceObservabilityTest, TraceDumpEmitsChromeTraceJson) {
  std::unique_ptr<QueryService> service = MakeTelephonyService();
  ExecuteOrDie(*service, "TRACE ON");
  ASSERT_TRUE(Tracer::Global().enabled());
  Tracer::Global().Clear();
  ExecuteOrDie(*service, TelephonyQuery(1995, 1e9));
  StatementResult dump = ExecuteOrDie(*service, "TRACE DUMP");
  ExecuteOrDie(*service, "TRACE OFF");
  EXPECT_FALSE(Tracer::Global().enabled());

  const std::string& json = dump.message;
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // The statement lifecycle is covered end to end.
  for (const char* span : {"\"name\":\"statement\"", "\"name\":\"parse\"",
                           "\"name\":\"bind\"", "\"name\":\"optimize\"",
                           "\"name\":\"rewrite.attempt\"", "\"name\":\"cost\"",
                           "\"name\":\"plan_cache.lookup\"",
                           "\"name\":\"execute\""}) {
    EXPECT_NE(json.find(span), std::string::npos) << "missing span " << span;
  }
  ExecuteOrDie(*service, "TRACE CLEAR");
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
  EXPECT_FALSE(service->Execute("TRACE SIDEWAYS").ok());
}

TEST(ServiceObservabilityTest, StatsReportHitRateCapacityAndMax) {
  ServiceOptions options;
  options.plan_cache_capacity = 32;
  QueryService service(options);
  EXPECT_OK(service.Execute("CREATE TABLE R(A, B)").status());
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1, 2)").status());
  std::string q = "SELECT A_1 FROM R WHERE B_1 = 2";
  ExecuteOrDie(service, q);
  ExecuteOrDie(service, q);
  ExecuteOrDie(service, q);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.plan_cache_hits, 2u);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_NEAR(stats.plan_cache_hit_rate, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.plan_cache_capacity, 32u);
  EXPECT_GE(stats.exec_max_micros, 0u);

  std::string text = ExecuteOrDie(service, "STATS").message;
  EXPECT_NE(text.find("% hit rate"), std::string::npos) << text;
  EXPECT_NE(text.find("1/32 entries"), std::string::npos) << text;
  EXPECT_NE(text.find("max="), std::string::npos) << text;
}

TEST(ServiceObservabilityTest, StatsPromExposesPrometheusText) {
  QueryService service;
  EXPECT_OK(service.Execute("CREATE TABLE R(A)").status());
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1)").status());
  ExecuteOrDie(service, "SELECT A_1 FROM R");

  std::string text = ExecuteOrDie(service, "STATS PROM").message;
  EXPECT_EQ(text, service.StatsPromText());
  EXPECT_NE(text.find("# TYPE aqv_service_statements counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_service_queries_served 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE aqv_service_plan_cache_size gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_service_plan_cache_capacity 256\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE aqv_service_exec_latency histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_service_exec_latency_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_service_exec_latency_count 1\n"),
            std::string::npos);
  // Every family carries HELP, and the trace-drop counter is exported.
  EXPECT_NE(text.find("# HELP aqv_service_statements "), std::string::npos);
  EXPECT_NE(text.find("aqv_trace_dropped_spans 0\n"), std::string::npos);
}

TEST(ServiceObservabilityTest, SlowQueryLogCapturesBreakdown) {
  ServiceOptions options;
  options.slow_query_micros = 1;  // everything is slow
  options.slow_query_log_capacity = 4;
  QueryService service(options);
  EXPECT_OK(service.Execute("CREATE TABLE R(A, B)").status());
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1, 2), (3, 4)").status());

  for (int i = 0; i < 6; ++i) {
    ExecuteOrDie(service,
                 "SELECT A_1 FROM R WHERE B_1 = " + std::to_string(i));
  }
  std::vector<SlowQueryRecord> log = service.SlowQueries();
  ASSERT_EQ(log.size(), 4u);  // bounded, oldest dropped
  EXPECT_NE(log.back().statement.find("B_1 = 5"), std::string::npos);
  // 6 slow SELECTs plus the slow INSERT (writes log too, fingerprint 0).
  EXPECT_EQ(service.Stats().slow_queries, 7u);
  for (const SlowQueryRecord& r : log) {
    EXPECT_NE(r.fingerprint, 0u);
    EXPECT_GE(r.total_micros, 1u);
    EXPECT_GE(r.total_micros,
              r.exec_micros);  // breakdown is within the total
    EXPECT_GT(r.epoch, 0u);    // records the epoch the statement saw
  }
  // Repeats of one fingerprint group: same statement twice -> same fp.
  ExecuteOrDie(service, "SELECT A_1 FROM R WHERE B_1 = 99");
  ExecuteOrDie(service, "SELECT A_1 FROM R WHERE 99 = B_1");  // mirrored
  log = service.SlowQueries();
  ASSERT_GE(log.size(), 2u);
  EXPECT_EQ(log[log.size() - 1].fingerprint, log[log.size() - 2].fingerprint);
  EXPECT_TRUE(log.back().cache_hit);  // canonical key matched the mirror

  std::string text = ExecuteOrDie(service, "SLOWLOG").message;
  EXPECT_NE(text.find("fp="), std::string::npos) << text;
  EXPECT_NE(text.find("exec="), std::string::npos);
  EXPECT_NE(text.find("B_1 = 99"), std::string::npos);

  service.ResetStats();
  EXPECT_TRUE(service.SlowQueries().empty());
  EXPECT_NE(ExecuteOrDie(service, "SLOWLOG").message.find("empty"),
            std::string::npos);
}

TEST(ServiceObservabilityTest, NoSlowLoggingWhenDisabled) {
  QueryService service;  // slow_query_micros = 0
  EXPECT_OK(service.Execute("CREATE TABLE R(A)").status());
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1)").status());
  ExecuteOrDie(service, "SELECT A_1 FROM R");
  EXPECT_TRUE(service.SlowQueries().empty());
  EXPECT_EQ(service.Stats().slow_queries, 0u);
}

// Pure reader concurrency over one cached plan: every hit must serve rows
// identical to the cold plan's (exercises concurrent LRU promotion).
TEST(ServiceConcurrencyTest, ParallelCacheHitsServeIdenticalRows) {
  constexpr int kThreads = 8;
  constexpr int kRepeats = 16;
  std::unique_ptr<QueryService> service = MakeTelephonyService();
  std::string q = TelephonyQuery(1995, 1e9);
  StatementResult cold = ExecuteOrDie(*service, q);
  ASSERT_TRUE(cold.table.has_value());

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kRepeats; ++i) {
        Result<StatementResult> r = service->Execute(q);
        if (!r.ok() || !r->table.has_value() ||
            !MultisetEqual(*cold.table, *r->table)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(service->Stats().plan_cache_hits,
            static_cast<uint64_t>(kThreads * kRepeats));
}

// A service with Sales(Shop, Amount) and a maintainable materialized
// summary over it, for the write-path tests.
std::unique_ptr<QueryService> MakeSalesService() {
  auto service = std::make_unique<QueryService>();
  EXPECT_OK(service->Execute("CREATE TABLE Sales(Shop, Amount)").status());
  EXPECT_OK(service
                ->Execute("INSERT INTO Sales VALUES (1, 10), (1, 20), (2, 30)")
                .status());
  EXPECT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW Totals AS "
                          "SELECT Shop_1, SUM(Amount_1) AS T, "
                          "COUNT(Amount_1) AS N FROM Sales GROUPBY Shop_1")
                .status());
  return service;
}

int64_t SumForShop(const Table& t, int64_t shop) {
  for (const Row& row : t.rows()) {
    if (row[0] == Value::Int64(shop)) return row[1].int64();
  }
  return -1;
}

TEST(ServiceWritePathTest, InsertMaintainsDependentViewsWithoutRefresh) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  const std::string q =
      "SELECT Shop_1, SUM(Amount_1) AS T FROM Sales GROUPBY Shop_1";
  StatementResult cold = ExecuteOrDie(*service, q);
  EXPECT_TRUE(cold.used_materialized_view);
  ASSERT_TRUE(cold.table.has_value());
  EXPECT_EQ(SumForShop(*cold.table, 1), 30);

  // The regression this PR fixes: INSERT with NO explicit REFRESH. The
  // rewritten query must see the new rows through the maintained view.
  EXPECT_OK(
      service->Execute("INSERT INTO Sales VALUES (1, 5), (3, 7)").status());
  StatementResult warm = ExecuteOrDie(*service, q);
  EXPECT_TRUE(warm.used_materialized_view);
  ASSERT_TRUE(warm.table.has_value());
  EXPECT_EQ(SumForShop(*warm.table, 1), 35);
  EXPECT_EQ(SumForShop(*warm.table, 3), 7);
  EXPECT_GE(service->Stats().views_maintained, 1u);
  EXPECT_EQ(service->Stats().views_recomputed, 0u);
  EXPECT_EQ(service->Stats().rows_inserted, 5u);  // 3 seed rows + 2
}

TEST(ServiceWritePathTest, UnmaintainableViewFallsBackToRecompute) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  // AVG views are outside the maintainer's dialect: the write path must
  // recompute them instead of leaving them stale.
  ASSERT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW Averages AS "
                          "SELECT Shop_1, AVG(Amount_1) AS A FROM Sales "
                          "GROUPBY Shop_1")
                .status());
  EXPECT_OK(service->Execute("INSERT INTO Sales VALUES (2, 50)").status());
  EXPECT_GE(service->Stats().views_recomputed, 1u);
  // The stored contents are fresh: read the view's name directly.
  ASSERT_OK_AND_ASSIGN(
      Table averages,
      service->Select("SELECT Shop_1, AVG(Amount_1) AS A FROM Sales "
                      "GROUPBY Shop_1"));
  for (const Row& row : averages.rows()) {
    if (row[0] == Value::Int64(2)) {
      EXPECT_EQ(row[1], Value::Double(40.0));
    }
  }
}

TEST(ServiceWritePathTest, WritePublishesTablesAndViewsAtOneEpoch) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  EXPECT_OK(service->Execute("INSERT INTO Sales VALUES (2, 1)").status());
  ServiceSnapshotPtr snap = service->PinSnapshot();
  // The batched COW publication gives base table and dependent view the
  // SAME version: a snapshot can never hold Sales newer than Totals.
  EXPECT_EQ(snap->db.VersionOf("Sales"), snap->db.VersionOf("Totals"));
  EXPECT_OK(service->Execute("INSERT INTO Sales VALUES (2, 2)").status());
  EXPECT_EQ(snap->db.VersionOf("Sales"), snap->db.VersionOf("Totals"));
}

TEST(ServiceWritePathTest, BeginWriteBuffersAndCommitsAtomically) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  ASSERT_OK_AND_ASSIGN(StatementResult opened,
                       service->Execute("BEGIN WRITE"));
  EXPECT_NE(opened.message.find("write batch opened"), std::string::npos);

  ASSERT_OK_AND_ASSIGN(StatementResult buffered,
                       service->Execute("INSERT INTO Sales VALUES (1, 100)"));
  EXPECT_NE(buffered.message.find("buffered"), std::string::npos);
  EXPECT_OK(
      service->Execute("INSERT INTO Sales VALUES (4, 1), (4, 2)").status());

  // Reads inside the batch see committed state only.
  ASSERT_OK_AND_ASSIGN(
      Table mid, service->Select("SELECT Shop_1, SUM(Amount_1) AS T "
                                 "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(SumForShop(mid, 1), 30);
  EXPECT_EQ(SumForShop(mid, 4), -1);
  // Non-INSERT writes are rejected inside the batch.
  EXPECT_FALSE(service->Execute("REFRESH Totals").ok());
  EXPECT_FALSE(service->Execute("CREATE TABLE Other(X)").ok());
  EXPECT_FALSE(service->Execute("BEGIN SNAPSHOT").ok());

  ASSERT_OK_AND_ASSIGN(StatementResult committed, service->Execute("COMMIT"));
  EXPECT_NE(committed.message.find("3 row(s) inserted / 0 deleted"),
            std::string::npos);
  ASSERT_OK_AND_ASSIGN(
      Table after, service->Select("SELECT Shop_1, SUM(Amount_1) AS T "
                                   "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(SumForShop(after, 1), 130);
  EXPECT_EQ(SumForShop(after, 4), 3);
  // The batch is gone: a second COMMIT has nothing to commit.
  EXPECT_FALSE(service->Execute("COMMIT").ok());
}

TEST(ServiceWritePathTest, RollbackDiscardsAndFailedCommitPublishesNothing) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  ASSERT_OK(service->Execute("BEGIN WRITE").status());
  ASSERT_OK(service->Execute("INSERT INTO Sales VALUES (9, 9)").status());
  ASSERT_OK_AND_ASSIGN(StatementResult dropped, service->Execute("ROLLBACK"));
  EXPECT_NE(dropped.message.find("discarded"), std::string::npos);
  ASSERT_OK_AND_ASSIGN(
      Table t, service->Select("SELECT Shop_1, SUM(Amount_1) AS T "
                               "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(SumForShop(t, 9), -1);
  EXPECT_FALSE(service->Execute("ROLLBACK").ok());  // nothing open

  // A batch naming an unknown table fails at COMMIT; nothing lands and the
  // batch is discarded rather than wedged open.
  ASSERT_OK(service->Execute("BEGIN WRITE").status());
  ASSERT_OK(service->Execute("INSERT INTO Sales VALUES (9, 9)").status());
  ASSERT_OK(service->Execute("INSERT INTO Nope VALUES (1)").status());
  EXPECT_EQ(service->Execute("COMMIT").status().code(), StatusCode::kNotFound);
  ASSERT_OK_AND_ASSIGN(
      Table t2, service->Select("SELECT Shop_1, SUM(Amount_1) AS T "
                                "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(SumForShop(t2, 9), -1);
  EXPECT_FALSE(service->Execute("COMMIT").ok());
}

TEST(ServiceWritePathTest, InsertHardeningRejectsDegenerates) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  // Zero tuples and trailing garbage used to be silently accepted.
  EXPECT_FALSE(service->Execute("INSERT INTO Sales VALUES").ok());
  EXPECT_FALSE(service->Execute("INSERT INTO Sales VALUES (5, 5) junk").ok());
  // Arity is validated against the table.
  EXPECT_FALSE(service->Execute("INSERT INTO Sales VALUES (1)").ok());
  // Views and unknown tables are not insert targets.
  EXPECT_FALSE(service->Execute("INSERT INTO Totals VALUES (1, 2, 3)").ok());
  EXPECT_EQ(service->Execute("INSERT INTO Nope VALUES (1)").status().code(),
            StatusCode::kNotFound);
  // Negative literals used to be rejected outright; now they round-trip.
  ASSERT_OK(service->Execute("INSERT INTO Sales VALUES (5, -7)").status());
  ASSERT_OK_AND_ASSIGN(
      Table t, service->Select("SELECT Shop_1, SUM(Amount_1) AS T "
                               "FROM Sales WHERE Shop_1 > -9 GROUPBY Shop_1"));
  EXPECT_EQ(SumForShop(t, 5), -7);
  // Nothing from the failed statements landed.
  ASSERT_OK_AND_ASSIGN(Table sales, service->Select("SELECT Shop_1, "
                                                    "COUNT(Amount_1) AS N "
                                                    "FROM Sales GROUPBY "
                                                    "Shop_1"));
  int64_t total = 0;
  for (const Row& row : sales.rows()) total += row[1].int64();
  EXPECT_EQ(total, 4);  // 3 seed rows + the one negative insert
}

}  // namespace
}  // namespace aqv
