#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/keys.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

TableDef MakeR() {
  TableDef r("R", {"A", "B", "C"});
  return r;
}

TEST(TableDefTest, ColumnIndex) {
  TableDef r = MakeR();
  EXPECT_EQ(r.ColumnIndex("A"), 0);
  EXPECT_EQ(r.ColumnIndex("C"), 2);
  EXPECT_EQ(r.ColumnIndex("Z"), -1);
}

TEST(TableDefTest, AddKeyValidatesOrdinals) {
  TableDef r = MakeR();
  EXPECT_OK(r.AddKey({0}));
  EXPECT_FALSE(r.AddKey({}).ok());
  EXPECT_FALSE(r.AddKey({5}).ok());
  EXPECT_TRUE(r.IsSet());
}

TEST(TableDefTest, AddKeyByName) {
  TableDef r = MakeR();
  EXPECT_OK(r.AddKeyByName({"A", "B"}));
  EXPECT_FALSE(r.AddKeyByName({"Z"}).ok());
  ASSERT_EQ(r.keys().size(), 1u);
  EXPECT_EQ(r.keys()[0], (std::vector<int>{0, 1}));
}

TEST(TableDefTest, KeyRecordsFd) {
  TableDef r = MakeR();
  ASSERT_OK(r.AddKey({0}));
  // Key -> all columns is recorded as an FD.
  ASSERT_EQ(r.fds().size(), 1u);
  EXPECT_EQ(r.fds()[0].lhs, (std::vector<int>{0}));
  EXPECT_EQ(r.fds()[0].rhs, (std::vector<int>{0, 1, 2}));
}

TEST(TableDefTest, NoKeyMeansMultiset) {
  EXPECT_FALSE(MakeR().IsSet());
}

TEST(CatalogTest, AddAndGet) {
  Catalog c;
  ASSERT_OK(c.AddTable(MakeR()));
  EXPECT_TRUE(c.HasTable("R"));
  EXPECT_FALSE(c.HasTable("S"));
  ASSERT_OK_AND_ASSIGN(const TableDef* r, c.GetTable("R"));
  EXPECT_EQ(r->name(), "R");
  EXPECT_EQ(c.GetTable("S").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RejectsDuplicates) {
  Catalog c;
  ASSERT_OK(c.AddTable(MakeR()));
  EXPECT_FALSE(c.AddTable(MakeR()).ok());
  EXPECT_FALSE(c.AddTable(TableDef("S", {"A", "A"})).ok());
}

TEST(KeysTest, FdClosureGrowsToFixpoint) {
  TableDef r("R", {"A", "B", "C", "D"});
  ASSERT_OK(r.AddFunctionalDependency({0}, {1}));
  ASSERT_OK(r.AddFunctionalDependency({1}, {2}));
  std::vector<int> closure = FdClosure(r, {0});
  EXPECT_EQ(closure, (std::vector<int>{0, 1, 2}));
}

TEST(KeysTest, FdDeterminesKeyMakesSuperKey) {
  // Section 5.1: if A -> B and B is a key, then A is a key.
  TableDef r("R", {"A", "B", "C"});
  ASSERT_OK(r.AddKeyByName({"B"}));
  ASSERT_OK(r.AddFunctionalDependency({0}, {1}));
  EXPECT_TRUE(IsSuperKey(r, {0}));
  EXPECT_FALSE(IsSuperKey(r, {2}));
}

TEST(KeysTest, SuperKeyBasics) {
  TableDef r = MakeR();
  // The whole row trivially determines itself, but that says nothing about
  // duplicates: set-ness comes from declared keys, not FD closure.
  EXPECT_TRUE(IsSuperKey(r, {0, 1, 2}));
  EXPECT_FALSE(IsSuperKey(r, {0}));
  EXPECT_FALSE(r.IsSet());
  ASSERT_OK(r.AddKey({0}));
  EXPECT_TRUE(IsSuperKey(r, {0}));
  EXPECT_TRUE(r.IsSet());
}

}  // namespace
}  // namespace aqv
