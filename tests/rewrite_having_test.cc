#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "workload/random_db.h"

namespace aqv {
namespace {

Catalog PaperCatalog() {
  Catalog c;
  EXPECT_TRUE(c.AddTable(TableDef("R1", {"A", "B", "C", "D"})).ok());
  EXPECT_TRUE(c.AddTable(TableDef("R2", {"E", "F"})).ok());
  return c;
}

void ExpectEquivalentOnRandomData(const Query& q, const Query& rewritten,
                                  const ViewRegistry& views) {
  Catalog catalog = PaperCatalog();
  for (int seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 30, 4, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(HavingRewriteTest, HavingSurvivesConjunctiveViewRewrite) {
  // Section 3.3: the HAVING clause is carried over with renamed columns.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .HavingAgg(AggFn::kSum, "B1", CmpOp::kGt, Value::Int64(5))
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ASSERT_EQ(rewritten.having.size(), 1u);
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(HavingRewriteTest, NormalizationEnablesUsability) {
  // Q has HAVING A1 >= 2; the view enforces A2 >= 2 in its WHERE. Only the
  // Section 3.3 move-around makes Conds(Q) entail φ(Conds(V)).
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .HavingCol("A1", CmpOp::kGe, Value::Int64(2))
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .WhereConst("A2", CmpOp::kGe, Value::Int64(2))
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));

  RewriteOptions with_norm;
  with_norm.normalize_having = true;
  Rewriter rewriter(&views, nullptr, with_norm);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ExpectEquivalentOnRandomData(q, rewritten, views);

  RewriteOptions without_norm;
  without_norm.normalize_having = false;
  Rewriter strict(&views, nullptr, without_norm);
  EXPECT_EQ(strict.RewriteUsingView(q, "V").status().code(),
            StatusCode::kUnusable);
}

TEST(HavingRewriteTest, CountOnlyInHavingStillNeedsViewSupport) {
  // Section 3.3 extension of C4 to aggregation columns in GConds(Q): a
  // COUNT in HAVING is computable from any view column (step S4).
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .GroupBy("A1")
                .HavingAgg(AggFn::kCount, "B1", CmpOp::kGe, Value::Int64(2))
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(HavingRewriteTest, SumOnlyInHavingNeedsColumn) {
  // SUM in HAVING over a projected-out column: unusable.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .GroupBy("A1")
                .HavingAgg(AggFn::kSum, "B1", CmpOp::kGe, Value::Int64(2))
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V").status().code(),
            StatusCode::kUnusable);
}

TEST(HavingRewriteTest, AggregateViewHavingEntailedByQuery) {
  // Section 4.3: both grouped on A; the view's HAVING SUM(B) > 2 is
  // entailed by the query's HAVING SUM(B) > 5, and no coalescing occurs.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .HavingAgg(AggFn::kSum, "B1", CmpOp::kGt, Value::Int64(5))
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .SelectAgg(AggFn::kSum, "B2", "s")
                     .SelectAgg(AggFn::kCount, "B2", "cnt")
                     .GroupBy("A2")
                     .HavingAgg(AggFn::kSum, "B2", CmpOp::kGt, Value::Int64(2))
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(HavingRewriteTest, AggregateViewHavingNotEntailedRefused) {
  // The view discards groups with SUM(B) <= 10; the query wants SUM(B) > 5,
  // so groups with 5 < SUM <= 10 would be missing.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .HavingAgg(AggFn::kSum, "B1", CmpOp::kGt, Value::Int64(5))
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .SelectAgg(AggFn::kSum, "B2", "s")
                     .GroupBy("A2")
                     .HavingAgg(AggFn::kSum, "B2", CmpOp::kGt, Value::Int64(10))
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V").status().code(),
            StatusCode::kUnusable);
}

TEST(HavingRewriteTest, AggregateViewHavingWithCoalescingRefused) {
  // The view's HAVING holds per (A,B) subgroup; the query coalesces the B
  // dimension, so discarded subgroups are needed — unusable (Section 4.3).
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kCount, "B1", "n")
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .SelectAgg(AggFn::kCount, "C2", "cnt")
                     .GroupBy("A2")
                     .GroupBy("B2")
                     .HavingAgg(AggFn::kCount, "C2", CmpOp::kGt, Value::Int64(1))
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V").status().code(),
            StatusCode::kUnusable);
}

TEST(HavingRewriteTest, ViewHavingOnGroupingColumnNormalizesAway) {
  // The view's HAVING A2 >= 1 moves to its WHERE during normalization, so
  // the view is usable whenever the query enforces A1 >= 1.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kCount, "B1", "n")
                .WhereConst("A1", CmpOp::kGe, Value::Int64(1))
                .GroupBy("A1")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .Select("B2")
                     .SelectAgg(AggFn::kCount, "C2", "cnt")
                     .GroupBy("A2")
                     .GroupBy("B2")
                     .HavingCol("A2", CmpOp::kGe, Value::Int64(1))
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ExpectEquivalentOnRandomData(q, rewritten, views);
}

TEST(HavingRewriteTest, ScaleSensitiveViewHavingWithJoinRefused) {
  // The view's HAVING constrains a SUM, and the query joins another table:
  // group contents are multiplied, so the identification is invalid.
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "C1", "D1"})
                .From("R2", {"E1", "F1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .WhereCols("A1", CmpOp::kEq, "E1")
                .GroupBy("A1")
                .HavingAgg(AggFn::kSum, "B1", CmpOp::kGt, Value::Int64(5))
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2", "C2", "D2"})
                     .Select("A2")
                     .SelectAgg(AggFn::kSum, "B2", "s")
                     .SelectAgg(AggFn::kCount, "B2", "cnt")
                     .GroupBy("A2")
                     .HavingAgg(AggFn::kSum, "B2", CmpOp::kGt, Value::Int64(5))
                     .BuildOrDie()};
  ViewRegistry views;
  ASSERT_OK(views.Register(v));
  Rewriter rewriter(&views);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "V").status().code(),
            StatusCode::kUnusable);
}

}  // namespace
}  // namespace aqv
