// Concurrency stress for the striped-latch query service (PR 3): M writer
// threads append to private tables while N reader threads pin snapshots —
// half through the BEGIN SNAPSHOT / COMMIT statement dialect, half through
// the typed PinSnapshot()/Select(sql, snapshot) API — and verify that every
// read inside one snapshot comes from a single epoch:
//
//   - stability: two full passes over all tables inside one snapshot agree
//     exactly (a concurrent writer can never tear a pinned read);
//   - integrity: each table's pinned contents are a prefix of its writer's
//     append sequence (A = 0..n-1 exactly once, B = writer id);
//   - monotonicity: a reader's successive snapshots never lose rows, and
//     typed snapshots' epochs never decrease;
//   - read-only: writes and DDL inside BEGIN SNAPSHOT are rejected.
//
// Run under AQV_SANITIZE=thread in CI (ctest label "stress"); TSan covers
// the data-race half of the contract, these assertions the logical half.
//
// PR 8: every concurrency suite runs twice, with ServiceOptions::vectorized
// on and off, so the columnar engine (including its lazily built, shared
// per-table image — a once-flag race under TSan) faces the same hammering
// as the row engine.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "exec/evaluator.h"
#include "exec/table.h"
#include "parser/parser.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kInsertsPerWriter = 100;

std::string TableName(int w) { return "W" + std::to_string(w); }

std::unique_ptr<QueryService> MakeStressService(ServiceOptions options) {
  auto service = std::make_unique<QueryService>(options);
  for (int w = 0; w < kWriters; ++w) {
    Result<StatementResult> r =
        service->Execute("CREATE TABLE " + TableName(w) + "(A, B)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  return service;
}

/// Names the engine arm of a parameterized suite: true = vectorized.
std::string EngineName(const ::testing::TestParamInfo<bool>& info) {
  return info.param ? "vectorized" : "row";
}

/// Checks that `t` is a prefix of writer `w`'s append sequence: rows are
/// (0, w) .. (n-1, w) as a bag. Returns an empty string when consistent.
std::string CheckPrefix(const Table& t, int w) {
  std::vector<bool> seen(t.num_rows(), false);
  for (const Row& row : t.rows()) {
    if (row.size() != 2) return "row arity != 2";
    if (!(row[1] == Value::Int64(w))) {
      return "foreign row in " + TableName(w) + ": B=" + row[1].ToString();
    }
    if (!row[0].is_numeric()) return "non-numeric A";
    int64_t a = static_cast<int64_t>(row[0].AsDouble());
    if (a < 0 || a >= static_cast<int64_t>(t.num_rows())) {
      return "torn table " + TableName(w) + ": A=" + std::to_string(a) +
             " outside prefix of " + std::to_string(t.num_rows()) + " rows";
    }
    if (seen[static_cast<size_t>(a)]) {
      return "duplicate A=" + std::to_string(a) + " in " + TableName(w);
    }
    seen[static_cast<size_t>(a)] = true;
  }
  return "";
}

class ServiceStressTest : public ::testing::TestWithParam<bool> {};

TEST_P(ServiceStressTest, SnapshotReadersSeeSingleEpochWhileWritersRun) {
  ServiceOptions stress_options;
  stress_options.vectorized = GetParam();
  std::unique_ptr<QueryService> service = MakeStressService(stress_options);
  std::atomic<int> writers_running{kWriters};
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kWriters + kReaders);

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        Result<StatementResult> r = service->Execute(
            "INSERT INTO " + TableName(w) + " VALUES (" + std::to_string(i) +
            ", " + std::to_string(w) + ")");
        if (!r.ok()) {
          errors[w] += "insert failed: " + r.status().ToString() + "\n";
          failures.fetch_add(1);
          break;
        }
      }
      writers_running.fetch_sub(1);
    });
  }

  for (int rdr = 0; rdr < kReaders; ++rdr) {
    threads.emplace_back([&, rdr] {
      const bool use_dialect = (rdr % 2) == 0;
      auto fail = [&](const std::string& msg) {
        errors[kWriters + rdr] += msg + "\n";
        failures.fetch_add(1);
      };
      auto read_all = [&](const ServiceSnapshot* snap,
                          std::vector<Table>* out) -> bool {
        for (int w = 0; w < kWriters; ++w) {
          std::string sql = "SELECT A_1, B_1 FROM " + TableName(w);
          Result<Table> t = snap != nullptr ? service->Select(sql, *snap)
                                            : service->Select(sql);
          if (!t.ok()) {
            fail("snapshot select failed: " + t.status().ToString());
            return false;
          }
          out->push_back(*std::move(t));
        }
        return true;
      };

      std::vector<size_t> prev_counts(kWriters, 0);
      uint64_t prev_epoch = 0;
      bool rejected_write_checked = false;
      // Keep pinning until the writers are done, then one final snapshot
      // that must observe every table complete.
      while (true) {
        bool final_round = writers_running.load() == 0;
        ServiceSnapshotPtr snap;
        if (use_dialect) {
          Result<StatementResult> begin = service->Execute("BEGIN SNAPSHOT");
          if (!begin.ok()) {
            fail("BEGIN SNAPSHOT failed: " + begin.status().ToString());
            break;
          }
        } else {
          snap = service->PinSnapshot();
          if (snap->epoch < prev_epoch) {
            fail("epoch went backwards: " + std::to_string(snap->epoch) +
                 " < " + std::to_string(prev_epoch));
          }
          prev_epoch = snap->epoch;
        }

        std::vector<Table> pass1, pass2;
        if (!read_all(snap.get(), &pass1) || !read_all(snap.get(), &pass2)) {
          break;
        }
        for (int w = 0; w < kWriters; ++w) {
          if (!MultisetEqual(pass1[w], pass2[w])) {
            fail("unstable snapshot read of " + TableName(w) + ": " +
                 DescribeMultisetDifference(pass1[w], pass2[w]));
          }
          std::string integrity = CheckPrefix(pass1[w], w);
          if (!integrity.empty()) fail(integrity);
          if (pass1[w].num_rows() < prev_counts[w]) {
            fail("rows lost across snapshots of " + TableName(w) + ": " +
                 std::to_string(pass1[w].num_rows()) + " < " +
                 std::to_string(prev_counts[w]));
          }
          prev_counts[w] = pass1[w].num_rows();
        }

        if (use_dialect) {
          if (!rejected_write_checked) {
            rejected_write_checked = true;
            if (service->Execute("INSERT INTO W0 VALUES (0, 0)").ok()) {
              fail("write inside BEGIN SNAPSHOT was not rejected");
            }
          }
          Result<StatementResult> commit = service->Execute("COMMIT");
          if (!commit.ok()) {
            fail("COMMIT failed: " + commit.status().ToString());
            break;
          }
        }
        if (final_round) {
          for (int w = 0; w < kWriters; ++w) {
            if (pass1[w].num_rows() != kInsertsPerWriter) {
              fail("final snapshot of " + TableName(w) + " saw " +
                   std::to_string(pass1[w].num_rows()) + "/" +
                   std::to_string(kInsertsPerWriter) + " rows");
            }
          }
          break;
        }
      }
    });
  }

  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0) << [&] {
    std::string all;
    for (const std::string& e : errors) all += e;
    return all;
  }();

  ServiceStats stats = service->Stats();
  EXPECT_GT(stats.snapshots_pinned, 0u);
  EXPECT_GT(stats.snapshot_reads, 0u);
  EXPECT_EQ(stats.latch_stripes, LatchManager::kDefaultStripes);
}

INSTANTIATE_TEST_SUITE_P(Engines, ServiceStressTest, ::testing::Bool(),
                         EngineName);

// Chaos under concurrency (PR 4): writers and readers hammer the service
// while probabilistic failpoints inject errors and delays into the COW
// copy, the evaluator, and the plan cache, with admission control capping
// the in-flight count. The contract under test:
//
//   - every failed statement returns a clean kUnavailable (injected or
//     SERVER_BUSY), never a crash, torn write or held latch;
//   - writes are atomic: after the dust settles, each table contains
//     exactly the rows whose INSERT statements reported success;
//   - reads that succeed mid-chaos are internally consistent (no foreign
//     or duplicate rows).
//
// Runs in CI under ThreadSanitizer via the "chaos" label.
class ServiceChaosStressTest : public ::testing::TestWithParam<bool> {};

TEST_P(ServiceChaosStressTest, InjectedFaultsNeverTearStateOrWedgeService) {
  ServiceOptions options;
  options.max_concurrent_statements = 6;
  options.admission_wait_micros = 2000;
  options.vectorized = GetParam();
  auto service = std::make_unique<QueryService>(options);
  for (int w = 0; w < kWriters; ++w) {
    ASSERT_OK(
        service->Execute("CREATE TABLE " + TableName(w) + "(A, B)").status());
  }
  // PR 5: a materialized view over W0 pulls the write path's maintenance
  // sites into the chaos run. A maintain.apply fault must fail the INSERT
  // cleanly with nothing published — the atomicity audit below covers W0
  // like every other table.
  ASSERT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW W0V AS SELECT A_1, "
                          "SUM(B_1) AS S, COUNT(B_1) AS N FROM W0 "
                          "GROUPBY A_1")
                .status());

  struct DisarmOnExit {
    ~DisarmOnExit() { FailpointRegistry::Global().ClearAll(); }
  } disarm;
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_OK(reg.Set("table.cow_copy", "error(15)"));
  ASSERT_OK(reg.Set("maintain.apply", "error(10)"));
  ASSERT_OK(reg.Set("exec.operator", "error(10)"));
  ASSERT_OK(reg.Set("plan_cache.lookup", "error(20)"));
  ASSERT_OK(reg.Set("plan_cache.insert", "error(20)"));
  ASSERT_OK(reg.Set("parse", "delay(50,30)"));
  reg.Reseed(TestSeed(16000));

  std::atomic<int> violations{0};
  std::vector<std::string> errors(kWriters + kReaders);
  std::vector<std::vector<bool>> landed(
      kWriters, std::vector<bool>(kInsertsPerWriter, false));
  std::atomic<int> writers_running{kWriters};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        Result<StatementResult> r = service->Execute(
            "INSERT INTO " + TableName(w) + " VALUES (" + std::to_string(i) +
            ", " + std::to_string(w) + ")");
        if (r.ok()) {
          landed[w][i] = true;
        } else if (r.status().code() != StatusCode::kUnavailable) {
          errors[w] += "unclean insert failure: " + r.status().ToString() +
                       "\n";
          violations.fetch_add(1);
        }
      }
      writers_running.fetch_sub(1);
    });
  }
  for (int rdr = 0; rdr < kReaders; ++rdr) {
    threads.emplace_back([&, rdr] {
      while (writers_running.load() > 0) {
        for (int w = 0; w < kWriters; ++w) {
          Result<Table> t =
              service->Select("SELECT A_1, B_1 FROM " + TableName(w));
          if (!t.ok()) {
            if (t.status().code() != StatusCode::kUnavailable) {
              errors[kWriters + rdr] +=
                  "unclean select failure: " + t.status().ToString() + "\n";
              violations.fetch_add(1);
            }
            continue;
          }
          // A successful chaos read sees only well-formed rows: writer w's
          // values, each at most once (COW means no torn appends).
          std::string integrity = CheckPrefix(*t, w);
          // CheckPrefix's range check assumes gap-free prefixes; failed
          // inserts leave gaps, so only flag structural violations.
          if (!integrity.empty() &&
              integrity.find("outside prefix") == std::string::npos) {
            errors[kWriters + rdr] += integrity + "\n";
            violations.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Disarm through the statement interface (also exercising it under a
  // just-hammered service), then audit atomicity: each table holds exactly
  // the rows whose INSERTs succeeded.
  ASSERT_OK(service->Execute("FAILPOINT CLEAR").status());
  for (int w = 0; w < kWriters; ++w) {
    ASSERT_OK_AND_ASSIGN(
        Table t, service->Select("SELECT A_1, B_1 FROM " + TableName(w)));
    std::vector<bool> present(kInsertsPerWriter, false);
    for (const Row& row : t.rows()) {
      ASSERT_EQ(row.size(), 2u);
      int64_t a = static_cast<int64_t>(row[0].AsDouble());
      ASSERT_GE(a, 0);
      ASSERT_LT(a, kInsertsPerWriter);
      EXPECT_FALSE(present[static_cast<size_t>(a)])
          << "duplicate row " << a << " in " << TableName(w);
      present[static_cast<size_t>(a)] = true;
    }
    for (int i = 0; i < kInsertsPerWriter; ++i) {
      EXPECT_EQ(present[i], landed[w][i])
          << TableName(w) << " row " << i
          << (landed[w][i] ? " acked but missing (lost write)"
                           : " present but failed (torn write)");
    }
  }
  EXPECT_EQ(violations.load(), 0) << [&] {
    std::string all;
    for (const std::string& e : errors) all += e;
    return all;
  }();
  // The chaos actually bit: some statements failed and were counted.
  ServiceStats stats = service->Stats();
  uint64_t unavailable = 0;
  for (const auto& [code, count] : stats.errors_by_code) {
    if (code == "unavailable") unavailable = count;
  }
  EXPECT_GT(unavailable, 0u) << stats.ToString();
}

INSTANTIATE_TEST_SUITE_P(Engines, ServiceChaosStressTest, ::testing::Bool(),
                         EngineName);

// Write-path freshness under concurrency (PR 5): writer threads INSERT into
// one shared table with a materialized SUM/COUNT view over it — single-row
// statements, multi-row statements, and BEGIN WRITE..COMMIT batches — while
// reader threads pin snapshots and verify, inside every snapshot:
//
//   - epoch coupling: VersionOf(T) <= VersionOf(TV) — the batched PutAll
//     can never publish the base table ahead of its dependent view;
//   - freshness: the STORED view contents in the snapshot equal the
//     aggregate recomputed from the snapshot's own base table by a plain
//     evaluator (no optimizer, no rewriting, no circularity);
//
// and, after the dust settles, the live view holds the full aggregate with
// no REFRESH ever issued.
class ServiceWriteStressTest : public ::testing::TestWithParam<bool> {};

TEST_P(ServiceWriteStressTest, MaintainedViewStaysCoupledToItsBaseTable) {
  constexpr int kWriteWriters = 3;
  constexpr int kSnapshotReaders = 3;
  constexpr int kStatementsPerWriter = 60;  // 5 rows per 3 statements

  ServiceOptions write_options;
  write_options.vectorized = GetParam();
  auto service = std::make_unique<QueryService>(write_options);
  ASSERT_OK(service->Execute("CREATE TABLE T(A, B)").status());
  ASSERT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW TV AS SELECT A_1, "
                          "SUM(B_1) AS S, COUNT(B_1) AS N FROM T GROUPBY A_1")
                .status());
  // The reader's oracle, evaluated directly against each snapshot's base
  // table (paper notation binds the columns without the catalog).
  ASSERT_OK_AND_ASSIGN(
      Query aggregate,
      ParseQuery("SELECT A1, SUM(B1) AS S, COUNT(B1) AS N FROM T(A1, B1) "
                 "GROUPBY A1"));

  std::atomic<int> writers_running{kWriteWriters};
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kWriteWriters + kSnapshotReaders);

  std::vector<std::thread> threads;
  threads.reserve(kWriteWriters + kSnapshotReaders);
  for (int w = 0; w < kWriteWriters; ++w) {
    threads.emplace_back([&, w] {
      auto run = [&](const std::string& stmt) {
        Result<StatementResult> r = service->Execute(stmt);
        if (!r.ok()) {
          errors[w] += "write failed: " + r.status().ToString() + "\n";
          failures.fetch_add(1);
        }
      };
      for (int i = 0; i < kStatementsPerWriter; ++i) {
        std::string a = std::to_string(i % 4);
        std::string b = std::to_string(w * 100000 + i);
        switch (i % 3) {
          case 0:
            run("INSERT INTO T VALUES (" + a + ", " + b + ")");
            break;
          case 1:
            run("INSERT INTO T VALUES (" + a + ", " + b + "), (" +
                std::to_string((i + 1) % 4) + ", " + b + ")");
            break;
          case 2:
            run("BEGIN WRITE");
            run("INSERT INTO T VALUES (" + a + ", " + b + ")");
            run("INSERT INTO T VALUES (" + std::to_string((i + 2) % 4) +
                ", " + b + ")");
            run("COMMIT");
            break;
        }
      }
      writers_running.fetch_sub(1);
    });
  }
  for (int rdr = 0; rdr < kSnapshotReaders; ++rdr) {
    threads.emplace_back([&, rdr] {
      auto fail = [&](const std::string& msg) {
        errors[kWriteWriters + rdr] += msg + "\n";
        failures.fetch_add(1);
      };
      bool final_round = false;
      while (!final_round) {
        final_round = writers_running.load() == 0;
        ServiceSnapshotPtr snap = service->PinSnapshot();
        if (snap->db.VersionOf("T") > snap->db.VersionOf("TV")) {
          fail("snapshot holds T at epoch " +
               std::to_string(snap->db.VersionOf("T")) +
               " but dependent view TV at older epoch " +
               std::to_string(snap->db.VersionOf("TV")));
        }
        TablePtr stored = snap->db.GetShared("TV");
        if (stored == nullptr) {
          fail("snapshot lost the stored view TV");
          break;
        }
        Evaluator eval(&snap->db);
        Result<Table> want = eval.Execute(aggregate);
        if (!want.ok()) {
          fail("snapshot recompute failed: " + want.status().ToString());
          break;
        }
        if (!MultisetEqual(*stored, *want)) {
          fail("stored view diverged from its snapshot's base table:\n" +
               DescribeMultisetDifference(*stored, *want));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0) << [&] {
    std::string all;
    for (const std::string& e : errors) all += e;
    return all;
  }();

  // Final audit, still with no REFRESH: every acked row is aggregated.
  ServiceSnapshotPtr fin = service->PinSnapshot();
  Evaluator eval(&fin->db);
  ASSERT_OK_AND_ASSIGN(Table want, eval.Execute(aggregate));
  TablePtr stored = fin->db.GetShared("TV");
  ASSERT_NE(stored, nullptr);
  EXPECT_TRUE(MultisetEqual(*stored, want))
      << DescribeMultisetDifference(*stored, want);
  size_t total = 0;
  for (const Row& row : want.rows()) total += static_cast<size_t>(
      row[2].int64());
  EXPECT_EQ(total, static_cast<size_t>(kWriteWriters * kStatementsPerWriter /
                                       3 * 5));
  EXPECT_GE(service->Stats().views_maintained, 1u);
}

INSTANTIATE_TEST_SUITE_P(Engines, ServiceWriteStressTest, ::testing::Bool(),
                         EngineName);

// The same coupling + freshness oracle under a full DML mix (PR 10):
// writer threads interleave INSERTs with DELETEs of their own earlier rows
// and UPDATEs that move a row between groups, all on one shared table.
// Each writer keys its rows by a private B value, so every DELETE/UPDATE
// matches exactly one live row regardless of interleaving, and the final
// row count is deterministic. Readers verify inside every snapshot that
// the stored view equals a recompute from that snapshot's base table.
TEST_P(ServiceWriteStressTest, ConcurrentDmlKeepsViewCoupledToItsBaseTable) {
  constexpr int kDmlWriters = 3;
  constexpr int kDmlReaders = 2;
  constexpr int kRowsPerWriter = 45;

  ServiceOptions write_options;
  write_options.vectorized = GetParam();
  auto service = std::make_unique<QueryService>(write_options);
  ASSERT_OK(service->Execute("CREATE TABLE T(A, B)").status());
  ASSERT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW TV AS SELECT A_1, "
                          "SUM(B_1) AS S, COUNT(B_1) AS N FROM T GROUPBY A_1")
                .status());
  ASSERT_OK_AND_ASSIGN(
      Query aggregate,
      ParseQuery("SELECT A1, SUM(B1) AS S, COUNT(B1) AS N FROM T(A1, B1) "
                 "GROUPBY A1"));

  std::atomic<int> writers_running{kDmlWriters};
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kDmlWriters + kDmlReaders);

  std::vector<std::thread> threads;
  threads.reserve(kDmlWriters + kDmlReaders);
  for (int w = 0; w < kDmlWriters; ++w) {
    threads.emplace_back([&, w] {
      auto run = [&](const std::string& stmt) {
        Result<StatementResult> r = service->Execute(stmt);
        if (!r.ok()) {
          errors[w] += "dml failed: " + stmt + ": " + r.status().ToString() +
                       "\n";
          failures.fetch_add(1);
        }
      };
      for (int i = 0; i < kRowsPerWriter; ++i) {
        std::string b = std::to_string(w * 100000 + i);
        run("INSERT INTO T VALUES (" + std::to_string(i % 4) + ", " + b +
            ")");
        if (i % 3 == 2) {
          // Remove the row inserted on the previous iteration — a write
          // only this thread can race with.
          run("DELETE FROM T WHERE B = " +
              std::to_string(w * 100000 + i - 1));
        }
        if (i % 5 == 4) {
          // Move the just-inserted row to another group: a delete+insert
          // delta through the same maintained path.
          run("UPDATE T SET A = A + 1 WHERE B = " + b);
        }
      }
      writers_running.fetch_sub(1);
    });
  }
  for (int rdr = 0; rdr < kDmlReaders; ++rdr) {
    threads.emplace_back([&, rdr] {
      auto fail = [&](const std::string& msg) {
        errors[kDmlWriters + rdr] += msg + "\n";
        failures.fetch_add(1);
      };
      bool final_round = false;
      while (!final_round) {
        final_round = writers_running.load() == 0;
        ServiceSnapshotPtr snap = service->PinSnapshot();
        if (snap->db.VersionOf("T") > snap->db.VersionOf("TV")) {
          fail("snapshot holds T newer than its dependent view TV");
        }
        TablePtr stored = snap->db.GetShared("TV");
        if (stored == nullptr) {
          fail("snapshot lost the stored view TV");
          break;
        }
        Evaluator eval(&snap->db);
        Result<Table> want = eval.Execute(aggregate);
        if (!want.ok()) {
          fail("snapshot recompute failed: " + want.status().ToString());
          break;
        }
        if (!MultisetEqual(*stored, *want)) {
          fail("stored view diverged from its snapshot's base table:\n" +
               DescribeMultisetDifference(*stored, *want));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0) << [&] {
    std::string all;
    for (const std::string& e : errors) all += e;
    return all;
  }();

  // Deterministic net cardinality: every writer inserted kRowsPerWriter
  // rows and deleted one per i%3==2 iteration.
  ServiceSnapshotPtr fin = service->PinSnapshot();
  Evaluator eval(&fin->db);
  ASSERT_OK_AND_ASSIGN(Table want, eval.Execute(aggregate));
  TablePtr stored = fin->db.GetShared("TV");
  ASSERT_NE(stored, nullptr);
  EXPECT_TRUE(MultisetEqual(*stored, want))
      << DescribeMultisetDifference(*stored, want);
  size_t total = 0;
  for (const Row& row : want.rows()) {
    total += static_cast<size_t>(row[2].int64());
  }
  EXPECT_EQ(total, static_cast<size_t>(kDmlWriters *
                                       (kRowsPerWriter - kRowsPerWriter / 3)));
  ServiceStats stats = service->Stats();
  EXPECT_GE(stats.rows_deleted,
            static_cast<uint64_t>(kDmlWriters * (kRowsPerWriter / 3)));
  EXPECT_GE(stats.views_maintained, 1u);
}

// Deterministic rules of the BEGIN SNAPSHOT / COMMIT statement dialect.
TEST(ServiceSnapshotDialectTest, BeginCommitStatementRules) {
  QueryService service;
  ASSERT_OK(service.Execute("CREATE TABLE R(A, B)").status());
  EXPECT_FALSE(service.Execute("COMMIT").ok());  // nothing to commit
  ASSERT_OK(service.Execute("BEGIN SNAPSHOT").status());
  EXPECT_FALSE(service.Execute("BEGIN SNAPSHOT").ok());  // no nesting
  // The pin is read-only: row writes and DDL are rejected until COMMIT.
  EXPECT_FALSE(service.Execute("INSERT INTO R VALUES (1, 2)").ok());
  EXPECT_FALSE(service.Execute("CREATE TABLE S(A)").ok());
  EXPECT_FALSE(service.Execute("REFRESH V").ok());
  ASSERT_OK(service.Execute("COMMIT").status());
  EXPECT_FALSE(service.Execute("COMMIT").ok());  // already released
  EXPECT_OK(service.Execute("INSERT INTO R VALUES (1, 2)").status());
}

// A pinned snapshot keeps answering from its epoch while another thread
// writes; COMMIT returns the thread to live reads.
TEST(ServiceSnapshotDialectTest, SnapshotIsolatesFromConcurrentWrites) {
  QueryService service;
  ASSERT_OK(service.Execute("CREATE TABLE R(A, B)").status());
  ASSERT_OK(service.Execute("INSERT INTO R VALUES (1, 1)").status());
  ASSERT_OK(service.Execute("BEGIN SNAPSHOT").status());

  std::thread writer([&] {
    Result<StatementResult> r =
        service.Execute("INSERT INTO R VALUES (2, 2)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  writer.join();

  ASSERT_OK_AND_ASSIGN(Table pinned, service.Select("SELECT A_1, B_1 FROM R"));
  EXPECT_EQ(pinned.num_rows(), 1u);  // the write landed after the pin
  ASSERT_OK(service.Execute("COMMIT").status());
  ASSERT_OK_AND_ASSIGN(Table live, service.Select("SELECT A_1, B_1 FROM R"));
  EXPECT_EQ(live.num_rows(), 2u);
}

}  // namespace
}  // namespace aqv
