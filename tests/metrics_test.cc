// Tests for base/metrics: LatencyHistogram percentile edge cases (empty,
// single sample, sub-microsecond bucket 0, exact max vs bucket-approximate
// percentiles), Reset racing concurrent Record calls, the Gauge, and the
// Prometheus text exposition.

#include "base/metrics.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace aqv {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_micros(), 0u);
  EXPECT_EQ(h.max_micros(), 0u);
  EXPECT_EQ(h.mean_micros(), 0.0);
  EXPECT_EQ(h.PercentileMicros(0.5), 0.0);
  EXPECT_EQ(h.PercentileMicros(0.99), 0.0);
  EXPECT_EQ(h.PercentileMicros(1.0), 0.0);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum_micros(), 100u);
  EXPECT_EQ(h.max_micros(), 100u);  // exact, not bucket-rounded
  EXPECT_EQ(h.mean_micros(), 100.0);
  // 100us lands in the [64, 128) bucket; every percentile interpolates
  // inside it.
  for (double q : {0.5, 0.99, 1.0}) {
    double p = h.PercentileMicros(q);
    EXPECT_GE(p, 64.0) << "q=" << q;
    EXPECT_LE(p, 128.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, SubMicrosecondSamplesLandInBucketZero) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum_micros(), 0u);
  EXPECT_EQ(h.max_micros(), 0u);
  EXPECT_LE(h.PercentileMicros(0.5), 1.0);
  EXPECT_LE(h.PercentileMicros(0.99), 1.0);
}

TEST(LatencyHistogramTest, MaxIsExactWhilePercentilesAreApproximate) {
  LatencyHistogram h;
  h.Record(3);
  h.Record(5);
  h.Record(159);
  EXPECT_EQ(h.max_micros(), 159u);
  double p99 = h.PercentileMicros(0.99);
  EXPECT_GE(p99, 128.0);  // 159 is in [128, 256)
  EXPECT_LE(p99, 256.0);
  double p50 = h.PercentileMicros(0.5);
  EXPECT_LE(p50, 8.0);  // the median sample, 5, is in [4, 8)
}

TEST(LatencyHistogramTest, MaxTracksTheLargestOfManySamples) {
  LatencyHistogram h;
  for (uint64_t v : {7u, 900u, 12u, 900u, 3u}) h.Record(v);
  EXPECT_EQ(h.max_micros(), 900u);
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(42);
  h.Record(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_micros(), 0u);
  EXPECT_EQ(h.max_micros(), 0u);
  EXPECT_EQ(h.PercentileMicros(0.5), 0.0);
}

// Reset racing concurrent Record calls must stay data-race free (the
// sanitizer job runs this under TSan) and leave the histogram consistent
// enough to keep serving queries.
TEST(LatencyHistogramTest, ResetWhileRecordingIsSafe) {
  LatencyHistogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&h, &stop] {
      uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(v);
        v = v * 1664525 + 1013904223;  // LCG: spread across buckets
        v %= 1 << 20;
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    h.Reset();
    (void)h.PercentileMicros(0.5);
    (void)h.max_micros();
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_micros(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(42);
  EXPECT_EQ(g.value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.value(), -8);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsRegistryTest, GaugeIsRegisteredAndReset) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("cache.size");
  g.Set(7);
  EXPECT_EQ(&registry.GetGauge("cache.size"), &g);  // same object on reuse
  EXPECT_NE(registry.Report().find("cache.size"), std::string::npos);
  registry.ResetAll();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricsRegistryTest, PromTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("svc.requests-total").Increment(3);
  registry.GetGauge("svc.queue_depth").Set(5);
  LatencyHistogram& h = registry.GetHistogram("svc.latency");
  h.Record(10);   // [8, 16)  -> inclusive upper bound le="15"
  h.Record(200);  // [128, 256) -> le="255"

  std::string text = registry.PromText();
  // Names are prefixed and sanitized to [a-z0-9_].
  EXPECT_NE(text.find("# TYPE aqv_svc_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_svc_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aqv_svc_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_svc_queue_depth 5\n"), std::string::npos);
  // Histograms export natively: cumulative buckets at the power-of-two
  // inclusive bounds, the empty tail collapsed into +Inf.
  EXPECT_NE(text.find("# TYPE aqv_svc_latency histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_svc_latency_bucket{le=\"7\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_svc_latency_bucket{le=\"15\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_svc_latency_bucket{le=\"127\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_svc_latency_bucket{le=\"255\"} 2\n"),
            std::string::npos);
  EXPECT_EQ(text.find("aqv_svc_latency_bucket{le=\"511\"}"),
            std::string::npos);  // tail collapsed
  EXPECT_NE(text.find("aqv_svc_latency_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("aqv_svc_latency_sum 210\n"), std::string::npos);
  EXPECT_NE(text.find("aqv_svc_latency_count 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, PromTextEmitsHelpOncePerFamily) {
  MetricsRegistry registry;
  registry.SetHelp("reqs_total", "requests served by the service");
  registry.GetCounter("reqs_total").Increment();
  registry.GetCounter("other").Increment();
  std::string text = registry.PromText();
  EXPECT_NE(
      text.find("# HELP aqv_reqs_total requests served by the service\n"),
      std::string::npos);
  // A family without registered help still self-describes.
  EXPECT_NE(text.find("# HELP aqv_other "), std::string::npos);
  // Exactly one HELP and one TYPE line per family.
  size_t first = text.find("# TYPE aqv_reqs_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE aqv_reqs_total counter", first + 1),
            std::string::npos);
}

TEST(MetricsRegistryTest, PromBucketsAreCumulativeAndMonotone) {
  MetricsRegistry registry;
  LatencyHistogram& h = registry.GetHistogram("lat");
  // Spread samples over many buckets, including duplicates.
  for (uint64_t v : {0u, 1u, 2u, 3u, 900u, 900u, 5000u, 70000u}) h.Record(v);
  std::string text = registry.PromText();

  // Parse every le bucket in order and check cumulative counts never
  // decrease and end at the +Inf total.
  std::vector<uint64_t> cumulative;
  size_t pos = 0;
  const std::string needle = "aqv_lat_bucket{le=\"";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    cumulative.push_back(std::strtoull(text.c_str() + value_at + 2,
                                       nullptr, 10));
    pos = value_at;
  }
  ASSERT_GE(cumulative.size(), 3u);  // at least a few buckets plus +Inf
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]) << "bucket " << i;
  }
  EXPECT_EQ(cumulative.back(), 8u);  // +Inf == _count
  EXPECT_NE(text.find("aqv_lat_count 8\n"), std::string::npos);
}

TEST(MetricsRegistryTest, PromLabeledNameEscapesLabelValues) {
  // Label values with quotes, backslashes, and newlines must be escaped at
  // name-construction time; the exposition emits label blocks verbatim.
  std::string name = PromLabeledName("fp.hits", "site", "a\"b\\c\nd");
  EXPECT_EQ(name, "fp.hits{site=\"a\\\"b\\\\c\\nd\"}");

  MetricsRegistry registry;
  registry.GetCounter(name).Increment(2);
  std::string text = registry.PromText();
  EXPECT_NE(text.find("aqv_fp_hits{site=\"a\\\"b\\\\c\\nd\"} 2\n"),
            std::string::npos);
}

TEST(LatencyHistogramTest, BucketUpperBoundsAndTopBucket) {
  // Inclusive integer upper bounds: 0, 1, 3, 7, ... (2^i - 1).
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(4), 15u);
  EXPECT_EQ(LatencyHistogram::BucketUpperMicros(8), 255u);

  // A sample beyond the last finite bucket lands in the top bucket and the
  // percentile stays finite (clamped to the max sample, never overflowing).
  LatencyHistogram h;
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_micros(), UINT64_MAX);
  double p99 = h.PercentileMicros(0.99);
  EXPECT_GT(p99, 0.0);
  std::vector<uint64_t> counts = h.BucketCounts();
  EXPECT_EQ(counts.back(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUse) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("shared").Increment();
        registry.GetHistogram("lat").Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.GetCounter("shared").value(), 800u);
  EXPECT_EQ(registry.GetHistogram("lat").count(), 800u);
  EXPECT_EQ(registry.GetHistogram("lat").max_micros(), 199u);
}

}  // namespace
}  // namespace aqv
