#include <gtest/gtest.h>

#include "exec/explain_plan.h"
#include "ir/builder.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

Database SmallDb() {
  Database db;
  Table r({"a", "b"});
  for (int i = 0; i < 10; ++i) {
    r.AddRowOrDie({Value::Int64(i), Value::Int64(i)});
  }
  db.Put("R", std::move(r));
  Table s({"c", "d"});
  for (int i = 0; i < 100; ++i) {
    s.AddRowOrDie({Value::Int64(i), Value::Int64(i)});
  }
  db.Put("S", std::move(s));
  return db;
}

TEST(ExplainPlanTest, ShowsScanFilterJoinAggregate) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R", {"A1", "B1"})
                .From("S", {"C1", "D1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "D1", "s")
                .WhereCols("B1", CmpOp::kEq, "C1")
                .WhereConst("D1", CmpOp::kLt, Value::Int64(50))
                .GroupBy("A1")
                .HavingAgg(AggFn::kSum, "D1", CmpOp::kGt, Value::Int64(5))
                .BuildOrDie();
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(q, db));
  // The smaller input (R) leads; S is hash-joined with a pushed filter.
  EXPECT_NE(plan.find("Scan R [10 rows]"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HashJoin(B1 = C1) with S [100 rows] filter(D1 < 50)"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("HashAggregate(groups: A1; aggregates: SUM(D1))"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("Having(SUM(D1) > 5)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Project("), std::string::npos) << plan;
}

TEST(ExplainPlanTest, CartesianWhenDisconnected) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R", {"A1", "B1"})
                .From("S", {"C1", "D1"})
                .Select("A1")
                .Select("C1")
                .BuildOrDie();
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(q, db));
  EXPECT_NE(plan.find("CartesianProduct"), std::string::npos) << plan;
}

TEST(ExplainPlanTest, MultiTableNonEquiShowsAsFilter) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R", {"A1", "B1"})
                .From("S", {"C1", "D1"})
                .Select("A1")
                .WhereCols("B1", CmpOp::kLt, "C1")
                .BuildOrDie();
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(q, db));
  EXPECT_NE(plan.find("Filter(B1 < C1)"), std::string::npos) << plan;
}

TEST(ExplainPlanTest, VirtualViewAnnotated) {
  Database db = SmallDb();
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V", QueryBuilder().From("R", {"x", "y"}).Select("x").BuildOrDie()}));
  Query q = QueryBuilder().From("V", {"A1"}).Select("A1").BuildOrDie();
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(q, db, &views));
  EXPECT_NE(plan.find("V [virtual]"), std::string::npos) << plan;
}

TEST(ExplainPlanTest, GlobalAggregateAndDistinct) {
  Database db = SmallDb();
  Query q = QueryBuilder()
                .From("R", {"A1", "B1"})
                .SelectAgg(AggFn::kCount, "A1", "n")
                .BuildOrDie();
  ASSERT_OK_AND_ASSIGN(std::string plan, ExplainPlan(q, db));
  EXPECT_NE(plan.find("groups: <global>"), std::string::npos) << plan;

  Query d = QueryBuilder()
                .From("R", {"A1", "B1"})
                .Distinct()
                .Select("A1")
                .BuildOrDie();
  ASSERT_OK_AND_ASSIGN(std::string plan2, ExplainPlan(d, db));
  EXPECT_NE(plan2.find("ProjectDistinct("), std::string::npos) << plan2;
}

TEST(ExplainPlanTest, UnknownTableFails) {
  Database db = SmallDb();
  Query q = QueryBuilder().From("Nope", {"A1"}).Select("A1").BuildOrDie();
  EXPECT_EQ(ExplainPlan(q, db).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace aqv
