// Crash-recovery chaos for the durable storage subsystem: a QueryService
// over a real db file is killed at every storage failpoint — torn WAL
// appends, unsynced commits, mid-checkpoint page flushes, WAL-truncate
// failures, faults during replay itself — and then recovered, with the
// result checked differentially against an in-test oracle of acknowledged
// writes.
//
// The durability contract under test (README "Durability contract"):
//   - every ACKNOWLEDGED commit survives a crash;
//   - a commit that failed (or was in flight) either vanishes entirely or
//     survives atomically — never a partial row set; so the recovered
//     table equals `acked` or `acked + pending`, nothing else;
//   - recovered stored views are consistent with the recovered base
//     tables (REFRESH after recovery is a no-op on contents);
//   - CHECKPOINT + restart recovers with zero WAL replay;
//   - recovery itself is read-only, so a recovery that dies on an
//     injected fault can simply be retried.
//
// The kill is simulated, not SIGKILL: every storage failpoint fires with
// the on-disk state a real kill at that instant leaves behind (wal.append
// tears the record mid-write, wal.fsync leaves it written-but-unsynced,
// page.flush aborts a shadow checkpoint between page writes), the WAL
// fail-stops so the "doomed" process can write nothing more, and the
// service object is destroyed without any shutdown flush. Recovery then
// sees exactly the bytes a crash would have left.
//
// Randomized sweeps are seeded (AQV_TEST_SEED) and print their seed on
// failure for replay.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "exec/csv.h"
#include "exec/table.h"
#include "service/query_service.h"
#include "storage/page.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

std::string FreshPath(const std::string& stem) {
  std::string path = ::testing::TempDir() + "/aqv_" + stem;
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

std::unique_ptr<QueryService> MakeService(const std::string& db_path) {
  ServiceOptions options;
  options.storage_path = db_path;
  options.storage_buffer_pages = 8;  // small pool: exercise eviction
  return std::make_unique<QueryService>(options);
}

// XORs one byte of `path` at `offset` — simulated bit rot.
void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  ASSERT_TRUE(f.read(&b, 1).good());
  b = static_cast<char>(b ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  ASSERT_TRUE(f.write(&b, 1).good());
}

// Flips a byte inside every on-disk occurrence of `marker` in `path`.
size_t FlipMarkerBytes(const std::string& path, const std::string& marker) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  size_t hits = 0;
  for (size_t pos = bytes.find(marker); pos != std::string::npos;
       pos = bytes.find(marker, pos + 1)) {
    FlipByteAt(path, pos + 2);
    ++hits;
  }
  return hits;
}

// Spin until `pred` holds or ~10 s pass (the auto-checkpointer polls every
// 20 ms, so this is hundreds of chances even on a loaded 1-CPU box).
bool WaitFor(const std::function<bool()>& pred) {
  for (int i = 0; i < 1000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// Rows of `table`, sorted, for order-insensitive comparison.
std::vector<Row> SortedRows(const Table& table) {
  std::vector<Row> rows = table.rows();
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  return rows;
}

std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  return rows;
}

// The in-test oracle: per-table multisets of acknowledged rows, plus the
// rows of the single in-flight commit a crash may or may not have
// preserved.
struct Oracle {
  std::map<std::string, std::vector<Row>> acked;
  std::map<std::string, std::vector<Row>> pending;

  void Ack(const std::string& table, const std::vector<Row>& rows) {
    auto& dst = acked[table];
    dst.insert(dst.end(), rows.begin(), rows.end());
  }
  void SetPending(const std::string& table, const std::vector<Row>& rows) {
    pending.clear();
    pending[table] = rows;
  }
};

// INSERT statement for integer rows.
std::string InsertSql(const std::string& table,
                      const std::vector<Row>& rows) {
  std::string sql = "INSERT INTO " + table + " VALUES ";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "(";
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j > 0) sql += ", ";
      sql += rows[i][j].ToString();
    }
    sql += ")";
  }
  return sql;
}

// Checks one recovered table against the oracle: its contents must be
// exactly `acked`, or exactly `acked + pending` (the unacknowledged
// commit survived atomically). Returns true iff the pending rows made it.
bool CheckTable(const QueryService& unused, const Table& recovered,
                const Oracle& oracle, const std::string& table) {
  (void)unused;
  std::vector<Row> got = SortedRows(recovered);
  std::vector<Row> want_acked;
  auto it = oracle.acked.find(table);
  if (it != oracle.acked.end()) want_acked = it->second;

  std::vector<Row> want_with_pending = want_acked;
  auto pit = oracle.pending.find(table);
  if (pit != oracle.pending.end()) {
    want_with_pending.insert(want_with_pending.end(), pit->second.begin(),
                             pit->second.end());
  }
  std::vector<Row> acked_sorted = Sorted(std::move(want_acked));
  if (got == acked_sorted) return false;
  std::vector<Row> pending_sorted = Sorted(std::move(want_with_pending));
  EXPECT_EQ(got, pending_sorted)
      << "table " << table << ": recovered contents match neither the acked "
      << "rows nor acked+pending (partial commit?) — got " << got.size()
      << " rows, acked " << acked_sorted.size() << ", acked+pending "
      << pending_sorted.size();
  return true;
}

// Recovered-view self-consistency: REFRESH (a full recompute from the
// recovered bases) must not change the stored contents.
void CheckViewConsistent(QueryService* service, const std::string& view) {
  ServiceSnapshotPtr before = service->PinSnapshot();
  ASSERT_OK_AND_ASSIGN(const Table* stored, before->db.Get(view));
  Table stored_copy = *stored;
  ASSERT_OK(service->Execute("REFRESH " + view).status());
  ServiceSnapshotPtr after = service->PinSnapshot();
  ASSERT_OK_AND_ASSIGN(const Table* refreshed, after->db.Get(view));
  EXPECT_TRUE(MultisetEqual(stored_copy, *refreshed))
      << "view " << view
      << " recovered stale relative to the recovered base tables:\n"
      << DescribeMultisetDifference(stored_copy, *refreshed);
}

// The base schema + view every test below starts from.
void Bootstrap(QueryService* service, Oracle* oracle) {
  ASSERT_OK(service->Execute("CREATE TABLE R(A, B) KEY(A)").status());
  ASSERT_OK(service->Execute("CREATE TABLE S(C, D)").status());
  ASSERT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW VSum AS "
                          "SELECT A_1, SUM(B_1) FROM R GROUPBY A_1")
                .status());
  std::vector<Row> r0 = {{Value::Int64(1), Value::Int64(10)},
                         {Value::Int64(2), Value::Int64(20)}};
  std::vector<Row> s0 = {{Value::Int64(7), Value::Int64(70)}};
  ASSERT_OK(service->Execute(InsertSql("R", r0)).status());
  ASSERT_OK(service->Execute(InsertSql("S", s0)).status());
  oracle->Ack("R", r0);
  oracle->Ack("S", s0);
}

void CheckRecovered(QueryService* service, Oracle* oracle) {
  ASSERT_TRUE(service->storage_attached())
      << service->storage_status().ToString();
  ServiceSnapshotPtr snap = service->PinSnapshot();
  for (const auto& [table, rows] : oracle->acked) {
    (void)rows;
    ASSERT_TRUE(snap->db.Has(table)) << "table " << table << " lost";
    ASSERT_OK_AND_ASSIGN(const Table* got, snap->db.Get(table));
    if (CheckTable(*service, *got, *oracle, table)) {
      // The pending commit survived: fold it into the oracle.
      auto it = oracle->pending.find(table);
      if (it != oracle->pending.end()) oracle->Ack(table, it->second);
    }
  }
  oracle->pending.clear();
  CheckViewConsistent(service, "VSum");
}

// ---------------------------------------------------------------------
// Deterministic kill-at-failpoint matrix.
// ---------------------------------------------------------------------

// Crash while appending the WAL record: the record is torn mid-write, so
// the commit must vanish; everything acknowledged before it survives.
TEST(RecoveryTest, KillAtWalAppend) {
  std::string path = FreshPath("kill_wal_append.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  std::vector<Row> doomed = {{Value::Int64(3), Value::Int64(30)}};
  {
    FailpointScope fp("wal.append", "error");
    ASSERT_TRUE(fp.armed());
    EXPECT_FALSE(service->Execute(InsertSql("R", doomed)).ok());
  }
  oracle.SetPending("R", doomed);
  // Fail-stop: the doomed service can commit nothing more before the
  // "kill" — exactly what a dead process can write.
  EXPECT_FALSE(service->Execute("INSERT INTO R VALUES (99, 99)").ok());
  service.reset();  // the crash

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  // A torn record can never replay: the pending rows must NOT be there.
  ServiceSnapshotPtr snap = service->PinSnapshot();
  ASSERT_OK_AND_ASSIGN(const Table* r, snap->db.Get("R"));
  EXPECT_EQ(r->num_rows(), oracle.acked["R"].size());
}

// Crash after the record is fully written but before the fsync: the
// commit was never acknowledged, but recovery may legitimately find the
// intact record and replay it — atomically or not at all.
TEST(RecoveryTest, KillAtWalFsync) {
  std::string path = FreshPath("kill_wal_fsync.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  std::vector<Row> doomed = {{Value::Int64(4), Value::Int64(40)},
                             {Value::Int64(5), Value::Int64(50)}};
  {
    FailpointScope fp("wal.fsync", "error");
    ASSERT_TRUE(fp.armed());
    EXPECT_FALSE(service->Execute(InsertSql("R", doomed)).ok());
  }
  oracle.SetPending("R", doomed);
  service.reset();

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  // Either zero or both pending rows — CheckRecovered already rejected
  // any in-between; writes work again after recovery.
  std::vector<Row> more = {{Value::Int64(6), Value::Int64(60)}};
  ASSERT_OK(service->Execute(InsertSql("R", more)).status());
  oracle.Ack("R", more);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
}

// Crash between two page writes of a shadow checkpoint: the previous
// checkpoint stays live and the whole WAL tail replays on top of it.
TEST(RecoveryTest, KillAtPageFlushDuringCheckpoint) {
  std::string path = FreshPath("kill_page_flush.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  std::vector<Row> extra = {{Value::Int64(8), Value::Int64(80)}};
  ASSERT_OK(service->Execute(InsertSql("S", extra)).status());
  oracle.Ack("S", extra);

  {
    // Fire on the 3rd page write, mid-stream through the shadow set.
    FailpointScope fp("page.flush", "error(100,1)");
    ASSERT_TRUE(fp.armed());
    EXPECT_FALSE(service->Execute("CHECKPOINT").ok());
  }
  service.reset();

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
}

// Crash after the checkpoint's meta flip but before the WAL truncate:
// replay must skip every record the checkpoint already covers (no
// double-applied rows).
TEST(RecoveryTest, KillAtWalTruncateAfterCheckpoint) {
  std::string path = FreshPath("kill_wal_truncate.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  {
    FailpointScope fp("wal.truncate", "error");
    ASSERT_TRUE(fp.armed());
    // The checkpoint itself committed (meta flipped); only the truncate
    // failed, so the statement reports the failure.
    EXPECT_FALSE(service->Execute("CHECKPOINT").ok());
  }
  service.reset();

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  // The stale WAL records were skipped by sequence, not replayed twice.
  EXPECT_EQ(service->Stats().storage_wal_replayed, 0u);
}

// DELETE/UPDATE through the kill matrix (PR 10): delete-carrying WAL
// deltas must commit atomically. After a crash at any write-path failpoint
// the table holds exactly the pre-statement or the post-statement
// multiset — never a mix — and the recovered view matches a recompute.
// Failpoints before the WAL record is durable can only leave the
// pre-statement state; a kill between append and fsync may land either.
TEST(RecoveryTest, KillAtFailpointsDuringDeleteMaintenance) {
  const struct {
    const char* failpoint;
    bool can_survive;  // fires after the WAL record hit the file?
  } kKills[] = {
      {"table.cow_copy", false},
      {"maintain.apply", false},
      {"wal.append", false},
      {"wal.fsync", true},
  };
  auto sorted_rows = [](QueryService* s, const char* t) {
    ServiceSnapshotPtr snap = s->PinSnapshot();
    Result<const Table*> r = snap->db.Get(t);
    EXPECT_OK(r.status());
    return SortedRows(**r);
  };
  int variant = 0;
  for (const auto& kill : kKills) {
    SCOPED_TRACE(kill.failpoint);
    std::string path =
        FreshPath("kill_dml_" + std::to_string(variant++) + ".db");
    Oracle oracle;
    auto service = MakeService(path);
    ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

    // -------- DELETE under the failpoint, then crash. --------
    std::vector<Row> before = sorted_rows(service.get(), "R");
    std::vector<Row> after_delete =
        Sorted({{Value::Int64(2), Value::Int64(20)}});
    {
      FailpointScope fp(kill.failpoint, "error");
      ASSERT_TRUE(fp.armed());
      EXPECT_FALSE(service->Execute("DELETE FROM R WHERE A = 1").ok());
    }
    service.reset();  // the crash
    service = MakeService(path);
    ASSERT_TRUE(service->storage_attached())
        << service->storage_status().ToString();
    std::vector<Row> got = sorted_rows(service.get(), "R");
    if (kill.can_survive) {
      EXPECT_TRUE(got == before || got == after_delete)
          << "recovered R is neither pre- nor post-DELETE ("
          << got.size() << " rows)";
    } else {
      EXPECT_EQ(got, before) << "an unlogged DELETE replayed";
    }
    ASSERT_NO_FATAL_FAILURE(CheckViewConsistent(service.get(), "VSum"));
    if (sorted_rows(service.get(), "R") == before) {
      ASSERT_OK(service->Execute("DELETE FROM R WHERE A = 1").status());
    }
    EXPECT_EQ(sorted_rows(service.get(), "R"), after_delete);

    // -------- UPDATE under the failpoint, on the recovered state. --------
    std::vector<Row> after_update =
        Sorted({{Value::Int64(2), Value::Int64(25)}});
    {
      FailpointScope fp(kill.failpoint, "error");
      ASSERT_TRUE(fp.armed());
      EXPECT_FALSE(
          service->Execute("UPDATE R SET B = B + 5 WHERE A = 2").ok());
    }
    service.reset();
    service = MakeService(path);
    ASSERT_TRUE(service->storage_attached())
        << service->storage_status().ToString();
    got = sorted_rows(service.get(), "R");
    if (kill.can_survive) {
      EXPECT_TRUE(got == after_delete || got == after_update)
          << "recovered R is neither pre- nor post-UPDATE ("
          << got.size() << " rows)";
    } else {
      EXPECT_EQ(got, after_delete) << "an unlogged UPDATE replayed";
    }
    ASSERT_NO_FATAL_FAILURE(CheckViewConsistent(service.get(), "VSum"));
    if (sorted_rows(service.get(), "R") == after_delete) {
      ASSERT_OK(
          service->Execute("UPDATE R SET B = B + 5 WHERE A = 2").status());
    }
    EXPECT_EQ(sorted_rows(service.get(), "R"), after_update);
  }
}

// A fault during replay fails recovery — but recovery never writes, so
// disarming the fault and reopening succeeds on the same files.
TEST(RecoveryTest, RecoveryReplayFaultIsRetryable) {
  std::string path = FreshPath("kill_recovery_replay.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));
  service.reset();

  {
    FailpointScope fp("recovery.replay", "error");
    ASSERT_TRUE(fp.armed());
    auto failed = MakeService(path);
    EXPECT_FALSE(failed->storage_attached());
    EXPECT_FALSE(failed->storage_status().ok());
  }
  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  EXPECT_GT(service->Stats().storage_wal_replayed, 0u);
}

// ---------------------------------------------------------------------
// Acceptance-path round trips.
// ---------------------------------------------------------------------

TEST(RecoveryTest, CheckpointRestartRecoversWithZeroReplay) {
  std::string path = FreshPath("ckpt_zero_replay.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));
  ASSERT_OK(service->Execute("CHECKPOINT").status());
  service.reset();

  service = MakeService(path);
  EXPECT_EQ(service->Stats().storage_wal_replayed, 0u);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
}

TEST(RecoveryTest, PlanCacheSurvivesRestart) {
  std::string path = FreshPath("plan_cache_restart.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  const std::string query =
      "SELECT A_1, SUM(B_1) FROM R WHERE A_1 = 1 GROUPBY A_1";
  ASSERT_OK_AND_ASSIGN(StatementResult first, service->Execute(query));
  EXPECT_FALSE(first.cache_hit);
  ASSERT_OK(service->Execute("CHECKPOINT").status());
  service.reset();

  service = MakeService(path);
  ASSERT_OK_AND_ASSIGN(StatementResult warm, service->Execute(query));
  EXPECT_TRUE(warm.cache_hit) << "persisted plan cache was not restored";
  EXPECT_TRUE(MultisetEqual(*first.table, *warm.table));
}

TEST(RecoveryTest, LoadReplaceSurvivesCrashWithoutCheckpoint) {
  std::string path = FreshPath("load_replace.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  // Replace R wholesale via LOAD: logged as one delete-all+insert-all WAL
  // delta (no checkpoint on this path), so it must replay exactly.
  Table replacement({"A", "B"});
  replacement.AddRowOrDie({Value::Int64(100), Value::Int64(1000)});
  replacement.AddRowOrDie({Value::Int64(200), Value::Int64(2000)});
  std::string csv = ::testing::TempDir() + "/aqv_load_replace.csv";
  ASSERT_OK(WriteCsvFile(replacement, csv));
  ASSERT_OK(service->Execute("LOAD R FROM '" + csv + "'").status());
  oracle.acked["R"] = replacement.rows();
  service.reset();

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  std::remove(csv.c_str());
}

// ---------------------------------------------------------------------
// Corruption quarantine: bit rot in data pages and the WAL, salvage,
// clean per-table errors, and the LOAD repair path. (CI sweeps this
// matrix as --gtest_filter='*Corruption*' across seeds.)
// ---------------------------------------------------------------------

// Bit rot in one table's data page: the damaged table is quarantined and
// serves clean errors, everything else is salvaged intact, and a LOAD
// that fully replaces the contents repairs it.
TEST(CorruptionRecoveryTest, DataPageRotSalvageAndLoadRepair) {
  std::string path = FreshPath("corrupt_data_page.db");
  const std::string marker = "CORRUPT-ME-MARKER-PAYLOAD";
  {
    auto service = MakeService(path);
    ASSERT_OK(service->Execute("CREATE TABLE Bad(A, B)").status());
    ASSERT_OK(service->Execute("CREATE TABLE Good(C, D)").status());
    ASSERT_OK(service
                  ->Execute("INSERT INTO Bad VALUES (1, '" + marker + "')")
                  .status());
    ASSERT_OK(service->Execute("INSERT INTO Good VALUES (7, 70)").status());
    ASSERT_OK(service->Execute("CHECKPOINT").status());
  }
  ASSERT_GE(FlipMarkerBytes(path, marker), 1u);

  auto service = MakeService(path);
  ASSERT_TRUE(service->storage_attached())
      << service->storage_status().ToString();

  // Reads AND writes on the quarantined table refuse with a clean error
  // that names the repair path; the clean table works untouched.
  Result<StatementResult> read = service->Execute("SELECT A_1 FROM Bad");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(read.status().message().find("quarantined"), std::string::npos);
  EXPECT_NE(read.status().message().find("LOAD"), std::string::npos);
  EXPECT_FALSE(service->Execute("INSERT INTO Bad VALUES (2, 'x')").ok());
  ASSERT_OK_AND_ASSIGN(StatementResult good,
                       service->Execute("SELECT C_1, D_1 FROM Good"));
  EXPECT_EQ(good.table->num_rows(), 1u);
  ASSERT_EQ(service->Stats().quarantined_tables.size(), 1u);
  EXPECT_EQ(service->Stats().quarantined_tables[0].first, "Bad");
  EXPECT_GE(service->Stats().storage_pages_quarantined, 1u);

  // Repair: LOAD fully replaces the contents, clearing the quarantine.
  Table replacement({"A", "B"});
  replacement.AddRowOrDie({Value::Int64(5), Value::String("fresh")});
  std::string csv = ::testing::TempDir() + "/aqv_corrupt_repair.csv";
  ASSERT_OK(WriteCsvFile(replacement, csv));
  ASSERT_OK(service->Execute("LOAD Bad FROM '" + csv + "'").status());
  ASSERT_OK_AND_ASSIGN(StatementResult fixed,
                       service->Execute("SELECT A_1, B_1 FROM Bad"));
  EXPECT_TRUE(MultisetEqual(*fixed.table, replacement));
  EXPECT_TRUE(service->Stats().quarantined_tables.empty());
  ASSERT_OK(service->Execute("INSERT INTO Bad VALUES (6, 'more')").status());
  service.reset();

  // The repair is durable: a restart recovers the repaired table with no
  // quarantine.
  service = MakeService(path);
  ASSERT_TRUE(service->storage_attached());
  EXPECT_TRUE(service->Stats().quarantined_tables.empty());
  ASSERT_OK_AND_ASSIGN(StatementResult after,
                       service->Execute("SELECT A_1 FROM Bad"));
  EXPECT_EQ(after.table->num_rows(), 2u);
  std::remove(csv.c_str());
}

// A materialized view over a quarantined base is quarantined too — its
// recovered contents cannot be trusted and recomputing it against the
// salvaged-empty base would publish silently wrong rows.
TEST(CorruptionRecoveryTest, QuarantineExtendsToDependentViews) {
  std::string path = FreshPath("corrupt_view.db");
  const std::string marker = "VIEW-BASE-ROT-MARKER";
  {
    auto service = MakeService(path);
    ASSERT_OK(service->Execute("CREATE TABLE T(A, B)").status());
    ASSERT_OK(service->Execute("CREATE TABLE U(C, D)").status());
    // VT projects only A values: the marker string must rot T's page alone,
    // so the quarantine VT gets is the transitive kind under test, not its
    // own page failing a checksum.
    ASSERT_OK(service
                  ->Execute("CREATE MATERIALIZED VIEW VT AS "
                            "SELECT A_1, SUM(A_1) FROM T GROUPBY A_1")
                  .status());
    ASSERT_OK(service
                  ->Execute("CREATE MATERIALIZED VIEW VU AS "
                            "SELECT D_1, SUM(C_1) FROM U GROUPBY D_1")
                  .status());
    ASSERT_OK(service
                  ->Execute("INSERT INTO T VALUES (1, '" + marker + "')")
                  .status());
    ASSERT_OK(service->Execute("INSERT INTO U VALUES (3, 30)").status());
    ASSERT_OK(service->Execute("CHECKPOINT").status());
  }
  ASSERT_GE(FlipMarkerBytes(path, marker), 1u);

  auto service = MakeService(path);
  ASSERT_TRUE(service->storage_attached());
  // The base and its dependent view are both quarantined; REFRESH (which
  // would recompute VT from the salvaged-empty base) refuses cleanly.
  Result<StatementResult> refresh = service->Execute("REFRESH VT");
  ASSERT_FALSE(refresh.ok());
  EXPECT_NE(refresh.status().message().find("quarantined"),
            std::string::npos);
  ServiceStats stats = service->Stats();
  std::map<std::string, std::string> quarantined(
      stats.quarantined_tables.begin(), stats.quarantined_tables.end());
  ASSERT_EQ(quarantined.count("T"), 1u);
  ASSERT_EQ(quarantined.count("VT"), 1u);
  EXPECT_NE(quarantined["VT"].find("depends on quarantined table"),
            std::string::npos);
  EXPECT_EQ(quarantined.count("VU"), 0u);
  // The sibling view over the clean base recovered consistent and usable.
  ASSERT_NO_FATAL_FAILURE(CheckViewConsistent(service.get(), "VU"));

  // Repairing the base transitively returns the view to service.
  Table replacement({"A", "B"});
  replacement.AddRowOrDie({Value::Int64(9), Value::String("ok")});
  std::string csv = ::testing::TempDir() + "/aqv_view_repair.csv";
  ASSERT_OK(WriteCsvFile(replacement, csv));
  ASSERT_OK(service->Execute("LOAD T FROM '" + csv + "'").status());
  EXPECT_TRUE(service->Stats().quarantined_tables.empty());
  ASSERT_OK(service->Execute("REFRESH VT").status());
  ASSERT_NO_FATAL_FAILURE(CheckViewConsistent(service.get(), "VT"));
  std::remove(csv.c_str());
}

// Rot in the MIDDLE of the WAL (intact records beyond the tear): every
// table the log names is quarantined — an acknowledged commit between the
// clean prefix and the survivors is unrecoverable — while tables only the
// checkpoint knows are provably unaffected and stay in service.
TEST(CorruptionRecoveryTest, MidLogWalTearQuarantinesLoggedTables) {
  std::string path = FreshPath("corrupt_midlog.db");
  {
    auto service = MakeService(path);
    ASSERT_OK(service->Execute("CREATE TABLE R(A, B)").status());
    ASSERT_OK(service->Execute("CREATE TABLE S(C, D)").status());
    ASSERT_OK(service->Execute("INSERT INTO S VALUES (7, 70)").status());
    ASSERT_OK(service->Execute("CHECKPOINT").status());
    // Two post-checkpoint commits, both against R only.
    ASSERT_OK(service->Execute("INSERT INTO R VALUES (1, 10)").status());
    ASSERT_OK(service->Execute("INSERT INTO R VALUES (2, 20)").status());
  }
  // Corrupt the FIRST record's payload: the second stays intact beyond
  // the tear, which is mid-log corruption, not a torn tail.
  FlipByteAt(path + ".wal", LogWriter::kRecordHeaderSize + 3);

  auto service = MakeService(path);
  ASSERT_TRUE(service->storage_attached())
      << service->storage_status().ToString();
  Result<StatementResult> r = service->Execute("SELECT A_1 FROM R");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("quarantined"), std::string::npos);
  ASSERT_EQ(service->Stats().quarantined_tables.size(), 1u);
  EXPECT_EQ(service->Stats().quarantined_tables[0].first, "R");
  EXPECT_NE(service->Stats().quarantined_tables[0].second.find("mid-log"),
            std::string::npos);
  // S was checkpointed before the tear: salvaged exactly.
  ASSERT_OK_AND_ASSIGN(StatementResult s,
                       service->Execute("SELECT C_1, D_1 FROM S"));
  EXPECT_EQ(s.table->num_rows(), 1u);

  // The tear's evidence (the suspect WAL tail) was truncated by that very
  // recovery. The quarantine must outlive it: a second restart finds a
  // clean WAL, but the map persisted into the checkpoint directory keeps R
  // erroring instead of silently serving rows missing an acked commit.
  service.reset();
  service = MakeService(path);
  ASSERT_TRUE(service->storage_attached());
  Result<StatementResult> again = service->Execute("SELECT A_1 FROM R");
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.status().message().find("quarantined"), std::string::npos);
  ASSERT_EQ(service->Stats().quarantined_tables.size(), 1u);
  EXPECT_EQ(service->Stats().quarantined_tables[0].first, "R");

  // LOAD is still the repair path, and the repair itself is durable.
  Table fixed({"A", "B"});
  fixed.AddRowOrDie({Value::Int64(1), Value::Int64(10)});
  fixed.AddRowOrDie({Value::Int64(2), Value::Int64(20)});
  std::string csv = ::testing::TempDir() + "/aqv_midlog_repair.csv";
  ASSERT_OK(WriteCsvFile(fixed, csv));
  ASSERT_OK(service->Execute("LOAD R FROM '" + csv + "'").status());
  std::remove(csv.c_str());
  EXPECT_TRUE(service->Stats().quarantined_tables.empty());
  service.reset();
  service = MakeService(path);
  ASSERT_TRUE(service->storage_attached());
  EXPECT_TRUE(service->Stats().quarantined_tables.empty());
  ASSERT_OK_AND_ASSIGN(StatementResult repaired,
                       service->Execute("SELECT A_1, B_1 FROM R"));
  EXPECT_EQ(repaired.table->num_rows(), 2u);
}

// Rot in the LAST WAL record is indistinguishable from a kill mid-append:
// torn-tail semantics (the record is dropped silently), no quarantine.
TEST(CorruptionRecoveryTest, WalTailRotIsTornTailNotQuarantine) {
  std::string path = FreshPath("corrupt_tail.db");
  {
    auto service = MakeService(path);
    ASSERT_OK(service->Execute("CREATE TABLE R(A, B)").status());
    ASSERT_OK(service->Execute("INSERT INTO R VALUES (1, 10)").status());
    ASSERT_OK(service->Execute("CHECKPOINT").status());
    ASSERT_OK(service->Execute("INSERT INTO R VALUES (2, 20)").status());
  }
  FlipByteAt(path + ".wal", LogWriter::kRecordHeaderSize + 3);

  auto service = MakeService(path);
  ASSERT_TRUE(service->storage_attached());
  EXPECT_TRUE(service->Stats().quarantined_tables.empty());
  ASSERT_OK_AND_ASSIGN(StatementResult r,
                       service->Execute("SELECT A_1, B_1 FROM R"));
  EXPECT_EQ(r.table->num_rows(), 1u);  // the checkpointed row only
  // The service is fully healthy: writes work and are durable.
  ASSERT_OK(service->Execute("INSERT INTO R VALUES (3, 30)").status());
  service.reset();
  service = MakeService(path);
  ASSERT_OK_AND_ASSIGN(StatementResult after,
                       service->Execute("SELECT A_1, B_1 FROM R"));
  EXPECT_EQ(after.table->num_rows(), 2u);
}

// SCRUB detects on-disk rot that cached frames would mask, recommends
// CHECKPOINT, and the checkpoint (rewriting every data page from the live
// in-memory copy) heals it — no restart, no quarantine.
TEST(CorruptionRecoveryTest, ScrubStatementReportsAndCheckpointHeals) {
  std::string path = FreshPath("corrupt_scrub.db");
  const std::string marker = "SCRUB-STATEMENT-MARKER";
  auto service = MakeService(path);
  ASSERT_OK(service->Execute("CREATE TABLE T(A, B)").status());
  ASSERT_OK(service
                ->Execute("INSERT INTO T VALUES (1, '" + marker + "')")
                .status());
  ASSERT_OK(service->Execute("CHECKPOINT").status());

  ASSERT_OK_AND_ASSIGN(StatementResult clean, service->Execute("SCRUB"));
  EXPECT_NE(clean.message.find("all clean"), std::string::npos);

  ASSERT_GE(FlipMarkerBytes(path, marker), 1u);
  ASSERT_OK_AND_ASSIGN(StatementResult dirty, service->Execute("SCRUB"));
  EXPECT_NE(dirty.message.find("<-- damaged"), std::string::npos);
  EXPECT_NE(dirty.message.find("run CHECKPOINT"), std::string::npos);

  ASSERT_OK(service->Execute("CHECKPOINT").status());
  ASSERT_OK_AND_ASSIGN(StatementResult healed, service->Execute("SCRUB"));
  EXPECT_NE(healed.message.find("all clean"), std::string::npos);

  // The heal is real, not cosmetic: a restart recovers with no quarantine.
  service.reset();
  service = MakeService(path);
  ASSERT_TRUE(service->storage_attached());
  EXPECT_TRUE(service->Stats().quarantined_tables.empty());
  ASSERT_OK_AND_ASSIGN(StatementResult r,
                       service->Execute("SELECT A_1 FROM T"));
  EXPECT_EQ(r.table->num_rows(), 1u);
}

// Seeded single-byte rot at a random spot in the db file (meta pages
// excluded — losing the commit pointer is beyond salvage by design): the
// service must either refuse to open, or open with each table either
// exactly intact or cleanly quarantined. Never a crash, never wrong rows.
TEST(CorruptionRecoveryTest, RandomizedSinglePageRotSweep) {
  const uint64_t seed = TestSeed(20260809);
  SCOPED_TRACE(SeedTrace(seed));
  std::mt19937_64 rng(seed);

  std::string path = FreshPath("corrupt_random.db");
  Table r_rows({"A", "B"}), s_rows({"C", "D"});
  {
    auto service = MakeService(path);
    ASSERT_OK(service->Execute("CREATE TABLE R(A, B)").status());
    ASSERT_OK(service->Execute("CREATE TABLE S(C, D)").status());
    for (int i = 0; i < 40; ++i) {
      ASSERT_OK(service
                    ->Execute("INSERT INTO R VALUES (" + std::to_string(i) +
                              ", " + std::to_string(i * 10) + ")")
                    .status());
      r_rows.AddRowOrDie({Value::Int64(i), Value::Int64(i * 10)});
    }
    ASSERT_OK(service->Execute("INSERT INTO S VALUES (1, 2)").status());
    s_rows.AddRowOrDie({Value::Int64(1), Value::Int64(2)});
    ASSERT_OK(service->Execute("CHECKPOINT").status());
  }
  std::ifstream in(path, std::ios::binary);
  std::string pristine((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const uint64_t pages = pristine.size() / Page::kPageSize;
  ASSERT_GE(pages, 3u);

  for (int round = 0; round < 10 && !HasFatalFailure(); ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(pristine.data(), pristine.size());
    out.close();
    uint64_t page = 2 + rng() % (pages - 2);
    uint64_t offset = page * Page::kPageSize + rng() % Page::kPageSize;
    FlipByteAt(path, offset);

    auto service = MakeService(path);
    if (!service->storage_attached()) continue;  // directory rot: refused
    for (const auto& [table, want] :
         {std::pair<std::string, const Table*>{"R", &r_rows},
          std::pair<std::string, const Table*>{"S", &s_rows}}) {
      Result<StatementResult> got = service->Execute(
          "SELECT " + want->columns()[0] + "_1, " + want->columns()[1] +
          "_1 FROM " + table);
      if (got.ok()) {
        EXPECT_TRUE(MultisetEqual(*got->table, *want))
            << "table " << table << " served wrong rows after rot";
      } else {
        EXPECT_NE(got.status().message().find("quarantined"),
                  std::string::npos)
            << "table " << table
            << " failed without quarantine: " << got.status().ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------
// Auto-checkpoint, group commit, and backpressure.
// ---------------------------------------------------------------------

// The background checkpointer fires once the commit threshold is crossed
// and truncates the WAL, so the post-restart replay is bounded — and the
// recovered contents are identical to the no-auto-checkpoint world.
TEST(RecoveryTest, AutoCheckpointTriggersAndCommutesWithRecovery) {
  std::string path = FreshPath("auto_ckpt.db");
  ServiceOptions options;
  options.storage_path = path;
  options.storage_auto_checkpoint_commits = 4;
  Oracle oracle;
  auto service = std::make_unique<QueryService>(options);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  for (int i = 0; i < 6; ++i) {
    std::vector<Row> rows = {
        {Value::Int64(100 + i), Value::Int64(i)}};
    ASSERT_OK(service->Execute(InsertSql("R", rows)).status());
    oracle.Ack("R", rows);
  }
  ASSERT_TRUE(WaitFor([&] {
    return service->Stats().storage_auto_checkpoints >= 1;
  })) << "auto-checkpoint never fired past the 4-commit threshold";
  service.reset();  // the crash

  service = std::make_unique<QueryService>(options);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  // The checkpoint swallowed (at least) everything before its trigger.
  EXPECT_LE(service->Stats().storage_wal_replayed, 6u);
}

// Kill at the instant auto-checkpoint decides to run (the checkpoint.auto
// failpoint fires before the quiesce): the checkpoint simply never
// happens, and recovery replays the full WAL to the identical state —
// auto-checkpoint commutes with crash recovery.
TEST(RecoveryTest, KillAtAutoCheckpointTrigger) {
  std::string path = FreshPath("auto_ckpt_kill.db");
  ServiceOptions options;
  options.storage_path = path;
  options.storage_auto_checkpoint_commits = 2;
  Oracle oracle;
  {
    FailpointScope fp("checkpoint.auto", "error");
    ASSERT_TRUE(fp.armed());
    auto service = std::make_unique<QueryService>(options);
    ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));
    std::vector<Row> rows = {{Value::Int64(50), Value::Int64(500)}};
    ASSERT_OK(service->Execute(InsertSql("R", rows)).status());
    oracle.Ack("R", rows);
    // Give the checkpointer time to trip over the failpoint (and retry);
    // it must record the error rather than checkpoint.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_EQ(service->Stats().storage_auto_checkpoints, 0u);
    service.reset();  // killed at the trigger: no checkpoint ever ran
  }
  auto service = std::make_unique<QueryService>(options);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  // The full post-bootstrap WAL replayed — nothing was checkpointed away.
  EXPECT_GE(service->Stats().storage_wal_replayed, 3u);
}

// A group-commit leader dying at the fsync is the wal.fsync story writ
// large: the batch was written but never acknowledged, so it either
// replays atomically or vanishes.
TEST(RecoveryTest, KillAtGroupCommitLeaderFsync) {
  std::string path = FreshPath("kill_group_leader.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  std::vector<Row> doomed = {{Value::Int64(60), Value::Int64(600)}};
  {
    FailpointScope fp("wal.group_leader", "error");
    ASSERT_TRUE(fp.armed());
    EXPECT_FALSE(service->Execute(InsertSql("R", doomed)).ok());
  }
  oracle.SetPending("R", doomed);
  // Fail-stop: nothing more can commit before the "kill".
  EXPECT_FALSE(service->Execute("INSERT INTO R VALUES (98, 98)").ok());
  service.reset();

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
}

// Concurrent writers through the full service stack with group commit on
// and the auto-checkpointer racing them, then a crash: every acknowledged
// row from every thread survives.
TEST(RecoveryTest, GroupCommitMultiWriterSurvivesCrash) {
  std::string path = FreshPath("group_multiwriter.db");
  ServiceOptions options;
  options.storage_path = path;
  options.storage_auto_checkpoint_commits = 8;  // churn during the run
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 10;

  auto service = std::make_unique<QueryService>(options);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_OK(service
                  ->Execute("CREATE TABLE W" + std::to_string(t) + "(A, B)")
                  .status());
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&service, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        std::string sql = "INSERT INTO W" + std::to_string(t) + " VALUES (" +
                          std::to_string(i) + ", " + std::to_string(t) + ")";
        ASSERT_OK(service->Execute(sql).status());
      }
    });
  }
  for (std::thread& w : writers) w.join();
  ASSERT_FALSE(HasFatalFailure());
  service.reset();  // crash with no shutdown checkpoint

  service = std::make_unique<QueryService>(options);
  ASSERT_TRUE(service->storage_attached());
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_OK_AND_ASSIGN(
        StatementResult got,
        service->Execute("SELECT A_1, B_1 FROM W" + std::to_string(t)));
    EXPECT_EQ(got.table->num_rows(), static_cast<size_t>(kCommitsPerThread))
        << "writer " << t << " lost acknowledged commits";
  }
}

// With the WAL pinned over the backpressure cap and nothing able to
// checkpoint, a writer waits out its bounded deadline and then gets the
// clean SERVER_BUSY refusal — not an unbounded stall, not a crash.
TEST(RecoveryTest, BackpressureRefusesWhenCheckpointerCannotCatchUp) {
  std::string path = FreshPath("backpressure_busy.db");
  ServiceOptions options;
  options.storage_path = path;
  options.storage_backpressure_wal_bytes = 1;  // any commit is over the cap
  options.storage_backpressure_wait_micros = 50'000;
  // No auto-checkpoint triggers armed: the checkpointer can never relieve
  // the pressure, so the deadline must fire.
  options.storage_auto_checkpoint_wal_bytes = 0;
  options.storage_auto_checkpoint_commits = 0;

  auto service = std::make_unique<QueryService>(options);
  ASSERT_OK(service->Execute("CREATE TABLE R(A, B)").status());
  ASSERT_OK(service->Execute("INSERT INTO R VALUES (1, 10)").status());

  Result<StatementResult> busy = service->Execute("INSERT INTO R VALUES (2, 20)");
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(busy.status().message().find("SERVER_BUSY"), std::string::npos);
  EXPECT_GE(service->Stats().storage_backpressure_waits, 1u);

  // A manual CHECKPOINT truncates the WAL and lets writers through again.
  ASSERT_OK(service->Execute("CHECKPOINT").status());
  ASSERT_OK(service->Execute("INSERT INTO R VALUES (2, 20)").status());
}

// With an auto-checkpoint trigger armed, the same stalled writer is
// released by the background checkpointer instead of refused.
TEST(RecoveryTest, BackpressureRelievedByAutoCheckpoint) {
  std::string path = FreshPath("backpressure_relief.db");
  ServiceOptions options;
  options.storage_path = path;
  options.storage_backpressure_wal_bytes = 1;
  options.storage_backpressure_wait_micros = 10'000'000;  // 10 s: never hit
  options.storage_auto_checkpoint_commits = 1;

  auto service = std::make_unique<QueryService>(options);
  ASSERT_OK(service->Execute("CREATE TABLE R(A, B)").status());
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(service
                  ->Execute("INSERT INTO R VALUES (" + std::to_string(i) +
                            ", 0)")
                  .status());
  }
  EXPECT_TRUE(WaitFor([&] {
    return service->Stats().storage_auto_checkpoints >= 1;
  }));
  ASSERT_OK_AND_ASSIGN(StatementResult got,
                       service->Execute("SELECT A_1 FROM R"));
  EXPECT_EQ(got.table->num_rows(), 4u);
}

// Oversized rows are refused when they arrive — at INSERT and LOAD time,
// with a clear row-size error — not deferred to the next CHECKPOINT; and
// rows under the cap but far beyond one page chain through overflow pages
// and survive a crash.
TEST(RecoveryTest, OversizedRowRefusedAtStatementTime) {
  std::string path = FreshPath("oversized_row.db");
  auto service = MakeService(path);
  ASSERT_OK(service->Execute("CREATE TABLE T(A, B)").status());

  // Far over the 1 MiB encoded-row cap: refused cleanly at INSERT. (The
  // statement-length cap — the same 1 MiB — fires first for literal SQL
  // this large; either way the refusal is a clean size-limit error, never
  // a deferred CHECKPOINT failure.)
  std::string huge(StorageEngine::kMaxRowBytes + 100, 'x');
  Result<StatementResult> refused =
      service->Execute("INSERT INTO T VALUES (1, '" + huge + "')");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("limit"), std::string::npos);

  // Refused at LOAD too, leaving the table untouched.
  Table bad({"A", "B"});
  bad.AddRowOrDie({Value::Int64(1), Value::String(huge)});
  std::string csv = ::testing::TempDir() + "/aqv_oversized.csv";
  ASSERT_OK(WriteCsvFile(bad, csv));
  Result<StatementResult> load_refused =
      service->Execute("LOAD T FROM '" + csv + "'");
  ASSERT_FALSE(load_refused.ok());
  EXPECT_NE(
      load_refused.status().message().find("exceeds the storage row limit"),
      std::string::npos);
  std::remove(csv.c_str());

  // A multi-page (but under-cap) row is accepted, checkpoints through the
  // overflow chain, and survives a crash plus restart.
  std::string big(3 * Page::kMaxRecordSize + 17, 'y');
  ASSERT_OK(
      service->Execute("INSERT INTO T VALUES (2, '" + big + "')").status());
  ASSERT_OK(service->Execute("CHECKPOINT").status());
  ASSERT_OK(
      service->Execute("INSERT INTO T VALUES (3, '" + big + "')").status());
  service.reset();  // crash: the second big row lives only in the WAL

  service = MakeService(path);
  ASSERT_OK_AND_ASSIGN(StatementResult got,
                       service->Execute("SELECT A_1, B_1 FROM T"));
  ASSERT_EQ(got.table->num_rows(), 2u);
  for (const Row& row : got.table->rows()) {
    EXPECT_EQ(row[1], Value::String(big));
  }
}

// ---------------------------------------------------------------------
// Randomized kill-recover chaos sweep (seeded; replay with AQV_TEST_SEED).
// ---------------------------------------------------------------------

TEST(RecoveryTest, RandomizedKillRecoverSweep) {
  const uint64_t seed = TestSeed(20260808);
  SCOPED_TRACE(SeedTrace(seed));
  std::mt19937_64 rng(seed);

  std::string path = FreshPath("chaos_sweep.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  const std::vector<std::string> tables = {"R", "S"};
  const std::vector<std::string> faults = {"wal.append", "wal.fsync",
                                           "page.flush"};
  int64_t next_key = 1000;

  for (int round = 0; round < 12 && !HasFatalFailure(); ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    // A burst of acknowledged work: inserts, the odd checkpoint.
    int ops = 1 + static_cast<int>(rng() % 4);
    for (int op = 0; op < ops; ++op) {
      if (rng() % 5 == 0) {
        ASSERT_OK(service->Execute("CHECKPOINT").status());
        continue;
      }
      const std::string& table = tables[rng() % tables.size()];
      std::vector<Row> rows;
      int n = 1 + static_cast<int>(rng() % 3);
      for (int i = 0; i < n; ++i) {
        rows.push_back({Value::Int64(next_key++),
                        Value::Int64(static_cast<int64_t>(rng() % 1000))});
      }
      ASSERT_OK(service->Execute(InsertSql(table, rows)).status());
      oracle.Ack(table, rows);
    }

    // Kill: two thirds of rounds die at a random storage failpoint with a
    // commit in flight, the rest crash between statements.
    if (rng() % 3 != 2) {
      const std::string& fault = faults[rng() % faults.size()];
      FailpointScope fp(fault, "error");
      ASSERT_TRUE(fp.armed());
      if (fault == "page.flush") {
        EXPECT_FALSE(service->Execute("CHECKPOINT").ok());
      } else {
        const std::string& table = tables[rng() % tables.size()];
        std::vector<Row> doomed = {
            {Value::Int64(next_key++),
             Value::Int64(static_cast<int64_t>(rng() % 1000))}};
        EXPECT_FALSE(service->Execute(InsertSql(table, doomed)).ok());
        oracle.SetPending(table, doomed);
      }
    }
    service.reset();

    // Occasionally the first recovery attempt itself dies (the fault only
    // fires when the WAL tail is non-empty); either way the retry below
    // must succeed on the same (read-only-so-far) files.
    if (rng() % 4 == 0) {
      FailpointScope fp("recovery.replay", "error");
      auto maybe_failed = MakeService(path);
      if (maybe_failed->storage_attached()) {
        // It can only have attached by replaying nothing.
        EXPECT_EQ(maybe_failed->Stats().storage_wal_replayed, 0u);
      }
    }
    service = MakeService(path);
    ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  }
}

}  // namespace
}  // namespace aqv
