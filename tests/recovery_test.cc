// Crash-recovery chaos for the durable storage subsystem: a QueryService
// over a real db file is killed at every storage failpoint — torn WAL
// appends, unsynced commits, mid-checkpoint page flushes, WAL-truncate
// failures, faults during replay itself — and then recovered, with the
// result checked differentially against an in-test oracle of acknowledged
// writes.
//
// The durability contract under test (README "Durability contract"):
//   - every ACKNOWLEDGED commit survives a crash;
//   - a commit that failed (or was in flight) either vanishes entirely or
//     survives atomically — never a partial row set; so the recovered
//     table equals `acked` or `acked + pending`, nothing else;
//   - recovered stored views are consistent with the recovered base
//     tables (REFRESH after recovery is a no-op on contents);
//   - CHECKPOINT + restart recovers with zero WAL replay;
//   - recovery itself is read-only, so a recovery that dies on an
//     injected fault can simply be retried.
//
// The kill is simulated, not SIGKILL: every storage failpoint fires with
// the on-disk state a real kill at that instant leaves behind (wal.append
// tears the record mid-write, wal.fsync leaves it written-but-unsynced,
// page.flush aborts a shadow checkpoint between page writes), the WAL
// fail-stops so the "doomed" process can write nothing more, and the
// service object is destroyed without any shutdown flush. Recovery then
// sees exactly the bytes a crash would have left.
//
// Randomized sweeps are seeded (AQV_TEST_SEED) and print their seed on
// failure for replay.

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "exec/csv.h"
#include "exec/table.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

std::string FreshPath(const std::string& stem) {
  std::string path = ::testing::TempDir() + "/aqv_" + stem;
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

std::unique_ptr<QueryService> MakeService(const std::string& db_path) {
  ServiceOptions options;
  options.storage_path = db_path;
  options.storage_buffer_pages = 8;  // small pool: exercise eviction
  return std::make_unique<QueryService>(options);
}

// Rows of `table`, sorted, for order-insensitive comparison.
std::vector<Row> SortedRows(const Table& table) {
  std::vector<Row> rows = table.rows();
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  return rows;
}

std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  return rows;
}

// The in-test oracle: per-table multisets of acknowledged rows, plus the
// rows of the single in-flight commit a crash may or may not have
// preserved.
struct Oracle {
  std::map<std::string, std::vector<Row>> acked;
  std::map<std::string, std::vector<Row>> pending;

  void Ack(const std::string& table, const std::vector<Row>& rows) {
    auto& dst = acked[table];
    dst.insert(dst.end(), rows.begin(), rows.end());
  }
  void SetPending(const std::string& table, const std::vector<Row>& rows) {
    pending.clear();
    pending[table] = rows;
  }
};

// INSERT statement for integer rows.
std::string InsertSql(const std::string& table,
                      const std::vector<Row>& rows) {
  std::string sql = "INSERT INTO " + table + " VALUES ";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "(";
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j > 0) sql += ", ";
      sql += rows[i][j].ToString();
    }
    sql += ")";
  }
  return sql;
}

// Checks one recovered table against the oracle: its contents must be
// exactly `acked`, or exactly `acked + pending` (the unacknowledged
// commit survived atomically). Returns true iff the pending rows made it.
bool CheckTable(const QueryService& unused, const Table& recovered,
                const Oracle& oracle, const std::string& table) {
  (void)unused;
  std::vector<Row> got = SortedRows(recovered);
  std::vector<Row> want_acked;
  auto it = oracle.acked.find(table);
  if (it != oracle.acked.end()) want_acked = it->second;

  std::vector<Row> want_with_pending = want_acked;
  auto pit = oracle.pending.find(table);
  if (pit != oracle.pending.end()) {
    want_with_pending.insert(want_with_pending.end(), pit->second.begin(),
                             pit->second.end());
  }
  std::vector<Row> acked_sorted = Sorted(std::move(want_acked));
  if (got == acked_sorted) return false;
  std::vector<Row> pending_sorted = Sorted(std::move(want_with_pending));
  EXPECT_EQ(got, pending_sorted)
      << "table " << table << ": recovered contents match neither the acked "
      << "rows nor acked+pending (partial commit?) — got " << got.size()
      << " rows, acked " << acked_sorted.size() << ", acked+pending "
      << pending_sorted.size();
  return true;
}

// Recovered-view self-consistency: REFRESH (a full recompute from the
// recovered bases) must not change the stored contents.
void CheckViewConsistent(QueryService* service, const std::string& view) {
  ServiceSnapshotPtr before = service->PinSnapshot();
  ASSERT_OK_AND_ASSIGN(const Table* stored, before->db.Get(view));
  Table stored_copy = *stored;
  ASSERT_OK(service->Execute("REFRESH " + view).status());
  ServiceSnapshotPtr after = service->PinSnapshot();
  ASSERT_OK_AND_ASSIGN(const Table* refreshed, after->db.Get(view));
  EXPECT_TRUE(MultisetEqual(stored_copy, *refreshed))
      << "view " << view
      << " recovered stale relative to the recovered base tables:\n"
      << DescribeMultisetDifference(stored_copy, *refreshed);
}

// The base schema + view every test below starts from.
void Bootstrap(QueryService* service, Oracle* oracle) {
  ASSERT_OK(service->Execute("CREATE TABLE R(A, B) KEY(A)").status());
  ASSERT_OK(service->Execute("CREATE TABLE S(C, D)").status());
  ASSERT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW VSum AS "
                          "SELECT A_1, SUM(B_1) FROM R GROUPBY A_1")
                .status());
  std::vector<Row> r0 = {{Value::Int64(1), Value::Int64(10)},
                         {Value::Int64(2), Value::Int64(20)}};
  std::vector<Row> s0 = {{Value::Int64(7), Value::Int64(70)}};
  ASSERT_OK(service->Execute(InsertSql("R", r0)).status());
  ASSERT_OK(service->Execute(InsertSql("S", s0)).status());
  oracle->Ack("R", r0);
  oracle->Ack("S", s0);
}

void CheckRecovered(QueryService* service, Oracle* oracle) {
  ASSERT_TRUE(service->storage_attached())
      << service->storage_status().ToString();
  ServiceSnapshotPtr snap = service->PinSnapshot();
  for (const auto& [table, rows] : oracle->acked) {
    (void)rows;
    ASSERT_TRUE(snap->db.Has(table)) << "table " << table << " lost";
    ASSERT_OK_AND_ASSIGN(const Table* got, snap->db.Get(table));
    if (CheckTable(*service, *got, *oracle, table)) {
      // The pending commit survived: fold it into the oracle.
      auto it = oracle->pending.find(table);
      if (it != oracle->pending.end()) oracle->Ack(table, it->second);
    }
  }
  oracle->pending.clear();
  CheckViewConsistent(service, "VSum");
}

// ---------------------------------------------------------------------
// Deterministic kill-at-failpoint matrix.
// ---------------------------------------------------------------------

// Crash while appending the WAL record: the record is torn mid-write, so
// the commit must vanish; everything acknowledged before it survives.
TEST(RecoveryTest, KillAtWalAppend) {
  std::string path = FreshPath("kill_wal_append.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  std::vector<Row> doomed = {{Value::Int64(3), Value::Int64(30)}};
  {
    FailpointScope fp("wal.append", "error");
    ASSERT_TRUE(fp.armed());
    EXPECT_FALSE(service->Execute(InsertSql("R", doomed)).ok());
  }
  oracle.SetPending("R", doomed);
  // Fail-stop: the doomed service can commit nothing more before the
  // "kill" — exactly what a dead process can write.
  EXPECT_FALSE(service->Execute("INSERT INTO R VALUES (99, 99)").ok());
  service.reset();  // the crash

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  // A torn record can never replay: the pending rows must NOT be there.
  ServiceSnapshotPtr snap = service->PinSnapshot();
  ASSERT_OK_AND_ASSIGN(const Table* r, snap->db.Get("R"));
  EXPECT_EQ(r->num_rows(), oracle.acked["R"].size());
}

// Crash after the record is fully written but before the fsync: the
// commit was never acknowledged, but recovery may legitimately find the
// intact record and replay it — atomically or not at all.
TEST(RecoveryTest, KillAtWalFsync) {
  std::string path = FreshPath("kill_wal_fsync.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  std::vector<Row> doomed = {{Value::Int64(4), Value::Int64(40)},
                             {Value::Int64(5), Value::Int64(50)}};
  {
    FailpointScope fp("wal.fsync", "error");
    ASSERT_TRUE(fp.armed());
    EXPECT_FALSE(service->Execute(InsertSql("R", doomed)).ok());
  }
  oracle.SetPending("R", doomed);
  service.reset();

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  // Either zero or both pending rows — CheckRecovered already rejected
  // any in-between; writes work again after recovery.
  std::vector<Row> more = {{Value::Int64(6), Value::Int64(60)}};
  ASSERT_OK(service->Execute(InsertSql("R", more)).status());
  oracle.Ack("R", more);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
}

// Crash between two page writes of a shadow checkpoint: the previous
// checkpoint stays live and the whole WAL tail replays on top of it.
TEST(RecoveryTest, KillAtPageFlushDuringCheckpoint) {
  std::string path = FreshPath("kill_page_flush.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  std::vector<Row> extra = {{Value::Int64(8), Value::Int64(80)}};
  ASSERT_OK(service->Execute(InsertSql("S", extra)).status());
  oracle.Ack("S", extra);

  {
    // Fire on the 3rd page write, mid-stream through the shadow set.
    FailpointScope fp("page.flush", "error(100,1)");
    ASSERT_TRUE(fp.armed());
    EXPECT_FALSE(service->Execute("CHECKPOINT").ok());
  }
  service.reset();

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
}

// Crash after the checkpoint's meta flip but before the WAL truncate:
// replay must skip every record the checkpoint already covers (no
// double-applied rows).
TEST(RecoveryTest, KillAtWalTruncateAfterCheckpoint) {
  std::string path = FreshPath("kill_wal_truncate.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  {
    FailpointScope fp("wal.truncate", "error");
    ASSERT_TRUE(fp.armed());
    // The checkpoint itself committed (meta flipped); only the truncate
    // failed, so the statement reports the failure.
    EXPECT_FALSE(service->Execute("CHECKPOINT").ok());
  }
  service.reset();

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  // The stale WAL records were skipped by sequence, not replayed twice.
  EXPECT_EQ(service->Stats().storage_wal_replayed, 0u);
}

// A fault during replay fails recovery — but recovery never writes, so
// disarming the fault and reopening succeeds on the same files.
TEST(RecoveryTest, RecoveryReplayFaultIsRetryable) {
  std::string path = FreshPath("kill_recovery_replay.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));
  service.reset();

  {
    FailpointScope fp("recovery.replay", "error");
    ASSERT_TRUE(fp.armed());
    auto failed = MakeService(path);
    EXPECT_FALSE(failed->storage_attached());
    EXPECT_FALSE(failed->storage_status().ok());
  }
  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  EXPECT_GT(service->Stats().storage_wal_replayed, 0u);
}

// ---------------------------------------------------------------------
// Acceptance-path round trips.
// ---------------------------------------------------------------------

TEST(RecoveryTest, CheckpointRestartRecoversWithZeroReplay) {
  std::string path = FreshPath("ckpt_zero_replay.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));
  ASSERT_OK(service->Execute("CHECKPOINT").status());
  service.reset();

  service = MakeService(path);
  EXPECT_EQ(service->Stats().storage_wal_replayed, 0u);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
}

TEST(RecoveryTest, PlanCacheSurvivesRestart) {
  std::string path = FreshPath("plan_cache_restart.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  const std::string query =
      "SELECT A_1, SUM(B_1) FROM R WHERE A_1 = 1 GROUPBY A_1";
  ASSERT_OK_AND_ASSIGN(StatementResult first, service->Execute(query));
  EXPECT_FALSE(first.cache_hit);
  ASSERT_OK(service->Execute("CHECKPOINT").status());
  service.reset();

  service = MakeService(path);
  ASSERT_OK_AND_ASSIGN(StatementResult warm, service->Execute(query));
  EXPECT_TRUE(warm.cache_hit) << "persisted plan cache was not restored";
  EXPECT_TRUE(MultisetEqual(*first.table, *warm.table));
}

TEST(RecoveryTest, LoadReplaceSurvivesCrashWithoutCheckpoint) {
  std::string path = FreshPath("load_replace.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  // Replace R wholesale via LOAD: logged as one delete-all+insert-all WAL
  // delta (no checkpoint on this path), so it must replay exactly.
  Table replacement({"A", "B"});
  replacement.AddRowOrDie({Value::Int64(100), Value::Int64(1000)});
  replacement.AddRowOrDie({Value::Int64(200), Value::Int64(2000)});
  std::string csv = ::testing::TempDir() + "/aqv_load_replace.csv";
  ASSERT_OK(WriteCsvFile(replacement, csv));
  ASSERT_OK(service->Execute("LOAD R FROM '" + csv + "'").status());
  oracle.acked["R"] = replacement.rows();
  service.reset();

  service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  std::remove(csv.c_str());
}

// ---------------------------------------------------------------------
// Randomized kill-recover chaos sweep (seeded; replay with AQV_TEST_SEED).
// ---------------------------------------------------------------------

TEST(RecoveryTest, RandomizedKillRecoverSweep) {
  const uint64_t seed = TestSeed(20260808);
  SCOPED_TRACE(SeedTrace(seed));
  std::mt19937_64 rng(seed);

  std::string path = FreshPath("chaos_sweep.db");
  Oracle oracle;
  auto service = MakeService(path);
  ASSERT_NO_FATAL_FAILURE(Bootstrap(service.get(), &oracle));

  const std::vector<std::string> tables = {"R", "S"};
  const std::vector<std::string> faults = {"wal.append", "wal.fsync",
                                           "page.flush"};
  int64_t next_key = 1000;

  for (int round = 0; round < 12 && !HasFatalFailure(); ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    // A burst of acknowledged work: inserts, the odd checkpoint.
    int ops = 1 + static_cast<int>(rng() % 4);
    for (int op = 0; op < ops; ++op) {
      if (rng() % 5 == 0) {
        ASSERT_OK(service->Execute("CHECKPOINT").status());
        continue;
      }
      const std::string& table = tables[rng() % tables.size()];
      std::vector<Row> rows;
      int n = 1 + static_cast<int>(rng() % 3);
      for (int i = 0; i < n; ++i) {
        rows.push_back({Value::Int64(next_key++),
                        Value::Int64(static_cast<int64_t>(rng() % 1000))});
      }
      ASSERT_OK(service->Execute(InsertSql(table, rows)).status());
      oracle.Ack(table, rows);
    }

    // Kill: two thirds of rounds die at a random storage failpoint with a
    // commit in flight, the rest crash between statements.
    if (rng() % 3 != 2) {
      const std::string& fault = faults[rng() % faults.size()];
      FailpointScope fp(fault, "error");
      ASSERT_TRUE(fp.armed());
      if (fault == "page.flush") {
        EXPECT_FALSE(service->Execute("CHECKPOINT").ok());
      } else {
        const std::string& table = tables[rng() % tables.size()];
        std::vector<Row> doomed = {
            {Value::Int64(next_key++),
             Value::Int64(static_cast<int64_t>(rng() % 1000))}};
        EXPECT_FALSE(service->Execute(InsertSql(table, doomed)).ok());
        oracle.SetPending(table, doomed);
      }
    }
    service.reset();

    // Occasionally the first recovery attempt itself dies (the fault only
    // fires when the WAL tail is non-empty); either way the retry below
    // must succeed on the same (read-only-so-far) files.
    if (rng() % 4 == 0) {
      FailpointScope fp("recovery.replay", "error");
      auto maybe_failed = MakeService(path);
      if (maybe_failed->storage_attached()) {
        // It can only have attached by replaying nothing.
        EXPECT_EQ(maybe_failed->Stats().storage_wal_replayed, 0u);
      }
    }
    service = MakeService(path);
    ASSERT_NO_FATAL_FAILURE(CheckRecovered(service.get(), &oracle));
  }
}

}  // namespace
}  // namespace aqv
