// Edge-case coverage across modules: NULL handling in the executor,
// stacked views, string data through the whole pipeline, empty tables,
// duplicate grouping columns, and rewriter behaviour on degenerate inputs.

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "parser/parser.h"
#include "reason/closure.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

TEST(NullHandlingTest, AggregatesIgnoreNulls) {
  Database db;
  Table t({"a", "b"});
  t.AddRowOrDie({Value::Int64(1), Value::Int64(10)});
  t.AddRowOrDie({Value::Int64(1), Value::Null()});
  t.AddRowOrDie({Value::Int64(2), Value::Null()});
  db.Put("T", std::move(t));
  Query q = QueryBuilder()
                .From("T", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kCount, "B", "n")
                .SelectAgg(AggFn::kSum, "B", "s")
                .GroupBy("A")
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  Table expected({"A", "n", "s"});
  expected.AddRowOrDie({Value::Int64(1), Value::Int64(1), Value::Int64(10)});
  expected.AddRowOrDie({Value::Int64(2), Value::Int64(0), Value::Null()});
  EXPECT_TRUE(MultisetEqual(result, expected))
      << DescribeMultisetDifference(result, expected);
}

TEST(NullHandlingTest, PredicatesRejectNulls) {
  Database db;
  Table t({"a"});
  t.AddRowOrDie({Value::Null()});
  t.AddRowOrDie({Value::Int64(1)});
  db.Put("T", std::move(t));
  // A = A is false for NULL under SQL comparison.
  Query q = QueryBuilder()
                .From("T", {"A"})
                .Select("A")
                .WhereCols("A", CmpOp::kEq, "A")
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  EXPECT_EQ(result.num_rows(), 1u);
}

TEST(NullHandlingTest, NullGroupKeysFormOneGroup) {
  Database db;
  Table t({"a", "b"});
  t.AddRowOrDie({Value::Null(), Value::Int64(1)});
  t.AddRowOrDie({Value::Null(), Value::Int64(2)});
  db.Put("T", std::move(t));
  Query q = QueryBuilder()
                .From("T", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kCount, "B", "n")
                .GroupBy("A")
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][1], Value::Int64(2));
}

TEST(EmptyTablesTest, GroupedQueryOverEmptyInputIsEmpty) {
  Database db;
  db.Put("T", Table({"a", "b"}));
  Query q = QueryBuilder()
                .From("T", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kSum, "B", "s")
                .GroupBy("A")
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  EXPECT_EQ(result.num_rows(), 0u);
}

TEST(EmptyTablesTest, RewritingAgreesOnEmptyData) {
  // Rewritings remain multiset-equivalent on empty databases (grouped
  // queries: both sides are empty).
  Database db;
  db.Put("R1", Table({"a", "b"}));
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V", QueryBuilder()
               .From("R1", {"A2", "B2"})
               .Select("A2")
               .SelectAgg(AggFn::kSum, "B2", "s")
               .SelectAgg(AggFn::kCount, "B2", "n")
               .GroupBy("A2")
               .BuildOrDie()}));
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .BuildOrDie();
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  ExpectQueriesEquivalentOn(q, rewritten, db, &views);
}

TEST(StringDataTest, FullPipelineOverStrings) {
  Database db;
  Table t({"name", "team", "score"});
  t.AddRowOrDie({Value::String("ana"), Value::String("red"), Value::Int64(3)});
  t.AddRowOrDie({Value::String("bob"), Value::String("red"), Value::Int64(5)});
  t.AddRowOrDie({Value::String("cyd"), Value::String("blue"), Value::Int64(2)});
  db.Put("Players", std::move(t));

  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT Team, SUM(Score) AS total, MIN(Name) AS first_name "
                 "FROM Players(Name, Team, Score) WHERE Name <> 'bob' "
                 "GROUPBY Team"));
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  Table expected({"Team", "total", "first_name"});
  expected.AddRowOrDie(
      {Value::String("red"), Value::Int64(3), Value::String("ana")});
  expected.AddRowOrDie(
      {Value::String("blue"), Value::Int64(2), Value::String("cyd")});
  EXPECT_TRUE(MultisetEqual(result, expected))
      << DescribeMultisetDifference(result, expected);
}

TEST(StringDataTest, ClosureOverStringConstants) {
  std::vector<Predicate> conds = {
      Predicate{Operand::Column("A"), CmpOp::kEq,
                Operand::Constant(Value::String("x"))},
      Predicate{Operand::Column("B"), CmpOp::kGt,
                Operand::Constant(Value::String("x"))}};
  ASSERT_OK_AND_ASSIGN(ConstraintClosure c, ConstraintClosure::Build(conds));
  EXPECT_TRUE(c.Implies(Predicate{Operand::Column("B"), CmpOp::kGt,
                                  Operand::Column("A")}));
  EXPECT_TRUE(c.Implies(Predicate{Operand::Column("A"), CmpOp::kLt,
                                  Operand::Constant(Value::String("y"))}));
}

TEST(StackedViewsTest, ViewOverViewMaterializes) {
  Database db;
  Table t({"a", "b"});
  for (int i = 0; i < 10; ++i) {
    t.AddRowOrDie({Value::Int64(i % 3), Value::Int64(i)});
  }
  db.Put("T", std::move(t));
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V1", QueryBuilder()
                .From("T", {"A1", "B1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .BuildOrDie()}));
  ASSERT_OK(views.Register(ViewDef{
      "V2", QueryBuilder()
                .From("V1", {"X", "S"})
                .Select("X")
                .WhereConst("S", CmpOp::kGt, Value::Int64(10))
                .BuildOrDie()}));
  Evaluator eval(&db, &views);
  Query q = QueryBuilder().From("V2", {"G"}).Select("G").BuildOrDie();
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  // Groups: 0 -> 0+3+6+9=18, 1 -> 1+4+7=12, 2 -> 2+5+8=15; all > 10.
  EXPECT_EQ(result.num_rows(), 3u);
  EXPECT_EQ(eval.stats().views_materialized, 2u);
}

TEST(StackedViewsTest, QueryOverViewRewrittenWithDeeperView) {
  // A query referencing V1 (treated as a database table per Section 3.2)
  // can itself be rewritten with a view defined over V1.
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V1", QueryBuilder()
                .From("T", {"A1", "B1"})
                .Select("A1")
                .Select("B1")
                .BuildOrDie()}));
  ASSERT_OK(views.Register(ViewDef{
      "V1_SUMMARY", QueryBuilder()
                        .From("V1", {"X", "Y"})
                        .Select("X")
                        .SelectAgg(AggFn::kCount, "Y", "cnt")
                        .GroupBy("X")
                        .BuildOrDie()}));
  Query q = QueryBuilder()
                .From("V1", {"P", "Q"})
                .Select("P")
                .SelectAgg(AggFn::kCount, "Q", "n")
                .GroupBy("P")
                .BuildOrDie();
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten,
                       rewriter.RewriteUsingView(q, "V1_SUMMARY"));
  EXPECT_EQ(rewritten.from[0].table, "V1_SUMMARY");

  Database db;
  Table t({"a", "b"});
  for (int i = 0; i < 12; ++i) {
    t.AddRowOrDie({Value::Int64(i % 4), Value::Int64(i % 2)});
  }
  db.Put("T", std::move(t));
  ExpectQueriesEquivalentOn(q, rewritten, db, &views);
}

TEST(DegenerateTest, DuplicateGroupByColumns) {
  Database db;
  Table t({"a", "b"});
  t.AddRowOrDie({Value::Int64(1), Value::Int64(2)});
  t.AddRowOrDie({Value::Int64(1), Value::Int64(3)});
  db.Put("T", std::move(t));
  Query q = QueryBuilder()
                .From("T", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kSum, "B", "s")
                .GroupBy("A")
                .GroupBy("A")  // duplicate: harmless
                .BuildOrDie();
  Evaluator eval(&db);
  ASSERT_OK_AND_ASSIGN(Table result, eval.Execute(q));
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(result.rows()[0][1], Value::Int64(5));
}

TEST(DegenerateTest, ViewSelectingSameColumnTwice) {
  // A view projecting a column twice still rewrites (the duplicate output
  // gets a fresh name).
  ViewRegistry views;
  Query vq;
  vq.from.push_back(TableRef{"T", {"A2", "B2"}});
  vq.select.push_back(SelectItem::MakeColumn("A2"));
  vq.select.push_back(SelectItem::MakeColumn("A2", "A2_again"));
  vq.select.push_back(SelectItem::MakeColumn("B2"));
  ASSERT_OK(views.Register(ViewDef{"V", vq}));
  Query q = QueryBuilder()
                .From("T", {"A1", "B1"})
                .Select("A1")
                .Select("B1")
                .BuildOrDie();
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  Database db;
  Table t({"a", "b"});
  t.AddRowOrDie({Value::Int64(1), Value::Int64(2)});
  t.AddRowOrDie({Value::Int64(1), Value::Int64(2)});
  db.Put("T", std::move(t));
  ExpectQueriesEquivalentOn(q, rewritten, db, &views);
}

TEST(DegenerateTest, UnsatisfiableQueryRewrites) {
  // A query whose WHERE is unsatisfiable gets a FALSE residual; both sides
  // return empty results.
  Query q = QueryBuilder()
                .From("T", {"A1", "B1"})
                .Select("A1")
                .WhereConst("A1", CmpOp::kEq, Value::Int64(1))
                .WhereConst("A1", CmpOp::kEq, Value::Int64(2))
                .BuildOrDie();
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "V",
      QueryBuilder().From("T", {"A2", "B2"}).Select("A2").Select("B2").BuildOrDie()}));
  Rewriter rewriter(&views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(q, "V"));
  Database db;
  Table t({"a", "b"});
  t.AddRowOrDie({Value::Int64(1), Value::Int64(2)});
  db.Put("T", std::move(t));
  ExpectQueriesEquivalentOn(q, rewritten, db, &views);
}

TEST(DegenerateTest, MappingLimitRespectedByRewriter) {
  // A 5-way self-join against a 5-occurrence view explodes factorially;
  // the cap keeps the search bounded and the result still valid.
  QueryBuilder qb, vb;
  for (int i = 0; i < 5; ++i) {
    qb.From("T", {"A" + std::to_string(i)});
    vb.From("T", {"X" + std::to_string(i)});
  }
  qb.Select("A0");
  for (int i = 0; i < 5; ++i) vb.Select("X" + std::to_string(i));
  Query q = qb.BuildOrDie();
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{"V", vb.BuildOrDie()}));
  RewriteOptions options;
  options.max_mappings = 7;
  Rewriter rewriter(&views, nullptr, options);
  ASSERT_OK_AND_ASSIGN(std::vector<Rewriting> rewritings,
                       rewriter.RewritingsUsingView(q, "V"));
  EXPECT_LE(rewritings.size(), 7u);
  EXPECT_FALSE(rewritings.empty());
}

}  // namespace
}  // namespace aqv
