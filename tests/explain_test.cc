#include <gtest/gtest.h>

#include "ir/builder.h"
#include "rewrite/explain.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

Query SampleQuery() {
  return QueryBuilder()
      .From("R1", {"A1", "B1"})
      .Select("A1")
      .SelectAgg(AggFn::kSum, "B1", "s")
      .WhereConst("A1", CmpOp::kEq, Value::Int64(3))
      .GroupBy("A1")
      .BuildOrDie();
}

TEST(ExplainTest, UsableMappingCarriesRewriting) {
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2"})
                     .Select("A2")
                     .Select("B2")
                     .BuildOrDie()};
  ASSERT_OK_AND_ASSIGN(RewriteExplanation e, ExplainRewrite(SampleQuery(), v));
  EXPECT_TRUE(e.usable());
  ASSERT_EQ(e.mappings.size(), 1u);
  EXPECT_TRUE(e.mappings[0].usable);
  EXPECT_EQ(e.mappings[0].rewritten.from[0].table, "V");
  EXPECT_NE(e.ToString().find("usable ->"), std::string::npos);
}

TEST(ExplainTest, RefusalNamesTheCondition) {
  // The view projects out B, so SUM(B1) is not computable: C4.
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2"})
                     .Select("A2")
                     .BuildOrDie()};
  ASSERT_OK_AND_ASSIGN(RewriteExplanation e, ExplainRewrite(SampleQuery(), v));
  EXPECT_FALSE(e.usable());
  ASSERT_EQ(e.mappings.size(), 1u);
  EXPECT_NE(e.mappings[0].detail.find("C2/C4"), std::string::npos)
      << e.mappings[0].detail;
}

TEST(ExplainTest, StrongerViewRefusalMentionsConditions) {
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2"})
                     .Select("A2")
                     .Select("B2")
                     .WhereConst("B2", CmpOp::kEq, Value::Int64(9))
                     .BuildOrDie()};
  ASSERT_OK_AND_ASSIGN(RewriteExplanation e, ExplainRewrite(SampleQuery(), v));
  EXPECT_FALSE(e.usable());
  EXPECT_NE(e.mappings[0].detail.find("not entailed"), std::string::npos)
      << e.mappings[0].detail;
}

TEST(ExplainTest, NoMappingsWhenTablesDiffer) {
  ViewDef v{"V",
            QueryBuilder().From("R9", {"X", "Y"}).Select("X").BuildOrDie()};
  ASSERT_OK_AND_ASSIGN(RewriteExplanation e, ExplainRewrite(SampleQuery(), v));
  EXPECT_TRUE(e.mappings.empty());
  EXPECT_NE(e.ToString().find("no candidate column mapping"),
            std::string::npos);
}

TEST(ExplainTest, ReportsHavingNormalization) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .HavingCol("A1", CmpOp::kGe, Value::Int64(1))
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"A2", "B2"})
                     .Select("A2")
                     .Select("B2")
                     .WhereConst("A2", CmpOp::kGe, Value::Int64(1))
                     .BuildOrDie()};
  ASSERT_OK_AND_ASSIGN(RewriteExplanation e, ExplainRewrite(q, v));
  EXPECT_EQ(e.having_conjuncts_moved, 1);
  EXPECT_TRUE(e.usable());
}

TEST(ExplainTest, EnumeratesAllSelfJoinMappings) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .From("R1", {"A2", "B2"})
                .Select("A1")
                .Select("B2")
                .BuildOrDie();
  ViewDef v{"V", QueryBuilder()
                     .From("R1", {"X", "Y"})
                     .Select("X")
                     .BuildOrDie()};
  ASSERT_OK_AND_ASSIGN(RewriteExplanation e, ExplainRewrite(q, v));
  ASSERT_EQ(e.mappings.size(), 2u);
  // Replacing the first occurrence works (its B is not needed); replacing
  // the second hides B2, which the query selects.
  int usable = 0;
  for (const MappingExplanation& m : e.mappings) usable += m.usable;
  EXPECT_EQ(usable, 1);
}

}  // namespace
}  // namespace aqv
