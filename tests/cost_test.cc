#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "rewrite/cost.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

TEST(CostTest, SmallerInputIsCheaper) {
  Database db;
  Table big({"A", "B"});
  for (int i = 0; i < 1000; ++i) {
    big.AddRowOrDie({Value::Int64(i), Value::Int64(i)});
  }
  db.Put("Big", std::move(big));
  Table small({"A", "B"});
  for (int i = 0; i < 10; ++i) {
    small.AddRowOrDie({Value::Int64(i), Value::Int64(i)});
  }
  db.Put("Small", std::move(small));

  CostModel model;
  Query on_big = QueryBuilder().From("Big", {"A1", "B1"}).Select("A1").BuildOrDie();
  Query on_small =
      QueryBuilder().From("Small", {"A1", "B1"}).Select("A1").BuildOrDie();
  EXPECT_GT(model.Estimate(on_big, db), model.Estimate(on_small, db));
}

TEST(CostTest, UnknownInputIsExpensive) {
  Database db;
  CostModel model;
  Query q = QueryBuilder().From("Mystery", {"A1"}).Select("A1").BuildOrDie();
  EXPECT_GE(model.Estimate(q, db), 1e12);
}

TEST(CostTest, JoinCostsMoreThanScan) {
  Database db;
  Table t({"A"});
  for (int i = 0; i < 100; ++i) t.AddRowOrDie({Value::Int64(i)});
  db.Put("T", std::move(t));
  CostModel model;
  Query scan = QueryBuilder().From("T", {"A1"}).Select("A1").BuildOrDie();
  Query cross = QueryBuilder()
                    .From("T", {"A1"})
                    .From("T", {"A2"})
                    .Select("A1")
                    .BuildOrDie();
  EXPECT_GT(model.Estimate(cross, db), model.Estimate(scan, db));
}

TEST(CostTest, ChoosesSummaryViewForTelephonyQuery) {
  TelephonyParams params;
  params.num_calls = 20000;
  TelephonyWorkload w = MakeTelephonyWorkload(params);

  // Materialize V1 so the cost model can see its (small) cardinality.
  Evaluator eval(&w.db, &w.views);
  ASSERT_OK_AND_ASSIGN(Table v1, eval.MaterializeView("V1"));
  ASSERT_LT(v1.num_rows(), 2000u);
  w.db.Put("V1", std::move(v1));

  Rewriter rewriter(&w.views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(w.query, "V1"));

  int chosen = -2;
  Query best = ChooseCheapest(w.query, {rewritten}, w.db, CostModel{}, &chosen);
  EXPECT_EQ(chosen, 0);
  EXPECT_TRUE(best == rewritten);

  CostModel model;
  EXPECT_LT(model.Estimate(rewritten, w.db),
            model.Estimate(w.query, w.db) / 10);
}

}  // namespace
}  // namespace aqv
