#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/printer.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

TEST(TelephonyTest, WorkloadShape) {
  TelephonyParams params;
  params.num_calls = 5000;
  TelephonyWorkload w = MakeTelephonyWorkload(params);
  ASSERT_OK_AND_ASSIGN(const Table* calls, w.db.Get("Calls"));
  EXPECT_EQ(calls->num_rows(), 5000u);
  ASSERT_OK_AND_ASSIGN(const Table* plans, w.db.Get("Calling_Plans"));
  EXPECT_EQ(plans->num_rows(), static_cast<size_t>(params.num_plans));
  EXPECT_TRUE(w.views.Has("V1"));
}

TEST(TelephonyTest, SummaryViewIsSmall) {
  TelephonyParams params;
  params.num_calls = 20000;
  TelephonyWorkload w = MakeTelephonyWorkload(params);
  Evaluator eval(&w.db, &w.views);
  ASSERT_OK_AND_ASSIGN(Table v1, eval.MaterializeView("V1"));
  // At most plans x months x years groups.
  EXPECT_LE(v1.num_rows(),
            static_cast<size_t>(params.num_plans * 12 * params.num_years));
  EXPECT_GT(v1.num_rows(), 0u);
}

TEST(TelephonyTest, Example11RewritingMatchesPaper) {
  TelephonyParams params;
  params.num_calls = 10000;
  params.earnings_threshold = 1e5;
  TelephonyWorkload w = MakeTelephonyWorkload(params);

  Rewriter rewriter(&w.views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(w.query, "V1"));

  // Q' reads only the view.
  ASSERT_EQ(rewritten.from.size(), 1u);
  EXPECT_EQ(rewritten.from[0].table, "V1");
  // WHERE Year = 1995.
  ASSERT_EQ(rewritten.where.size(), 1u);
  EXPECT_EQ(rewritten.where[0].rhs.constant, Value::Int64(1995));
  // SUM over the view's Monthly_Earnings column, also in HAVING.
  EXPECT_EQ(rewritten.select[2].agg, AggFn::kSum);
  ASSERT_EQ(rewritten.having.size(), 1u);
  EXPECT_TRUE(rewritten.having[0].lhs.is_aggregate());

  // The rewriting computes the same answer as the original.
  ExpectQueriesApproxEquivalentOn(w.query, rewritten, w.db, &w.views);
}

TEST(TelephonyTest, RewritingAgainstMaterializedViewIsEquivalent) {
  // Materialize V1 into the database (the warehouse scenario) and compare.
  TelephonyParams params;
  params.num_calls = 8000;
  params.earnings_threshold = 5e4;
  params.seed = 7;
  TelephonyWorkload w = MakeTelephonyWorkload(params);
  Evaluator eval(&w.db, &w.views);
  ASSERT_OK_AND_ASSIGN(Table v1, eval.MaterializeView("V1"));
  w.db.Put("V1", std::move(v1));

  Rewriter rewriter(&w.views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(w.query, "V1"));
  ExpectQueriesApproxEquivalentOn(w.query, rewritten, w.db, &w.views);
}

TEST(TelephonyTest, ThresholdControlsSelectivity) {
  TelephonyParams params;
  params.num_calls = 5000;
  params.earnings_threshold = 1e12;  // everything qualifies
  TelephonyWorkload w = MakeTelephonyWorkload(params);
  Evaluator eval(&w.db, &w.views);
  ASSERT_OK_AND_ASSIGN(Table all, eval.Execute(w.query));
  EXPECT_EQ(all.num_rows(), static_cast<size_t>(params.num_plans));

  params.earnings_threshold = 0;  // nothing qualifies
  TelephonyWorkload none = MakeTelephonyWorkload(params);
  Evaluator eval2(&none.db, &none.views);
  ASSERT_OK_AND_ASSIGN(Table empty, eval2.Execute(none.query));
  EXPECT_EQ(empty.num_rows(), 0u);
}

}  // namespace
}  // namespace aqv
