#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/query.h"
#include "ir/validate.h"
#include "ir/views.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

Query Example31Query() {
  // Example 3.1's Q: SELECT A1, SUM(B1) FROM R1(A1,B1), R2(C1,D1)
  // WHERE A1 = C1 AND B1 = 6 AND D1 = 6 GROUPBY A1.
  return QueryBuilder()
      .From("R1", {"A1", "B1"})
      .From("R2", {"C1", "D1"})
      .Select("A1")
      .SelectAgg(AggFn::kSum, "B1")
      .WhereCols("A1", CmpOp::kEq, "C1")
      .WhereConst("B1", CmpOp::kEq, Value::Int64(6))
      .WhereConst("D1", CmpOp::kEq, Value::Int64(6))
      .GroupBy("A1")
      .BuildOrDie();
}

TEST(QueryTest, Accessors) {
  Query q = Example31Query();
  EXPECT_EQ(q.AllColumns(), (std::set<std::string>{"A1", "B1", "C1", "D1"}));
  EXPECT_EQ(q.ColSel(), (std::vector<std::string>{"A1"}));
  EXPECT_EQ(q.AggSel(), (std::vector<std::string>{"B1"}));
  EXPECT_FALSE(q.IsConjunctive());
  EXPECT_TRUE(q.IsAggregation());
}

TEST(QueryTest, FindColumn) {
  Query q = Example31Query();
  auto loc = q.FindColumn("D1");
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->first, 1);
  EXPECT_EQ(loc->second, 1);
  EXPECT_FALSE(q.FindColumn("Z9").has_value());
}

TEST(QueryTest, AggregateTermsDeduplicated) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1")
                .GroupBy("A1")
                .HavingAgg(AggFn::kSum, "B1", CmpOp::kLt, Value::Int64(10))
                .HavingAgg(AggFn::kCount, "B1", CmpOp::kGt, Value::Int64(1))
                .BuildOrDie();
  std::vector<Operand> terms = q.AggregateTerms();
  ASSERT_EQ(terms.size(), 2u);  // SUM(B1) deduped with HAVING's; COUNT(B1)
  EXPECT_EQ(terms[0].agg, AggFn::kSum);
  EXPECT_EQ(terms[1].agg, AggFn::kCount);
}

TEST(QueryTest, RatioContributesTwoSumTerms) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1", "N1"})
                .Select("A1")
                .GroupBy("A1")
                .BuildOrDie();
  q.select.push_back(
      SelectItem::MakeRatio(AggArg{"B1", "N1"}, AggArg{"N1", ""}, "avg_b"));
  std::vector<Operand> terms = q.AggregateTerms();
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0].agg, AggFn::kSum);
  EXPECT_EQ(terms[0].column, "B1");
  EXPECT_EQ(terms[0].multiplier, "N1");
  EXPECT_EQ(terms[1].column, "N1");
}

TEST(QueryTest, ConjunctiveDetection) {
  Query q = QueryBuilder()
                .From("R1", {"A1", "B1"})
                .Select("A1")
                .BuildOrDie();
  EXPECT_TRUE(q.IsConjunctive());
}

TEST(ValidateTest, RejectsEmptyClauses) {
  Query q;
  EXPECT_FALSE(ValidateQuery(q).ok());
  q.from.push_back(TableRef{"R", {"A"}});
  EXPECT_FALSE(ValidateQuery(q).ok());  // empty select
}

TEST(ValidateTest, RejectsDuplicateColumnNames) {
  Query q;
  q.from.push_back(TableRef{"R", {"A", "A"}});
  q.select.push_back(SelectItem::MakeColumn("A"));
  EXPECT_FALSE(ValidateQuery(q).ok());
}

TEST(ValidateTest, RejectsUnknownColumns) {
  auto r = QueryBuilder().From("R", {"A"}).Select("B").Build();
  EXPECT_FALSE(r.ok());
}

TEST(ValidateTest, EnforcesGroupingRule) {
  // Non-aggregate select column not in GROUP BY is rejected.
  auto r = QueryBuilder()
               .From("R", {"A", "B"})
               .Select("A")
               .SelectAgg(AggFn::kSum, "B")
               .Build();
  EXPECT_FALSE(r.ok());
}

TEST(ValidateTest, RejectsHavingOnNonGrouped) {
  Query q = QueryBuilder().From("R", {"A"}).Select("A").BuildOrDie();
  q.having.push_back(Predicate{Operand::Column("A"), CmpOp::kEq,
                               Operand::Constant(Value::Int64(1))});
  EXPECT_FALSE(ValidateQuery(q).ok());
}

TEST(ValidateTest, HavingColumnsMustBeGroupingColumns) {
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kSum, "B")
                .GroupBy("A")
                .BuildOrDie();
  q.having.push_back(Predicate{Operand::Column("B"), CmpOp::kEq,
                               Operand::Constant(Value::Int64(1))});
  EXPECT_FALSE(ValidateQuery(q).ok());
}

TEST(ValidateTest, AcceptsGlobalAggregate) {
  auto r = QueryBuilder()
               .From("R", {"A"})
               .SelectAgg(AggFn::kCount, "A")
               .Build();
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(PrinterTest, RendersPaperNotation) {
  EXPECT_EQ(ToSql(Example31Query()),
            "SELECT A1, SUM(B1) AS SUM_B1 FROM R1(A1, B1), R2(C1, D1) "
            "WHERE A1 = C1 AND B1 = 6 AND D1 = 6 GROUPBY A1");
}

TEST(PrinterTest, RendersScaledAggregateAndRatio) {
  Query q = QueryBuilder()
                .From("V", {"A1", "S1", "N1"})
                .Select("A1")
                .GroupBy("A1")
                .BuildOrDie();
  q.select.push_back(
      SelectItem::MakeScaledAggregate(AggFn::kSum, AggArg{"S1", "N1"}, "t"));
  q.select.push_back(
      SelectItem::MakeRatio(AggArg{"S1", ""}, AggArg{"N1", ""}, "a"));
  std::string sql = ToSql(q);
  EXPECT_NE(sql.find("SUM(S1 * N1) AS t"), std::string::npos) << sql;
  EXPECT_NE(sql.find("SUM(S1) / SUM(N1) AS a"), std::string::npos) << sql;
}

TEST(ViewRegistryTest, RegisterAndGet) {
  ViewRegistry reg;
  ViewDef v{"V1", Example31Query()};
  ASSERT_OK(reg.Register(v));
  EXPECT_TRUE(reg.Has("V1"));
  ASSERT_OK_AND_ASSIGN(const ViewDef* got, reg.Get("V1"));
  EXPECT_EQ(got->name, "V1");
  EXPECT_EQ(got->OutputColumns(),
            (std::vector<std::string>{"A1", "SUM_B1"}));
}

TEST(ViewRegistryTest, RejectsDuplicatesAndInvalid) {
  ViewRegistry reg;
  ASSERT_OK(reg.Register(ViewDef{"V1", Example31Query()}));
  EXPECT_FALSE(reg.Register(ViewDef{"V1", Example31Query()}).ok());
  EXPECT_FALSE(reg.Register(ViewDef{"V2", Query{}}).ok());
  EXPECT_FALSE(reg.Register(ViewDef{"", Example31Query()}).ok());
}

TEST(NameGeneratorTest, FreshAvoidsCollisions) {
  NameGenerator gen;
  gen.Reserve(std::set<std::string>{"A", "A_2"});
  EXPECT_EQ(gen.Fresh("B"), "B");
  EXPECT_EQ(gen.Fresh("A"), "A_3");
  EXPECT_EQ(gen.Fresh("A"), "A_4");
}

TEST(OperandTest, OrderingAndEquality) {
  Operand a = Operand::Column("A");
  Operand b = Operand::Column("B");
  Operand c5 = Operand::Constant(Value::Int64(5));
  Operand agg = Operand::Aggregate(AggFn::kSum, "A");
  Operand agg_scaled = Operand::Aggregate(AggFn::kSum, "A", "N");
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(agg == agg_scaled);
  EXPECT_TRUE(a < b);
  EXPECT_EQ(agg.ToString(), "SUM(A)");
  EXPECT_EQ(agg_scaled.ToString(), "SUM(A * N)");
  EXPECT_EQ(c5.ToString(), "5");
}

TEST(PredicateTest, ReferencedColumnsIncludeMultipliers) {
  Predicate p{Operand::Aggregate(AggFn::kSum, "A", "N"), CmpOp::kLt,
              Operand::Column("B")};
  EXPECT_EQ(p.ReferencedColumns(), (std::vector<std::string>{"A", "N", "B"}));
}

TEST(CmpOpTest, FlipIsInvolution) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    EXPECT_EQ(FlipCmpOp(FlipCmpOp(op)), op);
  }
  EXPECT_EQ(FlipCmpOp(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(FlipCmpOp(CmpOp::kLe), CmpOp::kGe);
}

}  // namespace
}  // namespace aqv
