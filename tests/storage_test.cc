// Unit tests for the durable-storage building blocks: the serde
// primitives, slotted pages, the disk manager, the buffer pool, the WAL
// (including torn-tail handling), the row/delta codecs, the catalog
// image round-trip, and the StorageEngine checkpoint/recover cycle in
// isolation from the query service. Crash-at-failpoint chaos lives in
// recovery_test.cc.

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "base/serde.h"
#include "catalog/catalog.h"
#include "exec/table.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

// A per-test db path under gtest's temp dir, with any previous run's
// files removed so every test starts from a fresh (empty) database.
std::string FreshPath(const std::string& stem) {
  std::string path = ::testing::TempDir() + "/aqv_" + stem;
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

// XORs one byte of `path` at `offset` — simulated bit rot.
void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  ASSERT_TRUE(f.read(&b, 1).good());
  b = static_cast<char>(b ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  ASSERT_TRUE(f.write(&b, 1).good());
}

// Flips a byte inside every on-disk occurrence of `marker` in `path`.
// Returns the number of occurrences hit.
size_t FlipMarkerBytes(const std::string& path, const std::string& marker) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  size_t hits = 0;
  for (size_t pos = bytes.find(marker); pos != std::string::npos;
       pos = bytes.find(marker, pos + 1)) {
    FlipByteAt(path, pos + 2);
    ++hits;
  }
  return hits;
}

// ---------------------------------------------------------------- serde

TEST(SerdeTest, FixedAndVarintRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  PutVarint64(&buf, 0);
  PutVarint64(&buf, 127);
  PutVarint64(&buf, 128);
  PutVarint64(&buf, UINT64_MAX);
  PutDoubleBits(&buf, -2.5);
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");

  ByteReader r(buf);
  ASSERT_OK_AND_ASSIGN(uint32_t f32, r.ReadFixed32());
  EXPECT_EQ(f32, 0xdeadbeefu);
  ASSERT_OK_AND_ASSIGN(uint64_t f64, r.ReadFixed64());
  EXPECT_EQ(f64, 0x0123456789abcdefull);
  for (uint64_t want : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                        UINT64_MAX}) {
    ASSERT_OK_AND_ASSIGN(uint64_t v, r.ReadVarint64());
    EXPECT_EQ(v, want);
  }
  ASSERT_OK_AND_ASSIGN(double d, r.ReadDoubleBits());
  EXPECT_EQ(d, -2.5);
  ASSERT_OK_AND_ASSIGN(std::string_view s, r.ReadLengthPrefixed());
  EXPECT_EQ(s, "hello");
  ASSERT_OK_AND_ASSIGN(std::string_view empty, r.ReadLengthPrefixed());
  EXPECT_EQ(empty, "");
  EXPECT_TRUE(r.empty());
}

TEST(SerdeTest, TruncationIsInvalidArgumentNotUb) {
  std::string buf;
  PutFixed64(&buf, 42);
  ByteReader r(std::string_view(buf).substr(0, 3));
  EXPECT_EQ(r.ReadFixed64().status().code(), StatusCode::kInvalidArgument);

  std::string lp;
  PutLengthPrefixed(&lp, "abcdef");
  ByteReader r2(std::string_view(lp).substr(0, 4));  // length says 6
  EXPECT_EQ(r2.ReadLengthPrefixed().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SerdeTest, ChecksumDetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  uint64_t sum = Checksum64(data);
  data[3] ^= 1;
  EXPECT_NE(Checksum64(data), sum);
}

// ----------------------------------------------------------------- page

TEST(PageTest, InsertAndGetRecords) {
  Page page;
  page.Init(7);
  EXPECT_EQ(page.page_id(), 7u);
  EXPECT_EQ(page.slot_count(), 0u);

  auto s0 = page.InsertRecord("alpha");
  auto s1 = page.InsertRecord("");
  auto s2 = page.InsertRecord("gamma-gamma");
  ASSERT_TRUE(s0 && s1 && s2);
  EXPECT_EQ(page.slot_count(), 3u);
  ASSERT_OK_AND_ASSIGN(std::string_view r0, page.GetRecord(*s0));
  ASSERT_OK_AND_ASSIGN(std::string_view r1, page.GetRecord(*s1));
  ASSERT_OK_AND_ASSIGN(std::string_view r2, page.GetRecord(*s2));
  EXPECT_EQ(r0, "alpha");
  EXPECT_EQ(r1, "");
  EXPECT_EQ(r2, "gamma-gamma");
  EXPECT_FALSE(page.GetRecord(3).ok());
}

TEST(PageTest, RejectsRecordThatCannotFit) {
  Page page;
  page.Init(1);
  std::string big(Page::kMaxRecordSize, 'x');
  ASSERT_TRUE(page.InsertRecord(big).has_value());  // exactly fills the page
  EXPECT_FALSE(page.InsertRecord("y").has_value());

  Page page2;
  page2.Init(2);
  std::string too_big(Page::kMaxRecordSize + 1, 'x');
  EXPECT_FALSE(page2.InsertRecord(too_big).has_value());
}

TEST(PageTest, FillsUntilFullThenRefuses) {
  Page page;
  page.Init(3);
  std::string rec(100, 'r');
  size_t inserted = 0;
  while (page.InsertRecord(rec).has_value()) ++inserted;
  // 100 bytes of record + 4 of slot each; the page must be near-full.
  EXPECT_GT(inserted, (Page::kPageSize - Page::kHeaderSize) / 110);
  EXPECT_LT(page.FreeSpace(), rec.size() + Page::kSlotSize);
  // Existing records are intact after the failed insert.
  ASSERT_OK_AND_ASSIGN(std::string_view r0, page.GetRecord(0));
  EXPECT_EQ(r0, rec);
}

TEST(PageTest, ChecksumRoundTripAndCorruptionDetection) {
  Page page;
  page.Init(9);
  ASSERT_TRUE(page.InsertRecord("payload").has_value());
  page.UpdateChecksum();
  EXPECT_TRUE(page.VerifyChecksum());
  page.data()[Page::kPageSize - 1] ^= 0x40;  // rot inside the record area
  EXPECT_FALSE(page.VerifyChecksum());
}

// --------------------------------------------------------- disk manager

TEST(DiskManagerTest, WriteReadRoundTripAndEofIsNotFound) {
  std::string path = FreshPath("disk_test.db");
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(path));

  Page page;
  page.Init(4);
  ASSERT_TRUE(page.InsertRecord("persist me").has_value());
  page.UpdateChecksum();
  ASSERT_OK(disk->WritePage(4, page));
  ASSERT_OK(disk->Sync());
  EXPECT_EQ(disk->page_count(), 5u);  // file extended through page 4

  Page back;
  ASSERT_OK(disk->ReadPage(4, &back));
  EXPECT_TRUE(back.VerifyChecksum());
  ASSERT_OK_AND_ASSIGN(std::string_view rec, back.GetRecord(0));
  EXPECT_EQ(rec, "persist me");

  EXPECT_EQ(disk->ReadPage(99, &back).code(), StatusCode::kNotFound);
}

// ----------------------------------------------------------- buffer pool

TEST(BufferPoolTest, EvictionWritesDirtyPagesBack) {
  std::string path = FreshPath("pool_test.db");
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(path));
  BufferPool pool(disk.get(), 2);

  // Three dirty pages through a 2-frame pool: page 0 must be evicted (and
  // thereby flushed) to make room.
  for (uint32_t id = 0; id < 3; ++id) {
    ASSERT_OK_AND_ASSIGN(Page * p, pool.NewPage(id));
    ASSERT_TRUE(p->InsertRecord("row-" + std::to_string(id)).has_value());
    pool.Unpin(id, /*dirty=*/true);
  }
  EXPECT_GE(pool.evictions(), 1u);

  // Page 0 went to disk; fetching it back re-reads the flushed contents.
  ASSERT_OK_AND_ASSIGN(Page * p0, pool.FetchPage(0));
  ASSERT_OK_AND_ASSIGN(std::string_view rec, p0->GetRecord(0));
  EXPECT_EQ(rec, "row-0");
  pool.Unpin(0, false);

  ASSERT_OK(pool.FlushAll());
  ASSERT_OK(disk->Sync());
}

TEST(BufferPoolTest, AllFramesPinnedIsResourceExhausted) {
  std::string path = FreshPath("pool_pin_test.db");
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(path));
  BufferPool pool(disk.get(), 2);

  ASSERT_OK(pool.NewPage(0).status());
  ASSERT_OK(pool.NewPage(1).status());
  EXPECT_EQ(pool.NewPage(2).status().code(), StatusCode::kResourceExhausted);
  pool.Unpin(0, true);
  ASSERT_OK(pool.NewPage(2).status());  // a free frame again
  pool.Unpin(1, true);
  pool.Unpin(2, true);
}

TEST(BufferPoolTest, FetchHitDoesNotTouchDisk) {
  std::string path = FreshPath("pool_hit_test.db");
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(path));
  BufferPool pool(disk.get(), 4);
  ASSERT_OK_AND_ASSIGN(Page * p, pool.NewPage(0));
  ASSERT_TRUE(p->InsertRecord("cached").has_value());
  pool.Unpin(0, true);

  uint64_t misses_before = pool.misses();
  ASSERT_OK_AND_ASSIGN(Page * again, pool.FetchPage(0));
  EXPECT_EQ(pool.misses(), misses_before);
  EXPECT_GE(pool.hits(), 1u);
  ASSERT_OK_AND_ASSIGN(std::string_view rec, again->GetRecord(0));
  EXPECT_EQ(rec, "cached");
  pool.Unpin(0, false);
}

// ------------------------------------------------------------------ wal

TEST(WalTest, AppendReadRoundTrip) {
  std::string path = FreshPath("wal_test.wal");
  {
    ASSERT_OK_AND_ASSIGN(auto wal, LogWriter::Open(path, /*fsync=*/true));
    ASSERT_OK(wal->AppendCommit("commit-1"));
    ASSERT_OK(wal->AppendCommit("commit-2"));
    ASSERT_OK(wal->AppendCommit(std::string(1000, 'z')));
  }
  ASSERT_OK_AND_ASSIGN(WalContents contents, ReadLog(path));
  ASSERT_EQ(contents.payloads.size(), 3u);
  EXPECT_EQ(contents.payloads[0], "commit-1");
  EXPECT_EQ(contents.payloads[1], "commit-2");
  EXPECT_EQ(contents.payloads[2], std::string(1000, 'z'));
  EXPECT_EQ(contents.valid_bytes,
            3 * LogWriter::kRecordHeaderSize + 8 + 8 + 1000);
}

TEST(WalTest, MissingFileReadsAsEmpty) {
  ASSERT_OK_AND_ASSIGN(WalContents contents,
                       ReadLog(FreshPath("wal_missing.wal")));
  EXPECT_TRUE(contents.payloads.empty());
  EXPECT_EQ(contents.valid_bytes, 0u);
}

TEST(WalTest, TornTailIsDroppedNotFatal) {
  std::string path = FreshPath("wal_torn.wal");
  {
    ASSERT_OK_AND_ASSIGN(auto wal, LogWriter::Open(path, true));
    ASSERT_OK(wal->AppendCommit("good"));
    // The wal.append failpoint fires after a partial prefix of the record
    // hits the file — the on-disk state of a kill mid-pwrite.
    FailpointScope torn("wal.append", "error");
    ASSERT_TRUE(torn.armed());
    EXPECT_EQ(wal->AppendCommit("torn-away").code(),
              StatusCode::kUnavailable);
  }
  ASSERT_OK_AND_ASSIGN(WalContents contents, ReadLog(path));
  ASSERT_EQ(contents.payloads.size(), 1u);
  EXPECT_EQ(contents.payloads[0], "good");
}

TEST(WalTest, FailStopAfterInjectedFailure) {
  std::string path = FreshPath("wal_failstop.wal");
  ASSERT_OK_AND_ASSIGN(auto wal, LogWriter::Open(path, true));
  {
    FailpointScope fp("wal.fsync", "error");
    ASSERT_TRUE(fp.armed());
    EXPECT_FALSE(wal->AppendCommit("unacked").ok());
  }
  // Failpoint disarmed, but the writer stays poisoned: appending after a
  // possibly-torn tail would hide the new record from ReadLog.
  EXPECT_TRUE(wal->failed());
  EXPECT_EQ(wal->AppendCommit("after").code(), StatusCode::kUnavailable);
}

TEST(WalTest, ReopenWithValidPrefixTruncatesTornTail) {
  std::string path = FreshPath("wal_reopen.wal");
  {
    ASSERT_OK_AND_ASSIGN(auto wal, LogWriter::Open(path, true));
    ASSERT_OK(wal->AppendCommit("first"));
    FailpointScope torn("wal.append", "error");
    EXPECT_FALSE(wal->AppendCommit("torn").ok());
  }
  ASSERT_OK_AND_ASSIGN(WalContents before, ReadLog(path));
  ASSERT_EQ(before.payloads.size(), 1u);

  // Reopen at the clean prefix (what recovery does), then keep appending:
  // the torn bytes are chopped, so the new record is visible.
  {
    ASSERT_OK_AND_ASSIGN(
        auto wal, LogWriter::Open(path, true, before.valid_bytes));
    ASSERT_OK(wal->AppendCommit("second"));
  }
  ASSERT_OK_AND_ASSIGN(WalContents after, ReadLog(path));
  ASSERT_EQ(after.payloads.size(), 2u);
  EXPECT_EQ(after.payloads[0], "first");
  EXPECT_EQ(after.payloads[1], "second");
}

TEST(WalTest, TruncateEmptiesTheLog) {
  std::string path = FreshPath("wal_trunc.wal");
  ASSERT_OK_AND_ASSIGN(auto wal, LogWriter::Open(path, true));
  ASSERT_OK(wal->AppendCommit("doomed"));
  EXPECT_GT(wal->size_bytes(), 0u);
  ASSERT_OK(wal->Truncate());
  EXPECT_EQ(wal->size_bytes(), 0u);
  ASSERT_OK_AND_ASSIGN(WalContents contents, ReadLog(path));
  EXPECT_TRUE(contents.payloads.empty());
  // Truncate failure must not poison the writer (replay skips stale
  // records by sequence anyway).
  {
    FailpointScope fp("wal.truncate", "error");
    ASSERT_OK(wal->AppendCommit("kept"));
    EXPECT_FALSE(wal->Truncate().ok());
  }
  EXPECT_FALSE(wal->failed());
  ASSERT_OK(wal->AppendCommit("still-works"));
}

TEST(WalTest, MidLogCorruptionIsFlaggedWithSuspects) {
  std::string path = FreshPath("wal_midlog.wal");
  {
    ASSERT_OK_AND_ASSIGN(auto wal, LogWriter::Open(path, true));
    ASSERT_OK(wal->AppendCommit("first-record-payload"));
    ASSERT_OK(wal->AppendCommit("second-record"));
  }
  // Rot a byte inside the FIRST record's payload: the reader's clean
  // prefix ends before it, but resyncing on the magic finds the intact
  // second record — that is mid-log corruption, not a torn tail.
  FlipByteAt(path, LogWriter::kRecordHeaderSize + 3);
  ASSERT_OK_AND_ASSIGN(WalContents contents, ReadLog(path));
  EXPECT_TRUE(contents.payloads.empty());
  EXPECT_EQ(contents.valid_bytes, 0u);
  EXPECT_TRUE(contents.mid_log_corruption);
  ASSERT_EQ(contents.suspect_payloads.size(), 1u);
  EXPECT_EQ(contents.suspect_payloads[0], "second-record");
}

TEST(WalTest, TailRotIsTornTailNotMidLog) {
  std::string path = FreshPath("wal_tailrot.wal");
  uint64_t first_end = 0;
  {
    ASSERT_OK_AND_ASSIGN(auto wal, LogWriter::Open(path, true));
    ASSERT_OK(wal->AppendCommit("kept"));
    first_end = wal->size_bytes();
    ASSERT_OK(wal->AppendCommit("rotted-away"));
  }
  // Rot inside the LAST record: indistinguishable from a kill mid-append,
  // so it is dropped silently and nothing is suspect.
  FlipByteAt(path, first_end + LogWriter::kRecordHeaderSize + 3);
  ASSERT_OK_AND_ASSIGN(WalContents contents, ReadLog(path));
  ASSERT_EQ(contents.payloads.size(), 1u);
  EXPECT_EQ(contents.payloads[0], "kept");
  EXPECT_EQ(contents.valid_bytes, first_end);
  EXPECT_FALSE(contents.mid_log_corruption);
  EXPECT_TRUE(contents.suspect_payloads.empty());
}

// ------------------------------------------------------------ row codec

TEST(RowCodecTest, AllValueTypesRoundTrip) {
  Row row = {Value::Null(), Value::Int64(-5), Value::Int64(int64_t{1} << 40),
             Value::Double(3.25), Value::String("text ' with\nnoise"),
             Value::String("")};
  std::string buf;
  EncodeRow(row, &buf);
  ByteReader r(buf);
  ASSERT_OK_AND_ASSIGN(Row back, DecodeRow(&r));
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(back, row);
}

TEST(RowCodecTest, CorruptTypeTagFails) {
  std::string buf;
  EncodeRow({Value::Int64(1)}, &buf);
  buf[1] = static_cast<char>(0x7f);  // clobber the value's type tag
  ByteReader r(buf);
  EXPECT_FALSE(DecodeRow(&r).ok());
}

// ---------------------------------------------------------- delta codec

TEST(DeltaCodecTest, InsertsAndDeletesRoundTrip) {
  Delta delta;
  delta.inserts["R"] = {{Value::Int64(1), Value::String("a")},
                        {Value::Int64(2), Value::Null()}};
  delta.inserts["S"] = {{Value::Double(4.5)}};
  delta.deletes["R"] = {{Value::Int64(9), Value::String("gone")}};
  std::string buf;
  EncodeDelta(delta, &buf);
  ByteReader r(buf);
  ASSERT_OK_AND_ASSIGN(Delta back, DecodeDelta(&r));
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(back.inserts, delta.inserts);
  EXPECT_EQ(back.deletes, delta.deletes);
}

// -------------------------------------------------------- catalog image

TEST(CatalogImageTest, RoundTripPreservesKeysFdsAndVersion) {
  Catalog catalog;
  TableDef r("R", {"A", "B", "C"});
  ASSERT_OK(r.AddKey({0}));
  ASSERT_OK(r.AddFunctionalDependency({1}, {2}));
  ASSERT_OK(catalog.AddTable(r));
  ASSERT_OK(catalog.AddTable(TableDef("S", {"X"})));

  std::string buf;
  catalog.SerializeTo(&buf);
  Catalog back;
  ByteReader reader(buf);
  ASSERT_OK(back.DeserializeFrom(&reader));

  EXPECT_EQ(back.version(), catalog.version());
  ASSERT_OK_AND_ASSIGN(const TableDef* rb, back.GetTable("R"));
  EXPECT_EQ(rb->columns(), (std::vector<std::string>{"A", "B", "C"}));
  ASSERT_EQ(rb->keys().size(), 1u);
  EXPECT_EQ(rb->keys()[0], (std::vector<int>{0}));
  // Exactly the original FDs — the key-derived FD must not be re-derived
  // (doubled) on load.
  ASSERT_OK_AND_ASSIGN(const TableDef* ro, catalog.GetTable("R"));
  EXPECT_EQ(rb->fds().size(), ro->fds().size());
  EXPECT_TRUE(back.HasTable("S"));

  // Serialize the deserialized catalog again: byte-identical images.
  std::string buf2;
  back.SerializeTo(&buf2);
  EXPECT_EQ(buf, buf2);
}

// -------------------------------------------------------- storage engine

Delta OneTableDelta(const std::string& table, int64_t from, int64_t count) {
  Delta d;
  for (int64_t i = 0; i < count; ++i) {
    d.inserts[table].push_back(
        {Value::Int64(from + i), Value::Double((from + i) * 2.0)});
  }
  return d;
}

TEST(StorageEngineTest, FreshFileRecoversEmpty) {
  StorageOptions opts;
  opts.path = FreshPath("engine_fresh.db");
  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  EXPECT_FALSE(engine->recovered().from_checkpoint);
  EXPECT_EQ(engine->recovered().replayed_commits, 0u);
  EXPECT_EQ(engine->last_commit_seq(), 0u);
}

TEST(StorageEngineTest, CheckpointThenRecoverWithZeroReplay) {
  StorageOptions opts;
  opts.path = FreshPath("engine_ckpt.db");

  Catalog catalog;
  TableDef r("R", {"A", "B"});
  ASSERT_OK(r.AddKey({0}));
  ASSERT_OK(catalog.AddTable(r));
  Database db;
  Table rt({"A", "B"});
  rt.AddRowOrDie({Value::Int64(1), Value::Double(2.0)});
  rt.AddRowOrDie({Value::Int64(3), Value::Double(4.0)});
  db.Put("R", std::move(rt));
  ViewRegistry views;

  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    ASSERT_OK(engine->LogCommit(OneTableDelta("R", 1, 1)));
    ASSERT_OK(engine->Checkpoint(catalog, views, db, {}));
    EXPECT_EQ(engine->checkpoint_seq(), 1u);
    EXPECT_EQ(engine->wal_bytes(), 0u);  // truncated by the checkpoint
  }
  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    RecoveredState& rec = engine->recovered();
    EXPECT_TRUE(rec.from_checkpoint);
    EXPECT_EQ(rec.replayed_commits, 0u);
    EXPECT_EQ(rec.last_commit_seq, 1u);
    EXPECT_TRUE(rec.catalog.HasTable("R"));
    ASSERT_OK_AND_ASSIGN(const Table* rb, rec.db.Get("R"));
    EXPECT_EQ(rb->num_rows(), 2u);
  }
}

TEST(StorageEngineTest, WalReplayOnTopOfCheckpoint) {
  StorageOptions opts;
  opts.path = FreshPath("engine_replay.db");

  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  Database db;
  db.Put("R", Table({"A", "B"}));
  ViewRegistry views;

  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    ASSERT_OK(engine->Checkpoint(catalog, views, db, {}));
    // Two commits after the checkpoint, never checkpointed.
    ASSERT_OK(engine->LogCommit(OneTableDelta("R", 10, 2)));
    ASSERT_OK(engine->LogCommit(OneTableDelta("R", 20, 3)));
  }
  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    RecoveredState& rec = engine->recovered();
    EXPECT_EQ(rec.replayed_commits, 2u);
    EXPECT_EQ(rec.last_commit_seq, 2u);
    ASSERT_OK_AND_ASSIGN(const Table* rb, rec.db.Get("R"));
    EXPECT_EQ(rb->num_rows(), 5u);
  }
}

TEST(StorageEngineTest, MultiPageTableSurvivesRestart) {
  StorageOptions opts;
  opts.path = FreshPath("engine_big.db");
  opts.buffer_pool_pages = 4;  // force eviction traffic during checkpoint

  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("Big", {"A", "B"})));
  Database db;
  Table big({"A", "B"});
  // ~2000 rows with fat strings: far more than 4 pages worth of data.
  for (int64_t i = 0; i < 2000; ++i) {
    big.AddRowOrDie(
        {Value::Int64(i), Value::String(std::string(64, 'a' + (i % 26)))});
  }
  db.Put("Big", big);
  ViewRegistry views;

  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    ASSERT_OK(engine->Checkpoint(catalog, views, db, {}));
  }
  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    ASSERT_OK_AND_ASSIGN(const Table* back, engine->recovered().db.Get("Big"));
    EXPECT_TRUE(MultisetEqual(*back, big));
  }
}

TEST(StorageEngineTest, RepeatedCheckpointsReuseFileSpace) {
  StorageOptions opts;
  opts.path = FreshPath("engine_reuse.db");

  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  Database db;
  Table rt({"A", "B"});
  for (int64_t i = 0; i < 100; ++i) {
    rt.AddRowOrDie({Value::Int64(i), Value::Double(i * 1.0)});
  }
  db.Put("R", std::move(rt));
  ViewRegistry views;

  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  ASSERT_OK(engine->Checkpoint(catalog, views, db, {}));
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(opts.path));
  uint32_t pages_after_first = disk->page_count();
  disk.reset();

  // The same contents checkpointed repeatedly: shadow pages must come from
  // the previous generations' freed ids, not extend the file every time.
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK(engine->Checkpoint(catalog, views, db, {}));
  }
  ASSERT_OK_AND_ASSIGN(auto disk2, DiskManager::Open(opts.path));
  EXPECT_LE(disk2->page_count(), 2 * pages_after_first + 2);
}

TEST(StorageEngineTest, FailedCheckpointKeepsPreviousOneLive) {
  StorageOptions opts;
  opts.path = FreshPath("engine_ckpt_fail.db");

  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  Database db1;
  Table t1({"A", "B"});
  t1.AddRowOrDie({Value::Int64(1), Value::Double(1.0)});
  db1.Put("R", std::move(t1));
  ViewRegistry views;

  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  ASSERT_OK(engine->Checkpoint(catalog, views, db1, {}));

  // A second checkpoint dies mid page-flush: the first must stay live.
  Database db2;
  Table t2({"A", "B"});
  t2.AddRowOrDie({Value::Int64(2), Value::Double(2.0)});
  db2.Put("R", std::move(t2));
  {
    FailpointScope fp("page.flush", "error(100,1)");
    ASSERT_TRUE(fp.armed());
    EXPECT_FALSE(engine->Checkpoint(catalog, views, db2, {}).ok());
  }
  engine.reset();

  ASSERT_OK_AND_ASSIGN(auto recovered, StorageEngine::Open(opts, nullptr));
  ASSERT_OK_AND_ASSIGN(const Table* back, recovered->recovered().db.Get("R"));
  ASSERT_EQ(back->num_rows(), 1u);
  EXPECT_EQ(back->rows()[0][0], Value::Int64(1));
}

TEST(StorageEngineTest, LogCommitFailStopsUntilReopen) {
  StorageOptions opts;
  opts.path = FreshPath("engine_failstop.db");
  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  // Checkpoint the (empty) table first — the service always checkpoints at
  // CREATE TABLE, so every WAL delta references a checkpointed table.
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  Database db;
  db.Put("R", Table({"A", "B"}));
  ASSERT_OK(engine->Checkpoint(catalog, ViewRegistry{}, db, {}));
  ASSERT_OK(engine->LogCommit(OneTableDelta("R", 1, 1)));
  {
    FailpointScope fp("wal.append", "error");
    EXPECT_FALSE(engine->LogCommit(OneTableDelta("R", 2, 1)).ok());
  }
  EXPECT_TRUE(engine->failed());
  EXPECT_EQ(engine->LogCommit(OneTableDelta("R", 3, 1)).code(),
            StatusCode::kUnavailable);
  engine.reset();

  // Reopen recovers the one acknowledged commit and accepts writes again.
  ASSERT_OK_AND_ASSIGN(auto reopened, StorageEngine::Open(opts, nullptr));
  EXPECT_EQ(reopened->recovered().replayed_commits, 1u);
  EXPECT_FALSE(reopened->failed());
  ASSERT_OK(reopened->LogCommit(OneTableDelta("R", 2, 1)));
}

// ------------------------------------------------------- overflow pages

// One table whose rows straddle every interesting boundary of the
// overflow chain: just under one chunk, exactly at it, one byte over
// (the first two-record row), and several chunks long.
TEST(StorageEngineTest, OverflowRowsRoundTripAcrossRestart) {
  StorageOptions opts;
  opts.path = FreshPath("engine_overflow.db");
  opts.buffer_pool_pages = 4;  // eviction traffic through the chains

  const size_t chunk = Page::kMaxRecordSize - 1;  // payload per record
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("Big", {"A", "B"})));
  Database db;
  Table big({"A", "B"});
  int64_t id = 0;
  for (size_t size : {size_t{64}, chunk - 100, chunk - 1, chunk, chunk + 1,
                      3 * chunk + 5, size_t{100000}}) {
    big.AddRowOrDie(
        {Value::Int64(id),
         Value::String(std::string(
             size, static_cast<char>('a' + (id % 26))))});
    ++id;
  }
  db.Put("Big", big);
  ViewRegistry views;

  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    ASSERT_OK(engine->Checkpoint(catalog, views, db, {}));
  }
  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    ASSERT_OK_AND_ASSIGN(const Table* back, engine->recovered().db.Get("Big"));
    EXPECT_TRUE(MultisetEqual(*back, big));
  }
}

// Shrinking and re-growing a table with overflow rows must reuse the
// freed chain pages, not extend the file on every checkpoint.
TEST(StorageEngineTest, OverflowChainPagesAreReusedAfterDelete) {
  StorageOptions opts;
  opts.path = FreshPath("engine_overflow_reuse.db");

  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("Big", {"A", "B"})));
  Table with_big({"A", "B"});
  with_big.AddRowOrDie({Value::Int64(1), Value::String(std::string(
                                             50000, 'x'))});
  Table without({"A", "B"});
  without.AddRowOrDie({Value::Int64(2), Value::String("small")});
  ViewRegistry views;

  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  Database db1;
  db1.Put("Big", with_big);
  ASSERT_OK(engine->Checkpoint(catalog, views, db1, {}));
  ASSERT_OK_AND_ASSIGN(auto disk, DiskManager::Open(opts.path));
  uint32_t pages_after_first = disk->page_count();
  disk.reset();

  // Alternate the chain away and back: every generation's overflow pages
  // must come from the previous generation's freed ids.
  for (int i = 0; i < 4; ++i) {
    Database db2;
    db2.Put("Big", without);
    ASSERT_OK(engine->Checkpoint(catalog, views, db2, {}));
    Database db3;
    db3.Put("Big", with_big);
    ASSERT_OK(engine->Checkpoint(catalog, views, db3, {}));
  }
  ASSERT_OK_AND_ASSIGN(auto disk2, DiskManager::Open(opts.path));
  EXPECT_LE(disk2->page_count(), 2 * pages_after_first + 2);
}

TEST(StorageEngineTest, RowAboveOverflowCapIsRefusedCleanly) {
  // The check the service runs at INSERT/LOAD time.
  Row small = {Value::Int64(1), Value::String("fine")};
  ASSERT_OK(StorageEngine::CheckRowSize(small));
  Row huge = {Value::Int64(1),
              Value::String(std::string(StorageEngine::kMaxRowBytes, 'x'))};
  Status refused = StorageEngine::CheckRowSize(huge);
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.message().find("row"), std::string::npos);

  // A checkpoint that trips over one anyway fails cleanly and keeps the
  // previous checkpoint live.
  StorageOptions opts;
  opts.path = FreshPath("engine_rowcap.db");
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  ViewRegistry views;
  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  Database db_ok;
  db_ok.Put("R", Table({"A", "B"}));
  ASSERT_OK(engine->Checkpoint(catalog, views, db_ok, {}));
  Database db_huge;
  Table t({"A", "B"});
  t.AddRowOrDie(huge);
  db_huge.Put("R", t);
  EXPECT_EQ(engine->Checkpoint(catalog, views, db_huge, {}).code(),
            StatusCode::kInvalidArgument);
  engine.reset();
  ASSERT_OK_AND_ASSIGN(auto recovered, StorageEngine::Open(opts, nullptr));
  EXPECT_TRUE(recovered->recovered().from_checkpoint);
}

// --------------------------------------- quarantine, scrub, thresholds

// Bit rot in one table's data page: recovery salvages every clean table
// and quarantines exactly the damaged one (salvaged empty).
TEST(StorageEngineTest, DataPageRotQuarantinesOnlyThatTable) {
  StorageOptions opts;
  opts.path = FreshPath("engine_rot.db");

  const std::string marker = "CORRUPT-ME-MARKER-PAYLOAD";
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("Bad", {"A", "B"})));
  ASSERT_OK(catalog.AddTable(TableDef("Good", {"C", "D"})));
  Database db;
  Table bad({"A", "B"});
  bad.AddRowOrDie({Value::Int64(1), Value::String(marker)});
  db.Put("Bad", std::move(bad));
  Table good({"C", "D"});
  good.AddRowOrDie({Value::Int64(7), Value::Double(7.5)});
  db.Put("Good", good);
  ViewRegistry views;
  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    ASSERT_OK(engine->Checkpoint(catalog, views, db, {}));
  }
  ASSERT_GE(FlipMarkerBytes(opts.path, marker), 1u);

  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  RecoveredState& rec = engine->recovered();
  ASSERT_EQ(rec.quarantined_tables.size(), 1u);
  ASSERT_EQ(rec.quarantined_tables.count("Bad"), 1u);
  EXPECT_NE(rec.quarantined_tables["Bad"].find("checksum"),
            std::string::npos);
  // The damaged table is salvaged empty, the clean one fully intact.
  ASSERT_OK_AND_ASSIGN(const Table* bad_back, rec.db.Get("Bad"));
  EXPECT_EQ(bad_back->num_rows(), 0u);
  ASSERT_OK_AND_ASSIGN(const Table* good_back, rec.db.Get("Good"));
  EXPECT_TRUE(MultisetEqual(*good_back, good));
}

// Scrub reads pages straight from disk, so rot that happens while the
// engine is live (clean cached frames) is still reported — and the next
// checkpoint rewrites the pages fresh, healing it.
TEST(StorageEngineTest, ScrubDetectsOnDiskRotAndCheckpointHeals) {
  StorageOptions opts;
  opts.path = FreshPath("engine_scrub.db");

  const std::string marker = "SCRUB-FINDS-THIS-MARKER";
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("T", {"A", "B"})));
  Database db;
  Table t({"A", "B"});
  t.AddRowOrDie({Value::Int64(1), Value::String(marker)});
  db.Put("T", t);
  ViewRegistry views;

  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  ASSERT_OK(engine->Checkpoint(catalog, views, db, {}));
  ASSERT_OK_AND_ASSIGN(StorageEngine::ScrubReport clean, engine->Scrub());
  EXPECT_EQ(clean.pages_corrupt, 0u);
  EXPECT_GE(clean.pages_checked, 2u);  // directory + data

  ASSERT_GE(FlipMarkerBytes(opts.path, marker), 1u);
  ASSERT_OK_AND_ASSIGN(StorageEngine::ScrubReport dirty, engine->Scrub());
  EXPECT_GE(dirty.pages_corrupt, 1u);
  ASSERT_EQ(dirty.tables.count("T"), 1u);
  EXPECT_GE(dirty.tables["T"].corrupt_pages, 1u);

  // The in-memory copy is still good: CHECKPOINT rewrites every data page.
  ASSERT_OK(engine->Checkpoint(catalog, views, db, {}));
  ASSERT_OK_AND_ASSIGN(StorageEngine::ScrubReport healed, engine->Scrub());
  EXPECT_EQ(healed.pages_corrupt, 0u);
}

TEST(StorageEngineTest, ScrubFailpointReportsCorruptPages) {
  StorageOptions opts;
  opts.path = FreshPath("engine_scrub_fp.db");
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  Database db;
  Table rt({"A", "B"});
  rt.AddRowOrDie({Value::Int64(1), Value::Double(1.0)});
  db.Put("R", std::move(rt));
  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  ASSERT_OK(engine->Checkpoint(catalog, ViewRegistry{}, db, {}));

  FailpointScope fp("scrub.page", "error");
  ASSERT_TRUE(fp.armed());
  ASSERT_OK_AND_ASSIGN(StorageEngine::ScrubReport report, engine->Scrub());
  EXPECT_EQ(report.pages_corrupt, report.pages_checked);
  EXPECT_GE(report.pages_corrupt, 1u);
}

TEST(StorageEngineTest, AutoCheckpointAndBackpressurePredicates) {
  StorageOptions opts;
  opts.path = FreshPath("engine_thresholds.db");
  opts.auto_checkpoint_commits = 2;
  opts.backpressure_wal_bytes = 1;
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  Database db;
  db.Put("R", Table({"A", "B"}));
  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  ASSERT_OK(engine->Checkpoint(catalog, ViewRegistry{}, db, {}));

  EXPECT_FALSE(engine->NeedsAutoCheckpoint());
  EXPECT_FALSE(engine->OverBackpressureCap());
  ASSERT_OK(engine->LogCommit(OneTableDelta("R", 1, 1)));
  EXPECT_FALSE(engine->NeedsAutoCheckpoint());  // one commit, threshold 2
  EXPECT_TRUE(engine->OverBackpressureCap());   // any WAL byte is over cap 1
  ASSERT_OK(engine->LogCommit(OneTableDelta("R", 2, 1)));
  EXPECT_TRUE(engine->NeedsAutoCheckpoint());

  // A checkpoint truncates the WAL and resets both predicates.
  ASSERT_OK(engine->Checkpoint(catalog, ViewRegistry{}, db, {}));
  EXPECT_FALSE(engine->NeedsAutoCheckpoint());
  EXPECT_FALSE(engine->OverBackpressureCap());
}

// ----------------------------------------- group commit, staged replay

// Hammer LogCommit from several threads with group commit on: every
// acknowledged commit must be durable and replay intact.
TEST(StorageEngineTest, GroupCommitConcurrentWritersAllDurable) {
  StorageOptions opts;
  opts.path = FreshPath("engine_group.db");
  opts.group_commit = true;
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 16;

  Catalog catalog;
  Database db;
  for (int t = 0; t < kThreads; ++t) {
    std::string name = "T" + std::to_string(t);
    ASSERT_OK(catalog.AddTable(TableDef(name, {"A", "B"})));
    db.Put(name, Table({"A", "B"}));
  }
  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    ASSERT_OK(engine->Checkpoint(catalog, ViewRegistry{}, db, {}));
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&engine, t] {
        std::string name = "T" + std::to_string(t);
        for (int i = 0; i < kCommitsPerThread; ++i) {
          ASSERT_OK(engine->LogCommit(OneTableDelta(name, i, 1)));
        }
      });
    }
    for (std::thread& w : writers) w.join();
    EXPECT_EQ(engine->last_commit_seq(),
              static_cast<uint64_t>(kThreads * kCommitsPerThread));
  }
  ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
  EXPECT_EQ(engine->recovered().replayed_commits,
            static_cast<uint64_t>(kThreads * kCommitsPerThread));
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_OK_AND_ASSIGN(const Table* back,
                         engine->recovered().db.Get("T" + std::to_string(t)));
    EXPECT_EQ(back->num_rows(), static_cast<size_t>(kCommitsPerThread));
  }
}

// Recovery is read-only, so the same files can be recovered under both
// replay strategies — and they must agree exactly.
TEST(StorageEngineTest, StagedAndPerRecordReplayAgree) {
  StorageOptions opts;
  opts.path = FreshPath("engine_replay_modes.db");
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  Database db;
  db.Put("R", Table({"A", "B"}));
  {
    ASSERT_OK_AND_ASSIGN(auto engine, StorageEngine::Open(opts, nullptr));
    ASSERT_OK(engine->Checkpoint(catalog, ViewRegistry{}, db, {}));
    for (int i = 0; i < 20; ++i) {
      Delta d = OneTableDelta("R", i * 10, 2);
      if (i % 3 == 0 && i > 0) {
        // The odd delete too, so replay ordering matters.
        d.deletes["R"].push_back(
            {Value::Int64(i * 10 - 10), Value::Double((i * 10 - 10) * 2.0)});
      }
      ASSERT_OK(engine->LogCommit(d));
    }
  }
  opts.staged_replay = false;
  ASSERT_OK_AND_ASSIGN(auto per_record, StorageEngine::Open(opts, nullptr));
  ASSERT_OK_AND_ASSIGN(const Table* slow, per_record->recovered().db.Get("R"));
  Table slow_copy = *slow;
  per_record.reset();

  opts.staged_replay = true;
  ASSERT_OK_AND_ASSIGN(auto staged, StorageEngine::Open(opts, nullptr));
  ASSERT_OK_AND_ASSIGN(const Table* fast, staged->recovered().db.Get("R"));
  EXPECT_EQ(staged->recovered().replayed_commits, 20u);
  EXPECT_TRUE(MultisetEqual(slow_copy, *fast));
}

}  // namespace
}  // namespace aqv
