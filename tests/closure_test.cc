#include <random>
#include <set>

#include <gtest/gtest.h>

#include "reason/closure.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

Operand Col(const std::string& c) { return Operand::Column(c); }
Operand Int(int64_t v) { return Operand::Constant(Value::Int64(v)); }

Predicate P(Operand a, CmpOp op, Operand b) {
  return Predicate{std::move(a), op, std::move(b)};
}

TEST(ClosureTest, EmptyConjunctionEntailsOnlyTautologies) {
  ASSERT_OK_AND_ASSIGN(ConstraintClosure c, ConstraintClosure::Build({}));
  EXPECT_TRUE(c.satisfiable());
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kEq, Col("A"))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLe, Col("A"))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kGe, Col("A"))));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kLt, Col("A"))));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kEq, Col("B"))));
  // Ground facts about constants hold vacuously.
  EXPECT_TRUE(c.Implies(P(Int(1), CmpOp::kLt, Int(2))));
  EXPECT_FALSE(c.Implies(P(Int(2), CmpOp::kLt, Int(1))));
  EXPECT_TRUE(c.Implies(P(Int(1), CmpOp::kNe, Int(2))));
}

TEST(ClosureTest, EqualityIsTransitive) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kEq, Col("B")),
                                P(Col("B"), CmpOp::kEq, Col("C"))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kEq, Col("C"))));
  EXPECT_TRUE(c.AreEqual(Col("C"), Col("A")));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kNe, Col("C"))));
}

TEST(ClosureTest, EqualityPropagatesConstants) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kEq, Col("B")),
                                P(Col("B"), CmpOp::kEq, Int(5))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kEq, Int(5))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kNe, Int(6))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLt, Int(7))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kGt, Int(3))));
  ASSERT_TRUE(c.ConstantFor("A").has_value());
  EXPECT_EQ(*c.ConstantFor("A"), Value::Int64(5));
}

TEST(ClosureTest, OrderIsTransitiveAndStrictens) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kLe, Col("B")),
                                P(Col("B"), CmpOp::kLt, Col("C")),
                                P(Col("C"), CmpOp::kLe, Col("D"))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLt, Col("D"))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLe, Col("D"))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kNe, Col("D"))));  // via <
  EXPECT_TRUE(c.Implies(P(Col("D"), CmpOp::kGt, Col("A"))));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kLt, Col("B"))));
}

TEST(ClosureTest, AntisymmetryMergesClasses) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kLe, Col("B")),
                                P(Col("B"), CmpOp::kLe, Col("A"))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kEq, Col("B"))));
}

TEST(ClosureTest, LeAndNeGiveLt) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kLe, Col("B")),
                                P(Col("A"), CmpOp::kNe, Col("B"))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLt, Col("B"))));
}

TEST(ClosureTest, ConstantsBoundColumnsThroughOrder) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kLe, Int(5)),
                                P(Int(7), CmpOp::kLe, Col("B"))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLt, Col("B"))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kNe, Col("B"))));
}

TEST(ClosureTest, UnsatDetection) {
  struct Case {
    std::vector<Predicate> conds;
  };
  std::vector<Case> cases = {
      {{P(Col("A"), CmpOp::kLt, Col("A"))}},
      {{P(Col("A"), CmpOp::kNe, Col("A"))}},
      {{P(Col("A"), CmpOp::kLt, Col("B")), P(Col("B"), CmpOp::kLt, Col("A"))}},
      {{P(Col("A"), CmpOp::kEq, Int(1)), P(Col("A"), CmpOp::kEq, Int(2))}},
      {{P(Col("A"), CmpOp::kLt, Int(1)), P(Col("A"), CmpOp::kGt, Int(2))}},
      {{P(Col("A"), CmpOp::kEq, Col("B")), P(Col("B"), CmpOp::kEq, Col("C")),
        P(Col("A"), CmpOp::kNe, Col("C"))}},
      {{P(Col("A"), CmpOp::kLe, Col("B")), P(Col("B"), CmpOp::kLe, Col("A")),
        P(Col("A"), CmpOp::kNe, Col("B"))}},
  };
  for (size_t i = 0; i < cases.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(ConstraintClosure c,
                         ConstraintClosure::Build(cases[i].conds));
    EXPECT_FALSE(c.satisfiable()) << "case " << i;
    EXPECT_FALSE(Satisfiable(cases[i].conds)) << "case " << i;
    // Ex falso quodlibet.
    EXPECT_TRUE(c.Implies(P(Col("Z"), CmpOp::kLt, Col("Z")))) << "case " << i;
  }
}

TEST(ClosureTest, SatisfiableCases) {
  EXPECT_TRUE(Satisfiable({P(Col("A"), CmpOp::kLe, Col("B")),
                           P(Col("B"), CmpOp::kLe, Col("A"))}));
  EXPECT_TRUE(Satisfiable({P(Col("A"), CmpOp::kLt, Int(5)),
                           P(Col("A"), CmpOp::kGt, Int(3))}));
  EXPECT_TRUE(Satisfiable({}));
}

TEST(ClosureTest, UnknownTermsAreUnconstrained) {
  ASSERT_OK_AND_ASSIGN(ConstraintClosure c, ConstraintClosure::Build(
                                                {P(Col("A"), CmpOp::kEq, Int(1))}));
  EXPECT_FALSE(c.Implies(P(Col("Z"), CmpOp::kEq, Int(1))));
  EXPECT_TRUE(c.Implies(P(Col("Z"), CmpOp::kEq, Col("Z"))));
}

TEST(ClosureTest, EquivalentToIsMutualEntailment) {
  std::vector<Predicate> a = {P(Col("A"), CmpOp::kEq, Col("B")),
                              P(Col("B"), CmpOp::kEq, Col("C"))};
  std::vector<Predicate> b = {P(Col("A"), CmpOp::kEq, Col("C")),
                              P(Col("C"), CmpOp::kEq, Col("B"))};
  std::vector<Predicate> weaker = {P(Col("A"), CmpOp::kEq, Col("C"))};
  EXPECT_TRUE(Equivalent(a, b));
  EXPECT_FALSE(Equivalent(a, weaker));
  ASSERT_OK_AND_ASSIGN(ConstraintClosure ca, ConstraintClosure::Build(a));
  EXPECT_TRUE(ca.ImpliesAll(weaker));
}

TEST(ClosureTest, EqualColumns) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kEq, Col("B")),
                                P(Col("C"), CmpOp::kLt, Col("A"))}));
  std::vector<std::string> eq = c.EqualColumns("B");
  EXPECT_EQ(eq, (std::vector<std::string>{"A", "B"}));
  EXPECT_TRUE(c.EqualColumns("missing").empty());
}

TEST(ClosureTest, RestrictedAtomsProjectsClosure) {
  // A = B, B = C, C < D: restricted to {A, D} we should still learn A < D.
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kEq, Col("B")),
                                P(Col("B"), CmpOp::kEq, Col("C")),
                                P(Col("C"), CmpOp::kLt, Col("D"))}));
  std::vector<Predicate> atoms = c.RestrictedAtoms({"A", "D"});
  ASSERT_OK_AND_ASSIGN(ConstraintClosure projected,
                       ConstraintClosure::Build(atoms));
  EXPECT_TRUE(projected.Implies(P(Col("A"), CmpOp::kLt, Col("D"))));
  // Nothing about B and C leaks through.
  for (const Predicate& atom : atoms) {
    for (const std::string& col : atom.ReferencedColumns()) {
      EXPECT_TRUE(col == "A" || col == "D") << atom.ToString();
    }
  }
}

TEST(ClosureTest, RestrictedAtomsCarryConstants) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kEq, Col("B")),
                                P(Col("B"), CmpOp::kEq, Int(5))}));
  std::vector<Predicate> atoms = c.RestrictedAtoms({"A"});
  ASSERT_OK_AND_ASSIGN(ConstraintClosure projected,
                       ConstraintClosure::Build(atoms));
  EXPECT_TRUE(projected.Implies(P(Col("A"), CmpOp::kEq, Int(5))));
}

TEST(ClosureTest, RestrictedAtomsOfUnsatIsFalse) {
  ASSERT_OK_AND_ASSIGN(ConstraintClosure c,
                       ConstraintClosure::Build({P(Col("A"), CmpOp::kLt, Col("A"))}));
  std::vector<Predicate> atoms = c.RestrictedAtoms({});
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_FALSE(Satisfiable(atoms));
}

TEST(ClosureTest, RejectsAggregateOperands) {
  std::vector<Predicate> conds = {
      P(Operand::Aggregate(AggFn::kSum, "B"), CmpOp::kLt, Int(10))};
  EXPECT_FALSE(ConstraintClosure::Build(conds).ok());
}

TEST(ClosureTest, MixedTypeConstantsNeverEqual) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build(
          {P(Col("A"), CmpOp::kEq, Int(1)),
           P(Col("B"), CmpOp::kEq, Operand::Constant(Value::String("1")))}));
  EXPECT_TRUE(c.satisfiable());
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kNe, Col("B"))));
}

TEST(ClosureTest, IntAndDoubleConstantsUnify) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build(
          {P(Col("A"), CmpOp::kEq, Int(5)),
           P(Col("B"), CmpOp::kEq, Operand::Constant(Value::Double(5.0)))}));
  EXPECT_TRUE(c.satisfiable());
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kEq, Col("B"))));
}


TEST(ClosureTest, BoundEntailmentWithFreshConstants) {
  // Constants never mentioned in the conjunction are decided through known
  // bounds: A < 5 entails A < 7, A <= 7, A <> 7 — but not A < 3.
  ASSERT_OK_AND_ASSIGN(ConstraintClosure c,
                       ConstraintClosure::Build({P(Col("A"), CmpOp::kLt, Int(5))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLt, Int(7))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLe, Int(7))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kNe, Int(7))));
  EXPECT_TRUE(c.Implies(P(Int(7), CmpOp::kGt, Col("A"))));  // flipped form
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kLt, Int(3))));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kGt, Int(3))));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kEq, Int(4))));
}

TEST(ClosureTest, BoundEntailmentLowerSide) {
  ASSERT_OK_AND_ASSIGN(ConstraintClosure c,
                       ConstraintClosure::Build({P(Col("A"), CmpOp::kGe, Int(2))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kGt, Int(1))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kGe, Int(1))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kNe, Int(1))));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kGt, Int(2))));  // could equal 2
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kNe, Int(2))));
}

TEST(ClosureTest, BoundEntailmentThroughChains) {
  // A < B and B < 4 bound A even though A has no direct constant atom.
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kLt, Col("B")),
                                P(Col("B"), CmpOp::kLt, Int(4))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLt, Int(9))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLt, Int(4))));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kLt, Int(2))));
}

TEST(ClosureTest, PinnedColumnDecidesFreshConstantAtoms) {
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kEq, Col("B")),
                                P(Col("B"), CmpOp::kEq, Int(5))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kLt, Int(7))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kGe, Int(5))));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kNe, Int(6))));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kEq, Int(6))));
  // Two pinned columns compare on ground values.
  ASSERT_OK_AND_ASSIGN(
      ConstraintClosure c2,
      ConstraintClosure::Build({P(Col("A"), CmpOp::kEq, Int(5)),
                                P(Col("B"), CmpOp::kEq, Int(9))}));
  EXPECT_TRUE(c2.Implies(P(Col("A"), CmpOp::kLt, Col("B"))));
}

TEST(ClosureTest, NeRouteThroughEqualConstant) {
  // A <> 5 and the probe constant equals 5 numerically (5.0).
  ASSERT_OK_AND_ASSIGN(ConstraintClosure c,
                       ConstraintClosure::Build({P(Col("A"), CmpOp::kNe, Int(5))}));
  EXPECT_TRUE(c.Implies(P(Col("A"), CmpOp::kNe,
                          Operand::Constant(Value::Double(5.0)))));
  EXPECT_FALSE(c.Implies(P(Col("A"), CmpOp::kNe, Int(6))));
}

// Property sweep: closure idempotence — rebuilding from RestrictedAtoms over
// all columns yields an equivalent constraint set.
class ClosureIdempotenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ClosureIdempotenceTest, RebuildEquivalent) {
  std::mt19937_64 rng(GetParam());
  const std::vector<std::string> cols = {"A", "B", "C", "D", "E"};
  const std::vector<CmpOp> ops = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                  CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  std::vector<Predicate> conds;
  int n = 1 + static_cast<int>(rng() % 6);
  std::set<std::string> used;
  for (int i = 0; i < n; ++i) {
    Operand lhs = Col(cols[rng() % cols.size()]);
    Operand rhs = (rng() % 3 == 0)
                      ? Int(static_cast<int64_t>(rng() % 4))
                      : Col(cols[rng() % cols.size()]);
    conds.push_back(P(lhs, ops[rng() % ops.size()], rhs));
    for (const std::string& c : conds.back().ReferencedColumns()) used.insert(c);
  }
  ASSERT_OK_AND_ASSIGN(ConstraintClosure c, ConstraintClosure::Build(conds));
  if (!c.satisfiable()) {
    EXPECT_FALSE(Satisfiable(c.RestrictedAtoms(used)));
    return;
  }
  std::vector<Predicate> atoms = c.RestrictedAtoms(used);
  EXPECT_TRUE(Equivalent(conds, atoms))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClosureIdempotenceTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace aqv
