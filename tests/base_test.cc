#include <gtest/gtest.h>

#include "base/result.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/value.h"

namespace aqv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Unusable("view mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnusable);
  EXPECT_EQ(s.message(), "view mismatch");
  EXPECT_EQ(s.ToString(), "unusable: view mismatch");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kUnusable, StatusCode::kUnsatisfiable,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> in) {
  AQV_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int64(7).int64(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).dbl(), 2.5);
  EXPECT_EQ(Value::String("x").str(), "x");
  EXPECT_TRUE(Value::Int64(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, TotalOrderAcrossFamilies) {
  // NULL < numerics < strings.
  EXPECT_LT(Value::Null().Compare(Value::Int64(-5)), 0);
  EXPECT_LT(Value::Int64(100).Compare(Value::String("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericComparisonCrossesTypes) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int64(2)), 0);
  // Numerically equal INT64 and DOUBLE compare equal, matching SQL.
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_TRUE(Value::Int64(3).SqlEquals(Value::Double(3.0)));
}

TEST(ValueTest, SqlEqualsRejectsNullAndCrossFamily) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Int64(1).SqlEquals(Value::String("1")));
  EXPECT_TRUE(Value::String("a").SqlEquals(Value::String("a")));
}

TEST(ValueTest, HashConsistentWithSqlEquality) {
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, ToStringRendersLiterals) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

TEST(RowTest, CompareRowsLexicographic) {
  Row a = {Value::Int64(1), Value::Int64(2)};
  Row b = {Value::Int64(1), Value::Int64(3)};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_GT(CompareRows(b, a), 0);
  EXPECT_EQ(CompareRows(a, a), 0);
}

TEST(RowTest, HashAndEq) {
  Row a = {Value::Int64(1), Value::String("x")};
  Row b = {Value::Int64(1), Value::String("x")};
  EXPECT_TRUE(RowEq{}(a, b));
  EXPECT_EQ(RowHash{}(a), RowHash{}(b));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " AND "), "a AND b AND c");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("GROUPBY", "groupby"));
  EXPECT_FALSE(EqualsIgnoreCase("GROUP", "groupby"));
  EXPECT_TRUE(StartsWith("SELECT x", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

}  // namespace
}  // namespace aqv
