#include <gtest/gtest.h>

#include "ir/builder.h"
#include "reason/having_normalize.h"
#include "tests/test_util.h"
#include "workload/random_db.h"

namespace aqv {
namespace {

TEST(HavingNormalizeTest, MovesGroupingColumnConditions) {
  // Section 3.3: "A > 5 with A in Groups(Q) can be conjoined to Conds(Q)".
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kSum, "B")
                .GroupBy("A")
                .HavingCol("A", CmpOp::kGt, Value::Int64(5))
                .HavingAgg(AggFn::kSum, "B", CmpOp::kLt, Value::Int64(100))
                .BuildOrDie();
  EXPECT_EQ(NormalizeHaving(&q), 1);
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].lhs.column, "A");
  ASSERT_EQ(q.having.size(), 1u);
  EXPECT_TRUE(q.having[0].lhs.is_aggregate());
}

TEST(HavingNormalizeTest, MovesLoneMaxCondition) {
  // "MAX(B) > 10, the only aggregation column" becomes WHERE B > 10.
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kMax, "B")
                .GroupBy("A")
                .HavingAgg(AggFn::kMax, "B", CmpOp::kGt, Value::Int64(10))
                .BuildOrDie();
  EXPECT_EQ(NormalizeHaving(&q), 1);
  EXPECT_TRUE(q.having.empty());
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].ToString(), "B > 10");
}

TEST(HavingNormalizeTest, MovesLoneMinConditionFlipped) {
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .Select("A")
                .GroupBy("A")
                .Having(Predicate{Operand::Constant(Value::Int64(10)), CmpOp::kGt,
                                  Operand::Aggregate(AggFn::kMin, "B")})
                .BuildOrDie();
  EXPECT_EQ(NormalizeHaving(&q), 1);
  EXPECT_TRUE(q.having.empty());
  ASSERT_EQ(q.where.size(), 1u);
}

TEST(HavingNormalizeTest, KeepsMaxWhenOtherAggregatesPresent) {
  // Moving MAX(B) > 10 would change COUNT(B); it must stay.
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kCount, "B")
                .GroupBy("A")
                .HavingAgg(AggFn::kMax, "B", CmpOp::kGt, Value::Int64(10))
                .BuildOrDie();
  EXPECT_EQ(NormalizeHaving(&q), 0);
  EXPECT_EQ(q.having.size(), 1u);
  EXPECT_TRUE(q.where.empty());
}

TEST(HavingNormalizeTest, KeepsWrongDirectionExtrema) {
  // MAX(B) < 10 cannot move: filtering B < 10 would revive groups whose
  // true max exceeds 10.
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kMax, "B")
                .GroupBy("A")
                .HavingAgg(AggFn::kMax, "B", CmpOp::kLt, Value::Int64(10))
                .BuildOrDie();
  EXPECT_EQ(NormalizeHaving(&q), 0);
}

TEST(HavingNormalizeTest, KeepsSumConditions) {
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .Select("A")
                .GroupBy("A")
                .HavingAgg(AggFn::kSum, "B", CmpOp::kGt, Value::Int64(10))
                .BuildOrDie();
  EXPECT_EQ(NormalizeHaving(&q), 0);
}

TEST(HavingNormalizeTest, Idempotent) {
  Query q = QueryBuilder()
                .From("R", {"A", "B"})
                .Select("A")
                .SelectAgg(AggFn::kMax, "B")
                .GroupBy("A")
                .HavingCol("A", CmpOp::kLe, Value::Int64(3))
                .HavingAgg(AggFn::kMax, "B", CmpOp::kGe, Value::Int64(1))
                .BuildOrDie();
  EXPECT_GT(NormalizeHaving(&q), 0);
  EXPECT_EQ(NormalizeHaving(&q), 0);
}

// Semantics check: normalization preserves the query's multiset of answers
// over random data.
class HavingNormalizeSemanticsTest : public ::testing::TestWithParam<int> {};

TEST_P(HavingNormalizeSemanticsTest, PreservesResults) {
  std::mt19937_64 rng(GetParam());
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  Database db = MakeRandomDatabase(catalog, 60, 6, GetParam());

  // Randomly pick one of the movable shapes.
  QueryBuilder builder;
  builder.From("R", {"A", "B"}).Select("A").GroupBy("A");
  int shape = GetParam() % 3;
  if (shape == 0) {
    builder.SelectAgg(AggFn::kMax, "B")
        .HavingAgg(AggFn::kMax, "B", CmpOp::kGt, Value::Int64(2));
  } else if (shape == 1) {
    builder.SelectAgg(AggFn::kMin, "B")
        .HavingAgg(AggFn::kMin, "B", CmpOp::kLe, Value::Int64(3));
  } else {
    builder.SelectAgg(AggFn::kSum, "B")
        .HavingCol("A", CmpOp::kGe, Value::Int64(2));
  }
  Query original = builder.BuildOrDie();
  Query normalized = original;
  NormalizeHaving(&normalized);
  ExpectQueriesEquivalentOn(original, normalized, db, nullptr);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HavingNormalizeSemanticsTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace aqv
