#include "service/latch_manager.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace aqv {
namespace {

TEST(LatchManagerTest, StripeOfIsStableAndInRange) {
  LatchManager latches(8);
  EXPECT_EQ(latches.stripe_count(), 8u);
  for (const std::string& name : {"R", "S", "a_long_table_name", ""}) {
    uint32_t stripe = latches.StripeOf(name);
    EXPECT_LT(stripe, 8u);
    EXPECT_EQ(stripe, latches.StripeOf(name));  // stable across calls
  }
}

TEST(LatchManagerTest, ZeroStripesClampsToOne) {
  LatchManager latches(0);
  EXPECT_EQ(latches.stripe_count(), 1u);
  EXPECT_EQ(latches.StripeOf("anything"), 0u);
}

TEST(LatchManagerTest, GuardTracksStripesAndExclusivity) {
  LatchManager latches(8);
  {
    LatchManager::Guard g = latches.StatementShared();
    EXPECT_EQ(g.stripes_held(), 0u);
    EXPECT_FALSE(g.exclusive());
    latches.AcquireShared(&g, {"R", "S", "T"});
    EXPECT_GT(g.stripes_held(), 0u);
    EXPECT_LE(g.stripes_held(), 3u);  // names may share a stripe
    EXPECT_FALSE(g.exclusive());
  }
  {
    LatchManager::Guard g = latches.StatementShared();
    latches.AcquireWrite(&g, {"R"}, {"S"});
    EXPECT_TRUE(g.exclusive());
  }
  {
    LatchManager::Guard g = latches.Ddl();
    EXPECT_EQ(g.stripes_held(), 0u);
    EXPECT_TRUE(g.exclusive());
  }
}

TEST(LatchManagerTest, WriteCollidingWithReadTakesExclusive) {
  LatchManager latches(4);
  LatchManager::Guard g = latches.StatementShared();
  // Same name on both sides: one stripe, exclusive wins.
  latches.AcquireWrite(&g, {"R"}, {"R"});
  EXPECT_EQ(g.stripes_held(), 1u);
  EXPECT_TRUE(g.exclusive());
}

TEST(LatchManagerTest, AllSharedHoldsEveryStripe) {
  LatchManager latches(16);
  LatchManager::Guard g = latches.StatementShared();
  latches.AcquireAllShared(&g);
  EXPECT_EQ(g.stripes_held(), 16u);
  EXPECT_FALSE(g.exclusive());
}

TEST(LatchManagerTest, MoveTransfersOwnership) {
  LatchManager latches(4);
  LatchManager::Guard g1 = latches.StatementShared();
  latches.AcquireWrite(&g1, {"R"}, {});
  LatchManager::Guard g2 = std::move(g1);
  EXPECT_EQ(g1.stripes_held(), 0u);
  EXPECT_TRUE(g2.exclusive());
  g2.Release();
  // The stripe is free again: re-acquiring exclusively must not block.
  LatchManager::Guard g3 = latches.StatementShared();
  latches.AcquireWrite(&g3, {"R"}, {});
  EXPECT_TRUE(g3.exclusive());
}

TEST(LatchManagerTest, SharedHoldersOverlapExclusiveExcludes) {
  LatchManager latches(4);
  LatchManager::Guard reader = latches.StatementShared();
  latches.AcquireShared(&reader, {"R"});

  // A second shared holder of the same stripe gets in while the first holds.
  std::atomic<bool> second_reader_in{false};
  std::thread t1([&] {
    LatchManager::Guard g = latches.StatementShared();
    latches.AcquireShared(&g, {"R"});
    second_reader_in.store(true);
  });
  t1.join();
  EXPECT_TRUE(second_reader_in.load());

  // A writer on that stripe blocks until the reader releases.
  std::atomic<bool> writer_done{false};
  std::thread t2([&] {
    LatchManager::Guard g = latches.StatementShared();
    latches.AcquireWrite(&g, {"R"}, {});
    writer_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(writer_done.load());
  reader.Release();
  t2.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(LatchManagerTest, DdlExcludesStatements) {
  LatchManager latches(4);
  LatchManager::Guard ddl = latches.Ddl();
  std::atomic<bool> statement_in{false};
  std::thread t([&] {
    LatchManager::Guard g = latches.StatementShared();
    statement_in.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(statement_in.load());
  ddl.Release();
  t.join();
  EXPECT_TRUE(statement_in.load());
}

// Many threads taking overlapping write/read footprints in every order must
// neither deadlock (canonical stripe order) nor corrupt the counters.
TEST(LatchManagerTest, OverlappingFootprintsDoNotDeadlock) {
  LatchManager latches(4);
  const std::vector<std::string> names = {"A", "B", "C", "D", "E", "F"};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        LatchManager::Guard g = latches.StatementShared();
        // Rotate which names are written vs read so footprints overlap in
        // both directions across threads.
        std::vector<std::string> writes = {names[(t + i) % names.size()]};
        std::vector<std::string> reads = {names[(t + i + 1) % names.size()],
                                          names[(t + i + 3) % names.size()]};
        latches.AcquireWrite(&g, writes, reads);
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(completed.load(), 8 * 200);
}

}  // namespace
}  // namespace aqv
