// Fault injection and resource governance (PR 4): the failpoint registry's
// spec grammar and deterministic probabilistic streams; every wired site
// (parse, rewrite, optimizer, plan cache, evaluator, COW copy, REFRESH)
// failing cleanly through Status; graceful degradation onto the unrewritten
// plan; view quarantine and its REFRESH reset; admission control; statement
// deadlines, row budgets and the statement-length cap.
//
// The registry is process-global, so every test that arms a failpoint
// disarms it again (FailpointScope or the fixture's ClearAll) — leaked
// arming would poison unrelated tests in this binary.

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/failpoint.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().ClearAll(); }
  void TearDown() override { FailpointRegistry::Global().ClearAll(); }
};

TEST_F(FailpointTest, SpecGrammar) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  EXPECT_OK(reg.Set("a", "error"));
  EXPECT_OK(reg.Set("a", "error(50)"));
  EXPECT_OK(reg.Set("a", "error(100,3)"));
  EXPECT_OK(reg.Set("a", "delay(10)"));
  EXPECT_OK(reg.Set("a", "delay(10,50)"));
  EXPECT_OK(reg.Set("a", "delay(10,50,2)"));
  EXPECT_OK(reg.Set("a", "off"));

  EXPECT_FALSE(reg.Set("", "error").ok());          // empty name
  EXPECT_FALSE(reg.Set("a", "").ok());              // empty spec
  EXPECT_FALSE(reg.Set("a", "error(101)").ok());    // percent > 100
  EXPECT_FALSE(reg.Set("a", "error(1,2,3)").ok());  // too many args
  EXPECT_FALSE(reg.Set("a", "error()").ok());       // empty parens
  EXPECT_FALSE(reg.Set("a", "error(1,)").ok());     // trailing comma
  EXPECT_FALSE(reg.Set("a", "error(x)").ok());      // non-numeric
  EXPECT_FALSE(reg.Set("a", "error(1").ok());       // unbalanced
  EXPECT_FALSE(reg.Set("a", "delay").ok());         // delay needs micros
  EXPECT_FALSE(reg.Set("a", "off(1)").ok());        // off takes no args
  EXPECT_FALSE(reg.Set("a", "explode").ok());       // unknown action
  // A rejected spec leaves the registry unchanged.
  EXPECT_FALSE(reg.any_armed());
}

TEST_F(FailpointTest, AnyArmedIsTheFastPathGate) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  EXPECT_FALSE(reg.any_armed());
  ASSERT_OK(reg.Set("gate", "error"));
  EXPECT_TRUE(reg.any_armed());
  ASSERT_OK(reg.Set("gate", "off"));
  EXPECT_FALSE(reg.any_armed());
  ASSERT_OK(reg.Set("gate", "error"));
  reg.ClearAll();
  EXPECT_FALSE(reg.any_armed());
  // Disarming a never-armed name must not unbalance the armed count.
  ASSERT_OK(reg.Set("never_armed", "off"));
  EXPECT_FALSE(reg.any_armed());
}

TEST_F(FailpointTest, ErrorInjectsUnavailableOnlyAtItsSite) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_OK(reg.Set("site.a", "error"));
  Status injected = reg.Evaluate("site.a");
  EXPECT_EQ(injected.code(), StatusCode::kUnavailable);
  EXPECT_NE(injected.ToString().find("injected failpoint 'site.a'"),
            std::string::npos);
  // Other sites are untouched while one is armed.
  EXPECT_OK(reg.Evaluate("site.b"));
}

TEST_F(FailpointTest, MaxFiresStopsInjection) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_OK(reg.Set("bounded", "error(100,2)"));
  int failures = 0;
  for (int i = 0; i < 5; ++i) failures += !reg.Evaluate("bounded").ok();
  EXPECT_EQ(failures, 2);

  std::vector<FailpointRegistry::Info> armed = reg.List();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].name, "bounded");
  EXPECT_EQ(armed[0].spec, "error(100,2)");
  EXPECT_EQ(armed[0].evaluations, 5u);
  EXPECT_EQ(armed[0].fires, 2u);
}

TEST_F(FailpointTest, ProbabilisticStreamReplaysFromSeed) {
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_OK(reg.Set("p", "error(50)"));
  auto draw_pattern = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!reg.Evaluate("p").ok());
    return fired;
  };
  reg.Reseed(777);
  std::vector<bool> first = draw_pattern();
  reg.Reseed(777);
  EXPECT_EQ(draw_pattern(), first);
  // A 50% stream over 64 draws fires sometimes and skips sometimes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
  // A different seed yields a different schedule.
  reg.Reseed(778);
  EXPECT_NE(draw_pattern(), first);
}

TEST_F(FailpointTest, ReseedIsolatesSitesFromEachOther) {
  // Arming a second failpoint must not perturb the first one's stream:
  // each site draws from seed ^ hash(name).
  FailpointRegistry& reg = FailpointRegistry::Global();
  ASSERT_OK(reg.Set("p", "error(50)"));
  reg.Reseed(99);
  std::vector<bool> alone;
  for (int i = 0; i < 32; ++i) alone.push_back(!reg.Evaluate("p").ok());

  ASSERT_OK(reg.Set("q", "error(50)"));
  reg.Reseed(99);
  std::vector<bool> with_q;
  for (int i = 0; i < 32; ++i) {
    with_q.push_back(!reg.Evaluate("p").ok());
    reg.Evaluate("q");
  }
  EXPECT_EQ(with_q, alone);
}

Status GuardedBySite() {
  AQV_FAILPOINT("macro.site");
  return Status::OK();
}

TEST_F(FailpointTest, MacroReturnsInjectedStatusAndScopeDisarms) {
  EXPECT_OK(GuardedBySite());
  {
    FailpointScope scope("macro.site", "error");
    ASSERT_TRUE(scope.armed());
    EXPECT_EQ(GuardedBySite().code(), StatusCode::kUnavailable);
  }
  EXPECT_OK(GuardedBySite());
  // A malformed spec leaves the scope inert rather than half-armed.
  FailpointScope bad("macro.site", "bogus");
  EXPECT_FALSE(bad.armed());
  EXPECT_OK(GuardedBySite());
}

TEST_F(FailpointTest, EnvironmentArmsARegistry) {
  // The env path is tested on a locally constructed registry: the global
  // one read AQV_FAILPOINTS long ago, at first access.
  ASSERT_EQ(setenv("AQV_FAILPOINTS",
                   "parse=error(25);bogus;also=bad(spec)", 1),
            0);
  FailpointRegistry local;
  unsetenv("AQV_FAILPOINTS");
  std::vector<FailpointRegistry::Info> armed = local.List();
  // Malformed entries are skipped, well-formed ones are armed.
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].name, "parse");
  EXPECT_EQ(armed[0].spec, "error(25)");
}

// ---------------------------------------------------------------------------
// Service-level robustness: every site fails cleanly; degradation, quarantine,
// admission, deadlines, budgets, the statement cap.

/// A small service with a materialized aggregate view the rewriter will
/// substitute into the matching GROUPBY query.
std::unique_ptr<QueryService> MakeSalesService(
    ServiceOptions options = ServiceOptions{}) {
  auto service = std::make_unique<QueryService>(options);
  EXPECT_OK(service->Execute("CREATE TABLE Sales(Shop, Amount)").status());
  EXPECT_OK(service
                ->Execute("INSERT INTO Sales VALUES (1, 10), (1, 11), (2, 20), "
                          "(2, 21), (3, 30), (3, 31)")
                .status());
  EXPECT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW Totals AS SELECT Shop_1, "
                          "SUM(Amount_1) AS T FROM Sales GROUPBY Shop_1")
                .status());
  return service;
}

std::string SalesQuery(int threshold = 0) {
  return "SELECT Shop_1, SUM(Amount_1) AS T FROM Sales WHERE Shop_1 > " +
         std::to_string(threshold) + " GROUPBY Shop_1";
}

TEST_F(FailpointTest, FailpointStatementArmsListsAndClears) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  Result<StatementResult> armed = service->Execute("FAILPOINT parse error");
  ASSERT_OK(armed.status());
  EXPECT_NE(armed->message.find("failpoint parse = error"), std::string::npos);

  Result<Table> blocked = service->Select(SalesQuery());
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(blocked.status().ToString().find("injected failpoint 'parse'"),
            std::string::npos);

  Result<StatementResult> listed = service->Execute("FAILPOINT LIST");
  ASSERT_OK(listed.status());
  EXPECT_NE(listed->message.find("parse error (evaluated"), std::string::npos);

  ASSERT_OK(service->Execute("FAILPOINT CLEAR").status());
  EXPECT_OK(service->Select(SalesQuery()).status());
  Result<StatementResult> empty = service->Execute("FAILPOINT LIST");
  ASSERT_OK(empty.status());
  EXPECT_NE(empty->message.find("no failpoints armed"), std::string::npos);

  EXPECT_FALSE(service->Execute("FAILPOINT parse explode").ok());
  EXPECT_FALSE(service->Execute("FAILPOINT lonely-name").ok());
}

TEST_F(FailpointTest, InjectedSitesFailStatementsCleanly) {
  // Each wired site, armed alone, turns its statement into a clean
  // kUnavailable (degradation off isolates the site under test).
  ServiceOptions options;
  options.degrade_on_failure = false;
  struct SiteCase {
    const char* site;
    std::string stmt;
  };
  const SiteCase cases[] = {
      {"parse", SalesQuery()},
      {"optimizer.optimize", SalesQuery()},
      {"exec.operator", SalesQuery()},
      {"table.cow_copy", "INSERT INTO Sales VALUES (4, 40)"},
      {"maintain.apply", "INSERT INTO Sales VALUES (4, 40)"},
      {"service.refresh", "REFRESH Totals"},
  };
  for (const SiteCase& c : cases) {
    std::unique_ptr<QueryService> service = MakeSalesService(options);
    FailpointScope scope(c.site, "error");
    ASSERT_TRUE(scope.armed());
    Result<StatementResult> r = service->Execute(c.stmt);
    ASSERT_FALSE(r.ok()) << c.site;
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable) << c.site;
    EXPECT_NE(r.status().ToString().find(c.site), std::string::npos) << c.site;
  }
}

TEST_F(FailpointTest, PlanCacheFaultsDegradeToMissAndSkip) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  std::string q = SalesQuery();
  ASSERT_OK_AND_ASSIGN(Table expected, service->Select(q));
  {
    // A faulted lookup is a miss: the statement re-optimizes and still
    // answers correctly.
    FailpointScope scope("plan_cache.lookup", "error");
    Result<StatementResult> r = service->Execute(q);
    ASSERT_OK(r.status());
    EXPECT_FALSE(r->cache_hit);
    EXPECT_TRUE(MultisetEqual(*r->table, expected));
  }
  {
    // A faulted insert skips caching: the next statement misses again.
    std::string q2 = SalesQuery(1);
    {
      FailpointScope scope("plan_cache.insert", "error");
      ASSERT_OK(service->Execute(q2).status());
    }
    Result<StatementResult> after = service->Execute(q2);
    ASSERT_OK(after.status());
    EXPECT_FALSE(after->cache_hit);  // the armed run cached nothing
    Result<StatementResult> hit = service->Execute(q2);
    ASSERT_OK(hit.status());
    EXPECT_TRUE(hit->cache_hit);
  }
}

TEST_F(FailpointTest, ExecutionFailureOfRewrittenPlanDegrades) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  // The exact view query is the statement the optimizer rewrites onto
  // Totals; fail its first execution attempt only (max_fires=1), so the
  // unrewritten retry goes through.
  std::string q = "SELECT Shop_1, SUM(Amount_1) AS T FROM Sales GROUPBY Shop_1";
  // max_fires=1 exhausts itself on the first attempt, so the scope can stay
  // armed through the verification selects below.
  FailpointScope scope("exec.operator", "error(100,1)");
  Result<StatementResult> r = service->Execute(q);
  ASSERT_TRUE(r.ok()) << "degraded retry should have succeeded: "
                      << r.status().ToString();
  EXPECT_TRUE(r->degraded);
  EXPECT_FALSE(r->used_materialized_view);
  EXPECT_NE(r->message.find("degraded: plan failed"), std::string::npos);
  ASSERT_TRUE(r->table.has_value());

  ASSERT_OK_AND_ASSIGN(Table direct, service->Select(q));
  EXPECT_TRUE(MultisetEqual(*r->table, direct))
      << DescribeMultisetDifference(*r->table, direct);
  EXPECT_GE(service->Stats().degraded_fallbacks, 1u);
}

TEST_F(FailpointTest, OptimizerFailureDegradesToUnrewrittenPlan) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  std::string q = SalesQuery(1);
  FailpointScope scope("optimizer.optimize", "error(100,1)");
  Result<StatementResult> r = service->Execute(q);
  ASSERT_OK(r.status());
  EXPECT_TRUE(r->degraded);
  EXPECT_FALSE(r->used_materialized_view);
  ASSERT_TRUE(r->table.has_value());
  // The degraded fallback plan was not cached: the next run of q
  // re-optimizes (miss) rather than serving the pinned unrewritten plan —
  // and its rows agree with the degraded answer.
  Result<StatementResult> after = service->Execute(q);
  ASSERT_OK(after.status());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_TRUE(MultisetEqual(*r->table, *after->table))
      << DescribeMultisetDifference(*r->table, *after->table);
  EXPECT_GE(service->Stats().degraded_fallbacks, 1u);
}

TEST_F(FailpointTest, RepeatedRewriteFailuresQuarantineTheView) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  {
    FailpointScope scope("rewrite.enumerate", "error");
    // Three distinct statements (distinct cache keys), each charging
    // Totals with one rewrite-time failure.
    for (int i = 0; i < 3; ++i) {
      Result<StatementResult> r = service->Execute(SalesQuery(i));
      ASSERT_TRUE(r.ok()) << "per-view failure must not fail the statement: "
                          << r.status().ToString();
      EXPECT_FALSE(r->used_materialized_view);
    }
  }
  ServiceStats stats = service->Stats();
  ASSERT_EQ(stats.quarantined_views.size(), 1u);
  EXPECT_EQ(stats.quarantined_views[0], "Totals");
  EXPECT_NE(stats.ToString().find("quarantined views   Totals"),
            std::string::npos);

  // Quarantined: even with failpoints cleared, the exact view query — which
  // the optimizer would otherwise rewrite onto Totals — skips the view.
  std::string exact =
      "SELECT Shop_1, SUM(Amount_1) AS T FROM Sales GROUPBY Shop_1";
  Result<StatementResult> shunned = service->Execute(exact);
  ASSERT_OK(shunned.status());
  EXPECT_FALSE(shunned->used_materialized_view);

  // REFRESH rehabilitates the view (and, by recomputing its contents,
  // invalidates cached plans that depend on it).
  ASSERT_OK(service->Execute("REFRESH Totals").status());
  EXPECT_TRUE(service->Stats().quarantined_views.empty());
  ASSERT_OK(service->Execute("INSERT INTO Sales VALUES (4, 40)").status());
  Result<StatementResult> back = service->Execute(exact);
  ASSERT_OK(back.status());
  EXPECT_FALSE(back->cache_hit);
  EXPECT_TRUE(back->used_materialized_view);
}

TEST_F(FailpointTest, QuarantineCooldownAutoClears) {
  ServiceOptions options;
  options.quarantine_cooldown_statements = 4;
  std::unique_ptr<QueryService> service = MakeSalesService(options);
  {
    FailpointScope scope("rewrite.enumerate", "error");
    for (int i = 0; i < 3; ++i) {
      ASSERT_OK(service->Execute(SalesQuery(i)).status());
    }
  }
  ASSERT_EQ(service->Stats().quarantined_views.size(), 1u);

  // No REFRESH: after `quarantine_cooldown_statements` further statements
  // the view re-enters candidacy on its own.
  for (int i = 10; i < 16; ++i) {
    ASSERT_OK(service->Execute(SalesQuery(i)).status());
  }
  EXPECT_TRUE(service->Stats().quarantined_views.empty());
  Result<StatementResult> back = service->Execute(
      "SELECT Shop_1, SUM(Amount_1) AS T FROM Sales GROUPBY Shop_1");
  ASSERT_OK(back.status());
  EXPECT_TRUE(back->used_materialized_view);

  // Cooldown 0 keeps the PR-4 behavior: quarantine is permanent until
  // REFRESH.
  ServiceOptions permanent;
  permanent.quarantine_cooldown_statements = 0;
  std::unique_ptr<QueryService> strict = MakeSalesService(permanent);
  {
    FailpointScope scope("rewrite.enumerate", "error");
    for (int i = 0; i < 3; ++i) {
      ASSERT_OK(strict->Execute(SalesQuery(i)).status());
    }
  }
  for (int i = 10; i < 30; ++i) {
    ASSERT_OK(strict->Execute(SalesQuery(i)).status());
  }
  EXPECT_EQ(strict->Stats().quarantined_views.size(), 1u);
}

TEST_F(FailpointTest, AdmissionControlRejectsOverLimitStatements) {
  ServiceOptions options;
  options.max_concurrent_statements = 1;
  options.admission_wait_micros = 1000;
  std::unique_ptr<QueryService> service = MakeSalesService(options);

  // Park one statement inside execution with a delay failpoint, then watch
  // a second statement bounce while control statements still get through.
  FailpointScope scope("exec.operator", "delay(400000,100,1)");
  std::atomic<bool> entered{false};
  std::thread parked([&] {
    entered.store(true);
    EXPECT_OK(service->Execute(SalesQuery()).status());
  });
  while (!entered.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Result<StatementResult> busy = service->Execute(SalesQuery(1));
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(busy.status().ToString().find("SERVER_BUSY"), std::string::npos);

  // STATS and FAILPOINT bypass admission: a saturated server stays
  // inspectable and disarmable.
  EXPECT_OK(service->Execute("STATS").status());
  EXPECT_OK(service->Execute("FAILPOINT LIST").status());
  parked.join();

  ServiceStats stats = service->Stats();
  EXPECT_GE(stats.admission_rejects, 1u);
  // The rejected statement shows up in the per-code error counters.
  bool found = false;
  for (const auto& [code, count] : stats.errors_by_code) {
    if (code == "unavailable") found = count >= 1;
  }
  EXPECT_TRUE(found) << stats.ToString();
  // And the slot was released: the service accepts statements again.
  EXPECT_OK(service->Select(SalesQuery(2)).status());
}

TEST_F(FailpointTest, DeadlineAndRowBudgetReturnResourceErrors) {
  {
    ServiceOptions options;
    options.statement_deadline_micros = 1;  // expires during parse/optimize
    std::unique_ptr<QueryService> service = MakeSalesService(options);
    Result<StatementResult> r = service->Execute(SalesQuery());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
    // A tripped deadline is never retried on the degraded path.
    EXPECT_EQ(service->Stats().degraded_fallbacks, 0u);
  }
  {
    ServiceOptions options;
    options.statement_row_budget = 2;  // the Sales scan alone exceeds this
    std::unique_ptr<QueryService> service = MakeSalesService(options);
    Result<StatementResult> r = service->Execute(SalesQuery());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(r.status().ToString().find("row budget"), std::string::npos);
    // Roomy budgets pass: governance costs must not change answers.
    options.statement_row_budget = 1 << 20;
    std::unique_ptr<QueryService> roomy = MakeSalesService(options);
    EXPECT_OK(roomy->Select(SalesQuery()).status());
  }
}

TEST_F(FailpointTest, SnapshotReadsAreGovernedToo) {
  ServiceOptions options;
  options.statement_row_budget = 2;
  std::unique_ptr<QueryService> service = MakeSalesService(options);
  ServiceSnapshotPtr snap = service->PinSnapshot();
  Result<Table> r = service->Select(SalesQuery(), *snap);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FailpointTest, StatementLengthCapRejectsBeforeParsing) {
  ServiceOptions options;
  // Roomy enough for the setup DDL, tight enough to trip below.
  options.max_statement_bytes = 128;
  std::unique_ptr<QueryService> service = MakeSalesService(options);
  std::string oversized = SalesQuery() + std::string(256, ' ');
  Result<StatementResult> r = service->Execute(oversized);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("bytes"), std::string::npos);
  EXPECT_OK(service->Select(SalesQuery()).status());
}

TEST_F(FailpointTest, ErrorCountersSurfaceInStatsAndProm) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  EXPECT_FALSE(service->Execute("SELECT FROM nothing(").ok());
  {
    FailpointScope scope("parse", "error");
    EXPECT_FALSE(service->Execute(SalesQuery()).ok());
  }
  ServiceStats stats = service->Stats();
  uint64_t invalid = 0, unavailable = 0;
  for (const auto& [code, count] : stats.errors_by_code) {
    if (code == "invalid_argument") invalid = count;
    if (code == "unavailable") unavailable = count;
  }
  EXPECT_GE(invalid, 1u);
  EXPECT_GE(unavailable, 1u);
  EXPECT_NE(stats.ToString().find("errors"), std::string::npos);

  std::string prom = service->StatsPromText();
  EXPECT_NE(prom.find("aqv_service_errors_total{code=\"invalid_argument\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("aqv_service_errors_total{code=\"unavailable\"}"),
            std::string::npos);
  // Labeled series of one family share a single # TYPE line.
  std::string type_line = "# TYPE aqv_service_errors_total counter";
  size_t first = prom.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(prom.find(type_line, first + 1), std::string::npos);
}

TEST_F(FailpointTest, DelayFailpointSlowsButDoesNotFail) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  FailpointScope scope("exec.operator", "delay(20000)");
  auto start = std::chrono::steady_clock::now();
  Result<StatementResult> r = service->Execute(SalesQuery());
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_OK(r.status());
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            20000);
}

}  // namespace
}  // namespace aqv
