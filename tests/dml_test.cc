// DELETE/UPDATE through the transactional write path (ISSUE 10): parser
// binding and error shapes, multiset delete semantics, incremental
// maintenance vs recompute fallback on deletes, UPDATE as delete+insert,
// BEGIN WRITE batching, delete-containment validation, verb-accurate
// view-write refusals, WAL durability of delete-carrying deltas, and the
// MVCC garbage accounting (versions_alive / bytes_pinned) that real deletes
// make meaningful.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/table.h"
#include "parser/parser.h"
#include "service/query_service.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

std::string FreshPath(const std::string& stem) {
  std::string path = ::testing::TempDir() + "/aqv_" + stem;
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

std::unique_ptr<QueryService> MakeSalesService(
    ServiceOptions options = ServiceOptions{}) {
  auto service = std::make_unique<QueryService>(options);
  EXPECT_OK(service->Execute("CREATE TABLE Sales(Shop, Amount)").status());
  EXPECT_OK(service
                ->Execute("INSERT INTO Sales VALUES (1, 10), (1, 20), "
                          "(2, 30), (2, 30)")
                .status());
  EXPECT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW Totals AS "
                          "SELECT Shop_1, SUM(Amount_1) AS T, "
                          "COUNT(Amount_1) AS N FROM Sales GROUPBY Shop_1")
                .status());
  return service;
}

int64_t CellForShop(const Table& t, int64_t shop, int col) {
  for (const Row& row : t.rows()) {
    if (row[0] == Value::Int64(shop)) return row[col].int64();
  }
  return -1;
}

// ---------------------------------------------------------------- parser

Catalog OneTableCatalog() {
  Catalog catalog;
  EXPECT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  return catalog;
}

TEST(DmlParserTest, DeleteBindsScalarPredicatesAgainstSchema) {
  Catalog catalog = OneTableCatalog();
  ASSERT_OK_AND_ASSIGN(DeleteStatement del,
                       ParseDelete("DELETE FROM R WHERE A = 1 AND B = 2",
                                   &catalog));
  EXPECT_EQ(del.table, "R");
  EXPECT_EQ(del.where.size(), 2u);
  // No WHERE deletes everything.
  ASSERT_OK_AND_ASSIGN(DeleteStatement all, ParseDelete("DELETE FROM R",
                                                        &catalog));
  EXPECT_TRUE(all.where.empty());
}

TEST(DmlParserTest, DeleteRejectsBadShapes) {
  Catalog catalog = OneTableCatalog();
  EXPECT_FALSE(ParseDelete("DELETE FROM NoSuch", &catalog).ok());
  EXPECT_FALSE(ParseDelete("DELETE FROM R WHERE A = 1 extra", &catalog).ok());
  EXPECT_FALSE(ParseDelete("DELETE FROM R WHERE C = 1", &catalog).ok());
  // A catalog is required: DML binds against the target schema.
  EXPECT_FALSE(ParseDelete("DELETE FROM R", nullptr).ok());
}

TEST(DmlParserTest, UpdateParsesAssignmentsAndRejectsDuplicates) {
  Catalog catalog = OneTableCatalog();
  ASSERT_OK_AND_ASSIGN(
      UpdateStatement upd,
      ParseUpdate("UPDATE R SET A = 5, B = B + 1 WHERE A = 2", &catalog));
  EXPECT_EQ(upd.table, "R");
  ASSERT_EQ(upd.sets.size(), 2u);
  EXPECT_EQ(upd.sets[0].column, "A");
  EXPECT_EQ(upd.sets[0].expr.kind, SetExpr::Kind::kLiteral);
  EXPECT_EQ(upd.sets[1].column, "B");
  EXPECT_EQ(upd.sets[1].expr.kind, SetExpr::Kind::kBinary);
  EXPECT_EQ(upd.sets[1].expr.op, '+');
  EXPECT_EQ(upd.where.size(), 1u);

  Result<UpdateStatement> dup =
      ParseUpdate("UPDATE R SET A = 1, A = 2", &catalog);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().ToString().find("assigned twice"), std::string::npos);
  EXPECT_FALSE(ParseUpdate("UPDATE R SET C = 1", &catalog).ok());
  EXPECT_FALSE(ParseUpdate("UPDATE R SET A = B + 'x'", &catalog).ok());
}

// ------------------------------------------------------------- semantics

TEST(DmlServiceTest, DeleteRemovesEveryMatchingOccurrence) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  // (2, 30) appears twice; the predicate matches both occurrences.
  ASSERT_OK_AND_ASSIGN(StatementResult ack,
                       service->Execute("DELETE FROM Sales WHERE Shop = 2"));
  EXPECT_NE(ack.message.find("2 row(s) deleted from Sales"),
            std::string::npos);
  ASSERT_OK_AND_ASSIGN(Table rows,
                       service->Select("SELECT Shop_1, Amount_1 FROM Sales"));
  EXPECT_EQ(rows.num_rows(), 2u);
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.rows_deleted, 2u);
}

TEST(DmlServiceTest, DeleteMaintainsCountBearingViewIncrementally) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  uint64_t before = service->Stats().views_maintained;
  EXPECT_OK(service->Execute("DELETE FROM Sales WHERE Amount = 10").status());
  // The SUM+COUNT view supports delete differencing (group liveness is
  // count-tracked), so the write folds incrementally — no recompute.
  ServiceStats stats = service->Stats();
  EXPECT_GT(stats.views_maintained, before);
  ASSERT_OK_AND_ASSIGN(
      Table totals, service->Select("SELECT Shop_1, SUM(Amount_1) AS T, "
                                    "COUNT(Amount_1) AS N "
                                    "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(CellForShop(totals, 1, 1), 20);
  EXPECT_EQ(CellForShop(totals, 1, 2), 1);
}

TEST(DmlServiceTest, DeleteEmptyingAGroupDropsItFromTheView) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  EXPECT_OK(service->Execute("DELETE FROM Sales WHERE Shop = 1").status());
  ASSERT_OK_AND_ASSIGN(
      Table totals, service->Select("SELECT Shop_1, SUM(Amount_1) AS T "
                                    "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(totals.num_rows(), 1u);
  EXPECT_EQ(CellForShop(totals, 1, 1), -1);
  EXPECT_EQ(CellForShop(totals, 2, 1), 60);
}

TEST(DmlServiceTest, ExtremumDeleteWithoutCoveringInsertRecomputes) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  EXPECT_OK(service
                ->Execute("CREATE MATERIALIZED VIEW Peaks AS "
                          "SELECT Shop_1, MAX(Amount_1) AS Mx "
                          "FROM Sales GROUPBY Shop_1")
                .status());
  uint64_t before = service->Stats().views_recomputed;
  // Deleting the maximum with no covering insert cannot be folded (the new
  // max is not derivable from the delta) — the write path must fall back
  // to full recompute and still publish a fresh view.
  EXPECT_OK(service->Execute("DELETE FROM Sales WHERE Amount = 20").status());
  ServiceStats stats = service->Stats();
  EXPECT_GT(stats.views_recomputed, before);
  ASSERT_OK_AND_ASSIGN(
      Table peaks, service->Select("SELECT Shop_1, MAX(Amount_1) AS Mx "
                                   "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(CellForShop(peaks, 1, 1), 10);
}

TEST(DmlServiceTest, UpdateIsDeletePlusInsertAtOneEpoch) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  ServiceSnapshotPtr pinned = service->PinSnapshot();
  ASSERT_OK_AND_ASSIGN(
      StatementResult ack,
      service->Execute("UPDATE Sales SET Amount = Amount + 5 WHERE Shop = 1"));
  EXPECT_NE(ack.message.find("2 row(s) updated in Sales"), std::string::npos);
  ASSERT_OK_AND_ASSIGN(
      Table totals, service->Select("SELECT Shop_1, SUM(Amount_1) AS T "
                                    "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(CellForShop(totals, 1, 1), 40);  // 15 + 25
  // Base and dependent view were published at ONE shared epoch; the pinned
  // snapshot saw neither side of the update.
  ServiceSnapshotPtr after = service->PinSnapshot();
  EXPECT_EQ(after->db.VersionOf("Sales"), after->db.VersionOf("Totals"));
  EXPECT_LT(pinned->db.VersionOf("Sales"), after->db.VersionOf("Sales"));
  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.rows_inserted, 2u + 4u);  // bootstrap 4 + update 2
  EXPECT_EQ(stats.rows_deleted, 2u);
}

TEST(DmlServiceTest, UpdateAssignmentsReadTheOldRow) {
  QueryService service;
  EXPECT_OK(service.Execute("CREATE TABLE P(X, Y)").status());
  EXPECT_OK(service.Execute("INSERT INTO P VALUES (1, 2)").status());
  // SQL semantics: both sources are the pre-update row, so this swaps.
  EXPECT_OK(service.Execute("UPDATE P SET X = Y, Y = X").status());
  ASSERT_OK_AND_ASSIGN(Table rows, service.Select("SELECT X_1, Y_1 FROM P"));
  ASSERT_EQ(rows.num_rows(), 1u);
  EXPECT_EQ(rows.rows()[0][0], Value::Int64(2));
  EXPECT_EQ(rows.rows()[0][1], Value::Int64(1));
}

TEST(DmlServiceTest, UpdateArithmeticOnNullYieldsNullAndOnStringFails) {
  QueryService service;
  EXPECT_OK(service.Execute("CREATE TABLE P(X, Y)").status());
  EXPECT_OK(
      service.Execute("INSERT INTO P VALUES (1, NULL), (2, 'abc')").status());
  // NULL + 1 is NULL; the string row is untouched by the predicate.
  EXPECT_OK(
      service.Execute("UPDATE P SET Y = Y + 1 WHERE X = 1").status());
  ASSERT_OK_AND_ASSIGN(Table rows, service.Select("SELECT X_1, Y_1 FROM P"));
  for (const Row& row : rows.rows()) {
    if (row[0] == Value::Int64(1)) {
      EXPECT_TRUE(row[1].is_null());
    }
  }
  // Arithmetic on a string value is an execution-time error; the statement
  // fails cleanly and publishes nothing.
  uint64_t epoch_before = service.PinSnapshot()->epoch;
  Result<StatementResult> bad =
      service.Execute("UPDATE P SET Y = Y * 2 WHERE X = 2");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("numeric"), std::string::npos);
  EXPECT_EQ(service.PinSnapshot()->epoch, epoch_before);
}

TEST(DmlServiceTest, MutationMatchingNothingBumpsNoEpoch) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  uint64_t epoch_before = service->PinSnapshot()->epoch;
  ASSERT_OK_AND_ASSIGN(StatementResult ack,
                       service->Execute("DELETE FROM Sales WHERE Shop = 99"));
  EXPECT_NE(ack.message.find("0 row(s) deleted"), std::string::npos);
  EXPECT_OK(
      service->Execute("UPDATE Sales SET Amount = 0 WHERE Shop = 99").status());
  EXPECT_EQ(service->PinSnapshot()->epoch, epoch_before);
}

// -------------------------------------------------- verb-accurate errors

TEST(DmlServiceTest, WritesAimedAtViewsNameTheRightVerb) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  Result<StatementResult> del = service->Execute("DELETE FROM Totals");
  ASSERT_FALSE(del.ok());
  EXPECT_NE(del.status().ToString().find("cannot DELETE from view 'Totals'"),
            std::string::npos);
  Result<StatementResult> upd = service->Execute("UPDATE Totals SET T = 0");
  ASSERT_FALSE(upd.ok());
  EXPECT_NE(upd.status().ToString().find("cannot UPDATE view 'Totals'"),
            std::string::npos);
  Result<StatementResult> ins =
      service->Execute("INSERT INTO Totals VALUES (1, 2, 3)");
  ASSERT_FALSE(ins.ok());
  EXPECT_NE(ins.status().ToString().find("cannot INSERT into view 'Totals'"),
            std::string::npos);
  Result<StatementResult> load =
      service->Execute("LOAD Totals FROM 'nope.csv'");
  ASSERT_FALSE(load.ok());
  EXPECT_NE(load.status().ToString().find("cannot LOAD into view 'Totals'"),
            std::string::npos);
}

// --------------------------------------------------- containment checking

TEST(DmlServiceTest, PhantomDeleteIsRejectedBeforePublishing) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  // Stage the same single-occurrence row for deletion twice: each DELETE
  // matches committed state, but the base holds only one (1, 10), so the
  // combined batch delta is not contained and must be refused wholesale.
  EXPECT_OK(service->Execute("BEGIN WRITE").status());
  EXPECT_OK(service->Execute("DELETE FROM Sales WHERE Amount = 10").status());
  EXPECT_OK(service->Execute("DELETE FROM Sales WHERE Amount = 10").status());
  uint64_t epoch_before = service->PinSnapshot()->epoch;
  Result<StatementResult> committed = service->Execute("COMMIT");
  ASSERT_FALSE(committed.ok());
  EXPECT_EQ(committed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(committed.status().ToString().find("not present"),
            std::string::npos);
  // Nothing was published and the failed batch is discarded.
  EXPECT_EQ(service->PinSnapshot()->epoch, epoch_before);
  ASSERT_OK_AND_ASSIGN(Table rows, service->Select("SELECT Amount_1 FROM "
                                                   "Sales"));
  EXPECT_EQ(rows.num_rows(), 4u);
  EXPECT_FALSE(service->Execute("COMMIT").ok());  // batch is gone
}

TEST(DmlServiceTest, SameBatchInsertCoversDeleteOfIdenticalRow) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  // Inserts land before deletes, so a batch may insert (7, 70) and delete
  // it again — a net no-op that must pass containment.
  EXPECT_OK(service->Execute("BEGIN WRITE").status());
  EXPECT_OK(service->Execute("INSERT INTO Sales VALUES (7, 70)").status());
  ASSERT_OK_AND_ASSIGN(StatementResult committed, service->Execute("COMMIT"));
  EXPECT_OK(service->Execute("BEGIN WRITE").status());
  EXPECT_OK(service->Execute("INSERT INTO Sales VALUES (7, 70)").status());
  EXPECT_OK(service->Execute("DELETE FROM Sales WHERE Shop = 7").status());
  ASSERT_OK_AND_ASSIGN(committed, service->Execute("COMMIT"));
  ASSERT_OK_AND_ASSIGN(
      Table rows, service->Select("SELECT Shop_1 FROM Sales WHERE Shop_1 = 7"));
  EXPECT_EQ(rows.num_rows(), 1u);
}

// ----------------------------------------------------------- batch DML

TEST(DmlServiceTest, BatchedDmlBuffersAndRollsBack) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  EXPECT_OK(service->Execute("BEGIN WRITE").status());
  ASSERT_OK_AND_ASSIGN(StatementResult buffered,
                       service->Execute("DELETE FROM Sales WHERE Shop = 1"));
  EXPECT_NE(buffered.message.find("2 row(s) buffered to delete from Sales"),
            std::string::npos);
  ASSERT_OK_AND_ASSIGN(
      buffered,
      service->Execute("UPDATE Sales SET Amount = Amount - 1 WHERE Shop = 2"));
  EXPECT_NE(buffered.message.find("buffered to update in Sales"),
            std::string::npos);
  // Reads inside the batch still see committed state.
  ASSERT_OK_AND_ASSIGN(Table mid, service->Select("SELECT Amount_1 FROM "
                                                  "Sales"));
  EXPECT_EQ(mid.num_rows(), 4u);
  ASSERT_OK_AND_ASSIGN(StatementResult rolled,
                       service->Execute("ROLLBACK"));
  // 2 deletes + 2 update-deletes + 2 update-inserts.
  EXPECT_NE(rolled.message.find("6 buffered row(s)"), std::string::npos);
  ASSERT_OK_AND_ASSIGN(Table after, service->Select("SELECT Amount_1 FROM "
                                                    "Sales"));
  EXPECT_EQ(after.num_rows(), 4u);
}

TEST(DmlServiceTest, BatchedDmlCommitsAtomicallyWithViewMaintenance) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  EXPECT_OK(service->Execute("BEGIN WRITE").status());
  EXPECT_OK(service->Execute("INSERT INTO Sales VALUES (3, 5)").status());
  EXPECT_OK(service->Execute("DELETE FROM Sales WHERE Shop = 1").status());
  ASSERT_OK_AND_ASSIGN(StatementResult committed, service->Execute("COMMIT"));
  EXPECT_NE(committed.message.find("1 row(s) inserted / 2 deleted"),
            std::string::npos);
  ASSERT_OK_AND_ASSIGN(
      Table totals, service->Select("SELECT Shop_1, SUM(Amount_1) AS T "
                                    "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(CellForShop(totals, 1, 1), -1);
  EXPECT_EQ(CellForShop(totals, 3, 1), 5);
}

TEST(DmlServiceTest, DmlRejectedInsideSnapshotButAllowedInBatch) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  EXPECT_OK(service->Execute("BEGIN SNAPSHOT").status());
  EXPECT_FALSE(service->Execute("DELETE FROM Sales WHERE Shop = 1").ok());
  EXPECT_FALSE(
      service->Execute("UPDATE Sales SET Amount = 0 WHERE Shop = 1").ok());
  EXPECT_OK(service->Execute("COMMIT").status());
}

// ----------------------------------------------------------- durability

TEST(DmlDurabilityTest, DeleteAndUpdateSurviveRestart) {
  std::string path = FreshPath("dml_restart");
  ServiceOptions opts;
  opts.storage_path = path;
  {
    std::unique_ptr<QueryService> service = MakeSalesService(opts);
    EXPECT_OK(service->Execute("DELETE FROM Sales WHERE Shop = 2").status());
    EXPECT_OK(service
                  ->Execute("UPDATE Sales SET Amount = Amount + 1 "
                            "WHERE Shop = 1")
                  .status());
  }
  // Reopen: the delete-carrying WAL deltas replay into a consistent state,
  // views recomputed to match.
  QueryService reopened(opts);
  ASSERT_OK(reopened.storage_status());
  ASSERT_OK_AND_ASSIGN(Table rows,
                       reopened.Select("SELECT Shop_1, Amount_1 FROM Sales"));
  EXPECT_EQ(rows.num_rows(), 2u);
  ASSERT_OK_AND_ASSIGN(
      Table totals, reopened.Select("SELECT Shop_1, SUM(Amount_1) AS T "
                                    "FROM Sales GROUPBY Shop_1"));
  EXPECT_EQ(CellForShop(totals, 1, 1), 32);  // 11 + 21
  EXPECT_EQ(CellForShop(totals, 2, 1), -1);
}

// ------------------------------------------------------- MVCC accounting

TEST(MvccAccountingTest, ChurnWithNoPinnedSnapshotStaysBounded) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  size_t max_versions = 0;
  for (int i = 0; i < 40; ++i) {
    EXPECT_OK(service
                  ->Execute("INSERT INTO Sales VALUES (9, " +
                            std::to_string(i) + ")")
                  .status());
    // A SELECT builds the current version's columnar pivot cache, so each
    // retired version carries one — the bytes the ledger must see die.
    EXPECT_OK(service->Select("SELECT Shop_1, SUM(Amount_1) AS T "
                              "FROM Sales GROUPBY Shop_1")
                  .status());
    EXPECT_OK(service->Execute("DELETE FROM Sales WHERE Shop = 9").status());
    for (const Database::TableMvcc& m : service->Stats().mvcc) {
      max_versions = std::max(max_versions, m.versions_alive);
    }
  }
  // No snapshot pins anything: retired versions die with the write that
  // replaced them, so the ledger never accumulates.
  ServiceStats stats = service->Stats();
  for (const Database::TableMvcc& m : stats.mvcc) {
    EXPECT_LE(m.versions_alive, 2u) << m.table;
    EXPECT_EQ(m.bytes_pinned, 0u) << m.table;
  }
  EXPECT_EQ(stats.mvcc_oldest_pinned_epoch, 0u);
  EXPECT_LE(max_versions, 3u);
}

TEST(MvccAccountingTest, PinnedSnapshotShowsUpInTheLedgerAndDrains) {
  std::unique_ptr<QueryService> service = MakeSalesService();
  ServiceSnapshotPtr pinned = service->PinSnapshot();
  uint64_t pin_epoch = pinned->epoch;
  for (int i = 0; i < 3; ++i) {
    EXPECT_OK(service
                  ->Execute("INSERT INTO Sales VALUES (8, " +
                            std::to_string(i) + ")")
                  .status());
  }
  ServiceStats held = service->Stats();
  bool sales_pinned = false;
  for (const Database::TableMvcc& m : held.mvcc) {
    if (m.table != "Sales") continue;
    sales_pinned = true;
    EXPECT_GE(m.versions_alive, 2u);
    EXPECT_GT(m.bytes_pinned, 0u);
    EXPECT_GT(m.oldest_pinned_epoch, 0u);
    EXPECT_LE(m.oldest_pinned_epoch, pin_epoch);
  }
  EXPECT_TRUE(sales_pinned);
  EXPECT_GT(held.mvcc_oldest_pinned_epoch, 0u);
  // STATS and PROM surface the ledger.
  ASSERT_OK_AND_ASSIGN(StatementResult text, service->Execute("STATS"));
  EXPECT_NE(text.message.find("mvcc"), std::string::npos);
  std::string prom = service->StatsPromText();
  EXPECT_NE(prom.find("aqv_mvcc_versions_alive{table=\"Sales\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("aqv_mvcc_bytes_pinned{table=\"Sales\"}"),
            std::string::npos);
  // Releasing the pin is the reclamation: the weak ledger drains to zero.
  pinned.reset();
  ServiceStats released = service->Stats();
  for (const Database::TableMvcc& m : released.mvcc) {
    EXPECT_EQ(m.bytes_pinned, 0u) << m.table;
    EXPECT_LE(m.versions_alive, 1u) << m.table;
  }
  EXPECT_EQ(released.mvcc_oldest_pinned_epoch, 0u);
}

}  // namespace
}  // namespace aqv
