#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "rewrite/flatten.h"
#include "rewrite/optimizer.h"
#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "workload/random_db.h"

namespace aqv {
namespace {

Catalog TwoTableCatalog() {
  Catalog c;
  EXPECT_TRUE(c.AddTable(TableDef("R", {"A", "B"})).ok());
  EXPECT_TRUE(c.AddTable(TableDef("S", {"C", "D"})).ok());
  return c;
}

ViewRegistry JoinViewRegistry() {
  ViewRegistry views;
  EXPECT_TRUE(views
                  .Register(ViewDef{"VJ", QueryBuilder()
                                              .From("R", {"A1", "B1"})
                                              .From("S", {"C1", "D1"})
                                              .Select("A1")
                                              .Select("D1")
                                              .WhereCols("B1", CmpOp::kEq, "C1")
                                              .BuildOrDie()})
                  .ok());
  return views;
}

TEST(FlattenTest, MergesConjunctiveViewReference) {
  ViewRegistry views = JoinViewRegistry();
  // A query written against the virtual view VJ.
  Query q = QueryBuilder()
                .From("VJ", {"X", "Y"})
                .Select("X")
                .SelectAgg(AggFn::kSum, "Y", "s")
                .WhereConst("Y", CmpOp::kGt, Value::Int64(2))
                .GroupBy("X")
                .BuildOrDie();
  int flattened = 0;
  ASSERT_OK_AND_ASSIGN(Query flat, FlattenViews(q, views, nullptr, &flattened));
  EXPECT_EQ(flattened, 1);
  ASSERT_EQ(flat.from.size(), 2u);
  EXPECT_EQ(flat.from[0].table, "R");
  EXPECT_EQ(flat.from[1].table, "S");
  EXPECT_EQ(flat.where.size(), 2u);  // Y > 2 redirected + B = C spliced
  // Output schema names survive.
  EXPECT_EQ(flat.OutputColumns(), q.OutputColumns());

  // Semantics: both forms evaluate identically.
  Catalog catalog = TwoTableCatalog();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Database db = MakeRandomDatabase(catalog, 30, 5, seed);
    ExpectQueriesEquivalentOn(q, flat, db, &views);
  }
}

TEST(FlattenTest, FlattensThroughStackedViews) {
  ViewRegistry views = JoinViewRegistry();
  ASSERT_OK(views.Register(ViewDef{
      "VJ2", QueryBuilder()
                 .From("VJ", {"X1", "Y1"})
                 .Select("X1")
                 .Select("Y1")
                 .WhereConst("X1", CmpOp::kGe, Value::Int64(1))
                 .BuildOrDie()}));
  Query q = QueryBuilder().From("VJ2", {"P", "Q"}).Select("P").BuildOrDie();
  int flattened = 0;
  ASSERT_OK_AND_ASSIGN(Query flat, FlattenViews(q, views, nullptr, &flattened));
  EXPECT_EQ(flattened, 2);
  EXPECT_EQ(flat.from.size(), 2u);  // down to the base tables
  Catalog catalog = TwoTableCatalog();
  Database db = MakeRandomDatabase(catalog, 30, 5, 3);
  ExpectQueriesEquivalentOn(q, flat, db, &views);
}

TEST(FlattenTest, LeavesAggregationViewsAlone) {
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "VA", QueryBuilder()
                .From("R", {"A1", "B1"})
                .Select("A1")
                .SelectAgg(AggFn::kSum, "B1", "s")
                .GroupBy("A1")
                .BuildOrDie()}));
  Query q = QueryBuilder().From("VA", {"X", "Y"}).Select("X").Select("Y").BuildOrDie();
  int flattened = 0;
  ASSERT_OK_AND_ASSIGN(Query flat, FlattenViews(q, views, nullptr, &flattened));
  EXPECT_EQ(flattened, 0);
  EXPECT_TRUE(flat == q);
}

TEST(FlattenTest, LeavesDistinctViewsAlone) {
  ViewRegistry views;
  ASSERT_OK(views.Register(ViewDef{
      "VD",
      QueryBuilder().From("R", {"A1", "B1"}).Distinct().Select("A1").BuildOrDie()}));
  Query q = QueryBuilder().From("VD", {"X"}).Select("X").BuildOrDie();
  ASSERT_OK_AND_ASSIGN(Query flat, FlattenViews(q, views));
  EXPECT_TRUE(flat == q);
}

TEST(FlattenTest, PredicateFilterSkipsNamedViews) {
  ViewRegistry views = JoinViewRegistry();
  Query q = QueryBuilder().From("VJ", {"X", "Y"}).Select("X").BuildOrDie();
  ASSERT_OK_AND_ASSIGN(
      Query flat,
      FlattenViews(q, views, [](const std::string&) { return false; }));
  EXPECT_TRUE(flat == q);
}

TEST(FlattenTest, EnablesRewritingAfterMerge) {
  // A query written over the virtual join view cannot be matched against a
  // summary view of the base tables — until it is flattened.
  ViewRegistry views = JoinViewRegistry();
  ASSERT_OK(views.Register(ViewDef{
      "SUMMARY", QueryBuilder()
                     .From("R", {"A2", "B2"})
                     .From("S", {"C2", "D2"})
                     .Select("A2")
                     .Select("D2")
                     .SelectAgg(AggFn::kCount, "B2", "cnt")
                     .WhereCols("B2", CmpOp::kEq, "C2")
                     .GroupBy("A2")
                     .GroupBy("D2")
                     .BuildOrDie()}));
  Query q = QueryBuilder()
                .From("VJ", {"X", "Y"})
                .Select("X")
                .SelectAgg(AggFn::kCount, "Y", "n")
                .GroupBy("X")
                .BuildOrDie();
  Rewriter rewriter(&views);
  EXPECT_EQ(rewriter.RewriteUsingView(q, "SUMMARY").status().code(),
            StatusCode::kUnusable);
  ASSERT_OK_AND_ASSIGN(Query flat, FlattenViews(q, views));
  ASSERT_OK_AND_ASSIGN(Query rewritten,
                       rewriter.RewriteUsingView(flat, "SUMMARY"));
  Catalog catalog = TwoTableCatalog();
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Database db = MakeRandomDatabase(catalog, 30, 4, seed);
    ExpectQueriesEquivalentOn(q, rewritten, db, &views);
  }
}

TEST(OptimizerTest, PicksMaterializedSummary) {
  ViewRegistry views = JoinViewRegistry();
  ASSERT_OK(views.Register(ViewDef{
      "SUMMARY", QueryBuilder()
                     .From("R", {"A2", "B2"})
                     .From("S", {"C2", "D2"})
                     .Select("A2")
                     .SelectAgg(AggFn::kCount, "B2", "cnt")
                     .WhereCols("B2", CmpOp::kEq, "C2")
                     .GroupBy("A2")
                     .BuildOrDie()}));
  Catalog catalog = TwoTableCatalog();
  Database db = MakeRandomDatabase(catalog, 500, 20, 9);
  {
    Evaluator eval(&db, &views);
    ASSERT_OK_AND_ASSIGN(Table summary, eval.MaterializeView("SUMMARY"));
    db.Put("SUMMARY", std::move(summary));
  }

  // The query arrives written against the *virtual* view VJ.
  Query q = QueryBuilder()
                .From("VJ", {"X", "Y"})
                .Select("X")
                .SelectAgg(AggFn::kCount, "Y", "n")
                .GroupBy("X")
                .BuildOrDie();

  Optimizer optimizer(&db, &views, &catalog);
  ASSERT_OK_AND_ASSIGN(OptimizeResult plan, optimizer.Optimize(q));
  EXPECT_EQ(plan.views_flattened, 1);
  EXPECT_TRUE(plan.used_materialized_view);
  EXPECT_EQ(plan.chosen.from.size(), 1u);
  EXPECT_EQ(plan.chosen.from[0].table, "SUMMARY");
  EXPECT_LT(plan.cost_chosen, plan.cost_original);

  // Run() returns the same answer as direct evaluation.
  ASSERT_OK_AND_ASSIGN(Table optimized, optimizer.Run(q));
  Evaluator eval(&db, &views);
  ASSERT_OK_AND_ASSIGN(Table direct, eval.Execute(q));
  EXPECT_TRUE(MultisetEqual(optimized, direct))
      << DescribeMultisetDifference(optimized, direct);
}

TEST(OptimizerTest, KeepsOriginalWhenNothingHelps) {
  ViewRegistry views;
  Catalog catalog = TwoTableCatalog();
  Database db = MakeRandomDatabase(catalog, 100, 10, 1);
  Query q = QueryBuilder().From("R", {"A1", "B1"}).Select("A1").BuildOrDie();
  Optimizer optimizer(&db, &views, &catalog);
  ASSERT_OK_AND_ASSIGN(OptimizeResult plan, optimizer.Optimize(q));
  EXPECT_FALSE(plan.used_materialized_view);
  EXPECT_EQ(plan.rewritings_considered, 0);
  EXPECT_TRUE(plan.chosen == q);
}

}  // namespace
}  // namespace aqv
