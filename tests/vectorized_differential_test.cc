// Row-vs-batch differential oracle (PR 8): the same query executed by the
// vectorized columnar engine and by the row-at-a-time engine must produce
// the same bag of rows — exactly, not approximately, since the vectorized
// aggregates accumulate in input-row order by construction.
//
// Sweeps:
//   (a) random aggregate query/view pairs, both the original query and the
//       optimizer's chosen (possibly view-substituting) plan;
//   (b) the same sweep over NULL-heavy databases (random NULL injection at
//       ~30% per value), over empty tables, and over single-row tables;
//   (c) the Example 1.1 telephony workload, direct and rewritten, plus the
//       service path with ServiceOptions::vectorized on vs off.
//
// Engagement is asserted — the oracle is vacuous if the columnar path
// silently falls back everywhere — and every failure prints the seed
// (replay with AQV_TEST_SEED=<n>) and the exact SQL.

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ir/printer.h"
#include "rewrite/optimizer.h"
#include "rewrite/rewriter.h"
#include "service/query_service.h"
#include "tests/test_util.h"
#include "workload/random_query.h"
#include "workload/telephony.h"

namespace aqv {
namespace {

constexpr int kPairsPerSweep = 15;
constexpr int kDatabasesPerPair = 2;

EvalOptions RowOptions() {
  EvalOptions options;
  options.vectorized = false;
  return options;
}

RandomPairConfig ConfigForParam(int param) {
  RandomPairConfig config;
  config.query_aggregation = (param % 2) == 0;
  config.view_aggregation = (param % 3) == 0;
  config.equality_only = (param % 4) != 3;
  return config;
}

/// Replaces ~null_pct% of the values in every base table with NULL,
/// deterministically from `seed`. Exercises the null bitmaps, the NULL
/// predicate semantics, and groups keyed by NULL.
void InjectNulls(Database* db, uint64_t seed, int null_pct) {
  std::mt19937_64 rng(seed ^ 0x5eedull);
  for (const std::string& name : db->TableNames()) {
    Table copy = *db->GetShared(name);
    for (Row& row : *copy.mutable_rows()) {
      for (Value& v : row) {
        if (static_cast<int>(rng() % 100) < null_pct) v = Value::Null();
      }
    }
    db->Put(name, std::move(copy));
  }
}

void MaterializeInto(Database* db, const ViewRegistry& views,
                     const std::string& name) {
  Evaluator eval(db, &views);
  Result<Table> contents = eval.MaterializeView(name);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  db->Put(name, *std::move(contents));
}

/// The oracle step: `query` through a vectorized evaluator and a row-engine
/// evaluator over the same database must agree exactly. Returns the number
/// of vectorized operators the batch engine reported.
size_t ExpectEnginesAgree(const Query& query, const Database& db,
                          const ViewRegistry* views) {
  Evaluator vec_eval(&db, views);
  Evaluator row_eval(&db, views, RowOptions());
  Result<Table> vec = vec_eval.Execute(query);
  Result<Table> row = row_eval.Execute(query);
  // Both engines must agree on status too (e.g. a view that fails to
  // materialize fails identically either way).
  EXPECT_EQ(vec.ok(), row.ok())
      << "engines disagree on status:\n  vec: " << vec.status().ToString()
      << "\n  row: " << row.status().ToString();
  if (!vec.ok() || !row.ok()) return 0;
  EXPECT_EQ(row_eval.stats().vectorized_ops, 0u);
  EXPECT_TRUE(MultisetEqual(*vec, *row))
      << "vectorized engine diverged from row engine:\n  "
      << DescribeMultisetDifference(*vec, *row) << "\nvectorized:\n"
      << vec->ToString() << "row engine:\n" << row->ToString();
  return vec_eval.stats().vectorized_ops;
}

class VectorizedDifferentialTest : public ::testing::TestWithParam<int> {};

// (a) Random query/view pairs: the original query and the optimizer's
// chosen plan, each executed by both engines.
TEST_P(VectorizedDifferentialTest, RandomWorkloadMatchesRowEngine) {
  uint64_t seed = TestSeed(18000 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config = ConfigForParam(GetParam());
  size_t vectorized_ops = 0;
  for (int q = 0; q < kPairsPerSweep; ++q) {
    QueryViewPair pair = gen.NextPair(config);
    ViewRegistry views;
    ASSERT_OK(views.Register(pair.view));
    SCOPED_TRACE("repro:\n  Q: " + ToSql(pair.query) +
                 "\n  V: CREATE MATERIALIZED VIEW " + pair.view.name + " AS " +
                 ToSql(pair.view.query));
    for (int d = 0; d < kDatabasesPerPair; ++d) {
      // Large enough that joined intermediates cross the columnar
      // conversion threshold on a fair fraction of the pairs.
      Database db = gen.NextDatabase(60, 3);
      MaterializeInto(&db, views, pair.view.name);
      vectorized_ops += ExpectEnginesAgree(pair.query, db, &views);

      Optimizer optimizer(&db, &views, &gen.catalog());
      Result<OptimizeResult> plan = optimizer.Optimize(pair.query);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      SCOPED_TRACE("chosen plan: " + ToSql(plan->chosen));
      vectorized_ops += ExpectEnginesAgree(plan->chosen, db, &views);
    }
  }
  // The oracle must actually compare engines, not fallback against itself.
  EXPECT_GT(vectorized_ops, 0u);
}

// (b) NULL-heavy databases: ~30% of all base values replaced with NULL.
TEST_P(VectorizedDifferentialTest, NullHeavyDataMatchesRowEngine) {
  uint64_t seed = TestSeed(19000 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config = ConfigForParam(GetParam());
  for (int q = 0; q < kPairsPerSweep; ++q) {
    QueryViewPair pair = gen.NextPair(config);
    ViewRegistry views;
    ASSERT_OK(views.Register(pair.view));
    SCOPED_TRACE("repro:\n  Q: " + ToSql(pair.query) +
                 "\n  V: CREATE MATERIALIZED VIEW " + pair.view.name + " AS " +
                 ToSql(pair.view.query));
    Database db = gen.NextDatabase(40, 3);
    InjectNulls(&db, seed + static_cast<uint64_t>(q), 30);
    MaterializeInto(&db, views, pair.view.name);
    ExpectEnginesAgree(pair.query, db, &views);
  }
}

// (b) Degenerate cardinalities: empty base tables (empty groups, global
// aggregates over nothing) and single-row tables.
TEST_P(VectorizedDifferentialTest, EmptyAndSingleRowTablesMatchRowEngine) {
  uint64_t seed = TestSeed(20000 + GetParam());
  SCOPED_TRACE(SeedTrace(seed));
  RandomWorkloadGen gen(seed);
  RandomPairConfig config = ConfigForParam(GetParam());
  for (int rows_per_table : {0, 1}) {
    SCOPED_TRACE("rows_per_table=" + std::to_string(rows_per_table));
    for (int q = 0; q < kPairsPerSweep; ++q) {
      QueryViewPair pair = gen.NextPair(config);
      ViewRegistry views;
      ASSERT_OK(views.Register(pair.view));
      SCOPED_TRACE("repro:\n  Q: " + ToSql(pair.query));
      Database db = gen.NextDatabase(rows_per_table, 3);
      MaterializeInto(&db, views, pair.view.name);
      ExpectEnginesAgree(pair.query, db, &views);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VectorizedDifferentialTest,
                         ::testing::Range(0, 6));

// Deterministic engagement: a single-table aggregation runs fully columnar
// (scan + aggregate, two vectorized operators), at any input size.
TEST(VectorizedDifferentialTest, SingleTableAggregationRunsColumnar) {
  Table t({"A", "B"});
  for (int i = 0; i < 100; ++i) {
    t.AddRowOrDie(Row{Value::Int64(i % 5), Value::Int64(i)});
  }
  Database db;
  db.Put("T", std::move(t));
  Query q;
  q.from = {TableRef{"T", {"A", "B"}}};
  q.select = {SelectItem::MakeColumn("A", "A"),
              SelectItem::MakeAggregate(AggFn::kSum, "B", "SB"),
              SelectItem::MakeAggregate(AggFn::kAvg, "B", "AB")};
  q.group_by = {"A"};
  q.where = {
      {Operand::Column("B"), CmpOp::kGe, Operand::Constant(Value::Int64(10))}};

  Evaluator vec_eval(&db);
  ASSERT_OK_AND_ASSIGN(Table vec, vec_eval.Execute(q));
  EXPECT_EQ(vec_eval.stats().vectorized_ops, 2u);
  Evaluator row_eval(&db, nullptr, RowOptions());
  ASSERT_OK_AND_ASSIGN(Table row, row_eval.Execute(q));
  EXPECT_TRUE(MultisetEqual(vec, row)) << DescribeMultisetDifference(vec, row);
}

// (c) The paper's Example 1.1 workload: the query over raw Calls, the
// Rewriter's view-substituting form over the materialized summary, and the
// service path with the vectorized option on vs off.
TEST(VectorizedDifferentialTest, TelephonyWorkloadMatchesRowEngine) {
  TelephonyParams params;
  params.num_calls = 20000;
  params.num_customers = 200;
  params.earnings_threshold = 1e5;
  params.seed = TestSeed(42);
  SCOPED_TRACE(SeedTrace(params.seed));
  TelephonyWorkload w = MakeTelephonyWorkload(params);
  {
    Evaluator eval(&w.db, &w.views);
    ASSERT_OK_AND_ASSIGN(Table v1, eval.MaterializeView("V1"));
    w.db.Put("V1", std::move(v1));
  }

  size_t vectorized_ops = ExpectEnginesAgree(w.query, w.db, &w.views);
  EXPECT_GT(vectorized_ops, 0u);

  Rewriter rewriter(&w.views);
  ASSERT_OK_AND_ASSIGN(Query rewritten, rewriter.RewriteUsingView(w.query, "V1"));
  SCOPED_TRACE("rewritten: " + ToSql(rewritten));
  // The rewritten form is a single-table aggregation over V1 — the shape
  // the fully-columnar fast path owns.
  EXPECT_GT(ExpectEnginesAgree(rewritten, w.db, &w.views), 0u);

  // Service path: identical answers with the option on and off.
  ServiceOptions vec_options;
  ASSERT_TRUE(vec_options.vectorized);
  QueryService vec_service(vec_options);
  ASSERT_OK(vec_service.Bootstrap(w.catalog, w.db.Snapshot(), w.views));
  ServiceOptions row_options;
  row_options.vectorized = false;
  QueryService row_service(row_options);
  ASSERT_OK(row_service.Bootstrap(w.catalog, w.db.Snapshot(), w.views));
  std::string sql = ToSql(w.query);
  SCOPED_TRACE("service SQL: " + sql);
  ASSERT_OK_AND_ASSIGN(Table vec_table, vec_service.Select(sql));
  ASSERT_OK_AND_ASSIGN(Table row_table, row_service.Select(sql));
  EXPECT_TRUE(MultisetEqual(vec_table, row_table))
      << DescribeMultisetDifference(vec_table, row_table);
}

}  // namespace
}  // namespace aqv
