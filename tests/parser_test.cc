#include <gtest/gtest.h>

#include "ir/printer.h"
#include "parser/lexer.h"
#include "parser/parser.h"
#include "tests/test_util.h"

namespace aqv {
namespace {

TEST(LexerTest, TokenKinds) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                       Tokenize("SELECT a_1, 42 3.5 'str' <= <> != ( ) * / ."));
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdentifier, TokenKind::kIdentifier,
                       TokenKind::kComma, TokenKind::kInteger,
                       TokenKind::kFloat, TokenKind::kString, TokenKind::kLe,
                       TokenKind::kNe, TokenKind::kNe, TokenKind::kLParen,
                       TokenKind::kRParen, TokenKind::kStar, TokenKind::kSlash,
                       TokenKind::kDot, TokenKind::kEnd}));
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 3.5);
  EXPECT_EQ(tokens[5].text, "str");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("select SeLeCt"));
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("select"));
}

TEST(LexerTest, RejectsBadInput) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(ParserTest, PaperNotationRoundTrips) {
  const char* sql =
      "SELECT A1, SUM(B1) AS SUM_B1 FROM R1(A1, B1), R2(C1, D1) "
      "WHERE A1 = C1 AND B1 = 6 AND D1 = 6 GROUPBY A1";
  ASSERT_OK_AND_ASSIGN(Query q, ParseQuery(sql));
  EXPECT_EQ(ToSql(q), sql);
  ASSERT_OK_AND_ASSIGN(Query q2, ParseQuery(ToSql(q)));
  EXPECT_TRUE(q == q2);
}

TEST(ParserTest, HavingAndDistinct) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT DISTINCT A1 FROM R1(A1, B1) WHERE B1 > 2 "
                 "GROUP BY A1 HAVING COUNT(B1) >= 3"));
  EXPECT_TRUE(q.distinct);
  ASSERT_EQ(q.having.size(), 1u);
  EXPECT_EQ(q.having[0].lhs.agg, AggFn::kCount);
  EXPECT_EQ(q.having[0].op, CmpOp::kGe);
}

TEST(ParserTest, ScaledAggregateAndRatio) {
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery("SELECT A1, SUM(S1 * N1) AS t, SUM(S1) / SUM(N1) AS r "
                          "FROM V(A1, S1, N1) GROUPBY A1"));
  ASSERT_EQ(q.select.size(), 3u);
  EXPECT_EQ(q.select[1].arg.multiplier, "N1");
  EXPECT_EQ(q.select[2].kind, SelectItem::Kind::kRatio);
  EXPECT_EQ(q.select[2].den.column, "N1");
  // Round trip.
  ASSERT_OK_AND_ASSIGN(Query q2, ParseQuery(ToSql(q)));
  EXPECT_TRUE(q == q2);
}

TEST(ParserTest, CatalogBoundFromUsesRenamingConvention) {
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  ASSERT_OK(catalog.AddTable(TableDef("S", {"A", "C"})));
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery("SELECT R.A, S.C FROM R, S WHERE R.A = S.A AND B = 1",
                          &catalog));
  // Section 2 convention: occurrence k's columns become <Col>_<k>.
  EXPECT_EQ(q.from[0].columns, (std::vector<std::string>{"A_1", "B_1"}));
  EXPECT_EQ(q.from[1].columns, (std::vector<std::string>{"A_2", "C_2"}));
  EXPECT_EQ(q.select[0].column, "A_1");
  EXPECT_EQ(q.select[1].column, "C_2");
  // Unqualified B resolves uniquely; unqualified A would be ambiguous.
  EXPECT_EQ(q.where[1].lhs.column, "B_1");
  EXPECT_FALSE(
      ParseQuery("SELECT A FROM R, S WHERE R.A = S.A", &catalog).ok());
}

TEST(ParserTest, SelfJoinWithAliases) {
  Catalog catalog;
  ASSERT_OK(catalog.AddTable(TableDef("R", {"A", "B"})));
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT x.A, y.B FROM R x, R y WHERE x.B = y.A", &catalog));
  EXPECT_EQ(q.from[0].columns, (std::vector<std::string>{"A_1", "B_1"}));
  EXPECT_EQ(q.from[1].columns, (std::vector<std::string>{"A_2", "B_2"}));
  EXPECT_EQ(q.where[0].lhs.column, "B_1");
  EXPECT_EQ(q.where[0].rhs.column, "A_2");
}

TEST(ParserTest, CreateView) {
  ASSERT_OK_AND_ASSIGN(
      ViewDef v, ParseView("CREATE VIEW V1 AS SELECT C2, D2 FROM "
                           "R1(A2, B2), R2(C2, D2) WHERE A2 = C2 AND B2 = D2"));
  EXPECT_EQ(v.name, "V1");
  EXPECT_EQ(v.query.from.size(), 2u);
  EXPECT_EQ(v.OutputColumns(), (std::vector<std::string>{"C2", "D2"}));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("FROM R(A)").ok());
  EXPECT_FALSE(ParseQuery("SELECT A FROM R(A) WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT A FROM R(A) trailing junk").ok());
  EXPECT_FALSE(ParseQuery("SELECT Z FROM R(A)").ok());       // unknown column
  EXPECT_FALSE(ParseQuery("SELECT A FROM R").ok());          // needs catalog
  EXPECT_FALSE(ParseQuery("SELECT MIN(A) / SUM(A) AS r FROM R(A)").ok());
}

TEST(ParserTest, ValidatesSemanticRules) {
  // Non-aggregate select column missing from GROUP BY.
  EXPECT_FALSE(
      ParseQuery("SELECT A1, SUM(B1) FROM R1(A1, B1)").ok());
  // HAVING on a non-grouped query.
  EXPECT_FALSE(
      ParseQuery("SELECT A1 FROM R1(A1, B1) HAVING A1 = 2").ok());
}

TEST(ParserTest, StringAndFloatConstants) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT A1 FROM R1(A1, B1) WHERE A1 = 'x' AND B1 < 2.75"));
  EXPECT_EQ(q.where[0].rhs.constant, Value::String("x"));
  EXPECT_EQ(q.where[1].rhs.constant, Value::Double(2.75));
}

TEST(ParserTest, TelephonyExampleParses) {
  // Example 1.1's Q in catalog-bound form.
  Catalog catalog;
  TableDef plans("Calling_Plans", {"Plan_Id", "Plan_Name"});
  TableDef calls("Calls", {"Call_Id", "Cust_Id", "Plan_Id", "Day", "Month",
                           "Year", "Charge"});
  ASSERT_OK(catalog.AddTable(plans));
  ASSERT_OK(catalog.AddTable(calls));
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT Calling_Plans.Plan_Id, Plan_Name, SUM(Charge) "
                 "FROM Calls, Calling_Plans "
                 "WHERE Calls.Plan_Id = Calling_Plans.Plan_Id AND Year = 1995 "
                 "GROUPBY Calling_Plans.Plan_Id, Plan_Name "
                 "HAVING SUM(Charge) < 1000000",
                 &catalog));
  EXPECT_EQ(q.group_by.size(), 2u);
  EXPECT_EQ(q.having.size(), 1u);
  EXPECT_EQ(q.select[2].arg.column, "Charge_1");
}

TEST(ParserTest, SignedConstantsInWhere) {
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery("SELECT A1 FROM R1(A1, B1) WHERE A1 > -5 AND "
                          "B1 <= +2.5"));
  EXPECT_EQ(q.where[0].rhs.constant, Value::Int64(-5));
  EXPECT_EQ(q.where[1].rhs.constant, Value::Double(2.5));
  // A sign must be followed by a number, not a column or string.
  EXPECT_FALSE(ParseQuery("SELECT A1 FROM R1(A1, B1) WHERE A1 > -B1").ok());
  EXPECT_FALSE(ParseQuery("SELECT A1 FROM R1(A1, B1) WHERE A1 > -'x'").ok());
}

TEST(ParseInsertTest, MultiRowTuplesWithAllLiteralKinds) {
  ASSERT_OK_AND_ASSIGN(
      InsertStatement insert,
      ParseInsert("INSERT INTO T VALUES (1, 2.5, 'x', NULL), (-3, +4.5, "
                  "'y', 7)"));
  EXPECT_EQ(insert.table, "T");
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_EQ(insert.rows[0],
            (Row{Value::Int64(1), Value::Double(2.5), Value::String("x"),
                 Value::Null()}));
  EXPECT_EQ(insert.rows[1],
            (Row{Value::Int64(-3), Value::Double(4.5), Value::String("y"),
                 Value::Int64(7)}));
}

TEST(ParseInsertTest, RejectsDegenerateStatements) {
  // Zero tuples used to be acked as "0 row(s) inserted".
  Result<InsertStatement> empty = ParseInsert("INSERT INTO T VALUES");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find("at least one"), std::string::npos);
  // Trailing garbage after the last tuple used to be silently ignored.
  EXPECT_FALSE(ParseInsert("INSERT INTO T VALUES (1) garbage").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO T VALUES (1), (2) (3)").ok());
  // Structural errors.
  EXPECT_FALSE(ParseInsert("INSERT INTO T VALUES (1,").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO T VALUES ()").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO T VALUES (1), ").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO T (1)").ok());
  EXPECT_FALSE(ParseInsert("INSERT T VALUES (1)").ok());
  // A bare sign or a sign on a non-number is not a literal.
  EXPECT_FALSE(ParseInsert("INSERT INTO T VALUES (-)").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO T VALUES (-'x')").ok());
  EXPECT_FALSE(ParseInsert("INSERT INTO T VALUES (A)").ok());
}

}  // namespace
}  // namespace aqv
