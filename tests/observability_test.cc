// End-to-end tests of the observability surface (PR 7): STATS HISTORY /
// MONITOR over the telemetry recorder, per-statement cost attribution in
// EXPLAIN ANALYZE and the slow-query log, per-fingerprint aggregation
// (STATS ATTRIBUTION), the trace-ring drop counter, and the storage-layer
// instrumentation (fsync latency, checkpoint duration, buffer-pool and
// recovery-phase metrics) across a checkpoint + restart.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/trace.h"
#include "service/query_service.h"

namespace aqv {
namespace {

StatementResult ExecuteOrDie(QueryService& service, const std::string& stmt) {
  Result<StatementResult> result = service.Execute(stmt);
  EXPECT_TRUE(result.ok()) << stmt << ": " << result.status().ToString();
  return result.ok() ? *std::move(result) : StatementResult{};
}

std::string FreshPath(const std::string& stem) {
  std::string path = ::testing::TempDir() + "/aqv_" + stem;
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return path;
}

// `INSERT INTO name VALUES (0, 0), (1, 1), ...` with `rows` pairs.
std::string BulkInsert(const std::string& name, int rows) {
  std::string stmt = "INSERT INTO " + name + " VALUES ";
  for (int i = 0; i < rows; ++i) {
    if (i > 0) stmt += ", ";
    stmt += "(" + std::to_string(i % 16) + ", " + std::to_string(i) + ")";
  }
  return stmt;
}

// First unsigned integer following `token` in `text`, or -1 if absent.
long long NumberAfter(const std::string& text, const std::string& token) {
  size_t pos = text.find(token);
  if (pos == std::string::npos) return -1;
  return static_cast<long long>(
      std::strtoull(text.c_str() + pos + token.size(), nullptr, 10));
}

TEST(StatsHistoryTest, SamplerProducesMonotoneQueryableWindows) {
  ServiceOptions options;
  options.telemetry_interval_micros = 2000;  // 2 ms ticks
  options.telemetry_history_capacity = 64;
  QueryService service(options);
  ExecuteOrDie(service, "CREATE TABLE R(A, B)");
  ExecuteOrDie(service, BulkInsert("R", 32));

  // Drive a workload until at least 5 windows have been sampled.
  for (int spin = 0; spin < 500 && service.telemetry().windows_sampled() < 5;
       ++spin) {
    ExecuteOrDie(service, "SELECT A_1 FROM R WHERE B_1 = 3");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<TelemetryWindowPtr> windows = service.telemetry().History();
  ASSERT_GE(windows.size(), 5u);
  uint64_t statements = 0;
  for (size_t i = 0; i < windows.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(windows[i]->seq, windows[i - 1]->seq + 1);
      EXPECT_EQ(windows[i]->start_micros, windows[i - 1]->end_micros);
      EXPECT_GE(windows[i]->unix_millis, windows[i - 1]->unix_millis);
    }
    EXPECT_GT(windows[i]->end_micros, windows[i]->start_micros);
    statements += windows[i]->CounterDelta("service.statements");
  }
  EXPECT_GT(statements, 0u) << "the workload must show up in the windows";

  std::string text = ExecuteOrDie(service, "STATS HISTORY").message;
  EXPECT_NE(text.find("telemetry: "), std::string::npos) << text;
  EXPECT_NE(text.find("sampler running"), std::string::npos) << text;
  EXPECT_NE(text.find("sel="), std::string::npos);

  // Bounded form returns exactly n lines; JSON form is an array artifact.
  std::string bounded = ExecuteOrDie(service, "STATS HISTORY 2").message;
  EXPECT_EQ(NumberAfter(bounded, "telemetry: "), 2);
  std::string json = ExecuteOrDie(service, "STATS HISTORY JSON 3").message;
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"seq\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);

  ServiceStats stats = service.Stats();
  EXPECT_GE(stats.telemetry_windows, 5u);
}

TEST(StatsHistoryTest, MonitorCutsWindowsOnDemandWithoutSampler) {
  QueryService service;  // telemetry_interval_micros = 0: no thread
  ExecuteOrDie(service, "CREATE TABLE R(A, B)");
  ExecuteOrDie(service, BulkInsert("R", 8));
  EXPECT_FALSE(service.telemetry().running());

  ExecuteOrDie(service, "SELECT A_1 FROM R");
  std::string text = ExecuteOrDie(service, "MONITOR").message;
  EXPECT_NE(text.find("MONITOR — last"), std::string::npos) << text;
  EXPECT_NE(text.find("sampler off"), std::string::npos);
  EXPECT_GE(service.telemetry().windows_sampled(), 1u);

  // The window the MONITOR cut contains the statements that preceded it.
  std::vector<TelemetryWindowPtr> windows = service.telemetry().History();
  ASSERT_GE(windows.size(), 1u);
  EXPECT_GE(windows.back()->CounterDelta("service.statements"), 3u);
}

TEST(AttributionTest, ExplainAnalyzePhaseSumTracksWallTime) {
  QueryService service;
  ExecuteOrDie(service, "CREATE TABLE R(A, B)");
  ExecuteOrDie(service, "CREATE TABLE S(C, D)");
  ExecuteOrDie(service, BulkInsert("R", 250));
  ExecuteOrDie(service, BulkInsert("S", 250));

  // A cross product of 250x250 rows keeps exec well over a millisecond, so
  // the untimed dispatch glue is noise against the attributed phases.
  std::string message =
      ExecuteOrDie(service,
                   "EXPLAIN ANALYZE SELECT A_1, SUM(D_2) FROM R, S GROUPBY A_1")
          .message;
  EXPECT_NE(message.find("attribution: wall="), std::string::npos) << message;
  for (const char* token :
       {"parse=", "rewrite=", "exec=", "maintain=", "wal_commit=",
        "pool_hits=", "pool_misses=", "rows="}) {
    EXPECT_NE(message.find(token), std::string::npos)
        << "missing " << token << " in:\n"
        << message;
  }
  // Parse from the attribution tail only: the rendered plan tree above it
  // also prints "actual rows=" per operator.
  size_t tail_at = message.find("attribution:");
  ASSERT_NE(tail_at, std::string::npos);
  std::string tail = message.substr(tail_at);
  long long wall = NumberAfter(tail, "wall=");
  long long phases = NumberAfter(tail, "phases=");
  long long exec = NumberAfter(tail, "exec=");
  long long rows = NumberAfter(tail, "rows=");
  ASSERT_GT(wall, 1000) << "query too fast to validate attribution";
  // Acceptance: the disjoint phase sum is within 10% of the measured wall.
  EXPECT_GE(phases, wall * 9 / 10) << message;
  EXPECT_LE(phases, wall) << "phases are disjoint slices of the wall";
  EXPECT_GT(exec, 0) << message;
  EXPECT_GE(rows, 250ll * 250ll) << "cross product rows must be attributed";
}

TEST(AttributionTest, FingerprintProfilesAggregateAcrossRepeats) {
  QueryService service;
  ExecuteOrDie(service, "CREATE TABLE R(A, B)");
  ExecuteOrDie(service, BulkInsert("R", 16));

  ExecuteOrDie(service, "SELECT A_1 FROM R WHERE B_1 = 7");
  ExecuteOrDie(service, "SELECT A_1 FROM R WHERE B_1 = 7");
  ExecuteOrDie(service, "SELECT A_1 FROM R WHERE 7 = B_1");  // same canonical

  std::vector<FingerprintProfile> profiles = service.FingerprintProfiles();
  ASSERT_EQ(profiles.size(), 1u);  // one fingerprint: the mirrored WHERE too
  EXPECT_EQ(profiles[0].count, 3u);
  EXPECT_EQ(profiles[0].cache_hits, 2u);
  EXPECT_GT(profiles[0].totals.total_micros, 0u);
  EXPECT_GE(profiles[0].totals.total_micros,
            profiles[0].totals.exec_micros);
  EXPECT_NE(profiles[0].example.find("SELECT"), std::string::npos);

  std::string text = ExecuteOrDie(service, "STATS ATTRIBUTION").message;
  EXPECT_NE(text.find("1 fingerprint(s) tracked"), std::string::npos) << text;
  EXPECT_NE(text.find("fp="), std::string::npos);
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("cache_hits=2"), std::string::npos);
}

TEST(AttributionTest, AttributionCapacityBoundsTrackedFingerprints) {
  ServiceOptions options;
  options.attribution_capacity = 2;
  QueryService service(options);
  ExecuteOrDie(service, "CREATE TABLE R(A, B)");
  ExecuteOrDie(service, BulkInsert("R", 4));
  // Structurally distinct queries -> distinct fingerprints.
  ExecuteOrDie(service, "SELECT A_1 FROM R");
  ExecuteOrDie(service, "SELECT B_1 FROM R");
  ExecuteOrDie(service, "SELECT A_1, B_1 FROM R");
  EXPECT_EQ(service.FingerprintProfiles().size(), 2u);
  std::string text = ExecuteOrDie(service, "STATS ATTRIBUTION").message;
  EXPECT_NE(text.find("1 overflow"), std::string::npos) << text;
}

TEST(AttributionTest, SlowLogCarriesEpochCacheFlagAndWriteBreakdown) {
  ServiceOptions options;
  options.slow_query_micros = 1;  // everything is slow
  QueryService service(options);
  ExecuteOrDie(service, "CREATE TABLE R(A, B)");
  ExecuteOrDie(service,
               "CREATE MATERIALIZED VIEW V AS SELECT A_1, SUM(B_1) FROM R "
               "GROUPBY A_1");
  ExecuteOrDie(service, BulkInsert("R", 8));  // maintains V on the way
  ExecuteOrDie(service, "SELECT A_1 FROM R WHERE B_1 = 1");
  ExecuteOrDie(service, "SELECT A_1 FROM R WHERE B_1 = 1");

  std::vector<SlowQueryRecord> log = service.SlowQueries();
  ASSERT_GE(log.size(), 3u);
  const SlowQueryRecord& write = log[log.size() - 3];
  EXPECT_EQ(write.fingerprint, 0u) << "writes group under fingerprint 0";
  EXPECT_NE(write.statement.find("INSERT"), std::string::npos);
  EXPECT_GT(write.epoch, 0u);
  EXPECT_GE(write.total_micros,
            write.maintain_micros + write.wal_commit_micros);

  const SlowQueryRecord& cold = log[log.size() - 2];
  const SlowQueryRecord& warm = log[log.size() - 1];
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(cold.fingerprint, warm.fingerprint);
  EXPECT_EQ(cold.epoch, warm.epoch) << "no write between the two reads";

  std::string text = ExecuteOrDie(service, "SLOWLOG").message;
  EXPECT_NE(text.find("epoch="), std::string::npos) << text;
  EXPECT_NE(text.find("wal_commit="), std::string::npos);
  EXPECT_NE(text.find("[cache hit]"), std::string::npos);
}

TEST(TraceDropTest, DroppedSpansSurfaceInStatsAndProm) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  QueryService service;
  EXPECT_EQ(service.Stats().trace_dropped_spans, 0u);

  // Overflow the global ring directly: capacity + 3 records drop 3.
  for (size_t i = 0; i < tracer.capacity() + 3; ++i) {
    TraceEvent event;
    event.name = "synthetic";
    tracer.Record(std::move(event));
  }
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(service.Stats().trace_dropped_spans, 3u);
  std::string prom = service.StatsPromText();
  EXPECT_NE(prom.find("aqv_trace_dropped_spans 3\n"), std::string::npos)
      << prom;
  std::string text = ExecuteOrDie(service, "STATS").message;
  EXPECT_NE(text.find("trace dropped spans 3"), std::string::npos) << text;
  tracer.Clear();
}

TEST(StorageObservabilityTest, StorageStackMetricsFlowThroughStats) {
  std::string path = FreshPath("observability.db");
  ServiceOptions options;
  options.storage_path = path;
  options.storage_buffer_pages = 4;  // tiny pool: force misses on recovery
  options.slow_query_micros = 1;
  {
    QueryService service(options);
    ASSERT_TRUE(service.storage_status().ok())
        << service.storage_status().ToString();
    ExecuteOrDie(service, "CREATE TABLE R(A, B)");
    for (int i = 0; i < 4; ++i) ExecuteOrDie(service, BulkInsert("R", 64));

    ServiceStats stats = service.Stats();
    EXPECT_TRUE(stats.storage_attached);
    EXPECT_GT(stats.storage_wal_fsyncs, 0u);
    // Every durable commit passed through the timed fsync path.
    EXPECT_GT(stats.storage_fsync_p99_micros, 0.0);
    EXPECT_GE(stats.storage_fsync_max_micros, 1u);
    std::string prom = service.StatsPromText();
    EXPECT_NE(prom.find("# TYPE aqv_storage_wal_fsync_latency histogram"),
              std::string::npos);
    EXPECT_NE(prom.find("aqv_storage_pool_hits"), std::string::npos);

    // The write slow-log entries carry the WAL commit slice.
    bool saw_wal_commit = false;
    for (const SlowQueryRecord& r : service.SlowQueries()) {
      if (r.fingerprint == 0 && r.wal_commit_micros > 0) saw_wal_commit = true;
    }
    EXPECT_TRUE(saw_wal_commit);

    ExecuteOrDie(service, "CHECKPOINT");
    stats = service.Stats();
    EXPECT_GT(stats.storage_checkpoints, 0u);
    EXPECT_GT(stats.storage_checkpoint_p99_micros, 0.0);
  }

  // Reopen: recovery reads checkpoint pages through the 4-page pool, so
  // the pool counters and the recovery phase gauges must be populated.
  QueryService service(options);
  ASSERT_TRUE(service.storage_status().ok());
  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.storage_pool_hits + stats.storage_pool_misses, 0u);
  // The WAL-replay phase is a slice of the engine's total recovery time;
  // view recompute runs in the service afterwards and is tracked separately.
  EXPECT_GE(stats.storage_recovery_ms, stats.storage_recovery_replay_ms);
  EXPECT_GE(stats.storage_recovery_replay_ms, 0);
  EXPECT_GE(stats.storage_recovery_recompute_ms, 0);
  std::string text = ExecuteOrDie(service, "STATS").message;
  EXPECT_NE(text.find("recovery phases"), std::string::npos) << text;
  EXPECT_NE(text.find("storage pool"), std::string::npos);

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

}  // namespace
}  // namespace aqv
