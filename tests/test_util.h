#ifndef AQV_TESTS_TEST_UTIL_H_
#define AQV_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "base/result.h"
#include "base/status.h"
#include "exec/evaluator.h"
#include "exec/table.h"
#include "ir/printer.h"
#include "ir/query.h"
#include "ir/views.h"

namespace aqv {

// _s is a copy, not a reference: `expr` is often `SomeResult().status()`,
// whose referent dies with the temporary Result at the end of the
// declaration — a reference would dangle on the next line.
#define ASSERT_OK(expr)                                          \
  do {                                                           \
    const ::aqv::Status _s = (expr);                             \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();         \
  } while (false)

#define EXPECT_OK(expr)                                          \
  do {                                                           \
    const ::aqv::Status _s = (expr);                             \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();         \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                              \
  AQV_ASSIGN_OR_RETURN_IMPL_TEST(                                    \
      AQV_ASSIGN_OR_RETURN_NAME(_test_result_, __LINE__), lhs, expr)

#define AQV_ASSIGN_OR_RETURN_IMPL_TEST(tmp, lhs, expr)               \
  auto tmp = (expr);                                                 \
  ASSERT_TRUE(tmp.ok()) << "status: " << tmp.status().ToString();    \
  lhs = std::move(tmp).value()

/// Seed for a randomized test: `default_seed` unless the AQV_TEST_SEED
/// environment variable overrides it. Pair with SeedTrace so every failure
/// of a randomized sweep prints the exact seed that replays it:
///
///   uint64_t seed = TestSeed(1000 + GetParam());
///   SCOPED_TRACE(SeedTrace(seed));
///
/// Replay: AQV_TEST_SEED=<n> ./property_test --gtest_filter=<failing test>.
inline uint64_t TestSeed(uint64_t default_seed) {
  const char* env = std::getenv("AQV_TEST_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

/// The failure annotation naming a randomized test's seed (see TestSeed).
inline std::string SeedTrace(uint64_t seed) {
  return "replay with AQV_TEST_SEED=" + std::to_string(seed);
}

/// Evaluates `a` and `b` against `db` (+`views`) and expects multiset-equal
/// results — the Definition 2.2 check that drives every rewriting test.
inline void ExpectQueriesEquivalentOn(const Query& a, const Query& b,
                                      const Database& db,
                                      const ViewRegistry* views) {
  Evaluator eval_a(&db, views);
  Evaluator eval_b(&db, views);
  Result<Table> ra = eval_a.Execute(a);
  ASSERT_TRUE(ra.ok()) << "evaluating " << ToSql(a) << ": "
                       << ra.status().ToString();
  Result<Table> rb = eval_b.Execute(b);
  ASSERT_TRUE(rb.ok()) << "evaluating " << ToSql(b) << ": "
                       << rb.status().ToString();
  EXPECT_TRUE(MultisetEqual(*ra, *rb))
      << "queries disagree:\n  Q:  " << ToSql(a) << "\n  Q': " << ToSql(b)
      << "\n  " << DescribeMultisetDifference(*ra, *rb) << "\nleft:\n"
      << ra->ToString() << "right:\n" << rb->ToString();
}

/// ExpectQueriesEquivalentOn with a floating-point tolerance, for workloads
/// whose aggregates sum DOUBLE data (re-associated sums differ in the last
/// bits).
inline void ExpectQueriesApproxEquivalentOn(const Query& a, const Query& b,
                                            const Database& db,
                                            const ViewRegistry* views) {
  Evaluator eval_a(&db, views);
  Evaluator eval_b(&db, views);
  Result<Table> ra = eval_a.Execute(a);
  ASSERT_TRUE(ra.ok()) << "evaluating " << ToSql(a) << ": "
                       << ra.status().ToString();
  Result<Table> rb = eval_b.Execute(b);
  ASSERT_TRUE(rb.ok()) << "evaluating " << ToSql(b) << ": "
                       << rb.status().ToString();
  EXPECT_TRUE(MultisetAlmostEqual(*ra, *rb))
      << "queries disagree:\n  Q:  " << ToSql(a) << "\n  Q': " << ToSql(b)
      << "\nleft:\n" << ra->ToString() << "right:\n" << rb->ToString();
}

}  // namespace aqv

#endif  // AQV_TESTS_TEST_UTIL_H_
