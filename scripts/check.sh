#!/usr/bin/env bash
# Tier-1 verify in one invocation: configure, build, ctest.
#
#   scripts/check.sh                       # default build
#   BUILD_DIR=build-tsan scripts/check.sh -DAQV_SANITIZE=thread
#   CTEST_ARGS="-LE stress" scripts/check.sh        # skip stress tests
#   CTEST_ARGS="-L stress" scripts/check.sh         # only stress tests
#   CTEST_ARGS="-L chaos" scripts/check.sh          # only fault-injection tests
#
# Extra arguments are forwarded to the CMake configure step; CTEST_ARGS is
# forwarded to ctest (e.g. label selection). Intended as the single entry
# point for local verification and any future CI.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j"$JOBS"
# shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" ${CTEST_ARGS:-}

# The storage suites write db/WAL files under the system temp dir (and ad-hoc
# aqvsh --db sessions sometimes leave them in the tree); sweep them so
# repeated runs always start from fresh databases.
rm -f /tmp/aqv_*.db /tmp/aqv_*.db.wal /tmp/aqv_bench_e18.db* \
      ./*.aqvdb ./*.aqvdb.wal 2>/dev/null || true
