#!/usr/bin/env bash
# Tier-1 verify in one invocation: configure, build, ctest.
#
#   scripts/check.sh                       # default build
#   BUILD_DIR=build-tsan scripts/check.sh -DAQV_SANITIZE=thread
#
# Extra arguments are forwarded to the CMake configure step. Intended as the
# single entry point for local verification and any future CI.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . "$@"
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"
