#ifndef AQV_EXEC_CSV_H_
#define AQV_EXEC_CSV_H_

#include <string>
#include <string_view>

#include "base/result.h"
#include "exec/table.h"

namespace aqv {

/// Renders `table` as CSV: a header row of column names, then one row per
/// tuple. Strings are double-quoted with embedded quotes doubled; NULL is
/// an empty field; numerics print unquoted (doubles with enough digits to
/// round-trip).
std::string ToCsv(const Table& table);

/// ToCsv straight to a file.
Status WriteCsvFile(const Table& table, const std::string& path);

/// Parses CSV text into a Table. The first row is the header. Field typing:
/// empty -> NULL; double-quoted -> STRING (quotes may be doubled inside);
/// otherwise INT64 if it parses as one, DOUBLE if it parses as one, else
/// STRING. Round-trips the output of ToCsv.
Result<Table> FromCsv(std::string_view text);

/// FromCsv over a file's contents.
Result<Table> ReadCsvFile(const std::string& path);

}  // namespace aqv

#endif  // AQV_EXEC_CSV_H_
