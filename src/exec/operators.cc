#include "exec/operators.h"

#include <unordered_map>
#include <unordered_set>

namespace aqv {

void Aggregator::Add(const Value& v) {
  if (v.is_null()) return;
  switch (fn_) {
    case AggFn::kMin:
      if (!any_ || EvalCmp(v, CmpOp::kLt, extreme_)) extreme_ = v;
      break;
    case AggFn::kMax:
      if (!any_ || EvalCmp(v, CmpOp::kGt, extreme_)) extreme_ = v;
      break;
    case AggFn::kSum:
    case AggFn::kAvg:
      if (v.type() == ValueType::kInt64 && all_int_) {
        sum_int_ += v.int64();
      } else {
        all_int_ = false;
      }
      sum_dbl_ += v.AsDouble();
      ++count_;
      break;
    case AggFn::kCount:
      ++count_;
      break;
  }
  any_ = true;
}

Value Aggregator::Finish() const {
  switch (fn_) {
    case AggFn::kMin:
    case AggFn::kMax:
      return any_ ? extreme_ : Value::Null();
    case AggFn::kSum:
      if (!any_) return Value::Null();
      return all_int_ ? Value::Int64(sum_int_) : Value::Double(sum_dbl_);
    case AggFn::kCount:
      return Value::Int64(count_);
    case AggFn::kAvg:
      if (count_ == 0) return Value::Null();
      return Value::Double(sum_dbl_ / static_cast<double>(count_));
  }
  return Value::Null();
}

Value NumericProduct(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) return Value::Null();
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    return Value::Int64(a.int64() * b.int64());
  }
  return Value::Double(a.AsDouble() * b.AsDouble());
}

std::vector<Row> FilterRows(const std::vector<Row>& rows,
                            const std::vector<Predicate>& preds,
                            const ColumnIndexMap& layout, ExecContext* ctx) {
  if (preds.empty()) return rows;
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    if (ctx != nullptr && !ctx->TickRows()) break;
    bool keep = true;
    for (const Predicate& p : preds) {
      if (!EvalScalarPredicate(p, row, layout)) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(row);
  }
  return out;
}

namespace {

// Canonicalizes a join-key value so SQL-equal values hash and compare equal:
// integral doubles collapse to INT64.
Value CanonicalKey(const Value& v) {
  if (v.type() == ValueType::kDouble) {
    double d = v.dbl();
    int64_t i = static_cast<int64_t>(d);
    if (static_cast<double>(i) == d) return Value::Int64(i);
  }
  return v;
}

bool ExtractKey(const Row& row, const std::vector<int>& ordinals, Row* key) {
  key->clear();
  key->reserve(ordinals.size());
  for (int o : ordinals) {
    const Value& v = row[o];
    if (v.is_null()) return false;  // NULL keys never join
    key->push_back(CanonicalKey(v));
  }
  return true;
}

}  // namespace

std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right,
                          const std::vector<std::pair<int, int>>& keys,
                          ExecContext* ctx) {
  std::vector<int> left_keys, right_keys;
  left_keys.reserve(keys.size());
  right_keys.reserve(keys.size());
  for (const auto& [l, r] : keys) {
    left_keys.push_back(l);
    right_keys.push_back(r);
  }

  // Build on the smaller side.
  bool build_left = left.size() <= right.size();
  const std::vector<Row>& build = build_left ? left : right;
  const std::vector<Row>& probe = build_left ? right : left;
  const std::vector<int>& build_ordinals = build_left ? left_keys : right_keys;
  const std::vector<int>& probe_ordinals = build_left ? right_keys : left_keys;

  std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq> hash_table;
  hash_table.reserve(build.size());
  Row key;
  for (const Row& row : build) {
    if (ctx != nullptr && !ctx->TickRows()) return {};
    if (!ExtractKey(row, build_ordinals, &key)) continue;
    hash_table[key].push_back(&row);
  }

  std::vector<Row> out;
  for (const Row& probe_row : probe) {
    if (ctx != nullptr && !ctx->TickRows()) break;
    if (!ExtractKey(probe_row, probe_ordinals, &key)) continue;
    auto it = hash_table.find(key);
    if (it == hash_table.end()) continue;
    for (const Row* build_row : it->second) {
      if (ctx != nullptr && !ctx->TickRows()) break;
      const Row& l = build_left ? *build_row : probe_row;
      const Row& r = build_left ? probe_row : *build_row;
      Row combined;
      combined.reserve(l.size() + r.size());
      combined.insert(combined.end(), l.begin(), l.end());
      combined.insert(combined.end(), r.begin(), r.end());
      out.push_back(std::move(combined));
    }
  }
  return out;
}

std::vector<Row> CartesianProduct(const std::vector<Row>& left,
                                  const std::vector<Row>& right,
                                  ExecContext* ctx) {
  std::vector<Row> out;
  if (ctx == nullptr || !ctx->limited()) {
    out.reserve(left.size() * right.size());
  }
  for (const Row& l : left) {
    for (const Row& r : right) {
      if (ctx != nullptr && !ctx->TickRows()) return out;
      Row combined;
      combined.reserve(l.size() + r.size());
      combined.insert(combined.end(), l.begin(), l.end());
      combined.insert(combined.end(), r.begin(), r.end());
      out.push_back(std::move(combined));
    }
  }
  return out;
}

std::vector<Row> GroupAggregate(const std::vector<Row>& rows,
                                const std::vector<int>& group_cols,
                                const std::vector<AggSpec>& aggs,
                                ExecContext* ctx) {
  // Group key -> (first group row's key values, accumulators).
  struct GroupState {
    Row key;
    std::vector<Aggregator> accumulators;
  };
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups;
  groups.reserve(rows.size() / 4 + 1);

  auto make_accumulators = [&aggs]() {
    std::vector<Aggregator> acc;
    acc.reserve(aggs.size());
    for (const AggSpec& a : aggs) acc.emplace_back(a.fn);
    return acc;
  };

  Row key;
  for (const Row& row : rows) {
    if (ctx != nullptr && !ctx->TickRows()) break;
    key.clear();
    key.reserve(group_cols.size());
    for (int o : group_cols) key.push_back(CanonicalKey(row[o]));
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      // Keep the original (non-canonicalized) values for output.
      Row original;
      original.reserve(group_cols.size());
      for (int o : group_cols) original.push_back(row[o]);
      it->second.key = std::move(original);
      it->second.accumulators = make_accumulators();
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggSpec& spec = aggs[i];
      if (spec.multiplier >= 0) {
        it->second.accumulators[i].Add(
            NumericProduct(row[spec.column], row[spec.multiplier]));
      } else {
        it->second.accumulators[i].Add(row[spec.column]);
      }
    }
  }

  std::vector<Row> out;
  if (groups.empty() && group_cols.empty()) {
    // Global aggregate over an empty input still emits one row.
    std::vector<Aggregator> acc = make_accumulators();
    Row row;
    row.reserve(aggs.size());
    for (const Aggregator& a : acc) row.push_back(a.Finish());
    out.push_back(std::move(row));
    return out;
  }

  out.reserve(groups.size());
  for (auto& [k, state] : groups) {
    Row row = std::move(state.key);
    row.reserve(row.size() + aggs.size());
    for (const Aggregator& a : state.accumulators) row.push_back(a.Finish());
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<Row> DistinctRows(const std::vector<Row>& rows,
                              ExecContext* ctx) {
  std::unordered_set<Row, RowHash, RowEq> seen;
  seen.reserve(rows.size());
  std::vector<Row> out;
  for (const Row& row : rows) {
    if (ctx != nullptr && !ctx->TickRows()) break;
    if (seen.insert(row).second) out.push_back(row);
  }
  return out;
}

std::vector<Row> ProjectRows(const std::vector<Row>& rows,
                             const std::vector<int>& ordinals,
                             ExecContext* ctx) {
  std::vector<Row> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    if (ctx != nullptr && !ctx->TickRows()) break;
    Row projected;
    projected.reserve(ordinals.size());
    for (int o : ordinals) projected.push_back(row[o]);
    out.push_back(std::move(projected));
  }
  return out;
}

}  // namespace aqv
