#ifndef AQV_EXEC_OPERATORS_H_
#define AQV_EXEC_OPERATORS_H_

#include <utility>
#include <vector>

#include "base/exec_context.h"
#include "base/value.h"
#include "exec/expression.h"
#include "ir/query.h"

namespace aqv {

/// Streaming accumulator for one SQL aggregate function. NULL inputs are
/// ignored per SQL. An accumulator that saw no (non-null) input finishes to
/// NULL, except COUNT which finishes to 0.
class Aggregator {
 public:
  explicit Aggregator(AggFn fn) : fn_(fn) {}

  void Add(const Value& v);
  Value Finish() const;

 private:
  AggFn fn_;
  bool any_ = false;
  Value extreme_;         // MIN/MAX running extremum
  int64_t count_ = 0;     // COUNT / AVG denominator
  int64_t sum_int_ = 0;   // exact integer sum while all inputs are INT64
  double sum_dbl_ = 0.0;  // numeric sum (always maintained)
  bool all_int_ = true;
};

/// One aggregate computation over an input row layout: AGG(column), or
/// AGG(column * multiplier) when `multiplier >= 0` (scaled arguments from
/// the Section 4 multiplicity recovery).
struct AggSpec {
  AggFn fn;
  int column;
  int multiplier = -1;
};

/// Numeric product of two values; NULL if either is NULL or non-numeric.
/// INT64 * INT64 stays INT64.
Value NumericProduct(const Value& a, const Value& b);

/// All operators accept an optional ExecContext. When given, they charge
/// one row per input (or output, for generating operators like the cross
/// product) row processed and stop early once a limit trips; the caller
/// must then check ctx->ok() and discard the partial output. With ctx ==
/// nullptr (or an unlimited context) behaviour is unchanged.

/// Rows satisfying the conjunction `preds` (each scalar), resolved against
/// `layout`.
std::vector<Row> FilterRows(const std::vector<Row>& rows,
                            const std::vector<Predicate>& preds,
                            const ColumnIndexMap& layout,
                            ExecContext* ctx = nullptr);

/// Hash equi-join of `left` and `right` on the given (left ordinal, right
/// ordinal) key pairs. Output rows are left ++ right. Rows with a NULL key
/// never match (SQL equi-join). Key equality is SQL equality (numeric across
/// INT64/DOUBLE).
std::vector<Row> HashJoin(const std::vector<Row>& left,
                          const std::vector<Row>& right,
                          const std::vector<std::pair<int, int>>& keys,
                          ExecContext* ctx = nullptr);

/// Full Cartesian product; output rows are left ++ right. Charges one row
/// per *output* row, so an exploding product trips the budget while it is
/// being produced, not after.
std::vector<Row> CartesianProduct(const std::vector<Row>& left,
                                  const std::vector<Row>& right,
                                  ExecContext* ctx = nullptr);

/// Hash grouping: partitions `rows` by the values at `group_cols` and
/// computes `aggs` within each group. Output rows are
/// [group values..., aggregate values...] in spec order. With empty
/// `group_cols` there is exactly one global group, emitted even on empty
/// input (COUNT(...) over an empty table is 0).
std::vector<Row> GroupAggregate(const std::vector<Row>& rows,
                                const std::vector<int>& group_cols,
                                const std::vector<AggSpec>& aggs,
                                ExecContext* ctx = nullptr);

/// Removes duplicate rows (SELECT DISTINCT).
std::vector<Row> DistinctRows(const std::vector<Row>& rows,
                              ExecContext* ctx = nullptr);

/// Projects each row to the given ordinals.
std::vector<Row> ProjectRows(const std::vector<Row>& rows,
                             const std::vector<int>& ordinals,
                             ExecContext* ctx = nullptr);

}  // namespace aqv

#endif  // AQV_EXEC_OPERATORS_H_
