#ifndef AQV_EXEC_PLANNER_H_
#define AQV_EXEC_PLANNER_H_

#include <string>
#include <vector>

#include "ir/query.h"

namespace aqv {

/// WHERE conjuncts of a query sorted into the roles the join planner needs.
struct PredicateClassification {
  /// Conjuncts referencing columns of exactly one FROM entry (or constants
  /// only); index parallels Query::from. Pushed below the join.
  std::vector<std::vector<Predicate>> single_table;

  /// An equality between columns of two different FROM entries.
  struct JoinEdge {
    int left_table;
    int right_table;
    std::string left_column;
    std::string right_column;
  };
  std::vector<JoinEdge> equi_joins;

  /// Everything else (non-equality conjuncts spanning tables). Applied once
  /// all referenced tables are joined.
  std::vector<Predicate> multi_table;
};

/// Classifies query.where against query.from.
PredicateClassification ClassifyPredicates(const Query& query);

/// Greedy left-deep join order: start from the smallest input, repeatedly
/// join the smallest input connected to the bound set by an equi-join edge,
/// falling back to the smallest unconnected input (Cartesian step) when the
/// join graph is disconnected. `sizes[i]` is the (filtered) cardinality of
/// FROM entry i. Returns a permutation of 0..n-1.
std::vector<int> GreedyJoinOrder(
    const std::vector<size_t>& sizes,
    const std::vector<PredicateClassification::JoinEdge>& edges);

}  // namespace aqv

#endif  // AQV_EXEC_PLANNER_H_
