#include "exec/planner.h"

#include <algorithm>
#include <set>

namespace aqv {

PredicateClassification ClassifyPredicates(const Query& query) {
  PredicateClassification out;
  out.single_table.resize(query.from.size());

  auto table_of = [&query](const std::string& column) {
    auto loc = query.FindColumn(column);
    return loc ? loc->first : -1;
  };

  for (const Predicate& p : query.where) {
    std::set<int> tables;
    for (const std::string& c : p.ReferencedColumns()) {
      int t = table_of(c);
      if (t >= 0) tables.insert(t);
    }
    if (tables.size() <= 1) {
      int t = tables.empty() ? 0 : *tables.begin();
      out.single_table[t].push_back(p);
      continue;
    }
    if (tables.size() == 2 && p.op == CmpOp::kEq && p.lhs.is_column() &&
        p.rhs.is_column()) {
      int lt = table_of(p.lhs.column);
      int rt = table_of(p.rhs.column);
      out.equi_joins.push_back(PredicateClassification::JoinEdge{
          lt, rt, p.lhs.column, p.rhs.column});
      continue;
    }
    out.multi_table.push_back(p);
  }
  return out;
}

std::vector<int> GreedyJoinOrder(
    const std::vector<size_t>& sizes,
    const std::vector<PredicateClassification::JoinEdge>& edges) {
  int n = static_cast<int>(sizes.size());
  std::vector<int> order;
  if (n == 0) return order;

  std::vector<bool> bound(n, false);
  auto connected = [&edges, &bound](int table) {
    for (const auto& e : edges) {
      if ((e.left_table == table && bound[e.right_table]) ||
          (e.right_table == table && bound[e.left_table])) {
        return true;
      }
    }
    return false;
  };

  // Seed with the smallest input.
  int first = 0;
  for (int i = 1; i < n; ++i) {
    if (sizes[i] < sizes[first]) first = i;
  }
  order.push_back(first);
  bound[first] = true;

  while (static_cast<int>(order.size()) < n) {
    int best = -1;
    bool best_connected = false;
    for (int i = 0; i < n; ++i) {
      if (bound[i]) continue;
      bool conn = connected(i);
      if (best < 0 || (conn && !best_connected) ||
          (conn == best_connected && sizes[i] < sizes[best])) {
        best = i;
        best_connected = conn;
      }
    }
    order.push_back(best);
    bound[best] = true;
  }
  return order;
}

}  // namespace aqv
