#ifndef AQV_EXEC_EXPRESSION_H_
#define AQV_EXEC_EXPRESSION_H_

#include <map>
#include <string>

#include "base/value.h"
#include "ir/query.h"

namespace aqv {

/// SQL comparison of two runtime values. NULL on either side yields false
/// (the WHERE/HAVING dialect here has no IS NULL). Numerics compare by
/// numeric value across INT64/DOUBLE; strings lexicographically;
/// cross-family comparisons are false except `<>`, which is true.
bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs);

/// Maps each column name to its position in a row layout.
using ColumnIndexMap = std::map<std::string, int>;

/// Evaluates a scalar predicate (no aggregate operands) against `row` using
/// `layout` to resolve columns. Unresolvable columns evaluate to NULL.
bool EvalScalarPredicate(const Predicate& pred, const Row& row,
                         const ColumnIndexMap& layout);

}  // namespace aqv

#endif  // AQV_EXEC_EXPRESSION_H_
