#include "exec/explain_plan.h"

#include <algorithm>
#include <vector>

#include "base/strings.h"
#include "exec/planner.h"
#include "ir/validate.h"

namespace aqv {

Result<std::string> ExplainPlan(const Query& query, const Database& db,
                                const ViewRegistry* views) {
  AQV_RETURN_NOT_OK(ValidateQuery(query));

  size_t n = query.from.size();
  std::vector<size_t> sizes(n, 0);
  std::vector<bool> known(n, false);
  for (size_t i = 0; i < n; ++i) {
    Result<const Table*> t = db.Get(query.from[i].table);
    if (t.ok()) {
      sizes[i] = (*t)->num_rows();
      known[i] = true;
    } else if (views == nullptr || !views->Has(query.from[i].table)) {
      return Status::NotFound("'" + query.from[i].table +
                              "' is neither a stored table nor a view");
    }
  }

  PredicateClassification cls = ClassifyPredicates(query);
  std::vector<int> order = GreedyJoinOrder(sizes, cls.equi_joins);

  std::string out;
  auto describe_input = [&](int t) {
    std::string s = query.from[t].table;
    if (known[t]) {
      s += " [" + std::to_string(sizes[t]) + " rows]";
    } else {
      s += " [virtual]";
    }
    if (!cls.single_table[t].empty()) {
      std::vector<std::string> preds;
      for (const Predicate& p : cls.single_table[t]) {
        preds.push_back(p.ToString());
      }
      s += " filter(" + Join(preds, " AND ") + ")";
    }
    return s;
  };

  out += "Scan " + describe_input(order.empty() ? 0 : order[0]) + "\n";
  std::vector<bool> bound(n, false);
  if (!order.empty()) bound[order[0]] = true;
  std::vector<bool> edge_used(cls.equi_joins.size(), false);

  for (size_t step = 1; step < order.size(); ++step) {
    int t = order[step];
    std::vector<std::string> keys;
    for (size_t k = 0; k < cls.equi_joins.size(); ++k) {
      if (edge_used[k]) continue;
      const auto& e = cls.equi_joins[k];
      if ((e.left_table == t && bound[e.right_table]) ||
          (e.right_table == t && bound[e.left_table])) {
        keys.push_back(e.left_column + " = " + e.right_column);
        edge_used[k] = true;
      }
    }
    if (keys.empty()) {
      out += "CartesianProduct with " + describe_input(t) + "\n";
    } else {
      out += "HashJoin(" + Join(keys, ", ") + ") with " + describe_input(t) +
             "\n";
    }
    bound[t] = true;
  }

  std::vector<std::string> residual;
  for (size_t k = 0; k < cls.equi_joins.size(); ++k) {
    if (!edge_used[k]) {
      residual.push_back(cls.equi_joins[k].left_column + " = " +
                         cls.equi_joins[k].right_column);
    }
  }
  for (const Predicate& p : cls.multi_table) residual.push_back(p.ToString());
  if (!residual.empty()) {
    out += "Filter(" + Join(residual, " AND ") + ")\n";
  }

  if (query.IsAggregation()) {
    std::vector<std::string> aggs;
    for (const Operand& term : query.AggregateTerms()) {
      aggs.push_back(term.ToString());
    }
    out += "HashAggregate(groups: " +
           (query.group_by.empty() ? std::string("<global>")
                                   : Join(query.group_by, ", ")) +
           "; aggregates: " + Join(aggs, ", ") + ")\n";
    if (!query.having.empty()) {
      std::vector<std::string> conds;
      for (const Predicate& p : query.having) conds.push_back(p.ToString());
      out += "Having(" + Join(conds, " AND ") + ")\n";
    }
  }
  {
    std::vector<std::string> items;
    for (const SelectItem& s : query.select) items.push_back(s.ToString());
    out += std::string(query.distinct ? "ProjectDistinct(" : "Project(") +
           Join(items, ", ") + ")\n";
  }
  return out;
}

std::string RenderAnalyzedPlan(const PlanProfile& profile) {
  // Pad labels so the actuals line up in a column; cap the pad so one very
  // long predicate list doesn't push everything off-screen.
  size_t width = 0;
  for (const OperatorProfile& op : profile.ops) {
    width = std::max(width, op.label.size());
  }
  width = std::min<size_t>(width, 72);

  std::string out;
  size_t vec_ops = 0;
  for (const OperatorProfile& op : profile.ops) {
    if (op.label.find(" [vec]") != std::string::npos) ++vec_ops;
    out += op.label;
    if (op.label.size() < width) out += std::string(width - op.label.size(), ' ');
    out += "  (actual rows=" + std::to_string(op.rows_in) + " -> " +
           std::to_string(op.rows_out) + ", " + std::to_string(op.micros) +
           " us)\n";
  }
  out += "total: " + std::to_string(profile.total_micros) + " us\n";
  if (vec_ops > 0) {
    // Operators tagged [vec] ran batch-at-a-time over the columnar image;
    // the rest fell back to the row engine (see README "Execution engine").
    out += "engine: vectorized (" + std::to_string(vec_ops) + "/" +
           std::to_string(profile.ops.size()) + " operators batched)\n";
  }
  return out;
}

}  // namespace aqv
