#ifndef AQV_EXEC_EXPLAIN_PLAN_H_
#define AQV_EXEC_EXPLAIN_PLAN_H_

#include <string>

#include "base/result.h"
#include "exec/evaluator.h"
#include "exec/table.h"
#include "ir/query.h"
#include "ir/views.h"

namespace aqv {

/// Renders the physical plan the Evaluator would execute for `query`:
/// filtered scans with their pushed-down predicates, the greedy left-deep
/// join order with the equi-join keys each step uses (or a Cartesian step
/// when the join graph is disconnected), residual filters, and the
/// aggregation / HAVING / projection stages. Cardinalities are annotated
/// for inputs stored in `db`; registered-but-unmaterialized views show as
/// "virtual".
///
/// Purely advisory: nothing is executed or materialized.
Result<std::string> ExplainPlan(const Query& query, const Database& db,
                                const ViewRegistry* views = nullptr);

/// Renders a PlanProfile recorded by an Evaluator (see
/// Evaluator::set_profile) as the EXPLAIN ANALYZE operator tree: one line
/// per executed operator with the actual input/output row counts and wall
/// time next to the label's stored-cardinality estimates, plus a total
/// footer. Unlike ExplainPlan this reflects the plan that actually ran —
/// the Evaluator orders joins by post-filter scan sizes, which can differ
/// from the advisory plan derived from stored cardinalities.
std::string RenderAnalyzedPlan(const PlanProfile& profile);

}  // namespace aqv

#endif  // AQV_EXEC_EXPLAIN_PLAN_H_
