#include "exec/csv.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace aqv {

namespace {

void AppendField(std::string* out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      break;  // empty field
    case ValueType::kInt64:
      out->append(std::to_string(v.int64()));
      break;
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.dbl());
      out->append(buf);
      break;
    }
    case ValueType::kString: {
      out->push_back('"');
      for (char c : v.str()) {
        if (c == '"') out->push_back('"');
        out->push_back(c);
      }
      out->push_back('"');
      break;
    }
  }
}

// Splits one CSV record starting at `pos`; advances past the trailing
// newline. Returns false at end of input.
bool NextRecord(std::string_view text, size_t* pos,
                std::vector<std::string>* fields, std::vector<bool>* quoted,
                Status* error) {
  fields->clear();
  quoted->clear();
  size_t i = *pos;
  if (i >= text.size()) return false;

  std::string field;
  bool in_quotes = false;
  bool field_quoted = false;
  bool any = false;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      field_quoted = true;
      any = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields->push_back(std::move(field));
      quoted->push_back(field_quoted);
      field.clear();
      field_quoted = false;
      any = true;
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // Consume the line terminator (\n, \r or \r\n).
      ++i;
      if (c == '\r' && i < text.size() && text[i] == '\n') ++i;
      break;
    }
    field.push_back(c);
    any = true;
    ++i;
  }
  if (in_quotes) {
    *error = Status::InvalidArgument("unterminated quoted CSV field");
    return false;
  }
  *pos = i;
  if (!any && fields->empty() && field.empty()) {
    // Blank line: skip it by recursing to the next record.
    return NextRecord(text, pos, fields, quoted, error);
  }
  fields->push_back(std::move(field));
  quoted->push_back(field_quoted);
  return true;
}

Value ParseField(const std::string& field, bool was_quoted) {
  if (was_quoted) return Value::String(field);
  if (field.empty()) return Value::Null();
  errno = 0;
  char* end = nullptr;
  long long as_int = std::strtoll(field.c_str(), &end, 10);
  if (errno == 0 && end != nullptr && *end == '\0') {
    return Value::Int64(as_int);
  }
  errno = 0;
  double as_double = std::strtod(field.c_str(), &end);
  if (errno == 0 && end != nullptr && *end == '\0') {
    return Value::Double(as_double);
  }
  return Value::String(field);
}

}  // namespace

std::string ToCsv(const Table& table) {
  std::string out;
  for (size_t i = 0; i < table.columns().size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(table.columns()[i]);
  }
  out.push_back('\n');
  for (const Row& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  file << ToCsv(table);
  if (!file.good()) {
    return Status::InvalidArgument("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<Table> FromCsv(std::string_view text) {
  size_t pos = 0;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  Status error;

  if (!NextRecord(text, &pos, &fields, &quoted, &error)) {
    if (!error.ok()) return error;
    return Status::InvalidArgument("CSV input has no header row");
  }
  Table table(fields);

  int line = 1;
  while (NextRecord(text, &pos, &fields, &quoted, &error)) {
    ++line;
    if (fields.size() != table.columns().size()) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(line) + " has " +
          std::to_string(fields.size()) + " fields; expected " +
          std::to_string(table.columns().size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      row.push_back(ParseField(fields[i], quoted[i]));
    }
    AQV_RETURN_NOT_OK(table.AddRow(std::move(row)));
  }
  if (!error.ok()) return error;
  return table;
}

Result<Table> ReadCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return FromCsv(contents.str());
}

}  // namespace aqv
