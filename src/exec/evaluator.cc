#include "exec/evaluator.h"

#include <algorithm>
#include <chrono>

#include "base/failpoint.h"
#include "base/strings.h"
#include "exec/operators.h"
#include "exec/planner.h"
#include "exec/vectorized.h"
#include "ir/validate.h"

namespace aqv {

namespace {

using ProfClock = std::chrono::steady_clock;

uint64_t MicrosSince(ProfClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(ProfClock::now() -
                                                            start)
          .count());
}

std::string PredicateList(const std::vector<Predicate>& preds) {
  std::vector<std::string> parts;
  parts.reserve(preds.size());
  for (const Predicate& p : preds) parts.push_back(p.ToString());
  return Join(parts, " AND ");
}

}  // namespace

Result<const Table*> Evaluator::InputTable(const std::string& name, int depth) {
  // Stored contents win: this is how a materialized view is served. Take
  // shared ownership of the version read first, so a concurrent writer
  // replacing it (copy-on-write Put) cannot free the rows mid-execution;
  // every read of `name` within this Evaluator sees that same version.
  if (db_ != nullptr) {
    auto it = pinned_.find(name);
    if (it != pinned_.end()) return it->second.get();
    TablePtr pinned = db_->GetShared(name);
    if (pinned != nullptr) {
      const Table* raw = pinned.get();
      pinned_.emplace(name, std::move(pinned));
      return raw;
    }
  }
  if (views_ != nullptr && views_->Has(name)) {
    auto it = view_cache_.find(name);
    if (it == view_cache_.end()) {
      if (depth >= kMaxViewDepth) {
        return Status::InvalidArgument("view nesting exceeds depth limit at '" +
                                       name + "'");
      }
      AQV_ASSIGN_OR_RETURN(const ViewDef* def, views_->Get(name));
      const bool prof = (profile_ != nullptr && depth == 0);
      ProfClock::time_point t0;
      if (prof) t0 = ProfClock::now();
      // Suspend profiling across the nested block: its internal stages
      // belong to the view, which surfaces as one Materialize operator.
      PlanProfile* saved = profile_;
      profile_ = nullptr;
      Result<Table> computed = ExecuteInternal(def->query, depth + 1);
      profile_ = saved;
      AQV_RETURN_NOT_OK(computed.status());
      Table t = *std::move(computed);
      if (prof) {
        profile_->ops.push_back(OperatorProfile{
            "Materialize " + name + " [virtual]", 0, t.num_rows(),
            MicrosSince(t0)});
      }
      ++stats_.views_materialized;
      it = view_cache_.emplace(name, std::move(t)).first;
    }
    return &it->second;
  }
  return Status::NotFound("'" + name + "' is neither a stored table nor a view");
}

Result<Table> Evaluator::Execute(const Query& query) {
  // Rows this call charges against the context become the statement's
  // rows_processed attribution; the delta keeps repeated Execute calls on
  // one context (degraded retries) from double-counting earlier work.
  size_t rows_before =
      ctx_ != nullptr && ctx_->stats() != nullptr ? ctx_->rows_charged() : 0;
  Result<Table> result = [&]() -> Result<Table> {
    if (profile_ == nullptr) return ExecuteInternal(query, 0);
    profile_->ops.clear();
    profile_->total_micros = 0;
    ProfClock::time_point t0 = ProfClock::now();
    Result<Table> r = ExecuteInternal(query, 0);
    profile_->total_micros = MicrosSince(t0);
    return r;
  }();
  if (ctx_ != nullptr && ctx_->stats() != nullptr) {
    ctx_->stats()->rows_processed += ctx_->rows_charged() - rows_before;
  }
  return result;
}

Result<Table> Evaluator::MaterializeView(const std::string& name) {
  AQV_ASSIGN_OR_RETURN(const Table* t, InputTable(name, 0));
  return *t;
}

Result<Table> Evaluator::ExecuteInternal(const Query& query, int depth) {
  AQV_FAILPOINT("exec.operator");
  if (ctx_ != nullptr && !ctx_->CheckNow()) return ctx_->status();
  AQV_RETURN_NOT_OK(ValidateQuery(query));

  // ---- Bind FROM entries to stored tables / materialized views. ----
  size_t n = query.from.size();
  std::vector<const Table*> inputs(n);
  for (size_t i = 0; i < n; ++i) {
    AQV_ASSIGN_OR_RETURN(inputs[i], InputTable(query.from[i].table, depth));
    if (inputs[i]->num_columns() !=
        static_cast<int>(query.from[i].columns.size())) {
      return Status::InvalidArgument(
          "FROM entry '" + query.from[i].table + "' has arity " +
          std::to_string(query.from[i].columns.size()) + " but the table has " +
          std::to_string(inputs[i]->num_columns()) + " columns");
    }
  }

  auto note_rows = [this](size_t rows) {
    stats_.peak_intermediate_rows = std::max(stats_.peak_intermediate_rows, rows);
  };

  // Profiling applies to the top-level block only; `prof` gates every clock
  // read and label construction so an unprofiled Execute pays nothing.
  const bool prof = (profile_ != nullptr && depth == 0);
  ProfClock::time_point op_start;
  auto op_begin = [&]() {
    if (prof) op_start = ProfClock::now();
  };
  auto op_end = [&](std::string label, size_t rows_in, size_t rows_out) {
    if (prof) {
      profile_->ops.push_back(OperatorProfile{std::move(label), rows_in,
                                              rows_out, MicrosSince(op_start)});
    }
  };
  // Mirrors explain_plan's describe_input: table name, stored cardinality
  // (the cost model's input estimate), pushed-down filter.
  auto input_label = [&](size_t t, const std::vector<Predicate>& filters) {
    std::string s = query.from[t].table + " [" +
                    std::to_string(inputs[t]->num_rows()) + " rows]";
    if (!filters.empty()) s += " filter(" + PredicateList(filters) + ")";
    return s;
  };

  // ---- Join phase: produce `joined` rows under `layout`. ----
  std::vector<Row> joined;
  ColumnIndexMap layout;

  // The Cartesian reference plan is the executable specification tests
  // compare everything against, so it stays pure row-at-a-time.
  const bool vec = options_.vectorized && options_.use_hash_join;

  // Aggregation output; the columnar fast path below can produce it
  // directly from the table's cached columnar image, in which case the join
  // phase and row-based aggregation are skipped entirely.
  std::vector<Row> grouped;
  bool grouped_ready = false;
  std::vector<Operand> agg_terms = query.AggregateTerms();
  auto agg_label = [&](bool vectorized) {
    std::vector<std::string> aggs;
    for (const Operand& term : agg_terms) aggs.push_back(term.ToString());
    return "HashAggregate(groups: " +
           (query.group_by.empty() ? std::string("<global>")
                                   : Join(query.group_by, ", ")) +
           "; aggregates: " + Join(aggs, ", ") + ")" +
           (vectorized ? " [vec]" : "");
  };

  // ---- Columnar fast path: single-table aggregation runs scan + filter +
  // hash-group entirely over typed column arrays (selection vectors instead
  // of materialized rows). Falls through to the row engine whenever the
  // compiled operators cannot reproduce its semantics exactly.
  if (vec && n == 1 && !query.IsConjunctive()) {
    PredicateClassification cls = ClassifyPredicates(query);
    if (cls.multi_table.empty() && cls.equi_joins.empty()) {
      ColumnIndexMap scan_layout;
      for (size_t j = 0; j < query.from[0].columns.size(); ++j) {
        scan_layout[query.from[0].columns[j]] = static_cast<int>(j);
      }
      std::vector<int> group_ordinals;
      group_ordinals.reserve(query.group_by.size());
      for (const std::string& g : query.group_by) {
        group_ordinals.push_back(scan_layout.at(g));
      }
      std::vector<AggSpec> specs;
      specs.reserve(agg_terms.size());
      for (const Operand& term : agg_terms) {
        int mult =
            term.multiplier.empty() ? -1 : scan_layout.at(term.multiplier);
        specs.push_back(AggSpec{term.agg, scan_layout.at(term.column), mult});
      }
      const ColumnarTable& ct = inputs[0]->columnar();
      const std::vector<Predicate>& filters = cls.single_table[0];
      CompiledFilter filter;
      VectorizedAggregation agg;
      if (CompiledFilter::Compile(filters, scan_layout, ct, &filter) &&
          VectorizedAggregation::Compile(ct, group_ordinals, specs, &agg)) {
        op_begin();
        SelVector sel;
        const bool use_sel = !filters.empty();
        if (use_sel) sel = filter.Run(ct, ctx_);
        size_t scanned = use_sel ? sel.size() : ct.num_rows();
        op_end("Scan " + input_label(0, filters) + " [vec]",
               inputs[0]->num_rows(), scanned);
        note_rows(scanned);
        op_begin();
        grouped = agg.Run(ct, use_sel ? &sel : nullptr, ctx_);
        op_end(agg_label(true), scanned, grouped.size());
        note_rows(grouped.size());
        stats_.vectorized_ops += 2;
        grouped_ready = true;
      }
    }
  }

  if (grouped_ready) {
    // Join phase skipped: aggregation came straight off the columnar image.
  } else if (!options_.use_hash_join) {
    // Reference plan: Cartesian product in FROM order, then filter.
    int offset = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < query.from[i].columns.size(); ++j) {
        layout[query.from[i].columns[j]] = offset++;
      }
      op_begin();
      if (i == 0) {
        joined = inputs[0]->rows();
        op_end("Scan " + input_label(0, {}), inputs[0]->num_rows(),
               joined.size());
      } else {
        size_t before = joined.size();
        joined = CartesianProduct(joined, inputs[i]->rows(), ctx_);
        op_end("CartesianProduct with " + input_label(i, {}), before,
               joined.size());
      }
      note_rows(joined.size());
    }
    op_begin();
    size_t before = joined.size();
    joined = FilterRows(joined, query.where, layout, ctx_);
    if (!query.where.empty()) {
      op_end("Filter(" + PredicateList(query.where) + ")", before,
             joined.size());
    }
  } else {
    PredicateClassification cls = ClassifyPredicates(query);

    // Per-input filtered scans: vectorized (filter over the columnar image,
    // then gather the survivors) when every predicate compiles, row engine
    // otherwise. Both charge one row per stored row, so governance
    // accounting is engine-independent.
    std::vector<std::vector<Row>> scans(n);
    std::vector<uint64_t> scan_micros(n, 0);
    std::vector<bool> scan_vec(n, false);
    for (size_t i = 0; i < n; ++i) {
      ColumnIndexMap scan_layout;
      for (size_t j = 0; j < query.from[i].columns.size(); ++j) {
        scan_layout[query.from[i].columns[j]] = static_cast<int>(j);
      }
      op_begin();
      if (vec && !cls.single_table[i].empty()) {
        const ColumnarTable& ct = inputs[i]->columnar();
        CompiledFilter filter;
        if (CompiledFilter::Compile(cls.single_table[i], scan_layout, ct,
                                    &filter)) {
          scans[i] = GatherRows(ct, filter.Run(ct, ctx_));
          scan_vec[i] = true;
          ++stats_.vectorized_ops;
        }
      }
      if (!scan_vec[i]) {
        scans[i] = FilterRows(inputs[i]->rows(), cls.single_table[i],
                              scan_layout, ctx_);
      }
      if (prof) scan_micros[i] = MicrosSince(op_start);
    }

    std::vector<size_t> sizes(n);
    for (size_t i = 0; i < n; ++i) sizes[i] = scans[i].size();
    std::vector<int> order = GreedyJoinOrder(sizes, cls.equi_joins);

    std::vector<bool> bound(n, false);
    std::vector<bool> edge_used(cls.equi_joins.size(), false);
    std::vector<bool> multi_applied(cls.multi_table.size(), false);

    auto apply_ready_multi = [&]() {
      std::vector<Predicate> ready;
      for (size_t k = 0; k < cls.multi_table.size(); ++k) {
        if (multi_applied[k]) continue;
        bool all_bound = true;
        for (const std::string& c : cls.multi_table[k].ReferencedColumns()) {
          auto loc = query.FindColumn(c);
          if (loc && !bound[loc->first]) all_bound = false;
        }
        if (all_bound) {
          ready.push_back(cls.multi_table[k]);
          multi_applied[k] = true;
        }
      }
      if (!ready.empty()) {
        op_begin();
        size_t before = joined.size();
        joined = FilterRows(joined, ready, layout, ctx_);
        op_end("Filter(" + PredicateList(ready) + ")", before, joined.size());
      }
    };

    for (size_t step = 0; step < order.size(); ++step) {
      int t = order[step];
      // The input's filtered scan, with its stored cardinality (= the cost
      // model's estimate) in the label and the scan actuals measured above.
      if (prof) {
        profile_->ops.push_back(OperatorProfile{
            "Scan " + input_label(t, cls.single_table[t]) +
                (scan_vec[t] ? " [vec]" : ""),
            inputs[t]->num_rows(), scans[t].size(), scan_micros[t]});
      }
      if (step == 0) {
        joined = scans[t];
        for (size_t j = 0; j < query.from[t].columns.size(); ++j) {
          layout[query.from[t].columns[j]] = static_cast<int>(j);
        }
        bound[t] = true;
        note_rows(joined.size());
        apply_ready_multi();
        continue;
      }

      // Keys: every unused equi edge connecting t to the bound set.
      std::vector<std::pair<int, int>> keys;  // (joined ordinal, scan ordinal)
      std::vector<std::string> key_names;
      for (size_t k = 0; k < cls.equi_joins.size(); ++k) {
        if (edge_used[k]) continue;
        const auto& e = cls.equi_joins[k];
        std::string bound_col, new_col;
        if (e.left_table == t && bound[e.right_table]) {
          new_col = e.left_column;
          bound_col = e.right_column;
        } else if (e.right_table == t && bound[e.left_table]) {
          new_col = e.right_column;
          bound_col = e.left_column;
        } else {
          continue;
        }
        auto loc = query.FindColumn(new_col);
        keys.emplace_back(layout.at(bound_col), loc->second);
        edge_used[k] = true;
        if (prof) key_names.push_back(e.left_column + " = " + e.right_column);
      }

      op_begin();
      size_t before = joined.size();
      if (keys.empty()) {
        joined = CartesianProduct(joined, scans[t], ctx_);
        op_end("CartesianProduct with " + query.from[t].table, before,
               joined.size());
      } else {
        joined = HashJoin(joined, scans[t], keys, ctx_);
        op_end("HashJoin(" + Join(key_names, ", ") + ") with " +
                   query.from[t].table,
               before, joined.size());
      }
      int offset = static_cast<int>(layout.size());
      for (size_t j = 0; j < query.from[t].columns.size(); ++j) {
        layout[query.from[t].columns[j]] = offset + static_cast<int>(j);
      }
      bound[t] = true;
      note_rows(joined.size());
      apply_ready_multi();
    }

    // Equi edges between two tables joined through a third path may remain:
    // apply them as residual filters.
    std::vector<Predicate> leftover;
    for (size_t k = 0; k < cls.equi_joins.size(); ++k) {
      if (edge_used[k]) continue;
      const auto& e = cls.equi_joins[k];
      leftover.push_back(Predicate{Operand::Column(e.left_column), CmpOp::kEq,
                                   Operand::Column(e.right_column)});
    }
    if (!leftover.empty()) {
      op_begin();
      size_t before = joined.size();
      joined = FilterRows(joined, leftover, layout, ctx_);
      op_end("Filter(" + PredicateList(leftover) + ")", before, joined.size());
    }
  }

  // A tripped limit leaves partial join output; discard it and surface the
  // violation rather than aggregating over truncated input.
  if (ctx_ != nullptr && !ctx_->ok()) return ctx_->status();

  // ---- Projection / aggregation phase. ----
  Table out(query.OutputColumns());

  auto select_label = [&]() {
    std::vector<std::string> items;
    for (const SelectItem& s : query.select) items.push_back(s.ToString());
    return std::string(query.distinct ? "ProjectDistinct(" : "Project(") +
           Join(items, ", ") + ")";
  };

  if (query.IsConjunctive()) {
    std::vector<int> ordinals;
    ordinals.reserve(query.select.size());
    for (const SelectItem& s : query.select) {
      ordinals.push_back(layout.at(s.column));
    }
    op_begin();
    size_t proj_in = joined.size();
    std::vector<Row> rows = ProjectRows(joined, ordinals, ctx_);
    if (query.distinct) rows = DistinctRows(rows, ctx_);
    op_end(select_label(), proj_in, rows.size());
    if (ctx_ != nullptr && !ctx_->ok()) return ctx_->status();
    *out.mutable_rows() = std::move(rows);
    return out;
  }

  // Grouped/aggregated query (post-join path; the columnar fast path above
  // may already have produced `grouped`).
  if (!grouped_ready) {
    std::vector<int> group_ordinals;
    group_ordinals.reserve(query.group_by.size());
    for (const std::string& g : query.group_by) {
      group_ordinals.push_back(layout.at(g));
    }

    std::vector<AggSpec> specs;
    specs.reserve(agg_terms.size());
    for (const Operand& term : agg_terms) {
      int mult = term.multiplier.empty() ? -1 : layout.at(term.multiplier);
      specs.push_back(AggSpec{term.agg, layout.at(term.column), mult});
    }

    op_begin();
    size_t agg_in = joined.size();
    bool vec_agg = false;
    grouped = vec ? VectorizedGroupAggregateRows(joined, group_ordinals, specs,
                                                 ctx_, &vec_agg)
                  : GroupAggregate(joined, group_ordinals, specs, ctx_);
    if (vec_agg) ++stats_.vectorized_ops;
    if (prof) op_end(agg_label(vec_agg), agg_in, grouped.size());
    note_rows(grouped.size());
  }

  // Layout of the grouped rows: grouping columns then one synthetic column
  // per aggregate term.
  ColumnIndexMap group_layout;
  for (size_t i = 0; i < query.group_by.size(); ++i) {
    group_layout[query.group_by[i]] = static_cast<int>(i);
  }
  auto agg_position = [&](const Operand& term) -> int {
    for (size_t i = 0; i < agg_terms.size(); ++i) {
      if (agg_terms[i] == term) {
        return static_cast<int>(query.group_by.size() + i);
      }
    }
    return -1;
  };
  auto synthetic_name = [](size_t i) { return "#agg" + std::to_string(i); };
  for (size_t i = 0; i < agg_terms.size(); ++i) {
    group_layout[synthetic_name(i)] =
        static_cast<int>(query.group_by.size() + i);
  }

  // HAVING: rewrite aggregate operands to the synthetic columns, then filter.
  if (!query.having.empty()) {
    std::vector<Predicate> having;
    having.reserve(query.having.size());
    for (Predicate p : query.having) {
      for (Operand* o : {&p.lhs, &p.rhs}) {
        if (o->is_aggregate()) {
          int pos = agg_position(*o);
          *o = Operand::Column(synthetic_name(
              static_cast<size_t>(pos) - query.group_by.size()));
        }
      }
      having.push_back(std::move(p));
    }
    op_begin();
    size_t having_in = grouped.size();
    grouped = FilterRows(grouped, having, group_layout, ctx_);
    if (prof) {
      std::vector<std::string> conds;
      for (const Predicate& p : query.having) conds.push_back(p.ToString());
      op_end("Having(" + Join(conds, " AND ") + ")", having_in,
             grouped.size());
    }
  }

  // Final projection. Ratio items divide two SUM positions, so this is a
  // custom loop rather than ProjectRows.
  op_begin();
  size_t proj_in = grouped.size();
  std::vector<Row> rows;
  rows.reserve(grouped.size());
  for (const Row& g : grouped) {
    if (ctx_ != nullptr && !ctx_->TickRows()) break;
    Row projected;
    projected.reserve(query.select.size());
    for (const SelectItem& s : query.select) {
      switch (s.kind) {
        case SelectItem::Kind::kColumn:
          projected.push_back(g[group_layout.at(s.column)]);
          break;
        case SelectItem::Kind::kAggregate:
          projected.push_back(g[agg_position(
              Operand::Aggregate(s.agg, s.arg.column, s.arg.multiplier))]);
          break;
        case SelectItem::Kind::kRatio: {
          const Value& num = g[agg_position(Operand::Aggregate(
              AggFn::kSum, s.arg.column, s.arg.multiplier))];
          const Value& den = g[agg_position(Operand::Aggregate(
              AggFn::kSum, s.den.column, s.den.multiplier))];
          if (num.is_null() || den.is_null() || !den.is_numeric() ||
              den.AsDouble() == 0.0) {
            projected.push_back(Value::Null());
          } else {
            projected.push_back(Value::Double(num.AsDouble() / den.AsDouble()));
          }
          break;
        }
      }
    }
    rows.push_back(std::move(projected));
  }
  if (query.distinct) rows = DistinctRows(rows, ctx_);
  op_end(select_label(), proj_in, rows.size());
  if (ctx_ != nullptr && !ctx_->ok()) return ctx_->status();
  *out.mutable_rows() = std::move(rows);
  return out;
}

}  // namespace aqv
