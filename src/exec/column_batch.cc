#include "exec/column_batch.h"

namespace aqv {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
    case ColumnType::kMixed:
      return "mixed";
  }
  return "unknown";
}

Value Column::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type) {
    case ColumnType::kInt64:
      return Value::Int64(i64[row]);
    case ColumnType::kDouble:
      return Value::Double(f64[row]);
    case ColumnType::kString:
      return Value::String(dict[static_cast<size_t>(codes[row])]);
    case ColumnType::kMixed:
      return mixed[row];
  }
  return Value::Null();
}

namespace {

void SetNull(Column* c, size_t row) {
  c->null_words[row >> 6] |= uint64_t{1} << (row & 63);
  c->has_nulls = true;
}

}  // namespace

ColumnarTable ColumnarTable::FromRows(const std::vector<Row>& rows,
                                      int num_columns) {
  ColumnarTable out;
  out.num_rows_ = rows.size();
  size_t nc = static_cast<size_t>(num_columns);
  out.cols_.resize(nc);

  // Pass 1: infer each column's storage class. The first non-null value
  // fixes the type; any later non-null value of a different type degrades
  // the column to kMixed. All-null columns stay kInt64 (every slot is
  // covered by the bitmap, so the payload type is arbitrary).
  std::vector<ColumnType> inferred(nc, ColumnType::kInt64);
  std::vector<bool> seen(nc, false);
  for (const Row& row : rows) {
    for (size_t c = 0; c < nc; ++c) {
      const Value& v = row[c];
      if (v.is_null()) continue;
      ColumnType t;
      switch (v.type()) {
        case ValueType::kInt64:
          t = ColumnType::kInt64;
          break;
        case ValueType::kDouble:
          t = ColumnType::kDouble;
          break;
        default:
          t = ColumnType::kString;
          break;
      }
      if (!seen[c]) {
        seen[c] = true;
        inferred[c] = t;
      } else if (inferred[c] != t) {
        inferred[c] = ColumnType::kMixed;
      }
    }
  }

  size_t words = (rows.size() + 63) / 64;
  std::vector<std::unordered_map<std::string, int32_t>> dict_index(nc);
  for (size_t c = 0; c < nc; ++c) {
    Column& col = out.cols_[c];
    col.type = inferred[c];
    col.null_words.assign(words, 0);
    switch (col.type) {
      case ColumnType::kInt64:
        col.i64.assign(rows.size(), 0);
        break;
      case ColumnType::kDouble:
        col.f64.assign(rows.size(), 0.0);
        break;
      case ColumnType::kString:
        col.codes.assign(rows.size(), -1);
        break;
      case ColumnType::kMixed:
        col.mixed.resize(rows.size());
        break;
    }
  }

  // Pass 2: fill payloads.
  for (size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    for (size_t c = 0; c < nc; ++c) {
      const Value& v = row[c];
      Column& col = out.cols_[c];
      if (col.type == ColumnType::kMixed) {
        col.mixed[r] = v;
        if (v.is_null()) SetNull(&col, r);
        continue;
      }
      if (v.is_null()) {
        SetNull(&col, r);
        continue;
      }
      switch (col.type) {
        case ColumnType::kInt64:
          col.i64[r] = v.int64();
          break;
        case ColumnType::kDouble:
          col.f64[r] = v.dbl();
          break;
        case ColumnType::kString: {
          auto [it, inserted] = dict_index[c].emplace(
              v.str(), static_cast<int32_t>(col.dict.size()));
          if (inserted) col.dict.push_back(v.str());
          col.codes[r] = it->second;
          break;
        }
        case ColumnType::kMixed:
          break;  // handled above
      }
    }
  }
  return out;
}

void ColumnarTable::AppendRowTo(size_t row, Row* out) const {
  out->reserve(out->size() + cols_.size());
  for (const Column& c : cols_) out->push_back(c.ValueAt(row));
}

}  // namespace aqv
