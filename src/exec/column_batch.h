#ifndef AQV_EXEC_COLUMN_BATCH_H_
#define AQV_EXEC_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/value.h"

namespace aqv {

/// Rows per processing batch: vectorized operators charge the ExecContext
/// and re-check deadlines/cancellation at this granularity, so governance
/// fires *inside* a long scan instead of after it. 1024 equals
/// ExecContext::kCheckStride, meaning one deadline check per batch.
inline constexpr size_t kBatchRows = 1024;

/// Storage class of one column in a ColumnarTable.
///
///   kInt64 / kDouble — contiguous typed arrays (null slots hold 0).
///   kString          — dictionary-encoded: per-row int32 codes into a
///                      per-column dictionary (null slots hold -1).
///   kMixed           — the column held more than one non-null type (or a
///                      type the typed layouts can't carry); values are kept
///                      as tagged `Value`s. Mixed columns still support
///                      ValueAt/gather, but operators treat them as
///                      non-vectorizable and fall back to the row engine.
enum class ColumnType : uint8_t { kInt64, kDouble, kString, kMixed };

const char* ColumnTypeToString(ColumnType type);

/// One typed column of a ColumnarTable: a validity bitmap plus exactly one
/// of the payload vectors, chosen by `type`. A set bit in `null_words`
/// means the row is NULL. `has_nulls` short-circuits the bitmap probe for
/// the (common) all-valid case.
struct Column {
  ColumnType type = ColumnType::kInt64;
  bool has_nulls = false;
  std::vector<uint64_t> null_words;  // ceil(rows/64) words; bit set = NULL

  std::vector<int64_t> i64;        // kInt64
  std::vector<double> f64;         // kDouble
  std::vector<int32_t> codes;      // kString: dictionary codes, -1 at NULLs
  std::vector<std::string> dict;   // kString: code -> string
  std::vector<Value> mixed;        // kMixed: full tagged values

  bool IsNull(size_t row) const {
    return has_nulls && ((null_words[row >> 6] >> (row & 63)) & 1) != 0;
  }

  /// The row's value as a tagged Value (works for every ColumnType).
  Value ValueAt(size_t row) const;
};

/// A columnar image of a row table: per-column typed arrays sharing one row
/// count. Built once from `Table` rows (see Table::columnar() for the cached
/// path) and immutable afterwards, so concurrent readers of a published
/// table version can share it freely.
///
/// Column types are inferred per column: the first non-null value fixes the
/// type; a later conflicting type degrades that column to kMixed (exact
/// tagged values, row-engine fallback). String columns are dictionary
/// encoded with first-occurrence code assignment, so equal strings share one
/// code and constant comparisons reduce to a per-code precomputed mask.
class ColumnarTable {
 public:
  ColumnarTable() = default;

  /// Builds the columnar image of `rows`, each of arity `num_columns`.
  static ColumnarTable FromRows(const std::vector<Row>& rows, int num_columns);

  size_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(cols_.size()); }
  const Column& col(int i) const { return cols_[static_cast<size_t>(i)]; }

  /// True if operators can run tight typed loops over column `i` (i.e. it
  /// is not kMixed).
  bool ColumnVectorizable(int i) const {
    return col(i).type != ColumnType::kMixed;
  }

  Value ValueAt(int column, size_t row) const { return col(column).ValueAt(row); }

  /// Reconstructs full row `row` (all columns, schema order) into `*out`.
  void AppendRowTo(size_t row, Row* out) const;

 private:
  size_t num_rows_ = 0;
  std::vector<Column> cols_;
};

/// A selection over a ColumnarTable: ascending row indices that survived a
/// filter. Operators consuming (table, selection) pairs avoid materializing
/// intermediate rows entirely.
using SelVector = std::vector<uint32_t>;

}  // namespace aqv

#endif  // AQV_EXEC_COLUMN_BATCH_H_
