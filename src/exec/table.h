#ifndef AQV_EXEC_TABLE_H_
#define AQV_EXEC_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/value.h"

namespace aqv {

/// An in-memory multiset of rows with named columns. Duplicate rows are
/// first-class: the paper's semantics are over bags, and a Table preserves
/// multiplicities exactly.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  size_t num_rows() const { return rows_.size(); }

  /// Ordinal of `column`, or -1.
  int ColumnIndex(const std::string& column) const;

  /// Appends `row`; its arity must match the schema.
  Status AddRow(Row row);

  /// AddRow that aborts on arity mismatch; for literal test data.
  void AddRowOrDie(Row row);

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>* mutable_rows() { return &rows_; }

  /// Multi-line human-readable rendering (for examples and test failures).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

/// A database instance: base-table name -> contents. Materialized view
/// contents may also be stored here under the view's name, in which case the
/// evaluator uses the stored contents instead of recomputing the view.
class Database {
 public:
  /// Stores `table` under `name`, replacing any previous contents.
  void Put(std::string name, Table table);

  bool Has(const std::string& name) const { return tables_.count(name) > 0; }
  Result<const Table*> Get(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, Table> tables_;
};

/// True if `a` and `b` contain the same multiset of rows (column names are
/// ignored; arity must match). This is Definition 2.2's multiset-equivalence
/// check applied to two concrete results.
bool MultisetEqual(const Table& a, const Table& b);

/// Human-readable explanation of the first difference found by
/// MultisetEqual, or "" if equal. Used in test failure messages.
std::string DescribeMultisetDifference(const Table& a, const Table& b);

/// MultisetEqual with a relative tolerance on numeric values. Needed when
/// comparing a query against its rewriting over DOUBLE data: re-associating
/// a SUM (e.g. summing monthly subtotals instead of raw values) changes the
/// result in the last bits. Rows are canonically sorted and matched
/// pairwise.
bool MultisetAlmostEqual(const Table& a, const Table& b,
                         double relative_tolerance = 1e-9);

}  // namespace aqv

#endif  // AQV_EXEC_TABLE_H_
