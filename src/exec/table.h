#ifndef AQV_EXEC_TABLE_H_
#define AQV_EXEC_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/serde.h"
#include "base/value.h"

namespace aqv {

class ColumnarTable;

/// An in-memory multiset of rows with named columns. Duplicate rows are
/// first-class: the paper's semantics are over bags, and a Table preserves
/// multiplicities exactly.
class Table {
 public:
  Table();
  explicit Table(std::vector<std::string> columns);
  Table(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(const Table& other);
  Table& operator=(Table&& other) noexcept;
  ~Table();

  const std::vector<std::string>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  size_t num_rows() const { return rows_.size(); }

  /// Ordinal of `column`, or -1.
  int ColumnIndex(const std::string& column) const;

  /// Appends `row`; its arity must match the schema.
  Status AddRow(Row row);

  /// Appends a batch of rows (all-or-nothing on arity mismatch). One cache
  /// invalidation and one capacity reservation for the whole batch, so the
  /// write path's delta application stays O(batch), not O(batch * rebuilds).
  Status AddRows(std::vector<Row> rows);

  /// AddRow that aborts on arity mismatch; for literal test data.
  void AddRowOrDie(Row row);

  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>* mutable_rows() {
    InvalidateColumnar();
    return &rows_;
  }

  /// Lazily built, cached columnar image of this table (exec/column_batch.h),
  /// the input of the vectorized operators. Safe for concurrent readers of
  /// an immutable (published) table version: the first caller builds under a
  /// once-flag, later callers share the image. Mutation through AddRow /
  /// AddRows / mutable_rows discards the cache; mutating while another
  /// thread reads is outside the Table contract (stored versions are
  /// copy-on-write, see TablePtr below).
  const ColumnarTable& columnar() const;

  /// Multi-line human-readable rendering (for examples and test failures).
  std::string ToString(size_t max_rows = 20) const;

  /// Approximate heap footprint of this version in bytes: row storage plus
  /// the cached columnar pivot image when one has been built. Used by the
  /// MVCC accounting (Database::MvccStats) to size what pinned old versions
  /// hold; O(rows), so call it from stats paths, not hot loops.
  size_t ApproxBytes() const;

 private:
  /// Holder for the lazily built columnar image. A fresh slot is assigned on
  /// construction, copy, and mutation, so the pointer itself is never
  /// written while concurrent readers race through columnar().
  struct ColumnarSlot {
    std::once_flag once;
    std::atomic<bool> built{false};
    std::unique_ptr<const ColumnarTable> image;
  };

  void InvalidateColumnar();

  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  mutable std::shared_ptr<ColumnarSlot> columnar_;
};

/// An immutable stored table version. Once a Table is Put into a Database it
/// is never mutated again: writers replace the whole pointer (copy-on-write),
/// so any holder of a TablePtr — a pinned snapshot, an in-flight evaluator —
/// keeps reading the version it started with.
using TablePtr = std::shared_ptr<const Table>;

/// A database instance: base-table name -> contents. Materialized view
/// contents may also be stored here under the view's name, in which case the
/// evaluator uses the stored contents instead of recomputing the view.
///
/// Storage is a *table-version vector*: each name maps to an immutable
/// TablePtr plus the database epoch at which it was last replaced. Every Put
/// bumps the epoch, and Snapshot() pins the whole vector by copying the
/// shared pointers — O(#tables), no row copies — giving multi-statement
/// readers one consistent state while writers keep replacing versions.
///
/// The name->version map itself is guarded by an internal shared_mutex, so
/// a Put of table A is safe against a concurrent Get of table B without any
/// external latch. What the internal lock does NOT provide is cross-call
/// consistency: a raw pointer obtained from Get stays valid only while the
/// stored version is not replaced (hold the owning service's table latch, or
/// use GetShared / Snapshot to take shared ownership).
class Database {
 public:
  Database() = default;
  Database(const Database& other);
  Database(Database&& other) noexcept;
  Database& operator=(const Database& other);
  Database& operator=(Database&& other) noexcept;

  /// Stores `table` under `name` as a new immutable version, replacing any
  /// previous contents and bumping the epoch.
  void Put(std::string name, Table table);
  void Put(std::string name, TablePtr table);

  /// Atomically stores every (name, table) pair as new immutable versions at
  /// ONE shared epoch: the epoch is bumped once and all entries get that
  /// version. Because Snapshot()/readers copy the version vector under the
  /// same lock, they observe either none or all of the batch — never a state
  /// where (say) a base table has advanced but a view maintained from the
  /// same write has not.
  void PutAll(std::vector<std::pair<std::string, TablePtr>> tables);

  bool Has(const std::string& name) const;
  Result<const Table*> Get(const std::string& name) const;

  /// Shared ownership of the current version of `name` (nullptr if absent):
  /// the returned table stays alive and unchanged even if a writer replaces
  /// the stored version afterwards.
  TablePtr GetShared(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Monotonic write counter: bumped by every Put. Two Database states with
  /// equal epochs obtained from the same instance are identical.
  uint64_t epoch() const;

  /// Epoch at which `name` was last Put (0 if absent).
  uint64_t VersionOf(const std::string& name) const;

  /// A pinned copy of the current table-version vector: shares all row
  /// storage with this instance (shared_ptr copies only). Writers replacing
  /// versions in the source leave the snapshot untouched.
  Database Snapshot() const { return Database(*this); }

  /// MVCC accounting for one table: how many versions are still reachable
  /// (the current one plus retired versions kept alive by snapshots or
  /// in-flight readers), how many bytes those retired versions pin, and the
  /// epoch of the oldest still-pinned retired version (0 when only the
  /// current version is alive).
  struct TableMvcc {
    std::string table;
    size_t versions_alive = 0;  // current version + live retired versions
    size_t bytes_pinned = 0;    // bytes held by live retired versions
    uint64_t oldest_pinned_epoch = 0;
  };

  /// Per-table MVCC accounting, name-sorted. Retired versions are tracked
  /// by weak_ptr, so a version (and its columnar pivot cache) that no
  /// snapshot holds any more drops out of the numbers the moment the last
  /// shared_ptr dies — reclamation is the shared_ptr itself; this is the
  /// ledger proving it happened. O(total pinned rows) for the byte sizing.
  std::vector<TableMvcc> MvccStats() const;

  /// The smallest epoch any live retired version was published at, across
  /// all tables — everything at or before it is potentially pinned by a
  /// reader. 0 when nothing but current versions is alive.
  uint64_t OldestPinnedEpoch() const;

 private:
  struct Versioned {
    TablePtr table;
    uint64_t version = 0;
  };

  /// A superseded table version: weakly held (the replacing Put does not
  /// extend its life) plus the epoch it was published at. Entries whose
  /// version died are pruned on the next Put of the same table.
  struct Retired {
    std::weak_ptr<const Table> table;
    uint64_t version = 0;
  };

  /// Records `slot`'s outgoing version in retired_ and prunes entries whose
  /// weak_ptr has expired. Caller holds mu_ exclusive.
  void RetireLocked(const std::string& name, const Versioned& slot);

  /// Guards the name->version map and the epoch, not table contents (those
  /// are immutable once stored).
  mutable std::shared_mutex mu_;
  std::map<std::string, Versioned> tables_;
  /// Retired-version ledger, oldest first per table. Deliberately NOT
  /// copied into snapshots (a snapshot is a read-only pin; only the live
  /// instance owns garbage accounting).
  std::map<std::string, std::vector<Retired>> retired_;
  uint64_t epoch_ = 0;
};

/// True if `a` and `b` contain the same multiset of rows (column names are
/// ignored; arity must match). This is Definition 2.2's multiset-equivalence
/// check applied to two concrete results.
bool MultisetEqual(const Table& a, const Table& b);

/// Human-readable explanation of the first difference found by
/// MultisetEqual, or "" if equal. Used in test failure messages.
std::string DescribeMultisetDifference(const Table& a, const Table& b);

/// Appends the wire encoding of `value` to `*out`: a type tag byte followed
/// by the payload (varint-zigzag for INT64, IEEE bits for DOUBLE,
/// length-prefixed bytes for STRING, nothing for NULL). The encoding is the
/// unit the storage layer packs into slotted-page records and WAL deltas.
void EncodeValue(const Value& value, std::string* out);

/// Decodes one value previously written by EncodeValue.
Result<Value> DecodeValue(ByteReader* reader);

/// Appends the wire encoding of `row`: varint arity, then each value.
void EncodeRow(const Row& row, std::string* out);

/// Decodes one row previously written by EncodeRow.
Result<Row> DecodeRow(ByteReader* reader);

/// MultisetEqual with a relative tolerance on numeric values. Needed when
/// comparing a query against its rewriting over DOUBLE data: re-associating
/// a SUM (e.g. summing monthly subtotals instead of raw values) changes the
/// result in the last bits. Rows are canonically sorted and matched
/// pairwise.
bool MultisetAlmostEqual(const Table& a, const Table& b,
                         double relative_tolerance = 1e-9);

}  // namespace aqv

#endif  // AQV_EXEC_TABLE_H_
