#ifndef AQV_EXEC_VECTORIZED_H_
#define AQV_EXEC_VECTORIZED_H_

#include <cstdint>
#include <vector>

#include "base/exec_context.h"
#include "base/value.h"
#include "exec/column_batch.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "ir/query.h"

namespace aqv {

/// Batch-at-a-time operators over ColumnarTable images. Each operator is
/// compiled once per query against a concrete columnar layout (so all type
/// dispatch happens per column, not per value), then runs tight typed loops
/// in kBatchRows chunks, charging the ExecContext per batch — governance
/// (deadline / row budget / cancel) therefore fires *inside* a long scan.
///
/// Compilation fails (returns false) whenever the row engine's semantics
/// cannot be reproduced exactly — a kMixed column, too many grouping
/// columns, SUM/AVG over a string column. Callers then fall back to the
/// row-at-a-time operators in exec/operators.h; results are bit-identical
/// either way (the invariant enforced by tests/vectorized_differential_test).

/// A conjunction of scalar predicates compiled against one columnar layout.
/// Mirrors FilterRows/EvalScalarPredicate exactly: NULL operands evaluate
/// to false, numerics compare as doubles across INT64/DOUBLE, cross-family
/// comparisons are false except `<>`, unresolvable columns yield NULL.
class CompiledFilter {
 public:
  /// Compiles `preds` (each must be scalar) against `layout`/`table`.
  /// Returns false — leaving `*out` unusable — if any referenced column is
  /// kMixed or a predicate is not scalar.
  static bool Compile(const std::vector<Predicate>& preds,
                      const ColumnIndexMap& layout, const ColumnarTable& table,
                      CompiledFilter* out);

  /// Selection of rows satisfying the conjunction, ascending. Charges one
  /// row per input row in kBatchRows chunks; on a tripped context the
  /// partial selection is returned for the caller to discard.
  SelVector Run(const ColumnarTable& table, ExecContext* ctx) const;

  /// One compiled conjunct. Internal, exposed for the batch-layer tests.
  struct Pred {
    enum class Kind : uint8_t {
      kAlwaysTrue,   // constant-constant, true
      kAlwaysFalse,  // constant-constant false, NULL operand, cross != kNe
      kNumConst,     // numeric column `op` numeric constant
      kStrConst,     // string column vs string constant: per-code mask
      kNumNum,       // numeric column `op` numeric column
      kStrStr,       // string column `op` string column
      kNotNullNe,    // cross-family `<>`: true iff operand column(s) non-NULL
    };
    Kind kind = Kind::kAlwaysFalse;
    CmpOp op = CmpOp::kEq;
    int lhs_col = -1;
    int rhs_col = -1;
    double cval = 0.0;               // kNumConst
    std::vector<uint8_t> dict_pass;  // kStrConst: pass/fail per dict code
  };

 private:
  std::vector<Pred> preds_;
};

/// Hash-group aggregation compiled against one columnar layout: group keys
/// are packed into fixed-width canonical (tag, bits) words (integral
/// doubles collapse to INT64, exactly like the row engine's CanonicalKey),
/// and each aggregate runs a typed accumulation loop chosen once from the
/// column's storage class. State mirrors Aggregator field-for-field — the
/// double sum is accumulated in input-row order, so SUM/AVG results are
/// bit-identical to the row engine, not merely close.
class VectorizedAggregation {
 public:
  /// Compiles grouping by `group_cols` with aggregates `aggs`. Returns
  /// false if any referenced column is kMixed, there are more than
  /// kMaxGroupCols grouping columns, or a SUM/AVG argument is a string
  /// column (the row engine's error behaviour is preserved by falling back).
  static bool Compile(const ColumnarTable& table,
                      const std::vector<int>& group_cols,
                      const std::vector<AggSpec>& aggs,
                      VectorizedAggregation* out);

  /// Aggregates the selected rows (all rows when `sel` is null). Output
  /// rows are [group values..., aggregate values...] like GroupAggregate;
  /// group values are the first-encountered originals and a global
  /// aggregate over empty input still emits one row. Charges one row per
  /// input row in kBatchRows chunks.
  std::vector<Row> Run(const ColumnarTable& table, const SelVector* sel,
                       ExecContext* ctx) const;

  static constexpr size_t kMaxGroupCols = 4;

 private:
  /// Typed value stream an aggregate consumes: fixed at compile time since
  /// a non-kMixed column holds one type (a product of a string operand is
  /// always NULL, hence kNullStream).
  enum class Stream : uint8_t { kInt, kDbl, kStr, kNullStream };

  struct Agg {
    AggFn fn;
    Stream stream = Stream::kNullStream;
    int col = -1;
    int mult = -1;  // >= 0: scaled argument (Section 4 multiplicity)
  };

  std::vector<int> group_cols_;
  std::vector<Agg> aggs_;
};

/// Materializes the selected rows of `table` (all columns, schema order).
/// Charges nothing: the filter that produced `sel` already charged the
/// scan, matching the row engine's accounting.
std::vector<Row> GatherRows(const ColumnarTable& table, const SelVector& sel);

/// Drop-in replacement for GroupAggregate over materialized rows (the
/// post-join aggregation path): converts to a transient columnar image and
/// runs the vectorized aggregation when the input is large enough to
/// amortize conversion and every referenced column is vectorizable;
/// otherwise falls back to the row engine. `*used_vectorized` reports which
/// engine ran (for EXPLAIN ANALYZE labels and stats).
std::vector<Row> VectorizedGroupAggregateRows(const std::vector<Row>& rows,
                                              const std::vector<int>& group_cols,
                                              const std::vector<AggSpec>& aggs,
                                              ExecContext* ctx,
                                              bool* used_vectorized);

}  // namespace aqv

#endif  // AQV_EXEC_VECTORIZED_H_
