#include "exec/vectorized.h"

#include <algorithm>
#include <array>
#include <bit>
#include <unordered_map>

namespace aqv {

namespace {

/// Maps a three-way comparison result through `op` (EvalCmp's final switch).
inline bool CmpPass(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

/// Numeric column value as double — the representation EvalCmp compares in
/// (AsDouble on both sides), so INT64/DOUBLE cross comparisons match the
/// row engine bit-for-bit.
inline double NumAt(const Column& c, size_t r) {
  return c.type == ColumnType::kInt64 ? static_cast<double>(c.i64[r])
                                      : c.f64[r];
}

inline int Sign(int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); }

using Pred = CompiledFilter::Pred;

bool PredPass(const Pred& p, const ColumnarTable& t, size_t r) {
  switch (p.kind) {
    case Pred::Kind::kAlwaysTrue:
      return true;
    case Pred::Kind::kAlwaysFalse:
      return false;
    case Pred::Kind::kNumConst: {
      const Column& c = t.col(p.lhs_col);
      if (c.IsNull(r)) return false;
      double d = NumAt(c, r);
      return CmpPass(p.op, d < p.cval ? -1 : (d > p.cval ? 1 : 0));
    }
    case Pred::Kind::kStrConst: {
      const Column& c = t.col(p.lhs_col);
      if (c.IsNull(r)) return false;
      return p.dict_pass[static_cast<size_t>(c.codes[r])] != 0;
    }
    case Pred::Kind::kNumNum: {
      const Column& lc = t.col(p.lhs_col);
      const Column& rc = t.col(p.rhs_col);
      if (lc.IsNull(r) || rc.IsNull(r)) return false;
      double a = NumAt(lc, r), b = NumAt(rc, r);
      return CmpPass(p.op, a < b ? -1 : (a > b ? 1 : 0));
    }
    case Pred::Kind::kStrStr: {
      const Column& lc = t.col(p.lhs_col);
      const Column& rc = t.col(p.rhs_col);
      if (lc.IsNull(r) || rc.IsNull(r)) return false;
      int cm = lc.dict[static_cast<size_t>(lc.codes[r])].compare(
          rc.dict[static_cast<size_t>(rc.codes[r])]);
      return CmpPass(p.op, Sign(cm));
    }
    case Pred::Kind::kNotNullNe: {
      if (t.col(p.lhs_col).IsNull(r)) return false;
      if (p.rhs_col >= 0 && t.col(p.rhs_col).IsNull(r)) return false;
      return true;
    }
  }
  return false;
}

template <typename T, typename Cmp>
inline void AppendCmp(const T* v, const Column& c, size_t base, size_t end,
                      double cv, Cmp cmp, SelVector* sel) {
  if (!c.has_nulls) {
    for (size_t r = base; r < end; ++r) {
      if (cmp(static_cast<double>(v[r]), cv)) {
        sel->push_back(static_cast<uint32_t>(r));
      }
    }
  } else {
    for (size_t r = base; r < end; ++r) {
      if (!c.IsNull(r) && cmp(static_cast<double>(v[r]), cv)) {
        sel->push_back(static_cast<uint32_t>(r));
      }
    }
  }
}

template <typename T>
void AppendNumConst(const T* v, const Column& c, size_t base, size_t end,
                    CmpOp op, double cv, SelVector* sel) {
  switch (op) {
    case CmpOp::kEq:
      AppendCmp(v, c, base, end, cv, [](double a, double b) { return a == b; },
                sel);
      break;
    case CmpOp::kNe:
      AppendCmp(v, c, base, end, cv, [](double a, double b) { return a != b; },
                sel);
      break;
    case CmpOp::kLt:
      AppendCmp(v, c, base, end, cv, [](double a, double b) { return a < b; },
                sel);
      break;
    case CmpOp::kLe:
      AppendCmp(v, c, base, end, cv, [](double a, double b) { return a <= b; },
                sel);
      break;
    case CmpOp::kGt:
      AppendCmp(v, c, base, end, cv, [](double a, double b) { return a > b; },
                sel);
      break;
    case CmpOp::kGe:
      AppendCmp(v, c, base, end, cv, [](double a, double b) { return a >= b; },
                sel);
      break;
  }
}

/// First conjunct over one batch: appends passing row ids to `sel`. The
/// numeric-vs-constant shape (the dominant scan predicate) gets dedicated
/// typed loops with the comparator hoisted out.
void AppendPassing(const Pred& p, const ColumnarTable& t, size_t base,
                   size_t end, SelVector* sel) {
  if (p.kind == Pred::Kind::kNumConst) {
    const Column& c = t.col(p.lhs_col);
    if (c.type == ColumnType::kInt64) {
      AppendNumConst(c.i64.data(), c, base, end, p.op, p.cval, sel);
    } else {
      AppendNumConst(c.f64.data(), c, base, end, p.op, p.cval, sel);
    }
    return;
  }
  for (size_t r = base; r < end; ++r) {
    if (PredPass(p, t, r)) sel->push_back(static_cast<uint32_t>(r));
  }
}

/// Later conjuncts: compacts the batch's slice of `sel` in place.
void RefinePassing(const Pred& p, const ColumnarTable& t, SelVector* sel,
                   size_t from) {
  size_t w = from;
  for (size_t i = from; i < sel->size(); ++i) {
    uint32_t r = (*sel)[i];
    if (PredPass(p, t, r)) (*sel)[w++] = r;
  }
  sel->resize(w);
}

}  // namespace

bool CompiledFilter::Compile(const std::vector<Predicate>& preds,
                             const ColumnIndexMap& layout,
                             const ColumnarTable& table, CompiledFilter* out) {
  out->preds_.clear();
  out->preds_.reserve(preds.size());
  for (const Predicate& p : preds) {
    if (!p.IsScalar()) return false;
    // Resolve each operand the way EvalScalarPredicate does: constants pass
    // through, columns go through the layout, anything unresolvable becomes
    // a NULL constant (which makes the predicate constant-false).
    struct Res {
      bool is_const;
      Value cv;
      int col;
    };
    auto resolve = [&](const Operand& o) -> Res {
      if (o.is_constant()) return {true, o.constant, -1};
      auto it = layout.find(o.column);
      if (it == layout.end() || it->second < 0 ||
          it->second >= table.num_columns()) {
        return {true, Value::Null(), -1};
      }
      return {false, Value(), it->second};
    };
    Res l = resolve(p.lhs), r = resolve(p.rhs);
    if (!l.is_const && !table.ColumnVectorizable(l.col)) return false;
    if (!r.is_const && !table.ColumnVectorizable(r.col)) return false;

    Pred c;
    c.op = p.op;
    if (l.is_const && r.is_const) {
      c.kind = EvalCmp(l.cv, p.op, r.cv) ? Pred::Kind::kAlwaysTrue
                                         : Pred::Kind::kAlwaysFalse;
    } else if (l.is_const || r.is_const) {
      // Normalize to `column op constant` (flip when the constant is lhs).
      int col = l.is_const ? r.col : l.col;
      const Value& cv = l.is_const ? l.cv : r.cv;
      CmpOp op = l.is_const ? FlipCmpOp(p.op) : p.op;
      c.lhs_col = col;
      c.op = op;
      const Column& cc = table.col(col);
      if (cv.is_null()) {
        c.kind = Pred::Kind::kAlwaysFalse;
      } else if (cc.type == ColumnType::kString) {
        if (cv.type() == ValueType::kString) {
          // Hoist the comparison out of the scan: one verdict per dict code.
          c.kind = Pred::Kind::kStrConst;
          c.dict_pass.resize(cc.dict.size());
          for (size_t i = 0; i < cc.dict.size(); ++i) {
            c.dict_pass[i] =
                CmpPass(op, Sign(cc.dict[i].compare(cv.str()))) ? 1 : 0;
          }
        } else {
          c.kind = op == CmpOp::kNe ? Pred::Kind::kNotNullNe
                                    : Pred::Kind::kAlwaysFalse;
        }
      } else {  // numeric column
        if (cv.is_numeric()) {
          c.kind = Pred::Kind::kNumConst;
          c.cval = cv.AsDouble();
        } else {
          c.kind = op == CmpOp::kNe ? Pred::Kind::kNotNullNe
                                    : Pred::Kind::kAlwaysFalse;
        }
      }
    } else {
      c.lhs_col = l.col;
      c.rhs_col = r.col;
      bool lnum = table.col(l.col).type != ColumnType::kString;
      bool rnum = table.col(r.col).type != ColumnType::kString;
      if (lnum && rnum) {
        c.kind = Pred::Kind::kNumNum;
      } else if (!lnum && !rnum) {
        c.kind = Pred::Kind::kStrStr;
      } else {
        c.kind = p.op == CmpOp::kNe ? Pred::Kind::kNotNullNe
                                    : Pred::Kind::kAlwaysFalse;
      }
    }
    out->preds_.push_back(std::move(c));
  }
  return true;
}

SelVector CompiledFilter::Run(const ColumnarTable& table,
                              ExecContext* ctx) const {
  const size_t n = table.num_rows();
  SelVector sel;
  if (preds_.empty()) {
    // Identity selection; FilterRows charges nothing for an empty
    // conjunction, so neither do we.
    sel.resize(n);
    for (size_t r = 0; r < n; ++r) sel[r] = static_cast<uint32_t>(r);
    return sel;
  }
  sel.reserve(n);
  for (size_t base = 0; base < n; base += kBatchRows) {
    const size_t end = std::min(n, base + kBatchRows);
    // Charge the whole batch up front; kBatchRows == kCheckStride, so this
    // also re-checks the deadline/cancel flag once per batch.
    if (ctx != nullptr && !ctx->TickRows(end - base)) break;
    const size_t mark = sel.size();
    AppendPassing(preds_[0], table, base, end, &sel);
    for (size_t p = 1; p < preds_.size(); ++p) {
      if (sel.size() == mark) break;
      RefinePassing(preds_[p], table, &sel, mark);
    }
  }
  return sel;
}

std::vector<Row> GatherRows(const ColumnarTable& table, const SelVector& sel) {
  std::vector<Row> out;
  out.reserve(sel.size());
  for (uint32_t r : sel) {
    Row row;
    table.AppendRowTo(r, &row);
    out.push_back(std::move(row));
  }
  return out;
}

namespace {

/// Packed canonical group key: (tag, bits) per grouping column, zero-padded
/// to the maximum width so the map type is fixed. Tags: 0 NULL, 1 integer
/// space (INT64 and integral DOUBLE collapse here — CanonicalKey's rule),
/// 2 non-integral DOUBLE (IEEE bits), 3 string (dictionary code).
using GroupKey = std::array<uint64_t, 2 * VectorizedAggregation::kMaxGroupCols>;

struct GroupKeyHash {
  size_t words;
  size_t operator()(const GroupKey& k) const {
    uint64_t h = 1469598103934665603ULL;
    for (size_t i = 0; i < words; ++i) {
      h ^= k[i];
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Mirrors Aggregator's accumulator state; which fields are live is decided
/// by the compiled (fn, stream) pair, so the struct carries no tags.
struct AggState {
  int64_t sum_i = 0;
  double sum_d = 0.0;
  int64_t cnt = 0;
  int64_t ext_i = 0;
  double ext_d = 0.0;
  int32_t ext_code = -1;
  bool any = false;
};

inline void EncodeKeyCol(const Column& c, size_t r, uint64_t* tag,
                         uint64_t* bits) {
  if (c.IsNull(r)) {
    *tag = 0;
    *bits = 0;
    return;
  }
  switch (c.type) {
    case ColumnType::kInt64:
      *tag = 1;
      *bits = static_cast<uint64_t>(c.i64[r]);
      break;
    case ColumnType::kDouble: {
      double d = c.f64[r];
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) {
        *tag = 1;
        *bits = static_cast<uint64_t>(i);
      } else {
        *tag = 2;
        *bits = std::bit_cast<uint64_t>(d);
      }
      break;
    }
    case ColumnType::kString:
      *tag = 3;
      *bits = static_cast<uint64_t>(static_cast<uint32_t>(c.codes[r]));
      break;
    case ColumnType::kMixed:
      break;  // rejected at Compile
  }
}

}  // namespace

bool VectorizedAggregation::Compile(const ColumnarTable& table,
                                    const std::vector<int>& group_cols,
                                    const std::vector<AggSpec>& aggs,
                                    VectorizedAggregation* out) {
  if (group_cols.size() > kMaxGroupCols) return false;
  for (int g : group_cols) {
    if (!table.ColumnVectorizable(g)) return false;
  }
  out->group_cols_ = group_cols;
  out->aggs_.clear();
  out->aggs_.reserve(aggs.size());
  for (const AggSpec& a : aggs) {
    Agg c;
    c.fn = a.fn;
    c.col = a.column;
    c.mult = a.multiplier;
    if (!table.ColumnVectorizable(a.column)) return false;
    ColumnType ct = table.col(a.column).type;
    if (a.multiplier >= 0) {
      if (!table.ColumnVectorizable(a.multiplier)) return false;
      ColumnType mt = table.col(a.multiplier).type;
      if (ct == ColumnType::kString || mt == ColumnType::kString) {
        // NumericProduct of a non-numeric operand is NULL for every row.
        c.stream = Stream::kNullStream;
      } else if (ct == ColumnType::kInt64 && mt == ColumnType::kInt64) {
        c.stream = Stream::kInt;
      } else {
        c.stream = Stream::kDbl;
      }
    } else {
      c.stream = ct == ColumnType::kInt64    ? Stream::kInt
                 : ct == ColumnType::kDouble ? Stream::kDbl
                                             : Stream::kStr;
    }
    // SUM/AVG over a string column would hit AsDouble on a string in the
    // row engine; keep that path byte-identical by not vectorizing it.
    if ((a.fn == AggFn::kSum || a.fn == AggFn::kAvg) &&
        c.stream == Stream::kStr) {
      return false;
    }
    out->aggs_.push_back(c);
  }
  return true;
}

std::vector<Row> VectorizedAggregation::Run(const ColumnarTable& table,
                                            const SelVector* sel,
                                            ExecContext* ctx) const {
  const size_t total = sel != nullptr ? sel->size() : table.num_rows();
  const size_t nspecs = aggs_.size();
  const size_t ng = group_cols_.size();

  std::unordered_map<GroupKey, uint32_t, GroupKeyHash> gmap(
      16, GroupKeyHash{2 * ng});
  std::vector<uint32_t> first_rows;
  std::vector<AggState> states;
  if (ng == 0) {
    // Global aggregate: exactly one group, present even on empty input.
    first_rows.push_back(0);
    states.resize(nspecs);
  }

  std::vector<uint32_t> gids(kBatchRows);
  for (size_t base = 0; base < total; base += kBatchRows) {
    const size_t bn = std::min(kBatchRows, total - base);
    if (ctx != nullptr && !ctx->TickRows(bn)) break;
    const uint32_t* selp = sel != nullptr ? sel->data() + base : nullptr;

    // Stage 1: group-id per row.
    if (ng == 0) {
      std::fill_n(gids.begin(), bn, 0u);
    } else {
      GroupKey key{};
      for (size_t k = 0; k < bn; ++k) {
        size_t r = selp != nullptr ? selp[k] : base + k;
        for (size_t g = 0; g < ng; ++g) {
          EncodeKeyCol(table.col(group_cols_[g]), r, &key[2 * g],
                       &key[2 * g + 1]);
        }
        auto [it, inserted] =
            gmap.try_emplace(key, static_cast<uint32_t>(first_rows.size()));
        if (inserted) {
          first_rows.push_back(static_cast<uint32_t>(r));
          states.resize(states.size() + nspecs);
        }
        gids[k] = it->second;
      }
    }

    // Stage 2: per-aggregate typed accumulation over the batch.
    for (size_t s = 0; s < nspecs; ++s) {
      const Agg& a = aggs_[s];
      if (a.stream == Stream::kNullStream) continue;
      auto state = [&](size_t k) -> AggState& {
        return states[gids[k] * nspecs + s];
      };
      auto row_of = [&](size_t k) {
        return selp != nullptr ? static_cast<size_t>(selp[k]) : base + k;
      };
      const Column& c = table.col(a.col);
      const Column* m = a.mult >= 0 ? &table.col(a.mult) : nullptr;

      switch (a.fn) {
        case AggFn::kSum:
        case AggFn::kAvg:
          if (a.stream == Stream::kInt) {
            for (size_t k = 0; k < bn; ++k) {
              size_t r = row_of(k);
              if (c.IsNull(r) || (m != nullptr && m->IsNull(r))) continue;
              int64_t v = m != nullptr ? c.i64[r] * m->i64[r] : c.i64[r];
              AggState& st = state(k);
              st.sum_i += v;
              st.sum_d += static_cast<double>(v);
              ++st.cnt;
              st.any = true;
            }
          } else {
            for (size_t k = 0; k < bn; ++k) {
              size_t r = row_of(k);
              if (c.IsNull(r) || (m != nullptr && m->IsNull(r))) continue;
              double v = m != nullptr ? NumAt(c, r) * NumAt(*m, r) : NumAt(c, r);
              AggState& st = state(k);
              st.sum_d += v;
              ++st.cnt;
              st.any = true;
            }
          }
          break;
        case AggFn::kCount:
          for (size_t k = 0; k < bn; ++k) {
            size_t r = row_of(k);
            if (c.IsNull(r) || (m != nullptr && m->IsNull(r))) continue;
            AggState& st = state(k);
            ++st.cnt;
            st.any = true;
          }
          break;
        case AggFn::kMin:
        case AggFn::kMax: {
          const bool is_min = a.fn == AggFn::kMin;
          if (a.stream == Stream::kInt) {
            for (size_t k = 0; k < bn; ++k) {
              size_t r = row_of(k);
              if (c.IsNull(r) || (m != nullptr && m->IsNull(r))) continue;
              int64_t v = m != nullptr ? c.i64[r] * m->i64[r] : c.i64[r];
              AggState& st = state(k);
              // Strict double comparison like EvalCmp: first value wins
              // ties, including int64 pairs that collapse as doubles.
              double d = static_cast<double>(v);
              double e = static_cast<double>(st.ext_i);
              if (!st.any || (is_min ? d < e : d > e)) st.ext_i = v;
              st.any = true;
            }
          } else if (a.stream == Stream::kDbl) {
            for (size_t k = 0; k < bn; ++k) {
              size_t r = row_of(k);
              if (c.IsNull(r) || (m != nullptr && m->IsNull(r))) continue;
              double v = m != nullptr ? NumAt(c, r) * NumAt(*m, r) : NumAt(c, r);
              AggState& st = state(k);
              if (!st.any || (is_min ? v < st.ext_d : v > st.ext_d)) {
                st.ext_d = v;
              }
              st.any = true;
            }
          } else {  // Stream::kStr (unscaled: a string mult is kNullStream)
            for (size_t k = 0; k < bn; ++k) {
              size_t r = row_of(k);
              if (c.IsNull(r)) continue;
              int32_t code = c.codes[r];
              AggState& st = state(k);
              if (!st.any) {
                st.ext_code = code;
              } else if (code != st.ext_code) {
                int cm = c.dict[static_cast<size_t>(code)].compare(
                    c.dict[static_cast<size_t>(st.ext_code)]);
                if (is_min ? cm < 0 : cm > 0) st.ext_code = code;
              }
              st.any = true;
            }
          }
          break;
        }
      }
    }
  }

  // Emit [group values..., aggregate finishes...]; group values are the
  // first-encountered originals, like GroupAggregate.
  std::vector<Row> out;
  out.reserve(first_rows.size());
  for (size_t g = 0; g < first_rows.size(); ++g) {
    Row row;
    row.reserve(ng + nspecs);
    for (size_t i = 0; i < ng; ++i) {
      row.push_back(table.ValueAt(group_cols_[i], first_rows[g]));
    }
    for (size_t s = 0; s < nspecs; ++s) {
      const Agg& a = aggs_[s];
      const AggState& st = states[g * nspecs + s];
      switch (a.fn) {
        case AggFn::kMin:
        case AggFn::kMax:
          if (!st.any) {
            row.push_back(Value::Null());
          } else if (a.stream == Stream::kInt) {
            row.push_back(Value::Int64(st.ext_i));
          } else if (a.stream == Stream::kDbl) {
            row.push_back(Value::Double(st.ext_d));
          } else {
            row.push_back(Value::String(
                table.col(a.col).dict[static_cast<size_t>(st.ext_code)]));
          }
          break;
        case AggFn::kSum:
          if (!st.any) {
            row.push_back(Value::Null());
          } else if (a.stream == Stream::kInt) {
            row.push_back(Value::Int64(st.sum_i));
          } else {
            row.push_back(Value::Double(st.sum_d));
          }
          break;
        case AggFn::kCount:
          row.push_back(Value::Int64(st.cnt));
          break;
        case AggFn::kAvg:
          row.push_back(st.cnt == 0
                            ? Value::Null()
                            : Value::Double(st.sum_d /
                                            static_cast<double>(st.cnt)));
          break;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<Row> VectorizedGroupAggregateRows(const std::vector<Row>& rows,
                                              const std::vector<int>& group_cols,
                                              const std::vector<AggSpec>& aggs,
                                              ExecContext* ctx,
                                              bool* used_vectorized) {
  *used_vectorized = false;
  // Below ~two batches the row engine wins: conversion is O(rows) and the
  // compiled dispatch never amortizes.
  if (rows.size() < 2 * kBatchRows) {
    return GroupAggregate(rows, group_cols, aggs, ctx);
  }
  ColumnarTable table =
      ColumnarTable::FromRows(rows, static_cast<int>(rows[0].size()));
  VectorizedAggregation agg;
  if (!VectorizedAggregation::Compile(table, group_cols, aggs, &agg)) {
    return GroupAggregate(rows, group_cols, aggs, ctx);
  }
  *used_vectorized = true;
  return agg.Run(table, nullptr, ctx);
}

}  // namespace aqv
