#include "exec/expression.h"

namespace aqv {

bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;

  bool comparable = (lhs.is_numeric() && rhs.is_numeric()) ||
                    (lhs.type() == ValueType::kString &&
                     rhs.type() == ValueType::kString);
  if (!comparable) {
    // Cross-family: never equal, never ordered.
    return op == CmpOp::kNe;
  }

  int c;
  if (lhs.is_numeric()) {
    double a = lhs.AsDouble(), b = rhs.AsDouble();
    c = a < b ? -1 : (a > b ? 1 : 0);
  } else {
    c = lhs.str().compare(rhs.str());
    c = c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

namespace {

Value ResolveOperand(const Operand& o, const Row& row,
                     const ColumnIndexMap& layout) {
  if (o.is_constant()) return o.constant;
  auto it = layout.find(o.column);
  if (it == layout.end() || it->second < 0 ||
      it->second >= static_cast<int>(row.size())) {
    return Value::Null();
  }
  return row[it->second];
}

}  // namespace

bool EvalScalarPredicate(const Predicate& pred, const Row& row,
                         const ColumnIndexMap& layout) {
  Value lhs = ResolveOperand(pred.lhs, row, layout);
  Value rhs = ResolveOperand(pred.rhs, row, layout);
  return EvalCmp(lhs, pred.op, rhs);
}

}  // namespace aqv
