#ifndef AQV_EXEC_EVALUATOR_H_
#define AQV_EXEC_EVALUATOR_H_

#include <map>
#include <string>

#include "base/result.h"
#include "exec/table.h"
#include "ir/query.h"
#include "ir/views.h"

namespace aqv {

/// Evaluation knobs. The default plan pushes single-table filters below the
/// joins and uses greedy left-deep hash equi-joins; the reference plan is a
/// filtered Cartesian product, used by tests as an executable specification
/// of multiset semantics.
struct EvalOptions {
  bool use_hash_join = true;
};

/// Counters for benches and plan-quality assertions.
struct EvalStats {
  size_t peak_intermediate_rows = 0;
  size_t views_materialized = 0;
};

/// Executes single-block queries against a Database under multiset
/// semantics. A FROM entry naming a table stored in the Database scans the
/// stored contents (this is how *materialized* views are served); a FROM
/// entry naming a registered but unmaterialized view is computed on demand
/// from its definition and cached for the lifetime of the Evaluator.
class Evaluator {
 public:
  explicit Evaluator(const Database* db, const ViewRegistry* views = nullptr,
                     EvalOptions options = EvalOptions{})
      : db_(db), views_(views), options_(options) {}

  /// Evaluates `query`; output columns are query.OutputColumns().
  Result<Table> Execute(const Query& query);

  /// Materializes the named view from its registered definition (through the
  /// cache). Use the result with Database::Put to simulate a maintained
  /// materialized view.
  Result<Table> MaterializeView(const std::string& name);

  const EvalStats& stats() const { return stats_; }
  void ClearViewCache() { view_cache_.clear(); }

 private:
  static constexpr int kMaxViewDepth = 16;

  Result<Table> ExecuteInternal(const Query& query, int depth);
  Result<const Table*> InputTable(const std::string& name, int depth);

  const Database* db_;
  const ViewRegistry* views_;
  EvalOptions options_;
  std::map<std::string, Table> view_cache_;
  EvalStats stats_;
};

}  // namespace aqv

#endif  // AQV_EXEC_EVALUATOR_H_
