#ifndef AQV_EXEC_EVALUATOR_H_
#define AQV_EXEC_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/exec_context.h"
#include "base/result.h"
#include "exec/table.h"
#include "ir/query.h"
#include "ir/views.h"

namespace aqv {

/// One executed operator of a profiled query: the label matches the
/// EXPLAIN plan rendering ("Scan R [100 rows] filter(...)", "HashJoin(...)
/// with S [10 rows]", "HashAggregate(...)", ...); rows and micros are
/// actuals observed during execution. Scan labels keep the "[N rows]"
/// stored-cardinality annotation — the number the cost model estimates
/// from — so EXPLAIN ANALYZE shows estimate and actual side by side.
struct OperatorProfile {
  std::string label;
  size_t rows_in = 0;
  size_t rows_out = 0;
  uint64_t micros = 0;
};

/// Per-operator runtime profile of one top-level Execute call (the data
/// behind EXPLAIN ANALYZE). Nested blocks are not expanded: a registered
/// view computed on demand appears as a single "Materialize" operator.
struct PlanProfile {
  std::vector<OperatorProfile> ops;
  uint64_t total_micros = 0;
};

/// Evaluation knobs. The default plan pushes single-table filters below the
/// joins and uses greedy left-deep hash equi-joins; the reference plan is a
/// filtered Cartesian product, used by tests as an executable specification
/// of multiset semantics.
struct EvalOptions {
  bool use_hash_join = true;
  /// Batch-at-a-time columnar execution (exec/vectorized.h) for scans,
  /// filters and hash-group aggregation, over the table's cached columnar
  /// image. Operators without a vectorized implementation — joins,
  /// HAVING, final projection, anything touching a mixed-type column —
  /// fall back to the row engine per operator; results are identical
  /// either way (enforced by tests/vectorized_differential_test.cc). Only
  /// effective with use_hash_join: the Cartesian reference plan stays pure
  /// row-at-a-time, as it is the executable specification tests compare
  /// against.
  bool vectorized = true;
};

/// Counters for benches and plan-quality assertions.
struct EvalStats {
  size_t peak_intermediate_rows = 0;
  size_t views_materialized = 0;
  /// Operators executed by the vectorized engine, cumulative across
  /// Execute calls (scans/filters and aggregations count separately). Lets
  /// tests assert the columnar path actually engaged rather than silently
  /// falling back.
  size_t vectorized_ops = 0;
};

/// Executes single-block queries against a Database under multiset
/// semantics. A FROM entry naming a table stored in the Database scans the
/// stored contents (this is how *materialized* views are served); a FROM
/// entry naming a registered but unmaterialized view is computed on demand
/// from its definition and cached for the lifetime of the Evaluator.
class Evaluator {
 public:
  explicit Evaluator(const Database* db, const ViewRegistry* views = nullptr,
                     EvalOptions options = EvalOptions{})
      : db_(db), views_(views), options_(options) {}

  /// Evaluates `query`; output columns are query.OutputColumns().
  Result<Table> Execute(const Query& query);

  /// Materializes the named view from its registered definition (through the
  /// cache). Use the result with Database::Put to simulate a maintained
  /// materialized view.
  Result<Table> MaterializeView(const std::string& name);

  const EvalStats& stats() const { return stats_; }
  void ClearViewCache() {
    view_cache_.clear();
    pinned_.clear();
  }

  /// Attaches a per-operator profile collector to subsequent Execute calls
  /// (top-level stages only). `profile` must outlive the Evaluator or be
  /// detached with set_profile(nullptr); it is cleared on each Execute.
  /// Null (the default) disables collection — and its timing overhead.
  void set_profile(PlanProfile* profile) { profile_ = profile; }

  /// Attaches per-statement resource governance (deadline, row budget,
  /// cancel) to subsequent Execute calls, including nested view
  /// materialization. When a limit trips mid-operator, Execute discards the
  /// partial output and returns the context's status. `ctx` must outlive
  /// the Evaluator or be detached with set_context(nullptr).
  void set_context(ExecContext* ctx) { ctx_ = ctx; }

 private:
  static constexpr int kMaxViewDepth = 16;

  Result<Table> ExecuteInternal(const Query& query, int depth);
  Result<const Table*> InputTable(const std::string& name, int depth);

  const Database* db_;
  const ViewRegistry* views_;
  EvalOptions options_;
  std::map<std::string, Table> view_cache_;
  /// Stored-table versions read so far: pinning the shared_ptr makes every
  /// read of one name repeatable within this Evaluator and keeps the rows
  /// alive even if a writer replaces the stored version mid-execution.
  std::map<std::string, TablePtr> pinned_;
  EvalStats stats_;
  PlanProfile* profile_ = nullptr;
  ExecContext* ctx_ = nullptr;
};

}  // namespace aqv

#endif  // AQV_EXEC_EVALUATOR_H_
