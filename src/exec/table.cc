#include "exec/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "base/strings.h"
#include "exec/column_batch.h"

namespace aqv {

Table::Table() : columnar_(std::make_shared<ColumnarSlot>()) {}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)), columnar_(std::make_shared<ColumnarSlot>()) {}

Table::Table(const Table& other)
    : columns_(other.columns_),
      rows_(other.rows_),
      columnar_(std::make_shared<ColumnarSlot>()) {}

Table::Table(Table&& other) noexcept
    : columns_(std::move(other.columns_)),
      rows_(std::move(other.rows_)),
      columnar_(std::move(other.columnar_)) {
  other.columnar_ = std::make_shared<ColumnarSlot>();
}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  columns_ = other.columns_;
  rows_ = other.rows_;
  columnar_ = std::make_shared<ColumnarSlot>();
  return *this;
}

Table& Table::operator=(Table&& other) noexcept {
  if (this == &other) return *this;
  columns_ = std::move(other.columns_);
  rows_ = std::move(other.rows_);
  columnar_ = std::move(other.columnar_);
  other.columnar_ = std::make_shared<ColumnarSlot>();
  return *this;
}

Table::~Table() = default;

const ColumnarTable& Table::columnar() const {
  ColumnarSlot* slot = columnar_.get();
  std::call_once(slot->once, [&] {
    slot->image = std::make_unique<const ColumnarTable>(
        ColumnarTable::FromRows(rows_, num_columns()));
    slot->built.store(true, std::memory_order_release);
  });
  return *slot->image;
}

void Table::InvalidateColumnar() {
  // Replacing the slot (rather than clearing it) keeps columnar() free of
  // pointer races; skip the allocation while nothing was ever built.
  if (!columnar_->built.load(std::memory_order_acquire)) return;
  columnar_ = std::make_shared<ColumnarSlot>();
}

int Table::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return static_cast<int>(i);
  }
  return -1;
}

Status Table::AddRow(Row row) {
  if (static_cast<int>(row.size()) != num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != table arity " +
        std::to_string(num_columns()));
  }
  InvalidateColumnar();
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::AddRows(std::vector<Row> rows) {
  for (const Row& row : rows) {
    if (static_cast<int>(row.size()) != num_columns()) {
      return Status::InvalidArgument(
          "row arity " + std::to_string(row.size()) + " != table arity " +
          std::to_string(num_columns()));
    }
  }
  InvalidateColumnar();
  rows_.reserve(rows_.size() + rows.size());
  for (Row& row : rows) rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::AddRowOrDie(Row row) {
  Status s = AddRow(std::move(row));
  if (!s.ok()) {
    std::fprintf(stderr, "Table::AddRowOrDie: %s\n", s.ToString().c_str());
    std::abort();
  }
}

size_t Table::ApproxBytes() const {
  size_t bytes = sizeof(Table);
  for (const std::string& c : columns_) {
    bytes += sizeof(std::string) + c.capacity();
  }
  bytes += rows_.capacity() * sizeof(Row);
  for (const Row& row : rows_) {
    bytes += row.capacity() * sizeof(Value);
    for (const Value& v : row) {
      if (v.type() == ValueType::kString) bytes += v.str().capacity();
    }
  }
  // The cached columnar pivot belongs to this version and dies with it; an
  // MVCC ledger that ignored it would undercount exactly the garbage the
  // reclamation test exists to bound.
  if (columnar_->built.load(std::memory_order_acquire)) {
    const ColumnarTable& img = *columnar_->image;
    for (int i = 0; i < img.num_columns(); ++i) {
      const Column& col = img.col(i);
      bytes += col.null_words.capacity() * sizeof(uint64_t);
      bytes += col.i64.capacity() * sizeof(int64_t);
      bytes += col.f64.capacity() * sizeof(double);
      bytes += col.codes.capacity() * sizeof(int32_t);
      for (const std::string& s : col.dict) {
        bytes += sizeof(std::string) + s.capacity();
      }
      bytes += col.mixed.capacity() * sizeof(Value);
    }
  }
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << Join(columns_, " | ") << "\n";
  size_t shown = 0;
  for (const Row& row : rows_) {
    if (shown++ >= max_rows) {
      os << "... (" << rows_.size() << " rows total)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << " | ";
      os << row[i].ToString();
    }
    os << "\n";
  }
  return os.str();
}

Database::Database(const Database& other) {
  std::shared_lock<std::shared_mutex> lock(other.mu_);
  tables_ = other.tables_;
  epoch_ = other.epoch_;
}

Database::Database(Database&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  tables_ = std::move(other.tables_);
  retired_ = std::move(other.retired_);
  epoch_ = other.epoch_;
}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  std::map<std::string, Versioned> copy;
  uint64_t epoch;
  {
    std::shared_lock<std::shared_mutex> lock(other.mu_);
    copy = other.tables_;
    epoch = other.epoch_;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  tables_ = std::move(copy);
  epoch_ = epoch;
  return *this;
}

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  std::map<std::string, Versioned> taken;
  std::map<std::string, std::vector<Retired>> retired;
  uint64_t epoch;
  {
    std::unique_lock<std::shared_mutex> lock(other.mu_);
    taken = std::move(other.tables_);
    retired = std::move(other.retired_);
    epoch = other.epoch_;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  tables_ = std::move(taken);
  retired_ = std::move(retired);
  epoch_ = epoch;
  return *this;
}

void Database::Put(std::string name, Table table) {
  Put(std::move(name), std::make_shared<const Table>(std::move(table)));
}

void Database::Put(std::string name, TablePtr table) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  Versioned& slot = tables_[name];
  RetireLocked(name, slot);
  slot.table = std::move(table);
  slot.version = ++epoch_;
}

void Database::PutAll(std::vector<std::pair<std::string, TablePtr>> tables) {
  if (tables.empty()) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  const uint64_t version = ++epoch_;
  for (auto& [name, table] : tables) {
    Versioned& slot = tables_[name];
    RetireLocked(name, slot);
    slot.table = std::move(table);
    slot.version = version;
  }
}

void Database::RetireLocked(const std::string& name, const Versioned& slot) {
  std::vector<Retired>& ledger = retired_[name];
  ledger.erase(std::remove_if(ledger.begin(), ledger.end(),
                              [](const Retired& r) { return r.table.expired(); }),
               ledger.end());
  if (slot.table != nullptr) {
    ledger.push_back(Retired{slot.table, slot.version});
  }
}

std::vector<Database::TableMvcc> Database::MvccStats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<TableMvcc> out;
  out.reserve(tables_.size());
  for (const auto& [name, versioned] : tables_) {
    TableMvcc m;
    m.table = name;
    m.versions_alive = versioned.table != nullptr ? 1 : 0;
    auto it = retired_.find(name);
    if (it != retired_.end()) {
      for (const Retired& r : it->second) {
        TablePtr pinned = r.table.lock();
        if (pinned == nullptr) continue;
        ++m.versions_alive;
        m.bytes_pinned += pinned->ApproxBytes();
        if (m.oldest_pinned_epoch == 0 || r.version < m.oldest_pinned_epoch) {
          m.oldest_pinned_epoch = r.version;
        }
      }
    }
    out.push_back(std::move(m));
  }
  return out;
}

uint64_t Database::OldestPinnedEpoch() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t oldest = 0;
  for (const auto& [name, ledger] : retired_) {
    for (const Retired& r : ledger) {
      if (r.table.expired()) continue;
      if (oldest == 0 || r.version < oldest) oldest = r.version;
    }
  }
  return oldest;
}

bool Database::Has(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tables_.count(name) > 0;
}

Result<const Table*> Database::Get(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not in database");
  }
  return it->second.table.get();
}

TablePtr Database::GetShared(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.table;
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, versioned] : tables_) names.push_back(name);
  return names;
}

uint64_t Database::epoch() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return epoch_;
}

uint64_t Database::VersionOf(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? 0 : it->second.version;
}

namespace {

// Row -> multiplicity.
std::unordered_map<Row, int64_t, RowHash, RowEq> Histogram(const Table& t) {
  std::unordered_map<Row, int64_t, RowHash, RowEq> h;
  h.reserve(t.num_rows());
  for (const Row& row : t.rows()) ++h[row];
  return h;
}

}  // namespace

bool MultisetEqual(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) return false;
  if (a.num_rows() != b.num_rows()) return false;
  auto ha = Histogram(a);
  for (const Row& row : b.rows()) {
    auto it = ha.find(row);
    if (it == ha.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

bool MultisetAlmostEqual(const Table& a, const Table& b,
                         double relative_tolerance) {
  if (a.num_columns() != b.num_columns()) return false;
  if (a.num_rows() != b.num_rows()) return false;
  std::vector<Row> ra = a.rows(), rb = b.rows();
  auto by_total_order = [](const Row& x, const Row& y) {
    return CompareRows(x, y) < 0;
  };
  std::sort(ra.begin(), ra.end(), by_total_order);
  std::sort(rb.begin(), rb.end(), by_total_order);
  auto value_close = [relative_tolerance](const Value& x, const Value& y) {
    if (x.is_numeric() && y.is_numeric()) {
      double dx = x.AsDouble(), dy = y.AsDouble();
      double scale = std::max({1.0, std::abs(dx), std::abs(dy)});
      return std::abs(dx - dy) <= relative_tolerance * scale;
    }
    return x.Compare(y) == 0;
  };
  for (size_t i = 0; i < ra.size(); ++i) {
    for (size_t j = 0; j < ra[i].size(); ++j) {
      if (!value_close(ra[i][j], rb[i][j])) return false;
    }
  }
  return true;
}

std::string DescribeMultisetDifference(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) {
    return "arity mismatch: " + std::to_string(a.num_columns()) + " vs " +
           std::to_string(b.num_columns());
  }
  auto ha = Histogram(a);
  auto hb = Histogram(b);
  for (const auto& [row, count] : ha) {
    auto it = hb.find(row);
    int64_t other = it == hb.end() ? 0 : it->second;
    if (other != count) {
      std::string rendering;
      for (const Value& v : row) rendering += v.ToString() + " ";
      return "row [" + rendering + "] has multiplicity " +
             std::to_string(count) + " on the left but " +
             std::to_string(other) + " on the right";
    }
  }
  for (const auto& [row, count] : hb) {
    if (ha.find(row) == ha.end()) {
      std::string rendering;
      for (const Value& v : row) rendering += v.ToString() + " ";
      return "row [" + rendering + "] has multiplicity 0 on the left but " +
             std::to_string(count) + " on the right";
    }
  }
  return "";
}

namespace {

// Zigzag folds the sign bit into the low bit so small negative ints encode
// as short varints.
uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

void EncodeValue(const Value& value, std::string* out) {
  out->push_back(static_cast<char>(value.type()));
  switch (value.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutVarint64(out, ZigzagEncode(value.int64()));
      break;
    case ValueType::kDouble:
      PutDoubleBits(out, value.dbl());
      break;
    case ValueType::kString:
      PutLengthPrefixed(out, value.str());
      break;
  }
}

Result<Value> DecodeValue(ByteReader* reader) {
  AQV_ASSIGN_OR_RETURN(std::string_view tag, reader->ReadBytes(1));
  switch (static_cast<ValueType>(tag[0])) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      AQV_ASSIGN_OR_RETURN(uint64_t bits, reader->ReadVarint64());
      return Value::Int64(ZigzagDecode(bits));
    }
    case ValueType::kDouble: {
      AQV_ASSIGN_OR_RETURN(double d, reader->ReadDoubleBits());
      return Value::Double(d);
    }
    case ValueType::kString: {
      AQV_ASSIGN_OR_RETURN(std::string_view s, reader->ReadLengthPrefixed());
      return Value::String(std::string(s));
    }
  }
  return Status::InvalidArgument("corrupt value encoding: unknown type tag " +
                                 std::to_string(static_cast<int>(tag[0])));
}

void EncodeRow(const Row& row, std::string* out) {
  PutVarint64(out, row.size());
  for (const Value& value : row) EncodeValue(value, out);
}

Result<Row> DecodeRow(ByteReader* reader) {
  AQV_ASSIGN_OR_RETURN(uint64_t arity, reader->ReadVarint64());
  Row row;
  row.reserve(arity);
  for (uint64_t i = 0; i < arity; ++i) {
    AQV_ASSIGN_OR_RETURN(Value value, DecodeValue(reader));
    row.push_back(std::move(value));
  }
  return row;
}

}  // namespace aqv
