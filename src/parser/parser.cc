#include "parser/parser.h"

#include <optional>
#include <vector>

#include "base/failpoint.h"
#include "base/strings.h"
#include "base/trace.h"
#include "ir/validate.h"
#include "parser/binder.h"
#include "parser/lexer.h"

namespace aqv {

namespace {

std::optional<AggFn> AggFnFromName(const std::string& name) {
  if (EqualsIgnoreCase(name, "MIN")) return AggFn::kMin;
  if (EqualsIgnoreCase(name, "MAX")) return AggFn::kMax;
  if (EqualsIgnoreCase(name, "SUM")) return AggFn::kSum;
  if (EqualsIgnoreCase(name, "COUNT")) return AggFn::kCount;
  if (EqualsIgnoreCase(name, "AVG")) return AggFn::kAvg;
  return std::nullopt;
}

std::optional<CmpOp> CmpOpFromToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEq:
      return CmpOp::kEq;
    case TokenKind::kNe:
      return CmpOp::kNe;
    case TokenKind::kLt:
      return CmpOp::kLt;
    case TokenKind::kLe:
      return CmpOp::kLe;
    case TokenKind::kGt:
      return CmpOp::kGt;
    case TokenKind::kGe:
      return CmpOp::kGe;
    default:
      return std::nullopt;
  }
}

// An unresolved column reference.
struct RawRef {
  std::string qualifier;  // empty if bare
  std::string column;
};

// An unresolved aggregate argument: col [* col].
struct RawArg {
  RawRef column;
  std::optional<RawRef> multiplier;
};

// An unresolved SELECT item.
struct RawItem {
  enum class Kind { kColumn, kAggregate, kRatio } kind = Kind::kColumn;
  RawRef column;
  AggFn agg = AggFn::kMin;
  RawArg arg;
  RawArg den;
  std::string alias;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Catalog* catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  Result<Query> ParseQueryBlock();
  Result<ViewDef> ParseViewStatement();
  Result<DeleteStatement> ParseDeleteStatement();
  Result<UpdateStatement> ParseUpdateStatement();

 private:
  const Token& Peek(size_t k = 0) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool ConsumeKeyword(std::string_view keyword) {
    if (Peek().IsKeyword(keyword)) {
      Next();
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     " at offset " +
                                     std::to_string(Peek().offset));
    }
    Next();
    return Status::OK();
  }

  // True when the next tokens start a clause keyword or the end of input.
  bool AtClauseBoundary() const {
    const Token& t = Peek();
    return t.kind == TokenKind::kEnd || t.IsKeyword("FROM") ||
           t.IsKeyword("WHERE") || t.IsKeyword("GROUPBY") ||
           t.IsKeyword("GROUP") || t.IsKeyword("HAVING");
  }

  Result<RawRef> ParseRawRef();
  Result<RawArg> ParseRawArg();
  Result<RawItem> ParseSelectItem();
  Status ParseFrom(Query* query, BindingScope* scope);
  Result<Operand> ParseOperand(const BindingScope& scope);
  Result<std::vector<Predicate>> ParseConjunction(const BindingScope& scope);
  /// Binds the DML target table's schema columns verbatim into `scope` (no
  /// per-occurrence renaming: DML predicates evaluate row-at-a-time against
  /// the stored layout, so the names must match the schema exactly).
  Result<const TableDef*> BindDmlTarget(const std::string& table,
                                        BindingScope* scope);
  Result<SetExpr> ParseSetExpr(const BindingScope& scope);
  /// Scalar-only WHERE tail shared by DELETE and UPDATE: optional, and no
  /// aggregate operands (there is no group to aggregate over).
  Result<std::vector<Predicate>> ParseDmlWhere(const BindingScope& scope,
                                               const char* verb);

  Result<std::string> Bind(const BindingScope& scope, const RawRef& ref) {
    return scope.Resolve(ref.qualifier, ref.column);
  }
  Result<AggArg> Bind(const BindingScope& scope, const RawArg& arg) {
    AggArg out;
    AQV_ASSIGN_OR_RETURN(out.column, Bind(scope, arg.column));
    if (arg.multiplier) {
      AQV_ASSIGN_OR_RETURN(out.multiplier, Bind(scope, *arg.multiplier));
    }
    return out;
  }

  std::vector<Token> tokens_;
  const Catalog* catalog_;
  size_t pos_ = 0;
  int occurrence_count_ = 0;
  NameGenerator default_aliases_;
};

Result<RawRef> Parser::ParseRawRef() {
  if (Peek().kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected a column reference at offset " +
                                   std::to_string(Peek().offset));
  }
  RawRef ref;
  ref.column = Next().text;
  if (Peek().kind == TokenKind::kDot) {
    Next();
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected a column after '.' at offset " +
                                     std::to_string(Peek().offset));
    }
    ref.qualifier = std::move(ref.column);
    ref.column = Next().text;
  }
  return ref;
}

Result<RawArg> Parser::ParseRawArg() {
  RawArg arg;
  AQV_ASSIGN_OR_RETURN(arg.column, ParseRawRef());
  if (Peek().kind == TokenKind::kStar) {
    Next();
    AQV_ASSIGN_OR_RETURN(RawRef mult, ParseRawRef());
    arg.multiplier = std::move(mult);
  }
  return arg;
}

Result<RawItem> Parser::ParseSelectItem() {
  RawItem item;
  std::optional<AggFn> fn;
  if (Peek().kind == TokenKind::kIdentifier &&
      Peek(1).kind == TokenKind::kLParen) {
    fn = AggFnFromName(Peek().text);
  }
  if (fn) {
    Next();  // function name
    AQV_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    AQV_ASSIGN_OR_RETURN(item.arg, ParseRawArg());
    AQV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    item.kind = RawItem::Kind::kAggregate;
    item.agg = *fn;
    if (Peek().kind == TokenKind::kSlash) {
      // Ratio form: SUM(arg) / SUM(arg).
      if (*fn != AggFn::kSum) {
        return Status::InvalidArgument("ratio items must divide two SUMs");
      }
      Next();
      if (!(Peek().kind == TokenKind::kIdentifier &&
            AggFnFromName(Peek().text) == AggFn::kSum &&
            Peek(1).kind == TokenKind::kLParen)) {
        return Status::InvalidArgument("expected SUM(...) after '/'");
      }
      Next();
      AQV_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
      AQV_ASSIGN_OR_RETURN(item.den, ParseRawArg());
      AQV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      item.kind = RawItem::Kind::kRatio;
    }
  } else {
    AQV_ASSIGN_OR_RETURN(item.column, ParseRawRef());
    item.kind = RawItem::Kind::kColumn;
  }
  if (ConsumeKeyword("AS")) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected an alias after AS at offset " +
                                     std::to_string(Peek().offset));
    }
    item.alias = Next().text;
  }
  return item;
}

Status Parser::ParseFrom(Query* query, BindingScope* scope) {
  // FROM is where occurrences bind against the catalog (the Section 2
  // per-occurrence renaming), so this span is the "bind" stage.
  TraceSpan span("bind");
  while (true) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected a table name at offset " +
                                     std::to_string(Peek().offset));
    }
    std::string table = Next().text;
    ++occurrence_count_;
    TableRef ref;
    ref.table = table;
    if (Peek().kind == TokenKind::kLParen) {
      // Explicit notation: R1(A1, B1). Names are used verbatim.
      Next();
      std::vector<std::string> columns;
      while (true) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Status::InvalidArgument("expected a column name at offset " +
                                         std::to_string(Peek().offset));
        }
        columns.push_back(Next().text);
        if (Peek().kind == TokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
      AQV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      std::string alias;
      if (Peek().kind == TokenKind::kIdentifier && !AtClauseBoundary() &&
          !Peek().IsKeyword("AS")) {
        alias = Next().text;
      } else if (ConsumeKeyword("AS")) {
        alias = Next().text;
      } else {
        // Defaulted alias: uniquify so explicit-notation self-joins parse
        // ("R1(A2, B2), R1(A3, B3)" — the columns are already unique, so
        // qualification is rarely needed anyway).
        alias = default_aliases_.Fresh(table);
      }
      AQV_RETURN_NOT_OK(scope->AddOccurrence(table, alias, columns, columns));
      ref.columns = std::move(columns);
    } else {
      // Catalog-bound notation: the occurrence's columns are renamed to
      // <Col>_<k> per the Section 2 convention.
      if (catalog_ == nullptr) {
        return Status::InvalidArgument(
            "FROM entry '" + table +
            "' has no column list and no catalog was provided");
      }
      AQV_ASSIGN_OR_RETURN(const TableDef* def, catalog_->GetTable(table));
      std::string alias = table;
      if (ConsumeKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Status::InvalidArgument("expected an alias after AS");
        }
        alias = Next().text;
      } else if (Peek().kind == TokenKind::kIdentifier && !AtClauseBoundary()) {
        alias = Next().text;
      }
      std::vector<std::string> unique;
      unique.reserve(def->columns().size());
      for (const std::string& c : def->columns()) {
        unique.push_back(c + "_" + std::to_string(occurrence_count_));
      }
      AQV_RETURN_NOT_OK(
          scope->AddOccurrence(table, alias, def->columns(), unique));
      ref.columns = std::move(unique);
    }
    query->from.push_back(std::move(ref));
    if (Peek().kind == TokenKind::kComma) {
      Next();
      continue;
    }
    break;
  }
  return Status::OK();
}

Result<Operand> Parser::ParseOperand(const BindingScope& scope) {
  // Optional sign prefix on numeric constants (`WHERE A_1 > -5`).
  if (Peek().kind == TokenKind::kMinus || Peek().kind == TokenKind::kPlus) {
    bool negate = Next().kind == TokenKind::kMinus;
    const Token& num = Peek();
    if (num.kind == TokenKind::kInteger) {
      int64_t v = Next().int_value;
      return Operand::Constant(Value::Int64(negate ? -v : v));
    }
    if (num.kind == TokenKind::kFloat) {
      double v = Next().float_value;
      return Operand::Constant(Value::Double(negate ? -v : v));
    }
    return Status::InvalidArgument(
        "expected a numeric constant after the sign at offset " +
        std::to_string(num.offset));
  }
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInteger: {
      int64_t v = Next().int_value;
      return Operand::Constant(Value::Int64(v));
    }
    case TokenKind::kFloat: {
      double v = Next().float_value;
      return Operand::Constant(Value::Double(v));
    }
    case TokenKind::kString: {
      std::string v = Next().text;
      return Operand::Constant(Value::String(std::move(v)));
    }
    case TokenKind::kIdentifier: {
      std::optional<AggFn> fn;
      if (Peek(1).kind == TokenKind::kLParen) fn = AggFnFromName(t.text);
      if (fn) {
        Next();
        AQV_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
        AQV_ASSIGN_OR_RETURN(RawArg raw, ParseRawArg());
        AQV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
        AQV_ASSIGN_OR_RETURN(AggArg arg, Bind(scope, raw));
        return Operand::Aggregate(*fn, arg.column, arg.multiplier);
      }
      AQV_ASSIGN_OR_RETURN(RawRef raw, ParseRawRef());
      AQV_ASSIGN_OR_RETURN(std::string column, Bind(scope, raw));
      return Operand::Column(std::move(column));
    }
    default:
      return Status::InvalidArgument("expected an operand at offset " +
                                     std::to_string(t.offset));
  }
}

Result<std::vector<Predicate>> Parser::ParseConjunction(
    const BindingScope& scope) {
  std::vector<Predicate> preds;
  while (true) {
    Predicate p;
    AQV_ASSIGN_OR_RETURN(p.lhs, ParseOperand(scope));
    std::optional<CmpOp> op = CmpOpFromToken(Peek().kind);
    if (!op) {
      return Status::InvalidArgument("expected a comparison at offset " +
                                     std::to_string(Peek().offset));
    }
    Next();
    p.op = *op;
    AQV_ASSIGN_OR_RETURN(p.rhs, ParseOperand(scope));
    preds.push_back(std::move(p));
    if (ConsumeKeyword("AND")) continue;
    break;
  }
  return preds;
}

Result<Query> Parser::ParseQueryBlock() {
  if (!ConsumeKeyword("SELECT")) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  Query query;
  query.distinct = ConsumeKeyword("DISTINCT");

  // SELECT items are parsed raw and bound after FROM is known.
  std::vector<RawItem> raw_items;
  while (true) {
    AQV_ASSIGN_OR_RETURN(RawItem item, ParseSelectItem());
    raw_items.push_back(std::move(item));
    if (Peek().kind == TokenKind::kComma) {
      Next();
      continue;
    }
    break;
  }

  if (!ConsumeKeyword("FROM")) {
    return Status::InvalidArgument("expected FROM at offset " +
                                   std::to_string(Peek().offset));
  }
  BindingScope scope;
  AQV_RETURN_NOT_OK(ParseFrom(&query, &scope));

  for (const RawItem& raw : raw_items) {
    switch (raw.kind) {
      case RawItem::Kind::kColumn: {
        AQV_ASSIGN_OR_RETURN(std::string col, Bind(scope, raw.column));
        query.select.push_back(SelectItem::MakeColumn(std::move(col), raw.alias));
        break;
      }
      case RawItem::Kind::kAggregate: {
        AQV_ASSIGN_OR_RETURN(AggArg arg, Bind(scope, raw.arg));
        std::string alias = raw.alias;
        if (alias.empty()) {
          alias = std::string(AggFnToString(raw.agg)) + "_" + arg.column;
        }
        query.select.push_back(SelectItem::MakeScaledAggregate(
            raw.agg, std::move(arg), std::move(alias)));
        break;
      }
      case RawItem::Kind::kRatio: {
        AQV_ASSIGN_OR_RETURN(AggArg num, Bind(scope, raw.arg));
        AQV_ASSIGN_OR_RETURN(AggArg den, Bind(scope, raw.den));
        std::string alias = raw.alias;
        if (alias.empty()) alias = "ratio_" + num.column;
        query.select.push_back(SelectItem::MakeRatio(
            std::move(num), std::move(den), std::move(alias)));
        break;
      }
    }
  }

  if (ConsumeKeyword("WHERE")) {
    AQV_ASSIGN_OR_RETURN(query.where, ParseConjunction(scope));
  }
  bool has_groupby = false;
  if (ConsumeKeyword("GROUPBY")) {
    has_groupby = true;
  } else if (Peek().IsKeyword("GROUP") && Peek(1).IsKeyword("BY")) {
    Next();
    Next();
    has_groupby = true;
  }
  if (has_groupby) {
    while (true) {
      AQV_ASSIGN_OR_RETURN(RawRef raw, ParseRawRef());
      AQV_ASSIGN_OR_RETURN(std::string col, Bind(scope, raw));
      query.group_by.push_back(std::move(col));
      if (Peek().kind == TokenKind::kComma) {
        Next();
        continue;
      }
      break;
    }
  }
  if (ConsumeKeyword("HAVING")) {
    AQV_ASSIGN_OR_RETURN(query.having, ParseConjunction(scope));
  }
  if (Peek().kind != TokenKind::kEnd) {
    return Status::InvalidArgument("unexpected trailing input at offset " +
                                   std::to_string(Peek().offset));
  }
  AQV_RETURN_NOT_OK(ValidateQuery(query));
  return query;
}

Result<const TableDef*> Parser::BindDmlTarget(const std::string& table,
                                              BindingScope* scope) {
  if (catalog_ == nullptr) {
    return Status::InvalidArgument(
        "DELETE/UPDATE need a catalog to bind '" + table + "' against");
  }
  AQV_ASSIGN_OR_RETURN(const TableDef* def, catalog_->GetTable(table));
  AQV_RETURN_NOT_OK(
      scope->AddOccurrence(table, table, def->columns(), def->columns()));
  return def;
}

Result<std::vector<Predicate>> Parser::ParseDmlWhere(const BindingScope& scope,
                                                     const char* verb) {
  std::vector<Predicate> where;
  if (ConsumeKeyword("WHERE")) {
    AQV_ASSIGN_OR_RETURN(where, ParseConjunction(scope));
    for (const Predicate& p : where) {
      if (!p.IsScalar()) {
        return Status::InvalidArgument(std::string(verb) +
                                       " predicates must be scalar (no "
                                       "aggregate terms)");
      }
    }
  }
  if (Peek().kind != TokenKind::kEnd) {
    return Status::InvalidArgument("unexpected trailing input at offset " +
                                   std::to_string(Peek().offset));
  }
  return where;
}

Result<DeleteStatement> Parser::ParseDeleteStatement() {
  if (!ConsumeKeyword("DELETE") || !ConsumeKeyword("FROM")) {
    return Status::InvalidArgument("expected DELETE FROM");
  }
  if (Peek().kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected a table name at offset " +
                                   std::to_string(Peek().offset));
  }
  DeleteStatement out;
  out.table = Next().text;
  BindingScope scope;
  AQV_RETURN_NOT_OK(BindDmlTarget(out.table, &scope).status());
  AQV_ASSIGN_OR_RETURN(out.where, ParseDmlWhere(scope, "DELETE"));
  return out;
}

Result<SetExpr> Parser::ParseSetExpr(const BindingScope& scope) {
  SetExpr expr;
  const Token& t = Peek();
  // A bare identifier that is not NULL is a column reference; everything
  // else (signed numerics, strings, NULL) is a literal.
  if (t.kind == TokenKind::kIdentifier && !t.IsKeyword("NULL")) {
    AQV_ASSIGN_OR_RETURN(RawRef raw, ParseRawRef());
    AQV_ASSIGN_OR_RETURN(expr.column, Bind(scope, raw));
    expr.kind = SetExpr::Kind::kColumn;
    char op = 0;
    if (Peek().kind == TokenKind::kPlus) op = '+';
    if (Peek().kind == TokenKind::kMinus) op = '-';
    if (Peek().kind == TokenKind::kStar) op = '*';
    if (op == 0) return expr;
    Next();
    expr.kind = SetExpr::Kind::kBinary;
    expr.op = op;
    // fall through to the literal right operand
  }
  bool negate = false;
  if (Peek().kind == TokenKind::kMinus || Peek().kind == TokenKind::kPlus) {
    negate = Next().kind == TokenKind::kMinus;
    if (Peek().kind != TokenKind::kInteger &&
        Peek().kind != TokenKind::kFloat) {
      return Status::InvalidArgument(
          "expected a numeric literal after the sign at offset " +
          std::to_string(Peek().offset));
    }
  }
  const Token& lit = Peek();
  switch (lit.kind) {
    case TokenKind::kInteger: {
      int64_t v = Next().int_value;
      expr.literal = Value::Int64(negate ? -v : v);
      break;
    }
    case TokenKind::kFloat: {
      double v = Next().float_value;
      expr.literal = Value::Double(negate ? -v : v);
      break;
    }
    case TokenKind::kString:
      if (expr.kind == SetExpr::Kind::kBinary) {
        return Status::InvalidArgument(
            "UPDATE arithmetic takes a numeric right operand at offset " +
            std::to_string(lit.offset));
      }
      expr.literal = Value::String(Next().text);
      break;
    case TokenKind::kIdentifier:
      if (lit.IsKeyword("NULL") && expr.kind != SetExpr::Kind::kBinary) {
        Next();
        expr.literal = Value::Null();
        break;
      }
      [[fallthrough]];
    default:
      return Status::InvalidArgument(
          "expected a literal or column after '=' at offset " +
          std::to_string(lit.offset));
  }
  return expr;
}

Result<UpdateStatement> Parser::ParseUpdateStatement() {
  if (!ConsumeKeyword("UPDATE")) {
    return Status::InvalidArgument("expected UPDATE");
  }
  if (Peek().kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected a table name at offset " +
                                   std::to_string(Peek().offset));
  }
  UpdateStatement out;
  out.table = Next().text;
  BindingScope scope;
  AQV_RETURN_NOT_OK(BindDmlTarget(out.table, &scope).status());
  if (!ConsumeKeyword("SET")) {
    return Status::InvalidArgument("expected SET at offset " +
                                   std::to_string(Peek().offset));
  }
  while (true) {
    AQV_ASSIGN_OR_RETURN(RawRef raw, ParseRawRef());
    Assignment assign;
    AQV_ASSIGN_OR_RETURN(assign.column, Bind(scope, raw));
    for (const Assignment& prev : out.sets) {
      if (prev.column == assign.column) {
        return Status::InvalidArgument("column '" + assign.column +
                                       "' assigned twice in one UPDATE");
      }
    }
    if (Peek().kind != TokenKind::kEq) {
      return Status::InvalidArgument("expected '=' at offset " +
                                     std::to_string(Peek().offset));
    }
    Next();
    AQV_ASSIGN_OR_RETURN(assign.expr, ParseSetExpr(scope));
    out.sets.push_back(std::move(assign));
    if (Peek().kind == TokenKind::kComma) {
      Next();
      continue;
    }
    break;
  }
  AQV_ASSIGN_OR_RETURN(out.where, ParseDmlWhere(scope, "UPDATE"));
  return out;
}

Result<ViewDef> Parser::ParseViewStatement() {
  if (!ConsumeKeyword("CREATE") || !ConsumeKeyword("VIEW")) {
    return Status::InvalidArgument("expected CREATE VIEW");
  }
  if (Peek().kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected a view name");
  }
  std::string name = Next().text;
  if (!ConsumeKeyword("AS")) {
    return Status::InvalidArgument("expected AS after the view name");
  }
  AQV_ASSIGN_OR_RETURN(Query query, ParseQueryBlock());
  return ViewDef{std::move(name), std::move(query)};
}

}  // namespace

Result<Query> ParseQuery(std::string_view sql, const Catalog* catalog) {
  AQV_FAILPOINT("parse");
  TraceSpan span("parse");
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  if (span.active()) span.AddAttr("tokens", static_cast<int>(tokens.size()));
  Parser parser(std::move(tokens), catalog);
  return parser.ParseQueryBlock();
}

Result<ViewDef> ParseView(std::string_view sql, const Catalog* catalog) {
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), catalog);
  return parser.ParseViewStatement();
}

Result<DeleteStatement> ParseDelete(std::string_view sql,
                                    const Catalog* catalog) {
  AQV_FAILPOINT("parse");
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), catalog);
  return parser.ParseDeleteStatement();
}

Result<UpdateStatement> ParseUpdate(std::string_view sql,
                                    const Catalog* catalog) {
  AQV_FAILPOINT("parse");
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), catalog);
  return parser.ParseUpdateStatement();
}

Result<InsertStatement> ParseInsert(std::string_view sql) {
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  size_t pos = 0;
  auto peek = [&]() -> const Token& {
    return pos < tokens.size() ? tokens[pos] : tokens.back();
  };
  auto next = [&]() -> const Token& {
    const Token& t = peek();
    if (pos + 1 < tokens.size()) ++pos;
    return t;
  };
  auto consume_keyword = [&](std::string_view kw) {
    if (peek().IsKeyword(kw)) {
      next();
      return true;
    }
    return false;
  };
  auto parse_literal = [&]() -> Result<Value> {
    bool negate = false;
    if (peek().kind == TokenKind::kMinus || peek().kind == TokenKind::kPlus) {
      negate = next().kind == TokenKind::kMinus;
      if (peek().kind != TokenKind::kInteger &&
          peek().kind != TokenKind::kFloat) {
        return Status::InvalidArgument(
            "expected a numeric literal after the sign at offset " +
            std::to_string(peek().offset));
      }
    }
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kInteger: {
        int64_t v = next().int_value;
        return Value::Int64(negate ? -v : v);
      }
      case TokenKind::kFloat: {
        double v = next().float_value;
        return Value::Double(negate ? -v : v);
      }
      case TokenKind::kString:
        return Value::String(next().text);
      case TokenKind::kIdentifier:
        if (t.IsKeyword("NULL")) {
          next();
          return Value::Null();
        }
        [[fallthrough]];
      default:
        return Status::InvalidArgument("expected a literal at offset " +
                                       std::to_string(t.offset));
    }
  };

  if (!consume_keyword("INSERT") || !consume_keyword("INTO")) {
    return Status::InvalidArgument("expected INSERT INTO");
  }
  InsertStatement out;
  if (peek().kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected a table name at offset " +
                                   std::to_string(peek().offset));
  }
  out.table = next().text;
  if (!consume_keyword("VALUES")) {
    return Status::InvalidArgument("expected VALUES at offset " +
                                   std::to_string(peek().offset));
  }
  if (peek().kind != TokenKind::kLParen) {
    return Status::InvalidArgument(
        "expected at least one (tuple) after VALUES at offset " +
        std::to_string(peek().offset));
  }
  while (true) {
    next();  // '('
    Row row;
    while (true) {
      AQV_ASSIGN_OR_RETURN(Value v, parse_literal());
      row.push_back(std::move(v));
      if (peek().kind == TokenKind::kComma) {
        next();
        continue;
      }
      break;
    }
    if (peek().kind != TokenKind::kRParen) {
      return Status::InvalidArgument("expected ')' at offset " +
                                     std::to_string(peek().offset));
    }
    next();
    out.rows.push_back(std::move(row));
    if (peek().kind != TokenKind::kComma) break;
    next();
    if (peek().kind != TokenKind::kLParen) {
      return Status::InvalidArgument("expected '(' at offset " +
                                     std::to_string(peek().offset));
    }
  }
  if (peek().kind != TokenKind::kEnd) {
    return Status::InvalidArgument("unexpected trailing input at offset " +
                                   std::to_string(peek().offset));
  }
  return out;
}

}  // namespace aqv
