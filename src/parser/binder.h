#ifndef AQV_PARSER_BINDER_H_
#define AQV_PARSER_BINDER_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "ir/query.h"

namespace aqv {

/// Name resolution for one query block, implementing the Section 2 renaming
/// convention: every FROM occurrence's columns receive query-wide unique
/// names. Two styles of FROM entry feed the scope:
///
///  - catalog-bound (`FROM Calls`, `FROM Calls c`): the occurrence's columns
///    are the table's schema columns renamed to `<Col>_<k>` with k the
///    occurrence's 1-based index (the paper's `A1`, `B1`, ... scheme);
///  - explicit (`FROM R1(A1, B1)`): the listed names are used verbatim and
///    must be unique across the query.
///
/// References resolve as `alias.column` (alias defaults to the table name)
/// or as a bare column, which must be unambiguous.
class BindingScope {
 public:
  /// Registers an occurrence whose unique column names are `unique_columns`
  /// and whose raw schema column names are `raw_columns` (equal to
  /// unique_columns for explicit entries).
  Status AddOccurrence(const std::string& table, const std::string& alias,
                       const std::vector<std::string>& raw_columns,
                       const std::vector<std::string>& unique_columns);

  /// Resolves a reference. `qualifier` is empty for bare references.
  Result<std::string> Resolve(const std::string& qualifier,
                              const std::string& column) const;

  int num_occurrences() const { return static_cast<int>(occurrences_.size()); }

 private:
  struct Occurrence {
    std::string table;
    std::string alias;
    std::vector<std::string> raw;
    std::vector<std::string> unique;
  };
  std::vector<Occurrence> occurrences_;
};

}  // namespace aqv

#endif  // AQV_PARSER_BINDER_H_
