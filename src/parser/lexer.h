#ifndef AQV_PARSER_LEXER_H_
#define AQV_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace aqv {

/// Token kinds of the single-block SQL dialect.
enum class TokenKind {
  kIdentifier,  // plan_name, R1, Calls
  kInteger,     // 1995
  kFloat,       // 3.5
  kString,      // 'abc'
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,
  kSlash,
  kMinus,  // sign prefix on numeric literals
  kPlus,
  kEq,   // =
  kNe,   // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier/string contents
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;  // byte offset in the input, for error messages

  /// Case-insensitive keyword test for identifier tokens.
  bool IsKeyword(std::string_view keyword) const;
};

/// Splits `sql` into tokens. Keywords are not distinguished from
/// identifiers at this level (SQL keywords are contextual here).
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace aqv

#endif  // AQV_PARSER_LEXER_H_
