#ifndef AQV_PARSER_PARSER_H_
#define AQV_PARSER_PARSER_H_

#include <string_view>

#include "base/result.h"
#include "catalog/catalog.h"
#include "ir/query.h"

namespace aqv {

/// Parses a single-block query:
///
///   SELECT [DISTINCT] item, ...
///   FROM entry, ...
///   [WHERE conj] [GROUPBY cols | GROUP BY cols] [HAVING conj]
///
/// where an item is a column reference, `AGG(arg)` with an optional
/// `AS alias`, or the ratio form `SUM(arg) / SUM(arg)`; an arg is a column
/// optionally scaled as `col * col`; and a FROM entry is either the paper's
/// explicit notation `R1(A1, B1)` or a plain `table [alias]` resolved
/// against `catalog` with the Section 2 renaming convention (`A_1`, `B_1`,
/// ... per occurrence). Conditions are conjunctions of comparisons between
/// columns, constants and (in HAVING) aggregate terms.
///
/// `catalog` may be null when every FROM entry uses the explicit notation.
/// The result is validated (ir/validate.h) before being returned, so
/// ToSql() of a parsed query re-parses to an equal query.
Result<Query> ParseQuery(std::string_view sql, const Catalog* catalog = nullptr);

/// Parses `CREATE VIEW name AS <query>`.
Result<ViewDef> ParseView(std::string_view sql, const Catalog* catalog = nullptr);

/// A parsed multi-row `INSERT INTO table VALUES (lit, ...), (lit, ...)`.
struct InsertStatement {
  std::string table;
  std::vector<Row> rows;
};

/// Parses a multi-row INSERT. A literal is an optionally signed integer or
/// float, a quoted string, or NULL. At least one tuple is required, and any
/// trailing input after the last tuple is an error (it used to be silently
/// ignored). Arity against the table's schema is the caller's check.
Result<InsertStatement> ParseInsert(std::string_view sql);

/// A parsed `DELETE FROM table [WHERE conj]`. The WHERE conjunction is bound
/// against the table's own (unrenamed) schema columns, so predicates can be
/// evaluated directly against stored rows; an empty `where` deletes every
/// row. Which rows actually match is the executor's job — the parser only
/// validates names and shapes.
struct DeleteStatement {
  std::string table;
  std::vector<Predicate> where;  // scalar conjuncts over the table's columns
};

/// Parses a DELETE. `catalog` is required: the WHERE clause binds against
/// the target table's schema. Aggregate operands are rejected (a DELETE
/// predicate is row-at-a-time scalar).
Result<DeleteStatement> ParseDelete(std::string_view sql,
                                    const Catalog* catalog);

/// The right-hand side of one UPDATE assignment: a literal, a column of the
/// same table, or `column (+|-|*) literal` (arithmetic on NULL yields NULL;
/// on a string it is an execution-time error).
struct SetExpr {
  enum class Kind { kLiteral, kColumn, kBinary };
  Kind kind = Kind::kLiteral;
  Value literal;       // kLiteral; kBinary: the right operand
  std::string column;  // kColumn / kBinary: the source column
  char op = '+';       // kBinary: '+', '-' or '*'
};

/// One `column = expr` assignment of an UPDATE SET list.
struct Assignment {
  std::string column;  // target column (validated against the schema)
  SetExpr expr;
};

/// A parsed `UPDATE table SET col = expr, ... [WHERE conj]`, bound like
/// DeleteStatement (schema columns verbatim, scalar predicates only).
struct UpdateStatement {
  std::string table;
  std::vector<Assignment> sets;
  std::vector<Predicate> where;
};

/// Parses an UPDATE. `catalog` is required; assigning the same column twice
/// is an error, as is an aggregate operand anywhere in SET or WHERE.
Result<UpdateStatement> ParseUpdate(std::string_view sql,
                                    const Catalog* catalog);

}  // namespace aqv

#endif  // AQV_PARSER_PARSER_H_
