#ifndef AQV_PARSER_PARSER_H_
#define AQV_PARSER_PARSER_H_

#include <string_view>

#include "base/result.h"
#include "catalog/catalog.h"
#include "ir/query.h"

namespace aqv {

/// Parses a single-block query:
///
///   SELECT [DISTINCT] item, ...
///   FROM entry, ...
///   [WHERE conj] [GROUPBY cols | GROUP BY cols] [HAVING conj]
///
/// where an item is a column reference, `AGG(arg)` with an optional
/// `AS alias`, or the ratio form `SUM(arg) / SUM(arg)`; an arg is a column
/// optionally scaled as `col * col`; and a FROM entry is either the paper's
/// explicit notation `R1(A1, B1)` or a plain `table [alias]` resolved
/// against `catalog` with the Section 2 renaming convention (`A_1`, `B_1`,
/// ... per occurrence). Conditions are conjunctions of comparisons between
/// columns, constants and (in HAVING) aggregate terms.
///
/// `catalog` may be null when every FROM entry uses the explicit notation.
/// The result is validated (ir/validate.h) before being returned, so
/// ToSql() of a parsed query re-parses to an equal query.
Result<Query> ParseQuery(std::string_view sql, const Catalog* catalog = nullptr);

/// Parses `CREATE VIEW name AS <query>`.
Result<ViewDef> ParseView(std::string_view sql, const Catalog* catalog = nullptr);

/// A parsed multi-row `INSERT INTO table VALUES (lit, ...), (lit, ...)`.
struct InsertStatement {
  std::string table;
  std::vector<Row> rows;
};

/// Parses a multi-row INSERT. A literal is an optionally signed integer or
/// float, a quoted string, or NULL. At least one tuple is required, and any
/// trailing input after the last tuple is an error (it used to be silently
/// ignored). Arity against the table's schema is the caller's check.
Result<InsertStatement> ParseInsert(std::string_view sql);

}  // namespace aqv

#endif  // AQV_PARSER_PARSER_H_
