#include "parser/binder.h"

#include "base/strings.h"

namespace aqv {

Status BindingScope::AddOccurrence(const std::string& table,
                                   const std::string& alias,
                                   const std::vector<std::string>& raw_columns,
                                   const std::vector<std::string>& unique_columns) {
  if (raw_columns.size() != unique_columns.size()) {
    return Status::Internal("raw/unique column arity mismatch for '" + table +
                            "'");
  }
  for (const Occurrence& o : occurrences_) {
    if (EqualsIgnoreCase(o.alias, alias)) {
      return Status::InvalidArgument("duplicate range variable '" + alias +
                                     "' in FROM");
    }
  }
  occurrences_.push_back(Occurrence{table, alias, raw_columns, unique_columns});
  return Status::OK();
}

Result<std::string> BindingScope::Resolve(const std::string& qualifier,
                                          const std::string& column) const {
  if (!qualifier.empty()) {
    for (const Occurrence& o : occurrences_) {
      if (!EqualsIgnoreCase(o.alias, qualifier)) continue;
      for (size_t i = 0; i < o.raw.size(); ++i) {
        if (EqualsIgnoreCase(o.raw[i], column)) return o.unique[i];
      }
      return Status::NotFound("column '" + column + "' not in '" + qualifier +
                              "'");
    }
    return Status::NotFound("unknown range variable '" + qualifier + "'");
  }

  std::string found;
  int hits = 0;
  for (const Occurrence& o : occurrences_) {
    for (size_t i = 0; i < o.raw.size(); ++i) {
      if (EqualsIgnoreCase(o.raw[i], column) ||
          EqualsIgnoreCase(o.unique[i], column)) {
        // A raw name and its own unique name may both match within one
        // occurrence; that is one hit, not two.
        ++hits;
        found = o.unique[i];
        break;
      }
    }
  }
  if (hits == 0) {
    return Status::NotFound("unknown column '" + column + "'");
  }
  if (hits > 1) {
    return Status::InvalidArgument("ambiguous column '" + column +
                                   "'; qualify it with a range variable");
  }
  return found;
}

}  // namespace aqv
