#include "parser/lexer.h"

#include <cctype>

#include "base/strings.h"

namespace aqv {

bool Token::IsKeyword(std::string_view keyword) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, keyword);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto peek = [&](size_t k = 0) -> char {
    return i + k < sql.size() ? sql[i + k] : '\0';
  };

  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '#') {
      size_t start = i;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '_' || sql[i] == '#')) {
        ++i;
      }
      t.kind = TokenKind::kIdentifier;
      t.text = std::string(sql.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
              ((sql[i] == '+' || sql[i] == '-') && i > start &&
               (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') is_float = true;
        ++i;
      }
      std::string text(sql.substr(start, i - start));
      if (is_float) {
        t.kind = TokenKind::kFloat;
        t.float_value = std::stod(text);
      } else {
        t.kind = TokenKind::kInteger;
        t.int_value = std::stoll(text);
      }
    } else if (c == '\'') {
      ++i;
      size_t start = i;
      while (i < sql.size() && sql[i] != '\'') ++i;
      if (i >= sql.size()) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(t.offset));
      }
      t.kind = TokenKind::kString;
      t.text = std::string(sql.substr(start, i - start));
      ++i;  // closing quote
    } else {
      switch (c) {
        case '(':
          t.kind = TokenKind::kLParen;
          ++i;
          break;
        case ')':
          t.kind = TokenKind::kRParen;
          ++i;
          break;
        case ',':
          t.kind = TokenKind::kComma;
          ++i;
          break;
        case '.':
          t.kind = TokenKind::kDot;
          ++i;
          break;
        case '*':
          t.kind = TokenKind::kStar;
          ++i;
          break;
        case '/':
          t.kind = TokenKind::kSlash;
          ++i;
          break;
        case '-':
          t.kind = TokenKind::kMinus;
          ++i;
          break;
        case '+':
          t.kind = TokenKind::kPlus;
          ++i;
          break;
        case '=':
          t.kind = TokenKind::kEq;
          ++i;
          break;
        case '!':
          if (peek(1) == '=') {
            t.kind = TokenKind::kNe;
            i += 2;
          } else {
            return Status::InvalidArgument("unexpected '!' at offset " +
                                           std::to_string(i));
          }
          break;
        case '<':
          if (peek(1) == '>') {
            t.kind = TokenKind::kNe;
            i += 2;
          } else if (peek(1) == '=') {
            t.kind = TokenKind::kLe;
            i += 2;
          } else {
            t.kind = TokenKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (peek(1) == '=') {
            t.kind = TokenKind::kGe;
            i += 2;
          } else {
            t.kind = TokenKind::kGt;
            ++i;
          }
          break;
        default:
          return Status::InvalidArgument("unexpected character '" +
                                         std::string(1, c) + "' at offset " +
                                         std::to_string(i));
      }
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = sql.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace aqv
