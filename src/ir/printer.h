#ifndef AQV_IR_PRINTER_H_
#define AQV_IR_PRINTER_H_

#include <string>

#include "ir/query.h"

namespace aqv {

/// Renders a query in the paper's notation, with FROM entries printed as
/// `R1(A1, B1)` (each occurrence's renamed-apart columns in parentheses):
///
///   SELECT A1, SUM(B1) FROM R1(A1, B1), R2(C1, D1)
///   WHERE A1 = C1 GROUPBY A1
///
/// The parser (parser/parser.h) accepts exactly this form back, so printing
/// and parsing round-trip.
std::string ToSql(const Query& query);

/// Renders `CREATE VIEW name AS <query>`.
std::string ToSql(const ViewDef& view);

}  // namespace aqv

#endif  // AQV_IR_PRINTER_H_
