#ifndef AQV_IR_QUERY_H_
#define AQV_IR_QUERY_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/value.h"

namespace aqv {

/// SQL aggregate functions handled by the paper (Section 2, plus AVG per
/// Section 4.4).
enum class AggFn { kMin, kMax, kSum, kCount, kAvg };

const char* AggFnToString(AggFn fn);

/// Comparison operators allowed in WHERE/HAVING atoms (Section 2 restricts
/// conditions to conjunctions of these).
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpToString(CmpOp op);

/// The mirror-image operator: Flip(<) is >, so `a op b` iff `b Flip(op) a`.
CmpOp FlipCmpOp(CmpOp op);

/// Argument of an aggregate function: a column, optionally scaled by a
/// second column ("E1 * N1"). Scaled arguments arise from the Section 4
/// rewriting when a view's COUNT column re-weights rows whose base
/// multiplicity the view's GROUPBY collapsed.
struct AggArg {
  std::string column;
  std::string multiplier;  // empty: unscaled

  bool scaled() const { return !multiplier.empty(); }

  bool operator==(const AggArg& other) const {
    return column == other.column && multiplier == other.multiplier;
  }
  bool operator<(const AggArg& other) const {
    if (column != other.column) return column < other.column;
    return multiplier < other.multiplier;
  }

  std::string ToString() const {
    return scaled() ? column + " * " + multiplier : column;
  }
};

/// An operand of a predicate: a column reference (by the query-wide unique
/// column name of Section 2's naming convention), a constant, or an
/// aggregate term AGG(arg) (legal only in HAVING).
struct Operand {
  enum class Kind { kColumn, kConstant, kAggregate };

  Kind kind = Kind::kConstant;
  std::string column;  // kColumn: the name; kAggregate: the argument column
  std::string multiplier;   // kAggregate: optional argument scaling
  Value constant;           // kConstant
  AggFn agg = AggFn::kMin;  // kAggregate

  static Operand Column(std::string name) {
    Operand o;
    o.kind = Kind::kColumn;
    o.column = std::move(name);
    return o;
  }
  static Operand Constant(Value v) {
    Operand o;
    o.kind = Kind::kConstant;
    o.constant = std::move(v);
    return o;
  }
  static Operand Aggregate(AggFn fn, std::string arg,
                           std::string multiplier = "") {
    Operand o;
    o.kind = Kind::kAggregate;
    o.agg = fn;
    o.column = std::move(arg);
    o.multiplier = std::move(multiplier);
    return o;
  }

  AggArg agg_arg() const { return AggArg{column, multiplier}; }

  bool is_column() const { return kind == Kind::kColumn; }
  bool is_constant() const { return kind == Kind::kConstant; }
  bool is_aggregate() const { return kind == Kind::kAggregate; }

  bool operator==(const Operand& other) const;
  bool operator<(const Operand& other) const;

  std::string ToString() const;
};

/// One conjunct `lhs op rhs` of a WHERE or HAVING clause.
struct Predicate {
  Operand lhs;
  CmpOp op = CmpOp::kEq;
  Operand rhs;

  bool operator==(const Predicate& other) const;

  /// True if neither operand is an aggregate term.
  bool IsScalar() const { return !lhs.is_aggregate() && !rhs.is_aggregate(); }

  /// Column names referenced by either operand (aggregate arguments count).
  std::vector<std::string> ReferencedColumns() const;

  std::string ToString() const;
};

/// One item of a SELECT clause: a plain column, an aggregate AGG(arg), or a
/// ratio SUM(arg)/SUM(den) (how AVG is recovered from SUM and COUNT columns
/// of a view, Section 4.4). `alias` names the item in the query's output
/// schema; the builder fills in a default when the user does not provide
/// one.
struct SelectItem {
  enum class Kind { kColumn, kAggregate, kRatio };

  Kind kind = Kind::kColumn;
  std::string column;       // kColumn only
  AggFn agg = AggFn::kMin;  // kAggregate only
  AggArg arg;               // kAggregate argument; kRatio numerator
  AggArg den;               // kRatio denominator
  std::string alias;

  static SelectItem MakeColumn(std::string column, std::string alias = "") {
    SelectItem s;
    s.kind = Kind::kColumn;
    s.column = std::move(column);
    s.alias = std::move(alias);
    return s;
  }
  static SelectItem MakeAggregate(AggFn fn, std::string column,
                                  std::string alias = "") {
    SelectItem s;
    s.kind = Kind::kAggregate;
    s.agg = fn;
    s.arg = AggArg{std::move(column), ""};
    s.alias = std::move(alias);
    return s;
  }
  static SelectItem MakeScaledAggregate(AggFn fn, AggArg arg,
                                        std::string alias = "") {
    SelectItem s;
    s.kind = Kind::kAggregate;
    s.agg = fn;
    s.arg = std::move(arg);
    s.alias = std::move(alias);
    return s;
  }
  static SelectItem MakeRatio(AggArg numerator, AggArg denominator,
                              std::string alias = "") {
    SelectItem s;
    s.kind = Kind::kRatio;
    s.arg = std::move(numerator);
    s.den = std::move(denominator);
    s.alias = std::move(alias);
    return s;
  }

  bool is_aggregate() const { return kind != Kind::kColumn; }
  bool is_ratio() const { return kind == Kind::kRatio; }

  /// Column names this item reads (argument, multiplier, denominator).
  std::vector<std::string> ReferencedColumns() const;

  bool operator==(const SelectItem& other) const;

  std::string ToString() const;
};

/// One entry of a FROM clause: an occurrence of a base table or view, with
/// the occurrence's columns renamed apart per Section 2 ("R1(A1, B1)").
/// Column names are unique across the whole query.
struct TableRef {
  std::string table;                 // base table or registered view name
  std::vector<std::string> columns;  // per-occurrence unique column names

  bool operator==(const TableRef& other) const {
    return table == other.table && columns == other.columns;
  }

  std::string ToString() const;
};

/// A single-block SQL query
///   SELECT [DISTINCT] Sel(Q) FROM R1(A1),...,Rn(An)
///   WHERE Conds(Q) GROUPBY Groups(Q) HAVING GConds(Q)
/// under multiset semantics. WHERE and HAVING are conjunctions.
///
/// Section 2 terminology maps to accessors: Sel(Q) = `select`,
/// Tables(Q) = `from`, Conds(Q) = `where`, Groups(Q) = `group_by`,
/// GConds(Q) = `having`, Cols(Q) = AllColumns(), ColSel(Q) = ColSel(),
/// AggSel(Q) = AggSel().
struct Query {
  std::vector<SelectItem> select;
  bool distinct = false;
  std::vector<TableRef> from;
  std::vector<Predicate> where;
  std::vector<std::string> group_by;
  std::vector<Predicate> having;

  /// Cols(Q): every unique column name introduced by the FROM clause.
  std::set<std::string> AllColumns() const;

  /// ColSel(Q): non-aggregation columns of the SELECT clause, in order.
  std::vector<std::string> ColSel() const;

  /// AggSel(Q): columns aggregated upon in the SELECT clause, in order.
  std::vector<std::string> AggSel() const;

  /// All aggregate terms appearing in SELECT or HAVING (deduplicated,
  /// SELECT order first). Section 3.3 extends C4 to HAVING-only aggregates.
  std::vector<Operand> AggregateTerms() const;

  /// True if the query has no grouping, no aggregation and no HAVING —
  /// a "conjunctive query" in the paper's terminology.
  bool IsConjunctive() const;

  /// True if the query has grouping, aggregation, or a HAVING clause.
  bool IsAggregation() const { return !IsConjunctive(); }

  /// Locates `column`: returns {from index, column ordinal} or nullopt.
  std::optional<std::pair<int, int>> FindColumn(const std::string& column) const;

  /// Output column names: each select item's alias.
  std::vector<std::string> OutputColumns() const;

  bool operator==(const Query& other) const;
};

/// A named view: its defining query plus the output column names under
/// which other queries reference it in their FROM clauses.
struct ViewDef {
  std::string name;
  Query query;

  /// The view's output schema; equals query.OutputColumns().
  std::vector<std::string> OutputColumns() const { return query.OutputColumns(); }
};

/// Generates fresh column/view names that do not collide with a set of
/// reserved names. Used by the binder to rename occurrences apart and by the
/// rewriter to name auxiliary views (Section 4's `Va`).
class NameGenerator {
 public:
  /// Reserves every name in `taken`.
  void Reserve(const std::set<std::string>& taken);
  void Reserve(const std::string& name);

  /// Returns `base` if free, else base_2, base_3, ... The result is reserved.
  std::string Fresh(const std::string& base);

 private:
  std::set<std::string> taken_;
};

}  // namespace aqv

#endif  // AQV_IR_QUERY_H_
