#ifndef AQV_IR_BUILDER_H_
#define AQV_IR_BUILDER_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "ir/query.h"

namespace aqv {

/// Fluent construction of Query objects in tests, examples and benches.
///
///   Query q = QueryBuilder()
///                 .From("R1", {"A1", "B1"})
///                 .From("R2", {"C1", "D1"})
///                 .Select("A1")
///                 .SelectAgg(AggFn::kSum, "B1")
///                 .WhereCols("A1", CmpOp::kEq, "C1")
///                 .WhereConst("D1", CmpOp::kEq, Value::Int64(6))
///                 .GroupBy("A1")
///                 .BuildOrDie();
///
/// Column names must already follow the unique-name convention (the binder
/// in parser/binder.h produces such names from raw SQL). Build() validates
/// via ValidateQuery().
class QueryBuilder {
 public:
  QueryBuilder& Select(std::string column, std::string alias = "");
  QueryBuilder& SelectAgg(AggFn fn, std::string column, std::string alias = "");
  QueryBuilder& Distinct();
  QueryBuilder& From(std::string table, std::vector<std::string> columns);
  QueryBuilder& Where(Predicate p);
  QueryBuilder& WhereCols(std::string lhs, CmpOp op, std::string rhs);
  QueryBuilder& WhereConst(std::string lhs, CmpOp op, Value rhs);
  QueryBuilder& GroupBy(std::string column);
  QueryBuilder& Having(Predicate p);
  QueryBuilder& HavingAgg(AggFn fn, std::string column, CmpOp op, Value rhs);
  QueryBuilder& HavingCol(std::string column, CmpOp op, Value rhs);

  /// Validates and returns the query.
  Result<Query> Build() const;

  /// Build() that aborts on validation failure; for tests and examples
  /// where the query is a literal known to be well-formed.
  Query BuildOrDie() const;

 private:
  Query query_;
};

}  // namespace aqv

#endif  // AQV_IR_BUILDER_H_
