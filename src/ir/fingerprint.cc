#include "ir/fingerprint.h"

#include <algorithm>
#include <tuple>

#include "ir/printer.h"

namespace aqv {

namespace {

/// Orientation: put the canonically smaller operand on the left. Symmetric
/// operators swap freely; ordered ones flip (`a < b` == `b > a`).
Predicate OrientPredicate(Predicate p) {
  if (p.rhs < p.lhs) {
    std::swap(p.lhs, p.rhs);
    p.op = FlipCmpOp(p.op);
  }
  return p;
}

bool PredicateLess(const Predicate& a, const Predicate& b) {
  if (!(a.lhs == b.lhs)) return a.lhs < b.lhs;
  if (a.op != b.op) return a.op < b.op;
  if (!(a.rhs == b.rhs)) return a.rhs < b.rhs;
  return false;
}

void NormalizeConjunction(std::vector<Predicate>* conjuncts) {
  for (Predicate& p : *conjuncts) p = OrientPredicate(p);
  std::sort(conjuncts->begin(), conjuncts->end(), PredicateLess);
  conjuncts->erase(std::unique(conjuncts->begin(), conjuncts->end()),
                   conjuncts->end());
}

}  // namespace

Query CanonicalizeForCache(const Query& query) {
  Query canon = query;
  NormalizeConjunction(&canon.where);
  NormalizeConjunction(&canon.having);
  std::sort(canon.group_by.begin(), canon.group_by.end());
  canon.group_by.erase(
      std::unique(canon.group_by.begin(), canon.group_by.end()),
      canon.group_by.end());
  return canon;
}

std::string CanonicalCacheKey(const Query& query) {
  // ToSql is an unambiguous rendering (it round-trips through the parser),
  // so it serializes the canonical IR faithfully. Aliases are part of the
  // output schema and are included by ToSql.
  return ToSql(CanonicalizeForCache(query));
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t QueryFingerprint(const Query& query) {
  return Fnv1a64(CanonicalCacheKey(query));
}

}  // namespace aqv
