#include "ir/query.h"

#include <algorithm>

#include "base/strings.h"

namespace aqv {

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kAvg:
      return "AVG";
  }
  return "?";
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp FlipCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  return op;
}

bool Operand::operator==(const Operand& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kColumn:
      return column == other.column;
    case Kind::kConstant:
      return constant == other.constant;
    case Kind::kAggregate:
      return agg == other.agg && column == other.column &&
             multiplier == other.multiplier;
  }
  return false;
}

bool Operand::operator<(const Operand& other) const {
  if (kind != other.kind) return kind < other.kind;
  switch (kind) {
    case Kind::kColumn:
      return column < other.column;
    case Kind::kConstant:
      return constant < other.constant;
    case Kind::kAggregate:
      if (agg != other.agg) return agg < other.agg;
      if (column != other.column) return column < other.column;
      return multiplier < other.multiplier;
  }
  return false;
}

std::string Operand::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column;
    case Kind::kConstant:
      return constant.ToString();
    case Kind::kAggregate:
      return std::string(AggFnToString(agg)) + "(" + agg_arg().ToString() + ")";
  }
  return "?";
}

bool Predicate::operator==(const Predicate& other) const {
  return lhs == other.lhs && op == other.op && rhs == other.rhs;
}

std::vector<std::string> Predicate::ReferencedColumns() const {
  std::vector<std::string> cols;
  for (const Operand* o : {&lhs, &rhs}) {
    if (o->is_constant()) continue;
    cols.push_back(o->column);
    if (o->is_aggregate() && !o->multiplier.empty()) {
      cols.push_back(o->multiplier);
    }
  }
  return cols;
}

std::string Predicate::ToString() const {
  return lhs.ToString() + " " + CmpOpToString(op) + " " + rhs.ToString();
}

std::vector<std::string> SelectItem::ReferencedColumns() const {
  std::vector<std::string> cols;
  switch (kind) {
    case Kind::kColumn:
      cols.push_back(column);
      break;
    case Kind::kAggregate:
      cols.push_back(arg.column);
      if (arg.scaled()) cols.push_back(arg.multiplier);
      break;
    case Kind::kRatio:
      cols.push_back(arg.column);
      if (arg.scaled()) cols.push_back(arg.multiplier);
      cols.push_back(den.column);
      if (den.scaled()) cols.push_back(den.multiplier);
      break;
  }
  return cols;
}

bool SelectItem::operator==(const SelectItem& other) const {
  if (kind != other.kind || alias != other.alias) return false;
  switch (kind) {
    case Kind::kColumn:
      return column == other.column;
    case Kind::kAggregate:
      return agg == other.agg && arg == other.arg;
    case Kind::kRatio:
      return arg == other.arg && den == other.den;
  }
  return false;
}

std::string SelectItem::ToString() const {
  std::string body;
  switch (kind) {
    case Kind::kColumn:
      body = column;
      break;
    case Kind::kAggregate:
      body = std::string(AggFnToString(agg)) + "(" + arg.ToString() + ")";
      break;
    case Kind::kRatio:
      body = "SUM(" + arg.ToString() + ") / SUM(" + den.ToString() + ")";
      break;
  }
  if (!alias.empty() && alias != column) body += " AS " + alias;
  return body;
}

std::string TableRef::ToString() const {
  return table + "(" + Join(columns, ", ") + ")";
}

std::set<std::string> Query::AllColumns() const {
  std::set<std::string> cols;
  for (const TableRef& t : from) {
    cols.insert(t.columns.begin(), t.columns.end());
  }
  return cols;
}

std::vector<std::string> Query::ColSel() const {
  std::vector<std::string> cols;
  for (const SelectItem& s : select) {
    if (!s.is_aggregate()) cols.push_back(s.column);
  }
  return cols;
}

std::vector<std::string> Query::AggSel() const {
  std::vector<std::string> cols;
  for (const SelectItem& s : select) {
    if (s.kind == SelectItem::Kind::kAggregate) cols.push_back(s.arg.column);
    if (s.kind == SelectItem::Kind::kRatio) {
      cols.push_back(s.arg.column);
      cols.push_back(s.den.column);
    }
  }
  return cols;
}

std::vector<Operand> Query::AggregateTerms() const {
  std::vector<Operand> terms;
  auto add = [&terms](const Operand& o) {
    if (!o.is_aggregate()) return;
    if (std::find(terms.begin(), terms.end(), o) == terms.end()) {
      terms.push_back(o);
    }
  };
  for (const SelectItem& s : select) {
    if (s.kind == SelectItem::Kind::kAggregate) {
      add(Operand::Aggregate(s.agg, s.arg.column, s.arg.multiplier));
    } else if (s.kind == SelectItem::Kind::kRatio) {
      // A ratio reads two SUM terms.
      add(Operand::Aggregate(AggFn::kSum, s.arg.column, s.arg.multiplier));
      add(Operand::Aggregate(AggFn::kSum, s.den.column, s.den.multiplier));
    }
  }
  for (const Predicate& p : having) {
    add(p.lhs);
    add(p.rhs);
  }
  return terms;
}

bool Query::IsConjunctive() const {
  if (!group_by.empty() || !having.empty()) return false;
  for (const SelectItem& s : select) {
    if (s.is_aggregate()) return false;
  }
  return true;
}

std::optional<std::pair<int, int>> Query::FindColumn(
    const std::string& column) const {
  for (size_t i = 0; i < from.size(); ++i) {
    const TableRef& t = from[i];
    for (size_t j = 0; j < t.columns.size(); ++j) {
      if (t.columns[j] == column) {
        return std::make_pair(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return std::nullopt;
}

std::vector<std::string> Query::OutputColumns() const {
  std::vector<std::string> names;
  names.reserve(select.size());
  for (const SelectItem& s : select) {
    names.push_back(s.alias.empty() ? s.column : s.alias);
  }
  return names;
}

bool Query::operator==(const Query& other) const {
  return select == other.select && distinct == other.distinct &&
         from == other.from && where == other.where &&
         group_by == other.group_by && having == other.having;
}

void NameGenerator::Reserve(const std::set<std::string>& taken) {
  taken_.insert(taken.begin(), taken.end());
}

void NameGenerator::Reserve(const std::string& name) { taken_.insert(name); }

std::string NameGenerator::Fresh(const std::string& base) {
  if (taken_.insert(base).second) return base;
  for (int i = 2;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (taken_.insert(candidate).second) return candidate;
  }
}

}  // namespace aqv
