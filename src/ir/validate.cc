#include "ir/validate.h"

#include <algorithm>
#include <set>

namespace aqv {

namespace {

Status CheckColumnKnown(const std::set<std::string>& cols,
                        const std::string& name, const char* where) {
  if (cols.count(name) == 0) {
    return Status::InvalidArgument("column '" + name + "' referenced in " +
                                   where + " is not introduced by FROM");
  }
  return Status::OK();
}

}  // namespace

Status ValidateQuery(const Query& query) {
  if (query.select.empty()) {
    return Status::InvalidArgument("SELECT clause is empty");
  }
  if (query.from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }

  // Unique column names across occurrences.
  std::set<std::string> cols;
  for (const TableRef& t : query.from) {
    if (t.table.empty()) {
      return Status::InvalidArgument("FROM entry with empty table name");
    }
    if (t.columns.empty()) {
      return Status::InvalidArgument("FROM entry '" + t.table +
                                     "' has no columns");
    }
    for (const std::string& c : t.columns) {
      if (!cols.insert(c).second) {
        return Status::InvalidArgument(
            "column name '" + c +
            "' occurs twice in FROM; names must be renamed apart");
      }
    }
  }

  bool has_agg_select = false;
  std::set<std::string> aliases;
  for (const SelectItem& s : query.select) {
    for (const std::string& c : s.ReferencedColumns()) {
      AQV_RETURN_NOT_OK(CheckColumnKnown(cols, c, "SELECT"));
    }
    if (s.is_aggregate()) has_agg_select = true;
    std::string alias = s.alias.empty() ? s.column : s.alias;
    if (alias.empty()) {
      return Status::InvalidArgument("aggregate SELECT item needs an alias: " +
                                     s.ToString());
    }
    if (!aliases.insert(alias).second) {
      return Status::InvalidArgument("duplicate output column '" + alias + "'");
    }
  }

  for (const Predicate& p : query.where) {
    if (!p.IsScalar()) {
      return Status::InvalidArgument("aggregate term in WHERE: " + p.ToString());
    }
    for (const std::string& c : p.ReferencedColumns()) {
      AQV_RETURN_NOT_OK(CheckColumnKnown(cols, c, "WHERE"));
    }
  }

  for (const std::string& g : query.group_by) {
    AQV_RETURN_NOT_OK(CheckColumnKnown(cols, g, "GROUP BY"));
  }

  bool grouped = !query.group_by.empty() || has_agg_select || !query.having.empty();
  if (grouped) {
    for (const SelectItem& s : query.select) {
      if (!s.is_aggregate() &&
          std::find(query.group_by.begin(), query.group_by.end(), s.column) ==
              query.group_by.end()) {
        return Status::InvalidArgument(
            "non-aggregate SELECT column '" + s.column +
            "' must appear in GROUP BY of a grouped query");
      }
    }
  }

  if (!query.having.empty() && !grouped) {
    return Status::InvalidArgument("HAVING on a non-grouped query");
  }
  for (const Predicate& p : query.having) {
    for (const Operand* o : {&p.lhs, &p.rhs}) {
      switch (o->kind) {
        case Operand::Kind::kColumn:
          if (std::find(query.group_by.begin(), query.group_by.end(),
                        o->column) == query.group_by.end()) {
            return Status::InvalidArgument(
                "HAVING references non-grouping column '" + o->column + "'");
          }
          break;
        case Operand::Kind::kAggregate:
          AQV_RETURN_NOT_OK(CheckColumnKnown(cols, o->column, "HAVING"));
          if (!o->multiplier.empty()) {
            AQV_RETURN_NOT_OK(CheckColumnKnown(cols, o->multiplier, "HAVING"));
          }
          break;
        case Operand::Kind::kConstant:
          break;
      }
    }
  }

  if (query.distinct && grouped) {
    // DISTINCT on a grouped query is legal SQL but redundant for the
    // Section 5 analysis; we allow it.
  }

  return Status::OK();
}

}  // namespace aqv
