#include "ir/printer.h"

#include <vector>

#include "base/strings.h"

namespace aqv {

std::string ToSql(const Query& query) {
  std::string out = "SELECT ";
  if (query.distinct) out += "DISTINCT ";
  {
    std::vector<std::string> items;
    items.reserve(query.select.size());
    for (const SelectItem& s : query.select) items.push_back(s.ToString());
    out += Join(items, ", ");
  }
  out += " FROM ";
  {
    std::vector<std::string> tables;
    tables.reserve(query.from.size());
    for (const TableRef& t : query.from) tables.push_back(t.ToString());
    out += Join(tables, ", ");
  }
  if (!query.where.empty()) {
    std::vector<std::string> conds;
    conds.reserve(query.where.size());
    for (const Predicate& p : query.where) conds.push_back(p.ToString());
    out += " WHERE " + Join(conds, " AND ");
  }
  if (!query.group_by.empty()) {
    out += " GROUPBY " + Join(query.group_by, ", ");
  }
  if (!query.having.empty()) {
    std::vector<std::string> conds;
    conds.reserve(query.having.size());
    for (const Predicate& p : query.having) conds.push_back(p.ToString());
    out += " HAVING " + Join(conds, " AND ");
  }
  return out;
}

std::string ToSql(const ViewDef& view) {
  return "CREATE VIEW " + view.name + " AS " + ToSql(view.query);
}

}  // namespace aqv
