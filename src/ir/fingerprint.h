#ifndef AQV_IR_FINGERPRINT_H_
#define AQV_IR_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "ir/query.h"

namespace aqv {

/// Canonical fingerprinting of queries, used to key the service's
/// rewrite-plan cache. Two textually different statements that normalize to
/// the same IR (conjunct order, symmetric-predicate orientation, GROUPBY
/// order) share a fingerprint and therefore a cached plan.
///
/// The normalization is deliberately conservative: it never identifies two
/// queries with different semantics. Queries that are equivalent only up to
/// FROM-occurrence renaming are treated as distinct (detecting that is a
/// query-isomorphism test, not worth it on the lookup hot path).

/// A semantics-preserving normal form of `query`:
///   - WHERE and HAVING conjuncts sorted canonically,
///   - symmetric predicates (=, <>) with operands in canonical order and
///     ordered comparisons oriented by FlipCmpOp so `5 < A` and `A > 5`
///     coincide,
///   - GROUPBY columns sorted (grouping is order-insensitive).
/// SELECT and FROM order are preserved: both affect the output schema.
Query CanonicalizeForCache(const Query& query);

/// Unambiguous serialization of the canonical form. Equal keys imply equal
/// canonical IR, so a cache keyed by this string can never serve the wrong
/// plan to a colliding query.
std::string CanonicalCacheKey(const Query& query);

/// 64-bit FNV-1a hash of CanonicalCacheKey, for cheap bucketing/telemetry.
uint64_t QueryFingerprint(const Query& query);

/// FNV-1a over an arbitrary string (exposed for tests and tools).
uint64_t Fnv1a64(const std::string& bytes);

}  // namespace aqv

#endif  // AQV_IR_FINGERPRINT_H_
