#ifndef AQV_IR_VALIDATE_H_
#define AQV_IR_VALIDATE_H_

#include "base/status.h"
#include "ir/query.h"

namespace aqv {

/// Structural well-formedness of a single-block query:
///  - non-empty SELECT and FROM;
///  - column names unique across all FROM occurrences (Section 2 convention);
///  - every column referenced in SELECT/WHERE/GROUPBY/HAVING is introduced
///    by the FROM clause;
///  - SQL grouping rule: if the query has GROUP BY or any aggregation, every
///    non-aggregate SELECT column is in GROUP BY;
///  - HAVING only on grouped/aggregated queries; HAVING's plain columns must
///    be grouping columns; no aggregate terms in WHERE.
Status ValidateQuery(const Query& query);

}  // namespace aqv

#endif  // AQV_IR_VALIDATE_H_
