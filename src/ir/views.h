#ifndef AQV_IR_VIEWS_H_
#define AQV_IR_VIEWS_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "ir/query.h"

namespace aqv {

/// Registry of named view definitions. The evaluator materializes a view on
/// demand when a query's FROM clause references its name; the rewriter reads
/// definitions from here and registers the auxiliary views (Section 4's
/// `Va`) it synthesizes.
class ViewRegistry {
 public:
  /// Registers `view`. Fails on duplicate names or an invalid definition.
  Status Register(ViewDef view);

  bool Has(const std::string& name) const { return views_.count(name) > 0; }
  Result<const ViewDef*> Get(const std::string& name) const;

  std::vector<std::string> ViewNames() const;

  /// Monotonic registry version, bumped by every successful Register. Plan
  /// caches (src/service) read it to detect view DDL cheaply.
  uint64_t version() const { return version_; }

 private:
  std::map<std::string, ViewDef> views_;
  uint64_t version_ = 0;
};

}  // namespace aqv

#endif  // AQV_IR_VIEWS_H_
