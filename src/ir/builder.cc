#include "ir/builder.h"

#include <cstdio>
#include <cstdlib>

#include "ir/validate.h"

namespace aqv {

QueryBuilder& QueryBuilder::Select(std::string column, std::string alias) {
  query_.select.push_back(
      SelectItem::MakeColumn(std::move(column), std::move(alias)));
  return *this;
}

QueryBuilder& QueryBuilder::SelectAgg(AggFn fn, std::string column,
                                      std::string alias) {
  if (alias.empty()) {
    alias = std::string(AggFnToString(fn)) + "_" + column;
  }
  query_.select.push_back(
      SelectItem::MakeAggregate(fn, std::move(column), std::move(alias)));
  return *this;
}

QueryBuilder& QueryBuilder::Distinct() {
  query_.distinct = true;
  return *this;
}

QueryBuilder& QueryBuilder::From(std::string table,
                                 std::vector<std::string> columns) {
  query_.from.push_back(TableRef{std::move(table), std::move(columns)});
  return *this;
}

QueryBuilder& QueryBuilder::Where(Predicate p) {
  query_.where.push_back(std::move(p));
  return *this;
}

QueryBuilder& QueryBuilder::WhereCols(std::string lhs, CmpOp op,
                                      std::string rhs) {
  query_.where.push_back(Predicate{Operand::Column(std::move(lhs)), op,
                                   Operand::Column(std::move(rhs))});
  return *this;
}

QueryBuilder& QueryBuilder::WhereConst(std::string lhs, CmpOp op, Value rhs) {
  query_.where.push_back(Predicate{Operand::Column(std::move(lhs)), op,
                                   Operand::Constant(std::move(rhs))});
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(std::string column) {
  query_.group_by.push_back(std::move(column));
  return *this;
}

QueryBuilder& QueryBuilder::Having(Predicate p) {
  query_.having.push_back(std::move(p));
  return *this;
}

QueryBuilder& QueryBuilder::HavingAgg(AggFn fn, std::string column, CmpOp op,
                                      Value rhs) {
  query_.having.push_back(Predicate{Operand::Aggregate(fn, std::move(column)),
                                    op, Operand::Constant(std::move(rhs))});
  return *this;
}

QueryBuilder& QueryBuilder::HavingCol(std::string column, CmpOp op, Value rhs) {
  query_.having.push_back(Predicate{Operand::Column(std::move(column)), op,
                                    Operand::Constant(std::move(rhs))});
  return *this;
}

Result<Query> QueryBuilder::Build() const {
  AQV_RETURN_NOT_OK(ValidateQuery(query_));
  return query_;
}

Query QueryBuilder::BuildOrDie() const {
  Result<Query> result = Build();
  if (!result.ok()) {
    std::fprintf(stderr, "QueryBuilder::BuildOrDie: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return *std::move(result);
}

}  // namespace aqv
