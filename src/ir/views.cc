#include "ir/views.h"

#include "ir/validate.h"

namespace aqv {

Status ViewRegistry::Register(ViewDef view) {
  if (view.name.empty()) {
    return Status::InvalidArgument("view name is empty");
  }
  if (views_.count(view.name) > 0) {
    return Status::InvalidArgument("duplicate view '" + view.name + "'");
  }
  AQV_RETURN_NOT_OK(ValidateQuery(view.query));
  std::string name = view.name;
  views_.emplace(std::move(name), std::move(view));
  ++version_;
  return Status::OK();
}

Result<const ViewDef*> ViewRegistry::Get(const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view '" + name + "' not registered");
  }
  return &it->second;
}

std::vector<std::string> ViewRegistry::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, def] : views_) names.push_back(name);
  return names;
}

}  // namespace aqv
