#include "rewrite/cost.h"

#include <algorithm>

#include "exec/planner.h"

namespace aqv {

double CostModel::Estimate(const Query& query, const Database& db,
                           double unknown_input_rows) const {
  size_t n = query.from.size();
  std::vector<double> sizes(n, unknown_input_rows);
  double cost = 0;
  for (size_t i = 0; i < n; ++i) {
    Result<const Table*> t = db.Get(query.from[i].table);
    if (t.ok()) sizes[i] = static_cast<double>((*t)->num_rows());
    cost += sizes[i];  // scan cost
  }

  PredicateClassification cls = ClassifyPredicates(query);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < cls.single_table[i].size(); ++k) {
      sizes[i] *= kFilterSelectivity;
    }
  }

  // Simulate the greedy join order and accumulate intermediate sizes.
  std::vector<size_t> int_sizes(n);
  for (size_t i = 0; i < n; ++i) {
    int_sizes[i] = static_cast<size_t>(std::max(1.0, sizes[i]));
  }
  std::vector<int> order = GreedyJoinOrder(int_sizes, cls.equi_joins);

  std::vector<bool> bound(n, false);
  double card = 0;
  for (size_t step = 0; step < order.size(); ++step) {
    int t = order[step];
    if (step == 0) {
      card = sizes[t];
    } else {
      double joined = card * sizes[t];
      for (const auto& e : cls.equi_joins) {
        bool connects = (e.left_table == t && bound[e.right_table]) ||
                        (e.right_table == t && bound[e.left_table]);
        if (connects) joined *= kJoinSelectivity;
      }
      card = std::max(1.0, joined);
      cost += card;  // materialization of the intermediate
    }
    bound[t] = true;
  }
  return cost + card;  // final pass (grouping/projection)
}

Query ChooseCheapest(const Query& query, const std::vector<Query>& candidates,
                     const Database& db, const CostModel& model,
                     int* chosen_index) {
  const Query* best = &query;
  int best_index = -1;
  double best_cost = model.Estimate(query, db);
  for (size_t i = 0; i < candidates.size(); ++i) {
    double cost = model.Estimate(candidates[i], db);
    if (cost < best_cost) {
      best = &candidates[i];
      best_index = static_cast<int>(i);
      best_cost = cost;
    }
  }
  if (chosen_index != nullptr) *chosen_index = best_index;
  return *best;
}

}  // namespace aqv
