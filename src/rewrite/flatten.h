#ifndef AQV_REWRITE_FLATTEN_H_
#define AQV_REWRITE_FLATTEN_H_

#include <functional>
#include <string>

#include "base/result.h"
#include "ir/query.h"
#include "ir/views.h"

namespace aqv {

/// The Section 7 pre-pass: "multi-block SQL queries (e.g., queries with
/// view tables in the FROM clause) can often be transformed to single-block
/// queries ... In such cases, our techniques can also be applied."
///
/// FlattenViews merges FROM entries that reference *conjunctive, non-
/// DISTINCT* registered views into the enclosing block: the view's FROM
/// entries are spliced in (renamed apart), its WHERE conjuncts are added,
/// and references to the view's outputs are redirected to the underlying
/// columns. This is the classic select-project-join merge and is exact
/// under multiset semantics. Aggregation and DISTINCT views are left in
/// place — merging them would change the block structure's meaning.
///
/// `should_flatten` (optional) filters which view references are merged;
/// returning false leaves a reference alone (e.g. the Optimizer skips views
/// that are materialized — scanning them is the point). Runs to fixpoint,
/// so views defined over views flatten through.
///
/// `flattened` (optional) receives the number of view references merged.
Result<Query> FlattenViews(
    const Query& query, const ViewRegistry& views,
    const std::function<bool(const std::string&)>& should_flatten = nullptr,
    int* flattened = nullptr);

}  // namespace aqv

#endif  // AQV_REWRITE_FLATTEN_H_
