#include "rewrite/set_rewriter.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/validate.h"
#include "reason/residual.h"
#include "rewrite/conditions.h"

namespace aqv {

namespace {

// A functional dependency over query column names.
struct QueryFd {
  std::vector<std::string> lhs;  // empty lhs: rhs pinned by a constant
  std::string rhs;
};

// Closes `attrs` under `fds`.
std::set<std::string> CloseAttributes(std::set<std::string> attrs,
                                      const std::vector<QueryFd>& fds) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const QueryFd& fd : fds) {
      if (attrs.count(fd.rhs) > 0) continue;
      bool covered = std::all_of(
          fd.lhs.begin(), fd.lhs.end(),
          [&attrs](const std::string& a) { return attrs.count(a) > 0; });
      if (covered) {
        attrs.insert(fd.rhs);
        changed = true;
      }
    }
  }
  return attrs;
}

bool IsSetQueryDepth(const Query& query, const Catalog& catalog,
                     const ViewRegistry* views, int depth);

// True if `name` denotes a duplicate-free input: a keyed base table or a
// view whose result is itself a set.
bool IsSetInput(const std::string& name, const Catalog& catalog,
                const ViewRegistry* views, int depth) {
  if (depth > 16) return false;
  Result<const TableDef*> table = catalog.GetTable(name);
  if (table.ok()) return (*table)->IsSet();
  if (views != nullptr) {
    Result<const ViewDef*> view = views->Get(name);
    if (view.ok()) {
      return IsSetQueryDepth((*view)->query, catalog, views, depth + 1);
    }
  }
  return false;
}

bool IsSetQueryDepth(const Query& query, const Catalog& catalog,
                     const ViewRegistry* views, int depth) {
  if (query.distinct) return true;

  if (query.IsAggregation()) {
    // One output row per surviving group; the grouping columns key the
    // result, so it is a set when they are all selected.
    std::vector<std::string> colsel = query.ColSel();
    for (const std::string& g : query.group_by) {
      if (std::find(colsel.begin(), colsel.end(), g) == colsel.end()) {
        return false;
      }
    }
    return true;  // includes the global-aggregate single-row case
  }

  // Conjunctive query: Propositions 5.1 and 5.2.
  // Proposition 5.2: every FROM entry must be a set.
  for (const TableRef& t : query.from) {
    if (!IsSetInput(t.table, catalog, views, depth)) return false;
  }

  // Collect FDs over query column names: per-occurrence table FDs, plus the
  // WHERE clause's equalities (column=column as two-way FDs, column=constant
  // as a pinning FD). This subsumes the foreign-key-join and FD-to-key
  // inferences of Section 5.1.
  std::vector<QueryFd> fds;
  for (const TableRef& t : query.from) {
    Result<const TableDef*> table = catalog.GetTable(t.table);
    if (!table.ok()) continue;  // view occurrence: handled below
    for (const FunctionalDependency& fd : (*table)->fds()) {
      for (int rhs : fd.rhs) {
        QueryFd qfd;
        for (int lhs : fd.lhs) qfd.lhs.push_back(t.columns[lhs]);
        qfd.rhs = t.columns[rhs];
        fds.push_back(std::move(qfd));
      }
    }
  }
  for (const Predicate& p : query.where) {
    if (p.op != CmpOp::kEq) continue;
    if (p.lhs.is_column() && p.rhs.is_column()) {
      fds.push_back(QueryFd{{p.lhs.column}, p.rhs.column});
      fds.push_back(QueryFd{{p.rhs.column}, p.lhs.column});
    } else if (p.lhs.is_column() && p.rhs.is_constant()) {
      fds.push_back(QueryFd{{}, p.lhs.column});
    } else if (p.rhs.is_column() && p.lhs.is_constant()) {
      fds.push_back(QueryFd{{}, p.rhs.column});
    }
  }

  // Proposition 5.1: the SELECT columns must contain (determine) a key of
  // the core table. The core table's key is the concatenation of
  // per-occurrence keys, so the closure of the selected columns must cover
  // a key of every occurrence.
  std::vector<std::string> colsel = query.ColSel();
  std::set<std::string> selected(colsel.begin(), colsel.end());
  std::set<std::string> closure = CloseAttributes(selected, fds);

  for (const TableRef& t : query.from) {
    Result<const TableDef*> table = catalog.GetTable(t.table);
    bool occurrence_keyed = false;
    if (table.ok()) {
      for (const std::vector<int>& key : (*table)->keys()) {
        bool covered = std::all_of(key.begin(), key.end(), [&](int ordinal) {
          return closure.count(t.columns[ordinal]) > 0;
        });
        if (covered) {
          occurrence_keyed = true;
          break;
        }
      }
    } else {
      // A set-valued view occurrence: the full row is its key.
      occurrence_keyed =
          std::all_of(t.columns.begin(), t.columns.end(),
                      [&](const std::string& c) { return closure.count(c) > 0; });
    }
    if (!occurrence_keyed) return false;
  }
  return true;
}

}  // namespace

bool IsSetQuery(const Query& query, const Catalog& catalog,
                const ViewRegistry* views) {
  return IsSetQueryDepth(query, catalog, views, 0);
}

Result<Query> RewriteWithSetView(const Query& query, const ViewDef& view,
                                 const ColumnMapping& mapping) {
  if (!query.IsConjunctive() || !view.query.IsConjunctive()) {
    return Status::InvalidArgument(
        "set-semantics rewriting applies to conjunctive queries and views");
  }

  AQV_ASSIGN_OR_RETURN(RewriteContext ctx,
                       RewriteContext::Create(query, view, mapping));

  // Condition C3 (residual) is unchanged.
  AQV_ASSIGN_OR_RETURN(
      std::vector<Predicate> residual,
      ComputeResidual(query.where, mapping.MapPredicates(view.query.where),
                      ctx.AllowedResidualColumns()));

  // Repeated images: distinct view columns collapsed onto one query column
  // by the many-to-1 mapping received distinct rewritten names; constrain
  // them equal (Example 5.1's "WHERE A1 = A4").
  std::map<std::string, std::string> first_name_for_image;
  std::vector<Predicate> duplicate_links;
  for (const ViewOutput& out : ctx.outputs()) {
    if (!out.is_plain()) continue;
    std::string image = ctx.mapping().MapColumn(out.item.column);
    auto [it, inserted] = first_name_for_image.emplace(image, out.name);
    if (!inserted && it->second != out.name) {
      duplicate_links.push_back(Predicate{Operand::Column(it->second),
                                          CmpOp::kEq,
                                          Operand::Column(out.name)});
    }
  }

  Query out;
  out.distinct = true;  // exact: the original query's result is a set
  out.from = ctx.RewrittenFrom();
  out.where = std::move(residual);
  out.where.insert(out.where.end(), duplicate_links.begin(),
                   duplicate_links.end());

  for (const SelectItem& item : query.select) {
    // Condition C2 (via the context's plain-equivalent lookup).
    if (!ctx.IsMapped(item.column)) {
      out.select.push_back(item);
      continue;
    }
    std::optional<int> p = ctx.PlainEquivalent(item.column);
    if (!p) {
      return Status::Unusable("no view SELECT column is entailed equal to '" +
                              item.column + "' (condition C2)");
    }
    out.select.push_back(SelectItem::MakeColumn(
        ctx.outputs()[*p].name,
        item.alias.empty() ? item.column : item.alias));
  }

  AQV_RETURN_NOT_OK(ValidateQuery(out));
  return out;
}

}  // namespace aqv
