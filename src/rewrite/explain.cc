#include "rewrite/explain.h"

#include "ir/printer.h"
#include "ir/validate.h"
#include "reason/having_normalize.h"

namespace aqv {

bool RewriteExplanation::usable() const {
  for (const MappingExplanation& m : mappings) {
    if (m.usable) return true;
  }
  return false;
}

std::string RewriteExplanation::ToString() const {
  std::string out = "view " + view + ": ";
  if (mappings.empty()) {
    out += "no candidate column mapping (no same-named FROM tables)\n";
    return out;
  }
  out += std::to_string(mappings.size()) + " candidate mapping(s)";
  if (having_conjuncts_moved > 0) {
    out += ", " + std::to_string(having_conjuncts_moved) +
           " HAVING conjunct(s) moved to WHERE (Section 3.3)";
  }
  out += "\n";
  for (size_t i = 0; i < mappings.size(); ++i) {
    const MappingExplanation& m = mappings[i];
    out += "  [" + std::to_string(i + 1) + "] " + m.mapping.ToString() + "\n";
    if (m.usable) {
      out += "      usable -> " + ToSql(m.rewritten) + "\n";
    } else {
      out += "      refused: " + m.detail + "\n";
    }
  }
  return out;
}

Result<RewriteExplanation> ExplainRewrite(const Query& query,
                                          const ViewDef& view,
                                          const RewriteOptions& options) {
  AQV_RETURN_NOT_OK(ValidateQuery(query));
  AQV_RETURN_NOT_OK(ValidateQuery(view.query));

  RewriteExplanation out;
  out.view = view.name;
  out.view_is_aggregation = view.query.IsAggregation();

  Query q = query;
  if (options.normalize_having) {
    out.having_conjuncts_moved = NormalizeHaving(&q);
  }

  for (const ColumnMapping& mapping :
       EnumerateColumnMappings(view.query, q, /*one_to_one=*/true,
                               options.max_mappings)) {
    MappingExplanation m{mapping, false, "", Query{}};
    Result<Query> rewritten =
        view.query.IsConjunctive()
            ? RewriteWithConjunctiveView(q, view, mapping)
            : RewriteWithAggregateView(q, view, mapping);
    if (rewritten.ok()) {
      m.usable = true;
      m.detail = "usable";
      m.rewritten = *std::move(rewritten);
    } else if (rewritten.status().code() == StatusCode::kUnusable) {
      m.detail = rewritten.status().message();
    } else {
      return rewritten.status();
    }
    out.mappings.push_back(std::move(m));
  }
  return out;
}

}  // namespace aqv
