#ifndef AQV_REWRITE_SET_REWRITER_H_
#define AQV_REWRITE_SET_REWRITER_H_

#include "base/result.h"
#include "catalog/catalog.h"
#include "ir/query.h"
#include "ir/views.h"
#include "rewrite/mapping.h"

namespace aqv {

/// Section 5.1: determines from catalog meta-data alone (keys, functional
/// dependencies, DISTINCT, grouping) that the result of `query` is a set on
/// every database instance.
///
///  - SELECT DISTINCT results are sets by definition.
///  - A grouped/aggregated query is a set when every grouping column appears
///    in the SELECT clause (the grouping columns key the result); a global
///    aggregate yields a single row.
///  - A conjunctive query is a set iff its core table is a set — every FROM
///    entry is duplicate-free (Proposition 5.2): a base table with a key, or
///    a view whose own result is a set — and the SELECT columns contain a
///    key of the core table (Proposition 5.1). Core keys are derived by
///    closing the SELECT columns under per-occurrence table FDs plus the
///    WHERE clause's equalities (column=column as two-way FDs and
///    column=constant as a pinning FD); this subsumes the paper's
///    foreign-key-join and FD-to-key inferences.
///
/// `views` may be null when the query references base tables only.
bool IsSetQuery(const Query& query, const Catalog& catalog,
                const ViewRegistry* views);

/// Section 5.2: rewrites a conjunctive query using a conjunctive view under
/// a (possibly many-to-1) column mapping, valid when both results are known
/// to be sets. Conditions C2 and C3 still apply; repeated images among the
/// view's SELECT columns become fresh column names constrained equal in the
/// rewritten WHERE clause (Example 5.1). The result carries DISTINCT, which
/// is exact because the original query's result is a set.
///
/// The caller is responsible for having established set-ness of both query
/// and view (via IsSetQuery).
Result<Query> RewriteWithSetView(const Query& query, const ViewDef& view,
                                 const ColumnMapping& mapping);

}  // namespace aqv

#endif  // AQV_REWRITE_SET_REWRITER_H_
