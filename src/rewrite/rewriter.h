#ifndef AQV_REWRITE_REWRITER_H_
#define AQV_REWRITE_REWRITER_H_

#include <string>
#include <vector>

#include "base/exec_context.h"
#include "base/result.h"
#include "catalog/catalog.h"
#include "ir/query.h"
#include "ir/views.h"
#include "rewrite/mapping.h"

namespace aqv {

/// Rewriting policy knobs.
struct RewriteOptions {
  /// Section 3.3: move HAVING conditions into WHERE before testing
  /// usability (strengthens Conds(Q), detecting more usable views).
  bool normalize_having = true;

  /// Section 5: when the catalog proves both query and view produce sets,
  /// admit many-to-1 column mappings (conjunctive case only).
  bool use_key_information = false;

  /// Backstop on mapping enumeration per (query, view) pair.
  int max_mappings = kDefaultMappingLimit;

  /// Views excluded from rewrite candidacy (service-level quarantine after
  /// repeated rewrite-time failures; cleared by a successful REFRESH).
  std::vector<std::string> quarantined_views;
};

/// Short token naming the paper condition behind a kUnusable status, for
/// trace attributes and logs: "C1", "C2", "C2'", "C4'", ... from the
/// condition the message cites, "S4.3"/"S4.5" for section-level
/// rejections, "other" when the message names no condition, and "" for OK
/// or non-kUnusable statuses.
std::string RejectConditionToken(const Status& status);

/// One rewriting of a query using one view occurrence.
struct Rewriting {
  Query query;          // Q', multiset-equivalent to the input query
  std::string view;     // the view incorporated by this step
  ColumnMapping mapping;  // the column mapping φ that justified it
};

/// Rewrites `query` to use `view` under the fixed column mapping `mapping`.
/// Dispatches on the view's shape: Section 3 steps S1–S4 for a conjunctive
/// view, Section 4 steps S1'–S5' for an aggregation view (with the
/// multiplicity-weighting correction described in DESIGN.md). Returns
/// kUnusable when conditions C1–C4 / C1,C2'–C4' fail.
Result<Query> RewriteWithViewMapping(const Query& query, const ViewDef& view,
                                     const ColumnMapping& mapping,
                                     const RewriteOptions& options = {});

/// Section 3 path: aggregation (or conjunctive) query, conjunctive view.
Result<Query> RewriteWithConjunctiveView(const Query& query,
                                         const ViewDef& view,
                                         const ColumnMapping& mapping);

/// Section 4 path: aggregation query, aggregation view. A conjunctive query
/// is rejected per Section 4.5 (grouping in the view loses multiplicities).
Result<Query> RewriteWithAggregateView(const Query& query, const ViewDef& view,
                                       const ColumnMapping& mapping);

/// The top-level engine: enumerates mappings, applies the per-mapping
/// rewriters, iterates over multiple views (Section 3.2), and exposes the
/// Section 5 set-semantics mode.
class Rewriter {
 public:
  /// `views` must outlive the Rewriter. `catalog` is only needed for the
  /// Section 5 key reasoning and may be null.
  explicit Rewriter(const ViewRegistry* views, const Catalog* catalog = nullptr,
                    RewriteOptions options = RewriteOptions{})
      : views_(views), catalog_(catalog), options_(options) {}

  /// Every rewriting of `query` that incorporates one occurrence of the
  /// named view (one candidate per usable column mapping). Empty result
  /// means the view is not usable. Statuses other than OK indicate
  /// malformed input.
  Result<std::vector<Rewriting>> RewritingsUsingView(
      const Query& query, const std::string& view_name) const;

  /// First usable rewriting with the named view, or kUnusable.
  Result<Query> RewriteUsingView(const Query& query,
                                 const std::string& view_name) const;

  /// Section 3.2 iterative procedure: folds the views into the query one at
  /// a time in the given order, skipping unusable ones; each incorporated
  /// view is thereafter treated as a database table. Returns the final
  /// query; `views_used` (optional) receives the names incorporated.
  Result<Query> RewriteIteratively(const Query& query,
                                   const std::vector<std::string>& view_names,
                                   std::vector<std::string>* views_used) const;

  /// Every distinct query reachable from `query` by iterative single-view
  /// substitutions over `view_names` (views may be used repeatedly), up to
  /// `max_results`. By Theorem 3.2 this enumerates all rewritings for
  /// equality-only predicates. The input query itself is not included.
  ///
  /// Governance and degradation: when `ctx` carries a deadline/cancel flag,
  /// enumeration cuts off gracefully at the limit and returns the
  /// candidates found so far. When `failed_views` is non-null, a view whose
  /// rewriting attempt fails with a real error (not kUnusable — including
  /// an injected "rewrite.enumerate" fault) is skipped and its name
  /// recorded there instead of failing the whole enumeration; with a null
  /// `failed_views` such errors propagate as before.
  Result<std::vector<Query>> EnumerateAllRewritings(
      const Query& query, const std::vector<std::string>& view_names,
      int max_results = 64, ExecContext* ctx = nullptr,
      std::vector<std::string>* failed_views = nullptr) const;

  const RewriteOptions& options() const { return options_; }

 private:
  const ViewRegistry* views_;
  const Catalog* catalog_;
  RewriteOptions options_;
};

}  // namespace aqv

#endif  // AQV_REWRITE_REWRITER_H_
