#include "rewrite/multiview.h"

#include <algorithm>
#include <vector>

#include "base/strings.h"
#include "base/trace.h"

namespace aqv {

std::string CanonicalQueryKey(const Query& query) {
  // One span per candidate dedup-key build: in a traced enumeration this
  // shows how much of the search loop goes to canonicalization.
  TraceSpan span("rewrite.canonical_key");
  std::vector<std::string> from;
  for (const TableRef& t : query.from) from.push_back(t.ToString());
  std::sort(from.begin(), from.end());

  std::vector<std::string> where;
  for (const Predicate& p : query.where) {
    // Orient symmetric atoms so "A = B" and "B = A" coincide.
    Predicate q = p;
    if ((q.op == CmpOp::kEq || q.op == CmpOp::kNe) && q.rhs < q.lhs) {
      std::swap(q.lhs, q.rhs);
    }
    if (q.op == CmpOp::kGt || q.op == CmpOp::kGe) {
      std::swap(q.lhs, q.rhs);
      q.op = FlipCmpOp(q.op);
    }
    where.push_back(q.ToString());
  }
  std::sort(where.begin(), where.end());

  std::vector<std::string> groups = query.group_by;
  std::sort(groups.begin(), groups.end());

  std::vector<std::string> having;
  for (const Predicate& p : query.having) having.push_back(p.ToString());
  std::sort(having.begin(), having.end());

  std::vector<std::string> select;
  for (const SelectItem& s : query.select) select.push_back(s.ToString());

  std::string key;
  key += "SELECT " + std::string(query.distinct ? "DISTINCT " : "") +
         Join(select, ", ");
  key += " FROM " + Join(from, ", ");
  key += " WHERE " + Join(where, " AND ");
  key += " GROUPBY " + Join(groups, ", ");
  key += " HAVING " + Join(having, " AND ");
  return key;
}

}  // namespace aqv
