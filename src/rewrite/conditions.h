#ifndef AQV_REWRITE_CONDITIONS_H_
#define AQV_REWRITE_CONDITIONS_H_

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "ir/query.h"
#include "reason/closure.h"
#include "rewrite/mapping.h"

namespace aqv {

/// How one SELECT position of the view surfaces in the rewritten query:
/// its position in Sel(V), the fresh-or-mapped column name it carries in the
/// rewritten query's FROM entry for the view, and what kind of value it is.
struct ViewOutput {
  int position = 0;
  std::string name;
  SelectItem item;  // the view's select item (copied)

  bool is_plain() const { return item.kind == SelectItem::Kind::kColumn; }
  bool is_count() const {
    return item.kind == SelectItem::Kind::kAggregate && item.agg == AggFn::kCount;
  }
};

/// Everything the Section 3 and Section 4 rewriters share for one
/// (query, view, mapping) triple: the closure of Conds(Q) (used by every
/// "Conds(Q) implies A = φ(B)" test in conditions C2/C2'/C4/C4'), the view
/// outputs with their assigned rewritten-query names, and the lookups the
/// rewriting steps perform.
class RewriteContext {
 public:
  /// Builds the context. Fails only on malformed inputs, not on usability —
  /// usability failures surface from the rewriters' condition checks.
  static Result<RewriteContext> Create(const Query& query, const ViewDef& view,
                                       const ColumnMapping& mapping);

  const Query& query() const { return *query_; }
  const ViewDef& view() const { return *view_; }
  const ColumnMapping& mapping() const { return *mapping_; }
  const ConstraintClosure& query_closure() const { return query_closure_; }
  const std::vector<ViewOutput>& outputs() const { return outputs_; }

  /// True if `query_col` is in φ(Cols(V)), i.e. belongs to a replaced
  /// occurrence.
  bool IsMapped(const std::string& query_col) const {
    return mapping_->MappedQueryColumns().count(query_col) > 0;
  }

  /// The B_A of conditions C2/C2'/C4: a plain view output whose image is
  /// entailed equal to `query_col` by Conds(Q). Prefers the output whose
  /// image *is* the column.
  std::optional<int> PlainEquivalent(const std::string& query_col) const;

  /// A view aggregate output AGG(B) with fn `fn` whose (mapped) argument is
  /// entailed equal to `arg` by Conds(Q) (condition C4' part 1(a)).
  std::optional<int> AggregateOutput(AggFn fn, const AggArg& arg) const;

  /// The COUNT column of conditions C4' 1(b)/2, if any.
  std::optional<int> CountOutput() const;

  /// Columns of the query occurrences the view does not replace.
  const std::set<std::string>& kept_columns() const { return kept_columns_; }

  /// The column set the C3/C3' residual may mention: kept columns plus the
  /// images of the view's plain outputs (for an aggregation view this is
  /// φ(ColSel(V)) — aggregated columns are not available for extra
  /// constraints, Example 4.4).
  std::set<std::string> AllowedResidualColumns() const;

  /// The FROM entry for the view in the rewritten query.
  TableRef ViewTableRef() const;

  /// The rewritten FROM clause: kept occurrences (in order) plus the view.
  std::vector<TableRef> RewrittenFrom() const;

 private:
  RewriteContext() = default;

  const Query* query_ = nullptr;
  const ViewDef* view_ = nullptr;
  const ColumnMapping* mapping_ = nullptr;
  ConstraintClosure query_closure_;
  std::vector<ViewOutput> outputs_;
  std::set<std::string> kept_columns_;
};

}  // namespace aqv

#endif  // AQV_REWRITE_CONDITIONS_H_
