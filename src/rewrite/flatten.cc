#include "rewrite/flatten.h"

#include <map>

#include "ir/validate.h"

namespace aqv {

namespace {

// Applies a column rename to every reference in `query` (select items,
// WHERE, GROUP BY, HAVING). FROM entries are not touched.
void RenameReferences(Query* query,
                      const std::map<std::string, std::string>& rename) {
  auto fix = [&rename](std::string* col) {
    auto it = rename.find(*col);
    if (it != rename.end()) *col = it->second;
  };
  for (SelectItem& s : query->select) {
    switch (s.kind) {
      case SelectItem::Kind::kColumn:
        // Keep the output name stable: the alias (defaulting to the old
        // column name) survives the redirection.
        if (s.alias.empty()) s.alias = s.column;
        fix(&s.column);
        break;
      case SelectItem::Kind::kRatio:
        fix(&s.den.column);
        if (s.den.scaled()) fix(&s.den.multiplier);
        [[fallthrough]];
      case SelectItem::Kind::kAggregate:
        fix(&s.arg.column);
        if (s.arg.scaled()) fix(&s.arg.multiplier);
        break;
    }
  }
  for (Predicate& p : query->where) {
    for (Operand* o : {&p.lhs, &p.rhs}) {
      if (o->is_constant()) continue;
      fix(&o->column);
      if (o->is_aggregate() && !o->multiplier.empty()) fix(&o->multiplier);
    }
  }
  for (std::string& g : query->group_by) fix(&g);
  for (Predicate& p : query->having) {
    for (Operand* o : {&p.lhs, &p.rhs}) {
      if (o->is_constant()) continue;
      fix(&o->column);
      if (o->is_aggregate() && !o->multiplier.empty()) fix(&o->multiplier);
    }
  }
}

}  // namespace

Result<Query> FlattenViews(
    const Query& query, const ViewRegistry& views,
    const std::function<bool(const std::string&)>& should_flatten,
    int* flattened) {
  AQV_RETURN_NOT_OK(ValidateQuery(query));
  Query out = query;
  int merged = 0;

  // Fixpoint loop with a depth guard against (ill-formed) cyclic view
  // definitions.
  for (int round = 0; round < 32; ++round) {
    int index = -1;
    const ViewDef* view = nullptr;
    for (size_t i = 0; i < out.from.size(); ++i) {
      const std::string& name = out.from[i].table;
      if (!views.Has(name)) continue;
      if (should_flatten && !should_flatten(name)) continue;
      Result<const ViewDef*> def = views.Get(name);
      if (!def.ok()) return def.status();
      if (!(*def)->query.IsConjunctive() || (*def)->query.distinct) continue;
      index = static_cast<int>(i);
      view = *def;
      break;
    }
    if (index < 0) break;

    const TableRef occurrence = out.from[index];
    const Query& inner = view->query;

    // Rename the inner block's columns apart from everything in `out`.
    NameGenerator names;
    names.Reserve(out.AllColumns());
    std::map<std::string, std::string> inner_rename;
    std::vector<TableRef> inner_from = inner.from;
    for (TableRef& t : inner_from) {
      for (std::string& c : t.columns) {
        std::string fresh = names.Fresh(c);
        inner_rename[c] = fresh;
        c = fresh;
      }
    }

    // Redirect the occurrence's columns to the inner SELECT's sources.
    std::map<std::string, std::string> redirect;
    for (size_t p = 0; p < occurrence.columns.size(); ++p) {
      if (p >= inner.select.size()) {
        return Status::InvalidArgument(
            "view reference '" + occurrence.table + "' arity exceeds the view");
      }
      redirect[occurrence.columns[p]] =
          inner_rename.at(inner.select[p].column);
    }
    RenameReferences(&out, redirect);

    // Splice FROM and WHERE.
    out.from.erase(out.from.begin() + index);
    out.from.insert(out.from.begin() + index, inner_from.begin(),
                    inner_from.end());
    for (const Predicate& p : inner.where) {
      Predicate renamed = p;
      for (Operand* o : {&renamed.lhs, &renamed.rhs}) {
        if (o->is_constant()) continue;
        o->column = inner_rename.at(o->column);
      }
      out.where.push_back(std::move(renamed));
    }
    ++merged;
  }

  AQV_RETURN_NOT_OK(ValidateQuery(out));
  if (flattened != nullptr) *flattened = merged;
  return out;
}

}  // namespace aqv
