#ifndef AQV_REWRITE_COST_H_
#define AQV_REWRITE_COST_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "exec/table.h"
#include "ir/query.h"
#include "ir/views.h"
#include "rewrite/rewriter.h"

namespace aqv {

/// A deliberately simple cardinality-based cost model, enough to rank a
/// query against its rewritings (a summary view several orders of magnitude
/// smaller than its base table wins by scan size alone). Cost is the sum of
/// input cardinalities plus estimated intermediate join cardinalities under
/// a textbook independence model: single-table conjuncts keep a fraction
/// `kFilterSelectivity` of rows, and each equi-join edge contributes a
/// `kJoinSelectivity` factor to the joined cardinality.
struct CostModel {
  static constexpr double kFilterSelectivity = 0.3;
  static constexpr double kJoinSelectivity = 0.01;

  /// Estimated cost of evaluating `query` against `db`. FROM entries must
  /// resolve to stored tables (materialized views included); an entry that
  /// does not resolve is priced at `unknown_input_rows`.
  double Estimate(const Query& query, const Database& db,
                  double unknown_input_rows = 1e12) const;
};

/// Ranks `query` and `candidates` by estimated cost and returns a copy of
/// the cheapest (which may be the original query). Ties keep the earlier
/// entry. `chosen_index` (optional) receives -1 for the original query or
/// the winning candidate's index.
Query ChooseCheapest(const Query& query, const std::vector<Query>& candidates,
                     const Database& db, const CostModel& model = CostModel{},
                     int* chosen_index = nullptr);

}  // namespace aqv

#endif  // AQV_REWRITE_COST_H_
