#include "rewrite/mapping.h"

#include <algorithm>

namespace aqv {

ColumnMapping::ColumnMapping(const Query& view, const Query& query,
                             std::vector<int> table_assignment)
    : table_assignment_(std::move(table_assignment)) {
  for (size_t i = 0; i < table_assignment_.size(); ++i) {
    const TableRef& v = view.from[i];
    const TableRef& q = query.from[table_assignment_[i]];
    for (size_t j = 0; j < v.columns.size(); ++j) {
      column_map_[v.columns[j]] = q.columns[j];
      mapped_query_columns_.insert(q.columns[j]);
    }
  }
}

bool ColumnMapping::IsOneToOne() const {
  std::set<int> targets(table_assignment_.begin(), table_assignment_.end());
  return targets.size() == table_assignment_.size();
}

std::string ColumnMapping::MapColumn(const std::string& view_column) const {
  auto it = column_map_.find(view_column);
  return it == column_map_.end() ? view_column : it->second;
}

Predicate ColumnMapping::MapPredicate(const Predicate& pred) const {
  Predicate out = pred;
  for (Operand* o : {&out.lhs, &out.rhs}) {
    if (o->is_constant()) continue;
    o->column = MapColumn(o->column);
    if (o->is_aggregate() && !o->multiplier.empty()) {
      o->multiplier = MapColumn(o->multiplier);
    }
  }
  return out;
}

std::vector<Predicate> ColumnMapping::MapPredicates(
    const std::vector<Predicate>& preds) const {
  std::vector<Predicate> out;
  out.reserve(preds.size());
  for (const Predicate& p : preds) out.push_back(MapPredicate(p));
  return out;
}

std::set<int> ColumnMapping::MappedQueryTables() const {
  return std::set<int>(table_assignment_.begin(), table_assignment_.end());
}

std::string ColumnMapping::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [from, to] : column_map_) {
    if (!first) out += ", ";
    first = false;
    out += from + " -> " + to;
  }
  out += "}";
  return out;
}

std::vector<ColumnMapping> EnumerateColumnMappings(const Query& view,
                                                   const Query& query,
                                                   bool one_to_one, int limit) {
  std::vector<ColumnMapping> mappings;
  size_t n = view.from.size();

  // Candidate query occurrences per view occurrence: same table name and
  // arity (arity can differ when the name denotes a view used with
  // different projections; those never correspond).
  std::vector<std::vector<int>> candidates(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < query.from.size(); ++j) {
      if (view.from[i].table == query.from[j].table &&
          view.from[i].columns.size() == query.from[j].columns.size()) {
        candidates[i].push_back(static_cast<int>(j));
      }
    }
    if (candidates[i].empty()) return mappings;
  }

  std::vector<int> assignment(n, -1);
  std::vector<bool> used(query.from.size(), false);

  // Depth-first enumeration of assignments.
  auto enumerate = [&](auto&& self, size_t depth) -> void {
    if (static_cast<int>(mappings.size()) >= limit) return;
    if (depth == n) {
      mappings.emplace_back(view, query, assignment);
      return;
    }
    for (int target : candidates[depth]) {
      if (one_to_one && used[target]) continue;
      assignment[depth] = target;
      if (one_to_one) used[target] = true;
      self(self, depth + 1);
      if (one_to_one) used[target] = false;
      if (static_cast<int>(mappings.size()) >= limit) return;
    }
  };
  enumerate(enumerate, 0);
  return mappings;
}

}  // namespace aqv
