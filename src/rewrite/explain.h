#ifndef AQV_REWRITE_EXPLAIN_H_
#define AQV_REWRITE_EXPLAIN_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "ir/query.h"
#include "ir/views.h"
#include "rewrite/mapping.h"
#include "rewrite/rewriter.h"

namespace aqv {

/// The verdict for one candidate column mapping: either the rewriting it
/// produced, or which usability condition refused it and why.
struct MappingExplanation {
  ColumnMapping mapping;
  bool usable = false;
  std::string detail;  // refusal reason (C1..C4/C2'..C4' message) or "usable"
  Query rewritten;     // valid only when usable
};

/// The full trace of testing one view against one query — the answer to
/// "why wasn't my summary table used?".
struct RewriteExplanation {
  std::string view;
  bool view_is_aggregation = false;
  int having_conjuncts_moved = 0;  // Section 3.3 pre-processing effect
  std::vector<MappingExplanation> mappings;

  bool usable() const;
  std::string ToString() const;
};

/// Runs the usability analysis of `view` against `query` and reports the
/// outcome of every candidate mapping. Unlike Rewriter::RewritingsUsingView
/// this never hides refusals: each mapping's failing condition is recorded.
Result<RewriteExplanation> ExplainRewrite(const Query& query,
                                          const ViewDef& view,
                                          const RewriteOptions& options = {});

}  // namespace aqv

#endif  // AQV_REWRITE_EXPLAIN_H_
