#include <algorithm>
#include <string>
#include <utility>

#include "base/trace.h"
#include "ir/validate.h"
#include "reason/having_normalize.h"
#include "reason/residual.h"
#include "rewrite/conditions.h"
#include "rewrite/rewriter.h"

namespace aqv {

namespace {

// Condition C2': a mapped query grouping column needs a *non-aggregation*
// view output entailed equal to it.
Result<std::string> StrictReplace(const RewriteContext& ctx,
                                  const std::string& column) {
  if (!ctx.IsMapped(column)) return column;
  std::optional<int> p = ctx.PlainEquivalent(column);
  if (!p) {
    return Status::Unusable("no view grouping column is entailed equal to '" +
                            column + "' (condition C2')");
  }
  return ctx.outputs()[*p].name;
}

// Rewrites one aggregate term AGG(arg) of the query into an aggregate over
// the view's outputs (steps S4'/S5', with the multiplicity-weighting
// correction documented in DESIGN.md). Returns the replacement function and
// argument. AVG is decomposed by the caller into a SUM/SUM ratio and never
// reaches here.
Result<std::pair<AggFn, AggArg>> RewriteAggTerm(const RewriteContext& ctx,
                                                AggFn fn, const AggArg& arg) {
  const bool arg_mapped = ctx.IsMapped(arg.column);
  const bool mult_mapped = arg.scaled() && ctx.IsMapped(arg.multiplier);
  std::optional<int> count_pos = ctx.CountOutput();
  auto count_name = [&]() { return ctx.outputs()[*count_pos].name; };

  switch (fn) {
    case AggFn::kMin:
    case AggFn::kMax: {
      // Extrema are multiplicity-invariant, so the lost multiplicities never
      // matter; we only need the argument's value per view row.
      if (!arg.scaled() && arg_mapped) {
        if (std::optional<int> p = ctx.AggregateOutput(fn, arg)) {
          // Step S4' 1(a): MIN of group minima is the overall minimum.
          return std::make_pair(fn, AggArg{ctx.outputs()[*p].name, ""});
        }
      }
      AggArg out = arg;
      if (arg_mapped) {
        std::optional<int> p = ctx.PlainEquivalent(arg.column);
        if (!p) {
          return Status::Unusable(
              "condition C4' 1(a): view has neither " +
              std::string(AggFnToString(fn)) + "(" + arg.column +
              ") nor an equal grouping column");
        }
        out.column = ctx.outputs()[*p].name;
      }
      if (mult_mapped) {
        std::optional<int> p = ctx.PlainEquivalent(arg.multiplier);
        if (!p) {
          return Status::Unusable(
              "condition C4' 1(a): no view grouping column equals scaled "
              "argument '" +
              arg.multiplier + "'");
        }
        out.multiplier = ctx.outputs()[*p].name;
      }
      return std::make_pair(fn, std::move(out));
    }

    case AggFn::kSum: {
      if (arg.scaled()) {
        // SUM over a product: usable only when the view computed the exact
        // same product-sum; re-weighting would need a triple product.
        if (arg_mapped && mult_mapped) {
          if (std::optional<int> p = ctx.AggregateOutput(AggFn::kSum, arg)) {
            return std::make_pair(AggFn::kSum,
                                  AggArg{ctx.outputs()[*p].name, ""});
          }
        }
        return Status::Unusable(
            "SUM over a product argument cannot be re-weighted through an "
            "aggregation view");
      }
      if (arg_mapped) {
        // Step S4' 1(a): the view computed SUM of the same column.
        if (std::optional<int> p = ctx.AggregateOutput(AggFn::kSum, arg)) {
          return std::make_pair(AggFn::kSum, AggArg{ctx.outputs()[*p].name, ""});
        }
        // Step S4' 1(b), corrected: a grouping column weighted by the
        // group's multiplicity N — SUM(B_A * N).
        if (std::optional<int> p = ctx.PlainEquivalent(arg.column);
            p && count_pos) {
          return std::make_pair(AggFn::kSum,
                                AggArg{ctx.outputs()[*p].name, count_name()});
        }
        // Section 4.4: SUM recovered from AVG * COUNT.
        if (std::optional<int> p = ctx.AggregateOutput(AggFn::kAvg, arg);
            p && count_pos) {
          return std::make_pair(AggFn::kSum,
                                AggArg{ctx.outputs()[*p].name, count_name()});
        }
        return Status::Unusable(
            "condition C4' 1: view provides neither SUM(" + arg.column +
            ") nor an equal grouping column plus a COUNT column");
      }
      // Step S5', corrected: SUM of a non-view column, weighted by the
      // view group's multiplicity — SUM(A * N).
      if (!count_pos) {
        return Status::Unusable(
            "condition C4' 2: view lacks a COUNT column to recover the "
            "multiplicities needed by SUM(" +
            arg.column + ")");
      }
      return std::make_pair(AggFn::kSum, AggArg{arg.column, count_name()});
    }

    case AggFn::kCount: {
      // COUNT of anything equals the recovered base multiplicity: SUM(N).
      // (Exact under the null-free data model; see DESIGN.md.)
      if (!count_pos) {
        return Status::Unusable(
            "condition C4' 1(b)/2: view lacks a COUNT column");
      }
      return std::make_pair(AggFn::kSum, AggArg{count_name(), ""});
    }

    case AggFn::kAvg:
      return Status::Unusable(
          "AVG terms in HAVING are not supported through aggregation views");
  }
  return Status::Internal("unreachable aggregate kind");
}

// Canonical pseudo-column name for an aggregate value at the group level,
// used to compare GConds(Q) with φ(GConds(V)) (Section 4.3). Arguments are
// canonicalized to their Conds(Q)-equality-class representative so that
// SUM(A) and SUM(A') align when Conds(Q) entails A = A'. COUNT ignores its
// argument (all columns count the same rows).
std::string PseudoAggName(const ConstraintClosure& closure, AggFn fn,
                          const AggArg& arg) {
  if (fn == AggFn::kCount) return "#COUNT";
  auto canon = [&closure](const std::string& col) {
    std::vector<std::string> eq = closure.EqualColumns(col);
    if (eq.empty()) return col;
    return *std::min_element(eq.begin(), eq.end());
  };
  std::string name = std::string("#") + AggFnToString(fn) + ":" +
                     canon(arg.column);
  if (arg.scaled()) name += "*" + canon(arg.multiplier);
  return name;
}

Predicate PseudoizeHavingAtom(const ConstraintClosure& closure,
                              const Predicate& p) {
  Predicate out = p;
  for (Operand* o : {&out.lhs, &out.rhs}) {
    if (o->is_aggregate()) {
      *o = Operand::Column(PseudoAggName(closure, o->agg, o->agg_arg()));
    }
  }
  return out;
}

// Section 4.3 usability checks for a view whose (normalized) definition
// still carries HAVING conditions. Sound, conservative conditions:
//  (a) no coalescing — every view grouping column's image is pinned (equal
//      to a query grouping column or to a constant) by Conds(Q), so each
//      query group draws from exactly one view group;
//  (b) scale-safety — if the view's HAVING constrains SUM/COUNT/AVG values,
//      the query must not join the view with other tables (extra tables
//      multiply group contents, breaking the identification of the query's
//      aggregate values with the view's);
//  (c) entailment — Conds(Q) ∧ GConds(Q) must entail φ(GConds(V)) at the
//      group level, so every group the view discarded is one the query
//      discards too.
Status CheckViewHavingUsable(const RewriteContext& ctx,
                             const std::vector<Predicate>& view_having) {
  if (view_having.empty()) return Status::OK();
  const Query& query = ctx.query();
  const ConstraintClosure& closure = ctx.query_closure();

  // (a) No coalescing.
  for (const std::string& g : ctx.view().query.group_by) {
    std::string image = ctx.mapping().MapColumn(g);
    bool pinned = closure.ConstantFor(image).has_value();
    for (const std::string& qg : query.group_by) {
      if (pinned) break;
      pinned = closure.AreEqual(Operand::Column(image), Operand::Column(qg));
    }
    if (!pinned) {
      return Status::Unusable(
          "view HAVING with coalesced groups: grouping column '" + image +
          "' is not pinned by the query (Section 4.3)");
    }
  }

  // (b) Scale-safety.
  bool has_scaling_sensitive = false;
  for (const Predicate& p : view_having) {
    for (const Operand* o : {&p.lhs, &p.rhs}) {
      if (o->is_aggregate() && o->agg != AggFn::kMin && o->agg != AggFn::kMax) {
        has_scaling_sensitive = true;
      }
    }
  }
  if (has_scaling_sensitive && !ctx.kept_columns().empty()) {
    return Status::Unusable(
        "view HAVING constrains SUM/COUNT/AVG but the query joins additional "
        "tables (Section 4.3)");
  }

  // (c) Entailment of φ(GConds(V)) by Conds(Q) ∧ GConds(Q).
  std::vector<Predicate> premises = query.where;
  for (const Predicate& p : query.having) {
    premises.push_back(PseudoizeHavingAtom(closure, p));
  }
  Result<ConstraintClosure> premise_closure = ConstraintClosure::Build(premises);
  if (!premise_closure.ok()) return premise_closure.status();
  for (const Predicate& p : view_having) {
    Predicate mapped = ctx.mapping().MapPredicate(p);
    Predicate pseudo = PseudoizeHavingAtom(closure, mapped);
    if (!premise_closure->Implies(pseudo)) {
      return Status::Unusable(
          "query does not entail the view's HAVING condition " +
          mapped.ToString() + " (Section 4.3)");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Query> RewriteWithAggregateView(const Query& query, const ViewDef& view,
                                       const ColumnMapping& mapping) {
  TraceSpan span("rewrite.aggregate");
  if (span.active()) span.AddAttr("view", view.name);
  if (view.query.IsConjunctive()) {
    return Status::InvalidArgument(
        "RewriteWithAggregateView requires an aggregation view");
  }
  // Section 4.5: an aggregation view cannot answer a conjunctive query
  // under multiset semantics — the view's GROUPBY lost the multiplicities.
  if (query.IsConjunctive()) {
    return Status::Unusable(
        "an aggregation view cannot answer a conjunctive query under "
        "multiset semantics (Section 4.5)");
  }
  if (!mapping.IsOneToOne()) {
    return Status::Unusable(
        "condition C1: the column mapping must be 1-1 under multiset "
        "semantics");
  }

  // Section 4.3 normal form: move what can be moved from the view's HAVING
  // into its WHERE, so Conds and GConds can be compared independently.
  ViewDef norm_view = view;
  NormalizeHaving(&norm_view.query);

  AQV_ASSIGN_OR_RETURN(RewriteContext ctx,
                       RewriteContext::Create(query, norm_view, mapping));

  // Condition C3': residual over kept columns and φ(ColSel(V)) only —
  // aggregated view columns are not available for extra constraints
  // (Example 4.4).
  AQV_ASSIGN_OR_RETURN(
      std::vector<Predicate> residual,
      ComputeResidual(query.where,
                      mapping.MapPredicates(norm_view.query.where),
                      ctx.AllowedResidualColumns()));

  AQV_RETURN_NOT_OK(CheckViewHavingUsable(ctx, norm_view.query.having));

  Query out;
  out.distinct = query.distinct;
  out.from = ctx.RewrittenFrom();
  out.where = std::move(residual);

  for (const SelectItem& item : query.select) {
    switch (item.kind) {
      case SelectItem::Kind::kColumn: {
        AQV_ASSIGN_OR_RETURN(std::string col, StrictReplace(ctx, item.column));
        // Preserve the original output name even when the column changes.
        std::string alias = item.alias.empty() ? item.column : item.alias;
        out.select.push_back(
            SelectItem::MakeColumn(std::move(col), std::move(alias)));
        break;
      }
      case SelectItem::Kind::kAggregate: {
        if (item.agg == AggFn::kAvg) {
          // Section 4.4: AVG(A) = SUM(A) / COUNT(A), each recovered
          // independently; the ratio of the recovered totals is exact even
          // when the query coalesces several view groups.
          AQV_ASSIGN_OR_RETURN(auto num,
                               RewriteAggTerm(ctx, AggFn::kSum, item.arg));
          AQV_ASSIGN_OR_RETURN(auto den,
                               RewriteAggTerm(ctx, AggFn::kCount, item.arg));
          out.select.push_back(SelectItem::MakeRatio(
              std::move(num.second), std::move(den.second), item.alias));
          break;
        }
        AQV_ASSIGN_OR_RETURN(auto term, RewriteAggTerm(ctx, item.agg, item.arg));
        out.select.push_back(SelectItem::MakeScaledAggregate(
            term.first, std::move(term.second), item.alias));
        break;
      }
      case SelectItem::Kind::kRatio: {
        AQV_ASSIGN_OR_RETURN(auto num, RewriteAggTerm(ctx, AggFn::kSum, item.arg));
        AQV_ASSIGN_OR_RETURN(auto den, RewriteAggTerm(ctx, AggFn::kSum, item.den));
        if (num.first != AggFn::kSum || den.first != AggFn::kSum) {
          return Status::Unusable("ratio components must remain SUMs");
        }
        out.select.push_back(SelectItem::MakeRatio(
            std::move(num.second), std::move(den.second), item.alias));
        break;
      }
    }
  }

  for (const std::string& g : query.group_by) {
    AQV_ASSIGN_OR_RETURN(std::string col, StrictReplace(ctx, g));
    out.group_by.push_back(std::move(col));
  }

  // GConds': the query's HAVING with columns renamed and aggregate terms
  // rewritten (steps S4'/S5' applied to GConds(Q), Section 4.3).
  for (const Predicate& p : query.having) {
    Predicate mapped = p;
    for (Operand* o : {&mapped.lhs, &mapped.rhs}) {
      switch (o->kind) {
        case Operand::Kind::kColumn: {
          AQV_ASSIGN_OR_RETURN(o->column, StrictReplace(ctx, o->column));
          break;
        }
        case Operand::Kind::kAggregate: {
          AQV_ASSIGN_OR_RETURN(auto term,
                               RewriteAggTerm(ctx, o->agg, o->agg_arg()));
          o->agg = term.first;
          o->column = term.second.column;
          o->multiplier = term.second.multiplier;
          break;
        }
        case Operand::Kind::kConstant:
          break;
      }
    }
    out.having.push_back(std::move(mapped));
  }

  AQV_RETURN_NOT_OK(ValidateQuery(out));
  return out;
}

}  // namespace aqv
