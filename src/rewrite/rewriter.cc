#include "rewrite/rewriter.h"

#include <cctype>
#include <deque>
#include <set>

#include "base/failpoint.h"
#include "base/trace.h"
#include "ir/validate.h"
#include "reason/having_normalize.h"
#include "rewrite/multiview.h"
#include "rewrite/set_rewriter.h"

namespace aqv {

std::string RejectConditionToken(const Status& status) {
  if (status.code() != StatusCode::kUnusable) return "";
  const std::string& m = status.message();
  // First "C<digits>['...]" mention wins ("conditions C2/C4" names C2 as
  // the primary failure).
  for (size_t i = 0; i + 1 < m.size(); ++i) {
    if (m[i] == 'C' && std::isdigit(static_cast<unsigned char>(m[i + 1])) &&
        (i == 0 || !std::isalnum(static_cast<unsigned char>(m[i - 1])))) {
      size_t j = i + 1;
      while (j < m.size() && std::isdigit(static_cast<unsigned char>(m[j]))) {
        ++j;
      }
      if (j < m.size() && m[j] == '\'') ++j;
      return m.substr(i, j - i);
    }
  }
  // Section-level rejections ("Section 4.5") become "S4.5".
  size_t pos = m.find("Section ");
  if (pos != std::string::npos) {
    size_t j = pos + 8;
    std::string num;
    while (j < m.size() &&
           (std::isdigit(static_cast<unsigned char>(m[j])) || m[j] == '.')) {
      num += m[j++];
    }
    if (!num.empty()) return "S" + num;
  }
  return "other";
}

Result<Query> RewriteWithViewMapping(const Query& query, const ViewDef& view,
                                     const ColumnMapping& mapping,
                                     const RewriteOptions& options) {
  Query q = query;
  if (options.normalize_having) NormalizeHaving(&q);
  if (view.query.IsConjunctive()) {
    return RewriteWithConjunctiveView(q, view, mapping);
  }
  return RewriteWithAggregateView(q, view, mapping);
}

Result<std::vector<Rewriting>> Rewriter::RewritingsUsingView(
    const Query& query, const std::string& view_name) const {
  TraceSpan view_span("rewrite.view");
  if (view_span.active()) view_span.AddAttr("view", view_name);

  AQV_RETURN_NOT_OK(ValidateQuery(query));
  AQV_ASSIGN_OR_RETURN(const ViewDef* view, views_->Get(view_name));

  Query q = query;
  if (options_.normalize_having) NormalizeHaving(&q);

  std::vector<Rewriting> rewritings;
  std::set<std::string> seen;
  int attempts = 0;

  // One span per candidate (view, mapping) attempt: accepted=1 for usable
  // mappings, else reject=<condition> naming the C1–C4/C2'–C4' check that
  // killed it — the per-candidate signal an optimizer developer tunes by.
  auto note_attempt = [&](TraceSpan& attempt, const Result<Query>& rewritten,
                          const char* mode) {
    if (!attempt.active()) return;
    attempt.AddAttr("view", view_name);
    attempt.AddAttr("mode", mode);
    if (rewritten.ok()) {
      attempt.AddAttr("accepted", "1");
    } else {
      attempt.AddAttr("reject", RejectConditionToken(rewritten.status()));
      attempt.AddAttr("detail", rewritten.status().message());
    }
    attempt.End();
  };

  // Multiset semantics: 1-1 mappings (condition C1).
  for (const ColumnMapping& mapping :
       EnumerateColumnMappings(view->query, q, /*one_to_one=*/true,
                               options_.max_mappings)) {
    ++attempts;
    TraceSpan attempt("rewrite.attempt");
    Result<Query> rewritten =
        view->query.IsConjunctive()
            ? RewriteWithConjunctiveView(q, *view, mapping)
            : RewriteWithAggregateView(q, *view, mapping);
    note_attempt(attempt, rewritten, "multiset");
    if (!rewritten.ok()) {
      if (rewritten.status().code() == StatusCode::kUnusable) continue;
      return rewritten.status();
    }
    if (seen.insert(CanonicalQueryKey(*rewritten)).second) {
      rewritings.push_back(
          Rewriting{*std::move(rewritten), view_name, mapping});
    }
  }

  // Section 5.2: many-to-1 mappings when set-ness is provable.
  if (options_.use_key_information && catalog_ != nullptr &&
      q.IsConjunctive() && view->query.IsConjunctive() &&
      IsSetQuery(q, *catalog_, views_) &&
      IsSetQuery(view->query, *catalog_, views_)) {
    for (const ColumnMapping& mapping :
         EnumerateColumnMappings(view->query, q, /*one_to_one=*/false,
                                 options_.max_mappings)) {
      if (mapping.IsOneToOne()) continue;  // already handled above
      ++attempts;
      TraceSpan attempt("rewrite.attempt");
      Result<Query> rewritten = RewriteWithSetView(q, *view, mapping);
      note_attempt(attempt, rewritten, "set");
      if (!rewritten.ok()) {
        if (rewritten.status().code() == StatusCode::kUnusable) continue;
        return rewritten.status();
      }
      if (seen.insert(CanonicalQueryKey(*rewritten)).second) {
        rewritings.push_back(
            Rewriting{*std::move(rewritten), view_name, mapping});
      }
    }
  }

  if (view_span.active()) {
    view_span.AddAttr("attempts", attempts);
    view_span.AddAttr("accepted", static_cast<int>(rewritings.size()));
  }
  return rewritings;
}

Result<Query> Rewriter::RewriteUsingView(const Query& query,
                                         const std::string& view_name) const {
  AQV_ASSIGN_OR_RETURN(std::vector<Rewriting> rewritings,
                       RewritingsUsingView(query, view_name));
  if (rewritings.empty()) {
    return Status::Unusable("view '" + view_name +
                            "' is not usable in evaluating the query");
  }
  return std::move(rewritings.front().query);
}

Result<Query> Rewriter::RewriteIteratively(
    const Query& query, const std::vector<std::string>& view_names,
    std::vector<std::string>* views_used) const {
  Query current = query;
  for (const std::string& name : view_names) {
    Result<Query> next = RewriteUsingView(current, name);
    if (next.ok()) {
      current = *std::move(next);
      if (views_used != nullptr) views_used->push_back(name);
    } else if (next.status().code() != StatusCode::kUnusable) {
      return next.status();
    }
  }
  return current;
}

Result<std::vector<Query>> Rewriter::EnumerateAllRewritings(
    const Query& query, const std::vector<std::string>& view_names,
    int max_results, ExecContext* ctx,
    std::vector<std::string>* failed_views) const {
  std::vector<Query> results;
  std::set<std::string> seen;
  std::set<std::string> failed;
  seen.insert(CanonicalQueryKey(query));

  std::deque<Query> frontier;
  frontier.push_back(query);
  while (!frontier.empty() &&
         static_cast<int>(results.size()) < max_results) {
    // Deadline/cancel cutoff: a rewriting found is a rewriting the cost
    // model can still price, so stop enumerating and keep what we have.
    if (ctx != nullptr && !ctx->CheckNow()) break;
    Query current = std::move(frontier.front());
    frontier.pop_front();
    for (const std::string& name : view_names) {
      if (failed.count(name) > 0) continue;
      Status injected = Status::OK();
      if (FailpointRegistry::Global().any_armed()) {
        injected = FailpointRegistry::Global().Evaluate("rewrite.enumerate");
      }
      Result<std::vector<Rewriting>> attempt =
          injected.ok() ? RewritingsUsingView(current, name)
                        : Result<std::vector<Rewriting>>(injected);
      if (!attempt.ok() &&
          attempt.status().code() != StatusCode::kUnusable &&
          failed_views != nullptr) {
        // Degrade: this view's rewriting machinery is failing, so drop it
        // from the search and let the caller record/quarantine it. The
        // other views (and the unrewritten query) are unaffected.
        if (failed.insert(name).second) failed_views->push_back(name);
        continue;
      }
      AQV_RETURN_NOT_OK(attempt.status());
      std::vector<Rewriting> step = *std::move(attempt);
      for (Rewriting& r : step) {
        if (!seen.insert(CanonicalQueryKey(r.query)).second) continue;
        results.push_back(r.query);
        frontier.push_back(std::move(r.query));
        if (static_cast<int>(results.size()) >= max_results) break;
      }
      if (static_cast<int>(results.size()) >= max_results) break;
    }
  }
  return results;
}

}  // namespace aqv
