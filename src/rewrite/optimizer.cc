#include "rewrite/optimizer.h"

#include "rewrite/flatten.h"

namespace aqv {

Result<OptimizeResult> Optimizer::Optimize(const Query& query) const {
  OptimizeResult out;

  // Section 7 pre-pass: merge virtual view references; keep materialized
  // ones (scanning them is the point of this library).
  AQV_ASSIGN_OR_RETURN(
      Query flat,
      FlattenViews(
          query, *views_,
          [this](const std::string& name) { return !db_->Has(name); },
          &out.views_flattened));

  CostModel model;
  out.cost_original = model.Estimate(flat, *db_);

  // Candidate rewritings over the materialized views.
  std::vector<std::string> materialized;
  for (const std::string& name : views_->ViewNames()) {
    if (db_->Has(name)) materialized.push_back(name);
  }
  std::vector<Query> candidates;
  if (!materialized.empty()) {
    Rewriter rewriter(views_, catalog_, options_);
    AQV_ASSIGN_OR_RETURN(candidates,
                         rewriter.EnumerateAllRewritings(flat, materialized));
  }
  out.rewritings_considered = static_cast<int>(candidates.size());

  int chosen_index = -1;
  out.chosen = ChooseCheapest(flat, candidates, *db_, model, &chosen_index);
  out.used_materialized_view = chosen_index >= 0;
  out.cost_chosen = model.Estimate(out.chosen, *db_);
  return out;
}

Result<Table> Optimizer::Run(const Query& query) const {
  AQV_ASSIGN_OR_RETURN(OptimizeResult plan, Optimize(query));
  Evaluator eval(db_, views_);
  return eval.Execute(plan.chosen);
}

}  // namespace aqv
