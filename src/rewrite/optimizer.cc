#include "rewrite/optimizer.h"

#include <algorithm>
#include <cstdio>

#include "base/failpoint.h"
#include "base/trace.h"
#include "rewrite/flatten.h"

namespace aqv {

void CollectDependencies(const std::vector<std::string>& seeds,
                         const ViewRegistry& views,
                         std::vector<std::string>* out) {
  std::vector<std::string> pending = seeds;
  while (!pending.empty()) {
    std::string name = std::move(pending.back());
    pending.pop_back();
    if (std::find(out->begin(), out->end(), name) != out->end()) continue;
    out->push_back(name);
    Result<const ViewDef*> view = views.Get(name);
    if (view.ok()) {
      for (const TableRef& ref : (*view)->query.from) {
        pending.push_back(ref.table);
      }
    }
  }
}

void CollectQueryDependencies(const Query& query, const ViewRegistry& views,
                              std::vector<std::string>* out) {
  std::vector<std::string> seeds;
  seeds.reserve(query.from.size());
  for (const TableRef& ref : query.from) seeds.push_back(ref.table);
  CollectDependencies(seeds, views, out);
}

Result<OptimizeResult> Optimizer::Optimize(const Query& query,
                                           ExecContext* ctx) const {
  AQV_FAILPOINT("optimizer.optimize");
  TraceSpan optimize_span("optimize");
  OptimizeResult out;

  // Section 7 pre-pass: merge virtual view references; keep materialized
  // ones (scanning them is the point of this library).
  TraceSpan flatten_span("flatten");
  AQV_ASSIGN_OR_RETURN(
      Query flat,
      FlattenViews(
          query, *views_,
          [this](const std::string& name) { return !db_->Has(name); },
          &out.views_flattened));
  if (flatten_span.active()) {
    flatten_span.AddAttr("views_flattened", out.views_flattened);
  }
  flatten_span.End();

  CostModel model;
  out.cost_original = model.Estimate(flat, *db_);

  // Candidate rewritings over the materialized views, minus quarantined
  // ones (repeated failures; the service clears quarantine on REFRESH).
  const std::vector<std::string>& quarantined = options_.quarantined_views;
  std::vector<std::string> materialized;
  for (const std::string& name : views_->ViewNames()) {
    if (!db_->Has(name)) continue;
    if (std::find(quarantined.begin(), quarantined.end(), name) !=
        quarantined.end()) {
      continue;
    }
    materialized.push_back(name);
  }
  std::vector<Query> candidates;
  {
    TraceSpan enumerate_span("enumerate_rewritings");
    if (!materialized.empty()) {
      Rewriter rewriter(views_, catalog_, options_);
      AQV_ASSIGN_OR_RETURN(
          candidates,
          rewriter.EnumerateAllRewritings(flat, materialized,
                                          /*max_results=*/64, ctx,
                                          &out.failed_views));
    }
    if (enumerate_span.active()) {
      enumerate_span.AddAttr("materialized_views",
                             static_cast<int>(materialized.size()));
      enumerate_span.AddAttr("candidates", static_cast<int>(candidates.size()));
      if (!out.failed_views.empty()) {
        enumerate_span.AddAttr("failed_views",
                               static_cast<int>(out.failed_views.size()));
      }
    }
  }
  out.rewritings_considered = static_cast<int>(candidates.size());

  TraceSpan cost_span("cost");
  int chosen_index = -1;
  out.chosen = ChooseCheapest(flat, candidates, *db_, model, &chosen_index);
  out.used_materialized_view = chosen_index >= 0;
  out.cost_chosen = model.Estimate(out.chosen, *db_);
  cost_span.End();

  if (optimize_span.active()) {
    char buf[48];
    optimize_span.AddAttr("candidates", out.rewritings_considered);
    optimize_span.AddAttr("used_materialized_view",
                          out.used_materialized_view ? "1" : "0");
    std::snprintf(buf, sizeof(buf), "%.0f", out.cost_original);
    optimize_span.AddAttr("cost_original", buf);
    std::snprintf(buf, sizeof(buf), "%.0f", out.cost_chosen);
    optimize_span.AddAttr("cost_chosen", buf);
  }

  CollectQueryDependencies(flat, *views_, &out.dependencies);
  CollectQueryDependencies(out.chosen, *views_, &out.dependencies);
  std::sort(out.dependencies.begin(), out.dependencies.end());
  out.dependencies.erase(
      std::unique(out.dependencies.begin(), out.dependencies.end()),
      out.dependencies.end());
  return out;
}

Result<Table> Optimizer::Run(const Query& query) const {
  AQV_ASSIGN_OR_RETURN(OptimizeResult plan, Optimize(query));
  Evaluator eval(db_, views_);
  return eval.Execute(plan.chosen);
}

}  // namespace aqv
