#include <string>

#include "base/trace.h"
#include "ir/validate.h"
#include "reason/residual.h"
#include "rewrite/conditions.h"
#include "rewrite/rewriter.h"

namespace aqv {

namespace {

// Strict column replacement (conditions C2 / C4 part 1): a mapped query
// column must have a view output entailed equal to it by Conds(Q).
Result<std::string> StrictReplace(const RewriteContext& ctx,
                                  const std::string& column) {
  if (!ctx.IsMapped(column)) return column;
  std::optional<int> p = ctx.PlainEquivalent(column);
  if (!p) {
    return Status::Unusable("no view SELECT column is entailed equal to '" +
                            column + "' (conditions C2/C4)");
  }
  return ctx.outputs()[*p].name;
}

// Lenient replacement for COUNT arguments (step S4): when the counted
// column was projected out, any view column counts the same rows. This is
// exact under the paper's (and this library's) null-free data model.
Result<std::string> CountReplace(const RewriteContext& ctx,
                                 const std::string& column) {
  if (!ctx.IsMapped(column)) return column;
  std::optional<int> p = ctx.PlainEquivalent(column);
  if (p) return ctx.outputs()[*p].name;
  if (ctx.outputs().empty()) {
    return Status::Unusable("COUNT needs a non-empty view SELECT (C4 part 2)");
  }
  return ctx.outputs()[0].name;
}

Result<AggArg> ReplaceAggArg(const RewriteContext& ctx, AggFn fn,
                             const AggArg& arg) {
  AggArg out;
  if (fn == AggFn::kCount) {
    AQV_ASSIGN_OR_RETURN(out.column, CountReplace(ctx, arg.column));
    if (arg.scaled()) {
      AQV_ASSIGN_OR_RETURN(out.multiplier, CountReplace(ctx, arg.multiplier));
    }
  } else {
    AQV_ASSIGN_OR_RETURN(out.column, StrictReplace(ctx, arg.column));
    if (arg.scaled()) {
      AQV_ASSIGN_OR_RETURN(out.multiplier, StrictReplace(ctx, arg.multiplier));
    }
  }
  return out;
}

}  // namespace

Result<Query> RewriteWithConjunctiveView(const Query& query,
                                         const ViewDef& view,
                                         const ColumnMapping& mapping) {
  TraceSpan span("rewrite.conjunctive");
  if (span.active()) span.AddAttr("view", view.name);
  if (!view.query.IsConjunctive()) {
    return Status::InvalidArgument(
        "RewriteWithConjunctiveView requires a conjunctive view");
  }
  // Condition C1: multiset semantics requires a 1-1 column mapping.
  if (!mapping.IsOneToOne()) {
    return Status::Unusable(
        "condition C1: the column mapping must be 1-1 under multiset "
        "semantics");
  }

  AQV_ASSIGN_OR_RETURN(RewriteContext ctx,
                       RewriteContext::Create(query, view, mapping));

  // Condition C3 / step S3: residual conditions.
  AQV_ASSIGN_OR_RETURN(
      std::vector<Predicate> residual,
      ComputeResidual(query.where, mapping.MapPredicates(view.query.where),
                      ctx.AllowedResidualColumns()));

  // Steps S1, S2, S4: assemble the rewritten query.
  Query out;
  out.distinct = query.distinct;
  out.from = ctx.RewrittenFrom();
  out.where = std::move(residual);

  for (const SelectItem& item : query.select) {
    switch (item.kind) {
      case SelectItem::Kind::kColumn: {
        AQV_ASSIGN_OR_RETURN(std::string col, StrictReplace(ctx, item.column));
        // Preserve the original output name even when the column changes
        // (two distinct query columns may map to one view column).
        std::string alias = item.alias.empty() ? item.column : item.alias;
        out.select.push_back(
            SelectItem::MakeColumn(std::move(col), std::move(alias)));
        break;
      }
      case SelectItem::Kind::kAggregate: {
        AQV_ASSIGN_OR_RETURN(AggArg arg, ReplaceAggArg(ctx, item.agg, item.arg));
        out.select.push_back(
            SelectItem::MakeScaledAggregate(item.agg, std::move(arg), item.alias));
        break;
      }
      case SelectItem::Kind::kRatio: {
        AQV_ASSIGN_OR_RETURN(AggArg num, ReplaceAggArg(ctx, AggFn::kSum, item.arg));
        AQV_ASSIGN_OR_RETURN(AggArg den, ReplaceAggArg(ctx, AggFn::kSum, item.den));
        out.select.push_back(
            SelectItem::MakeRatio(std::move(num), std::move(den), item.alias));
        break;
      }
    }
  }

  for (const std::string& g : query.group_by) {
    AQV_ASSIGN_OR_RETURN(std::string col, StrictReplace(ctx, g));
    out.group_by.push_back(std::move(col));
  }

  // Section 3.3: HAVING survives with columns renamed; aggregate operands
  // follow the same C4 rules as SELECT aggregates.
  for (const Predicate& p : query.having) {
    Predicate mapped = p;
    for (Operand* o : {&mapped.lhs, &mapped.rhs}) {
      switch (o->kind) {
        case Operand::Kind::kColumn: {
          AQV_ASSIGN_OR_RETURN(o->column, StrictReplace(ctx, o->column));
          break;
        }
        case Operand::Kind::kAggregate: {
          AQV_ASSIGN_OR_RETURN(
              AggArg arg, ReplaceAggArg(ctx, o->agg, o->agg_arg()));
          o->column = arg.column;
          o->multiplier = arg.multiplier;
          break;
        }
        case Operand::Kind::kConstant:
          break;
      }
    }
    out.having.push_back(std::move(mapped));
  }

  AQV_RETURN_NOT_OK(ValidateQuery(out));
  return out;
}

}  // namespace aqv
