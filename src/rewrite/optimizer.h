#ifndef AQV_REWRITE_OPTIMIZER_H_
#define AQV_REWRITE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "catalog/catalog.h"
#include "exec/evaluator.h"
#include "exec/table.h"
#include "ir/query.h"
#include "ir/views.h"
#include "rewrite/cost.h"
#include "rewrite/rewriter.h"

namespace aqv {

/// The plan the optimizer settled on.
struct OptimizeResult {
  Query chosen;
  double cost_original = 0;
  double cost_chosen = 0;
  int rewritings_considered = 0;
  int views_flattened = 0;  // Section 7 pre-pass merges
  bool used_materialized_view = false;
  /// Views skipped during enumeration because their rewriting attempt
  /// failed with a real error (graceful degradation; the plan is still
  /// correct, just potentially not the cheapest). The service charges these
  /// toward quarantine.
  std::vector<std::string> failed_views;
  /// Every base table and materialized view the flattened original or the
  /// chosen plan reads, sorted and deduplicated. A cached plan is only valid
  /// while none of these change, so this is exactly the invalidation set the
  /// service's rewrite-plan cache keys its hooks on.
  std::vector<std::string> dependencies;
};

/// Appends `seeds` and every name transitively reachable from them through
/// view definitions (a view contributes its own name and every table its
/// defining query reads). This is the dependency extraction behind both the
/// plan cache's invalidation sets and the service's latch footprints.
void CollectDependencies(const std::vector<std::string>& seeds,
                         const ViewRegistry& views,
                         std::vector<std::string>* out);

/// CollectDependencies seeded with the FROM-clause names of `query`.
void CollectQueryDependencies(const Query& query, const ViewRegistry& views,
                              std::vector<std::string>* out);

/// End-to-end facade tying the pieces together the way Section 6's
/// cost-based integration sketch suggests:
///
///   1. flatten virtual (non-materialized, conjunctive) view references
///      into a single block (Section 7);
///   2. enumerate all rewritings over the views whose contents are stored
///      in the database (Sections 3-5);
///   3. price original + candidates with the cost model and keep the
///      cheapest;
///   4. (Run) execute the winner.
///
/// A view counts as *materialized* when `db->Has(view name)`; other
/// registered views are virtual and are only used by the flattening step.
class Optimizer {
 public:
  Optimizer(const Database* db, const ViewRegistry* views,
            const Catalog* catalog = nullptr,
            RewriteOptions options = RewriteOptions{})
      : db_(db), views_(views), catalog_(catalog), options_(options) {}

  /// Picks the cheapest equivalent plan for `query`. When `ctx` carries a
  /// deadline, candidate enumeration cuts off gracefully at the limit
  /// (fewer candidates, never an error); views listed in
  /// RewriteOptions::quarantined_views are excluded from candidacy.
  Result<OptimizeResult> Optimize(const Query& query,
                                  ExecContext* ctx = nullptr) const;

  /// Optimize + execute.
  Result<Table> Run(const Query& query) const;

 private:
  const Database* db_;
  const ViewRegistry* views_;
  const Catalog* catalog_;
  RewriteOptions options_;
};

}  // namespace aqv

#endif  // AQV_REWRITE_OPTIMIZER_H_
