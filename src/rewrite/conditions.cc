#include "rewrite/conditions.h"

namespace aqv {

Result<RewriteContext> RewriteContext::Create(const Query& query,
                                              const ViewDef& view,
                                              const ColumnMapping& mapping) {
  RewriteContext ctx;
  ctx.query_ = &query;
  ctx.view_ = &view;
  ctx.mapping_ = &mapping;

  AQV_ASSIGN_OR_RETURN(ctx.query_closure_,
                       ConstraintClosure::Build(query.where));

  // Columns of the query occurrences that the view does not replace.
  std::set<int> replaced = mapping.MappedQueryTables();
  for (size_t i = 0; i < query.from.size(); ++i) {
    if (replaced.count(static_cast<int>(i)) > 0) continue;
    ctx.kept_columns_.insert(query.from[i].columns.begin(),
                             query.from[i].columns.end());
  }

  // Assign rewritten-query column names to the view's SELECT positions.
  // A plain output B takes its image φ(B) — the name the query already used
  // for that value (legal because the occurrence owning it is removed); an
  // aggregate output takes a fresh name derived from the view's output
  // column. Duplicates (e.g. the view selecting a column twice) get
  // uniquified.
  NameGenerator names;
  names.Reserve(ctx.kept_columns_);
  std::vector<std::string> view_outputs = view.OutputColumns();
  for (size_t p = 0; p < view.query.select.size(); ++p) {
    const SelectItem& item = view.query.select[p];
    ViewOutput out;
    out.position = static_cast<int>(p);
    out.item = item;
    std::string desired = item.kind == SelectItem::Kind::kColumn
                              ? mapping.MapColumn(item.column)
                              : view.name + "_" + view_outputs[p];
    out.name = names.Fresh(desired);
    ctx.outputs_.push_back(std::move(out));
  }
  return ctx;
}

std::optional<int> RewriteContext::PlainEquivalent(
    const std::string& query_col) const {
  std::optional<int> fallback;
  for (const ViewOutput& out : outputs_) {
    if (!out.is_plain()) continue;
    std::string image = mapping_->MapColumn(out.item.column);
    if (image == query_col) return out.position;
    if (!fallback &&
        query_closure_.AreEqual(Operand::Column(query_col),
                                Operand::Column(image))) {
      fallback = out.position;
    }
  }
  return fallback;
}

std::optional<int> RewriteContext::AggregateOutput(AggFn fn,
                                                   const AggArg& arg) const {
  for (const ViewOutput& out : outputs_) {
    if (out.item.kind != SelectItem::Kind::kAggregate || out.item.agg != fn) {
      continue;
    }
    const AggArg& varg = out.item.arg;
    if (!query_closure_.AreEqual(
            Operand::Column(arg.column),
            Operand::Column(mapping_->MapColumn(varg.column)))) {
      continue;
    }
    if (arg.scaled() != varg.scaled()) continue;
    if (arg.scaled() &&
        !query_closure_.AreEqual(
            Operand::Column(arg.multiplier),
            Operand::Column(mapping_->MapColumn(varg.multiplier)))) {
      continue;
    }
    return out.position;
  }
  return std::nullopt;
}

std::optional<int> RewriteContext::CountOutput() const {
  for (const ViewOutput& out : outputs_) {
    if (out.is_count()) return out.position;
  }
  return std::nullopt;
}

std::set<std::string> RewriteContext::AllowedResidualColumns() const {
  std::set<std::string> allowed = kept_columns_;
  for (const ViewOutput& out : outputs_) {
    if (!out.is_plain()) continue;
    // Only names that coincide with their φ image can be mentioned by the
    // residual, which is phrased over query column names.
    if (out.name == mapping_->MapColumn(out.item.column)) {
      allowed.insert(out.name);
    }
  }
  return allowed;
}

TableRef RewriteContext::ViewTableRef() const {
  TableRef ref;
  ref.table = view_->name;
  ref.columns.reserve(outputs_.size());
  for (const ViewOutput& out : outputs_) ref.columns.push_back(out.name);
  return ref;
}

std::vector<TableRef> RewriteContext::RewrittenFrom() const {
  std::vector<TableRef> from;
  std::set<int> replaced = mapping_->MappedQueryTables();
  for (size_t i = 0; i < query_->from.size(); ++i) {
    if (replaced.count(static_cast<int>(i)) == 0) {
      from.push_back(query_->from[i]);
    }
  }
  from.push_back(ViewTableRef());
  return from;
}

}  // namespace aqv
