#ifndef AQV_REWRITE_MULTIVIEW_H_
#define AQV_REWRITE_MULTIVIEW_H_

#include <string>

#include "ir/query.h"

namespace aqv {

/// A syntactic canonical key for comparing rewritten queries modulo the
/// irrelevant orderings (FROM entry order, conjunct order, GROUP BY order).
/// Two queries with equal keys compute the same result; the Theorem 3.2
/// Church–Rosser tests compare keys of rewritings derived in different view
/// orders. SELECT order is preserved (it is the output schema).
std::string CanonicalQueryKey(const Query& query);

}  // namespace aqv

#endif  // AQV_REWRITE_MULTIVIEW_H_
