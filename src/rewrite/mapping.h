#ifndef AQV_REWRITE_MAPPING_H_
#define AQV_REWRITE_MAPPING_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/query.h"

namespace aqv {

/// A column mapping φ from a view V to a query Q (Definition 2.1): every
/// FROM occurrence of V is assigned a FROM occurrence of Q over the same
/// base table, and columns map position-wise. A 1-1 mapping assigns
/// distinct view occurrences to distinct query occurrences (condition C1);
/// many-to-1 mappings are admitted only under the set semantics of
/// Section 5.2.
class ColumnMapping {
 public:
  ColumnMapping(const Query& view, const Query& query,
                std::vector<int> table_assignment);

  /// table_assignment()[i] is the query FROM index assigned to view FROM
  /// index i.
  const std::vector<int>& table_assignment() const { return table_assignment_; }

  /// True if distinct view tables map to distinct query tables.
  bool IsOneToOne() const;

  /// φ(column) for a view column; returns the input unchanged if it is not
  /// a view column (never the case for well-formed inputs).
  std::string MapColumn(const std::string& view_column) const;

  /// φ applied to a scalar or aggregate predicate.
  Predicate MapPredicate(const Predicate& pred) const;
  std::vector<Predicate> MapPredicates(const std::vector<Predicate>& preds) const;

  /// φ(Cols(V)): the query columns that are images of view columns.
  const std::set<std::string>& MappedQueryColumns() const {
    return mapped_query_columns_;
  }

  /// The query FROM indices in the image of the table assignment.
  std::set<int> MappedQueryTables() const;

  std::string ToString() const;

 private:
  std::vector<int> table_assignment_;
  std::map<std::string, std::string> column_map_;
  std::set<std::string> mapped_query_columns_;
};

inline constexpr int kDefaultMappingLimit = 4096;

/// Enumerates every column mapping from `view` to `query`: all assignments
/// of view FROM occurrences to same-named, same-arity query FROM
/// occurrences. With `one_to_one` the assignment must be injective.
/// Enumeration stops at `limit` mappings (a factorial-growth backstop).
std::vector<ColumnMapping> EnumerateColumnMappings(
    const Query& view, const Query& query, bool one_to_one,
    int limit = kDefaultMappingLimit);

}  // namespace aqv

#endif  // AQV_REWRITE_MAPPING_H_
