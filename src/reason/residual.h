#ifndef AQV_REASON_RESIDUAL_H_
#define AQV_REASON_RESIDUAL_H_

#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "ir/query.h"

namespace aqv {

/// Computes the residual condition `Conds'` of conditions C3/C3': a
/// conjunction such that
///
///     query_conds  ≡  view_conds_mapped ∧ Conds'
///
/// where `Conds'` mentions only columns in `allowed` (constants are always
/// permitted). `view_conds_mapped` is φ(Conds(V)), the view's conditions
/// with the column mapping applied.
///
/// Returns kUnusable when no such residual exists — either the view enforces
/// an atom the query does not entail (the view discards needed tuples), or
/// the query's extra constraints involve columns the view projected out.
///
/// The construction is exact for the dialect of Section 2: take every atom
/// of closure(query_conds) restricted to `allowed`, then verify that
/// view_conds_mapped plus those atoms entails query_conds. A final greedy
/// pass removes atoms that are implied by the rest, keeping the residual
/// small (it becomes the rewritten query's WHERE clause).
Result<std::vector<Predicate>> ComputeResidual(
    const std::vector<Predicate>& query_conds,
    const std::vector<Predicate>& view_conds_mapped,
    const std::set<std::string>& allowed);

/// Drops every atom of `conds` that is implied by the remaining atoms
/// (single greedy pass, order-stable). `base` atoms are assumed to hold and
/// participate in the implication checks but are never emitted.
std::vector<Predicate> MinimizeConditions(const std::vector<Predicate>& conds,
                                          const std::vector<Predicate>& base);

}  // namespace aqv

#endif  // AQV_REASON_RESIDUAL_H_
