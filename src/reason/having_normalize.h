#ifndef AQV_REASON_HAVING_NORMALIZE_H_
#define AQV_REASON_HAVING_NORMALIZE_H_

#include "ir/query.h"

namespace aqv {

/// The Section 3.3 pre-processing step: moves maximal sets of conditions
/// from the HAVING clause into the WHERE clause without changing the query's
/// multiset of answers, strengthening Conds(Q) so that more views are
/// recognized as usable. Two classes of moves are performed:
///
///  1. A HAVING conjunct with no aggregate operand only mentions grouping
///     columns (and constants); it holds uniformly within each group, so
///     enforcing it per-tuple in WHERE removes exactly the failing groups.
///     Always moved.
///
///  2. `MAX(B) > c` (or >=) filters groups by their largest B; enforcing
///     `B > c` per-tuple keeps exactly those groups and leaves their MAX
///     unchanged — but it shrinks group contents, so it is only sound when
///     MAX(B) is the sole aggregate term in the entire query (paper's
///     example: "MAX(B) > 10 ... the only aggregation column appearing in
///     Sel(Q)"). Symmetrically `MIN(B) < c` (or <=). Moved under that
///     guard.
///
/// Returns the number of conjuncts moved. Idempotent.
int NormalizeHaving(Query* query);

}  // namespace aqv

#endif  // AQV_REASON_HAVING_NORMALIZE_H_
