#include "reason/closure.h"

#include <algorithm>

namespace aqv {

namespace {

// Strongest of two order relations.
ConstraintClosure::Rel Strongest(ConstraintClosure::Rel a,
                                 ConstraintClosure::Rel b);

}  // namespace

int ConstraintClosure::TermIndex(const Operand& term) const {
  if (term.is_column()) {
    auto it = column_index_.find(term.column);
    return it == column_index_.end() ? -1 : it->second;
  }
  for (int t : constant_terms_) {
    if (terms_[t].constant == term.constant) return t;
  }
  return -1;
}

int ConstraintClosure::Find(int term) const {
  while (parent_[term] != term) term = parent_[term];
  return term;
}

ConstraintClosure::Rel ConstraintClosure::RelBetween(int root_a,
                                                     int root_b) const {
  return rel_[root_a][root_b];
}

bool ConstraintClosure::NotEqual(int root_a, int root_b) const {
  if (root_a == root_b) return false;
  auto key = root_a < root_b ? std::make_pair(root_a, root_b)
                             : std::make_pair(root_b, root_a);
  return neq_.count(key) > 0;
}

namespace {

ConstraintClosure::Rel Strongest(ConstraintClosure::Rel a,
                                 ConstraintClosure::Rel b) {
  return static_cast<ConstraintClosure::Rel>(std::max(static_cast<int>(a),
                                                      static_cast<int>(b)));
}

// Composition of order relations along a path: any < makes the result <.
ConstraintClosure::Rel Compose(ConstraintClosure::Rel a,
                               ConstraintClosure::Rel b) {
  if (a == ConstraintClosure::kNone || b == ConstraintClosure::kNone) {
    return ConstraintClosure::kNone;
  }
  if (a == ConstraintClosure::kLt || b == ConstraintClosure::kLt) {
    return ConstraintClosure::kLt;
  }
  return ConstraintClosure::kLe;
}

// Ground relation between two constants: -1 unsupported (cross-family),
// otherwise sets *eq / *lt for a<b.
void ConstantRelation(const Value& a, const Value& b, bool* eq, bool* lt,
                      bool* comparable) {
  *eq = a.SqlEquals(b);
  bool numeric = a.is_numeric() && b.is_numeric();
  bool strings =
      a.type() == ValueType::kString && b.type() == ValueType::kString;
  *comparable = numeric || strings;
  if (*comparable && !*eq) {
    *lt = numeric ? (a.AsDouble() < b.AsDouble()) : (a.str() < b.str());
  } else {
    *lt = false;
  }
}

}  // namespace

Result<ConstraintClosure> ConstraintClosure::Build(
    const std::vector<Predicate>& conds) {
  ConstraintClosure c;
  AQV_RETURN_NOT_OK(c.AddAtoms(conds));
  c.Saturate();
  return c;
}

Status ConstraintClosure::AddAtoms(const std::vector<Predicate>& conds) {
  // Pass 1: register terms.
  auto register_term = [this](const Operand& o) {
    if (o.is_column()) {
      if (column_index_.count(o.column) == 0) {
        column_index_[o.column] = static_cast<int>(terms_.size());
        terms_.push_back(o);
      }
    } else {
      if (TermIndex(o) < 0) {
        constant_terms_.push_back(static_cast<int>(terms_.size()));
        terms_.push_back(o);
      }
    }
  };
  for (const Predicate& p : conds) {
    if (!p.IsScalar()) {
      return Status::InvalidArgument(
          "aggregate operand in scalar condition set: " + p.ToString());
    }
    register_term(p.lhs);
    register_term(p.rhs);
  }

  int n = static_cast<int>(terms_.size());
  parent_.resize(n);
  for (int i = 0; i < n; ++i) parent_[i] = i;
  rel_.assign(n, std::vector<Rel>(n, kNone));

  // Ground truth between constants.
  for (size_t i = 0; i < constant_terms_.size(); ++i) {
    for (size_t j = i + 1; j < constant_terms_.size(); ++j) {
      int a = constant_terms_[i], b = constant_terms_[j];
      bool eq, lt, comparable;
      ConstantRelation(terms_[a].constant, terms_[b].constant, &eq, &lt,
                       &comparable);
      if (eq) {
        parent_[Find(b)] = Find(a);
      } else {
        neq_.emplace(std::min(a, b), std::max(a, b));
        if (comparable) {
          if (lt) {
            rel_[a][b] = kLt;
          } else {
            rel_[b][a] = kLt;
          }
        }
      }
    }
  }

  // Seed the user's atoms.
  for (const Predicate& p : conds) {
    int a = TermIndex(p.lhs);
    int b = TermIndex(p.rhs);
    CmpOp op = p.op;
    switch (op) {
      case CmpOp::kEq:
        parent_[Find(b)] = Find(a);
        break;
      case CmpOp::kNe:
        if (a == b) {
          satisfiable_ = false;
        } else {
          neq_.emplace(std::min(a, b), std::max(a, b));
        }
        break;
      case CmpOp::kGt:
      case CmpOp::kGe:
        std::swap(a, b);
        op = FlipCmpOp(op);
        [[fallthrough]];
      case CmpOp::kLt:
      case CmpOp::kLe:
        if (a == b && op == CmpOp::kLt) {
          satisfiable_ = false;
        } else if (a != b) {
          rel_[a][b] = Strongest(rel_[a][b], op == CmpOp::kLt ? kLt : kLe);
        }
        break;
    }
  }
  return Status::OK();
}

void ConstraintClosure::Saturate() {
  int n = static_cast<int>(terms_.size());
  if (n == 0) return;

  bool changed = true;
  while (changed) {
    changed = false;

    // Canonicalize relations and disequalities onto current roots.
    std::vector<std::vector<Rel>> root_rel(n, std::vector<Rel>(n, kNone));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (rel_[i][j] == kNone) continue;
        int ri = Find(i), rj = Find(j);
        if (ri == rj) {
          if (rel_[i][j] == kLt) satisfiable_ = false;
          continue;
        }
        root_rel[ri][rj] = Strongest(root_rel[ri][rj], rel_[i][j]);
      }
    }
    rel_ = std::move(root_rel);

    std::set<std::pair<int, int>> root_neq;
    for (const auto& [a, b] : neq_) {
      int ra = Find(a), rb = Find(b);
      if (ra == rb) {
        satisfiable_ = false;
        continue;
      }
      root_neq.emplace(std::min(ra, rb), std::max(ra, rb));
    }
    neq_ = std::move(root_neq);

    // Transitive saturation over roots (Floyd–Warshall with Compose).
    std::vector<int> roots;
    for (int i = 0; i < n; ++i) {
      if (Find(i) == i) roots.push_back(i);
    }
    for (int k : roots) {
      for (int i : roots) {
        if (rel_[i][k] == kNone) continue;
        for (int j : roots) {
          Rel through = Compose(rel_[i][k], rel_[k][j]);
          if (through != kNone && Strongest(rel_[i][j], through) != rel_[i][j]) {
            rel_[i][j] = Strongest(rel_[i][j], through);
          }
        }
      }
    }

    // Derive consequences: antisymmetry merges; <= plus <> becomes <;
    // a path a < ... < a is a contradiction.
    for (int i : roots) {
      if (rel_[i][i] == kLt) satisfiable_ = false;
      for (int j : roots) {
        if (i >= j) continue;
        bool fwd = rel_[i][j] != kNone, bwd = rel_[j][i] != kNone;
        if (rel_[i][j] == kLt && rel_[j][i] != kNone) satisfiable_ = false;
        if (rel_[j][i] == kLt && rel_[i][j] != kNone) satisfiable_ = false;
        if (rel_[i][j] == kLe && rel_[j][i] == kLe) {
          // i <= j and j <= i: merge the classes.
          parent_[j] = i;
          changed = true;
          continue;
        }
        bool ne = neq_.count({i, j}) > 0;
        if (ne) {
          if (rel_[i][j] == kLe) {
            rel_[i][j] = kLt;
            changed = true;
          }
          if (rel_[j][i] == kLe) {
            rel_[j][i] = kLt;
            changed = true;
          }
        }
        (void)fwd;
        (void)bwd;
      }
    }

    // Two distinct constants in one class is a contradiction (covers both
    // user-asserted equality chains and merges from antisymmetry).
    for (size_t i = 0; i < constant_terms_.size(); ++i) {
      for (size_t j = i + 1; j < constant_terms_.size(); ++j) {
        int a = constant_terms_[i], b = constant_terms_[j];
        if (Find(a) == Find(b) &&
            !terms_[a].constant.SqlEquals(terms_[b].constant)) {
          satisfiable_ = false;
        }
      }
    }
  }
}

namespace {

// Truth of `a op b` for two known constant values.
bool EvalGroundAtom(const Value& a, CmpOp op, const Value& b) {
  bool eq, lt, comparable;
  ConstantRelation(a, b, &eq, &lt, &comparable);
  switch (op) {
    case CmpOp::kEq:
      return eq;
    case CmpOp::kNe:
      return !eq;
    case CmpOp::kLt:
      return comparable && lt;
    case CmpOp::kLe:
      return eq || (comparable && lt);
    case CmpOp::kGt:
      return comparable && !eq && !lt;
    case CmpOp::kGe:
      return eq || (comparable && !eq && !lt);
  }
  return false;
}

}  // namespace

bool ConstraintClosure::Implies(const Predicate& atom) const {
  if (!satisfiable_) return true;
  if (!atom.IsScalar()) return false;

  // Atoms whose operands both have known constant values — constants
  // themselves, or columns pinned to a constant by the conjunction — are
  // decided on ground values. This covers constants that never occur in the
  // conjunction (e.g. A = 5 entails A < 7).
  auto ground_value = [this](const Operand& o) -> std::optional<Value> {
    if (o.is_constant()) return o.constant;
    auto it = column_index_.find(o.column);
    if (it == column_index_.end()) return std::nullopt;
    int root = Find(it->second);
    for (int t : constant_terms_) {
      if (Find(t) == root) return terms_[t].constant;
    }
    return std::nullopt;
  };
  std::optional<Value> ga = ground_value(atom.lhs);
  std::optional<Value> gb = ground_value(atom.rhs);
  if (ga && gb) return EvalGroundAtom(*ga, atom.op, *gb);

  // Bound-based entailment for a column compared against a constant the
  // conjunction never mentions: a known bound through some constant of the
  // conjunction composes with the ground relation between the two constants
  // (e.g. A < 5 entails A < 7; A > 2 entails A <> 1).
  {
    Operand col = atom.lhs, cst = atom.rhs;
    CmpOp op = atom.op;
    if (col.is_constant() && cst.is_column()) {
      std::swap(col, cst);
      op = FlipCmpOp(op);
    }
    auto cit = col.is_column() ? column_index_.find(col.column)
                               : column_index_.end();
    if (col.is_column() && cst.is_constant() && cit != column_index_.end()) {
      int r = Find(cit->second);
      const Value& k = cst.constant;
      for (int ct : constant_terms_) {
        int cr = Find(ct);
        const Value& c = terms_[ct].constant;
        bool a_lt_c = RelBetween(r, cr) == kLt;
        bool a_le_c = RelBetween(r, cr) != kNone;
        bool c_lt_a = RelBetween(cr, r) == kLt;
        bool c_le_a = RelBetween(cr, r) != kNone;
        bool above = (a_lt_c && EvalGroundAtom(c, CmpOp::kLe, k)) ||
                     (a_le_c && EvalGroundAtom(c, CmpOp::kLt, k));
        bool below = (c_lt_a && EvalGroundAtom(c, CmpOp::kGe, k)) ||
                     (c_le_a && EvalGroundAtom(c, CmpOp::kGt, k));
        switch (op) {
          case CmpOp::kLt:
            if (above) return true;
            break;
          case CmpOp::kLe:
            if (above || (a_le_c && EvalGroundAtom(c, CmpOp::kLe, k))) {
              return true;
            }
            break;
          case CmpOp::kGt:
            if (below) return true;
            break;
          case CmpOp::kGe:
            if (below || (c_le_a && EvalGroundAtom(c, CmpOp::kGe, k))) {
              return true;
            }
            break;
          case CmpOp::kNe:
            if (above || below) return true;
            if (NotEqual(r, cr) && EvalGroundAtom(c, CmpOp::kEq, k)) {
              return true;
            }
            break;
          case CmpOp::kEq:
            break;  // only a pinned constant decides equality (handled above)
        }
      }
    }
  }

  // Trivially true reflexive atoms.
  if (atom.lhs == atom.rhs &&
      (atom.op == CmpOp::kEq || atom.op == CmpOp::kLe || atom.op == CmpOp::kGe)) {
    return true;
  }

  int a = TermIndex(atom.lhs);
  int b = TermIndex(atom.rhs);
  if (a < 0 || b < 0) return false;  // unconstrained term
  int ra = Find(a), rb = Find(b);

  CmpOp op = atom.op;
  if (op == CmpOp::kGt || op == CmpOp::kGe) {
    std::swap(ra, rb);
    op = FlipCmpOp(op);
  }
  switch (op) {
    case CmpOp::kEq:
      return ra == rb;
    case CmpOp::kNe:
      return NotEqual(ra, rb) || (ra != rb && (RelBetween(ra, rb) == kLt ||
                                               RelBetween(rb, ra) == kLt));
    case CmpOp::kLt:
      return ra != rb && RelBetween(ra, rb) == kLt;
    case CmpOp::kLe:
      return ra == rb || RelBetween(ra, rb) != kNone;
    default:
      return false;
  }
}

bool ConstraintClosure::ImpliesAll(const std::vector<Predicate>& conds) const {
  for (const Predicate& p : conds) {
    if (!Implies(p)) return false;
  }
  return true;
}

bool ConstraintClosure::EquivalentTo(const std::vector<Predicate>& conds) const {
  if (!ImpliesAll(conds)) return false;
  Result<ConstraintClosure> other = Build(conds);
  if (!other.ok()) return false;
  // Gather this closure's defining atoms: we can reuse RestrictedAtoms with
  // an unrestricted column set.
  std::set<std::string> all;
  for (const auto& [name, idx] : column_index_) all.insert(name);
  return other->ImpliesAll(RestrictedAtoms(all));
}

bool ConstraintClosure::AreEqual(const Operand& a, const Operand& b) const {
  return Implies(Predicate{a, CmpOp::kEq, b});
}

std::vector<Predicate> ConstraintClosure::RestrictedAtoms(
    const std::set<std::string>& allowed) const {
  std::vector<Predicate> atoms;
  if (!satisfiable_) {
    atoms.push_back(Predicate{Operand::Constant(Value::Int64(0)), CmpOp::kEq,
                              Operand::Constant(Value::Int64(1))});
    return atoms;
  }

  int n = static_cast<int>(terms_.size());
  auto term_allowed = [&](int t) {
    return terms_[t].is_constant() || allowed.count(terms_[t].column) > 0;
  };

  // Representative per class: prefer a constant, else first allowed term.
  std::vector<int> rep(n, -1);
  for (int t = 0; t < n; ++t) {
    if (!term_allowed(t)) continue;
    int r = Find(t);
    if (rep[r] < 0 || (terms_[t].is_constant() && !terms_[rep[r]].is_constant())) {
      rep[r] = t;
    }
  }

  // Atoms are oriented column-first for readability ("D1 = 6", not
  // "6 = D1").
  auto oriented = [](Operand a, CmpOp op, Operand b) {
    if (a.is_constant() && b.is_column()) {
      std::swap(a, b);
      op = FlipCmpOp(op);
    }
    return Predicate{std::move(a), op, std::move(b)};
  };

  // Equalities within a class: rep = member.
  for (int t = 0; t < n; ++t) {
    if (!term_allowed(t)) continue;
    int r = rep[Find(t)];
    if (r != t && !(terms_[r].is_constant() && terms_[t].is_constant())) {
      atoms.push_back(oriented(terms_[r], CmpOp::kEq, terms_[t]));
    }
  }

  // Cross-class relations between representatives.
  for (int i = 0; i < n; ++i) {
    if (Find(i) != i || rep[i] < 0) continue;
    for (int j = 0; j < n; ++j) {
      if (i == j || Find(j) != j || rep[j] < 0) continue;
      int ti = rep[i], tj = rep[j];
      if (terms_[ti].is_constant() && terms_[tj].is_constant()) continue;
      Rel r = RelBetween(i, j);
      if (r == kLt) {
        atoms.push_back(oriented(terms_[ti], CmpOp::kLt, terms_[tj]));
      } else if (r == kLe) {
        atoms.push_back(oriented(terms_[ti], CmpOp::kLe, terms_[tj]));
      }
      if (i < j && NotEqual(i, j) && r != kLt && RelBetween(j, i) != kLt) {
        atoms.push_back(oriented(terms_[ti], CmpOp::kNe, terms_[tj]));
      }
    }
  }
  return atoms;
}

std::vector<std::string> ConstraintClosure::EqualColumns(
    const std::string& column) const {
  std::vector<std::string> result;
  auto it = column_index_.find(column);
  if (it == column_index_.end()) return result;
  int root = Find(it->second);
  for (const auto& [name, idx] : column_index_) {
    if (Find(idx) == root) result.push_back(name);
  }
  return result;
}

std::optional<Value> ConstraintClosure::ConstantFor(
    const std::string& column) const {
  auto it = column_index_.find(column);
  if (it == column_index_.end()) return std::nullopt;
  int root = Find(it->second);
  for (int t : constant_terms_) {
    if (Find(t) == root) return terms_[t].constant;
  }
  return std::nullopt;
}

bool Implies(const std::vector<Predicate>& conds, const Predicate& atom) {
  Result<ConstraintClosure> c = ConstraintClosure::Build(conds);
  return c.ok() && c->Implies(atom);
}

bool Equivalent(const std::vector<Predicate>& a,
                const std::vector<Predicate>& b) {
  Result<ConstraintClosure> ca = ConstraintClosure::Build(a);
  return ca.ok() && ca->EquivalentTo(b);
}

bool Satisfiable(const std::vector<Predicate>& conds) {
  Result<ConstraintClosure> c = ConstraintClosure::Build(conds);
  return c.ok() && c->satisfiable();
}

}  // namespace aqv
