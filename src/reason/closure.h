#ifndef AQV_REASON_CLOSURE_H_
#define AQV_REASON_CLOSURE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "ir/query.h"

namespace aqv {

/// The closure of a conjunction of built-in predicates over columns and
/// constants (footnote 2 of the paper): all atoms of the forms
/// `t1 = t2`, `t1 <> t2`, `t1 < t2`, `t1 <= t2` entailed by the conjunction.
/// For the equality/inequality dialect of Section 2 the closure has
/// polynomial size and entailment is decided by lookup.
///
/// Implementation: terms (columns and constants) are partitioned into
/// equality classes with union-find; order relations between classes are
/// saturated Floyd–Warshall style with the composition rules
/// {< ∘ <= = <, <= ∘ < = <, <= ∘ <= = <=}; `<=` in both directions merges
/// classes; `<=` plus `<>` strengthens to `<`; constants seed ground truth.
/// A contradiction (e.g. `x < x`, or two distinct constants made equal)
/// marks the conjunction unsatisfiable.
class ConstraintClosure {
 public:
  /// The closure of the empty (always-true) conjunction.
  ConstraintClosure() = default;

  /// Builds the closure of `conds`. All predicates must be scalar (no
  /// aggregate operands); returns InvalidArgument otherwise. An
  /// unsatisfiable conjunction still builds (satisfiable() turns false).
  static Result<ConstraintClosure> Build(const std::vector<Predicate>& conds);

  bool satisfiable() const { return satisfiable_; }

  /// True if the conjunction entails `atom`. An unsatisfiable conjunction
  /// entails everything. Terms that never occur in the conjunction are
  /// unconstrained: atoms over them are entailed only when trivially true
  /// (t = t, t <= t, or a relation between two constants).
  bool Implies(const Predicate& atom) const;

  /// Implies() over every atom of `conds`.
  bool ImpliesAll(const std::vector<Predicate>& conds) const;

  /// True if this conjunction and `conds` entail each other.
  bool EquivalentTo(const std::vector<Predicate>& conds) const;

  /// True if the conjunction entails a = b for the two terms.
  bool AreEqual(const Operand& a, const Operand& b) const;

  /// The strongest entailed atoms whose column operands all belong to
  /// `allowed` (constants are always allowed). For every pair of terms with
  /// an entailed relation, emits one atom: `=` if equal, else `<`/`<=`/`<>`
  /// as entailed. Atoms trivially true (t op t, constant vs constant) are
  /// omitted. This is the candidate residual of condition C3.
  std::vector<Predicate> RestrictedAtoms(
      const std::set<std::string>& allowed) const;

  /// Columns of the conjunction entailed equal to `column`, including
  /// itself. Empty if `column` never occurs.
  std::vector<std::string> EqualColumns(const std::string& column) const;

  /// If `column` is entailed equal to a constant, returns it.
  std::optional<Value> ConstantFor(const std::string& column) const;

  /// Number of distinct terms (columns + constants) in the conjunction.
  int num_terms() const { return static_cast<int>(terms_.size()); }

  /// Order relation between equality-class roots (implementation detail,
  /// public so file-local saturation helpers can name it).
  enum Rel { kNone = 0, kLe = 1, kLt = 2 };

 private:
  // Term bookkeeping. Terms are Operands of kind kColumn or kConstant.
  int TermIndex(const Operand& term) const;  // -1 if unknown

  int Find(int term) const;  // union-find root (walks parent chain)
  Rel RelBetween(int root_a, int root_b) const;
  bool NotEqual(int root_a, int root_b) const;

  Status AddAtoms(const std::vector<Predicate>& conds);
  void Saturate();

  std::vector<Operand> terms_;
  std::map<std::string, int> column_index_;
  std::vector<int> constant_terms_;
  std::vector<int> parent_;             // union-find
  std::vector<std::vector<Rel>> rel_;   // over term indices; valid on roots
  std::set<std::pair<int, int>> neq_;   // root pairs (normalized a<b)
  bool satisfiable_ = true;
};

/// Convenience: does `conds` entail `atom`?
bool Implies(const std::vector<Predicate>& conds, const Predicate& atom);

/// Convenience: are the two conjunctions logically equivalent?
bool Equivalent(const std::vector<Predicate>& a, const std::vector<Predicate>& b);

/// Convenience: is the conjunction satisfiable?
bool Satisfiable(const std::vector<Predicate>& conds);

}  // namespace aqv

#endif  // AQV_REASON_CLOSURE_H_
