#include "reason/residual.h"

#include "reason/closure.h"

namespace aqv {

std::vector<Predicate> MinimizeConditions(const std::vector<Predicate>& conds,
                                          const std::vector<Predicate>& base) {
  std::vector<Predicate> kept = conds;
  // Try to drop each atom, last first (RestrictedAtoms puts equalities
  // first; dropping derived order atoms first preserves readable output).
  for (int i = static_cast<int>(kept.size()) - 1; i >= 0; --i) {
    std::vector<Predicate> trial = base;
    for (int j = 0; j < static_cast<int>(kept.size()); ++j) {
      if (j != i) trial.push_back(kept[j]);
    }
    Result<ConstraintClosure> closure = ConstraintClosure::Build(trial);
    if (closure.ok() && closure->Implies(kept[i])) {
      kept.erase(kept.begin() + i);
    }
  }
  return kept;
}

Result<std::vector<Predicate>> ComputeResidual(
    const std::vector<Predicate>& query_conds,
    const std::vector<Predicate>& view_conds_mapped,
    const std::set<std::string>& allowed) {
  AQV_ASSIGN_OR_RETURN(ConstraintClosure query_closure,
                       ConstraintClosure::Build(query_conds));

  // First half of C3: the query must entail everything the view enforces,
  // otherwise the view discarded tuples the query needs.
  if (!query_closure.ImpliesAll(view_conds_mapped)) {
    return Status::Unusable(
        "view enforces a condition not entailed by the query");
  }

  // Candidate residual: the query closure restricted to allowed columns.
  std::vector<Predicate> candidate = query_closure.RestrictedAtoms(allowed);

  // Second half of C3: view conditions plus the candidate must give back
  // every query atom; if not, a needed column was projected out.
  std::vector<Predicate> combined = view_conds_mapped;
  combined.insert(combined.end(), candidate.begin(), candidate.end());
  AQV_ASSIGN_OR_RETURN(ConstraintClosure check,
                       ConstraintClosure::Build(combined));
  if (!check.ImpliesAll(query_conds)) {
    return Status::Unusable(
        "query constrains columns that the view projected out");
  }

  return MinimizeConditions(candidate, view_conds_mapped);
}

}  // namespace aqv
