#include "reason/having_normalize.h"

#include <vector>

namespace aqv {

namespace {

// True for MIN/MAX-extremum conjuncts movable per rule 2. The predicate
// must compare a single aggregate term against a constant (either operand
// order), with the operator on the "keeps the extremum" side.
bool IsMovableExtremum(const Predicate& p) {
  const Operand* agg = nullptr;
  const Operand* other = nullptr;
  CmpOp op = p.op;
  if (p.lhs.is_aggregate() && !p.rhs.is_aggregate()) {
    agg = &p.lhs;
    other = &p.rhs;
  } else if (p.rhs.is_aggregate() && !p.lhs.is_aggregate()) {
    agg = &p.rhs;
    other = &p.lhs;
    op = FlipCmpOp(op);
  } else {
    return false;
  }
  if (!other->is_constant()) return false;
  if (agg->agg == AggFn::kMax) {
    return op == CmpOp::kGt || op == CmpOp::kGe;
  }
  if (agg->agg == AggFn::kMin) {
    return op == CmpOp::kLt || op == CmpOp::kLe;
  }
  return false;
}

// Rewrites a movable extremum conjunct AGG(B) op c into the scalar B op c.
Predicate ScalarizeExtremum(const Predicate& p) {
  Predicate out = p;
  if (out.lhs.is_aggregate()) {
    out.lhs = Operand::Column(out.lhs.column);
  } else {
    out.rhs = Operand::Column(out.rhs.column);
  }
  return out;
}

}  // namespace

int NormalizeHaving(Query* query) {
  if (query->having.empty()) return 0;

  int moved = 0;
  std::vector<Predicate> remaining;

  // Rule 2's guard needs the aggregate terms of the *whole* query.
  std::vector<Operand> agg_terms = query->AggregateTerms();

  for (const Predicate& p : query->having) {
    if (p.IsScalar()) {
      // Rule 1: grouping-column condition; validation guarantees its columns
      // are grouping columns.
      query->where.push_back(p);
      ++moved;
      continue;
    }
    if (IsMovableExtremum(p) && agg_terms.size() == 1) {
      query->where.push_back(ScalarizeExtremum(p));
      ++moved;
      continue;
    }
    remaining.push_back(p);
  }
  query->having = std::move(remaining);
  return moved;
}

}  // namespace aqv
