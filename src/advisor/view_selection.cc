#include "advisor/view_selection.h"

#include <algorithm>
#include <map>
#include <set>

#include "exec/evaluator.h"
#include "ir/printer.h"
#include "ir/validate.h"
#include "reason/having_normalize.h"
#include "rewrite/multiview.h"

namespace aqv {

std::string AdvisorReport::ToString() const {
  std::string out;
  out += "workload cost: " + std::to_string(workload_cost_before) + " -> " +
         std::to_string(workload_cost_after) + "\n";
  out += "selected " + std::to_string(selected.size()) + " view(s):\n";
  for (const CandidateView& c : selected) {
    out += "  " + c.def.name + " (" + std::to_string(c.materialized_rows) +
           " rows, benefit " + std::to_string(c.benefit) + ", helps " +
           std::to_string(c.helps.size()) + " queries)\n    " +
           ToSql(c.def.query) + "\n";
  }
  if (!rejected.empty()) {
    out += "rejected " + std::to_string(rejected.size()) + " candidate(s)\n";
  }
  return out;
}

Result<ViewDef> ViewAdvisor::SummarySkeleton(const Query& query,
                                             const std::string& view_name) {
  AQV_RETURN_NOT_OK(ValidateQuery(query));
  Query q = query;
  NormalizeHaving(&q);
  if (q.IsConjunctive()) {
    return Status::Unusable("conjunctive queries have no summary skeleton");
  }

  // The view gets its own column namespace.
  std::map<std::string, std::string> rename;
  Query v;
  for (const TableRef& t : q.from) {
    TableRef ref;
    ref.table = t.table;
    for (const std::string& c : t.columns) {
      rename[c] = c + "_sk";
      ref.columns.push_back(c + "_sk");
    }
    v.from.push_back(std::move(ref));
  }

  // Keep column-to-column conditions; drop the rest but promote their
  // columns to grouping columns so the dropped conditions stay imposable.
  std::set<std::string> groups(q.group_by.begin(), q.group_by.end());
  for (const Predicate& p : q.where) {
    if (p.lhs.is_column() && p.rhs.is_column()) {
      v.where.push_back(Predicate{Operand::Column(rename.at(p.lhs.column)),
                                  p.op,
                                  Operand::Column(rename.at(p.rhs.column))});
    } else {
      for (const std::string& c : p.ReferencedColumns()) groups.insert(c);
    }
  }

  for (const std::string& g : groups) {
    v.group_by.push_back(rename.at(g));
    v.select.push_back(SelectItem::MakeColumn(rename.at(g)));
  }

  // The query's aggregate terms (SELECT and HAVING), AVG decomposed.
  int alias_id = 0;
  bool has_count = false;
  auto add_agg = [&](AggFn fn, const AggArg& arg) {
    AggArg renamed{rename.at(arg.column),
                   arg.scaled() ? rename.at(arg.multiplier) : ""};
    // Aliases aside, avoid duplicate aggregates.
    for (const SelectItem& s : v.select) {
      if (s.kind == SelectItem::Kind::kAggregate && s.agg == fn &&
          s.arg == renamed) {
        return;
      }
    }
    if (fn == AggFn::kCount) has_count = true;
    v.select.push_back(SelectItem::MakeScaledAggregate(
        fn, renamed, "m" + std::to_string(alias_id++)));
  };
  for (const Operand& term : q.AggregateTerms()) {
    if (term.agg == AggFn::kAvg) {
      add_agg(AggFn::kSum, term.agg_arg());
      add_agg(AggFn::kCount, term.agg_arg());
    } else {
      add_agg(term.agg, term.agg_arg());
    }
  }
  // A COUNT column makes the skeleton usable for multiplicity recovery by
  // other queries (condition C4' 1(b)/2).
  if (!has_count) {
    add_agg(AggFn::kCount, AggArg{q.from[0].columns[0], ""});
  }

  AQV_RETURN_NOT_OK(ValidateQuery(v));
  return ViewDef{view_name, std::move(v)};
}

Result<AdvisorReport> ViewAdvisor::Recommend(
    const std::vector<Query>& workload) const {
  AdvisorReport report;
  CostModel model;

  for (const Query& q : workload) {
    report.workload_cost_before += model.Estimate(q, *db_);
  }

  // ---- Candidate generation (deduplicated skeletons). ----
  std::vector<CandidateView> candidates;
  std::set<std::string> seen;
  int id = 0;
  for (const Query& q : workload) {
    Result<ViewDef> skeleton =
        SummarySkeleton(q, "ADV_V" + std::to_string(++id));
    if (!skeleton.ok()) {
      if (skeleton.status().code() == StatusCode::kUnusable) continue;
      return skeleton.status();
    }
    std::string key = CanonicalQueryKey(skeleton->query);
    if (!seen.insert(key).second) continue;
    CandidateView cand;
    cand.def = *std::move(skeleton);
    candidates.push_back(std::move(cand));
  }

  // ---- Measure footprints and score benefits. ----
  for (CandidateView& cand : candidates) {
    ViewRegistry registry;
    AQV_RETURN_NOT_OK(registry.Register(cand.def));
    Evaluator eval(db_, &registry);
    AQV_ASSIGN_OR_RETURN(Table contents, eval.MaterializeView(cand.def.name));
    cand.materialized_rows = contents.num_rows();

    // Early footprint filter against the largest summarized base table.
    size_t largest_base = 0;
    for (const TableRef& t : cand.def.query.from) {
      Result<const Table*> base = db_->Get(t.table);
      if (base.ok()) largest_base = std::max(largest_base, (*base)->num_rows());
    }
    if (largest_base > 0 &&
        cand.materialized_rows >
            options_.max_candidate_fraction * largest_base) {
      cand.benefit = 0;
      continue;
    }

    Database with = *db_;
    with.Put(cand.def.name, std::move(contents));
    Rewriter rewriter(&registry, nullptr, options_.rewrite_options);
    for (size_t i = 0; i < workload.size(); ++i) {
      AQV_ASSIGN_OR_RETURN(
          std::vector<Rewriting> rewritings,
          rewriter.RewritingsUsingView(workload[i], cand.def.name));
      if (rewritings.empty()) continue;
      double original = model.Estimate(workload[i], *db_);
      double best = original;
      for (const Rewriting& r : rewritings) {
        best = std::min(best, model.Estimate(r.query, with));
      }
      if (best < original) {
        cand.benefit += original - best;
        cand.helps.push_back(static_cast<int>(i));
      }
    }
  }

  // ---- Greedy selection by benefit per row under the budget. ----
  std::sort(candidates.begin(), candidates.end(),
            [](const CandidateView& a, const CandidateView& b) {
              double da = a.benefit / (a.materialized_rows + 1.0);
              double db = b.benefit / (b.materialized_rows + 1.0);
              if (da != db) return da > db;
              return a.def.name < b.def.name;
            });
  double used_rows = 0;
  for (CandidateView& cand : candidates) {
    bool fits = used_rows + static_cast<double>(cand.materialized_rows) <=
                options_.space_budget_rows;
    if (cand.benefit > 0 && fits) {
      used_rows += static_cast<double>(cand.materialized_rows);
      report.selected.push_back(std::move(cand));
    } else {
      report.rejected.push_back(std::move(cand));
    }
  }

  // ---- Post-selection workload cost with all chosen views in place. ----
  ViewRegistry chosen;
  Database after = *db_;
  for (const CandidateView& cand : report.selected) {
    AQV_RETURN_NOT_OK(chosen.Register(cand.def));
  }
  {
    Evaluator eval(db_, &chosen);
    for (const CandidateView& cand : report.selected) {
      AQV_ASSIGN_OR_RETURN(Table contents, eval.MaterializeView(cand.def.name));
      after.Put(cand.def.name, std::move(contents));
    }
  }
  Rewriter rewriter(&chosen, nullptr, options_.rewrite_options);
  for (const Query& q : workload) {
    double best = model.Estimate(q, *db_);
    for (const CandidateView& cand : report.selected) {
      AQV_ASSIGN_OR_RETURN(std::vector<Rewriting> rewritings,
                           rewriter.RewritingsUsingView(q, cand.def.name));
      for (const Rewriting& r : rewritings) {
        best = std::min(best, model.Estimate(r.query, after));
      }
    }
    report.workload_cost_after += best;
  }
  return report;
}

}  // namespace aqv
