#ifndef AQV_ADVISOR_VIEW_SELECTION_H_
#define AQV_ADVISOR_VIEW_SELECTION_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "exec/table.h"
#include "ir/query.h"
#include "rewrite/cost.h"
#include "rewrite/rewriter.h"

namespace aqv {

/// Knobs for the advisor.
struct AdvisorOptions {
  /// Total materialized rows the cache may hold.
  double space_budget_rows = 100000;
  /// Candidates whose materialization exceeds this fraction of the largest
  /// base table they summarize are dropped early (a summary as big as its
  /// base rarely pays).
  double max_candidate_fraction = 0.5;
  RewriteOptions rewrite_options;
};

/// One candidate summary view with its measured footprint and the benefit
/// it brings to the workload.
struct CandidateView {
  ViewDef def;
  size_t materialized_rows = 0;
  double benefit = 0;             // Σ max(0, cost(Q) − cost(best Q' using it))
  std::vector<int> helps;         // workload indices it improves
};

/// The advisor's recommendation.
struct AdvisorReport {
  std::vector<CandidateView> selected;
  std::vector<CandidateView> rejected;  // evaluated but not chosen
  double workload_cost_before = 0;
  double workload_cost_after = 0;

  std::string ToString() const;
};

/// The paper's stated future work ("developing strategies for determining
/// which views to cache"): given a query workload and the current database,
/// propose summary views to materialize under a space budget.
///
/// Candidate generation: every aggregation query contributes its *summary
/// skeleton* — same FROM, the column-to-column equality conditions kept,
/// constant conditions dropped with their columns promoted to grouping
/// columns (so the dropped conditions can be re-imposed as residuals), the
/// query's aggregates kept, and a COUNT column added (enabling the
/// Section 4 multiplicity recovery for *other* queries). Duplicate
/// skeletons are merged.
///
/// Selection: each candidate is materialized to measure its footprint, its
/// benefit is scored with the CostModel over the whole workload (through
/// the real rewriter, so only genuinely usable views score), and
/// candidates are picked greedily by benefit per row until the budget is
/// exhausted.
class ViewAdvisor {
 public:
  explicit ViewAdvisor(const Database* db, AdvisorOptions options = {})
      : db_(db), options_(options) {}

  Result<AdvisorReport> Recommend(const std::vector<Query>& workload) const;

  /// Exposed for testing: the summary skeleton of one query, or Unusable
  /// if the query has no useful skeleton (e.g. it is conjunctive).
  static Result<ViewDef> SummarySkeleton(const Query& query,
                                         const std::string& view_name);

 private:
  const Database* db_;
  AdvisorOptions options_;
};

}  // namespace aqv

#endif  // AQV_ADVISOR_VIEW_SELECTION_H_
